// Benchmarks: one per figure panel of the paper's evaluation, each running
// the analysis stage that regenerates that panel's series on a shared
// bench-scale trace, plus the ablation benches called out in DESIGN.md §5.
// Run e.g.:
//
//	go test -bench=Fig3c -benchmem
//	go test -bench=Ablation -benchmem
//
// Each benchmark reports headline values through b.Log on the first
// iteration, so `go test -bench=. -v` doubles as the figure harness.
package repro

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/evolution"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/louvain"
	"repro/internal/metrics"
	"repro/internal/osnmerge"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracking"
)

var (
	benchOnce sync.Once
	benchTr   *trace.Trace
	benchErr  error
)

// benchTrace generates the shared bench-scale trace (the SmallConfig
// Renren+5Q scenario) once, outside any timer.
func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	benchOnce.Do(func() {
		benchTr, benchErr = gen.Generate(gen.SmallConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchTr
}

// metricsResult runs the Fig 1 stage only.
func metricsResult(b *testing.B, tr *trace.Trace) *core.Result {
	cfg := core.DefaultConfig()
	cfg.SkipEvolution = true
	cfg.SkipCommunity = true
	cfg.SkipMerge = true
	cfg.PathEvery = 15
	cfg.PathSources = 50
	res, err := core.Run(tr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func benchFigure(b *testing.B, id string, run func(*trace.Trace) (*core.Result, error)) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(tr)
		if err != nil {
			b.Fatal(err)
		}
		tab, err := res.Figure(id)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%s: %q, %d rows, notes=%v", id, tab.Title, len(tab.Rows), tab.Notes)
		}
	}
}

// --- Fig 1: network-level metrics ---

func fig1Run(b *testing.B) func(*trace.Trace) (*core.Result, error) {
	return func(tr *trace.Trace) (*core.Result, error) { return metricsResult(b, tr), nil }
}

func BenchmarkFig1a(b *testing.B) { benchFigure(b, "fig1a", fig1Run(b)) }
func BenchmarkFig1b(b *testing.B) { benchFigure(b, "fig1b", fig1Run(b)) }
func BenchmarkFig1c(b *testing.B) { benchFigure(b, "fig1c", fig1Run(b)) }
func BenchmarkFig1d(b *testing.B) { benchFigure(b, "fig1d", fig1Run(b)) }
func BenchmarkFig1e(b *testing.B) { benchFigure(b, "fig1e", fig1Run(b)) }
func BenchmarkFig1f(b *testing.B) { benchFigure(b, "fig1f", fig1Run(b)) }

// --- Fig 2–3: node-level edge evolution and PA strength ---

func evolutionRun(tr *trace.Trace) (*core.Result, error) {
	cfg := core.DefaultConfig()
	cfg.SkipMetrics = true
	cfg.SkipCommunity = true
	cfg.SkipMerge = true
	cfg.Alpha = evolution.AlphaOptions{Interval: 2000, MinEdges: 4000, PolyDegree: 3}
	return core.Run(tr, cfg)
}

func BenchmarkFig2a(b *testing.B) { benchFigure(b, "fig2a", evolutionRun) }
func BenchmarkFig2b(b *testing.B) { benchFigure(b, "fig2b", evolutionRun) }
func BenchmarkFig2c(b *testing.B) { benchFigure(b, "fig2c", evolutionRun) }
func BenchmarkFig3a(b *testing.B) { benchFigure(b, "fig3a", evolutionRun) }
func BenchmarkFig3b(b *testing.B) { benchFigure(b, "fig3b", evolutionRun) }
func BenchmarkFig3c(b *testing.B) { benchFigure(b, "fig3c", evolutionRun) }

// --- Fig 4: δ sensitivity sweep ---

func deltaSweepRun(tr *trace.Trace) (*core.Result, error) {
	cfg := core.DefaultConfig()
	cfg.SkipMetrics = true
	cfg.SkipEvolution = true
	cfg.SkipMerge = true
	cfg.Community.SizeDistDays = []int32{251}
	cfg.DeltaSweep = []float64{0.0001, 0.01, 0.04, 0.1, 0.3}
	return core.Run(tr, cfg)
}

func BenchmarkFig4a(b *testing.B) { benchFigure(b, "fig4a", deltaSweepRun) }
func BenchmarkFig4b(b *testing.B) { benchFigure(b, "fig4b", deltaSweepRun) }
func BenchmarkFig4c(b *testing.B) { benchFigure(b, "fig4c", deltaSweepRun) }

// --- Fig 5–7: community statistics, prediction, user impact ---

func communityRun(tr *trace.Trace) (*core.Result, error) {
	cfg := core.DefaultConfig()
	cfg.SkipMetrics = true
	cfg.SkipEvolution = true
	cfg.SkipMerge = true
	cfg.Community.SizeDistDays = []int32{200, 251, 296}
	return core.Run(tr, cfg)
}

func BenchmarkFig5a(b *testing.B) { benchFigure(b, "fig5a", communityRun) }
func BenchmarkFig5b(b *testing.B) { benchFigure(b, "fig5b", communityRun) }
func BenchmarkFig5c(b *testing.B) { benchFigure(b, "fig5c", communityRun) }
func BenchmarkFig6a(b *testing.B) { benchFigure(b, "fig6a", communityRun) }
func BenchmarkFig6b(b *testing.B) { benchFigure(b, "fig6b", communityRun) }
func BenchmarkFig6c(b *testing.B) { benchFigure(b, "fig6c", communityRun) }
func BenchmarkFig7a(b *testing.B) { benchFigure(b, "fig7a", communityRun) }
func BenchmarkFig7b(b *testing.B) { benchFigure(b, "fig7b", communityRun) }
func BenchmarkFig7c(b *testing.B) { benchFigure(b, "fig7c", communityRun) }

// --- Fig 8–9: network merge ---

func mergeRun(tr *trace.Trace) (*core.Result, error) {
	cfg := core.DefaultConfig()
	cfg.SkipMetrics = true
	cfg.SkipEvolution = true
	cfg.SkipCommunity = true
	return core.Run(tr, cfg)
}

func BenchmarkFig8a(b *testing.B) { benchFigure(b, "fig8a", mergeRun) }
func BenchmarkFig8b(b *testing.B) { benchFigure(b, "fig8b", mergeRun) }
func BenchmarkFig8c(b *testing.B) { benchFigure(b, "fig8c", mergeRun) }
func BenchmarkFig9a(b *testing.B) { benchFigure(b, "fig9a", mergeRun) }
func BenchmarkFig9b(b *testing.B) { benchFigure(b, "fig9b", mergeRun) }
func BenchmarkFig9c(b *testing.B) { benchFigure(b, "fig9c", mergeRun) }

// --- Engine vs batch: the single-pass refactor's headline comparison ---

// pipelineConfig is a full multi-scale configuration (every stage plus a
// δ-sweep) at bench scale.
func pipelineConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Alpha = evolution.AlphaOptions{Interval: 2000, MinEdges: 4000, PolyDegree: 3}
	cfg.Community.SizeDistDays = []int32{251}
	cfg.DeltaSweep = []float64{0.01, 0.1}
	cfg.PathEvery = 30
	cfg.PathSources = 30
	return cfg
}

// BenchmarkPipelineEngine runs the full pipeline on the streaming engine:
// one shared replay pass for all non-sweep stages, δ-sweep and SVM
// evaluation fanned out on the worker pool.
func BenchmarkPipelineEngine(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(tr, pipelineConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineBatch runs the same configuration through the batch
// reference path: one independent replay (and graph rebuild) per analysis.
func BenchmarkPipelineBatch(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunBatch(tr, pipelineConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigureOnly is the demand-driven planner's headline: serving one
// panel (fig1a, the common CLI/server case) through a minimal plan versus
// paying for the full multi-scale pipeline. The partial-run speedup is the
// perf-trajectory number this benchmark tracks.
func BenchmarkFigureOnly(b *testing.B) {
	tr := benchTrace(b)
	ctx := context.Background()
	b.Run("Fig1aPlan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.RunFigures(ctx, tr.Source(), pipelineConfig(), "fig1a")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.Figure("fig1a"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FullPipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.RunPlan(ctx, tr.Source(), pipelineConfig(), nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.Figure("fig1a"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Out-of-core data plane: replay memory at million-node scale ---

// liveHeapMB forces a GC and returns the live heap in MB; keep holds the
// replay's outputs (and, on the slice path, the event slice) alive across
// the measurement so it reflects what each data plane must keep resident.
func liveHeapMB(keep ...any) float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for _, k := range keep {
		runtime.KeepAlive(k)
	}
	return float64(ms.HeapAlloc) / 1e6
}

// BenchmarkLargeReplayMemory is the data-plane tentpole's memory claim on
// the million-node preset: replaying from a disk-backed FileSource keeps
// the live heap at O(state) — the graph plus per-node columns — while the
// materializing slice path pays O(events) on top (16 bytes × ~10⁷ events
// held for the whole replay). The trace is stream-generated to disk once,
// outside any timer; run with e.g.
//
//	go test -bench=LargeReplayMemory -benchtime=1x
//
// (-short swaps in the ~10⁵-node default preset). The GenStream subtest
// replays straight from the generator through a trace.Sink — no slice, no
// file — as the third data plane.
func BenchmarkLargeReplayMemory(b *testing.B) {
	cfg := gen.LargeConfig()
	if testing.Short() {
		cfg = gen.DefaultConfig()
	}
	path := filepath.Join(b.TempDir(), "large.trace")
	meta, err := gen.GenerateToFile(cfg, path)
	if err != nil {
		b.Fatal(err)
	}
	events := meta.Nodes + meta.Edges
	b.Logf("trace: %d nodes, %d edges (%d events on disk)", meta.Nodes, meta.Edges, events)

	b.Run("FileSource", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			src, err := trace.OpenFileSource(path)
			if err != nil {
				b.Fatal(err)
			}
			st, err := trace.ReplaySource(src, trace.Hooks{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(liveHeapMB(st), "live-MB")
			b.ReportMetric(float64(st.Graph.NumEdges()), "edges")
		}
	})
	b.Run("Slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := trace.Decode(f)
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			st, err := trace.Replay(tr.Events, trace.Hooks{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(liveHeapMB(st, tr), "live-MB")
			b.ReportMetric(float64(st.Graph.NumEdges()), "edges")
		}
	})
	b.Run("GenStream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := trace.NewState(int(meta.Nodes), int(meta.Edges))
			sink := trace.NewSink(st, trace.Hooks{})
			if _, err := gen.GenerateStream(cfg, sink.Push); err != nil {
				b.Fatal(err)
			}
			sink.Finish()
			b.ReportMetric(liveHeapMB(st), "live-MB")
			b.ReportMetric(float64(st.Graph.NumEdges()), "edges")
		}
	})
}

// --- The shared-snapshot δ-sweep: one pass + one graph vs 1-per-δ ---

// samplePeakHeap starts a background sampler of HeapAlloc and returns a
// stop function reporting the peak in MB seen during the measured region.
// It is an upper bound on the live set (uncollected garbage counts), but
// the old-vs-new differential it exists for — K live replay graphs versus
// one shared graph — dwarfs that noise.
func samplePeakHeap() (stop func() float64) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	peak := ms.HeapAlloc
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	return func() float64 {
		close(done)
		<-finished
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
		return float64(peak) / 1e6
	}
}

// BenchmarkDeltaSweep is the shared-snapshot sweep's headline: a K-δ Fig 4
// sensitivity sweep over a disk-backed trace through the new single-pass
// path (one shared replay, one live graph, per-δ detectors fanned out
// against frozen CSR snapshots) versus the retained re-open-per-δ
// reference path (community.RunSource per δ on the pool — the
// pre-refactor plan fan-out, 1 pass and 1 live graph per δ). Wall-clock
// isolates the tentpole's claim — the K redundant replays and graphs are
// gone; the per-δ Louvain+tracking compute is identical in both arms —
// and peak-live-MB shows the graph count no longer scaling with K.
//
// Defaults to gen.DefaultConfig scale (~10⁵ nodes); -short swaps in the
// test-scale preset for the CI smoke. BENCH_sweep.json tracks the
// datapoints.
func BenchmarkDeltaSweep(b *testing.B) {
	deltas := []float64{0.02, 0.03, 0.04, 0.06, 0.08, 0.12, 0.16, 0.24, 0.32, 0.48}
	gcfg := gen.DefaultConfig()
	snapshotEvery := int32(300)
	if testing.Short() {
		gcfg = gen.SmallConfig()
		snapshotEvery = 60 // the 300-day test preset needs a denser grid
	}
	path := filepath.Join(b.TempDir(), "sweep.trace")
	meta, err := gen.GenerateToFile(gcfg, path)
	if err != nil {
		b.Fatal(err)
	}
	src, err := trace.OpenFileSource(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("trace: %d nodes, %d edges, %d days; %d δ values", meta.Nodes, meta.Edges, meta.Days, len(deltas))

	opt := community.DefaultOptions()
	// A coarse snapshot schedule: the per-snapshot detection compute
	// (Louvain + tracking) is identical in both arms by construction, so
	// thinning it makes the measured ratio isolate what the refactor
	// actually changes — the K redundant replay passes and live graphs —
	// and keeps a measured iteration in seconds. At the paper's 3-day
	// cadence the sweep is detection-bound and the same comparison gives
	// ~1.25x wall-clock; the memory ratio is schedule-independent.
	opt.SnapshotEvery = snapshotEvery
	ctx := context.Background()

	b.Run("SharedSnapshot", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Community = opt
		cfg.DeltaSweep = deltas
		for i := 0; i < b.N; i++ {
			stop := samplePeakHeap()
			res, err := core.RunFigures(ctx, src, cfg, "fig4a")
			peak := stop()
			if err != nil {
				b.Fatal(err)
			}
			if len(res.DeltaSweep) != len(deltas) {
				b.Fatalf("sweep runs = %d", len(res.DeltaSweep))
			}
			b.ReportMetric(peak, "peak-live-MB")
		}
	})
	b.Run("PerPass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stop := samplePeakHeap()
			// The reference arm keeps the old fan-out's own concurrency
			// (one worker per δ, as NewPool(0) gave it on a K-core box),
			// so its K live graphs coexist exactly as they used to.
			pool := engine.NewPool(len(deltas))
			runs := make([]*community.Result, len(deltas))
			for j, d := range deltas {
				j, d := j, d
				o := opt
				o.Delta = d
				pool.GoContext(ctx, func() error {
					dr, err := community.RunSourceContext(ctx, src, o)
					if err != nil {
						return err
					}
					runs[j] = dr
					return nil
				})
			}
			err := pool.Wait()
			peak := stop()
			if err != nil {
				b.Fatal(err)
			}
			for j := range runs {
				if runs[j] == nil {
					b.Fatalf("δ=%v: no result", deltas[j])
				}
			}
			b.ReportMetric(peak, "peak-live-MB")
		}
	})
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationDestSelection quantifies the §3.2 destination-rule
// ambiguity: fitted α under the higher-degree vs random endpoint rules.
func BenchmarkAblationDestSelection(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := evolution.AnalyzeAlpha(tr.Events, evolution.AlphaOptions{Interval: 2000, MinEdges: 4000, Seed: 1, PolyDegree: 3})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("alpha(higher)=%.3f mse=%.2e | alpha(random)=%.3f mse=%.2e | gap=%.3f",
				res.FinalAlphaHigher, res.FinalMSEHigher,
				res.FinalAlphaRandom, res.FinalMSERandom,
				res.FinalAlphaHigher-res.FinalAlphaRandom)
		}
	}
}

// BenchmarkAblationIncremental compares tracking stability (average
// cross-snapshot similarity) with and without the incremental Louvain seed.
func BenchmarkAblationIncremental(b *testing.B) {
	tr := benchTrace(b)
	avgSim := func(incremental bool) float64 {
		var prev []int32
		var sum float64
		var n int
		tracker := tracking.NewTracker(10)
		_, err := trace.Replay(tr.Events, trace.Hooks{
			OnDayEnd: func(st *trace.State, day int32) {
				if day < 20 || (day-20)%6 != 0 || st.Graph.NumNodes() < 64 {
					return
				}
				var init []int32
				if incremental && prev != nil {
					init = make([]int32, st.Graph.NumNodes())
					for i := range init {
						if i < len(prev) {
							init[i] = prev[i]
						} else {
							init[i] = -1
						}
					}
				}
				lr, err := louvain.Run(st.Graph, louvain.Options{Delta: 0.04, MaxLevels: 1, Seed: 1, Init: init})
				if err != nil {
					b.Fatal(err)
				}
				prev = lr.Community
				snap := tracker.Advance(day, st.Graph, tracking.Assignment(lr.Community))
				if snap.AvgSimilarity > 0 {
					sum += snap.AvgSimilarity
					n++
				}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc := avgSim(true)
		cold := avgSim(false)
		if i == 0 {
			b.Logf("avg similarity: incremental=%.3f cold=%.3f", inc, cold)
		}
	}
}

// BenchmarkAblationPADecay is the control experiment for Fig 3c: with the
// PA-decay mechanism disabled (constant mixing weight), α(t) stays flat.
func BenchmarkAblationPADecay(b *testing.B) {
	mkTrace := func(slope float64) *trace.Trace {
		cfg := gen.SmallConfig()
		cfg.Merge = nil
		cfg.Attach.PALogSlope = slope
		tr, err := gen.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return tr
	}
	measure := func(tr *trace.Trace) (first, last float64) {
		res, err := evolution.AnalyzeAlpha(tr.Events, evolution.AlphaOptions{Interval: 2000, MinEdges: 4000, Seed: 1, PolyDegree: 2})
		if err != nil {
			b.Fatal(err)
		}
		return res.Samples[0].AlphaHigher, res.Samples[len(res.Samples)-1].AlphaHigher
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		df, dl := measure(mkTrace(gen.SmallConfig().Attach.PALogSlope))
		ff, fl := measure(mkTrace(0))
		if i == 0 {
			b.Logf("with decay: alpha %.3f -> %.3f (Δ%.3f) | constant PA: %.3f -> %.3f (Δ%.3f)",
				df, dl, dl-df, ff, fl, fl-ff)
		}
	}
}

// BenchmarkAblationTriangleClosure shows triangle closure's effect on the
// final clustering coefficient and modularity.
func BenchmarkAblationTriangleClosure(b *testing.B) {
	build := func(p float64) (clustering, modularity float64) {
		cfg := gen.SmallConfig()
		cfg.Merge = nil
		cfg.Days = 200
		cfg.Attach.TriangleProb = p
		tr, err := gen.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		st, err := trace.Replay(tr.Events, trace.Hooks{})
		if err != nil {
			b.Fatal(err)
		}
		rng := stats.NewRand(1)
		cl := metrics.SampledClustering(st.Graph, 1000, rng)
		lr, err := louvain.Run(st.Graph, louvain.Options{Delta: 0.04, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return cl, lr.Modularity
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c1, m1 := build(gen.SmallConfig().Attach.TriangleProb)
		c0, m0 := build(0)
		if i == 0 {
			b.Logf("triangle on:  clustering=%.3f modularity=%.3f", c1, m1)
			b.Logf("triangle off: clustering=%.3f modularity=%.3f", c0, m0)
		}
	}
}

// BenchmarkSubstrates microbenchmarks the hot substrate operations.
func BenchmarkSubstrateBFS(b *testing.B) {
	tr := benchTrace(b)
	st, err := trace.Replay(tr.Events, trace.Hooks{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Graph.BFS(graph.NodeID(i % st.Graph.NumNodes()))
	}
}

func BenchmarkSubstrateLouvain(b *testing.B) {
	tr := benchTrace(b)
	st, err := trace.Replay(tr.Events, trace.Hooks{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := louvain.Run(st.Graph, louvain.Options{Delta: 0.04, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateGenerate(b *testing.B) {
	cfg := gen.SmallConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := gen.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateMergeAnalysis(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := osnmerge.Analyze(tr.Events, tr.Meta.MergeDay, osnmerge.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalResume is the checkpointed state plane's headline
// (DESIGN.md §6): serving the analysis after a trace gained days, as a
// from-zero full replay versus a resume from the end-of-run checkpoint
// the shorter trace's run left behind. The setup mimics the real
// incremental workflow — generate a base trace, run it once with
// checkpoints enabled, regenerate with a longer horizon (same seed: the
// base trace is an exact prefix, pinned by
// TestExtendedHorizonKeepsPrefix) — so the Resume arm restores state
// written against the *old* file and replays only the appended days off
// the new file's day index, writing its own end-of-run checkpoint for
// the next increment (each timed iteration starts from a fresh copy of
// the base run's checkpoint chain). Both arms produce bit-identical
// figure tables (asserted here once; TestResumeMatchesFromZero holds it
// per stage set).
//
// Two append widths bound the scenario: +30 days and +7 days. The
// speedup is governed by how much analysis mass the appended window
// carries — the default preset compounds ~0.7%/day, so +30 days is ~22%
// of all events (and the most expensive ones), while a weekly increment
// is ~5%.
//
// Defaults to gen.DefaultConfig scale (771-day base, ~10⁵ nodes);
// -short swaps in the test-scale preset for the CI smoke.
// BENCH_checkpoint.json tracks the datapoints.
func BenchmarkIncrementalResume(b *testing.B) {
	gcfg := gen.DefaultConfig()
	if testing.Short() {
		gcfg = gen.SmallConfig()
	}

	dir := b.TempDir()
	basePath := filepath.Join(dir, "base.trace")
	baseMeta, err := gen.GenerateToFile(gcfg, basePath)
	if err != nil {
		b.Fatal(err)
	}
	baseSrc, err := trace.OpenFileSource(basePath)
	if err != nil {
		b.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.DeltaSweep = nil // the sweep has its own bench; keep this one cadence-bound
	baseCkpt := filepath.Join(dir, "ckpt-base")
	cfg.CheckpointDir = baseCkpt
	cfg.CheckpointEvery = 90

	// The base run: the analysis that existed before the trace grew,
	// leaving the checkpoint chain (cadence days plus the end-of-run
	// day) behind. Untimed.
	if _, err := core.RunPlan(context.Background(), baseSrc, cfg, nil); err != nil {
		b.Fatal(err)
	}
	latest := baseMeta.Days - 1 // the end-of-run checkpoint day

	// cloneCheckpoints copies the base chain into a fresh directory, so
	// one iteration's end-of-run checkpoint can't serve the next one.
	cloneCheckpoints := func(b *testing.B) string {
		b.Helper()
		clone := filepath.Join(b.TempDir(), "ckpt")
		if err := os.MkdirAll(clone, 0o755); err != nil {
			b.Fatal(err)
		}
		ents, err := os.ReadDir(baseCkpt)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range ents {
			raw, err := os.ReadFile(filepath.Join(baseCkpt, e.Name()))
			if err != nil {
				b.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(clone, e.Name()), raw, 0o644); err != nil {
				b.Fatal(err)
			}
		}
		return clone
	}

	for _, appendDays := range []int32{30, 7} {
		b.Run(fmt.Sprintf("Append%d", appendDays), func(b *testing.B) {
			extCfg := gcfg
			extCfg.Days += appendDays
			extPath := filepath.Join(dir, fmt.Sprintf("ext%d.trace", appendDays))
			extMeta, err := gen.GenerateToFile(extCfg, extPath)
			if err != nil {
				b.Fatal(err)
			}
			extSrc, err := trace.OpenFileSource(extPath)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("extended trace: %d nodes, %d edges, %d days (+%d); resume from day %d",
				extMeta.Nodes, extMeta.Edges, extMeta.Days, appendDays, latest)

			plainCfg := cfg
			plainCfg.CheckpointDir = "" // the from-zero arm neither writes nor reads checkpoints
			resumeCfg := cfg
			resumeCfg.Resume = true

			// Equivalence first, outside the timers: resumed-after-append
			// must serve the same tables as the from-zero replay.
			fullRes, err := core.RunPlan(context.Background(), extSrc, plainCfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			resumeCfg.CheckpointDir = cloneCheckpoints(b)
			resRes, err := core.RunPlan(context.Background(), extSrc, resumeCfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			if resRes.ResumedFromDay != latest {
				b.Fatalf("ResumedFromDay = %d, want %d", resRes.ResumedFromDay, latest)
			}
			for _, id := range []string{"fig1a", "fig2c", "fig3c", "fig5b", "fig8c"} {
				ft, ferr := fullRes.Figure(id)
				rt, rerr := resRes.Figure(id)
				if (ferr == nil) != (rerr == nil) {
					b.Fatalf("%s: availability diverged (%v vs %v)", id, ferr, rerr)
				}
				if ferr == nil && !reflect.DeepEqual(ft, rt) {
					b.Fatalf("%s: resumed table diverged from full replay", id)
				}
			}

			b.Run("FullReplay", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.RunPlan(context.Background(), extSrc, plainCfg, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("Resume", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					resumeCfg.CheckpointDir = cloneCheckpoints(b)
					b.StartTimer()
					res, err := core.RunPlan(context.Background(), extSrc, resumeCfg, nil)
					if err != nil {
						b.Fatal(err)
					}
					if res.ResumedFromDay != latest {
						b.Fatalf("ResumedFromDay = %d, want %d", res.ResumedFromDay, latest)
					}
				}
			})
		})
	}
}

// BenchmarkStorage is the tiered storage plane's headline (DESIGN.md
// §10), in three measurements over the same generated workload:
//
//   - container size: the flat encoding versus the compressed segmented
//     container (logged as a ratio; the acceptance bar is well under
//     half at the default preset's event density),
//   - replay: the metrics stage over the flat file versus the segmented
//     one — the decode-ahead goroutine's job is to keep the segmented
//     replay within a few percent of flat,
//   - checkpoints: a tiered run (1 full : 3 deltas) logging per-object
//     bytes and write latency from the CheckpointStat observer, deltas
//     versus fulls.
//
// Both replay arms are verified bit-identical before timing. Defaults to
// gen.DefaultConfig scale; -short swaps in the test-scale preset for the
// CI smoke. BENCH_storage.json tracks the datapoints.
func BenchmarkStorage(b *testing.B) {
	gcfg := gen.DefaultConfig()
	if testing.Short() {
		gcfg = gen.SmallConfig()
	}
	dir := b.TempDir()
	flatPath := filepath.Join(dir, "flat.trace")
	segPath := filepath.Join(dir, "seg.trace")
	if _, err := gen.GenerateToFile(gcfg, flatPath); err != nil {
		b.Fatal(err)
	}
	if _, err := gen.GenerateToSegFile(gcfg, segPath); err != nil {
		b.Fatal(err)
	}
	flatInfo, err := os.Stat(flatPath)
	if err != nil {
		b.Fatal(err)
	}
	segInfo, err := os.Stat(segPath)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("container bytes: flat %d, segmented %d (%.1f%% of flat)",
		flatInfo.Size(), segInfo.Size(), 100*float64(segInfo.Size())/float64(flatInfo.Size()))

	flatSrc, err := trace.OpenFileSource(flatPath)
	if err != nil {
		b.Fatal(err)
	}
	segSrc, err := trace.OpenTrace(segPath)
	if err != nil {
		b.Fatal(err)
	}

	// The metrics stage keeps the replay decode-bound enough that the
	// decompression overhead can't hide behind snapshot-day analysis.
	cfg := core.DefaultConfig()
	cfg.DeltaSweep = nil
	cfg.SkipEvolution = true
	cfg.SkipCommunity = true
	cfg.SkipMerge = true

	// Equivalence outside the timers: the segmented replay must serve
	// the same tables as the flat one.
	flatRes, err := core.RunPlan(context.Background(), flatSrc, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	segRes, err := core.RunPlan(context.Background(), segSrc, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range []string{"fig1a", "fig1c", "fig1f"} {
		ft, ferr := flatRes.Figure(id)
		st, serr := segRes.Figure(id)
		if ferr != nil || serr != nil {
			b.Fatalf("%s: %v / %v", id, ferr, serr)
		}
		if !reflect.DeepEqual(ft, st) {
			b.Fatalf("%s: segmented replay diverged from flat", id)
		}
	}

	for _, arm := range []struct {
		name string
		src  trace.MetaSource
	}{{"ReplayFlat", flatSrc}, {"ReplaySegmented", segSrc}} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.RunPlan(context.Background(), arm.src, cfg, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// The tiered checkpoint arm, at the incremental workflow's weekly
	// cadence so each delta spans 7 days of growth and sits next to
	// fulls of comparable graph age (a 90-day cadence would compare a
	// delta against a full written when the compounding graph was a
	// fraction of the size). Retention bounds the directory as the run
	// advances. Per-object sizes and write latencies come from the
	// observer, not the (whole-run) benchmark timer.
	b.Run("TieredCheckpoints", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ccfg := cfg
			ccfg.CheckpointDir = filepath.Join(b.TempDir(), "ck")
			ccfg.CheckpointEvery = 7
			ccfg.CheckpointFullEvery = 4
			ccfg.CheckpointKeep = 2
			var stats []core.CheckpointStat
			ccfg.CheckpointObserver = func(s core.CheckpointStat) { stats = append(stats, s) }
			if _, err := core.RunPlan(context.Background(), segSrc, ccfg, nil); err != nil {
				b.Fatal(err)
			}
			if i != 0 {
				continue
			}
			var fulls, deltas int64
			var fullBytes, deltaBytes int64
			var fullMS, deltaMS float64
			for _, s := range stats {
				if s.Delta {
					deltas++
					deltaBytes += s.Bytes
					deltaMS += float64(s.Elapsed.Nanoseconds()) / 1e6
				} else {
					fulls++
					fullBytes += s.Bytes
					fullMS += float64(s.Elapsed.Nanoseconds()) / 1e6
				}
			}
			if fulls == 0 || deltas == 0 {
				b.Fatalf("tiered cadence wrote %d fulls, %d deltas", fulls, deltas)
			}
			last := stats[len(stats)-1]
			b.Logf("checkpoints: %d fulls avg %d bytes %.1fms, %d deltas avg %d bytes %.1fms (delta/full = %.1f%%); last: day %d delta=%v %d bytes",
				fulls, fullBytes/fulls, fullMS/float64(fulls),
				deltas, deltaBytes/deltas, deltaMS/float64(deltas),
				100*float64(deltaBytes/deltas)/float64(fullBytes/fulls),
				last.Day, last.Delta, last.Bytes)
		}
	})
}

// Silence unused-import gymnastics for packages used only in some benches.
var _ = community.FeatureCount

// BenchmarkReplayAllocs is the allocation-lean data plane's headline
// (DESIGN.md §11): allocation counts for the two per-event hot paths —
// decode and state apply — over the default preset, plus the peak live
// heap of a full replay. The Decode arm is a hard gate, not just a
// datapoint: the benchmark fails if a decode pass allocates at all per
// event, so the CI bench smoke catches an allocation regression in the
// decoder the moment it lands. The Apply arm's gate is amortized —
// growth must come from capacity-doubling reservations (O(log n) per
// pass), never per-event appends. -short swaps in the test-scale preset
// for the CI smoke. BENCH_alloc.json tracks the datapoints.
func BenchmarkReplayAllocs(b *testing.B) {
	gcfg := gen.DefaultConfig()
	if testing.Short() {
		gcfg = gen.SmallConfig()
	}
	path := filepath.Join(b.TempDir(), "alloc.trace")
	meta, err := gen.GenerateToFile(gcfg, path)
	if err != nil {
		b.Fatal(err)
	}
	events := int(meta.Nodes + meta.Edges)
	b.Logf("trace: %d nodes, %d edges (%d events)", meta.Nodes, meta.Edges, events)

	b.Run("Decode", func(b *testing.B) {
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		br := bufio.NewReaderSize(f, 1<<20)
		pass := func() {
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				b.Fatal(err)
			}
			br.Reset(f)
			d, err := trace.NewDecoder(br)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				_, ok, err := d.Next()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
				n++
			}
			if n != events {
				b.Fatalf("decoded %d events, want %d", n, events)
			}
		}
		// The gate: a whole decode pass may allocate only its fixed setup
		// (decoder, meta) — zero per event. One extra allocation per event
		// would overshoot this by four orders of magnitude.
		allocs := testing.AllocsPerRun(1, pass)
		if allocs > 64 {
			b.Fatalf("decode pass allocated %.0f times for %d events (%.4f/event): decode must be zero-alloc per event",
				allocs, events, allocs/float64(events))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pass()
		}
		b.ReportMetric(allocs/float64(events), "allocs/event")
	})

	b.Run("Apply", func(b *testing.B) {
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := trace.Decode(f)
		f.Close()
		if err != nil {
			b.Fatal(err)
		}
		pass := func() *trace.State {
			st := trace.NewState(0, 0)
			for _, ev := range tr.Events {
				if err := st.Apply(ev); err != nil {
					b.Fatal(err)
				}
			}
			return st
		}
		allocs := testing.AllocsPerRun(1, func() { pass() })
		if allocs > 2048 {
			b.Fatalf("apply pass allocated %.0f times for %d events (%.4f/event): growth must be amortized doubling, not per-event",
				allocs, events, allocs/float64(events))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stop := samplePeakHeap()
			st := pass()
			peak := stop()
			b.ReportMetric(peak, "peak-live-MB")
			b.ReportMetric(float64(st.Graph.NumEdges()), "edges")
		}
		b.ReportMetric(allocs/float64(events), "allocs/event")
	})
}

// BenchmarkParallelReplay measures the parallel shared pass end to end:
// the full plan (every stage plus a 2-δ sweep) over a disk-backed trace
// at 1/2/4/8 workers, reporting sec/op and peak live heap per worker
// count. Full-scale runs use the large preset with thinned measurement
// cadences — the same device as BenchmarkDeltaSweep: the per-day replay
// and stage work being parallelized is identical at any cadence, and
// thinning the snapshot schedule keeps one measured iteration in
// minutes. -short drops to the test preset for the CI smoke.
//
// Speedup is bounded by the host's core count (the workers beyond
// GOMAXPROCS only add hand-off overhead); BENCH_parallel.json records
// the measurement host's core count next to the datapoints.
func BenchmarkParallelReplay(b *testing.B) {
	gcfg := gen.LargeConfig()
	if testing.Short() {
		gcfg = gen.SmallConfig()
	}
	path := filepath.Join(b.TempDir(), "parallel.trace")
	meta, err := gen.GenerateToFile(gcfg, path)
	if err != nil {
		b.Fatal(err)
	}
	src, err := trace.OpenFileSource(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("trace: %d nodes, %d edges, %d days; GOMAXPROCS=%d",
		meta.Nodes, meta.Edges, meta.Days, runtime.GOMAXPROCS(0))

	cfg := core.DefaultConfig()
	cfg.DeltaSweep = []float64{0.01, 0.1}
	if !testing.Short() {
		cfg.MetricsEvery = 30
		cfg.PathEvery = 90
		cfg.Community.SnapshotEvery = 300
	}
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("Workers%d", workers), func(b *testing.B) {
			c := cfg
			c.Workers = workers
			for i := 0; i < b.N; i++ {
				stop := samplePeakHeap()
				res, err := core.RunPlan(ctx, src, c, nil)
				peak := stop()
				if err != nil {
					b.Fatal(err)
				}
				if len(res.DeltaSweep) != len(c.DeltaSweep) {
					b.Fatalf("sweep runs = %d", len(res.DeltaSweep))
				}
				b.ReportMetric(peak, "peak-live-MB")
			}
		})
	}
}
