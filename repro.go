// Package repro is the public facade of the reproduction of "Multi-scale
// Dynamics in a Massive Online Social Network" (Zhao et al., IMC 2012).
//
// The three calls most users need:
//
//	tr, _  := repro.Generate(repro.DefaultGenConfig()) // synthetic Renren+5Q trace
//	res, _ := repro.Run(tr, repro.DefaultPipeline())   // multi-scale analysis
//	tab, _ := res.Figure("fig3c")                      // any panel of the paper
//
// See DESIGN.md for the experiment index and the internal packages for the
// full API surface: gen (trace generator), trace (event schema and codec),
// graph/metrics/louvain/tracking/svm/powerlaw/stats (substrates), and
// evolution/community/osnmerge/core (the paper's analyses).
package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/trace"
)

// Re-exported types.
type (
	// Trace is a timestamped node/edge creation stream (the dataset).
	Trace = trace.Trace
	// Event is one creation event.
	Event = trace.Event
	// Meta summarizes a trace (counts, merge day, seed).
	Meta = trace.Meta
	// Source is a re-openable event stream — the data plane every
	// analysis consumes; SliceSource, TraceSource, and FileSource are the
	// in-memory and on-disk implementations.
	Source = trace.Source
	// MetaSource is a Source that knows its Meta without a pass.
	MetaSource = trace.MetaSource
	// GenConfig configures the synthetic trace generator.
	GenConfig = gen.Config
	// Pipeline configures the multi-scale analysis.
	Pipeline = core.Config
	// Result is the full analysis output.
	Result = core.Result
	// Table is one figure panel's data.
	Table = core.Table
	// FigurePlan is a resolved, dependency-closed stage set — the unit of
	// execution of the demand-driven pipeline.
	FigurePlan = core.FigurePlan
	// StageSpec describes one registered analysis stage (name, figures,
	// dependencies).
	StageSpec = core.StageSpec
	// MergeAccuracy is the overall Fig 6b merge-prediction evaluation.
	MergeAccuracy = core.MergeAccuracy
)

// AllFigures lists every reproducible figure panel id.
var AllFigures = core.AllFigures

// Figure-lookup errors, re-exported for errors.Is.
var (
	// ErrUnknownFigure is returned for ids outside AllFigures.
	ErrUnknownFigure = core.ErrUnknownFigure
	// ErrStageSkipped is returned when a figure's stage did not run.
	ErrStageSkipped = core.ErrStageSkipped
)

// DefaultGenConfig returns the scaled default Renren+5Q scenario
// (771 days, merge on day 386, ≈10^5 nodes).
func DefaultGenConfig() GenConfig { return gen.DefaultConfig() }

// SmallGenConfig returns a quick scenario for tests and demos.
func SmallGenConfig() GenConfig { return gen.SmallConfig() }

// LargeGenConfig returns the million-node out-of-core scenario; pair it
// with GenerateToFile + OpenTraceFile + RunSource so the event stream
// lives on disk, not in memory.
func LargeGenConfig() GenConfig { return gen.LargeConfig() }

// Generate produces a synthetic trace in memory.
func Generate(cfg GenConfig) (*Trace, error) { return gen.Generate(cfg) }

// GenerateToFile streams a synthetic trace straight to disk in the binary
// trace format, never materializing the event slice, and returns its Meta.
func GenerateToFile(cfg GenConfig, path string) (Meta, error) {
	return gen.GenerateToFile(cfg, path)
}

// OpenTraceFile validates a trace file's header and returns a re-openable
// source that replays it off disk with O(state) memory.
func OpenTraceFile(path string) (MetaSource, error) {
	fs, err := trace.OpenFileSource(path)
	if err != nil {
		return nil, err
	}
	return fs, nil
}

// DefaultPipeline returns the paper's analysis parameters at scaled sizes.
func DefaultPipeline() Pipeline { return core.DefaultConfig() }

// Run executes the multi-scale pipeline over a trace on the single-pass
// streaming engine: every analysis — the δ-sweep included — shares one
// replay and one live graph, with the sweep's per-δ detectors fanned out
// across a bounded worker pool against frozen snapshots of the shared
// graph (see DESIGN.md §4).
func Run(tr *Trace, cfg Pipeline) (*Result, error) { return core.Run(tr, cfg) }

// RunSource is Run over a re-openable event source — with a source from
// OpenTraceFile the pipeline replays straight off disk and the only
// O(events) artifact is the file itself.
func RunSource(src MetaSource, cfg Pipeline) (*Result, error) { return core.RunSource(src, cfg) }

// RunContext is Run with cancellation: ctx is checked at every day
// boundary of the shared pass (including the δ-sweep's per-snapshot
// barrier), and a cancelled run returns ctx's error and no Result.
func RunContext(ctx context.Context, tr *Trace, cfg Pipeline) (*Result, error) {
	return core.RunPlan(ctx, tr.Source(), cfg, nil)
}

// RunSourceContext is RunSource with cancellation, as in RunContext.
func RunSourceContext(ctx context.Context, src MetaSource, cfg Pipeline) (*Result, error) {
	return core.RunPlan(ctx, src, cfg, nil)
}

// Plan resolves the minimal dependency-closed stage set that produces the
// requested figure panels; unknown ids fail at plan time with
// ErrUnknownFigure. With no ids the plan covers everything cfg enables.
func Plan(cfg Pipeline, figures ...string) (*FigurePlan, error) {
	return core.Plan(cfg, figures...)
}

// RunPlan executes a resolved plan over a source; a nil plan runs
// everything cfg enables. See RunContext for the cancellation contract.
func RunPlan(ctx context.Context, src MetaSource, cfg Pipeline, plan *FigurePlan) (*Result, error) {
	return core.RunPlan(ctx, src, cfg, plan)
}

// RunFigures is the demand-driven entry point: it plans and runs exactly
// the stages the requested panels need, so serving one figure pays for one
// figure's analyses, not all 30.
//
//	res, _ := repro.RunFigures(ctx, tr.Source(), cfg, "fig3c")
//	tab, _ := res.Figure("fig3c")
func RunFigures(ctx context.Context, src MetaSource, cfg Pipeline, figures ...string) (*Result, error) {
	return core.RunFigures(ctx, src, cfg, figures...)
}

// Registry returns the registered stage specs in execution order — the
// figure id → stage mapping.
func Registry() []StageSpec { return core.Registry() }

// StageFor returns the name of the stage that produces the figure id.
func StageFor(id string) (string, error) { return core.StageFor(id) }

// RunBatch executes the pipeline through the per-analysis batch entry
// points (one replay per analysis). It produces identical results to Run
// and exists as the reference implementation the engine is tested against.
func RunBatch(tr *Trace, cfg Pipeline) (*Result, error) { return core.RunBatch(tr, cfg) }

// GenerateAndRun is the one-call variant.
func GenerateAndRun(gcfg GenConfig, cfg Pipeline) (*Trace, *Result, error) {
	return core.GenerateAndRun(gcfg, cfg)
}

// Validate checks the structural invariants of an in-memory trace. It is a
// thin wrapper over ValidateSource.
func Validate(events []Event) error { return trace.ValidateSource(trace.SliceSource(events)) }

// ValidateSource checks the structural invariants of a trace streamed from
// a re-openable source — with a source from OpenTraceFile the on-disk
// trace is validated in one pass without materializing the event slice.
func ValidateSource(src Source) error { return trace.ValidateSource(src) }
