// Package repro is the public facade of the reproduction of "Multi-scale
// Dynamics in a Massive Online Social Network" (Zhao et al., IMC 2012).
//
// The three calls most users need:
//
//	tr, _  := repro.Generate(repro.DefaultGenConfig()) // synthetic Renren+5Q trace
//	res, _ := repro.Run(tr, repro.DefaultPipeline())   // multi-scale analysis
//	tab, _ := res.Figure("fig3c")                      // any panel of the paper
//
// See DESIGN.md for the experiment index and the internal packages for the
// full API surface: gen (trace generator), trace (event schema and codec),
// graph/metrics/louvain/tracking/svm/powerlaw/stats (substrates), and
// evolution/community/osnmerge/core (the paper's analyses).
package repro

import (
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/trace"
)

// Re-exported types.
type (
	// Trace is a timestamped node/edge creation stream (the dataset).
	Trace = trace.Trace
	// Event is one creation event.
	Event = trace.Event
	// Meta summarizes a trace (counts, merge day, seed).
	Meta = trace.Meta
	// Source is a re-openable event stream — the data plane every
	// analysis consumes; SliceSource, TraceSource, and FileSource are the
	// in-memory and on-disk implementations.
	Source = trace.Source
	// MetaSource is a Source that knows its Meta without a pass.
	MetaSource = trace.MetaSource
	// GenConfig configures the synthetic trace generator.
	GenConfig = gen.Config
	// Pipeline configures the multi-scale analysis.
	Pipeline = core.Config
	// Result is the full analysis output.
	Result = core.Result
	// Table is one figure panel's data.
	Table = core.Table
)

// AllFigures lists every reproducible figure panel id.
var AllFigures = core.AllFigures

// DefaultGenConfig returns the scaled default Renren+5Q scenario
// (771 days, merge on day 386, ≈10^5 nodes).
func DefaultGenConfig() GenConfig { return gen.DefaultConfig() }

// SmallGenConfig returns a quick scenario for tests and demos.
func SmallGenConfig() GenConfig { return gen.SmallConfig() }

// LargeGenConfig returns the million-node out-of-core scenario; pair it
// with GenerateToFile + OpenTraceFile + RunSource so the event stream
// lives on disk, not in memory.
func LargeGenConfig() GenConfig { return gen.LargeConfig() }

// Generate produces a synthetic trace in memory.
func Generate(cfg GenConfig) (*Trace, error) { return gen.Generate(cfg) }

// GenerateToFile streams a synthetic trace straight to disk in the binary
// trace format, never materializing the event slice, and returns its Meta.
func GenerateToFile(cfg GenConfig, path string) (Meta, error) {
	return gen.GenerateToFile(cfg, path)
}

// OpenTraceFile validates a trace file's header and returns a re-openable
// source that replays it off disk with O(state) memory.
func OpenTraceFile(path string) (MetaSource, error) {
	fs, err := trace.OpenFileSource(path)
	if err != nil {
		return nil, err
	}
	return fs, nil
}

// DefaultPipeline returns the paper's analysis parameters at scaled sizes.
func DefaultPipeline() Pipeline { return core.DefaultConfig() }

// Run executes the multi-scale pipeline over a trace on the single-pass
// streaming engine: all analyses share one replay, and the δ-sweep fans
// out across a bounded worker pool (see DESIGN.md §4).
func Run(tr *Trace, cfg Pipeline) (*Result, error) { return core.Run(tr, cfg) }

// RunSource is Run over a re-openable event source — with a source from
// OpenTraceFile the pipeline replays straight off disk and the only
// O(events) artifact is the file itself.
func RunSource(src MetaSource, cfg Pipeline) (*Result, error) { return core.RunSource(src, cfg) }

// RunBatch executes the pipeline through the per-analysis batch entry
// points (one replay per analysis). It produces identical results to Run
// and exists as the reference implementation the engine is tested against.
func RunBatch(tr *Trace, cfg Pipeline) (*Result, error) { return core.RunBatch(tr, cfg) }

// GenerateAndRun is the one-call variant.
func GenerateAndRun(gcfg GenConfig, cfg Pipeline) (*Trace, *Result, error) {
	return core.GenerateAndRun(gcfg, cfg)
}

// Validate checks the structural invariants of a trace.
func Validate(events []Event) error { return trace.Validate(events) }
