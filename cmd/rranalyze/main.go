// Command rranalyze runs the full multi-scale analysis pipeline on a trace
// file produced by rrgen and writes one TSV per figure panel into an output
// directory.
//
// Usage:
//
//	rranalyze -trace renren.trace -out figures/
//	rranalyze -trace renren.trace -out figures/ -only fig3c,fig5a
//	rranalyze -trace renren.trace -out figures/ -deltas 0.0001,0.01,0.04,0.1,0.3
//	rranalyze -trace renren.trace -validate -progress -out figures/
//	rranalyze -trace renren.seg -info -checkpoint-dir ckpts  # trace stats + checkpoint inventory
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rranalyze: ")

	tracePath := flag.String("trace", "", "input trace file (required)")
	outDir := flag.String("out", "figures", "output directory for per-figure tables")
	format := flag.String("format", "tsv", "output format for figure tables: tsv or json (sets the file extension)")
	only := flag.String("only", "", "comma-separated figure ids; plans and runs exactly the stages they need")
	deltas := flag.String("deltas", "", "comma-separated Louvain δ values for the Fig 4 sweep, e.g. 0.01,0.04,0.16")
	sweep := flag.String("sweep", "", "deprecated alias for -deltas (mutually exclusive with it)")
	progress := flag.Bool("progress", false, "write a day/event progress line to stderr while the shared pass replays")
	checkpointDir := flag.String("checkpoint-dir", "", "write pipeline checkpoints into this directory at the -checkpoint-every cadence")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in days (0 = default 90; needs -checkpoint-dir)")
	checkpointFullEvery := flag.Int("checkpoint-full-every", 0, "tiered cadence: of every N checkpoints write 1 full and N-1 deltas against their predecessor (<=1 = all full)")
	checkpointKeep := flag.Int("checkpoint-keep", 0, "retain only the newest N full checkpoints (plus their delta chains) under this config's fingerprint (0 = keep everything)")
	resume := flag.Bool("resume", false, "resume from the latest compatible checkpoint in -checkpoint-dir instead of replaying from day 0")
	info := flag.Bool("info", false, "print trace stats (segment/compression figures for segmented traces) and the -checkpoint-dir inventory, then exit")
	snapshotEvery := flag.Int("snapshot-every", 0, "community snapshot cadence in days (0 = default 3)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the parallel shared pass and all fan-out work (results are bit-identical at any count)")
	distDays := flag.String("dist-days", "", "comma-separated days for size distributions (default: three late snapshot days)")
	skip := flag.String("skip", "", "comma-separated stages to skip: metrics,evolution,community,merge")
	validate := flag.Bool("validate", false, "stream-validate the trace's structural invariants before analyzing")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the pipeline run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the pipeline run to this file")
	flag.Parse()

	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	outFormat, err := core.ParseFormat(*format)
	if err != nil {
		log.Fatal(err)
	}
	// The trace is never loaded: every analysis pass streams it off disk
	// through a cursor, so memory stays O(state). OpenTrace sniffs the
	// magic, so flat and compressed segmented traces both analyze.
	src, err := trace.OpenTrace(*tracePath)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	if *info {
		printInfo(src, *tracePath, *checkpointDir)
		return
	}
	if *validate {
		if err := trace.ValidateSource(src); err != nil {
			log.Fatalf("validate: %v", err)
		}
		log.Print("trace validated")
	}
	meta := src.Meta()
	log.Printf("opened %s: %d nodes, %d edges, %d days, merge day %d",
		*tracePath, meta.Nodes, meta.Edges, meta.Days, meta.MergeDay)

	cfg := core.DefaultConfig()
	if *workers < 1 {
		log.Fatalf("-workers must be >= 1, got %d", *workers)
	}
	cfg.Workers = *workers
	if *snapshotEvery > 0 {
		cfg.Community.SnapshotEvery = int32(*snapshotEvery)
	}
	cfg.Community.SizeDistDays = parseDays(*distDays, meta.Days, cfg.Community.StartDay, cfg.Community.SnapshotEvery)
	for _, s := range strings.Split(*skip, ",") {
		switch strings.TrimSpace(s) {
		case "metrics":
			cfg.SkipMetrics = true
		case "evolution":
			cfg.SkipEvolution = true
		case "community":
			cfg.SkipCommunity = true
		case "merge":
			cfg.SkipMerge = true
		case "":
		default:
			log.Fatalf("unknown stage %q", s)
		}
	}
	if *deltas != "" && *sweep != "" {
		log.Fatal("-deltas and the deprecated -sweep are mutually exclusive; pass only -deltas")
	}
	deltaSpec := *deltas
	if deltaSpec == "" {
		deltaSpec = *sweep // deprecated alias
	}
	if deltaSpec != "" {
		vs, err := core.ParseDeltaSweep(deltaSpec)
		if err != nil {
			log.Fatal(err)
		}
		cfg.DeltaSweep = vs
	}
	if *progress {
		cfg.OnProgress = func(day int32, events int64) {
			fmt.Fprintf(os.Stderr, "\rday %d/%d, %d events", day, meta.Days, events)
		}
	}
	// The checkpointed state plane: write day-addressed snapshots while
	// analyzing, and resume from the latest compatible one after the
	// trace file gained days (see README's incremental workflow).
	if *resume && *checkpointDir == "" {
		log.Fatal("-resume needs -checkpoint-dir")
	}
	cfg.CheckpointDir = *checkpointDir
	cfg.CheckpointEvery = int32(*checkpointEvery)
	cfg.CheckpointFullEvery = *checkpointFullEvery
	cfg.CheckpointKeep = *checkpointKeep
	cfg.Resume = *resume

	// An explicit -only list plans the minimal stage set; otherwise a nil
	// plan translates the -skip toggles. SIGINT cancels every in-flight
	// replay pass at its next day boundary.
	var plan *core.FigurePlan
	figs := core.AllFigures
	if *only != "" {
		var ids []string
		for _, id := range strings.Split(*only, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
		if plan, err = core.Plan(cfg, ids...); err != nil {
			log.Fatalf("plan: %v", err)
		}
		figs = plan.Figures()
		log.Printf("plan: stages %s", strings.Join(plan.Stages(), ", "))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Profiling brackets the pipeline run explicitly rather than via
	// defers: log.Fatalf exits without running defers, which would leave
	// a truncated CPU profile on exactly the failing runs one wants to
	// inspect.
	var cpuOut *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		cpuOut = f
	}

	res, err := core.RunPlan(ctx, src, cfg, plan)
	if *progress {
		fmt.Fprintln(os.Stderr) // finish the \r progress line
	}
	if cpuOut != nil {
		pprof.StopCPUProfile()
		if cerr := cpuOut.Close(); cerr != nil {
			log.Printf("cpuprofile: %v", cerr)
		}
	}
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		f.Close()
	}
	if res.ResumedFromDay >= 0 {
		if res.ResumedFromDay >= meta.Days-1 {
			log.Printf("resumed from checkpoint day %d (nothing newer to replay)", res.ResumedFromDay)
		} else {
			log.Printf("resumed from checkpoint day %d (replayed days %d..%d)", res.ResumedFromDay, res.ResumedFromDay+1, meta.Days-1)
		}
	} else if *resume {
		log.Printf("no compatible checkpoint in %s; replayed from day 0 (checkpoints bind the exact config — e.g. the default -dist-days follow the trace length, so pin -dist-days across incremental runs)", *checkpointDir)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatalf("mkdir: %v", err)
	}
	written := 0
	for _, id := range figs {
		tab, err := res.Figure(id)
		if err != nil {
			log.Printf("skipping %s: %v", id, err)
			continue
		}
		path := filepath.Join(*outDir, id+outFormat.Ext())
		out, err := os.Create(path)
		if err != nil {
			log.Fatalf("create %s: %v", path, err)
		}
		if err := tab.Write(out, outFormat); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		out.Close()
		written++
	}
	fmt.Printf("wrote %d figure tables to %s\n", written, *outDir)
}

// printInfo renders the -info report: trace identity, storage shape
// (segment and compression figures when the trace is segmented), and the
// checkpoint inventory when -checkpoint-dir names one.
func printInfo(src trace.MetaSource, path, ckptDir string) {
	meta := src.Meta()
	fmt.Printf("trace %s\n", path)
	fmt.Printf("  days %d, nodes %d (%d xiaonei / %d 5q / %d new), edges %d, merge day %d, seed %d\n",
		meta.Days, meta.Nodes, meta.Xiaonei, meta.FiveQ, meta.NewUsers, meta.Edges, meta.MergeDay, meta.Seed)
	if sf, ok := src.(interface{ Stats() trace.SegStats }); ok {
		s := sf.Stats()
		ratio := 0.0
		if s.RawBytes > 0 {
			ratio = 100 * float64(s.CompressedBytes) / float64(s.RawBytes)
		}
		fmt.Printf("  format segmented: %d segments, %d events, %d bytes raw -> %d compressed (%.1f%%), day index %v\n",
			s.Segments, s.Events, s.RawBytes, s.CompressedBytes, ratio, s.Indexed)
	} else {
		fmt.Println("  format flat")
	}
	if ckptDir == "" {
		return
	}
	infos, err := core.ListCheckpoints(storage.NewDirBackend(ckptDir))
	if err != nil {
		log.Fatalf("checkpoint inventory: %v", err)
	}
	fmt.Printf("checkpoints %s (%d objects)\n", ckptDir, len(infos))
	for _, ci := range infos {
		kind := "full"
		if ci.Delta {
			kind = fmt.Sprintf("delta of day %d", ci.ParentDay)
		}
		line := fmt.Sprintf("  %-24s day %4d  %10d bytes  fingerprint %016x  %s",
			ci.Name, ci.Day, ci.Size, ci.ConfigHash, kind)
		if ci.Err != "" {
			line = fmt.Sprintf("  %-24s day %4d  %10d bytes  UNREADABLE: %s", ci.Name, ci.Day, ci.Size, ci.Err)
		}
		fmt.Println(line)
	}
}

// parseDays parses -dist-days, defaulting to three evenly spaced days in
// the trace's second half, snapped onto the snapshot grid.
func parseDays(s string, days, startDay, every int32) []int32 {
	if s != "" {
		var out []int32
		for _, d := range strings.Split(s, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(d))
			if err != nil {
				log.Fatalf("bad dist day %q: %v", d, err)
			}
			out = append(out, int32(v))
		}
		return out
	}
	if days <= 0 {
		return nil
	}
	snap := func(d int32) int32 {
		if d < startDay {
			return startDay
		}
		return d - (d-startDay)%every
	}
	return []int32{snap(days / 2), snap(days * 3 / 4), snap(days - 1)}
}
