// Command rrgen generates a synthetic Renren-like dynamic-network trace and
// writes it in the binary trace format.
//
// Usage:
//
//	rrgen -preset default -seed 1 -out renren.trace
//	rrgen -preset small -days 250 -out small.trace
//	rrgen -preset default -days 801 -out extended.trace  # same seed: 771-day prefix unchanged
//	rrgen -preset default -merge-day 300 -out early.trace
//	rrgen -preset large -out big.trace -check   # validate off disk after writing
//	rrgen -preset default -days 801 -append -out renren.trace  # extend in place: days 771..800 appended
//	rrgen -preset default -compress -out renren.seg  # compressed segmented container (immutable)
//
// -append extends an existing trace file in place instead of rewriting
// it: the prefix days are verified against a re-simulation (any config
// drift aborts before a byte is written) and only the new days' events
// are encoded, flushed at each day barrier so a concurrent
// `rrserved -follow` picks the days up as they seal. The extended file
// is byte-identical to a from-scratch generation at the longer horizon.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rrgen: ")

	preset := flag.String("preset", "default", "config preset: default (771 days, ~10^5 nodes), small, or large (~10^6 nodes)")
	seed := flag.Int64("seed", 1, "generator seed")
	days := flag.Int("days", 0, "override trace length in days (0 = preset value); extending the horizon keeps the shorter trace as a prefix, which is what the incremental checkpoint-resume workflow appends against")
	maxNodes := flag.Int("max-nodes", 0, "override node cap (0 = preset value)")
	noMerge := flag.Bool("no-merge", false, "disable the 5Q network merge event")
	mergeDay := flag.Int("merge-day", 0, "override the 5Q merge day on the chosen preset (0 = preset value; must be < -days and needs a preset with a merge)")
	out := flag.String("out", "renren.trace", "output file")
	appendMode := flag.Bool("append", false, "extend the existing -out file in place to the longer -days horizon (same seed and knobs; only the new days are simulated onto disk)")
	compress := flag.Bool("compress", false, "write the compressed segmented container instead of the flat format (typically well under half the size; replays everywhere, but cannot be -append-extended later)")
	check := flag.Bool("check", false, "stream-validate the written trace's structural invariants (one extra pass off disk)")
	flag.Parse()

	var cfg gen.Config
	switch *preset {
	case "default":
		cfg = gen.DefaultConfig()
	case "small":
		cfg = gen.SmallConfig()
	case "large":
		cfg = gen.LargeConfig()
	default:
		log.Fatalf("unknown preset %q (want default, small, or large)", *preset)
	}
	cfg.Seed = *seed
	if *days > 0 {
		cfg.Days = int32(*days)
		if cfg.Merge != nil && cfg.Merge.Day >= cfg.Days {
			cfg.Merge = nil
		}
	}
	if *maxNodes > 0 {
		cfg.MaxNodes = *maxNodes
	}
	if *noMerge {
		cfg.Merge = nil
	}
	if *mergeDay > 0 {
		switch {
		case *noMerge:
			log.Fatal("-merge-day and -no-merge are mutually exclusive")
		case cfg.Merge == nil:
			log.Fatalf("-merge-day %d: the trimmed %d-day horizon has no merge; raise -days or drop -merge-day", *mergeDay, cfg.Days)
		case int32(*mergeDay) >= cfg.Days:
			log.Fatalf("-merge-day %d is outside the %d-day horizon", *mergeDay, cfg.Days)
		case int32(*mergeDay) <= cfg.Merge.FiveQStart:
			log.Fatalf("-merge-day %d is not after the 5Q founding day %d", *mergeDay, cfg.Merge.FiveQStart)
		}
		cfg.Merge.Day = int32(*mergeDay)
	}

	// Stream the simulation straight into the trace file: the event
	// slice is never materialized, so the large preset's ~10^7 events
	// cost generator-state memory and one file. -append reuses the
	// existing file's bytes as the simulated prefix.
	var m trace.Meta
	var err error
	verb := "wrote"
	switch {
	case *appendMode:
		if *days <= 0 {
			log.Fatal("-append needs -days set past the existing file's horizon")
		}
		if *compress {
			log.Fatal("-append and -compress are mutually exclusive: segmented traces are immutable once finalized")
		}
		m, err = gen.AppendToFile(cfg, *out)
		verb = "extended"
	case *compress:
		m, err = gen.GenerateToSegFile(cfg, *out)
	default:
		m, err = gen.GenerateToFile(cfg, *out)
	}
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	fmt.Printf("%s %s: %d days, %d nodes (%d xiaonei / %d 5q / %d new), %d edges, merge day %d\n",
		verb, *out, m.Days, m.Nodes, m.Xiaonei, m.FiveQ, m.NewUsers, m.Edges, m.MergeDay)

	if *check {
		// Validation replays the file through a cursor, so even the large
		// preset's ~10^7 events are checked in O(state) memory. OpenTrace
		// sniffs the magic, so flat and segmented outputs both validate.
		fs, err := trace.OpenTrace(*out)
		if err != nil {
			log.Fatalf("check: %v", err)
		}
		if err := trace.ValidateSource(fs); err != nil {
			log.Fatalf("check: %v", err)
		}
		fmt.Println("trace validated")
	}
}
