// Command rrgen generates a synthetic Renren-like dynamic-network trace and
// writes it in the binary trace format.
//
// Usage:
//
//	rrgen -preset default -seed 1 -out renren.trace
//	rrgen -preset small -days 250 -out small.trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/gen"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rrgen: ")

	preset := flag.String("preset", "default", "config preset: default (771 days, ~10^5 nodes) or small")
	seed := flag.Int64("seed", 1, "generator seed")
	days := flag.Int("days", 0, "override trace length in days (0 = preset value)")
	maxNodes := flag.Int("max-nodes", 0, "override node cap (0 = preset value)")
	noMerge := flag.Bool("no-merge", false, "disable the 5Q network merge event")
	out := flag.String("out", "renren.trace", "output file")
	flag.Parse()

	var cfg gen.Config
	switch *preset {
	case "default":
		cfg = gen.DefaultConfig()
	case "small":
		cfg = gen.SmallConfig()
	default:
		log.Fatalf("unknown preset %q (want default or small)", *preset)
	}
	cfg.Seed = *seed
	if *days > 0 {
		cfg.Days = int32(*days)
		if cfg.Merge != nil && cfg.Merge.Day >= cfg.Days {
			cfg.Merge = nil
		}
	}
	if *maxNodes > 0 {
		cfg.MaxNodes = *maxNodes
	}
	if *noMerge {
		cfg.Merge = nil
	}

	tr, err := gen.Generate(cfg)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	defer f.Close()
	if err := trace.Encode(f, tr); err != nil {
		log.Fatalf("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	m := tr.Meta
	fmt.Printf("wrote %s: %d days, %d nodes (%d xiaonei / %d 5q / %d new), %d edges, merge day %d\n",
		*out, m.Days, m.Nodes, m.Xiaonei, m.FiveQ, m.NewUsers, m.Edges, m.MergeDay)
}
