// Command rrserved is the long-lived figure-serving daemon: it loads a
// trace's warm analysis state once (resuming the newest compatible
// checkpoint when -checkpoint-dir is set), then serves every figure panel
// of the paper over HTTP as TSV or JSON — repeat fetches are O(cache
// lookup), not O(replay).
//
// Usage:
//
//	rrserved -trace renren.trace -checkpoint-dir ckpts -addr :8080
//	curl localhost:8080/figures/fig1a
//	curl "localhost:8080/figures/fig4a?delta=0.01,0.04&format=json"
//	curl localhost:8080/statz
//	curl -X POST localhost:8080/refresh   # after the trace gained days
//
// With -follow the daemon tail-follows a trace a writer is still
// appending to (e.g. `rrgen -append` in another process): every newly
// sealed day is detected by a cheap tail probe, applied through the
// incremental checkpoint resume, and republished — served figures stay
// continuously fresh, and /statz reports the ingest lag:
//
//	rrserved -trace renren.trace -checkpoint-dir ckpts -follow -poll 2s
//
// The tiered checkpoint cadence keeps the state plane's footprint flat
// under -follow: most checkpoints become small deltas against their
// predecessor, and retention prunes chains the resume can no longer pick:
//
//	rrserved -trace renren.trace -checkpoint-dir ckpts -follow \
//	    -checkpoint-full-every 4 -checkpoint-keep 2
//
// See DESIGN.md §8 for the serving architecture and §9 for the live
// ingest plane.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "input trace file (required)")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	checkpointDir := flag.String("checkpoint-dir", "", "checkpointed state plane: resume the warm pass from here and write new checkpoints as it advances")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in days (0 = default 90; needs -checkpoint-dir)")
	checkpointFullEvery := flag.Int("checkpoint-full-every", 0, "tiered cadence: of every N checkpoints write 1 full and N-1 deltas against their predecessor (<=1 = all full)")
	checkpointKeep := flag.Int("checkpoint-keep", 0, "retain only the newest N full checkpoints (plus their delta chains) under this config's fingerprint (0 = keep everything)")
	deltas := flag.String("deltas", "0.0001,0.01,0.04,0.1,0.3", "warm Louvain δ grid for the fig4 panels; requests with other δ-sets run cold plans")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for plan execution")
	cacheMB := flag.Int64("cache-mb", 64, "result cache cap in MiB")
	refreshEvery := flag.Duration("refresh-every", 0, "poll the trace file at this interval and republish when it gained days (0 = only explicit POST /refresh); the file must be finalized at every poll — for a file under a live writer use -follow")
	follow := flag.Bool("follow", false, "tail-follow a growing trace: probe for newly sealed days and republish as they land, tolerating in-progress writes and torn tails (mutually exclusive with -refresh-every)")
	poll := flag.Duration("poll", 500*time.Millisecond, "tail probe interval in -follow mode (backs off up to 10x while the file is idle)")
	snapshotEvery := flag.Int("snapshot-every", 0, "community snapshot cadence override")
	distDays := flag.String("dist-days", "", "comma-separated size-distribution days (default: three late snapshot days of the trace at startup, pinned so refreshes keep resuming)")
	logLevel := flag.String("log-level", "info", "slog level: debug, info, warn, or error")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the same listener (opt-in: profiling endpoints expose internals)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("bad -log-level", "err", err)
		os.Exit(2)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 1 {
		log.Error("-workers must be >= 1", "got", *workers)
		os.Exit(2)
	}
	if *follow && *refreshEvery > 0 {
		log.Error("-follow and -refresh-every are mutually exclusive")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The trace probe. In -follow mode every open — including this
	// startup one — goes through the tail prober, which reads only the
	// sealed prefix of a file a writer may still be appending to; the
	// daemon waits for the first sealed day rather than failing when it
	// wins the race against the writer.
	var meta trace.Meta
	var tailer *ingest.Tailer
	var openSealed func() (trace.MetaSource, error)
	if *follow {
		tailer = ingest.NewTailer(ingest.Options{Path: *tracePath, Poll: *poll, Log: log})
		openSealed = tailer.OpenSealed
		src, err := openSealed()
		for err != nil {
			log.Info("waiting for a sealed trace prefix", "trace", *tracePath, "err", err)
			select {
			case <-ctx.Done():
				os.Exit(1)
			case <-time.After(*poll):
			}
			src, err = openSealed()
		}
		meta = src.Meta()
	} else {
		// OpenTrace sniffs the magic: flat and compressed segmented
		// traces are both servable (the latter only finalized, so not
		// under -follow, which tails a growing flat file).
		src, err := trace.OpenTrace(*tracePath)
		if err != nil {
			log.Error("open trace", "err", err)
			os.Exit(1)
		}
		meta = src.Meta()
	}

	// The warm configuration. SizeDistDays is pinned from the trace's
	// length at startup (not re-derived on refresh): the days are part of
	// the config fingerprint, and shifting them with every appended day
	// would invalidate the checkpoints the incremental refresh resumes
	// from — exactly the trap rranalyze's -dist-days docs warn about.
	cfg := core.DefaultConfig()
	cfg.Workers = *workers
	cfg.CheckpointEvery = int32(*checkpointEvery)
	if *snapshotEvery > 0 {
		cfg.Community.SnapshotEvery = int32(*snapshotEvery)
	}
	vs, err := core.ParseDeltaSweep(*deltas)
	if err != nil {
		log.Error("bad -deltas", "err", err)
		os.Exit(2)
	}
	cfg.DeltaSweep = vs
	cfg.Community.SizeDistDays = parseDistDays(log, *distDays, meta.Days, cfg.Community.StartDay, cfg.Community.SnapshotEvery)

	log.Info("loading warm state",
		"trace", *tracePath, "days", meta.Days, "nodes", meta.Nodes, "edges", meta.Edges,
		"checkpoint_dir", *checkpointDir)
	srv, err := serve.NewServer(ctx, serve.Options{
		TracePath:           *tracePath,
		CheckpointDir:       *checkpointDir,
		CheckpointFullEvery: *checkpointFullEvery,
		CheckpointKeep:      *checkpointKeep,
		Config:              cfg,
		CacheBytes:          *cacheMB << 20,
		Log:                 log,
		Open:                openSealed, // nil outside -follow: default finalized-file probe
	})
	if err != nil {
		log.Error("load", "err", err)
		os.Exit(1)
	}
	defer srv.Close()

	if *follow {
		applier := ingest.NewApplier(srv, tailer)
		srv.RegisterStatz("ingest", applier.Statz)
		go func() {
			if err := applier.Run(ctx); ctx.Err() == nil {
				log.Error("follow loop exited", "err", err)
			}
		}()
		log.Info("following", "trace", *tracePath, "poll", *poll)
	}

	if *refreshEvery > 0 {
		go func() {
			t := time.NewTicker(*refreshEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if _, _, err := srv.Refresh(ctx); err != nil && ctx.Err() == nil {
						log.Error("periodic refresh", "err", err)
					}
				}
			}
		}()
	}

	handler := srv.Handler()
	if *pprofFlag {
		// net/http/pprof registers on http.DefaultServeMux in its init;
		// mounting it explicitly keeps the endpoints off the default
		// (non-pprof) configuration.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}
	hs := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		<-ctx.Done()
		log.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
	}()
	log.Info("serving", "addr", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("serve", "err", err)
		os.Exit(1)
	}
}

// parseDistDays parses -dist-days, defaulting to three evenly spaced days
// in the trace's second half snapped onto the snapshot grid — the same
// derivation rranalyze uses.
func parseDistDays(log *slog.Logger, s string, days, startDay, every int32) []int32 {
	if s != "" {
		var out []int32
		for _, d := range strings.Split(s, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(d))
			if err != nil {
				log.Error("bad -dist-days", "value", d, "err", err)
				os.Exit(2)
			}
			out = append(out, int32(v))
		}
		return out
	}
	if days <= 0 {
		return nil
	}
	snap := func(d int32) int32 {
		if d < startDay {
			return startDay
		}
		return d - (d-startDay)%every
	}
	return []int32{snap(days / 2), snap(days * 3 / 4), snap(days - 1)}
}
