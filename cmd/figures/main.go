// Command figures regenerates the paper's figure data end to end: it
// generates a synthetic trace (or streams one off disk), runs the
// multi-scale pipeline, and prints the requested panel(s) as TSV.
//
// Usage:
//
//	figures -only fig3c                 # one panel, minimal stage plan
//	figures -only fig3c,fig5a           # two panels, union of their stages
//	figures -fig all -preset default    # every panel at the default scale
//	figures -only fig4a -deltas 0.01,0.04,0.16 # the δ sweep panels
//	figures -list                       # figure id -> producing stage
//	figures -preset large -encode renren.trace   # stream-generate to disk
//	figures -trace renren.trace -only fig8c      # replay off disk, O(state) memory
//	figures -only fig1a -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	fig := flag.String("fig", "all", "figure id (e.g. fig3c) or \"all\"")
	only := flag.String("only", "", "comma-separated figure ids; plans and runs exactly the stages they need (overrides -fig)")
	list := flag.Bool("list", false, "print every figure id with the stage that produces it, and exit")
	preset := flag.String("preset", "small", "generator preset when no trace file is given: small, default, or large")
	tracePath := flag.String("trace", "", "optional trace file, replayed off disk (overrides -preset)")
	seed := flag.Int64("seed", 1, "generator seed")
	deltas := flag.String("deltas", "", "comma-separated Louvain δ values for the fig4 sweep, e.g. 0.01,0.04,0.16 (default: the paper grid)")
	sweep := flag.String("sweep", "", "deprecated alias for -deltas (mutually exclusive with it)")
	progress := flag.Bool("progress", false, "write a day/event progress line to stderr while the shared pass replays")
	checkpointDir := flag.String("checkpoint-dir", "", "write pipeline checkpoints into this directory at the -checkpoint-every cadence")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in days (0 = default 90; needs -checkpoint-dir)")
	resume := flag.Bool("resume", false, "resume from the latest compatible checkpoint in -checkpoint-dir instead of replaying from day 0")
	snapshotEvery := flag.Int("snapshot-every", 0, "community snapshot cadence override")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the parallel shared pass and all fan-out work (results are bit-identical at any count)")
	format := flag.String("format", "tsv", "output format for figure tables: tsv or json")
	encode := flag.String("encode", "", "stream the generated trace to this file and exit (no analysis)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the pipeline run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the pipeline run to this file")
	flag.Parse()

	outFormat, err := core.ParseFormat(*format)
	if err != nil {
		log.Fatal(err)
	}

	if *list {
		// The id -> stage mapping comes from the planner registry, so a
		// newly registered stage shows up here without touching this tool.
		for _, id := range core.AllFigures {
			stage, err := core.StageFor(id)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s\t%s\n", id, stage)
		}
		return
	}

	genConfig := func() gen.Config {
		var cfg gen.Config
		switch *preset {
		case "small":
			cfg = gen.SmallConfig()
		case "default":
			cfg = gen.DefaultConfig()
		case "large":
			cfg = gen.LargeConfig()
		default:
			log.Fatalf("unknown preset %q (want small, default, or large)", *preset)
		}
		cfg.Seed = *seed
		return cfg
	}

	// Encode mode: generate → stream to disk, never materializing the
	// event slice; analysis happens later from the file.
	if *encode != "" {
		if *tracePath != "" {
			log.Fatal("-encode generates a trace; it cannot be combined with -trace")
		}
		meta, err := gen.GenerateToFile(genConfig(), *encode)
		if err != nil {
			log.Fatalf("encode: %v", err)
		}
		fmt.Printf("wrote %s: %d days, %d nodes (%d xiaonei / %d 5q / %d new), %d edges, merge day %d\n",
			*encode, meta.Days, meta.Nodes, meta.Xiaonei, meta.FiveQ, meta.NewUsers, meta.Edges, meta.MergeDay)
		return
	}

	var src trace.MetaSource
	if *tracePath != "" {
		fs, err := trace.OpenFileSource(*tracePath)
		if err != nil {
			log.Fatalf("open trace: %v", err)
		}
		src = fs
	} else {
		tr, err := gen.Generate(genConfig())
		if err != nil {
			log.Fatalf("generate: %v", err)
		}
		src = tr.Source()
	}
	meta := src.Meta()
	log.Printf("trace: %d nodes, %d edges, %d days, merge day %d",
		meta.Nodes, meta.Edges, meta.Days, meta.MergeDay)

	// Resolve the requested panels into a minimal dependency-closed stage
	// plan: asking for one figure runs exactly the stages it needs.
	sel := *fig
	if *only != "" {
		sel = *only
	}
	var ids []string
	if sel == "all" {
		ids = core.AllFigures
	} else {
		for _, id := range strings.Split(sel, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	cfg := core.DefaultConfig()
	if *workers < 1 {
		log.Fatalf("-workers must be >= 1, got %d", *workers)
	}
	cfg.Workers = *workers
	if *snapshotEvery > 0 {
		cfg.Community.SnapshotEvery = int32(*snapshotEvery)
	}
	// δ values must be in place before planning — a fig4 request with an
	// empty sweep is rejected at plan time. Setting the default grid is
	// free when the sweep stage doesn't make the plan.
	if *deltas != "" && *sweep != "" {
		log.Fatal("-deltas and the deprecated -sweep are mutually exclusive; pass only -deltas")
	}
	deltaSpec := *deltas
	if deltaSpec == "" {
		deltaSpec = *sweep // deprecated alias
	}
	if deltaSpec != "" {
		vs, err := core.ParseDeltaSweep(deltaSpec)
		if err != nil {
			log.Fatal(err)
		}
		cfg.DeltaSweep = vs
	} else {
		cfg.DeltaSweep = []float64{0.0001, 0.01, 0.04, 0.1, 0.3}
	}
	if *progress {
		cfg.OnProgress = func(day int32, events int64) {
			fmt.Fprintf(os.Stderr, "\rday %d/%d, %d events", day, meta.Days, events)
		}
	}
	// The checkpointed state plane: -checkpoint-dir writes day-addressed
	// snapshots at the cadence; -resume restores the latest compatible
	// one and replays only the days after it (incompatible or absent
	// checkpoints fall back to day 0).
	if *resume && *checkpointDir == "" {
		log.Fatal("-resume needs -checkpoint-dir")
	}
	cfg.CheckpointDir = *checkpointDir
	cfg.CheckpointEvery = int32(*checkpointEvery)
	cfg.Resume = *resume
	plan, err := core.Plan(cfg, ids...)
	if err != nil {
		log.Fatalf("plan: %v", err)
	}
	log.Printf("plan: stages %s for %d figure(s)", strings.Join(plan.Stages(), ", "), len(plan.Figures()))
	if plan.Has("community") || plan.Has("sweep") {
		d := meta.Days
		grid := func(x int32) int32 {
			if x < cfg.Community.StartDay {
				return cfg.Community.StartDay
			}
			return x - (x-cfg.Community.StartDay)%cfg.Community.SnapshotEvery
		}
		cfg.Community.SizeDistDays = []int32{grid(d / 2), grid(d * 3 / 4), grid(d - 1)}
	}

	// Interrupting the run (SIGINT) cancels every in-flight replay pass at
	// its next day boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Profiling brackets the pipeline run explicitly rather than via
	// defers: log.Fatalf exits without running defers, which would leave
	// a truncated CPU profile on exactly the failing runs one wants to
	// inspect.
	var cpuOut *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		cpuOut = f
	}

	res, err := core.RunPlan(ctx, src, cfg, plan)
	if *progress {
		fmt.Fprintln(os.Stderr) // finish the \r progress line
	}
	if cpuOut != nil {
		pprof.StopCPUProfile()
		if cerr := cpuOut.Close(); cerr != nil {
			log.Printf("cpuprofile: %v", cerr)
		}
	}
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}
	if res.ResumedFromDay >= 0 {
		if res.ResumedFromDay >= meta.Days-1 {
			log.Printf("resumed from checkpoint day %d (nothing newer to replay)", res.ResumedFromDay)
		} else {
			log.Printf("resumed from checkpoint day %d (replayed days %d..%d)", res.ResumedFromDay, res.ResumedFromDay+1, meta.Days-1)
		}
	} else if *resume {
		log.Printf("no compatible checkpoint in %s; replayed from day 0 (checkpoints bind the exact config and stage plan)", *checkpointDir)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		f.Close()
	}

	for _, id := range plan.Figures() {
		tab, err := res.Figure(id)
		if err != nil {
			log.Printf("%s: %v", id, err)
			continue
		}
		if err := tab.Write(os.Stdout, outFormat); err != nil {
			log.Fatalf("write: %v", err)
		}
		fmt.Println()
	}
}
