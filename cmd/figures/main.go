// Command figures regenerates the paper's figure data end to end: it
// generates a synthetic trace (or loads one), runs the multi-scale
// pipeline, and prints the requested panel(s) as TSV.
//
// Usage:
//
//	figures -fig fig3c                  # one panel on the small preset
//	figures -fig all -preset default    # every panel at the default scale
//	figures -fig fig4a -sweep 0.01,0.1  # the δ sweep panels
//	figures -trace renren.trace -fig fig8c
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	fig := flag.String("fig", "all", "figure id (e.g. fig3c) or \"all\"")
	preset := flag.String("preset", "small", "generator preset when no trace file is given: small or default")
	tracePath := flag.String("trace", "", "optional trace file (overrides -preset)")
	seed := flag.Int64("seed", 1, "generator seed")
	sweep := flag.String("sweep", "", "comma-separated δ values; required for fig4*")
	snapshotEvery := flag.Int("snapshot-every", 0, "community snapshot cadence override")
	flag.Parse()

	var tr *trace.Trace
	var err error
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatalf("open: %v", err)
		}
		tr, err = trace.Decode(f)
		f.Close()
		if err != nil {
			log.Fatalf("decode: %v", err)
		}
	} else {
		var cfg gen.Config
		switch *preset {
		case "small":
			cfg = gen.SmallConfig()
		case "default":
			cfg = gen.DefaultConfig()
		default:
			log.Fatalf("unknown preset %q", *preset)
		}
		cfg.Seed = *seed
		tr, err = gen.Generate(cfg)
		if err != nil {
			log.Fatalf("generate: %v", err)
		}
	}
	log.Printf("trace: %d nodes, %d edges, %d days, merge day %d",
		tr.Meta.Nodes, tr.Meta.Edges, tr.Meta.Days, tr.Meta.MergeDay)

	wanted := map[string]bool{}
	if *fig == "all" {
		for _, id := range core.AllFigures {
			wanted[id] = true
		}
	} else {
		for _, id := range strings.Split(*fig, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	cfg := core.DefaultConfig()
	if *snapshotEvery > 0 {
		cfg.Community.SnapshotEvery = int32(*snapshotEvery)
	}
	// Only run the stages the requested figures need.
	need := func(prefixes ...string) bool {
		for id := range wanted {
			for _, p := range prefixes {
				if strings.HasPrefix(id, p) {
					return true
				}
			}
		}
		return false
	}
	cfg.SkipMetrics = !need("fig1")
	cfg.SkipEvolution = !need("fig2", "fig3")
	cfg.SkipCommunity = !need("fig4", "fig5", "fig6", "fig7")
	cfg.SkipMerge = !need("fig8", "fig9")
	if !cfg.SkipCommunity {
		d := tr.Meta.Days
		grid := func(x int32) int32 {
			if x < cfg.Community.StartDay {
				return cfg.Community.StartDay
			}
			return x - (x-cfg.Community.StartDay)%cfg.Community.SnapshotEvery
		}
		cfg.Community.SizeDistDays = []int32{grid(d / 2), grid(d * 3 / 4), grid(d - 1)}
	}
	if *sweep != "" {
		for _, s := range strings.Split(*sweep, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				log.Fatalf("bad sweep value %q: %v", s, err)
			}
			cfg.DeltaSweep = append(cfg.DeltaSweep, v)
		}
	} else if need("fig4") {
		cfg.DeltaSweep = []float64{0.0001, 0.01, 0.04, 0.1, 0.3}
	}

	res, err := core.Run(tr, cfg)
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}
	for _, id := range core.AllFigures {
		if !wanted[id] {
			continue
		}
		tab, err := res.Figure(id)
		if err != nil {
			log.Printf("%s: %v", id, err)
			continue
		}
		if err := tab.WriteTSV(os.Stdout); err != nil {
			log.Fatalf("write: %v", err)
		}
		fmt.Println()
	}
}
