package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

func testEvents() []trace.Event {
	return []trace.Event{
		{Kind: trace.AddNode, Day: 0, U: 0},
		{Kind: trace.AddNode, Day: 0, U: 1},
		{Kind: trace.AddNode, Day: 2, U: 2},
		{Kind: trace.AddEdge, Day: 2, U: 0, V: 1},
		{Kind: trace.AddEdge, Day: 5, U: 1, V: 2},
	}
}

func TestEngineSinglePassAllStages(t *testing.T) {
	prev := trace.OnReplayPass
	defer func() { trace.OnReplayPass = prev }()
	var passes atomic.Int64
	trace.OnReplayPass = func() { passes.Add(1) }

	e := New()
	e.Hint(3, 2)
	type tally struct {
		events int
		days   []int32
		done   bool
	}
	tallies := make([]tally, 3)
	for i := range tallies {
		i := i
		e.Subscribe(Funcs{
			StageName: "tally",
			Event:     func(st *trace.State, ev trace.Event) { tallies[i].events++ },
			DayEnd:    func(st *trace.State, day int32) { tallies[i].days = append(tallies[i].days, day) },
			Done: func(st *trace.State) error {
				tallies[i].done = true
				return nil
			},
		})
	}
	st, err := e.Run(testEvents())
	if err != nil {
		t.Fatal(err)
	}
	if st.Graph.NumNodes() != 3 || st.Graph.NumEdges() != 2 {
		t.Fatalf("shared state: %d nodes %d edges", st.Graph.NumNodes(), st.Graph.NumEdges())
	}
	if got := passes.Load(); got != 1 {
		t.Fatalf("replay passes = %d, want 1 for %d stages", got, len(tallies))
	}
	wantDays := []int32{0, 1, 2, 3, 4, 5}
	for i, ta := range tallies {
		if ta.events != len(testEvents()) || !ta.done {
			t.Errorf("stage %d: events=%d done=%v", i, ta.events, ta.done)
		}
		if !reflect.DeepEqual(ta.days, wantDays) {
			t.Errorf("stage %d: days=%v want %v", i, ta.days, wantDays)
		}
	}
}

func TestEngineFinishErrorNamesStage(t *testing.T) {
	boom := errors.New("boom")
	e := New()
	var secondFinished bool
	e.Subscribe(
		Funcs{StageName: "first", Done: func(st *trace.State) error { return boom }},
		Funcs{StageName: "second", Done: func(st *trace.State) error { secondFinished = true; return nil }},
	)
	_, err := e.Run(testEvents())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := err.Error(); got != "first: boom" {
		t.Fatalf("err text = %q", got)
	}
	if secondFinished {
		t.Fatal("finish after a failed stage should not run")
	}
}

// syncStage is a Stage+Syncer recording the barrier call sequence.
type syncStage struct {
	Funcs
	syncs   []int32
	failDay int32
	err     error
}

func (s *syncStage) Sync(ctx context.Context, st *trace.State, day int32) error {
	s.syncs = append(s.syncs, day)
	if s.failDay > 0 && day == s.failDay {
		return s.err
	}
	return nil
}

// TestEngineSyncBarrier asserts the per-snapshot barrier contract: Sync
// fires once per day boundary, after that day's OnDayEnd callbacks, for
// every day of the pass.
func TestEngineSyncBarrier(t *testing.T) {
	var order []string
	s := &syncStage{Funcs: Funcs{
		StageName: "sync",
		DayEnd:    func(_ *trace.State, day int32) { order = append(order, "dayend") },
	}}
	e := New()
	e.Subscribe(s)
	e.Subscribe(Funcs{StageName: "after", DayEnd: func(_ *trace.State, day int32) { order = append(order, "after") }})
	if _, err := e.Run(testEvents()); err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2, 3, 4, 5}
	if !reflect.DeepEqual(s.syncs, want) {
		t.Fatalf("sync days = %v, want %v", s.syncs, want)
	}
	// Sync runs after every subscriber's OnDayEnd — including stages
	// subscribed later — so a fan-out freeze sees the day fully dispatched.
	for i := 0; i+1 < len(order); i += 2 {
		if order[i] != "dayend" || order[i+1] != "after" {
			t.Fatalf("day-end order broken at %d: %v", i, order)
		}
	}
}

// TestEngineSyncErrorAbortsReplay asserts a Sync error cancels the pass at
// that day boundary: not a single further event is applied to the shared
// state or dispatched, no later days fire, no Finish runs, and the engine
// returns the sync error itself.
func TestEngineSyncErrorAbortsReplay(t *testing.T) {
	boom := errors.New("barrier wait failed")
	var days []int32
	var events int
	var finished bool
	s := &syncStage{failDay: 2, err: boom, Funcs: Funcs{
		StageName: "sync",
		Event:     func(_ *trace.State, _ trace.Event) { events++ },
		DayEnd:    func(_ *trace.State, day int32) { days = append(days, day) },
		Done:      func(*trace.State) error { finished = true; return nil },
	}}
	e := New()
	e.Subscribe(s)
	st, err := e.RunSourceContext(context.Background(), trace.SliceSource(testEvents()))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sync error", err)
	}
	if got, want := days, []int32{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("dispatched days = %v, want %v (abort at the failed boundary)", got, want)
	}
	// testEvents has 4 events through day 2 and one on day 5; the day-5
	// edge must never reach the shared graph after the day-2 sync failure.
	if events != 4 || st.Graph.NumEdges() != 1 {
		t.Fatalf("events=%d edges=%d after abort, want 4 events and 1 edge (day-5 edge not applied)",
			events, st.Graph.NumEdges())
	}
	if finished {
		t.Fatal("Finish ran after an aborted pass")
	}
	if got, want := s.syncs, []int32{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("sync days = %v, want %v", got, want)
	}
}

// TestEngineSyncSeesCancellation asserts the ctx handed to Sync is the
// run's context: cancelling the caller's ctx is observable inside the
// barrier, and the pass aborts with context.Canceled.
func TestEngineSyncSeesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sawCancel bool
	e := New()
	e.Subscribe(Funcs{StageName: "canceler", DayEnd: func(_ *trace.State, day int32) {
		if day == 2 {
			cancel()
		}
	}})
	e.Subscribe(syncProbe{saw: &sawCancel})
	_, err := e.RunSourceContext(ctx, trace.SliceSource(testEvents()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !sawCancel {
		t.Fatal("Sync never observed the cancelled run context")
	}
}

// syncProbe is a no-op stage recording whether Sync ever saw ctx done.
type syncProbe struct {
	saw *bool
}

func (p syncProbe) Name() string                      { return "probe" }
func (p syncProbe) OnEvent(*trace.State, trace.Event) {}
func (p syncProbe) OnDayEnd(*trace.State, int32)      {}
func (p syncProbe) Finish(*trace.State) error         { return nil }
func (p syncProbe) Sync(ctx context.Context, st *trace.State, day int32) error {
	if ctx.Err() != nil {
		*p.saw = true
		return ctx.Err()
	}
	return nil
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var cur, max atomic.Int64
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		p.Go(func() error {
			n := cur.Add(1)
			mu.Lock()
			if n > max.Load() {
				max.Store(n)
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Fatalf("max concurrency %d > bound %d", m, workers)
	}
}

func TestPoolFirstErrorWinsAndAllTasksRun(t *testing.T) {
	p := NewPool(2)
	boom := errors.New("boom")
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		i := i
		p.Go(func() error {
			ran.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		})
	}
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 8 {
		t.Fatalf("ran = %d, want all 8 despite the error", ran.Load())
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	p := NewPool(0)
	var n atomic.Int64
	for i := 0; i < 4; i++ {
		p.Go(func() error { n.Add(1); return nil })
	}
	if err := p.Wait(); err != nil || n.Load() != 4 {
		t.Fatalf("err=%v n=%d", err, n.Load())
	}
}
