package engine

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

func testEvents() []trace.Event {
	return []trace.Event{
		{Kind: trace.AddNode, Day: 0, U: 0},
		{Kind: trace.AddNode, Day: 0, U: 1},
		{Kind: trace.AddNode, Day: 2, U: 2},
		{Kind: trace.AddEdge, Day: 2, U: 0, V: 1},
		{Kind: trace.AddEdge, Day: 5, U: 1, V: 2},
	}
}

func TestEngineSinglePassAllStages(t *testing.T) {
	prev := trace.OnReplayPass
	defer func() { trace.OnReplayPass = prev }()
	var passes atomic.Int64
	trace.OnReplayPass = func() { passes.Add(1) }

	e := New()
	e.Hint(3, 2)
	type tally struct {
		events int
		days   []int32
		done   bool
	}
	tallies := make([]tally, 3)
	for i := range tallies {
		i := i
		e.Subscribe(Funcs{
			StageName: "tally",
			Event:     func(st *trace.State, ev trace.Event) { tallies[i].events++ },
			DayEnd:    func(st *trace.State, day int32) { tallies[i].days = append(tallies[i].days, day) },
			Done: func(st *trace.State) error {
				tallies[i].done = true
				return nil
			},
		})
	}
	st, err := e.Run(testEvents())
	if err != nil {
		t.Fatal(err)
	}
	if st.Graph.NumNodes() != 3 || st.Graph.NumEdges() != 2 {
		t.Fatalf("shared state: %d nodes %d edges", st.Graph.NumNodes(), st.Graph.NumEdges())
	}
	if got := passes.Load(); got != 1 {
		t.Fatalf("replay passes = %d, want 1 for %d stages", got, len(tallies))
	}
	wantDays := []int32{0, 1, 2, 3, 4, 5}
	for i, ta := range tallies {
		if ta.events != len(testEvents()) || !ta.done {
			t.Errorf("stage %d: events=%d done=%v", i, ta.events, ta.done)
		}
		if !reflect.DeepEqual(ta.days, wantDays) {
			t.Errorf("stage %d: days=%v want %v", i, ta.days, wantDays)
		}
	}
}

func TestEngineFinishErrorNamesStage(t *testing.T) {
	boom := errors.New("boom")
	e := New()
	var secondFinished bool
	e.Subscribe(
		Funcs{StageName: "first", Done: func(st *trace.State) error { return boom }},
		Funcs{StageName: "second", Done: func(st *trace.State) error { secondFinished = true; return nil }},
	)
	_, err := e.Run(testEvents())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := err.Error(); got != "first: boom" {
		t.Fatalf("err text = %q", got)
	}
	if secondFinished {
		t.Fatal("finish after a failed stage should not run")
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var cur, max atomic.Int64
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		p.Go(func() error {
			n := cur.Add(1)
			mu.Lock()
			if n > max.Load() {
				max.Store(n)
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Fatalf("max concurrency %d > bound %d", m, workers)
	}
}

func TestPoolFirstErrorWinsAndAllTasksRun(t *testing.T) {
	p := NewPool(2)
	boom := errors.New("boom")
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		i := i
		p.Go(func() error {
			ran.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		})
	}
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 8 {
		t.Fatalf("ran = %d, want all 8 despite the error", ran.Load())
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	p := NewPool(0)
	var n atomic.Int64
	for i := 0; i < 4; i++ {
		p.Go(func() error { n.Add(1); return nil })
	}
	if err := p.Wait(); err != nil || n.Load() != 4 {
		t.Fatalf("err=%v n=%d", err, n.Load())
	}
}
