package engine

import (
	"context"
	"runtime"
	"sync"
)

// Pool is a bounded fan-out for analyses that cannot share the single
// replay pass: each submitted task runs on its own goroutine, but at most
// `workers` tasks execute concurrently. Wait returns the first error.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewPool creates a pool executing at most workers tasks at once;
// workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound — the resolved worker
// count (NewPool's GOMAXPROCS default included), which the kernel
// fan-outs (parallel Louvain prepare, sampled-BFS sources) size
// themselves by.
func (p *Pool) Workers() int { return cap(p.sem) }

// Go submits one task. It never blocks the caller; the task blocks until a
// worker slot frees up. Tasks run even after another task has failed (their
// errors are simply dropped), keeping result-slot writes deterministic.
func (p *Pool) Go(fn func() error) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		if err := fn(); err != nil {
			p.mu.Lock()
			if p.err == nil {
				p.err = err
			}
			p.mu.Unlock()
		}
	}()
}

// GoContext is Go for cancellable fan-out: if ctx is already cancelled when
// the task's worker slot frees up, the task body is skipped and ctx's error
// recorded instead. Result-slot writes stay deterministic — a skipped task
// simply leaves its slot empty. The task itself should also consume ctx
// (e.g. a context-aware replay) so in-flight work stops promptly.
func (p *Pool) GoContext(ctx context.Context, fn func() error) {
	p.Go(func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn()
	})
}

// Wait blocks until every submitted task has finished and returns the first
// error any task reported. The pool is reusable after Wait.
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
