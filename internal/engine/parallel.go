package engine

import (
	"sync"

	"repro/internal/trace"
)

// Overlappable marks a Stage whose per-day work the engine may run on a
// worker goroutine, concurrently with other Overlappable stages, when the
// engine is configured with more than one worker (Engine.SetWorkers).
//
// The contract a marked stage must satisfy:
//
//   - OnEvent touches only the stage's own accumulators. It must not read
//     the shared trace.State at all: in parallel mode the engine replays a
//     whole day's events to the stage at the day barrier, when the state
//     already reflects the full day, not the per-event prefix a
//     sequential pass would show.
//   - OnDayEnd may read the shared state freely — at the barrier it is
//     quiescent and exactly the end-of-day state, same as sequentially —
//     but must not mutate it (already the engine-wide Stage contract).
//   - No shared mutable state with other stages. The engine still calls
//     each stage's own callbacks from one goroutine at a time, in trace
//     order, with a happens-before edge between days, so the stage itself
//     needs no locking.
//
// Because each stage sees its own events in exactly the sequential order
// and stages are mutually independent until Finish (which runs post-pass,
// sequentially, in subscription order), results are bit-identical to the
// sequential driver no matter how the per-day tasks interleave.
type Overlappable interface {
	OverlapSafe()
}

// parallelDriver is the concurrent day-batch dispatcher behind
// Engine.SetWorkers: unmarked stages run inline on the replay goroutine
// exactly as in the sequential driver (in subscription order, per event),
// while Overlappable stages' per-day work — the day's OnEvent replay plus
// OnDayEnd — fans out across worker goroutines at each day boundary and
// joins before the day-end returns. The engine's barrier hooks (Sync,
// checkpoints) subscribe after this driver, so they always observe every
// stage's day work complete and the shared state quiescent.
type parallelDriver struct {
	inline   []Stage
	deferred []Stage
	sem      chan struct{} // bounds concurrently running day tasks
	batch    []trace.Event
}

// newParallelDriver partitions stages by the Overlappable marker. With
// fewer than two marked stages there is nothing to overlap — every stage
// runs inline and the driver degenerates to the sequential dispatch (the
// pipelined decode of trace.Prefetch still applies).
func newParallelDriver(stages []Stage, workers int) *parallelDriver {
	p := &parallelDriver{sem: make(chan struct{}, workers)}
	for _, s := range stages {
		if _, ok := s.(Overlappable); ok {
			p.deferred = append(p.deferred, s)
		} else {
			p.inline = append(p.inline, s)
		}
	}
	if len(p.deferred) < 2 {
		p.inline = append([]Stage(nil), stages...) // keep subscription order
		p.deferred = nil
	}
	return p
}

// hooks returns the driver's replay subscription.
func (p *parallelDriver) hooks() trace.Hooks {
	return trace.Hooks{OnEvent: p.onEvent, OnDayEnd: p.onDayEnd}
}

// onEvent dispatches to inline stages immediately and buffers the event
// for the deferred stages' day-batch replay.
func (p *parallelDriver) onEvent(st *trace.State, ev trace.Event) {
	for _, s := range p.inline {
		s.OnEvent(st, ev)
	}
	if p.deferred != nil {
		p.batch = append(p.batch, ev)
	}
}

// onDayEnd is the day barrier: one task per deferred stage replays the
// day's buffered events into that stage and runs its OnDayEnd, all tasks
// join, and only then do the inline stages (and, by subscription order,
// the engine's Sync/checkpoint hooks) see the day end. Days with no
// events still fan the OnDayEnd work out, matching the sequential
// empty-day semantics.
func (p *parallelDriver) onDayEnd(st *trace.State, day int32) {
	if p.deferred != nil {
		batch := p.batch
		var wg sync.WaitGroup
		wg.Add(len(p.deferred))
		for _, s := range p.deferred {
			go func(s Stage) {
				defer wg.Done()
				p.sem <- struct{}{}
				defer func() { <-p.sem }()
				for i := range batch {
					s.OnEvent(st, batch[i])
				}
				s.OnDayEnd(st, day)
			}(s)
		}
		wg.Wait()
		p.batch = batch[:0] // the join makes the buffer reusable next day
	}
	for _, s := range p.inline {
		s.OnDayEnd(st, day)
	}
}
