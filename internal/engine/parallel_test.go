package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// recStage records everything it observes: its own event sequence, the
// day-end sequence, and the shared graph's edge count at each day end
// (the observable that pins the barrier — a day-end that ran before the
// day's events were applied would see too few edges).
type recStage struct {
	name   string
	events []trace.Event
	days   []int32
	edges  []int64
	log    *[]string // optional shared interleaving log (inline stages only)
	done   bool
}

func (r *recStage) Name() string { return r.name }
func (r *recStage) OnEvent(_ *trace.State, ev trace.Event) {
	r.events = append(r.events, ev)
	if r.log != nil {
		*r.log = append(*r.log, r.name+":ev")
	}
}
func (r *recStage) OnDayEnd(st *trace.State, day int32) {
	r.days = append(r.days, day)
	r.edges = append(r.edges, st.Graph.NumEdges())
	if r.log != nil {
		*r.log = append(*r.log, r.name+":day")
	}
}
func (r *recStage) Finish(_ *trace.State) error { r.done = true; return nil }

// OverlapSafe marks the stage for the parallel driver; the marker is
// consulted via a type assertion on a wrapper so the same recorder can
// run both inline and deferred.
type overlapStage struct{ *recStage }

func (overlapStage) OverlapSafe() {}

// parallelTestEvents spreads nodes and a chain of edges over sparse days
// (with empty-day gaps) so day batches vary in size.
func parallelTestEvents() []trace.Event {
	var events []trace.Event
	day := int32(0)
	for i := 0; i < 240; i++ {
		events = append(events, trace.Event{Kind: trace.AddNode, Day: day, U: int32(i)})
		if i > 0 {
			events = append(events, trace.Event{Kind: trace.AddEdge, Day: day, U: int32(i - 1), V: int32(i)})
		}
		switch {
		case i%7 == 6:
			day += 3 // gap of empty days
		case i%3 == 2:
			day++
		}
	}
	return events
}

// runRecorded runs one engine pass at the given worker count with
// nOverlap marked and nInline unmarked recorder stages, returning them.
func runRecorded(t *testing.T, workers, nOverlap, nInline int, log *[]string) ([]*recStage, []*recStage) {
	t.Helper()
	e := New()
	e.SetWorkers(workers)
	var over, inl []*recStage
	for i := 0; i < nOverlap; i++ {
		r := &recStage{name: "over"}
		over = append(over, r)
		e.Subscribe(overlapStage{r})
	}
	for i := 0; i < nInline; i++ {
		r := &recStage{name: string(rune('a' + i)), log: log}
		inl = append(inl, r)
		e.Subscribe(r)
	}
	if _, err := e.Run(parallelTestEvents()); err != nil {
		t.Fatal(err)
	}
	return over, inl
}

// TestParallelMatchesSequential holds every stage's observed sequence —
// events in order, day ends in order, and the shared graph's edge count
// at each day barrier — bit-identical between the sequential driver and
// the parallel one. Run with -race this is also the data-race gate for
// the day-batch hand-off.
func TestParallelMatchesSequential(t *testing.T) {
	seqOver, seqInl := runRecorded(t, 1, 3, 2, nil)
	for _, workers := range []int{2, 8} {
		parOver, parInl := runRecorded(t, workers, 3, 2, nil)
		for i := range seqOver {
			compareRec(t, "overlappable", workers, parOver[i], seqOver[i])
		}
		for i := range seqInl {
			compareRec(t, "inline", workers, parInl[i], seqInl[i])
		}
	}
}

func compareRec(t *testing.T, label string, workers int, got, want *recStage) {
	t.Helper()
	if !reflect.DeepEqual(got.events, want.events) {
		t.Fatalf("%s stage at workers=%d: event sequence diverged", label, workers)
	}
	if !reflect.DeepEqual(got.days, want.days) {
		t.Fatalf("%s stage at workers=%d: days %v, want %v", label, workers, got.days, want.days)
	}
	if !reflect.DeepEqual(got.edges, want.edges) {
		t.Fatalf("%s stage at workers=%d: per-day edge counts diverged (day work ran before the barrier?)", label, workers)
	}
	if !got.done {
		t.Fatalf("%s stage at workers=%d: Finish did not run", label, workers)
	}
}

// TestParallelInlineOrdering pins the deterministic-merge rule for
// unmarked stages: their callbacks interleave in subscription order per
// event, exactly as sequentially.
func TestParallelInlineOrdering(t *testing.T) {
	var seqLog, parLog []string
	runRecorded(t, 1, 2, 3, &seqLog)
	runRecorded(t, 8, 2, 3, &parLog)
	if !reflect.DeepEqual(parLog, seqLog) {
		t.Fatal("inline stages' interleaving diverged from subscription order")
	}
}

// barrierSyncer asserts, at every Sync, that each deferred stage's day
// work for this day has completed — the Sync barrier contract.
type barrierSyncer struct {
	recStage
	watch []*recStage
	fail  func(format string, args ...any)
}

func (b *barrierSyncer) Sync(_ context.Context, st *trace.State, day int32) error {
	for _, w := range b.watch {
		if n := len(w.days); n == 0 || w.days[n-1] != day {
			b.fail("Sync at day %d: deferred stage has only reached day %v", day, w.days)
		}
		if n := len(w.edges); n > 0 && w.edges[n-1] != st.Graph.NumEdges() {
			b.fail("Sync at day %d: deferred stage saw %d edges, barrier state has %d", day, w.edges[len(w.edges)-1], st.Graph.NumEdges())
		}
	}
	return nil
}

// TestParallelSyncBarrier: the engine's Sync hook (and therefore the
// checkpoint hook, which subscribes the same way) must observe every
// Overlappable stage's day work joined.
func TestParallelSyncBarrier(t *testing.T) {
	e := New()
	e.SetWorkers(4)
	var watched []*recStage
	for i := 0; i < 3; i++ {
		r := &recStage{name: "over"}
		watched = append(watched, r)
		e.Subscribe(overlapStage{r})
	}
	b := &barrierSyncer{recStage: recStage{name: "sync"}, watch: watched, fail: t.Errorf}
	e.Subscribe(b)
	if _, err := e.Run(parallelTestEvents()); err != nil {
		t.Fatal(err)
	}
}

// TestParallelSyncErrorAborts: a Sync error under the parallel driver
// aborts the replay exactly as sequentially — no Finish runs.
func TestParallelSyncErrorAborts(t *testing.T) {
	e := New()
	e.SetWorkers(4)
	r1, r2 := &recStage{name: "over"}, &recStage{name: "over"}
	e.Subscribe(overlapStage{r1}, overlapStage{r2})
	boom := errors.New("boom")
	fs := &failSyncer{recStage: recStage{name: "failsync"}, day: 5, err: boom}
	e.Subscribe(fs)
	if _, err := e.Run(parallelTestEvents()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if r1.done || r2.done || fs.done {
		t.Fatal("Finish ran after an aborted replay")
	}
}

type failSyncer struct {
	recStage
	day int32
	err error
}

func (f *failSyncer) Sync(_ context.Context, _ *trace.State, day int32) error {
	if day >= f.day {
		return f.err
	}
	return nil
}

// TestParallelDriverDegenerates: with fewer than two marked stages there
// is nothing to overlap, so every stage runs inline in subscription
// order.
func TestParallelDriverDegenerates(t *testing.T) {
	a := overlapStage{&recStage{name: "a"}}
	b := &recStage{name: "b"}
	p := newParallelDriver([]Stage{a, b}, 4)
	if p.deferred != nil {
		t.Fatalf("one marked stage should not defer, got %d deferred", len(p.deferred))
	}
	if len(p.inline) != 2 || p.inline[0].(overlapStage).recStage != a.recStage || p.inline[1] != Stage(b) {
		t.Fatal("degenerate driver lost subscription order")
	}
}
