// Package engine is the single-pass streaming analysis engine: the trace is
// replayed exactly once through a shared trace.State, and every analysis
// subscribes as a Stage fed from that one pass. Independent computations
// that cannot share the pass (the δ-sweep's per-δ community pipelines, the
// SVM merge-prediction evaluation) fan out across a bounded worker Pool
// instead of running serially.
//
// The engine exists because the paper's pipeline is inherently one pass over
// a timestamped creation stream: every analysis consumes the same events in
// the same order and differs only in what it accumulates. Replaying the
// trace once and dispatching to subscribed stages removes the redundant
// graph rebuilds the batch entry points pay for (see DESIGN.md §4).
package engine

import (
	"context"
	"fmt"

	"repro/internal/trace"
)

// Stage is one analysis subscribed to the engine's single replay pass.
// OnEvent fires for every trace event after it is applied to the shared
// state; OnDayEnd fires at every day boundary (including empty days);
// Finish runs after the pass completes, in subscription order, and is where
// a stage assembles its result or reports that the trace cannot support it.
//
// Stages must not mutate the shared state; it is owned by the engine and
// visible to every other stage.
type Stage interface {
	Name() string
	OnEvent(st *trace.State, ev trace.Event)
	OnDayEnd(st *trace.State, day int32)
	Finish(st *trace.State) error
}

// Funcs adapts plain functions to the Stage interface; any field may be nil.
type Funcs struct {
	StageName string
	Event     func(st *trace.State, ev trace.Event)
	DayEnd    func(st *trace.State, day int32)
	Done      func(st *trace.State) error
}

// Name implements Stage.
func (f Funcs) Name() string { return f.StageName }

// OnEvent implements Stage.
func (f Funcs) OnEvent(st *trace.State, ev trace.Event) {
	if f.Event != nil {
		f.Event(st, ev)
	}
}

// OnDayEnd implements Stage.
func (f Funcs) OnDayEnd(st *trace.State, day int32) {
	if f.DayEnd != nil {
		f.DayEnd(st, day)
	}
}

// Finish implements Stage.
func (f Funcs) Finish(st *trace.State) error {
	if f.Done != nil {
		return f.Done(st)
	}
	return nil
}

// Engine composes subscribed stages over one replay pass.
type Engine struct {
	stages   []Stage
	nodeHint int
	edgeHint int
}

// New returns an empty engine with default state-capacity hints.
func New() *Engine {
	return &Engine{nodeHint: 1024, edgeHint: 4096}
}

// Hint sets capacity hints for the shared state, typically from the
// trace's Meta counters, so the node-indexed structures (the graph's
// top-level adjacency index, the per-node day and origin columns) are
// allocated once instead of grown by repeated doubling during the pass.
// The edge hint is forwarded to trace.NewState for parity with its
// signature; per-node adjacency lists still grow on demand.
func (e *Engine) Hint(nodes, edges int) {
	if nodes > 0 {
		e.nodeHint = nodes
	}
	if edges > 0 {
		e.edgeHint = edges
	}
}

// Subscribe registers stages; callbacks and Finish run in subscription
// order, so a stage that reads another's result must subscribe after it.
func (e *Engine) Subscribe(stages ...Stage) {
	e.stages = append(e.stages, stages...)
}

// Stages returns the number of subscribed stages, letting callers skip the
// replay pass entirely when nothing is listening.
func (e *Engine) Stages() int { return len(e.stages) }

// Run replays events exactly once, dispatching every callback to all
// subscribed stages, then finishes each stage in subscription order. The
// first stage error aborts with the stage's name wrapped in.
func (e *Engine) Run(events []trace.Event) (*trace.State, error) {
	return e.RunSource(trace.SliceSource(events))
}

// RunSource is Run over a re-openable event source, consuming exactly one
// pass (one cursor). With a disk-backed trace.FileSource the engine's
// resident memory is the shared State plus the stages' accumulators —
// O(state), independent of the trace's event count.
func (e *Engine) RunSource(src trace.Source) (*trace.State, error) {
	return e.RunSourceContext(nil, src)
}

// RunSourceContext is RunSource with cancellation: the replay checks ctx at
// every day boundary and, once cancelled, no stage Finish runs — the pass
// aborts with ctx.Err() and the partially built state. A nil ctx disables
// the checks.
func (e *Engine) RunSourceContext(ctx context.Context, src trace.Source) (*trace.State, error) {
	d := &trace.Dispatcher{}
	for _, s := range e.stages {
		d.Subscribe(trace.Hooks{OnEvent: s.OnEvent, OnDayEnd: s.OnDayEnd})
	}
	st := trace.NewState(e.nodeHint, e.edgeHint)
	if err := trace.ReplaySourceIntoContext(ctx, st, src, d.Hooks()); err != nil {
		return st, err
	}
	for _, s := range e.stages {
		if err := s.Finish(st); err != nil {
			return st, fmt.Errorf("%s: %w", s.Name(), err)
		}
	}
	return st, nil
}
