// Package engine is the single-pass streaming analysis engine: the trace is
// replayed exactly once through a shared trace.State, and every analysis
// subscribes as a Stage fed from that one pass. Independent computations
// that cannot share the pass (the δ-sweep's per-δ community pipelines, the
// SVM merge-prediction evaluation) fan out across a bounded worker Pool
// instead of running serially.
//
// The engine exists because the paper's pipeline is inherently one pass over
// a timestamped creation stream: every analysis consumes the same events in
// the same order and differs only in what it accumulates. Replaying the
// trace once and dispatching to subscribed stages removes the redundant
// graph rebuilds the batch entry points pay for (see DESIGN.md §4).
package engine

import (
	"context"
	"fmt"
	"io"

	"repro/internal/trace"
)

// Stage is one analysis subscribed to the engine's single replay pass.
// OnEvent fires for every trace event after it is applied to the shared
// state; OnDayEnd fires at every day boundary (including empty days);
// Finish runs after the pass completes, in subscription order, and is where
// a stage assembles its result or reports that the trace cannot support it.
//
// Stages must not mutate the shared state; it is owned by the engine and
// visible to every other stage.
type Stage interface {
	Name() string
	OnEvent(st *trace.State, ev trace.Event)
	OnDayEnd(st *trace.State, day int32)
	Finish(st *trace.State) error
}

// Syncer is an optional Stage extension for stages that fan concurrent
// per-snapshot work out against a frozen view of the shared state (the
// δ-sweep's community.SweepStage). The engine calls Sync after every day's
// OnDayEnd callbacks and before the next day's events mutate the shared
// graph — the per-snapshot barrier: a stage joins tasks still in flight
// from its previous snapshot there, then freezes the state and fans the
// next snapshot out, so replay never runs more than one snapshot ahead of
// the slowest worker.
//
// ctx is the run's context; a blocking barrier wait must honor its
// cancellation and return ctx.Err(). Any non-nil error from Sync cancels
// the replay at the current day boundary (no further events are applied,
// no stage Finish runs) and is returned by the engine.
type Syncer interface {
	Sync(ctx context.Context, st *trace.State, day int32) error
}

// Checkpointer is the optional Stage extension of the checkpointed state
// plane (DESIGN.md §6): a stage that can externalize its accumulator
// state. SaveState serializes everything the stage has accumulated up to
// (and including) the current day boundary; LoadState is its inverse,
// called on a freshly constructed stage before a resumed replay. The
// contract is bit-exactness: a stage restored from SaveState output and
// fed the remaining days must end in exactly the state a from-zero run
// reaches — including any RNG it owns.
//
// SaveState runs at the engine's Sync barrier on the replay goroutine; a
// stage with in-flight fan-out (the δ-sweep) must join its tasks before
// serializing.
type Checkpointer interface {
	SaveState(w io.Writer) error
	LoadState(r io.Reader) error
}

// CheckpointFunc writes one checkpoint of the run: st is the shared state
// at the end of `day`, quiescent until the function returns. The engine
// calls it at the Sync barrier — after every stage's OnDayEnd and Sync
// for that day, before the next day's events mutate the shared graph. A
// non-nil error aborts the replay at that boundary, exactly like a Sync
// error.
type CheckpointFunc func(day int32, st *trace.State) error

// Funcs adapts plain functions to the Stage interface; any field may be nil.
type Funcs struct {
	StageName string
	Event     func(st *trace.State, ev trace.Event)
	DayEnd    func(st *trace.State, day int32)
	Done      func(st *trace.State) error
}

// Name implements Stage.
func (f Funcs) Name() string { return f.StageName }

// OnEvent implements Stage.
func (f Funcs) OnEvent(st *trace.State, ev trace.Event) {
	if f.Event != nil {
		f.Event(st, ev)
	}
}

// OnDayEnd implements Stage.
func (f Funcs) OnDayEnd(st *trace.State, day int32) {
	if f.DayEnd != nil {
		f.DayEnd(st, day)
	}
}

// Finish implements Stage.
func (f Funcs) Finish(st *trace.State) error {
	if f.Done != nil {
		return f.Done(st)
	}
	return nil
}

// Engine composes subscribed stages over one replay pass.
type Engine struct {
	stages   []Stage
	nodeHint int
	edgeHint int
	workers  int

	ckptEvery int32
	ckptFn    CheckpointFunc
}

// New returns an empty engine with default state-capacity hints.
func New() *Engine {
	return &Engine{nodeHint: 1024, edgeHint: 4096}
}

// Hint sets capacity hints for the shared state, typically from the
// trace's Meta counters, so the node-indexed structures (the graph's
// top-level adjacency index, the per-node day and origin columns) are
// allocated once instead of grown by repeated doubling during the pass.
// The edge hint is forwarded to trace.NewState for parity with its
// signature; per-node adjacency lists still grow on demand.
func (e *Engine) Hint(nodes, edges int) {
	if nodes > 0 {
		e.nodeHint = nodes
	}
	if edges > 0 {
		e.edgeHint = edges
	}
}

// SetWorkers sets the worker budget of the parallel shared pass. With
// workers > 1 the replay pipelines: the source is wrapped in
// trace.Prefetch so decode runs ahead of apply on a reader goroutine, and
// Overlappable stages' per-day work fans out across at most `workers`
// goroutines at each day barrier (see parallelDriver). workers <= 1 — the
// default — keeps the exact sequential dispatch. Either way every figure
// is bit-identical: the parallel driver preserves each stage's own event
// order and the barrier keeps Sync/checkpoint semantics unchanged, so
// worker count is a throughput knob, never a result knob (and is
// deliberately absent from the checkpoint fingerprint — checkpoints
// written at one worker count resume at any other).
func (e *Engine) SetWorkers(n int) { e.workers = n }

// Subscribe registers stages; callbacks and Finish run in subscription
// order, so a stage that reads another's result must subscribe after it.
func (e *Engine) Subscribe(stages ...Stage) {
	e.stages = append(e.stages, stages...)
}

// Stages returns the number of subscribed stages, letting callers skip the
// replay pass entirely when nothing is listening.
func (e *Engine) Stages() int { return len(e.stages) }

// Subscribed returns the subscribed stages in subscription order. The
// checkpoint plane uses it to pair each stage with its serialized blob.
func (e *Engine) Subscribed() []Stage {
	return append([]Stage(nil), e.stages...)
}

// EnableCheckpoints arms the checkpoint hook: at every day boundary whose
// day is a positive multiple of `every`, fn runs at the Sync barrier with
// the quiescent shared state, and once more at the last replayed day
// after the pass completes (before any stage Finish) — the end-of-run
// checkpoint an incremental workflow resumes from, so a later run over a
// grown trace replays exactly the appended days. Arming checkpoints
// makes hidden stage state an error: every subscribed stage must
// implement Checkpointer or the run refuses to start — a checkpoint that
// silently omitted a stage would resume into wrong results.
func (e *Engine) EnableCheckpoints(every int32, fn CheckpointFunc) {
	e.ckptEvery = every
	e.ckptFn = fn
}

// Run replays events exactly once, dispatching every callback to all
// subscribed stages, then finishes each stage in subscription order. The
// first stage error aborts with the stage's name wrapped in.
func (e *Engine) Run(events []trace.Event) (*trace.State, error) {
	return e.RunSource(trace.SliceSource(events))
}

// RunSource is Run over a re-openable event source, consuming exactly one
// pass (one cursor). With a disk-backed trace.FileSource the engine's
// resident memory is the shared State plus the stages' accumulators —
// O(state), independent of the trace's event count.
func (e *Engine) RunSource(src trace.Source) (*trace.State, error) {
	return e.RunSourceContext(nil, src)
}

// RunSourceContext is RunSource with cancellation: the replay checks ctx at
// every day boundary and, once cancelled, no stage Finish runs — the pass
// aborts with ctx.Err() and the partially built state. A nil ctx disables
// the checks (unless a subscribed Syncer needs the abort machinery, in
// which case an internal background context stands in).
func (e *Engine) RunSourceContext(ctx context.Context, src trace.Source) (*trace.State, error) {
	return e.run(ctx, src, trace.NewState(e.nodeHint, e.edgeHint), 0)
}

// ResumeSourceContext continues a replay from a restored checkpoint: st
// must be the shared state at the end of day `day` (checkpoint.DecodeState
// output) and every subscribed stage must already have been restored via
// LoadState. The replay opens the source at day+1 — a day-indexed
// FileSource seeks straight there — and fires day boundaries from day+1
// on, so nothing that happened up to the checkpoint is re-observed.
func (e *Engine) ResumeSourceContext(ctx context.Context, src trace.Source, st *trace.State, day int32) (*trace.State, error) {
	return e.run(ctx, src, st, day+1)
}

// run is the shared pass driver behind RunSourceContext and
// ResumeSourceContext.
func (e *Engine) run(ctx context.Context, src trace.Source, st *trace.State, fromDay int32) (*trace.State, error) {
	if e.ckptFn != nil {
		for _, s := range e.stages {
			if _, ok := s.(Checkpointer); !ok {
				return st, fmt.Errorf("engine: checkpointing enabled but stage %s does not implement Checkpointer", s.Name())
			}
		}
	}
	d := &trace.Dispatcher{}
	parallel := e.workers > 1
	if parallel {
		// One combined subscription: the driver dispatches inline stages
		// per event and fans Overlappable stages' day work out at each
		// day boundary, joining before returning — so the barrier hooks
		// subscribed below still see a quiescent, day-complete state.
		d.Subscribe(newParallelDriver(e.stages, e.workers).hooks())
	} else {
		for _, s := range e.stages {
			d.Subscribe(trace.Hooks{OnEvent: s.OnEvent, OnDayEnd: s.OnDayEnd})
		}
	}
	// Barrier hooks — the per-snapshot Sync point and the checkpoint
	// cadence — are dispatched last, so every stage has seen the day
	// before any fan-out freezes the state or any serialization reads it.
	// A hook error cancels the run's context, which stops the replay at
	// this day boundary: the shared graph is never mutated past a failed
	// barrier. lastCkpt dedupes the cadence hook against the end-of-run
	// checkpoint, and keeps a resumed pass from rewriting the checkpoint
	// it was restored from.
	lastCkpt := fromDay - 1
	var hookErr error
	syncers := e.syncers()
	if len(syncers) > 0 || e.ckptFn != nil {
		base := ctx
		if base == nil {
			base = context.Background()
		}
		runCtx, cancel := context.WithCancel(base)
		defer cancel()
		ctx = runCtx
		fail := func(err error) {
			if hookErr == nil {
				hookErr = err
				cancel()
			}
		}
		if len(syncers) > 0 {
			d.Subscribe(trace.Hooks{OnDayEnd: func(st *trace.State, day int32) {
				if hookErr != nil {
					return
				}
				for _, y := range syncers {
					if err := y.Sync(runCtx, st, day); err != nil {
						fail(err)
						return
					}
				}
			}})
		}
		if e.ckptFn != nil && e.ckptEvery > 0 {
			every, fn := e.ckptEvery, e.ckptFn
			d.Subscribe(trace.Hooks{OnDayEnd: func(st *trace.State, day int32) {
				if hookErr != nil || runCtx.Err() != nil {
					return
				}
				if day > 0 && day%every == 0 && day > lastCkpt {
					if err := fn(day, st); err != nil {
						fail(fmt.Errorf("engine: checkpoint at day %d: %w", day, err))
					} else {
						lastCkpt = day
					}
				}
			}})
		}
	}
	runSrc := src
	if parallel {
		// Pipelined data plane: decode day-batches ahead of the apply
		// loop. EventsThrough-style identity probes ran before this point
		// against the raw source, and the wrapper preserves event order
		// and error positions exactly (see trace.Prefetch).
		runSrc = trace.Prefetch(src)
	}
	err := trace.ReplaySourceIntoFromContext(ctx, st, runSrc, d.Hooks(), fromDay)
	if hookErr != nil {
		return st, hookErr
	}
	if err != nil {
		return st, err
	}
	// The end-of-run checkpoint: the state as of the last replayed day,
	// written before any Finish (Finish seals results but must never
	// count as replay state). A resume that replayed nothing new skips
	// it — the checkpoint it restored is already that state.
	if e.ckptFn != nil && e.ckptEvery > 0 && st.Day > 0 && st.Day > lastCkpt {
		if err := e.ckptFn(st.Day, st); err != nil {
			return st, fmt.Errorf("engine: checkpoint at day %d: %w", st.Day, err)
		}
	}
	for _, s := range e.stages {
		if err := s.Finish(st); err != nil {
			return st, fmt.Errorf("%s: %w", s.Name(), err)
		}
	}
	return st, nil
}

// syncers returns the subscribed stages that take part in the per-snapshot
// barrier, in subscription order.
func (e *Engine) syncers() []Syncer {
	var out []Syncer
	for _, s := range e.stages {
		if y, ok := s.(Syncer); ok {
			out = append(out, y)
		}
	}
	return out
}
