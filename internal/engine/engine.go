// Package engine is the single-pass streaming analysis engine: the trace is
// replayed exactly once through a shared trace.State, and every analysis
// subscribes as a Stage fed from that one pass. Independent computations
// that cannot share the pass (the δ-sweep's per-δ community pipelines, the
// SVM merge-prediction evaluation) fan out across a bounded worker Pool
// instead of running serially.
//
// The engine exists because the paper's pipeline is inherently one pass over
// a timestamped creation stream: every analysis consumes the same events in
// the same order and differs only in what it accumulates. Replaying the
// trace once and dispatching to subscribed stages removes the redundant
// graph rebuilds the batch entry points pay for (see DESIGN.md §4).
package engine

import (
	"context"
	"fmt"

	"repro/internal/trace"
)

// Stage is one analysis subscribed to the engine's single replay pass.
// OnEvent fires for every trace event after it is applied to the shared
// state; OnDayEnd fires at every day boundary (including empty days);
// Finish runs after the pass completes, in subscription order, and is where
// a stage assembles its result or reports that the trace cannot support it.
//
// Stages must not mutate the shared state; it is owned by the engine and
// visible to every other stage.
type Stage interface {
	Name() string
	OnEvent(st *trace.State, ev trace.Event)
	OnDayEnd(st *trace.State, day int32)
	Finish(st *trace.State) error
}

// Syncer is an optional Stage extension for stages that fan concurrent
// per-snapshot work out against a frozen view of the shared state (the
// δ-sweep's community.SweepStage). The engine calls Sync after every day's
// OnDayEnd callbacks and before the next day's events mutate the shared
// graph — the per-snapshot barrier: a stage joins tasks still in flight
// from its previous snapshot there, then freezes the state and fans the
// next snapshot out, so replay never runs more than one snapshot ahead of
// the slowest worker.
//
// ctx is the run's context; a blocking barrier wait must honor its
// cancellation and return ctx.Err(). Any non-nil error from Sync cancels
// the replay at the current day boundary (no further events are applied,
// no stage Finish runs) and is returned by the engine.
type Syncer interface {
	Sync(ctx context.Context, st *trace.State, day int32) error
}

// Funcs adapts plain functions to the Stage interface; any field may be nil.
type Funcs struct {
	StageName string
	Event     func(st *trace.State, ev trace.Event)
	DayEnd    func(st *trace.State, day int32)
	Done      func(st *trace.State) error
}

// Name implements Stage.
func (f Funcs) Name() string { return f.StageName }

// OnEvent implements Stage.
func (f Funcs) OnEvent(st *trace.State, ev trace.Event) {
	if f.Event != nil {
		f.Event(st, ev)
	}
}

// OnDayEnd implements Stage.
func (f Funcs) OnDayEnd(st *trace.State, day int32) {
	if f.DayEnd != nil {
		f.DayEnd(st, day)
	}
}

// Finish implements Stage.
func (f Funcs) Finish(st *trace.State) error {
	if f.Done != nil {
		return f.Done(st)
	}
	return nil
}

// Engine composes subscribed stages over one replay pass.
type Engine struct {
	stages   []Stage
	nodeHint int
	edgeHint int
}

// New returns an empty engine with default state-capacity hints.
func New() *Engine {
	return &Engine{nodeHint: 1024, edgeHint: 4096}
}

// Hint sets capacity hints for the shared state, typically from the
// trace's Meta counters, so the node-indexed structures (the graph's
// top-level adjacency index, the per-node day and origin columns) are
// allocated once instead of grown by repeated doubling during the pass.
// The edge hint is forwarded to trace.NewState for parity with its
// signature; per-node adjacency lists still grow on demand.
func (e *Engine) Hint(nodes, edges int) {
	if nodes > 0 {
		e.nodeHint = nodes
	}
	if edges > 0 {
		e.edgeHint = edges
	}
}

// Subscribe registers stages; callbacks and Finish run in subscription
// order, so a stage that reads another's result must subscribe after it.
func (e *Engine) Subscribe(stages ...Stage) {
	e.stages = append(e.stages, stages...)
}

// Stages returns the number of subscribed stages, letting callers skip the
// replay pass entirely when nothing is listening.
func (e *Engine) Stages() int { return len(e.stages) }

// Run replays events exactly once, dispatching every callback to all
// subscribed stages, then finishes each stage in subscription order. The
// first stage error aborts with the stage's name wrapped in.
func (e *Engine) Run(events []trace.Event) (*trace.State, error) {
	return e.RunSource(trace.SliceSource(events))
}

// RunSource is Run over a re-openable event source, consuming exactly one
// pass (one cursor). With a disk-backed trace.FileSource the engine's
// resident memory is the shared State plus the stages' accumulators —
// O(state), independent of the trace's event count.
func (e *Engine) RunSource(src trace.Source) (*trace.State, error) {
	return e.RunSourceContext(nil, src)
}

// RunSourceContext is RunSource with cancellation: the replay checks ctx at
// every day boundary and, once cancelled, no stage Finish runs — the pass
// aborts with ctx.Err() and the partially built state. A nil ctx disables
// the checks (unless a subscribed Syncer needs the abort machinery, in
// which case an internal background context stands in).
func (e *Engine) RunSourceContext(ctx context.Context, src trace.Source) (*trace.State, error) {
	d := &trace.Dispatcher{}
	for _, s := range e.stages {
		d.Subscribe(trace.Hooks{OnEvent: s.OnEvent, OnDayEnd: s.OnDayEnd})
	}
	// The per-snapshot barrier: Syncer stages get a cancellable sync point
	// after each day's callbacks, dispatched last so every stage has seen
	// the day before any fan-out freezes the state. A sync error cancels
	// the run's context, which stops the replay at this day boundary —
	// the shared graph is never mutated past a failed barrier.
	var syncErr error
	if syncers := e.syncers(); len(syncers) > 0 {
		base := ctx
		if base == nil {
			base = context.Background()
		}
		runCtx, cancel := context.WithCancel(base)
		defer cancel()
		ctx = runCtx
		d.Subscribe(trace.Hooks{OnDayEnd: func(st *trace.State, day int32) {
			if syncErr != nil {
				return
			}
			for _, y := range syncers {
				if err := y.Sync(runCtx, st, day); err != nil {
					syncErr = err
					cancel()
					return
				}
			}
		}})
	}
	st := trace.NewState(e.nodeHint, e.edgeHint)
	err := trace.ReplaySourceIntoContext(ctx, st, src, d.Hooks())
	if syncErr != nil {
		return st, syncErr
	}
	if err != nil {
		return st, err
	}
	for _, s := range e.stages {
		if err := s.Finish(st); err != nil {
			return st, fmt.Errorf("%s: %w", s.Name(), err)
		}
	}
	return st, nil
}

// syncers returns the subscribed stages that take part in the per-snapshot
// barrier, in subscription order.
func (e *Engine) syncers() []Syncer {
	var out []Syncer
	for _, s := range e.stages {
		if y, ok := s.(Syncer); ok {
			out = append(out, y)
		}
	}
	return out
}
