package engine

import (
	"errors"
	"io"
	"testing"

	"repro/internal/trace"
)

// ckptStage is a minimal checkpointable stage: it counts events and can
// round-trip that count.
type ckptStage struct {
	Funcs
	events int
}

func (s *ckptStage) OnEvent(_ *trace.State, _ trace.Event) { s.events++ }

func (s *ckptStage) SaveState(w io.Writer) error {
	_, err := w.Write([]byte{byte(s.events)})
	return err
}

func (s *ckptStage) LoadState(r io.Reader) error {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	s.events = int(b[0])
	return nil
}

// TestCheckpointCadence pins where the engine fires the checkpoint hook:
// at every day boundary that is a positive multiple of the cadence, with
// the state reflecting that day's end.
func TestCheckpointCadence(t *testing.T) {
	e := New()
	s := &ckptStage{Funcs: Funcs{StageName: "count"}}
	e.Subscribe(s)
	var days []int32
	var nodesAt []int
	e.EnableCheckpoints(2, func(day int32, st *trace.State) error {
		days = append(days, day)
		nodesAt = append(nodesAt, st.Graph.NumNodes())
		return nil
	})
	if _, err := e.Run(testEvents()); err != nil {
		t.Fatal(err)
	}
	// Events land on days 0, 2, 5; boundaries fire for 0..5. Cadence 2
	// hits days 2 and 4 (day 0 is excluded — nothing to resume from),
	// and the end-of-run checkpoint lands on the last replayed day 5.
	want := []int32{2, 4, 5}
	if len(days) != len(want) {
		t.Fatalf("checkpoint days = %v, want %v", days, want)
	}
	for i := range want {
		if days[i] != want[i] {
			t.Fatalf("checkpoint days = %v, want %v", days, want)
		}
		if nodesAt[i] != 3 {
			t.Fatalf("checkpoint state nodes = %v, want day-end counts", nodesAt)
		}
	}
}

// TestCheckpointRequiresCheckpointers holds the strictness contract:
// arming checkpoints with a stage that hides its state is a refused run,
// not a silently incomplete checkpoint.
func TestCheckpointRequiresCheckpointers(t *testing.T) {
	e := New()
	e.Subscribe(Funcs{StageName: "opaque"})
	e.EnableCheckpoints(2, func(int32, *trace.State) error { return nil })
	_, err := e.Run(testEvents())
	if err == nil {
		t.Fatal("run started with an un-checkpointable stage")
	}
}

// TestCheckpointErrorAbortsReplay mirrors the Sync-error contract: a
// failed checkpoint write stops the pass at that boundary and surfaces
// the error; no stage Finish runs.
func TestCheckpointErrorAbortsReplay(t *testing.T) {
	e := New()
	finished := false
	s := &ckptStage{Funcs: Funcs{StageName: "count", Done: func(*trace.State) error {
		finished = true
		return nil
	}}}
	e.Subscribe(s)
	boom := errors.New("disk full")
	e.EnableCheckpoints(2, func(day int32, _ *trace.State) error { return boom })
	_, err := e.Run(testEvents())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the checkpoint failure", err)
	}
	if finished {
		t.Fatal("stage Finish ran after an aborted replay")
	}
	// The pass stopped at the failed barrier: day 2's events applied (the
	// boundary fires after them), none of day 5's.
	if s.events != 4 {
		t.Fatalf("events applied = %d, want 4 (abort at the day-2 barrier)", s.events)
	}
}

// TestResumeSourceContext covers the engine's resume entry directly: a
// restored stage + state fed the remaining days matches a from-zero run.
func TestResumeSourceContext(t *testing.T) {
	events := testEvents()
	src := trace.SliceSource(events)

	full := &ckptStage{Funcs: Funcs{StageName: "count"}}
	eFull := New()
	eFull.Subscribe(full)
	stFull, err := eFull.RunSourceContext(nil, src)
	if err != nil {
		t.Fatal(err)
	}

	// First segment: replay through day 2 by hand, then resume from 3.
	part := &ckptStage{Funcs: Funcs{StageName: "count"}}
	st := trace.NewState(4, 4)
	for _, ev := range events {
		if ev.Day > 2 {
			break
		}
		if err := st.Apply(ev); err != nil {
			t.Fatal(err)
		}
		part.OnEvent(st, ev)
	}
	eRes := New()
	eRes.Subscribe(part)
	stRes, err := eRes.ResumeSourceContext(nil, src, st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if part.events != full.events {
		t.Fatalf("resumed stage saw %d events, from-zero %d", part.events, full.events)
	}
	if stRes.Graph.NumNodes() != stFull.Graph.NumNodes() || stRes.Graph.NumEdges() != stFull.Graph.NumEdges() {
		t.Fatal("resumed state diverged")
	}
}
