// Package evolution implements the node-level analyses of §3: the time
// dynamics of edge creation (Fig 2) and the strength of preferential
// attachment over time (Fig 3). All analyses consume a trace event stream.
package evolution

import (
	"errors"

	"repro/internal/powerlaw"
	"repro/internal/stats"
	"repro/internal/trace"
)

// AgeBucket is one node-age class for the inter-arrival analysis. The
// paper's buckets: month 1, month 2, month 3, months 4–5, months 6–14,
// months 15–26 (Fig 2a).
type AgeBucket struct {
	Name    string
	MinDays int32 // inclusive
	MaxDays int32 // exclusive
}

// DefaultAgeBuckets reproduces the paper's six bucket boundaries.
func DefaultAgeBuckets() []AgeBucket {
	return []AgeBucket{
		{Name: "month 1", MinDays: 0, MaxDays: 30},
		{Name: "month 2", MinDays: 30, MaxDays: 60},
		{Name: "month 3", MinDays: 60, MaxDays: 90},
		{Name: "months 4-5", MinDays: 90, MaxDays: 150},
		{Name: "months 6-14", MinDays: 150, MaxDays: 420},
		{Name: "months 15-26", MinDays: 420, MaxDays: 780},
	}
}

// InterArrivalBucket is the measured inter-arrival PDF for one age bucket.
type InterArrivalBucket struct {
	Bucket  AgeBucket
	PDF     []stats.Bucket // log-binned density over gap days
	Gamma   float64        // fitted PDF power-law exponent (positive)
	Samples int64
}

// Options configures the edge-evolution analyses.
type Options struct {
	// Buckets for the inter-arrival analysis (default: paper's buckets).
	Buckets []AgeBucket
	// MinHistoryDays and MinDegree filter nodes for the normalized-
	// lifetime analysis (paper: 30 days of history, degree ≥ 20).
	MinHistoryDays int32
	MinDegree      int
	// LifetimeBins is the number of normalized-lifetime histogram bins.
	LifetimeBins int
	// MinAgeThresholds are the "new node" cutoffs of Fig 2c, in days.
	MinAgeThresholds []int32
}

// DefaultOptions mirror the paper's parameters.
func DefaultOptions() Options {
	return Options{
		Buckets:          DefaultAgeBuckets(),
		MinHistoryDays:   30,
		MinDegree:        20,
		LifetimeBins:     20,
		MinAgeThresholds: []int32{1, 10, 30},
	}
}

// MinAgeDay is one day of the Fig 2c composition series.
type MinAgeDay struct {
	Day int32
	// Frac[i] is the fraction of the day's edges whose younger endpoint
	// is at most MinAgeThresholds[i] days old.
	Frac  []float64
	Total int64
}

// Result bundles the Fig 2 analyses.
type Result struct {
	InterArrival []InterArrivalBucket
	// LifetimeHist[i] is the fraction of a user's edges created in the
	// i-th slice of her normalized lifetime (Fig 2b).
	LifetimeHist []float64
	// MinAge is the Fig 2c series.
	MinAge []MinAgeDay
	// NodesAnalyzed counts nodes passing the Fig 2b filters.
	NodesAnalyzed int
}

// ErrNoEdges is returned when a trace has no edge events.
var ErrNoEdges = errors.New("evolution: trace has no edges")

// feed streams one pass of a source into a stage's event callback. The §3
// stages never read the shared state, so no State is built — a disk-backed
// pass costs O(1) memory here.
func feed(src trace.Source, fn func(*trace.State, trace.Event)) error {
	cur, err := src.Open()
	if err != nil {
		return err
	}
	for {
		ev, ok, err := cur.Next()
		if err != nil {
			cur.Close()
			return err
		}
		if !ok {
			return cur.Close()
		}
		fn(nil, ev)
	}
}

// Analyze runs the Fig 2 analyses over a trace. It is the batch entry
// point: the actual computation lives in Stage, which the engine also feeds
// from its single shared pass.
func Analyze(events []trace.Event, opt Options) (*Result, error) {
	return AnalyzeSource(trace.SliceSource(events), opt)
}

// AnalyzeSource is Analyze over a re-openable event source.
func AnalyzeSource(src trace.Source, opt Options) (*Result, error) {
	s := NewStage(opt)
	if err := feed(src, s.OnEvent); err != nil {
		return nil, err
	}
	if err := s.Finish(nil); err != nil {
		return nil, err
	}
	return s.Result(), nil
}

// AlphaOptions configures the Fig 3 analysis.
type AlphaOptions struct {
	// Interval is the number of edges between α checkpoints (paper: 5000).
	Interval int64
	// MinEdges is when checkpointing starts (paper: 600K, scaled).
	MinEdges int64
	// Seed drives the random-destination estimator.
	Seed int64
	// PolyDegree is the α(t) polynomial-fit degree (paper: 5).
	PolyDegree int
}

// AlphaResult is the Fig 3 output.
type AlphaResult struct {
	Samples []powerlaw.AlphaSample
	// PEHigher and PERandom are the final p_e(d) curves (Figs 3a–3b).
	PEHigher, PERandom []powerlaw.Point
	// Final fitted exponents and MSEs at the end of the trace.
	FinalAlphaHigher, FinalMSEHigher float64
	FinalAlphaRandom, FinalMSERandom float64
	// PolyHigher/PolyRandom: α(t) polynomial coefficients in the variable
	// edges/PolyScale (Fig 3c); nil when the fit is impossible.
	PolyHigher, PolyRandom []float64
	PolyScale              float64
}

// AnalyzeAlpha measures α(t) over the trace (Fig 3). Like Analyze, it is a
// batch wrapper over the streaming AlphaStage.
func AnalyzeAlpha(events []trace.Event, opt AlphaOptions) (*AlphaResult, error) {
	return AnalyzeAlphaSource(trace.SliceSource(events), opt)
}

// AnalyzeAlphaSource is AnalyzeAlpha over a re-openable event source.
func AnalyzeAlphaSource(src trace.Source, opt AlphaOptions) (*AlphaResult, error) {
	s := NewAlphaStage(opt)
	if err := feed(src, s.OnEvent); err != nil {
		return nil, err
	}
	if err := s.Finish(nil); err != nil {
		return nil, err
	}
	return s.Result(), nil
}
