// Package evolution implements the node-level analyses of §3: the time
// dynamics of edge creation (Fig 2) and the strength of preferential
// attachment over time (Fig 3). All analyses consume a trace event stream.
package evolution

import (
	"errors"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/powerlaw"
	"repro/internal/stats"
	"repro/internal/trace"
)

// AgeBucket is one node-age class for the inter-arrival analysis. The
// paper's buckets: month 1, month 2, month 3, months 4–5, months 6–14,
// months 15–26 (Fig 2a).
type AgeBucket struct {
	Name    string
	MinDays int32 // inclusive
	MaxDays int32 // exclusive
}

// DefaultAgeBuckets reproduces the paper's six bucket boundaries.
func DefaultAgeBuckets() []AgeBucket {
	return []AgeBucket{
		{Name: "month 1", MinDays: 0, MaxDays: 30},
		{Name: "month 2", MinDays: 30, MaxDays: 60},
		{Name: "month 3", MinDays: 60, MaxDays: 90},
		{Name: "months 4-5", MinDays: 90, MaxDays: 150},
		{Name: "months 6-14", MinDays: 150, MaxDays: 420},
		{Name: "months 15-26", MinDays: 420, MaxDays: 780},
	}
}

// InterArrivalBucket is the measured inter-arrival PDF for one age bucket.
type InterArrivalBucket struct {
	Bucket  AgeBucket
	PDF     []stats.Bucket // log-binned density over gap days
	Gamma   float64        // fitted PDF power-law exponent (positive)
	Samples int64
}

// Options configures the edge-evolution analyses.
type Options struct {
	// Buckets for the inter-arrival analysis (default: paper's buckets).
	Buckets []AgeBucket
	// MinHistoryDays and MinDegree filter nodes for the normalized-
	// lifetime analysis (paper: 30 days of history, degree ≥ 20).
	MinHistoryDays int32
	MinDegree      int
	// LifetimeBins is the number of normalized-lifetime histogram bins.
	LifetimeBins int
	// MinAgeThresholds are the "new node" cutoffs of Fig 2c, in days.
	MinAgeThresholds []int32
}

// DefaultOptions mirror the paper's parameters.
func DefaultOptions() Options {
	return Options{
		Buckets:          DefaultAgeBuckets(),
		MinHistoryDays:   30,
		MinDegree:        20,
		LifetimeBins:     20,
		MinAgeThresholds: []int32{1, 10, 30},
	}
}

// MinAgeDay is one day of the Fig 2c composition series.
type MinAgeDay struct {
	Day int32
	// Frac[i] is the fraction of the day's edges whose younger endpoint
	// is at most MinAgeThresholds[i] days old.
	Frac  []float64
	Total int64
}

// Result bundles the Fig 2 analyses.
type Result struct {
	InterArrival []InterArrivalBucket
	// LifetimeHist[i] is the fraction of a user's edges created in the
	// i-th slice of her normalized lifetime (Fig 2b).
	LifetimeHist []float64
	// MinAge is the Fig 2c series.
	MinAge []MinAgeDay
	// NodesAnalyzed counts nodes passing the Fig 2b filters.
	NodesAnalyzed int
}

// ErrNoEdges is returned when a trace has no edge events.
var ErrNoEdges = errors.New("evolution: trace has no edges")

// Analyze runs the Fig 2 analyses over a trace.
func Analyze(events []trace.Event, opt Options) (*Result, error) {
	if len(opt.Buckets) == 0 {
		opt.Buckets = DefaultAgeBuckets()
	}
	if opt.LifetimeBins <= 0 {
		opt.LifetimeBins = 20
	}
	if len(opt.MinAgeThresholds) == 0 {
		opt.MinAgeThresholds = []int32{1, 10, 30}
	}

	// Per-node join day and edge-day lists.
	var joinDay []int32
	edgeDays := map[graph.NodeID][]int32{}
	hasEdges := false

	// Inter-arrival histograms per bucket.
	hists := make([]*stats.LogHistogram, len(opt.Buckets))
	for i := range hists {
		hists[i], _ = stats.NewLogHistogram(1.35)
	}
	lastEdge := map[graph.NodeID]int32{}

	// Fig 2c accumulation.
	sort.Slice(opt.MinAgeThresholds, func(i, j int) bool { return opt.MinAgeThresholds[i] < opt.MinAgeThresholds[j] })
	var minAge []MinAgeDay
	var curDay int32 = -1
	var dayTotal int64
	dayHits := make([]int64, len(opt.MinAgeThresholds))
	flushDay := func() {
		if curDay < 0 || dayTotal == 0 {
			return
		}
		fr := make([]float64, len(dayHits))
		for i, h := range dayHits {
			fr[i] = float64(h) / float64(dayTotal)
		}
		minAge = append(minAge, MinAgeDay{Day: curDay, Frac: fr, Total: dayTotal})
	}

	bucketOf := func(age int32) int {
		for i, b := range opt.Buckets {
			if age >= b.MinDays && age < b.MaxDays {
				return i
			}
		}
		return -1
	}

	for _, ev := range events {
		switch ev.Kind {
		case trace.AddNode:
			for int32(len(joinDay)) <= ev.U {
				joinDay = append(joinDay, ev.Day)
			}
			joinDay[ev.U] = ev.Day
		case trace.AddEdge:
			hasEdges = true
			if ev.Day != curDay {
				flushDay()
				curDay = ev.Day
				dayTotal = 0
				for i := range dayHits {
					dayHits[i] = 0
				}
			}
			ageU := ev.Day - joinDay[ev.U]
			ageV := ev.Day - joinDay[ev.V]
			minA := ageU
			if ageV < minA {
				minA = ageV
			}
			dayTotal++
			for i, th := range opt.MinAgeThresholds {
				if minA <= th {
					dayHits[i]++
				}
			}
			// Inter-arrival per endpoint.
			for _, u := range [2]graph.NodeID{ev.U, ev.V} {
				age := ev.Day - joinDay[u]
				if last, ok := lastEdge[u]; ok {
					gap := ev.Day - last
					if gap > 0 {
						if bi := bucketOf(age); bi >= 0 {
							hists[bi].Add(float64(gap))
						}
					}
				}
				lastEdge[u] = ev.Day
				edgeDays[u] = append(edgeDays[u], ev.Day)
			}
		}
	}
	flushDay()
	if !hasEdges {
		return nil, ErrNoEdges
	}

	res := &Result{MinAge: minAge}
	for i, h := range hists {
		b := InterArrivalBucket{Bucket: opt.Buckets[i], PDF: h.Buckets(), Samples: h.Total()}
		if gamma, err := powerlaw.FitBucketPDF(b.PDF); err == nil {
			b.Gamma = gamma
		}
		res.InterArrival = append(res.InterArrival, b)
	}

	// Fig 2b: normalized lifetime activity.
	hist := make([]float64, opt.LifetimeBins)
	var users int
	lastDay := curDay
	for u, days := range edgeDays {
		join := joinDay[u]
		if len(days) < opt.MinDegree {
			continue
		}
		if lastDay-join < opt.MinHistoryDays {
			continue
		}
		last := days[len(days)-1]
		life := float64(last - join)
		if life <= 0 {
			continue
		}
		users++
		for _, d := range days {
			pos := float64(d-join) / life
			bin := int(pos * float64(opt.LifetimeBins))
			if bin >= opt.LifetimeBins {
				bin = opt.LifetimeBins - 1
			}
			hist[bin]++
		}
	}
	var total float64
	for _, h := range hist {
		total += h
	}
	if total > 0 {
		for i := range hist {
			hist[i] /= total
		}
	}
	res.LifetimeHist = hist
	res.NodesAnalyzed = users
	return res, nil
}

// AlphaOptions configures the Fig 3 analysis.
type AlphaOptions struct {
	// Interval is the number of edges between α checkpoints (paper: 5000).
	Interval int64
	// MinEdges is when checkpointing starts (paper: 600K, scaled).
	MinEdges int64
	// Seed drives the random-destination estimator.
	Seed int64
	// PolyDegree is the α(t) polynomial-fit degree (paper: 5).
	PolyDegree int
}

// AlphaResult is the Fig 3 output.
type AlphaResult struct {
	Samples []powerlaw.AlphaSample
	// PEHigher and PERandom are the final p_e(d) curves (Figs 3a–3b).
	PEHigher, PERandom []powerlaw.Point
	// Final fitted exponents and MSEs at the end of the trace.
	FinalAlphaHigher, FinalMSEHigher float64
	FinalAlphaRandom, FinalMSERandom float64
	// PolyHigher/PolyRandom: α(t) polynomial coefficients in the variable
	// edges/PolyScale (Fig 3c); nil when the fit is impossible.
	PolyHigher, PolyRandom []float64
	PolyScale              float64
}

// AnalyzeAlpha measures α(t) over the trace (Fig 3).
func AnalyzeAlpha(events []trace.Event, opt AlphaOptions) (*AlphaResult, error) {
	if opt.Interval <= 0 {
		opt.Interval = 5000
	}
	if opt.PolyDegree <= 0 {
		opt.PolyDegree = 5
	}
	tr := powerlaw.NewAlphaTracker(opt.Interval, opt.MinEdges, stats.NewRand(opt.Seed))
	day := int32(0)
	sawEdge := false
	for _, ev := range events {
		day = ev.Day
		switch ev.Kind {
		case trace.AddNode:
			tr.ObserveNode(ev.U)
		case trace.AddEdge:
			tr.ObserveEdge(ev.U, ev.V, ev.Day)
			sawEdge = true
		}
	}
	if !sawEdge {
		return nil, ErrNoEdges
	}
	res := &AlphaResult{Samples: tr.Finish(day)}
	hi := tr.Estimator(powerlaw.DestHigherDegree)
	lo := tr.Estimator(powerlaw.DestRandom)
	res.PEHigher = hi.Snapshot()
	res.PERandom = lo.Snapshot()
	if a, _, m, err := hi.Fit(); err == nil {
		res.FinalAlphaHigher, res.FinalMSEHigher = a, m
	}
	if a, _, m, err := lo.Fit(); err == nil {
		res.FinalAlphaRandom, res.FinalMSERandom = a, m
	}
	// Polynomial fit of α(t) as in Fig 3c, scaled for conditioning.
	if n := len(res.Samples); n > opt.PolyDegree {
		res.PolyScale = math.Max(1, float64(res.Samples[n-1].Edges))
		if c, err := powerlaw.FitPolynomial(res.Samples, powerlaw.DestHigherDegree, opt.PolyDegree, res.PolyScale); err == nil {
			res.PolyHigher = c
		}
		if c, err := powerlaw.FitPolynomial(res.Samples, powerlaw.DestRandom, opt.PolyDegree, res.PolyScale); err == nil {
			res.PolyRandom = c
		}
	}
	return res, nil
}
