package evolution

import (
	"math"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/trace"
)

var (
	traceOnce   sync.Once
	traceEvents []trace.Event
	traceErr    error
)

// makeTrace builds (once) a deterministic mid-sized trace whose node count
// spans enough scale for the PA-decay mechanism to be measurable.
func makeTrace(t *testing.T) []trace.Event {
	t.Helper()
	traceOnce.Do(func() {
		cfg := gen.DefaultConfig()
		cfg.Days = 350
		cfg.MaxNodes = 30000
		cfg.Arrival.Base = 12
		cfg.Arrival.GrowthStart = 0.07
		cfg.Arrival.GrowthEnd = 0.012
		cfg.Arrival.GrowthTau = 80
		cfg.Arrival.Dips = nil
		cfg.Arrival.Bursts = nil
		cfg.Merge = nil
		tr, err := gen.Generate(cfg)
		if err != nil {
			traceErr = err
			return
		}
		traceEvents = tr.Events
	})
	if traceErr != nil {
		t.Fatal(traceErr)
	}
	return traceEvents
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	if _, err := Analyze(nil, DefaultOptions()); err != ErrNoEdges {
		t.Fatalf("err = %v", err)
	}
	nodesOnly := []trace.Event{{Kind: trace.AddNode, Day: 0, U: 0}}
	if _, err := Analyze(nodesOnly, DefaultOptions()); err != ErrNoEdges {
		t.Fatalf("err = %v", err)
	}
}

func TestAnalyzeBasicShapes(t *testing.T) {
	events := makeTrace(t)
	res, err := Analyze(events, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 2a: month-1 bucket must have samples and a positive exponent.
	if len(res.InterArrival) != 6 {
		t.Fatalf("buckets = %d", len(res.InterArrival))
	}
	m1 := res.InterArrival[0]
	if m1.Samples == 0 {
		t.Fatal("no month-1 inter-arrival samples")
	}
	if m1.Gamma <= 0.5 {
		t.Fatalf("month-1 PDF exponent = %v, want clearly positive (power-law decay)", m1.Gamma)
	}
	// Fig 2b: histogram sums to ~1 and is front-loaded (first quartile
	// carries more mass than the last).
	var sum, firstQ, lastQ float64
	n := len(res.LifetimeHist)
	for i, h := range res.LifetimeHist {
		sum += h
		if i < n/4 {
			firstQ += h
		}
		if i >= 3*n/4 {
			lastQ += h
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("lifetime hist sums to %v", sum)
	}
	if res.NodesAnalyzed == 0 {
		t.Fatal("no nodes passed Fig 2b filters")
	}
	if firstQ <= lastQ {
		t.Fatalf("activity not front-loaded: first quartile %v <= last %v", firstQ, lastQ)
	}
	// Fig 2c: fractions are monotone in the threshold and within [0,1].
	if len(res.MinAge) == 0 {
		t.Fatal("no min-age series")
	}
	for _, d := range res.MinAge {
		if len(d.Frac) != 3 {
			t.Fatalf("frac count = %d", len(d.Frac))
		}
		for i, f := range d.Frac {
			if f < 0 || f > 1 {
				t.Fatalf("day %d frac[%d] = %v", d.Day, i, f)
			}
			if i > 0 && d.Frac[i] < d.Frac[i-1]-1e-12 {
				t.Fatalf("day %d: fraction not monotone in threshold: %v", d.Day, d.Frac)
			}
		}
	}
}

func TestMinAgeDeclines(t *testing.T) {
	// The share of edges from brand-new nodes must decline as the network
	// matures (the paper's key §3.1 finding).
	events := makeTrace(t)
	res, err := Analyze(events, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var early, late []float64
	for _, d := range res.MinAge {
		if d.Day >= 20 && d.Day < 80 {
			early = append(early, d.Frac[0])
		}
		if d.Day >= 280 {
			late = append(late, d.Frac[0])
		}
	}
	if len(early) == 0 || len(late) == 0 {
		t.Fatal("not enough series coverage")
	}
	me := mean(early)
	ml := mean(late)
	if ml >= me {
		t.Fatalf("new-node edge share did not decline: early %v late %v", me, ml)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestAnalyzeAlphaOnTrace(t *testing.T) {
	events := makeTrace(t)
	res, err := AnalyzeAlpha(events, AlphaOptions{Interval: 5000, MinEdges: 10000, Seed: 3, PolyDegree: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no alpha samples")
	}
	last := res.Samples[len(res.Samples)-1]
	// Ordering: higher-degree rule above random rule.
	if last.AlphaHigher <= last.AlphaRandom {
		t.Fatalf("alpha ordering violated: %+v", last)
	}
	// The PA-decay mechanism must show: α falls from first to last sample.
	first := res.Samples[0]
	if last.AlphaHigher >= first.AlphaHigher {
		t.Fatalf("alpha did not decay: first %v last %v", first.AlphaHigher, last.AlphaHigher)
	}
	if len(res.PEHigher) == 0 || len(res.PERandom) == 0 {
		t.Fatal("no p_e(d) points")
	}
	if res.FinalMSEHigher <= 0 || res.FinalMSERandom <= 0 {
		t.Fatalf("MSEs: %v %v", res.FinalMSEHigher, res.FinalMSERandom)
	}
	if res.PolyHigher == nil || len(res.PolyHigher) != 4 {
		t.Fatalf("poly fit: %v", res.PolyHigher)
	}
}

func TestAnalyzeAlphaNoEdges(t *testing.T) {
	nodesOnly := []trace.Event{{Kind: trace.AddNode, Day: 0, U: 0}}
	if _, err := AnalyzeAlpha(nodesOnly, AlphaOptions{}); err != ErrNoEdges {
		t.Fatalf("err = %v", err)
	}
}

func TestDefaultAgeBucketsCoverTrace(t *testing.T) {
	bs := DefaultAgeBuckets()
	if len(bs) != 6 {
		t.Fatalf("buckets = %d", len(bs))
	}
	// Contiguous coverage 0..780.
	for i := 1; i < len(bs); i++ {
		if bs[i].MinDays != bs[i-1].MaxDays {
			t.Fatalf("gap between buckets %d and %d", i-1, i)
		}
	}
	if bs[0].MinDays != 0 || bs[5].MaxDays != 780 {
		t.Fatalf("bounds: %+v", bs)
	}
}
