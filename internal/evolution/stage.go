package evolution

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/graph"
	"repro/internal/powerlaw"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Stage is the streaming form of Analyze (Fig 2): it consumes one event at
// a time from the engine's shared pass and assembles the Result in Finish.
// It tracks its own per-node columns, so it also runs detached from a
// trace.State (the batch Analyze entry point feeds it a plain event loop).
type Stage struct {
	opt Options

	joinDay []int32
	// edgeDays holds every edge day per user — the Fig 2b normalized-
	// lifetime pass needs the full history, so it is inherently O(edges).
	// It lives in a chunked-arena list collection (same layout as the
	// graph's adjacency) instead of a map of slices: flat pointer-free
	// backing arrays instead of per-user slice headers, bucket overhead,
	// and append-doubling slack. lastEdge is a flat column with -1 for
	// "no edge yet" (decoded days are never negative); a user has a
	// history iff edgeDays.Len(u) > 0, which coincides with lastEdge >= 0.
	edgeDays graph.Int32Lists
	hasEdges bool

	hists    []*stats.LogHistogram
	lastEdge []int32

	minAge   []MinAgeDay
	curDay   int32
	dayTotal int64
	dayHits  []int64

	res *Result
}

// NewStage creates a streaming Fig 2 stage; zero option fields get the
// paper's defaults, as in Analyze.
func NewStage(opt Options) *Stage {
	if len(opt.Buckets) == 0 {
		opt.Buckets = DefaultAgeBuckets()
	}
	if opt.LifetimeBins <= 0 {
		opt.LifetimeBins = 20
	}
	if len(opt.MinAgeThresholds) == 0 {
		opt.MinAgeThresholds = []int32{1, 10, 30}
	}
	sort.Slice(opt.MinAgeThresholds, func(i, j int) bool { return opt.MinAgeThresholds[i] < opt.MinAgeThresholds[j] })
	s := &Stage{
		opt:     opt,
		hists:   make([]*stats.LogHistogram, len(opt.Buckets)),
		curDay:  -1,
		dayHits: make([]int64, len(opt.MinAgeThresholds)),
	}
	for i := range s.hists {
		s.hists[i], _ = stats.NewLogHistogram(1.35)
	}
	return s
}

// StageName and AlphaStageName are the planner registry names of the two
// §3 stages.
const (
	StageName      = "evolution"
	AlphaStageName = "alpha"
)

// Name implements engine.Stage.
func (s *Stage) Name() string { return StageName }

// OverlapSafe marks the stage for the engine's parallel driver: OnEvent
// reads only the event itself (ages come from its private joinDay map)
// and OnDayEnd is a no-op.
func (s *Stage) OverlapSafe() {}

func (s *Stage) flushDay() {
	if s.curDay < 0 || s.dayTotal == 0 {
		return
	}
	fr := make([]float64, len(s.dayHits))
	for i, h := range s.dayHits {
		fr[i] = float64(h) / float64(s.dayTotal)
	}
	s.minAge = append(s.minAge, MinAgeDay{Day: s.curDay, Frac: fr, Total: s.dayTotal})
}

// growLastEdge extends the lastEdge column to cover node u, filling new
// entries with the no-edge sentinel. Amortized O(1) on the hot path.
func (s *Stage) growLastEdge(u graph.NodeID) {
	n := int(u) + 1
	if n <= len(s.lastEdge) {
		return
	}
	old := len(s.lastEdge)
	if cap(s.lastEdge) < n {
		c := 2 * cap(s.lastEdge)
		if c < n {
			c = n
		}
		if c < 1024 {
			c = 1024
		}
		le := make([]int32, n, c)
		copy(le, s.lastEdge)
		s.lastEdge = le
	} else {
		s.lastEdge = s.lastEdge[:n]
	}
	for i := old; i < n; i++ {
		s.lastEdge[i] = -1
	}
}

func (s *Stage) bucketOf(age int32) int {
	for i, b := range s.opt.Buckets {
		if age >= b.MinDays && age < b.MaxDays {
			return i
		}
	}
	return -1
}

// OnEvent folds one event into the inter-arrival, lifetime, and min-age
// accumulators. The shared state is unused; nil is accepted.
func (s *Stage) OnEvent(_ *trace.State, ev trace.Event) {
	switch ev.Kind {
	case trace.AddNode:
		for int32(len(s.joinDay)) <= ev.U {
			s.joinDay = append(s.joinDay, ev.Day)
		}
		s.joinDay[ev.U] = ev.Day
	case trace.AddEdge:
		s.hasEdges = true
		if ev.Day != s.curDay {
			s.flushDay()
			s.curDay = ev.Day
			s.dayTotal = 0
			for i := range s.dayHits {
				s.dayHits[i] = 0
			}
		}
		ageU := ev.Day - s.joinDay[ev.U]
		ageV := ev.Day - s.joinDay[ev.V]
		minA := ageU
		if ageV < minA {
			minA = ageV
		}
		s.dayTotal++
		for i, th := range s.opt.MinAgeThresholds {
			if minA <= th {
				s.dayHits[i]++
			}
		}
		// Inter-arrival per endpoint.
		for _, u := range [2]graph.NodeID{ev.U, ev.V} {
			age := ev.Day - s.joinDay[u]
			s.growLastEdge(u)
			if last := s.lastEdge[u]; last >= 0 {
				gap := ev.Day - last
				if gap > 0 {
					if bi := s.bucketOf(age); bi >= 0 {
						s.hists[bi].Add(float64(gap))
					}
				}
			}
			s.lastEdge[u] = ev.Day
			s.edgeDays.Append(int(u), ev.Day)
		}
	}
}

// OnDayEnd implements engine.Stage; the stage keys its daily flush on edge
// days, matching the batch analysis.
func (s *Stage) OnDayEnd(_ *trace.State, _ int32) {}

// Finish assembles the Fig 2 Result; ErrNoEdges if the trace had no edges.
func (s *Stage) Finish(_ *trace.State) error {
	s.flushDay()
	if !s.hasEdges {
		return ErrNoEdges
	}
	res := &Result{MinAge: s.minAge}
	for i, h := range s.hists {
		b := InterArrivalBucket{Bucket: s.opt.Buckets[i], PDF: h.Buckets(), Samples: h.Total()}
		if gamma, err := powerlaw.FitBucketPDF(b.PDF); err == nil {
			b.Gamma = gamma
		}
		res.InterArrival = append(res.InterArrival, b)
	}

	// Fig 2b: normalized lifetime activity.
	hist := make([]float64, s.opt.LifetimeBins)
	var users int
	lastDay := s.curDay
	var days []int32
	for u := 0; u < s.edgeDays.NumLists(); u++ {
		nd := s.edgeDays.Len(u)
		if nd == 0 {
			continue
		}
		join := s.joinDay[u]
		if nd < s.opt.MinDegree {
			continue
		}
		if lastDay-join < s.opt.MinHistoryDays {
			continue
		}
		last, _ := s.edgeDays.Last(u)
		life := float64(last - join)
		if life <= 0 {
			continue
		}
		users++
		days = s.edgeDays.AppendTo(days[:0], u)
		for _, d := range days {
			pos := float64(d-join) / life
			bin := int(pos * float64(s.opt.LifetimeBins))
			if bin >= s.opt.LifetimeBins {
				bin = s.opt.LifetimeBins - 1
			}
			hist[bin]++
		}
	}
	var total float64
	for _, h := range hist {
		total += h
	}
	if total > 0 {
		for i := range hist {
			hist[i] /= total
		}
	}
	res.LifetimeHist = hist
	res.NodesAnalyzed = users
	s.res = res
	return nil
}

// Result returns the assembled analysis after Finish; nil before.
func (s *Stage) Result() *Result { return s.res }

// stageStateV1 versions the two §3 stages' checkpoint blobs.
const stageStateV1 = 1

// SaveState implements engine.Checkpointer: the per-node join/activity
// columns, the per-bucket inter-arrival histograms, and the Fig 2c
// accumulators. The edgeDays buffer is the stage's largest hidden state
// — serializing it is what makes the Fig 2b normalized-lifetime pass
// resumable.
func (s *Stage) SaveState(w io.Writer) error {
	e := checkpoint.NewEncoder(w)
	e.U64(stageStateV1)
	e.I32s(s.joinDay)
	// Non-empty lists serialize as (id, days) pairs in ascending id order
	// — the exact bytes the former map-of-slices form emitted via
	// SortedKeys, so checkpoints stay byte-identical across the
	// representation change.
	nLists := 0
	for u := 0; u < s.edgeDays.NumLists(); u++ {
		if s.edgeDays.Len(u) > 0 {
			nLists++
		}
	}
	e.U64(uint64(nLists))
	var days []int32
	for u := 0; u < s.edgeDays.NumLists(); u++ {
		if s.edgeDays.Len(u) == 0 {
			continue
		}
		e.I32(int32(u))
		days = s.edgeDays.AppendTo(days[:0], u)
		e.I32s(days)
	}
	e.Bool(s.hasEdges)
	e.U64(uint64(len(s.hists)))
	for _, h := range s.hists {
		e.U64(uint64(len(h.Counts)))
		for _, i := range checkpoint.SortedKeys(h.Counts) {
			e.Int(i)
			e.I64(h.Counts[i])
		}
	}
	nLast := 0
	for _, d := range s.lastEdge {
		if d >= 0 {
			nLast++
		}
	}
	e.U64(uint64(nLast))
	for u, d := range s.lastEdge {
		if d >= 0 {
			e.I32(int32(u))
			e.I32(d)
		}
	}
	e.U64(uint64(len(s.minAge)))
	for _, m := range s.minAge {
		e.I32(m.Day)
		e.F64s(m.Frac)
		e.I64(m.Total)
	}
	e.I32(s.curDay)
	e.I64(s.dayTotal)
	e.I64s(s.dayHits)
	return e.Flush()
}

// LoadState implements engine.Checkpointer.
func (s *Stage) LoadState(r io.Reader) error {
	d := checkpoint.NewDecoder(r)
	if v := d.U64(); d.Err() == nil && v != stageStateV1 {
		return fmt.Errorf("evolution: checkpoint state version %d", v)
	}
	s.joinDay = d.I32s()
	n := d.Len()
	s.edgeDays = graph.Int32Lists{}
	for i := 0; i < n && d.Err() == nil; i++ {
		u := d.I32()
		days := d.I32s()
		if u < 0 {
			return fmt.Errorf("evolution: checkpoint edgeDays id %d", u)
		}
		for _, day := range days {
			s.edgeDays.Append(int(u), day)
		}
	}
	s.hasEdges = d.Bool()
	if hn := d.Len(); d.Err() == nil && hn != len(s.hists) {
		return fmt.Errorf("evolution: checkpoint has %d histograms, stage %d", hn, len(s.hists))
	}
	for _, h := range s.hists {
		cn := d.Len()
		counts := make(map[int]int64, min(cn, 1<<16))
		for i := 0; i < cn && d.Err() == nil; i++ {
			k := d.Int()
			counts[k] = d.I64()
		}
		h.RestoreCounts(counts)
	}
	n = d.Len()
	s.lastEdge = nil
	for i := 0; i < n && d.Err() == nil; i++ {
		u := d.I32()
		day := d.I32()
		if u < 0 {
			return fmt.Errorf("evolution: checkpoint lastEdge id %d", u)
		}
		s.growLastEdge(u)
		s.lastEdge[u] = day
	}
	n = d.Len()
	s.minAge = make([]MinAgeDay, 0, min(n, 1<<16))
	for i := 0; i < n && d.Err() == nil; i++ {
		s.minAge = append(s.minAge, MinAgeDay{Day: d.I32(), Frac: d.F64s(), Total: d.I64()})
	}
	s.curDay = d.I32()
	s.dayTotal = d.I64()
	s.dayHits = d.I64s()
	return d.Err()
}

// AlphaStage is the streaming form of AnalyzeAlpha (Fig 3).
type AlphaStage struct {
	opt     AlphaOptions
	src     *stats.Source
	tracker *powerlaw.AlphaTracker
	day     int32
	sawEdge bool
	res     *AlphaResult
}

// NewAlphaStage creates a streaming Fig 3 stage with AnalyzeAlpha's
// defaulting.
func NewAlphaStage(opt AlphaOptions) *AlphaStage {
	if opt.Interval <= 0 {
		opt.Interval = 5000
	}
	if opt.PolyDegree <= 0 {
		opt.PolyDegree = 5
	}
	src := stats.NewSource(opt.Seed)
	return &AlphaStage{
		opt:     opt,
		src:     src,
		tracker: powerlaw.NewAlphaTracker(opt.Interval, opt.MinEdges, rand.New(src)),
	}
}

// Name implements engine.Stage.
func (s *AlphaStage) Name() string { return AlphaStageName }

// OverlapSafe marks the stage for the engine's parallel driver: OnEvent
// only feeds the private α tracker; OnDayEnd is a no-op.
func (s *AlphaStage) OverlapSafe() {}

// OnEvent forwards arrivals to the α tracker.
func (s *AlphaStage) OnEvent(_ *trace.State, ev trace.Event) {
	s.day = ev.Day
	switch ev.Kind {
	case trace.AddNode:
		s.tracker.ObserveNode(ev.U)
	case trace.AddEdge:
		s.tracker.ObserveEdge(ev.U, ev.V, ev.Day)
		s.sawEdge = true
	}
}

// OnDayEnd implements engine.Stage.
func (s *AlphaStage) OnDayEnd(_ *trace.State, _ int32) {}

// Finish fits the final exponents and the α(t) polynomial; ErrNoEdges if
// the trace had no edges.
func (s *AlphaStage) Finish(_ *trace.State) error {
	if !s.sawEdge {
		return ErrNoEdges
	}
	res := &AlphaResult{Samples: s.tracker.Finish(s.day)}
	hi := s.tracker.Estimator(powerlaw.DestHigherDegree)
	lo := s.tracker.Estimator(powerlaw.DestRandom)
	res.PEHigher = hi.Snapshot()
	res.PERandom = lo.Snapshot()
	if a, _, m, err := hi.Fit(); err == nil {
		res.FinalAlphaHigher, res.FinalMSEHigher = a, m
	}
	if a, _, m, err := lo.Fit(); err == nil {
		res.FinalAlphaRandom, res.FinalMSERandom = a, m
	}
	// Polynomial fit of α(t) as in Fig 3c, scaled for conditioning.
	if n := len(res.Samples); n > s.opt.PolyDegree {
		res.PolyScale = math.Max(1, float64(res.Samples[n-1].Edges))
		if c, err := powerlaw.FitPolynomial(res.Samples, powerlaw.DestHigherDegree, s.opt.PolyDegree, res.PolyScale); err == nil {
			res.PolyHigher = c
		}
		if c, err := powerlaw.FitPolynomial(res.Samples, powerlaw.DestRandom, s.opt.PolyDegree, res.PolyScale); err == nil {
			res.PolyRandom = c
		}
	}
	s.res = res
	return nil
}

// Result returns the assembled analysis after Finish; nil before.
func (s *AlphaStage) Result() *AlphaResult { return s.res }

// SaveState implements engine.Checkpointer: the α tracker's estimator
// state plus the random-destination RNG's position.
func (s *AlphaStage) SaveState(w io.Writer) error {
	e := checkpoint.NewEncoder(w)
	e.U64(stageStateV1)
	e.I32(s.day)
	e.Bool(s.sawEdge)
	s.tracker.SaveState(e)
	e.I64(s.src.Draws())
	return e.Flush()
}

// LoadState implements engine.Checkpointer.
func (s *AlphaStage) LoadState(r io.Reader) error {
	d := checkpoint.NewDecoder(r)
	if v := d.U64(); d.Err() == nil && v != stageStateV1 {
		return fmt.Errorf("alpha: checkpoint state version %d", v)
	}
	s.day = d.I32()
	s.sawEdge = d.Bool()
	if err := s.tracker.LoadState(d); err != nil {
		return err
	}
	draws := d.I64()
	if err := d.Err(); err != nil {
		return err
	}
	s.src.Restore(s.opt.Seed, draws)
	return nil
}
