package ingest

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/trace"
)

// BenchmarkIngest measures the live plane's per-appended-day cost: each
// iteration plays the role of the writer for exactly one day (write the
// next day's events, Flush — which seals the previous day), then the
// follower's (probe the tail, AdvanceTo, republish). Reported metrics:
//
//	apply-ns/day    AdvanceTo latency (checkpoint resume + replay + publish)
//	probe-ns/day    tail probe latency (appended-bytes decode)
//	visible-ns/day  flush-to-served latency (probe + apply together)
//	events/sec      sustained apply throughput over the appended events
func BenchmarkIngest(b *testing.B) {
	const base = 70
	dir := b.TempDir()
	live := filepath.Join(dir, "live.trace")
	if _, err := gen.GenerateToFile(liveGenConfig(base), live); err != nil {
		b.Fatal(err)
	}

	// Pre-generate the writer's future: every day the iterations will
	// append, decoded into per-day batches.
	horizon := int32(base + 1 + b.N)
	full := filepath.Join(dir, "full.trace")
	if _, err := gen.GenerateToFile(liveGenConfig(horizon), full); err != nil {
		b.Fatal(err)
	}
	byDay := make(map[int32][]trace.Event)
	fsrc, err := trace.OpenFileSource(full)
	if err != nil {
		b.Fatal(err)
	}
	cur, err := trace.OpenSourceAt(fsrc, base)
	if err != nil {
		b.Fatal(err)
	}
	for {
		ev, ok, err := cur.Next()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			break
		}
		byDay[ev.Day] = append(byDay[ev.Day], ev)
	}
	cur.Close()

	tailer := NewTailer(Options{Path: live, Log: quietLog()})
	srv, err := serve.NewServer(context.Background(), serve.Options{
		TracePath:     live,
		CheckpointDir: filepath.Join(dir, "ckpt"),
		Config:        liveCoreConfig(),
		Log:           quietLog(),
		Open:          tailer.OpenSealed,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	f, err := os.OpenFile(live, os.O_RDWR, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	enc, err := trace.OpenAppend(f)
	if err != nil {
		b.Fatal(err)
	}
	writeDay := func(day int32) {
		b.Helper()
		for _, ev := range byDay[day] {
			if err := enc.Write(ev); err != nil {
				b.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	// Prime: day base's events seal day base-1, which the warm load
	// already published — iteration i then seals exactly day base+i.
	writeDay(base)

	var probeNs, applyNs int64
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		writeDay(base + 1 + int32(i))
		t0 := time.Now()
		snap, err := tailer.Probe()
		if err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		advanced, day, err := srv.AdvanceTo(context.Background(), snap.Source())
		if err != nil {
			b.Fatal(err)
		}
		t2 := time.Now()
		if !advanced || day != base+int32(i) {
			b.Fatalf("iteration %d: advanced=%v day=%d, want day %d", i, advanced, day, base+int32(i))
		}
		probeNs += t1.Sub(t0).Nanoseconds()
		applyNs += t2.Sub(t1).Nanoseconds()
		events += int64(len(byDay[base+int32(i)]))
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(probeNs)/n, "probe-ns/day")
	b.ReportMetric(float64(applyNs)/n, "apply-ns/day")
	b.ReportMetric(float64(probeNs+applyNs)/n, "visible-ns/day")
	if applyNs > 0 {
		b.ReportMetric(float64(events)/(float64(applyNs)/1e9), "events/sec")
	}
}
