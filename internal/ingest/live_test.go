package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/trace"
)

func quietLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// liveGenConfig is a shrunk generator scenario for the live loop: ~70
// initial days holding the merge (day 40), small enough that a warm pass
// takes well under a second.
func liveGenConfig(days int32) gen.Config {
	c := gen.SmallConfig()
	c.Days = days
	c.MaxNodes = 10_000
	c.Arrival.Base = 20
	c.Merge.Day = 40
	c.Merge.FiveQStart = 15
	return c
}

// liveCoreConfig mirrors serve's test scale-down at the shrunk horizon.
// SizeDistDays sit on the day-20+6k snapshot grid inside the initial
// horizon so every intermediate sealed prefix runs the same stage set
// (stable fingerprint → checkpoint resume works at every advance).
func liveCoreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Alpha.Interval = 1500
	cfg.Alpha.MinEdges = 2000
	cfg.Alpha.PolyDegree = 3
	cfg.Community.SnapshotEvery = 6
	cfg.Community.SizeDistDays = []int32{26, 44, 62}
	cfg.DeltaSweep = []float64{0.01, 0.1}
	cfg.PathEvery = 20
	cfg.PathSources = 20
	cfg.ClusteringSamples = 200
	cfg.CheckpointEvery = 30
	return cfg
}

// TestLiveFollowLoop is the ingest plane's acceptance test: a writer
// appends three day-batches to a trace while a follower daemon tails it
// and serves figures throughout; when the dust settles, every served
// panel must be bit-identical to a from-zero batch run over the final
// file. Runs under -race in CI, so it also holds the tailer, applier,
// server and HTTP readers to the memory model.
func TestLiveFollowLoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.trace")
	if _, err := gen.GenerateToFile(liveGenConfig(70), path); err != nil {
		t.Fatal(err)
	}

	tailer := NewTailer(Options{Path: path, Poll: 2 * time.Millisecond, Log: quietLog()})
	srv, err := serve.NewServer(context.Background(), serve.Options{
		TracePath:     path,
		CheckpointDir: filepath.Join(dir, "ckpt"),
		Config:        liveCoreConfig(),
		Log:           quietLog(),
		Open:          tailer.OpenSealed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if day := srv.Snapshot().Day; day != 69 {
		t.Fatalf("warm load published day %d, want 69", day)
	}
	applier := NewApplier(srv, tailer)
	srv.RegisterStatz("ingest", applier.Statz)

	ctx, cancel := context.WithCancel(context.Background())
	followDone := make(chan error, 1)
	go func() { followDone <- applier.Run(ctx) }()

	// Concurrent readers hammer the HTTP surface for the whole run.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var stopReaders atomic.Bool
	var readers sync.WaitGroup
	ids := []string{"fig1a", "fig2a", "fig4a", "fig5a", "fig9a"}
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; !stopReaders.Load(); i++ {
				target := ts.URL + "/figures/" + ids[(i+r)%len(ids)]
				if i%7 == 0 {
					target = ts.URL + "/statz"
				}
				resp, err := http.Get(target)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 && resp.StatusCode != 404 {
					t.Errorf("reader: %s: status %d", target, resp.StatusCode)
					return
				}
			}
		}(r)
	}

	// The writer: three in-place extensions, each finalized; the follower
	// also sees intermediate sealed days while each append is in flight.
	for _, horizon := range []int32{90, 110, 130} {
		if _, err := gen.AppendToFile(liveGenConfig(horizon), path); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(60 * time.Second)
		for srv.Snapshot().Day != horizon-1 {
			if time.Now().After(deadline) {
				t.Fatalf("follower never published day %d (at %d)", horizon-1, srv.Snapshot().Day)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	stats := applier.Statz().(ApplyStats)
	if stats.Applies < 3 {
		t.Fatalf("only %d applies across 3 extensions", stats.Applies)
	}
	if stats.PublishedDay != 129 || stats.DaysBehind != 0 {
		t.Fatalf("final ingest stats: %+v", stats)
	}

	// /statz carries the registered ingest section.
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var statz map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := statz["ingest"]; !ok {
		t.Fatal("/statz has no ingest section")
	}

	// The bar: every served panel is bit-identical to a from-zero batch
	// run over the final file — the live path added nothing and lost
	// nothing.
	refSrc, err := trace.OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	refCfg := liveCoreConfig()
	ref, err := core.RunFigures(nil, refSrc, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Seal()
	for _, id := range core.AllFigures {
		refTab, refErr := ref.Figure(id)
		resp, err := http.Get(ts.URL + "/figures/" + id + "?format=tsv")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if refErr != nil {
			if resp.StatusCode == 200 {
				t.Errorf("%s: served 200, reference errors with %v", id, refErr)
			}
			continue
		}
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d, want 200", id, resp.StatusCode)
			continue
		}
		var want bytes.Buffer
		if err := refTab.Write(&want, core.FormatTSV); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, want.Bytes()) {
			t.Errorf("%s: served bytes differ from from-zero batch run", id)
		}
	}

	stopReaders.Store(true)
	readers.Wait()
	cancel()
	if err := <-followDone; err != context.Canceled {
		t.Fatalf("follow loop: %v", err)
	}
}

// TestTailerRejectsRegression: replacing the trace with a shorter one is
// refused by the tailer's monotonicity guard instead of being handed to
// a server that has already published further.
func TestTailerRejectsRegression(t *testing.T) {
	dir := t.TempDir()
	long := filepath.Join(dir, "long.trace")
	short := filepath.Join(dir, "short.trace")
	if _, err := gen.GenerateToFile(liveGenConfig(50), long); err != nil {
		t.Fatal(err)
	}
	if _, err := gen.GenerateToFile(liveGenConfig(45), short); err != nil {
		t.Fatal(err)
	}
	tailer := NewTailer(Options{Path: long, Log: quietLog()})
	snap, err := tailer.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if snap.SealedDay != 49 {
		t.Fatalf("sealed day %d, want 49", snap.SealedDay)
	}
	copyOver(t, short, long)
	if _, err := tailer.Probe(); err == nil {
		t.Fatal("probe accepted a sealed-day regression")
	}
}

func copyOver(t *testing.T, src, dst string) {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
