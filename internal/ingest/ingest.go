// Package ingest is the live ingest plane (DESIGN.md §9): it tail-follows
// a trace file that a writer is still appending to and drives the serving
// layer's warm state forward at every newly sealed day, so served figures
// stay continuously fresh without ever reading a half-written day.
//
// Two pieces compose it:
//
//   - Tailer wraps a trace.TailProbe behind a mutex and a monotonicity
//     guard, polls the file on a jittered backoff schedule, and surfaces
//     each sealed-prefix snapshot.
//   - Applier connects a Tailer to a serve.Server: every snapshot whose
//     sealed day advanced is handed to Server.AdvanceTo — which resumes
//     from the newest checkpoint, replays only the new days, and
//     republishes — and ingest lag metrics are kept for /statz.
//
// The correctness bar the plane is built against: after any number of
// appended days, the served figures are bit-identical to a from-zero
// batch run over the same sealed prefix (pinned by the live-loop test).
package ingest

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

// Options configures a Tailer.
type Options struct {
	// Path is the trace file to follow (required).
	Path string
	// Poll is the interval between probes while the file is advancing
	// (default 500ms). Probes are stat-cheap: a header re-read plus a
	// decode of only the bytes appended since the last probe.
	Poll time.Duration
	// MaxPoll caps the backoff while the file is idle or missing
	// (default 10×Poll). The wait grows geometrically from Poll and
	// resets the moment a probe seals a new day.
	MaxPoll time.Duration
	// Log receives probe anomalies and apply errors (default
	// slog.Default).
	Log *slog.Logger
}

// Tailer polls a growing trace file and reports sealed-prefix snapshots.
// It is safe for concurrent use; probes are serialized internally.
type Tailer struct {
	opt Options
	log *slog.Logger

	mu     sync.Mutex
	probe  *trace.TailProbe
	sealed int32 // highest sealed day ever observed, -1 before any
}

// NewTailer returns a tailer for the trace file at path options.
func NewTailer(opt Options) *Tailer {
	if opt.Poll <= 0 {
		opt.Poll = 500 * time.Millisecond
	}
	if opt.MaxPoll <= 0 {
		opt.MaxPoll = 10 * opt.Poll
	}
	if opt.Log == nil {
		opt.Log = slog.Default()
	}
	return &Tailer{
		opt:    opt,
		log:    opt.Log,
		probe:  trace.NewTailProbe(opt.Path),
		sealed: -1,
	}
}

// Probe runs one tail probe. Sealed days are monotonic across the
// tailer's lifetime: a snapshot whose sealed day regresses (the file was
// replaced with a shorter trace) is rejected with an error rather than
// handed to a consumer that has already published further.
func (t *Tailer) Probe() (*trace.TailSnapshot, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap, err := t.probe.Probe()
	if err != nil {
		return nil, err
	}
	if snap.SealedDay < t.sealed {
		return nil, fmt.Errorf("ingest: %s: sealed day regressed %d -> %d (file replaced with a shorter trace?)",
			t.opt.Path, t.sealed, snap.SealedDay)
	}
	t.sealed = snap.SealedDay
	return snap, nil
}

// OpenSealed probes the file and returns its sealed prefix as a
// MetaSource — the serve.Options.Open hook: the daemon's warm load and
// every refresh read through it, so they can never decode past a day
// barrier. It fails while the file holds no sealed events yet.
func (t *Tailer) OpenSealed() (trace.MetaSource, error) {
	snap, err := t.Probe()
	if err != nil {
		return nil, err
	}
	src := snap.Source()
	if src == nil {
		return nil, fmt.Errorf("ingest: %s: no sealed events yet", t.opt.Path)
	}
	return src, nil
}

// Follow polls the file until ctx is done, invoking apply for every
// snapshot whose sealed day advanced past the last successful apply.
// Probe errors (file missing, header not yet finalized) and apply errors
// are logged and retried on the backoff schedule; tail anomalies are
// logged but do not block the sealed prefix they left intact. The wait
// between polls grows geometrically (~×1.6, jittered ±10%) up to MaxPoll
// while nothing advances, and snaps back to Poll when something does.
func (t *Tailer) Follow(ctx context.Context, apply func(context.Context, *trace.TailSnapshot) error) error {
	applied := int32(-2) // below any reportable sealed day
	wait := t.opt.Poll
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
		advanced := false
		snap, err := t.Probe()
		switch {
		case err != nil:
			t.log.LogAttrs(ctx, slog.LevelWarn, "tail probe failed",
				slog.String("path", t.opt.Path), slog.String("err", err.Error()))
		default:
			if snap.Anomaly != nil {
				t.log.LogAttrs(ctx, slog.LevelWarn, "tail anomaly past sealed prefix",
					slog.String("path", t.opt.Path),
					slog.Int("sealed_day", int(snap.SealedDay)),
					slog.String("err", snap.Anomaly.Error()))
			}
			if snap.SealedDay > applied {
				if err := apply(ctx, snap); err != nil {
					if ctx.Err() != nil {
						return ctx.Err()
					}
					t.log.LogAttrs(ctx, slog.LevelError, "apply failed",
						slog.Int("sealed_day", int(snap.SealedDay)),
						slog.String("err", err.Error()))
				} else {
					applied = snap.SealedDay
					advanced = true
				}
			}
		}
		if advanced {
			wait = t.opt.Poll
		} else if wait = wait * 8 / 5; wait > t.opt.MaxPoll {
			wait = t.opt.MaxPoll
		}
		// Jitter ±10% so a fleet of followers doesn't stat in lockstep.
		timer.Reset(wait/10*9 + time.Duration(rand.Int63n(int64(wait/5)+1)))
	}
}

// ApplyStats is a point-in-time view of the ingest plane's progress,
// exposed on /statz via Applier.Statz.
type ApplyStats struct {
	SealedDay     int32         `json:"sealed_day"`     // last day the tail probe sealed
	PublishedDay  int32         `json:"published_day"`  // last day the server has published
	DaysBehind    int32         `json:"days_behind"`    // sealed - published
	AppliedEvents int64         `json:"applied_events"` // events in the last applied prefix
	Applies       int64         `json:"applies"`        // successful AdvanceTo publishes
	Errors        int64         `json:"errors"`         // failed applies
	LastApply     time.Duration `json:"last_apply_ns"`  // duration of the last publish
	EventsPerSec  float64       `json:"events_per_sec"` // new events / apply duration, last publish
}

// Applier drives a serve.Server from a Tailer: Run follows the file and
// funnels every newly sealed prefix into Server.AdvanceTo.
type Applier struct {
	srv    *serve.Server
	tailer *Tailer

	mu     sync.Mutex
	sealed int32
	events int64
	stats  ApplyStats
}

// NewApplier returns an applier pushing tailer's sealed prefixes into srv.
func NewApplier(srv *serve.Server, tailer *Tailer) *Applier {
	return &Applier{srv: srv, tailer: tailer, sealed: -1}
}

// Run follows the trace until ctx is done. Returns ctx.Err().
func (a *Applier) Run(ctx context.Context) error {
	return a.tailer.Follow(ctx, a.apply)
}

// apply hands one sealed snapshot to the server. Errors (including
// serve.ErrClosed during shutdown, until the caller cancels Run's ctx)
// are counted and returned for the follow loop to log and retry.
func (a *Applier) apply(ctx context.Context, snap *trace.TailSnapshot) error {
	a.mu.Lock()
	a.stats.SealedDay = snap.SealedDay
	prevEvents := a.events
	a.mu.Unlock()

	src := snap.Source()
	if src == nil {
		return nil // nothing sealed yet; Follow backs off
	}
	t0 := time.Now()
	advanced, day, err := a.srv.AdvanceTo(ctx, src)
	took := time.Since(t0)

	a.mu.Lock()
	defer a.mu.Unlock()
	if err != nil {
		a.stats.Errors++
		return err
	}
	a.stats.PublishedDay = day
	if advanced {
		a.sealed = snap.SealedDay
		a.events = snap.Events
		a.stats.Applies++
		a.stats.AppliedEvents = snap.Events
		a.stats.LastApply = took
		if secs := took.Seconds(); secs > 0 {
			a.stats.EventsPerSec = float64(snap.Events-prevEvents) / secs
		}
	}
	return nil
}

// Statz renders the current ingest lag for /statz registration:
//
//	srv.RegisterStatz("ingest", applier.Statz)
func (a *Applier) Statz() any {
	a.mu.Lock()
	s := a.stats
	a.mu.Unlock()
	s.PublishedDay = a.srv.Snapshot().Day
	if s.DaysBehind = s.SealedDay - s.PublishedDay; s.DaysBehind < 0 {
		s.DaysBehind = 0
	}
	return s
}
