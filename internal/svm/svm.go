// Package svm implements a linear Support Vector Machine trained with the
// Pegasos stochastic sub-gradient algorithm (Shalev-Shwartz et al.), plus
// the feature standardization and evaluation helpers needed to reproduce
// the paper's community-merge predictor (§4.3, Fig 6b).
//
// The paper applies an off-the-shelf SVM [36] to 12 structural features of
// a community; a linear kernel with standardized inputs is sufficient at
// that dimensionality and keeps the implementation dependency-free.
package svm

import (
	"errors"
	"math"

	"repro/internal/stats"
)

// Options configures training.
type Options struct {
	// Lambda is the L2 regularization strength (default 0.01).
	Lambda float64
	// Epochs is the number of passes over the data (default 20).
	Epochs int
	// Seed drives the example-sampling order.
	Seed int64
	// ClassWeighted scales each example's loss inversely to its class
	// frequency, which keeps the minority class from being ignored on
	// imbalanced data (community merges are rare in any one snapshot).
	ClassWeighted bool
}

// Model is a trained linear SVM: sign(w·standardize(x) + b).
type Model struct {
	W    []float64
	B    float64
	Mean []float64
	Std  []float64
}

// Errors returned by Train.
var (
	ErrNoData     = errors.New("svm: no training data")
	ErrBadLabel   = errors.New("svm: labels must be -1 or +1")
	ErrDimension  = errors.New("svm: inconsistent feature dimensions")
	ErrSingleSide = errors.New("svm: training data contains a single class")
)

// Train fits a linear SVM on rows X with labels y in {-1, +1}.
func Train(x [][]float64, y []int, opt Options) (*Model, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, ErrNoData
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, ErrDimension
	}
	var pos, neg int
	for i := range x {
		if len(x[i]) != dim {
			return nil, ErrDimension
		}
		switch y[i] {
		case 1:
			pos++
		case -1:
			neg++
		default:
			return nil, ErrBadLabel
		}
	}
	if pos == 0 || neg == 0 {
		return nil, ErrSingleSide
	}
	if opt.Lambda <= 0 {
		opt.Lambda = 0.01
	}
	if opt.Epochs <= 0 {
		opt.Epochs = 30
	}

	m := &Model{W: make([]float64, dim), Mean: make([]float64, dim), Std: make([]float64, dim)}
	// Standardization parameters.
	for j := 0; j < dim; j++ {
		col := make([]float64, len(x))
		for i := range x {
			col[i] = x[i][j]
		}
		m.Mean[j] = stats.Mean(col)
		m.Std[j] = stats.StdDev(col)
		if m.Std[j] == 0 {
			m.Std[j] = 1
		}
	}
	// Pre-standardized copy.
	xs := make([][]float64, len(x))
	for i := range x {
		row := make([]float64, dim)
		for j := 0; j < dim; j++ {
			row[j] = (x[i][j] - m.Mean[j]) / m.Std[j]
		}
		xs[i] = row
	}

	wPos, wNeg := 1.0, 1.0
	if opt.ClassWeighted {
		// Inverse-frequency weights, capped: on extremely imbalanced data
		// (community merges are <1% of snapshots) an uncapped weight makes
		// the minority class dominate every update and the model
		// degenerates to always-positive.
		const maxWeight = 10.0
		total := float64(pos + neg)
		wPos = math.Min(total/(2*float64(pos)), maxWeight)
		wNeg = math.Min(total/(2*float64(neg)), maxWeight)
	}

	rng := stats.NewRand(opt.Seed)
	t := 0
	n := len(xs)
	// Averaged Pegasos: the returned model is the average of the iterates
	// over the second half of training, which removes most of the SGD
	// jitter on separable data.
	avgW := make([]float64, dim)
	var avgB float64
	var avgCount int
	halfway := opt.Epochs * n / 2
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		for k := 0; k < n; k++ {
			t++
			i := rng.Intn(n)
			eta := 1 / (opt.Lambda * float64(t))
			yi := float64(y[i])
			margin := yi * (dot(m.W, xs[i]) + m.B)
			// Regularization shrink.
			shrink := 1 - eta*opt.Lambda
			if shrink < 0 {
				shrink = 0
			}
			for j := range m.W {
				m.W[j] *= shrink
			}
			if margin < 1 {
				cw := wPos
				if y[i] == -1 {
					cw = wNeg
				}
				step := eta * cw * yi
				for j := range m.W {
					m.W[j] += step * xs[i][j]
				}
				m.B += step
			}
			if t > halfway {
				for j := range avgW {
					avgW[j] += m.W[j]
				}
				avgB += m.B
				avgCount++
			}
		}
	}
	if avgCount > 0 {
		for j := range avgW {
			m.W[j] = avgW[j] / float64(avgCount)
		}
		m.B = avgB / float64(avgCount)
	}
	return m, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Decision returns the signed distance proxy w·standardize(x) + b.
func (m *Model) Decision(x []float64) float64 {
	var s float64
	for j := range m.W {
		s += m.W[j] * (x[j] - m.Mean[j]) / m.Std[j]
	}
	return s + m.B
}

// Predict returns +1 or -1 for the input row.
func (m *Model) Predict(x []float64) int {
	if m.Decision(x) >= 0 {
		return 1
	}
	return -1
}

// Metrics reports per-class accuracy the way the paper does in Fig 6(b):
// PosAccuracy is "communities predicted to merge / communities that merge",
// NegAccuracy the analogue for the negative class.
type Metrics struct {
	PosAccuracy float64
	NegAccuracy float64
	Accuracy    float64
	N           int
}

// Evaluate scores the model on a labeled set.
func (m *Model) Evaluate(x [][]float64, y []int) Metrics {
	var tp, fn, tn, fp int
	for i := range x {
		pred := m.Predict(x[i])
		switch {
		case y[i] == 1 && pred == 1:
			tp++
		case y[i] == 1 && pred == -1:
			fn++
		case y[i] == -1 && pred == -1:
			tn++
		case y[i] == -1 && pred == 1:
			fp++
		}
	}
	var out Metrics
	out.N = len(x)
	if tp+fn > 0 {
		out.PosAccuracy = float64(tp) / float64(tp+fn)
	}
	if tn+fp > 0 {
		out.NegAccuracy = float64(tn) / float64(tn+fp)
	}
	if out.N > 0 {
		out.Accuracy = float64(tp+tn) / float64(out.N)
	}
	return out
}

// CrossValidate performs k-fold cross validation and returns the mean
// metrics across folds. Folds are contiguous after a seeded shuffle.
func CrossValidate(x [][]float64, y []int, k int, opt Options) (Metrics, error) {
	if k < 2 || len(x) < k {
		return Metrics{}, errors.New("svm: need at least k examples and k >= 2")
	}
	rng := stats.NewRand(opt.Seed + 1)
	idx := rng.Perm(len(x))
	var agg Metrics
	folds := 0
	for f := 0; f < k; f++ {
		lo := f * len(x) / k
		hi := (f + 1) * len(x) / k
		var trX, teX [][]float64
		var trY, teY []int
		for p, i := range idx {
			if p >= lo && p < hi {
				teX = append(teX, x[i])
				teY = append(teY, y[i])
			} else {
				trX = append(trX, x[i])
				trY = append(trY, y[i])
			}
		}
		model, err := Train(trX, trY, opt)
		if err != nil {
			// A fold may end up single-class on tiny data; skip it.
			if errors.Is(err, ErrSingleSide) {
				continue
			}
			return Metrics{}, err
		}
		met := model.Evaluate(teX, teY)
		agg.PosAccuracy += met.PosAccuracy
		agg.NegAccuracy += met.NegAccuracy
		agg.Accuracy += met.Accuracy
		agg.N += met.N
		folds++
	}
	if folds == 0 {
		return Metrics{}, ErrSingleSide
	}
	agg.PosAccuracy /= float64(folds)
	agg.NegAccuracy /= float64(folds)
	agg.Accuracy /= float64(folds)
	return agg, nil
}

// Norm returns the L2 norm of the weight vector (diagnostic).
func (m *Model) Norm() float64 { return math.Sqrt(dot(m.W, m.W)) }
