package svm

import (
	"errors"
	"math"
	"testing"

	"repro/internal/stats"
)

// separable2D builds a linearly separable 2-D set around two centers.
func separable2D(n int, seed int64) (x [][]float64, y []int) {
	rng := stats.NewRand(seed)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x = append(x, []float64{2 + rng.NormFloat64()*0.3, 2 + rng.NormFloat64()*0.3})
			y = append(y, 1)
		} else {
			x = append(x, []float64{-2 + rng.NormFloat64()*0.3, -2 + rng.NormFloat64()*0.3})
			y = append(y, -1)
		}
	}
	return x, y
}

func TestTrainSeparable(t *testing.T) {
	x, y := separable2D(200, 1)
	m, err := Train(x, y, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	met := m.Evaluate(x, y)
	if met.Accuracy < 0.98 {
		t.Fatalf("training accuracy = %v", met.Accuracy)
	}
	if met.PosAccuracy < 0.95 || met.NegAccuracy < 0.95 {
		t.Fatalf("per-class accuracy %v / %v", met.PosAccuracy, met.NegAccuracy)
	}
}

func TestGeneralization(t *testing.T) {
	x, y := separable2D(200, 3)
	m, err := Train(x, y, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tx, ty := separable2D(100, 5)
	met := m.Evaluate(tx, ty)
	if met.Accuracy < 0.95 {
		t.Fatalf("test accuracy = %v", met.Accuracy)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Options{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Train([][]float64{{1}}, []int{2}, Options{}); !errors.Is(err, ErrBadLabel) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Train([][]float64{{1}, {2, 3}}, []int{1, -1}, Options{}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Train([][]float64{{1}, {2}}, []int{1, 1}, Options{}); !errors.Is(err, ErrSingleSide) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Train([][]float64{{}, {}}, []int{1, -1}, Options{}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v", err)
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	// Second feature is constant: std=0 path must not divide by zero.
	x := [][]float64{{1, 5}, {2, 5}, {-1, 5}, {-2, 5}}
	y := []int{1, 1, -1, -1}
	m, err := Train(x, y, Options{Seed: 1, Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.IsNaN(m.Decision(x[i])) {
			t.Fatal("NaN decision with constant feature")
		}
	}
	if met := m.Evaluate(x, y); met.Accuracy < 1 {
		t.Fatalf("accuracy = %v", met.Accuracy)
	}
}

func TestClassWeightedHelpsImbalance(t *testing.T) {
	// 95:5 imbalance with overlap: unweighted SVM tends to ignore the
	// minority class; weighted must recover decent minority accuracy.
	rng := stats.NewRand(6)
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		x = append(x, []float64{rng.NormFloat64() - 0.7})
		y = append(y, -1)
	}
	for i := 0; i < 20; i++ {
		x = append(x, []float64{rng.NormFloat64() + 0.7})
		y = append(y, 1)
	}
	weighted, err := Train(x, y, Options{Seed: 7, ClassWeighted: true, Epochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	unweighted, err := Train(x, y, Options{Seed: 7, ClassWeighted: false, Epochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	wm := weighted.Evaluate(x, y)
	um := unweighted.Evaluate(x, y)
	if wm.PosAccuracy <= um.PosAccuracy {
		t.Fatalf("weighting did not improve minority recall: weighted %v vs unweighted %v",
			wm.PosAccuracy, um.PosAccuracy)
	}
	if wm.PosAccuracy < 0.3 {
		t.Fatalf("weighted minority accuracy too low: %v", wm.PosAccuracy)
	}
}

func TestDeterminism(t *testing.T) {
	x, y := separable2D(100, 9)
	a, _ := Train(x, y, Options{Seed: 11})
	b, _ := Train(x, y, Options{Seed: 11})
	for j := range a.W {
		if a.W[j] != b.W[j] {
			t.Fatal("same seed must give same weights")
		}
	}
	if a.B != b.B {
		t.Fatal("same seed must give same bias")
	}
}

func TestPredictSign(t *testing.T) {
	x, y := separable2D(100, 13)
	m, _ := Train(x, y, Options{Seed: 14})
	for i := range x {
		d := m.Decision(x[i])
		p := m.Predict(x[i])
		if (d >= 0 && p != 1) || (d < 0 && p != -1) {
			t.Fatal("Predict inconsistent with Decision")
		}
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m := &Model{W: []float64{1}, Mean: []float64{0}, Std: []float64{1}}
	met := m.Evaluate(nil, nil)
	if met.N != 0 || met.Accuracy != 0 {
		t.Fatalf("metrics = %+v", met)
	}
}

func TestCrossValidate(t *testing.T) {
	x, y := separable2D(200, 15)
	met, err := CrossValidate(x, y, 5, Options{Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if met.Accuracy < 0.95 {
		t.Fatalf("cv accuracy = %v", met.Accuracy)
	}
	if _, err := CrossValidate(x[:3], y[:3], 5, Options{}); err == nil {
		t.Fatal("want error for too-few examples")
	}
}

func TestNormPositive(t *testing.T) {
	x, y := separable2D(50, 17)
	m, _ := Train(x, y, Options{Seed: 18})
	if m.Norm() <= 0 {
		t.Fatalf("norm = %v", m.Norm())
	}
}
