package osnmerge

import (
	"testing"

	"repro/internal/trace"
)

// syntheticMergeTrace builds a hand-written minimal merge scenario whose
// expected analysis values are computable by hand:
//
//	day 0: xiaonei users 0,1 befriend each other
//	day 5 (merge): 5q users 2,3 imported with their internal edge
//	day 6: external edge 0-2
//	day 7: new user 4, edge 4-0 (new)
//	day 8: internal edge 1-0 impossible (dup) → use 1-2 external
func syntheticMergeTrace() []trace.Event {
	return []trace.Event{
		{Kind: trace.AddNode, Day: 0, U: 0, Origin: trace.OriginXiaonei},
		{Kind: trace.AddNode, Day: 0, U: 1, Origin: trace.OriginXiaonei},
		{Kind: trace.AddEdge, Day: 0, U: 0, V: 1},
		{Kind: trace.AddNode, Day: 5, U: 2, Origin: trace.OriginFiveQ},
		{Kind: trace.AddNode, Day: 5, U: 3, Origin: trace.OriginFiveQ},
		{Kind: trace.AddEdge, Day: 5, U: 2, V: 3},
		{Kind: trace.AddEdge, Day: 6, U: 0, V: 2},
		{Kind: trace.AddNode, Day: 7, U: 4, Origin: trace.OriginNew},
		{Kind: trace.AddEdge, Day: 7, U: 4, V: 0},
		{Kind: trace.AddEdge, Day: 8, U: 1, V: 2},
		// Padding days so the observation window exists.
		{Kind: trace.AddNode, Day: 40, U: 5, Origin: trace.OriginNew},
		{Kind: trace.AddEdge, Day: 40, U: 5, V: 4},
	}
}

func TestAnalyzeSyntheticCounts(t *testing.T) {
	opt := DefaultOptions()
	opt.FallbackThreshold = 10
	opt.DistanceEvery = 2
	opt.DistanceSamples = 8
	res, err := Analyze(syntheticMergeTrace(), 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.XiaoneiUsers != 2 || res.FiveQUsers != 2 {
		t.Fatalf("users: %d / %d", res.XiaoneiUsers, res.FiveQUsers)
	}
	// Post-merge edges: day6 external, day7 new, day8 external, day40 new.
	var ext, newu, intl int64
	for _, d := range res.EdgesPerDay {
		ext += d.External
		newu += d.NewUsers
		intl += d.Internal
	}
	if ext != 2 || newu != 2 || intl != 0 {
		t.Fatalf("classified ext=%d new=%d int=%d", ext, newu, intl)
	}
	// The merge-day import edge (2-3 on day 5) is excluded.
	for _, d := range res.EdgesPerDay {
		if d.Day == 0 {
			t.Fatal("merge-day edge leaked into post-merge series")
		}
	}
}

func TestSyntheticDistances(t *testing.T) {
	opt := DefaultOptions()
	opt.FallbackThreshold = 10
	opt.DistanceEvery = 1
	opt.DistanceSamples = 16
	res, err := Analyze(syntheticMergeTrace(), 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Distances) == 0 {
		t.Fatal("no distances")
	}
	// After day 6's external edge 0-2: from xiaonei side, node 0 reaches
	// 5Q in 1 hop, node 1 in 2 → average in [1, 2].
	var after6 *DistancePoint
	for i := range res.Distances {
		if res.Distances[i].DaysAfter == 2 { // day 7
			after6 = &res.Distances[i]
		}
	}
	if after6 == nil {
		t.Fatal("no day-7 distance sample")
	}
	if after6.XiaoneiTo5Q < 1 || after6.XiaoneiTo5Q > 2 {
		t.Fatalf("xiaonei->5q = %v, want within [1,2]", after6.XiaoneiTo5Q)
	}
}

func TestActivityThresholdFallback(t *testing.T) {
	// A trace where no user has two edges forces the fallback threshold.
	evs := []trace.Event{
		{Kind: trace.AddNode, Day: 0, U: 0, Origin: trace.OriginXiaonei},
		{Kind: trace.AddNode, Day: 0, U: 1, Origin: trace.OriginFiveQ},
		{Kind: trace.AddEdge, Day: 1, U: 0, V: 1},
		{Kind: trace.AddNode, Day: 100, U: 2, Origin: trace.OriginNew},
	}
	opt := DefaultOptions()
	opt.FallbackThreshold = 7
	res, err := Analyze(evs, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActivityThreshold != 7 {
		t.Fatalf("threshold = %d, want fallback 7", res.ActivityThreshold)
	}
}
