package osnmerge

import (
	"math"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/trace"
)

var (
	once   sync.Once
	events []trace.Event
	mday   int32
	res    *Result
	onceEr error
)

func analysis(t *testing.T) *Result {
	t.Helper()
	once.Do(func() {
		cfg := gen.SmallConfig()
		tr, err := gen.Generate(cfg)
		if err != nil {
			onceEr = err
			return
		}
		events = tr.Events
		mday = tr.Meta.MergeDay
		res, onceEr = Analyze(events, mday, DefaultOptions())
	})
	if onceEr != nil {
		t.Fatal(onceEr)
	}
	return res
}

func TestClassify(t *testing.T) {
	cases := []struct {
		a, b trace.Origin
		want EdgeClass
	}{
		{trace.OriginXiaonei, trace.OriginXiaonei, Internal},
		{trace.OriginFiveQ, trace.OriginFiveQ, Internal},
		{trace.OriginXiaonei, trace.OriginFiveQ, External},
		{trace.OriginFiveQ, trace.OriginXiaonei, External},
		{trace.OriginNew, trace.OriginXiaonei, NewUser},
		{trace.OriginFiveQ, trace.OriginNew, NewUser},
		{trace.OriginNew, trace.OriginNew, NewUser},
	}
	for _, tc := range cases {
		if got := Classify(tc.a, tc.b); got != tc.want {
			t.Fatalf("Classify(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestEdgeClassString(t *testing.T) {
	if Internal.String() != "internal" || External.String() != "external" || NewUser.String() != "new" {
		t.Fatal("class names wrong")
	}
	if EdgeClass(9).String() != "unknown" {
		t.Fatal("unknown class name")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, -1, DefaultOptions()); err != ErrNoMerge {
		t.Fatalf("err = %v", err)
	}
	// Merge too close to the end of the trace: no observation window.
	short := []trace.Event{
		{Kind: trace.AddNode, Day: 0, U: 0},
		{Kind: trace.AddNode, Day: 0, U: 1},
		{Kind: trace.AddEdge, Day: 1, U: 0, V: 1},
	}
	if _, err := Analyze(short, 0, DefaultOptions()); err != ErrTooFew {
		t.Fatalf("err = %v", err)
	}
}

func TestActivityThresholdComputed(t *testing.T) {
	r := analysis(t)
	if r.ActivityThreshold < 1 {
		t.Fatalf("threshold = %d", r.ActivityThreshold)
	}
	if r.XiaoneiUsers == 0 || r.FiveQUsers == 0 {
		t.Fatalf("user counts: %d / %d", r.XiaoneiUsers, r.FiveQUsers)
	}
}

func TestDuplicateEstimates(t *testing.T) {
	r := analysis(t)
	// The generator silences 11% of Xiaonei and 28% of 5Q users; the
	// analysis should recover numbers in those neighborhoods (inactive
	// users also include organically retired ones, so estimates are
	// upper bounds).
	if r.InactiveAtMergeXiaonei < 0.05 || r.InactiveAtMergeXiaonei > 0.6 {
		t.Fatalf("xiaonei inactive = %v", r.InactiveAtMergeXiaonei)
	}
	if r.InactiveAtMergeFiveQ < 0.15 || r.InactiveAtMergeFiveQ > 0.8 {
		t.Fatalf("5q inactive = %v", r.InactiveAtMergeFiveQ)
	}
	// 5Q must lose more accounts than Xiaonei (the paper's key §5.2 finding).
	if r.InactiveAtMergeFiveQ <= r.InactiveAtMergeXiaonei {
		t.Fatalf("5q (%v) should be more inactive than xiaonei (%v)",
			r.InactiveAtMergeFiveQ, r.InactiveAtMergeXiaonei)
	}
}

func TestActiveCurvesShape(t *testing.T) {
	r := analysis(t)
	if len(r.ActiveXiaonei) == 0 || len(r.ActiveFiveQ) == 0 {
		t.Fatal("no active curves")
	}
	for _, curves := range [][]ActiveDay{r.ActiveXiaonei, r.ActiveFiveQ} {
		for _, d := range curves {
			for _, v := range []float64{d.All, d.New, d.Internal, d.External} {
				if v < 0 || v > 100 {
					t.Fatalf("percentage out of range: %+v", d)
				}
			}
			// "All" dominates each component.
			if d.All+1e-9 < d.New || d.All+1e-9 < d.Internal || d.All+1e-9 < d.External {
				t.Fatalf("component exceeds all: %+v", d)
			}
		}
	}
	// Activity declines over time (users lose interest, §5.2).
	x := r.ActiveXiaonei
	first, last := x[0].All, x[len(x)-1].All
	if last >= first {
		t.Fatalf("xiaonei activity did not decline: %v -> %v", first, last)
	}
}

func TestEdgesPerDayShape(t *testing.T) {
	r := analysis(t)
	if len(r.EdgesPerDay) == 0 {
		t.Fatal("no edge series")
	}
	var newTotal, extTotal, intTotal int64
	for _, d := range r.EdgesPerDay {
		if d.Day <= 0 {
			t.Fatalf("non-positive day: %+v", d)
		}
		newTotal += d.NewUsers
		extTotal += d.External
		intTotal += d.Internal
	}
	if newTotal == 0 || extTotal == 0 || intTotal == 0 {
		t.Fatalf("edge classes missing: new=%d ext=%d int=%d", newTotal, extTotal, intTotal)
	}
	// New-user edges dominate in the long run (the paper's §5.3 headline).
	if newTotal <= extTotal || newTotal <= intTotal {
		t.Fatalf("new edges (%d) should dominate int (%d) and ext (%d)", newTotal, intTotal, extTotal)
	}
}

func TestRatioSeries(t *testing.T) {
	r := analysis(t)
	for _, series := range [][]RatioDay{r.RatiosXiaonei, r.RatiosFiveQ, r.RatiosBoth} {
		if len(series) == 0 {
			t.Fatal("empty ratio series")
		}
		for _, d := range series {
			if d.HasIntExt && d.IntOverExt < 0 {
				t.Fatalf("negative ratio: %+v", d)
			}
		}
	}
	// Eventually new/external must exceed 1 (new users take over).
	lastQ := r.RatiosFiveQ[len(r.RatiosFiveQ)-1]
	if lastQ.HasNewExt && lastQ.NewOverExt < 1 {
		t.Fatalf("5q new/ext ratio at end = %v, want >= 1", lastQ.NewOverExt)
	}
}

func TestDistancesShrink(t *testing.T) {
	r := analysis(t)
	if len(r.Distances) < 3 {
		t.Fatalf("distance points = %d", len(r.Distances))
	}
	first, last := r.Distances[0], r.Distances[len(r.Distances)-1]
	if math.IsNaN(first.XiaoneiTo5Q) || math.IsNaN(last.XiaoneiTo5Q) {
		t.Fatal("NaN distances")
	}
	if last.XiaoneiTo5Q >= first.XiaoneiTo5Q {
		t.Fatalf("distance did not shrink: %v -> %v", first.XiaoneiTo5Q, last.XiaoneiTo5Q)
	}
	// By the end the two OSNs must be tightly connected (paper: < 2 hops).
	if last.XiaoneiTo5Q > 2.5 || last.FiveQToXiaonei > 2.5 {
		t.Fatalf("end distances too large: %+v", last)
	}
	for _, p := range r.Distances {
		if p.XiaoneiTo5Q < 1 || p.FiveQToXiaonei < 1 {
			t.Fatalf("distance below 1: %+v", p)
		}
	}
}
