// Package osnmerge implements the network-merge analyses of §5: user
// activity after the Xiaonei/5Q merge and duplicate-account estimation
// (Figs 8a–8b), the internal/external/new edge mix (Fig 8c), the per-OSN
// edge-type ratios (Figs 9a–9b), and the shrinking BFS distance between the
// two formerly separate networks (Fig 9c).
package osnmerge

import (
	"errors"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/trace"
)

// EdgeClass classifies a post-merge edge by its endpoints' origins (§5.1).
type EdgeClass uint8

const (
	// Internal edges connect users within the same pre-merge OSN.
	Internal EdgeClass = iota
	// External edges connect a Xiaonei user to a 5Q user.
	External
	// NewUser edges involve at least one user who joined after the merge.
	NewUser
)

// String names the class.
func (c EdgeClass) String() string {
	switch c {
	case Internal:
		return "internal"
	case External:
		return "external"
	case NewUser:
		return "new"
	default:
		return "unknown"
	}
}

// Classify returns the class of an edge between users with the given
// origins.
func Classify(a, b trace.Origin) EdgeClass {
	if a == trace.OriginNew || b == trace.OriginNew {
		return NewUser
	}
	if a == b {
		return Internal
	}
	return External
}

// Options configures the merge analysis.
type Options struct {
	// ActivityPercentile selects the activity threshold t as this
	// percentile of per-user mean edge inter-arrival times. The paper
	// uses the value such that 99% of users create an edge at least
	// every t days, i.e. the 99th percentile (t=94 on Renren).
	ActivityPercentile float64
	// FallbackThreshold is used when the trace cannot support the
	// percentile computation.
	FallbackThreshold int32
	// DistanceEvery is the cadence, in days, of the inter-OSN distance
	// samples (Fig 9c).
	DistanceEvery int32
	// DistanceSamples is the number of source users sampled per OSN per
	// distance measurement (the paper uses 1000).
	DistanceSamples int
	// RatioWindow smooths the Fig 9a–9b daily ratios over this many days.
	RatioWindow int32
	// Seed drives distance-source sampling.
	Seed int64
}

// DefaultOptions returns the scaled defaults.
func DefaultOptions() Options {
	return Options{
		ActivityPercentile: 99,
		FallbackThreshold:  94,
		DistanceEvery:      5,
		DistanceSamples:    100,
		RatioWindow:        7,
		Seed:               1,
	}
}

// ActiveDay is one day of the Fig 8a/8b curves: the percentage of one
// OSN's pre-merge users considered active — having created an edge of the
// given type within the next t days.
type ActiveDay struct {
	DaysAfter int32
	All       float64
	New       float64
	Internal  float64
	External  float64
}

// DayCounts is one day of the Fig 8c series.
type DayCounts struct {
	Day      int32 // days after the merge
	Internal int64
	External int64
	NewUsers int64
}

// RatioDay is one day of the Fig 9a–9b series.
type RatioDay struct {
	Day        int32 // days after the merge
	IntOverExt float64
	NewOverExt float64
	HasIntExt  bool // false when the window had no external edges
	HasNewExt  bool
}

// DistancePoint is one sample of the Fig 9c series: average hops from a
// random user of one OSN to the nearest user of the other, ignoring
// post-merge users and their edges.
type DistancePoint struct {
	DaysAfter      int32
	XiaoneiTo5Q    float64
	FiveQToXiaonei float64
}

// Result bundles the §5 analyses.
type Result struct {
	MergeDay          int32
	ActivityThreshold int32
	XiaoneiUsers      int
	FiveQUsers        int
	// InactiveAtMerge are the fractions of each OSN's users with no
	// activity in the first threshold window — the duplicate-account
	// estimate of §5.2.
	InactiveAtMergeXiaonei float64
	InactiveAtMergeFiveQ   float64

	ActiveXiaonei []ActiveDay
	ActiveFiveQ   []ActiveDay
	EdgesPerDay   []DayCounts
	RatiosXiaonei []RatioDay
	RatiosFiveQ   []RatioDay
	RatiosBoth    []RatioDay
	Distances     []DistancePoint
}

// Errors.
var (
	ErrNoMerge = errors.New("osnmerge: trace has no merge day")
	ErrTooFew  = errors.New("osnmerge: no post-merge observation window")
)

// Analyze runs the full §5 analysis over a merged trace.
func Analyze(events []trace.Event, mergeDay int32, opt Options) (*Result, error) {
	if mergeDay < 0 {
		return nil, ErrNoMerge
	}
	if opt.ActivityPercentile <= 0 || opt.ActivityPercentile > 100 {
		opt.ActivityPercentile = 99
	}
	if opt.FallbackThreshold <= 0 {
		opt.FallbackThreshold = 94
	}
	if opt.DistanceEvery <= 0 {
		opt.DistanceEvery = 5
	}
	if opt.DistanceSamples <= 0 {
		opt.DistanceSamples = 100
	}
	if opt.RatioWindow <= 0 {
		opt.RatioWindow = 7
	}

	meta := trace.Summarize(events)
	lastDay := meta.Days - 1

	// Pass 1: origins and the activity threshold.
	var origin []trace.Origin
	lastEdge := map[graph.NodeID]int32{}
	gapSum := map[graph.NodeID]int64{}
	gapN := map[graph.NodeID]int64{}
	for _, ev := range events {
		switch ev.Kind {
		case trace.AddNode:
			for int32(len(origin)) <= ev.U {
				origin = append(origin, ev.Origin)
			}
			origin[ev.U] = ev.Origin
		case trace.AddEdge:
			for _, u := range [2]graph.NodeID{ev.U, ev.V} {
				if last, ok := lastEdge[u]; ok {
					gapSum[u] += int64(ev.Day - last)
					gapN[u]++
				}
				lastEdge[u] = ev.Day
			}
		}
	}
	var means []float64
	for u, n := range gapN {
		if n > 0 {
			means = append(means, float64(gapSum[u])/float64(n))
		}
	}
	threshold := opt.FallbackThreshold
	if len(means) > 0 {
		if p, err := stats.Percentile(means, opt.ActivityPercentile); err == nil {
			threshold = int32(math.Ceil(p))
			if threshold < 1 {
				threshold = 1
			}
		}
	}

	horizon := lastDay - threshold - mergeDay
	if horizon <= 0 {
		return nil, ErrTooFew
	}

	res := &Result{MergeDay: mergeDay, ActivityThreshold: threshold}
	for _, o := range origin {
		switch o {
		case trace.OriginXiaonei:
			res.XiaoneiUsers++
		case trace.OriginFiveQ:
			res.FiveQUsers++
		}
	}

	// Pass 2: edge classification, activity coverage, ratios.
	// coverage[origin][type] is a day-indexed counter of active users,
	// built by unioning each user's per-type edge-coverage intervals.
	type cov struct {
		diff    []int64 // difference array over days-after-merge
		lastEnd []int32 // per-user union state, index by node id
	}
	days := int(lastDay) + 2
	newCov := func() *cov {
		return &cov{diff: make([]int64, days+1), lastEnd: make([]int32, len(origin))}
	}
	// type index: 0=all 1=new 2=internal 3=external
	var covers [2][4]*cov
	for s := 0; s < 2; s++ {
		for k := 0; k < 4; k++ {
			covers[s][k] = newCov()
		}
	}
	sideOf := func(o trace.Origin) int {
		if o == trace.OriginXiaonei {
			return 0
		}
		return 1
	}
	// mark records that user u (pre-merge) created an edge of the given
	// type at absolute day e: it covers active-days [e-t+1, e].
	mark := func(c *cov, u graph.NodeID, e int32) {
		lo := e - threshold + 1
		if lo <= mergeDay {
			lo = mergeDay
		}
		if prev := c.lastEnd[u]; prev > lo {
			lo = prev
		}
		hi := e + 1 // exclusive
		if lo >= hi {
			return
		}
		c.diff[lo]++
		c.diff[hi]--
		c.lastEnd[u] = hi
	}

	counts := map[int32]*DayCounts{}
	type ratioAcc struct{ internal, external, newu []int64 }
	acc := ratioAcc{
		internal: make([]int64, days),
		external: make([]int64, days),
		newu:     make([]int64, days),
	}
	accX := ratioAcc{internal: make([]int64, days), external: make([]int64, days), newu: make([]int64, days)}
	accQ := ratioAcc{internal: make([]int64, days), external: make([]int64, days), newu: make([]int64, days)}

	for _, ev := range events {
		if ev.Kind != trace.AddEdge || ev.Day <= mergeDay {
			continue
		}
		ou, ov := origin[ev.U], origin[ev.V]
		class := Classify(ou, ov)
		da := ev.Day - mergeDay
		dc := counts[da]
		if dc == nil {
			dc = &DayCounts{Day: da}
			counts[da] = dc
		}
		switch class {
		case Internal:
			dc.Internal++
			acc.internal[ev.Day]++
			if ou == trace.OriginXiaonei {
				accX.internal[ev.Day]++
			} else {
				accQ.internal[ev.Day]++
			}
		case External:
			dc.External++
			acc.external[ev.Day]++
			accX.external[ev.Day]++
			accQ.external[ev.Day]++
		case NewUser:
			dc.NewUsers++
			acc.newu[ev.Day]++
			if ou == trace.OriginXiaonei || ov == trace.OriginXiaonei {
				accX.newu[ev.Day]++
			}
			if ou == trace.OriginFiveQ || ov == trace.OriginFiveQ {
				accQ.newu[ev.Day]++
			}
		}
		// Activity coverage for pre-merge endpoints.
		for _, pair := range [2][2]graph.NodeID{{ev.U, ev.V}, {ev.V, ev.U}} {
			u, v := pair[0], pair[1]
			o := origin[u]
			if o == trace.OriginNew {
				continue
			}
			s := sideOf(o)
			mark(covers[s][0], u, ev.Day)
			switch {
			case origin[v] == trace.OriginNew:
				mark(covers[s][1], u, ev.Day)
			case origin[v] == o:
				mark(covers[s][2], u, ev.Day)
			default:
				mark(covers[s][3], u, ev.Day)
			}
		}
	}

	// Fig 8c series.
	for _, dc := range counts {
		res.EdgesPerDay = append(res.EdgesPerDay, *dc)
	}
	sort.Slice(res.EdgesPerDay, func(i, j int) bool { return res.EdgesPerDay[i].Day < res.EdgesPerDay[j].Day })

	// Fig 8a/8b curves from the coverage difference arrays.
	makeActive := func(s int, total int) []ActiveDay {
		if total == 0 {
			return nil
		}
		cum := [4]int64{}
		var out []ActiveDay
		for d := int32(0); d <= lastDay; d++ {
			for k := 0; k < 4; k++ {
				cum[k] += covers[s][k].diff[d]
			}
			da := d - mergeDay
			if da < 0 || da > horizon {
				continue
			}
			out = append(out, ActiveDay{
				DaysAfter: da,
				All:       100 * float64(cum[0]) / float64(total),
				New:       100 * float64(cum[1]) / float64(total),
				Internal:  100 * float64(cum[2]) / float64(total),
				External:  100 * float64(cum[3]) / float64(total),
			})
		}
		return out
	}
	res.ActiveXiaonei = makeActive(0, res.XiaoneiUsers)
	res.ActiveFiveQ = makeActive(1, res.FiveQUsers)
	if len(res.ActiveXiaonei) > 0 {
		res.InactiveAtMergeXiaonei = 1 - res.ActiveXiaonei[0].All/100
	}
	if len(res.ActiveFiveQ) > 0 {
		res.InactiveAtMergeFiveQ = 1 - res.ActiveFiveQ[0].All/100
	}

	// Fig 9a/9b ratio series (windowed sums).
	makeRatios := func(a ratioAcc) []RatioDay {
		var out []RatioDay
		w := opt.RatioWindow
		var sumI, sumE, sumN int64
		for d := mergeDay + 1; d <= lastDay; d++ {
			sumI += a.internal[d]
			sumE += a.external[d]
			sumN += a.newu[d]
			if old := d - w; old > mergeDay {
				sumI -= a.internal[old]
				sumE -= a.external[old]
				sumN -= a.newu[old]
			}
			rd := RatioDay{Day: d - mergeDay}
			if sumE > 0 {
				rd.IntOverExt = float64(sumI) / float64(sumE)
				rd.NewOverExt = float64(sumN) / float64(sumE)
				rd.HasIntExt = true
				rd.HasNewExt = true
			}
			out = append(out, rd)
		}
		return out
	}
	res.RatiosXiaonei = makeRatios(accX)
	res.RatiosFiveQ = makeRatios(accQ)
	res.RatiosBoth = makeRatios(acc)

	// Fig 9c: replay-driven inter-OSN distances on the pre-merge subgraph.
	res.Distances = measureDistances(events, origin, mergeDay, lastDay, opt)
	return res, nil
}

// measureDistances samples, on a day schedule after the merge, the average
// BFS distance from random users of each OSN to the nearest user of the
// other, traversing only pre-merge users (new users and their edges are
// excluded, as in the paper).
func measureDistances(events []trace.Event, origin []trace.Origin, mergeDay, lastDay int32, opt Options) []DistancePoint {
	rng := stats.NewRand(opt.Seed)
	var out []DistancePoint

	var xiaonei, fiveQ []graph.NodeID
	for u, o := range origin {
		switch o {
		case trace.OriginXiaonei:
			xiaonei = append(xiaonei, graph.NodeID(u))
		case trace.OriginFiveQ:
			fiveQ = append(fiveQ, graph.NodeID(u))
		}
	}
	if len(xiaonei) == 0 || len(fiveQ) == 0 {
		return nil
	}
	preMerge := func(v graph.NodeID) bool { return origin[v] != trace.OriginNew }

	_, err := trace.Replay(events, trace.Hooks{
		OnDayEnd: func(st *trace.State, day int32) {
			if day <= mergeDay || (day-mergeDay)%opt.DistanceEvery != 0 {
				return
			}
			measure := func(sources []graph.NodeID, target trace.Origin) float64 {
				isTarget := func(v graph.NodeID) bool { return origin[v] == target }
				var sum float64
				var n int
				for i := 0; i < opt.DistanceSamples; i++ {
					src := sources[rng.Intn(len(sources))]
					d := st.Graph.ShortestToSet(src, isTarget, preMerge)
					if d >= 0 {
						sum += float64(d)
						n++
					}
				}
				if n == 0 {
					return math.NaN()
				}
				return sum / float64(n)
			}
			out = append(out, DistancePoint{
				DaysAfter:      day - mergeDay,
				XiaoneiTo5Q:    measure(xiaonei, trace.OriginFiveQ),
				FiveQToXiaonei: measure(fiveQ, trace.OriginXiaonei),
			})
		},
	})
	if err != nil {
		return nil
	}
	return out
}
