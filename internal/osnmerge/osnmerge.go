// Package osnmerge implements the network-merge analyses of §5: user
// activity after the Xiaonei/5Q merge and duplicate-account estimation
// (Figs 8a–8b), the internal/external/new edge mix (Fig 8c), the per-OSN
// edge-type ratios (Figs 9a–9b), and the shrinking BFS distance between the
// two formerly separate networks (Fig 9c).
package osnmerge

import (
	"errors"

	"repro/internal/trace"
)

// EdgeClass classifies a post-merge edge by its endpoints' origins (§5.1).
type EdgeClass uint8

const (
	// Internal edges connect users within the same pre-merge OSN.
	Internal EdgeClass = iota
	// External edges connect a Xiaonei user to a 5Q user.
	External
	// NewUser edges involve at least one user who joined after the merge.
	NewUser
)

// String names the class.
func (c EdgeClass) String() string {
	switch c {
	case Internal:
		return "internal"
	case External:
		return "external"
	case NewUser:
		return "new"
	default:
		return "unknown"
	}
}

// Classify returns the class of an edge between users with the given
// origins.
func Classify(a, b trace.Origin) EdgeClass {
	if a == trace.OriginNew || b == trace.OriginNew {
		return NewUser
	}
	if a == b {
		return Internal
	}
	return External
}

// Options configures the merge analysis.
type Options struct {
	// ActivityPercentile selects the activity threshold t as this
	// percentile of per-user mean edge inter-arrival times. The paper
	// uses the value such that 99% of users create an edge at least
	// every t days, i.e. the 99th percentile (t=94 on Renren).
	ActivityPercentile float64
	// FallbackThreshold is used when the trace cannot support the
	// percentile computation.
	FallbackThreshold int32
	// DistanceEvery is the cadence, in days, of the inter-OSN distance
	// samples (Fig 9c).
	DistanceEvery int32
	// DistanceSamples is the number of source users sampled per OSN per
	// distance measurement (the paper uses 1000).
	DistanceSamples int
	// RatioWindow smooths the Fig 9a–9b daily ratios over this many days.
	RatioWindow int32
	// Seed drives distance-source sampling.
	Seed int64
}

// DefaultOptions returns the scaled defaults.
func DefaultOptions() Options {
	return Options{
		ActivityPercentile: 99,
		FallbackThreshold:  94,
		DistanceEvery:      5,
		DistanceSamples:    100,
		RatioWindow:        7,
		Seed:               1,
	}
}

// ActiveDay is one day of the Fig 8a/8b curves: the percentage of one
// OSN's pre-merge users considered active — having created an edge of the
// given type within the next t days.
type ActiveDay struct {
	DaysAfter int32
	All       float64
	New       float64
	Internal  float64
	External  float64
}

// DayCounts is one day of the Fig 8c series.
type DayCounts struct {
	Day      int32 // days after the merge
	Internal int64
	External int64
	NewUsers int64
}

// RatioDay is one day of the Fig 9a–9b series.
type RatioDay struct {
	Day        int32 // days after the merge
	IntOverExt float64
	NewOverExt float64
	HasIntExt  bool // false when the window had no external edges
	HasNewExt  bool
}

// DistancePoint is one sample of the Fig 9c series: average hops from a
// random user of one OSN to the nearest user of the other, ignoring
// post-merge users and their edges.
type DistancePoint struct {
	DaysAfter      int32
	XiaoneiTo5Q    float64
	FiveQToXiaonei float64
}

// Result bundles the §5 analyses.
type Result struct {
	MergeDay          int32
	ActivityThreshold int32
	XiaoneiUsers      int
	FiveQUsers        int
	// InactiveAtMerge are the fractions of each OSN's users with no
	// activity in the first threshold window — the duplicate-account
	// estimate of §5.2.
	InactiveAtMergeXiaonei float64
	InactiveAtMergeFiveQ   float64

	ActiveXiaonei []ActiveDay
	ActiveFiveQ   []ActiveDay
	EdgesPerDay   []DayCounts
	RatiosXiaonei []RatioDay
	RatiosFiveQ   []RatioDay
	RatiosBoth    []RatioDay
	Distances     []DistancePoint
}

// Errors.
var (
	ErrNoMerge = errors.New("osnmerge: trace has no merge day")
	ErrTooFew  = errors.New("osnmerge: no post-merge observation window")
)

// Analyze runs the full §5 analysis over a merged trace. It is the batch
// entry point over the streaming Stage, which the engine also feeds from
// its single shared pass; here the stage consumes one private replay.
func Analyze(events []trace.Event, mergeDay int32, opt Options) (*Result, error) {
	return AnalyzeSource(trace.SliceSource(events), mergeDay, opt)
}

// AnalyzeSource is Analyze over a re-openable event source; it consumes
// exactly one pass.
func AnalyzeSource(src trace.Source, mergeDay int32, opt Options) (*Result, error) {
	if mergeDay < 0 {
		return nil, ErrNoMerge
	}
	s := NewStage(mergeDay, opt)
	st, err := trace.ReplaySource(src, trace.Hooks{OnEvent: s.OnEvent, OnDayEnd: s.OnDayEnd})
	if err != nil {
		return nil, err
	}
	if err := s.Finish(st); err != nil {
		return nil, err
	}
	return s.Result(), nil
}
