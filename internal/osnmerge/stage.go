package osnmerge

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/trace"
)

// postEdge is one buffered post-merge edge event. Edge classification and
// activity coverage depend on the activity threshold, which is a percentile
// over the whole trace, so these events are resolved in Finish.
type postEdge struct {
	day  int32
	u, v graph.NodeID
}

// Stage is the streaming form of Analyze: the full §5 analysis from a
// single pass. The batch entry point needed two event loops plus a third
// replay for the distance series; the stage folds all three into the shared
// pass by (a) accumulating per-user gap statistics incrementally, (b)
// sampling inter-OSN distances inline at day boundaries from the live
// graph, and (c) buffering post-merge edges until the activity threshold is
// known in Finish.
type Stage struct {
	opt      Options
	mergeDay int32
	lastDay  int32

	// Per-user inter-arrival accumulators, flat columns indexed by dense
	// node id and grown together on demand: lastEdge[u] is the day of u's
	// most recent edge (-1 before the first — decoded days are never
	// negative), gapSum/gapN the running gap statistics (a user has gap
	// state iff gapN[u] > 0). Columns instead of maps keeps a million
	// touched users at 20 bytes each with no bucket overhead or rehash
	// churn on the per-event hot path.
	lastEdge []int32
	gapSum   []int64
	gapN     []int64
	post     []postEdge

	src       *stats.Source
	rng       *rand.Rand
	xiaonei   []graph.NodeID
	fiveQ     []graph.NodeID
	distances []DistancePoint

	res *Result
}

// NewStage creates a streaming §5 stage with Analyze's defaulting.
func NewStage(mergeDay int32, opt Options) *Stage {
	if opt.ActivityPercentile <= 0 || opt.ActivityPercentile > 100 {
		opt.ActivityPercentile = 99
	}
	if opt.FallbackThreshold <= 0 {
		opt.FallbackThreshold = 94
	}
	if opt.DistanceEvery <= 0 {
		opt.DistanceEvery = 5
	}
	if opt.DistanceSamples <= 0 {
		opt.DistanceSamples = 100
	}
	if opt.RatioWindow <= 0 {
		opt.RatioWindow = 7
	}
	src := stats.NewSource(opt.Seed)
	return &Stage{
		opt:      opt,
		mergeDay: mergeDay,
		lastDay:  -1,
		src:      src,
		rng:      rand.New(src),
	}
}

// growGaps extends the per-user gap columns to cover node u, filling new
// lastEdge entries with the no-edge sentinel. The no-grow path is
// allocation free; growth at least doubles capacity so the per-event hot
// path stays amortized O(1). The three columns always grow in lockstep.
func (s *Stage) growGaps(u graph.NodeID) {
	n := int(u) + 1
	if n <= len(s.lastEdge) {
		return
	}
	old := len(s.lastEdge)
	if cap(s.lastEdge) < n {
		c := 2 * cap(s.lastEdge)
		if c < n {
			c = n
		}
		if c < 1024 {
			c = 1024
		}
		le := make([]int32, n, c)
		copy(le, s.lastEdge)
		s.lastEdge = le
		gs := make([]int64, n, c)
		copy(gs, s.gapSum)
		s.gapSum = gs
		gn := make([]int64, n, c)
		copy(gn, s.gapN)
		s.gapN = gn
	} else {
		s.lastEdge = s.lastEdge[:n]
		s.gapSum = s.gapSum[:n]
		s.gapN = s.gapN[:n]
	}
	for i := old; i < n; i++ {
		s.lastEdge[i] = -1
	}
}

// StageName is the stage's planner registry name.
const StageName = "osnmerge"

// Name implements engine.Stage.
func (s *Stage) Name() string { return StageName }

// OverlapSafe marks the stage for the engine's parallel driver: OnEvent
// writes only private census/gap accumulators, and OnDayEnd's sampled
// distance measurement reads the quiescent graph and origin column
// read-only.
func (s *Stage) OverlapSafe() {}

// OnEvent accumulates per-user inter-arrival statistics, the distance-
// source census, and buffers post-merge edges for Finish.
func (s *Stage) OnEvent(_ *trace.State, ev trace.Event) {
	if ev.Day > s.lastDay {
		s.lastDay = ev.Day
	}
	if ev.Kind == trace.AddNode {
		// AddNode events arrive in dense id order, so these lists stay
		// sorted by node id, matching the batch census scan.
		switch ev.Origin {
		case trace.OriginXiaonei:
			s.xiaonei = append(s.xiaonei, ev.U)
		case trace.OriginFiveQ:
			s.fiveQ = append(s.fiveQ, ev.U)
		}
		return
	}
	if ev.Kind != trace.AddEdge {
		return
	}
	for _, u := range [2]graph.NodeID{ev.U, ev.V} {
		s.growGaps(u)
		if last := s.lastEdge[u]; last >= 0 {
			s.gapSum[u] += int64(ev.Day - last)
			s.gapN[u]++
		}
		s.lastEdge[u] = ev.Day
	}
	if ev.Day > s.mergeDay {
		s.post = append(s.post, postEdge{day: ev.Day, u: ev.U, v: ev.V})
	}
}

// OnDayEnd samples the Fig 9c inter-OSN distances on schedule, from the
// live graph restricted to pre-merge users.
func (s *Stage) OnDayEnd(st *trace.State, day int32) {
	if day <= s.mergeDay || (day-s.mergeDay)%s.opt.DistanceEvery != 0 {
		return
	}
	// The census covers the users that exist on the sample day. For any
	// trace whose Xiaonei/5Q users all join by the merge day (every trace
	// the generator produces) this is the complete final census at every
	// post-merge sample; source-origin users arriving later join the pool
	// from their creation day onward.
	if len(s.xiaonei) == 0 || len(s.fiveQ) == 0 {
		return
	}
	preMerge := func(v graph.NodeID) bool { return st.Origin[v] != trace.OriginNew }
	measure := func(sources []graph.NodeID, target trace.Origin) float64 {
		isTarget := func(v graph.NodeID) bool { return st.Origin[v] == target }
		var sum float64
		var n int
		for i := 0; i < s.opt.DistanceSamples; i++ {
			src := sources[s.rng.Intn(len(sources))]
			d := st.Graph.ShortestToSet(src, isTarget, preMerge)
			if d >= 0 {
				sum += float64(d)
				n++
			}
		}
		if n == 0 {
			return math.NaN()
		}
		return sum / float64(n)
	}
	s.distances = append(s.distances, DistancePoint{
		DaysAfter:      day - s.mergeDay,
		XiaoneiTo5Q:    measure(s.xiaonei, trace.OriginFiveQ),
		FiveQToXiaonei: measure(s.fiveQ, trace.OriginXiaonei),
	})
}

// Finish computes the activity threshold, resolves the buffered post-merge
// edges into the Fig 8–9 series, and assembles the Result. It returns
// ErrNoMerge for a negative merge day and ErrTooFew when the trace has no
// post-merge observation window.
func (s *Stage) Finish(st *trace.State) error {
	if s.mergeDay < 0 {
		return ErrNoMerge
	}
	origin := st.Origin
	lastDay := s.lastDay

	var means []float64
	for u, n := range s.gapN {
		if n > 0 {
			means = append(means, float64(s.gapSum[u])/float64(n))
		}
	}
	threshold := s.opt.FallbackThreshold
	if len(means) > 0 {
		if p, err := stats.Percentile(means, s.opt.ActivityPercentile); err == nil {
			threshold = int32(math.Ceil(p))
			if threshold < 1 {
				threshold = 1
			}
		}
	}

	horizon := lastDay - threshold - s.mergeDay
	if horizon <= 0 {
		return ErrTooFew
	}

	res := &Result{MergeDay: s.mergeDay, ActivityThreshold: threshold}
	for _, o := range origin {
		switch o {
		case trace.OriginXiaonei:
			res.XiaoneiUsers++
		case trace.OriginFiveQ:
			res.FiveQUsers++
		}
	}

	// Edge classification, activity coverage, ratios — over the buffered
	// post-merge edges. coverage[origin][type] is a day-indexed counter of
	// active users, built by unioning per-user per-type coverage intervals.
	type cov struct {
		diff    []int64 // difference array over days-after-merge
		lastEnd []int32 // per-user union state, index by node id
	}
	days := int(lastDay) + 2
	newCov := func() *cov {
		return &cov{diff: make([]int64, days+1), lastEnd: make([]int32, len(origin))}
	}
	// type index: 0=all 1=new 2=internal 3=external
	var covers [2][4]*cov
	for side := 0; side < 2; side++ {
		for k := 0; k < 4; k++ {
			covers[side][k] = newCov()
		}
	}
	sideOf := func(o trace.Origin) int {
		if o == trace.OriginXiaonei {
			return 0
		}
		return 1
	}
	mergeDay := s.mergeDay
	// mark records that user u (pre-merge) created an edge of the given
	// type at absolute day e: it covers active-days [e-t+1, e].
	mark := func(c *cov, u graph.NodeID, e int32) {
		lo := e - threshold + 1
		if lo <= mergeDay {
			lo = mergeDay
		}
		if prev := c.lastEnd[u]; prev > lo {
			lo = prev
		}
		hi := e + 1 // exclusive
		if lo >= hi {
			return
		}
		c.diff[lo]++
		c.diff[hi]--
		c.lastEnd[u] = hi
	}

	counts := map[int32]*DayCounts{}
	type ratioAcc struct{ internal, external, newu []int64 }
	acc := ratioAcc{
		internal: make([]int64, days),
		external: make([]int64, days),
		newu:     make([]int64, days),
	}
	accX := ratioAcc{internal: make([]int64, days), external: make([]int64, days), newu: make([]int64, days)}
	accQ := ratioAcc{internal: make([]int64, days), external: make([]int64, days), newu: make([]int64, days)}

	for _, ev := range s.post {
		ou, ov := origin[ev.u], origin[ev.v]
		class := Classify(ou, ov)
		da := ev.day - mergeDay
		dc := counts[da]
		if dc == nil {
			dc = &DayCounts{Day: da}
			counts[da] = dc
		}
		switch class {
		case Internal:
			dc.Internal++
			acc.internal[ev.day]++
			if ou == trace.OriginXiaonei {
				accX.internal[ev.day]++
			} else {
				accQ.internal[ev.day]++
			}
		case External:
			dc.External++
			acc.external[ev.day]++
			accX.external[ev.day]++
			accQ.external[ev.day]++
		case NewUser:
			dc.NewUsers++
			acc.newu[ev.day]++
			if ou == trace.OriginXiaonei || ov == trace.OriginXiaonei {
				accX.newu[ev.day]++
			}
			if ou == trace.OriginFiveQ || ov == trace.OriginFiveQ {
				accQ.newu[ev.day]++
			}
		}
		// Activity coverage for pre-merge endpoints.
		for _, pair := range [2][2]graph.NodeID{{ev.u, ev.v}, {ev.v, ev.u}} {
			u, v := pair[0], pair[1]
			o := origin[u]
			if o == trace.OriginNew {
				continue
			}
			side := sideOf(o)
			mark(covers[side][0], u, ev.day)
			switch {
			case origin[v] == trace.OriginNew:
				mark(covers[side][1], u, ev.day)
			case origin[v] == o:
				mark(covers[side][2], u, ev.day)
			default:
				mark(covers[side][3], u, ev.day)
			}
		}
	}

	// Fig 8c series.
	for _, dc := range counts {
		res.EdgesPerDay = append(res.EdgesPerDay, *dc)
	}
	sort.Slice(res.EdgesPerDay, func(i, j int) bool { return res.EdgesPerDay[i].Day < res.EdgesPerDay[j].Day })

	// Fig 8a/8b curves from the coverage difference arrays.
	makeActive := func(side int, total int) []ActiveDay {
		if total == 0 {
			return nil
		}
		cum := [4]int64{}
		var out []ActiveDay
		for d := int32(0); d <= lastDay; d++ {
			for k := 0; k < 4; k++ {
				cum[k] += covers[side][k].diff[d]
			}
			da := d - mergeDay
			if da < 0 || da > horizon {
				continue
			}
			out = append(out, ActiveDay{
				DaysAfter: da,
				All:       100 * float64(cum[0]) / float64(total),
				New:       100 * float64(cum[1]) / float64(total),
				Internal:  100 * float64(cum[2]) / float64(total),
				External:  100 * float64(cum[3]) / float64(total),
			})
		}
		return out
	}
	res.ActiveXiaonei = makeActive(0, res.XiaoneiUsers)
	res.ActiveFiveQ = makeActive(1, res.FiveQUsers)
	if len(res.ActiveXiaonei) > 0 {
		res.InactiveAtMergeXiaonei = 1 - res.ActiveXiaonei[0].All/100
	}
	if len(res.ActiveFiveQ) > 0 {
		res.InactiveAtMergeFiveQ = 1 - res.ActiveFiveQ[0].All/100
	}

	// Fig 9a/9b ratio series (windowed sums).
	makeRatios := func(a ratioAcc) []RatioDay {
		var out []RatioDay
		w := s.opt.RatioWindow
		var sumI, sumE, sumN int64
		for d := mergeDay + 1; d <= lastDay; d++ {
			sumI += a.internal[d]
			sumE += a.external[d]
			sumN += a.newu[d]
			if old := d - w; old > mergeDay {
				sumI -= a.internal[old]
				sumE -= a.external[old]
				sumN -= a.newu[old]
			}
			rd := RatioDay{Day: d - mergeDay}
			if sumE > 0 {
				rd.IntOverExt = float64(sumI) / float64(sumE)
				rd.NewOverExt = float64(sumN) / float64(sumE)
				rd.HasIntExt = true
				rd.HasNewExt = true
			}
			out = append(out, rd)
		}
		return out
	}
	res.RatiosXiaonei = makeRatios(accX)
	res.RatiosFiveQ = makeRatios(accQ)
	res.RatiosBoth = makeRatios(acc)

	res.Distances = s.distances
	s.res = res
	return nil
}

// Result returns the assembled §5 analysis after a successful Finish; nil
// before.
func (s *Stage) Result() *Result { return s.res }

// stageStateV1 versions the stage's checkpoint blob.
const stageStateV1 = 1

// SaveState implements engine.Checkpointer: the per-user gap statistics,
// the buffered post-merge edges, the origin census, the sampled distance
// series, and the distance sampler RNG's position.
func (s *Stage) SaveState(w io.Writer) error {
	e := checkpoint.NewEncoder(w)
	e.U64(stageStateV1)
	e.I32(s.lastDay)
	// The columns serialize as sparse (id, value) pairs in ascending id
	// order — the exact bytes the former map form emitted via SortedKeys,
	// so checkpoints stay byte-identical across the representation change.
	// A user is present in lastEdge iff it has seen an edge (>= 0), and in
	// gapSum/gapN iff it has at least one gap (the two always co-exist).
	nLast := 0
	for _, d := range s.lastEdge {
		if d >= 0 {
			nLast++
		}
	}
	e.U64(uint64(nLast))
	for u, d := range s.lastEdge {
		if d >= 0 {
			e.I32(int32(u))
			e.I32(d)
		}
	}
	nGap := 0
	for _, n := range s.gapN {
		if n > 0 {
			nGap++
		}
	}
	e.U64(uint64(nGap))
	for u, n := range s.gapN {
		if n > 0 {
			e.I32(int32(u))
			e.I64(s.gapSum[u])
		}
	}
	e.U64(uint64(nGap))
	for u, n := range s.gapN {
		if n > 0 {
			e.I32(int32(u))
			e.I64(n)
		}
	}
	e.U64(uint64(len(s.post)))
	for _, p := range s.post {
		e.I32(p.day)
		e.I32(p.u)
		e.I32(p.v)
	}
	e.I32s(s.xiaonei)
	e.I32s(s.fiveQ)
	e.U64(uint64(len(s.distances)))
	for _, dp := range s.distances {
		e.I32(dp.DaysAfter)
		e.F64(dp.XiaoneiTo5Q)
		e.F64(dp.FiveQToXiaonei)
	}
	e.I64(s.src.Draws())
	return e.Flush()
}

// LoadState implements engine.Checkpointer.
func (s *Stage) LoadState(r io.Reader) error {
	d := checkpoint.NewDecoder(r)
	if v := d.U64(); d.Err() == nil && v != stageStateV1 {
		return fmt.Errorf("osnmerge: checkpoint state version %d", v)
	}
	s.lastDay = d.I32()
	s.lastEdge, s.gapSum, s.gapN = nil, nil, nil
	n := d.Len()
	for i := 0; i < n && d.Err() == nil; i++ {
		u := d.I32()
		day := d.I32()
		if u < 0 {
			return fmt.Errorf("osnmerge: checkpoint lastEdge id %d", u)
		}
		s.growGaps(u)
		s.lastEdge[u] = day
	}
	n = d.Len()
	for i := 0; i < n && d.Err() == nil; i++ {
		u := d.I32()
		v := d.I64()
		if u < 0 {
			return fmt.Errorf("osnmerge: checkpoint gapSum id %d", u)
		}
		s.growGaps(u)
		s.gapSum[u] = v
	}
	n = d.Len()
	for i := 0; i < n && d.Err() == nil; i++ {
		u := d.I32()
		v := d.I64()
		if u < 0 {
			return fmt.Errorf("osnmerge: checkpoint gapN id %d", u)
		}
		s.growGaps(u)
		s.gapN[u] = v
	}
	n = d.Len()
	s.post = make([]postEdge, 0, min(n, 1<<16))
	for i := 0; i < n && d.Err() == nil; i++ {
		s.post = append(s.post, postEdge{day: d.I32(), u: d.I32(), v: d.I32()})
	}
	s.xiaonei = d.I32s()
	s.fiveQ = d.I32s()
	n = d.Len()
	s.distances = make([]DistancePoint, 0, min(n, 1<<16))
	for i := 0; i < n && d.Err() == nil; i++ {
		s.distances = append(s.distances, DistancePoint{
			DaysAfter: d.I32(), XiaoneiTo5Q: d.F64(), FiveQToXiaonei: d.F64(),
		})
	}
	draws := d.I64()
	if err := d.Err(); err != nil {
		return err
	}
	s.src.Restore(s.opt.Seed, draws)
	return nil
}
