package trace

import (
	"context"

	"repro/internal/graph"
)

// State is the incrementally maintained view of the network that replay
// builds: the live graph plus the per-node birthday and origin columns that
// the node- and merge-level analyses need.
type State struct {
	Graph   *graph.Graph
	JoinDay []int32  // day each node was created
	Origin  []Origin // origin network of each node
	Day     int32    // current day being replayed
}

// NewState returns an empty state with capacity hints.
func NewState(nodeHint, edgeHint int) *State {
	return &State{Graph: graph.New(nodeHint), JoinDay: make([]int32, 0, nodeHint), Origin: make([]Origin, 0, nodeHint)}
}

// Apply folds one event into the state. Invalid edge events (self loops,
// duplicates) are reported via the returned error; callers replaying a
// Validate()-clean trace can ignore it.
func (s *State) Apply(ev Event) error {
	s.Day = ev.Day
	switch ev.Kind {
	case AddNode:
		s.Graph.EnsureNode(ev.U)
		// Grow the columns to ev.U in one reservation (not one element
		// at a time — this runs for every node-creation event). Nodes
		// implicitly created to fill the gap inherit this event's day
		// and origin, exactly as the old element-wise loop assigned them.
		if n := int(ev.U) + 1; n > len(s.JoinDay) {
			old := len(s.JoinDay)
			if cap(s.JoinDay) < n || cap(s.Origin) < n {
				c := 2 * cap(s.JoinDay)
				if c < n {
					c = n
				}
				jd := make([]int32, n, c)
				copy(jd, s.JoinDay)
				s.JoinDay = jd
				og := make([]Origin, n, c)
				copy(og, s.Origin)
				s.Origin = og
			} else {
				s.JoinDay = s.JoinDay[:n]
				s.Origin = s.Origin[:n]
			}
			for i := old; i < n; i++ {
				s.JoinDay[i] = ev.Day
				s.Origin[i] = ev.Origin
			}
		}
		s.JoinDay[ev.U] = ev.Day
		s.Origin[ev.U] = ev.Origin
		return nil
	case AddEdge:
		return s.Graph.AddEdge(ev.U, ev.V)
	}
	return nil
}

// NodeAge returns the age in days of node u at day 'day' (0 on its join day).
func (s *State) NodeAge(u graph.NodeID, day int32) int32 {
	return day - s.JoinDay[u]
}

// Hooks configures a Replay run. Any field may be nil.
type Hooks struct {
	// OnEvent fires for every event after it is applied to the state.
	OnEvent func(st *State, ev Event)
	// OnDayEnd fires once per day boundary, after the last event of that
	// day has been applied, with the day that just finished. Days with no
	// events still fire, in order, so periodic metrics stay on schedule.
	OnDayEnd func(st *State, day int32)
}

// OnReplayPass, when non-nil, is invoked once at the start of every
// ReplayInto pass (and therefore every Replay). It is a test instrumentation
// point: equivalence and pass-counting tests install an atomic counter here
// to assert how many full passes over a trace an analysis makes. Because
// passes may run on concurrent goroutines (the per-pass sweep reference on
// a pool), installed hooks must be safe for concurrent use.
var OnReplayPass func()

// Replay streams events through a fresh State, firing hooks, and returns the
// final state. The trace must be Validate()-clean; replay stops at the first
// application error otherwise.
func Replay(events []Event, hooks Hooks) (*State, error) {
	return ReplaySource(SliceSource(events), hooks)
}

// ReplayInto is Replay over a caller-provided state, allowing resumed or
// segmented replays.
func ReplayInto(st *State, events []Event, hooks Hooks) error {
	return ReplaySourceInto(st, SliceSource(events), hooks)
}

// ReplaySource is Replay over a re-openable Source: it opens one cursor,
// streams it through a fresh State, and closes it. With a FileSource the
// pass runs straight off disk, so resident memory is the State, not the
// event stream.
func ReplaySource(src Source, hooks Hooks) (*State, error) {
	st := NewState(1024, 4096)
	if err := ReplaySourceInto(st, src, hooks); err != nil {
		return st, err
	}
	return st, nil
}

// ReplaySourceInto is ReplaySource over a caller-provided state. It
// consumes exactly one pass (one Open/Close pair) of the source.
func ReplaySourceInto(st *State, src Source, hooks Hooks) error {
	return ReplaySourceIntoContext(nil, st, src, hooks)
}

// ReplaySourceIntoContext is ReplaySourceInto with cancellation: the pass
// checks ctx at every day boundary (the natural quantum of the replay) and
// before applying each event, and aborts with ctx.Err() — typically
// context.Canceled — leaving the state mid-replay with no event applied
// past the cancellation. A nil ctx disables the checks, making this
// identical to ReplaySourceInto.
func ReplaySourceIntoContext(ctx context.Context, st *State, src Source, hooks Hooks) error {
	return ReplaySourceIntoFromContext(ctx, st, src, hooks, 0)
}

// ReplaySourceIntoFromContext resumes a replay mid-trace: it opens the
// source at fromDay (via OpenSourceAt, so a day-indexed FileSource seeks
// instead of decoding the prefix) and fires day boundaries from fromDay
// onward — the day-end for fromDay-1 and everything before it is the
// prior segment's business (a restored checkpoint already saw them).
// fromDay <= 0 is a whole-trace replay. The caller's st must be the
// state as of the end of day fromDay-1.
func ReplaySourceIntoFromContext(ctx context.Context, st *State, src Source, hooks Hooks, fromDay int32) error {
	cur, err := OpenSourceAt(src, fromDay)
	if err != nil {
		return err
	}
	err = replayCursor(ctx, st, cur, hooks, fromDay)
	if cerr := cur.Close(); err == nil {
		err = cerr
	}
	return err
}

// replayCursor drains one cursor through a Sink whose day watermark
// starts at fromDay.
func replayCursor(ctx context.Context, st *State, cur Cursor, hooks Hooks, fromDay int32) error {
	k := NewSinkContext(ctx, st, hooks)
	if fromDay > k.day {
		k.day = fromDay
	}
	for {
		ev, ok, err := cur.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := k.Push(ev); err != nil {
			return err
		}
	}
	return k.Finish()
}

// Sink is the push-driven form of one replay pass: producers that emit
// events (gen.GenerateStream) feed Push in trace order and call Finish at
// the end of the stream, getting identical hook semantics to a pull-based
// Replay — day-boundary callbacks fire for empty days, the final day-end
// fires once after the last event. The pull loops are built on it.
type Sink struct {
	st    *State
	hooks Hooks
	ctx   context.Context
	day   int32
	any   bool
}

// NewSink starts one replay pass into st (counted by OnReplayPass).
func NewSink(st *State, hooks Hooks) *Sink {
	return NewSinkContext(nil, st, hooks)
}

// NewSinkContext is NewSink with cancellation: Push and Finish check ctx
// at every day boundary and before each applied event, aborting the pass
// with ctx.Err(). A nil ctx disables the checks.
func NewSinkContext(ctx context.Context, st *State, hooks Hooks) *Sink {
	if OnReplayPass != nil {
		OnReplayPass()
	}
	return &Sink{st: st, hooks: hooks, ctx: ctx, day: st.Day}
}

// Push applies one event to the state, firing any day-boundary hooks that
// precede it and the per-event hook after it. With a context, Push also
// refuses to apply any event once the context is cancelled — so a
// cancellation raised inside a day-end hook (the engine's per-snapshot
// barrier) stops the pass before a single further event mutates the state.
func (k *Sink) Push(ev Event) error {
	for k.day < ev.Day {
		if k.ctx != nil {
			if err := k.ctx.Err(); err != nil {
				return err
			}
		}
		if k.hooks.OnDayEnd != nil {
			k.hooks.OnDayEnd(k.st, k.day)
		}
		k.day++
	}
	if k.ctx != nil {
		if err := k.ctx.Err(); err != nil {
			return err
		}
	}
	if err := k.st.Apply(ev); err != nil {
		return err
	}
	k.any = true
	if k.hooks.OnEvent != nil {
		k.hooks.OnEvent(k.st, ev)
	}
	return nil
}

// Finish fires the final day-end hook; call it once after the last Push.
// With a cancelled context it reports ctx.Err() instead of firing the hook.
func (k *Sink) Finish() error {
	if k.ctx != nil {
		if err := k.ctx.Err(); err != nil {
			return err
		}
	}
	if k.hooks.OnDayEnd != nil && k.any {
		k.hooks.OnDayEnd(k.st, k.day)
	}
	return nil
}

// Dispatcher fans one replay pass out to any number of subscribers, so N
// analyses can share a single pass over the trace (and a single incrementally
// maintained State) instead of replaying N times. Subscribers receive every
// OnEvent and OnDayEnd callback in subscription order; OnDayEnd fires for
// empty days exactly as in a single-subscriber Replay.
type Dispatcher struct {
	subs []Hooks
}

// Subscribe registers one subscriber's hooks. Nil hook fields are skipped at
// dispatch time, so partial subscribers (day-end only, event only) are cheap.
func (d *Dispatcher) Subscribe(h Hooks) {
	d.subs = append(d.subs, h)
}

// Len returns the number of subscribers.
func (d *Dispatcher) Len() int { return len(d.subs) }

// Hooks returns combined hooks that forward each callback to every
// subscriber, for use with Replay or ReplayInto.
func (d *Dispatcher) Hooks() Hooks {
	return Hooks{
		OnEvent: func(st *State, ev Event) {
			for _, h := range d.subs {
				if h.OnEvent != nil {
					h.OnEvent(st, ev)
				}
			}
		},
		OnDayEnd: func(st *State, day int32) {
			for _, h := range d.subs {
				if h.OnDayEnd != nil {
					h.OnDayEnd(st, day)
				}
			}
		},
	}
}

// Replay runs one pass over events, dispatching to all subscribers, and
// returns the final shared state.
func (d *Dispatcher) Replay(events []Event) (*State, error) {
	return Replay(events, d.Hooks())
}

// ReplaySource runs one pass over a source, dispatching to all
// subscribers, and returns the final shared state. For a cancellable
// dispatched pass, feed Hooks() to ReplaySourceIntoContext — that is how
// the engine drives its subscribers with a context.
func (d *Dispatcher) ReplaySource(src Source) (*State, error) {
	return ReplaySource(src, d.Hooks())
}
