package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// Cursor is one forward pass over a trace's events.
type Cursor interface {
	// Next returns the next event in trace order. ok=false signals a clean
	// end of the stream; a non-nil error means the pass failed (I/O error,
	// corrupt input) and the cursor is dead.
	Next() (Event, bool, error)
	// Close releases the pass's resources. It is safe to call after
	// exhaustion and must be called exactly once per cursor.
	Close() error
}

// Source is a re-openable stream of trace events — the data-plane
// abstraction every analysis layer consumes (see DESIGN.md §4). Open
// returns a fresh Cursor positioned at the first event; multi-pass
// consumers (the δ-sweep, RunBatch) call Open once per pass, and
// concurrent passes each own their cursor, so Open must be safe for
// concurrent use.
type Source interface {
	Open() (Cursor, error)
}

// MetaSource is a Source that knows its trace's Meta without a pass: a
// decoded file header, or a generated trace's summary. Pipeline drivers
// use it for capacity hints and the merge-day gate.
type MetaSource interface {
	Source
	Meta() Meta
}

// DaySeeker is a Source that can open a cursor positioned at the first
// event whose day is >= day without decoding the prefix — the
// day-addressable data plane that checkpoint resume and mid-trace reads
// are built on. Like Open, OpenAt must be safe for concurrent use.
type DaySeeker interface {
	OpenAt(day int32) (Cursor, error)
}

// OpenSourceAt opens a cursor positioned at the first event with
// Day >= day: through the source's own OpenAt when it is a DaySeeker
// (FileSource seeks via the trace file's day index, SliceSource binary-
// searches), and by decode-and-discard of the prefix otherwise. day <= 0
// is a plain Open.
func OpenSourceAt(src Source, day int32) (Cursor, error) {
	if day <= 0 {
		return src.Open()
	}
	if ds, ok := src.(DaySeeker); ok {
		return ds.OpenAt(day)
	}
	cur, err := src.Open()
	if err != nil {
		return nil, err
	}
	skipped, err := skipToDay(cur, day)
	if err != nil {
		cur.Close()
		return nil, err
	}
	return skipped, nil
}

// EventsThrough returns how many events in the source have Day <= day,
// for sources that can answer without a replay pass: a day-indexed
// FileSource (index lookup) or an in-memory slice (binary search).
// ok=false means the source cannot say cheaply. The checkpoint plane
// uses it as a consistency probe: a restored state must account for
// exactly this many events, or the trace is not the one the checkpoint
// was written against (e.g. regenerated with the same seed but different
// generator knobs).
func EventsThrough(src Source, day int32) (int64, bool) {
	switch s := src.(type) {
	case *FileSource:
		if s.index == nil {
			return 0, false
		}
		i := sort.Search(len(s.index), func(i int) bool { return s.index[i].Day > day })
		if i == len(s.index) {
			return int64(s.events), true
		}
		return int64(s.index[i].Event), true
	case *SegFileSource:
		if s.index == nil {
			return 0, false
		}
		i := sort.Search(len(s.index), func(i int) bool { return s.index[i].Day > day })
		if i == len(s.index) {
			return int64(s.events), true
		}
		return int64(s.index[i].Event), true
	case SliceSource:
		return int64(sort.Search(len(s), func(i int) bool { return s[i].Day > day })), true
	case TraceSource:
		return EventsThrough(SliceSource(s.Trace.Events), day)
	case *tailSource:
		return s.eventsThrough(day)
	}
	return 0, false
}

// skipToDay advances cur past every event with Day < day and returns a
// cursor that yields the remainder (the boundary event is buffered).
func skipToDay(cur Cursor, day int32) (Cursor, error) {
	for {
		ev, ok, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return cur, nil
		}
		if ev.Day >= day {
			return &pendingCursor{Cursor: cur, pending: ev, has: true}, nil
		}
	}
}

// pendingCursor replays one buffered event before resuming its inner
// cursor.
type pendingCursor struct {
	Cursor
	pending Event
	has     bool
}

func (c *pendingCursor) Next() (Event, bool, error) {
	if c.has {
		c.has = false
		return c.pending, true, nil
	}
	return c.Cursor.Next()
}

// SliceSource adapts an in-memory event slice to Source. It is the
// trivial data plane: Open costs nothing and cursors share the slice.
type SliceSource []Event

// Open implements Source.
func (s SliceSource) Open() (Cursor, error) { return &sliceCursor{events: s}, nil }

// OpenAt implements DaySeeker by binary search over the day-ordered
// events.
func (s SliceSource) OpenAt(day int32) (Cursor, error) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Day >= day })
	return &sliceCursor{events: s, i: i}, nil
}

type sliceCursor struct {
	events []Event
	i      int
}

func (c *sliceCursor) Next() (Event, bool, error) {
	if c.i >= len(c.events) {
		return Event{}, false, nil
	}
	ev := c.events[c.i]
	c.i++
	return ev, true, nil
}

func (c *sliceCursor) Close() error { return nil }

// TraceSource adapts a full in-memory Trace to a MetaSource.
type TraceSource struct{ Trace *Trace }

// Open implements Source.
func (s TraceSource) Open() (Cursor, error) { return SliceSource(s.Trace.Events).Open() }

// OpenAt implements DaySeeker.
func (s TraceSource) OpenAt(day int32) (Cursor, error) {
	return SliceSource(s.Trace.Events).OpenAt(day)
}

// Meta implements MetaSource.
func (s TraceSource) Meta() Meta { return s.Trace.Meta }

// Source returns the trace as a re-openable MetaSource.
func (tr *Trace) Source() MetaSource { return TraceSource{Trace: tr} }

// FileSource replays a binary trace file straight off disk: every Open
// decodes the stream incrementally through a Decoder, so a pass holds
// O(1) memory regardless of event count — the out-of-core data plane.
// When the file carries a day-index footer (written by the streaming
// Encoder), OpenAt seeks straight to a day's first event; index-less
// files (e.g. the one-shot Encode's output) still decode and OpenAt
// falls back to decode-and-discard.
type FileSource struct {
	Path   string
	meta   Meta
	events uint64
	start  int64           // byte offset of the first event (end of header)
	index  []DayIndexEntry // nil when the file has no (valid) index footer
}

// OpenFileSource validates the file's header once and returns a
// FileSource carrying its Meta and, when present, its day index. The
// events are not read.
func OpenFileSource(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	meta, events, start, err := parseStreamHeader(f)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	s := &FileSource{Path: path, meta: meta, events: events, start: start}
	s.index = readDayIndex(f, events) // best effort; nil means "no index"
	return s, nil
}

// Frozen returns a count-bounded view of the file's content as of open
// time: cursors decode exactly the events the header declared, so a
// writer appending days in place — or atomically replacing the file with
// a prefix-stable extension — never changes what an open pass reads. The
// serving layer hands these to snapshots so a published generation's
// data plane cannot drift under it.
func (s *FileSource) Frozen() MetaSource {
	return &tailSource{
		path:   s.Path,
		meta:   s.meta,
		start:  s.start,
		events: s.events,
		index:  s.index,
	}
}

// readDayIndex reads the day-index footer from the end of the file. Any
// failure — no trailer, short file, checksum mismatch, entries that
// point outside the file or past the header's event count — yields nil:
// an index is an accelerator, never a correctness requirement.
func readDayIndex(f *os.File, events uint64) []DayIndexEntry {
	idx, _ := readDayIndexOff(f, events)
	return idx
}

// readDayIndexOff is readDayIndex plus the byte offset the footer starts
// at — equivalently, where the event stream ends. Appenders truncate the
// file there before extending it; the tail prober uses it to bound its
// decode. off is -1 when the index is absent or invalid.
func readDayIndexOff(f *os.File, events uint64) ([]DayIndexEntry, int64) {
	fi, err := f.Stat()
	if err != nil || fi.Size() < indexTrailerLen {
		return nil, -1
	}
	var trailer [indexTrailerLen]byte
	if _, err := f.ReadAt(trailer[:], fi.Size()-indexTrailerLen); err != nil {
		return nil, -1
	}
	if [4]byte(trailer[8:12]) != indexEndMagic {
		return nil, -1
	}
	n := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if n <= 0 || n > fi.Size()-indexTrailerLen || n > maxIndexFooterBytes {
		return nil, -1
	}
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, fi.Size()-indexTrailerLen-n); err != nil {
		return nil, -1
	}
	idx, err := parseDayIndex(buf)
	if err != nil {
		return nil, -1
	}
	off := fi.Size() - indexTrailerLen - n
	if len(idx) > 0 {
		last := idx[len(idx)-1]
		if last.Event >= events || last.Offset >= off {
			return nil, -1
		}
	}
	return idx, off
}

// maxIndexFooterBytes bounds how large a footer readDayIndex will load.
const maxIndexFooterBytes = 1 << 28

// Meta implements MetaSource with the header's metadata.
func (s *FileSource) Meta() Meta { return s.meta }

// Index returns the file's day index, nil when absent. The slice is
// shared and must not be modified.
func (s *FileSource) Index() []DayIndexEntry { return s.index }

// Open implements Source: each pass opens its own file handle and
// decoder, so concurrent passes (the δ-sweep fan-out) never share
// position state.
func (s *FileSource) Open() (Cursor, error) {
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, err
	}
	cr := &countingReader{r: f}
	dec, err := NewDecoder(bufio.NewReader(cr))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", s.Path, err)
	}
	return &fileCursor{f: f, cr: cr, dec: dec}, nil
}

// OpenAt implements DaySeeker. With a day index the cursor seeks to the
// first event of the requested day and decodes nothing before it; without
// one it decodes and discards the prefix.
func (s *FileSource) OpenAt(day int32) (Cursor, error) {
	if day <= 0 || s.index == nil {
		cur, err := s.Open()
		if err != nil || day <= 0 {
			return cur, err
		}
		skipped, err := skipToDay(cur, day)
		if err != nil {
			cur.Close()
			return nil, err
		}
		return skipped, nil
	}
	i := sort.Search(len(s.index), func(i int) bool { return s.index[i].Day >= day })
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, err
	}
	if i == len(s.index) {
		// Past the last day with events: an exhausted cursor.
		cr := &countingReader{r: f}
		dec := resumeDecoder(bufio.NewReader(cr), s.meta, 0, 0)
		return &fileCursor{f: f, cr: cr, dec: dec}, nil
	}
	e := s.index[i]
	if _, err := f.Seek(e.Offset, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	cr := &countingReader{r: f}
	dec := resumeDecoder(bufio.NewReader(cr), s.meta, s.events-e.Event, e.PrevDay)
	return &fileCursor{f: f, cr: cr, dec: dec}, nil
}

// countingReader counts the bytes a cursor actually reads off disk — the
// observable that the OpenAt tests hold prefix-skipping accountable with.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

type fileCursor struct {
	f   *os.File
	cr  *countingReader
	dec *Decoder
}

func (c *fileCursor) Next() (Event, bool, error) { return c.dec.Next() }

func (c *fileCursor) Close() error { return c.f.Close() }

// bytesRead reports how many bytes this cursor has read off disk.
func (c *fileCursor) bytesRead() int64 { return c.cr.n }
