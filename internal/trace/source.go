package trace

import (
	"fmt"
	"os"
)

// Cursor is one forward pass over a trace's events.
type Cursor interface {
	// Next returns the next event in trace order. ok=false signals a clean
	// end of the stream; a non-nil error means the pass failed (I/O error,
	// corrupt input) and the cursor is dead.
	Next() (Event, bool, error)
	// Close releases the pass's resources. It is safe to call after
	// exhaustion and must be called exactly once per cursor.
	Close() error
}

// Source is a re-openable stream of trace events — the data-plane
// abstraction every analysis layer consumes (see DESIGN.md §4). Open
// returns a fresh Cursor positioned at the first event; multi-pass
// consumers (the δ-sweep, RunBatch) call Open once per pass, and
// concurrent passes each own their cursor, so Open must be safe for
// concurrent use.
type Source interface {
	Open() (Cursor, error)
}

// MetaSource is a Source that knows its trace's Meta without a pass: a
// decoded file header, or a generated trace's summary. Pipeline drivers
// use it for capacity hints and the merge-day gate.
type MetaSource interface {
	Source
	Meta() Meta
}

// SliceSource adapts an in-memory event slice to Source. It is the
// trivial data plane: Open costs nothing and cursors share the slice.
type SliceSource []Event

// Open implements Source.
func (s SliceSource) Open() (Cursor, error) { return &sliceCursor{events: s}, nil }

type sliceCursor struct {
	events []Event
	i      int
}

func (c *sliceCursor) Next() (Event, bool, error) {
	if c.i >= len(c.events) {
		return Event{}, false, nil
	}
	ev := c.events[c.i]
	c.i++
	return ev, true, nil
}

func (c *sliceCursor) Close() error { return nil }

// TraceSource adapts a full in-memory Trace to a MetaSource.
type TraceSource struct{ Trace *Trace }

// Open implements Source.
func (s TraceSource) Open() (Cursor, error) { return SliceSource(s.Trace.Events).Open() }

// Meta implements MetaSource.
func (s TraceSource) Meta() Meta { return s.Trace.Meta }

// Source returns the trace as a re-openable MetaSource.
func (tr *Trace) Source() MetaSource { return TraceSource{Trace: tr} }

// FileSource replays a binary trace file straight off disk: every Open
// decodes the stream incrementally through a Decoder, so a pass holds
// O(1) memory regardless of event count — the out-of-core data plane.
type FileSource struct {
	Path string
	meta Meta
}

// OpenFileSource validates the file's header once and returns a
// FileSource carrying its Meta. The events are not read.
func OpenFileSource(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec, err := NewDecoder(f)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return &FileSource{Path: path, meta: dec.Meta()}, nil
}

// Meta implements MetaSource with the header's metadata.
func (s *FileSource) Meta() Meta { return s.meta }

// Open implements Source: each pass opens its own file handle and
// decoder, so concurrent passes (the δ-sweep fan-out) never share
// position state.
func (s *FileSource) Open() (Cursor, error) {
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, err
	}
	dec, err := NewDecoder(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", s.Path, err)
	}
	return &fileCursor{f: f, dec: dec}, nil
}

type fileCursor struct {
	f   *os.File
	dec *Decoder
}

func (c *fileCursor) Next() (Event, bool, error) { return c.dec.Next() }

func (c *fileCursor) Close() error { return c.f.Close() }
