package trace

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// tinyTrace builds a small well-formed trace:
// day 0: nodes 0,1 and edge 0-1; day 1: node 2, edges 1-2; day 3: edge 0-2.
func tinyTrace() []Event {
	return []Event{
		{Kind: AddNode, Day: 0, U: 0, Origin: OriginXiaonei},
		{Kind: AddNode, Day: 0, U: 1, Origin: OriginXiaonei},
		{Kind: AddEdge, Day: 0, U: 0, V: 1},
		{Kind: AddNode, Day: 1, U: 2, Origin: OriginFiveQ},
		{Kind: AddEdge, Day: 1, U: 1, V: 2},
		{Kind: AddEdge, Day: 3, U: 0, V: 2},
	}
}

func TestValidateOK(t *testing.T) {
	if err := Validate(tinyTrace()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesNonMonotone(t *testing.T) {
	evs := tinyTrace()
	evs[3].Day = 0 // node 2 fine...
	evs[4].Day = 0
	evs[5].Day = 1 // ...but then day 1 after day 3? reorder to break monotone:
	evs = append(evs, Event{Kind: AddEdge, Day: 0, U: 0, V: 1})
	err := Validate(evs)
	if !errors.Is(err, ErrNonMonotoneDay) && !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("err = %v", err)
	}
	// Direct regression:
	bad := []Event{
		{Kind: AddNode, Day: 5, U: 0},
		{Kind: AddNode, Day: 4, U: 1},
	}
	if err := Validate(bad); !errors.Is(err, ErrNonMonotoneDay) {
		t.Fatalf("err = %v, want ErrNonMonotoneDay", err)
	}
}

func TestValidateCatchesUnknownNode(t *testing.T) {
	bad := []Event{
		{Kind: AddNode, Day: 0, U: 0},
		{Kind: AddEdge, Day: 0, U: 0, V: 5},
	}
	if err := Validate(bad); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestValidateCatchesDuplicateNode(t *testing.T) {
	bad := []Event{
		{Kind: AddNode, Day: 0, U: 0},
		{Kind: AddNode, Day: 0, U: 0},
	}
	if err := Validate(bad); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("err = %v, want ErrDuplicateNode", err)
	}
}

func TestValidateCatchesNonDense(t *testing.T) {
	bad := []Event{{Kind: AddNode, Day: 0, U: 3}}
	if err := Validate(bad); !errors.Is(err, ErrNonDenseNode) {
		t.Fatalf("err = %v, want ErrNonDenseNode", err)
	}
}

func TestValidateCatchesSelfLoopAndDup(t *testing.T) {
	bad := []Event{
		{Kind: AddNode, Day: 0, U: 0},
		{Kind: AddEdge, Day: 0, U: 0, V: 0},
	}
	if err := Validate(bad); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("err = %v, want ErrSelfLoop", err)
	}
	dup := []Event{
		{Kind: AddNode, Day: 0, U: 0},
		{Kind: AddNode, Day: 0, U: 1},
		{Kind: AddEdge, Day: 0, U: 0, V: 1},
		{Kind: AddEdge, Day: 1, U: 1, V: 0},
	}
	if err := Validate(dup); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("err = %v, want ErrDuplicateEdge", err)
	}
}

func TestValidateUnknownKind(t *testing.T) {
	bad := []Event{{Kind: Kind(9), Day: 0}}
	if err := Validate(bad); err == nil {
		t.Fatal("want error for unknown kind")
	}
}

// writeTraceFile encodes events into a fresh trace file and returns its
// path.
func writeTraceFile(t *testing.T, events []Event) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "v.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestValidateSourceFile validates an on-disk trace straight off disk —
// the event slice is never materialized — and catches invariant
// violations the same way the in-memory path does.
func TestValidateSourceFile(t *testing.T) {
	fs, err := OpenFileSource(writeTraceFile(t, tinyTrace()))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSource(fs); err != nil {
		t.Fatal(err)
	}

	// The codec enforces day monotonicity at encode time, so smuggle a
	// structural violation it cannot see: an edge between unknown nodes.
	bad := []Event{
		{Kind: AddNode, Day: 0, U: 0},
		{Kind: AddEdge, Day: 0, U: 0, V: 7},
	}
	fs, err = OpenFileSource(writeTraceFile(t, bad))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSource(fs); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestSummarize(t *testing.T) {
	m := Summarize(tinyTrace())
	if m.Days != 4 {
		t.Fatalf("Days = %d, want 4", m.Days)
	}
	if m.Nodes != 3 || m.Edges != 3 {
		t.Fatalf("nodes=%d edges=%d", m.Nodes, m.Edges)
	}
	if m.Xiaonei != 2 || m.FiveQ != 1 || m.NewUsers != 0 {
		t.Fatalf("origin counts: %+v", m)
	}
	if m.MergeDay != -1 {
		t.Fatalf("MergeDay = %d", m.MergeDay)
	}
}

func TestOriginString(t *testing.T) {
	if OriginXiaonei.String() != "xiaonei" || OriginFiveQ.String() != "5q" || OriginNew.String() != "new" {
		t.Fatal("origin names wrong")
	}
	if Origin(9).String() == "" {
		t.Fatal("unknown origin must still print")
	}
}
