package trace

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// encodePrefixToFile streams events[:k] through the incremental Encoder
// with the given identity knobs and finalizes the file.
func encodePrefixToFile(t *testing.T, events []Event, seed int64, mergeDay int32, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc, err := NewEncoder(f)
	if err != nil {
		t.Fatal(err)
	}
	enc.SetSeed(seed)
	enc.SetMergeDay(mergeDay)
	for _, ev := range events {
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// appendToFile reopens path for append and writes events through Close.
func appendToFile(t *testing.T, events []Event, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc, err := OpenAppend(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestOpenAppendByteIdentical pins the central append guarantee: encoding
// a prefix, finalizing, reopening with OpenAppend and writing the rest
// yields a file byte-identical to streaming the whole trace at once —
// regardless of whether the split falls on a day boundary or inside a
// day.
func TestOpenAppendByteIdentical(t *testing.T) {
	tr := synthTrace(400)
	dir := t.TempDir()
	full := filepath.Join(dir, "full.trace")
	encodeToFile(t, tr, full)
	want := readAll(t, full)

	// A split on a day boundary, two mid-day splits, and the extremes.
	boundary := 0
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Day != tr.Events[i-1].Day {
			boundary = i
		}
		if tr.Events[i].Day > 50 {
			break
		}
	}
	splits := []int{1, 123, boundary, len(tr.Events) - 1}
	for _, k := range splits {
		path := filepath.Join(dir, "split.trace")
		encodePrefixToFile(t, tr.Events[:k], tr.Meta.Seed, tr.Meta.MergeDay, path)
		appendToFile(t, tr.Events[k:], path)
		if got := readAll(t, path); !equalBytes(got, want) {
			t.Fatalf("split at %d: appended file differs from one-shot stream (%d vs %d bytes)", k, len(got), len(want))
		}
	}
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOpenAppendWithoutFooter exercises the index-rebuild path: the
// footer is stripped (and trailing garbage planted), yet OpenAppend
// still locates the stream's end, truncates the junk, and the extended
// file comes out byte-identical.
func TestOpenAppendWithoutFooter(t *testing.T) {
	tr := synthTrace(400)
	dir := t.TempDir()
	full := filepath.Join(dir, "full.trace")
	encodeToFile(t, tr, full)
	want := readAll(t, full)

	k := 301
	path := filepath.Join(dir, "nofoot.trace")
	encodePrefixToFile(t, tr.Events[:k], tr.Meta.Seed, tr.Meta.MergeDay, path)

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, footOff := readDayIndexOff(f, maxEventCount)
	if footOff < 0 {
		t.Fatal("prefix file has no footer")
	}
	if err := f.Truncate(footOff); err != nil {
		t.Fatal(err)
	}
	// Trailing garbage past the declared events, as a crashed writer
	// might leave.
	if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe}, footOff); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	appendToFile(t, tr.Events[k:], path)
	if got := readAll(t, path); !equalBytes(got, want) {
		t.Fatalf("footerless append differs from one-shot stream (%d vs %d bytes)", len(got), len(want))
	}
}

// TestOpenAppendRefusals: one-shot Encode output (variable-width header)
// and a writer that never reached Close (poisoned count) are both
// rejected with ErrNotAppendable, untouched.
func TestOpenAppendRefusals(t *testing.T) {
	tr := synthTrace(40)
	dir := t.TempDir()

	oneShot := filepath.Join(dir, "oneshot.trace")
	f, err := os.Create(oneShot)
	if err != nil {
		t.Fatal(err)
	}
	if err := Encode(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	unclosed := filepath.Join(dir, "unclosed.trace")
	g, err := os.Create(unclosed)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.Events {
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil { // no enc.Close: header stays poisoned
		t.Fatal(err)
	}

	for _, path := range []string{oneShot, unclosed} {
		before := readAll(t, path)
		h, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, aerr := OpenAppend(h)
		h.Close()
		if !errors.Is(aerr, ErrNotAppendable) {
			t.Fatalf("%s: OpenAppend err = %v, want ErrNotAppendable", filepath.Base(path), aerr)
		}
		if after := readAll(t, path); !equalBytes(before, after) {
			t.Fatalf("%s: refused OpenAppend modified the file", filepath.Base(path))
		}
	}
}
