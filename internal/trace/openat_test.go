package trace

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// drainCursor reads every remaining event off a cursor.
func drainCursor(t *testing.T, cur Cursor) []Event {
	t.Helper()
	var out []Event
	for {
		ev, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// suffixFrom returns the events with Day >= day.
func suffixFrom(events []Event, day int32) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Day >= day {
			out = append(out, ev)
		}
	}
	return out
}

func sameEvents(t *testing.T, label string, got, want []Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: event %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestFileSourceOpenAt asserts the day-addressable data plane on an
// indexed trace file: OpenAt(day) yields exactly the events from that day
// on, and — the acceptance criterion — it does so without decoding the
// prefix, held by bytes-read accounting against the file size.
func TestFileSourceOpenAt(t *testing.T) {
	tr := synthTrace(400)
	path := filepath.Join(t.TempDir(), "idx.trace")
	encodeToFile(t, tr, path)
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Index() == nil {
		t.Fatal("Encoder-written file has no day index")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	lastDay := tr.Events[len(tr.Events)-1].Day
	for _, day := range []int32{0, 1, lastDay / 2, lastDay, lastDay + 5} {
		cur, err := fs.OpenAt(day)
		if err != nil {
			t.Fatal(err)
		}
		got := drainCursor(t, cur)
		want := suffixFrom(tr.Events, day)
		sameEvents(t, "OpenAt", got, want)
		read := cur.(*fileCursor).bytesRead()
		cur.Close()
		// The cursor may only read the tail segment (plus bufio slack);
		// a prefix decode would read nearly the whole file. Late opens
		// must therefore read a small fraction of it.
		if day >= lastDay && read > fi.Size()/4 {
			t.Errorf("OpenAt(%d) read %d of %d bytes; prefix was decoded", day, read, fi.Size())
		}
	}

	// Every index entry must point at a decodable event boundary.
	for _, e := range fs.Index() {
		cur, err := fs.OpenAt(e.Day)
		if err != nil {
			t.Fatal(err)
		}
		ev, ok, err := cur.Next()
		cur.Close()
		if err != nil || !ok || ev.Day != e.Day {
			t.Fatalf("index day %d: first event %+v ok=%v err=%v", e.Day, ev, ok, err)
		}
	}
}

// TestOpenAtIndexless covers the tolerated-if-absent contract: a file
// written by the one-shot Encode has no index footer, still decodes, and
// OpenAt falls back to decode-and-discard with identical results.
func TestOpenAtIndexless(t *testing.T) {
	tr := synthTrace(120)
	path := filepath.Join(t.TempDir(), "old.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Encode(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Index() != nil {
		t.Fatal("index-less file grew an index")
	}
	cur, err := fs.Open()
	if err != nil {
		t.Fatal(err)
	}
	sameEvents(t, "full", drainCursor(t, cur), tr.Events)
	cur.Close()

	day := tr.Events[len(tr.Events)-1].Day / 2
	cur, err = fs.OpenAt(day)
	if err != nil {
		t.Fatal(err)
	}
	sameEvents(t, "fallback", drainCursor(t, cur), suffixFrom(tr.Events, day))
	cur.Close()
}

// TestCorruptIndexReadsAsAbsent pins the footer's integrity contract: a
// damaged index must read as *absent* (falling back to prefix decode),
// never as a wrong seek target — OpenAt trusts an entry's event ordinal,
// so silent corruption would truncate a replay instead of failing it.
func TestCorruptIndexReadsAsAbsent(t *testing.T) {
	tr := synthTrace(200)
	path := filepath.Join(t.TempDir(), "c.trace")
	encodeToFile(t, tr, path)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	footerLen := int(binary.LittleEndian.Uint64(raw[len(raw)-indexTrailerLen : len(raw)-indexTrailerLen+8]))
	footerStart := len(raw) - indexTrailerLen - footerLen
	day := tr.Events[len(tr.Events)-1].Day / 2
	// Flip one byte at every position inside the footer block: each
	// corruption must be rejected by the checksum (or the structural
	// checks), and OpenAt must still serve the exact suffix via the
	// fallback path.
	for off := footerStart; off < footerStart+footerLen; off += 7 {
		mut := append([]byte{}, raw...)
		mut[off] ^= 0x41
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		fs, err := OpenFileSource(path)
		if err != nil {
			t.Fatalf("offset %d: corrupt index broke open: %v", off, err)
		}
		if fs.Index() != nil {
			t.Fatalf("offset %d: corrupt index accepted", off)
		}
		cur, err := fs.OpenAt(day)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		sameEvents(t, "corrupt-index fallback", drainCursor(t, cur), suffixFrom(tr.Events, day))
		cur.Close()
	}
}

// TestEventsThrough covers the checkpoint plane's consistency probe.
func TestEventsThrough(t *testing.T) {
	tr := synthTrace(120)
	path := filepath.Join(t.TempDir(), "n.trace")
	encodeToFile(t, tr, path)
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	lastDay := tr.Events[len(tr.Events)-1].Day
	for _, day := range []int32{0, 1, lastDay / 2, lastDay, lastDay + 9} {
		var want int64
		for _, ev := range tr.Events {
			if ev.Day <= day {
				want++
			}
		}
		for _, src := range []Source{fs, SliceSource(tr.Events), tr.Source()} {
			got, ok := EventsThrough(src, day)
			if !ok || got != want {
				t.Fatalf("EventsThrough(%T, %d) = %d,%v, want %d", src, day, got, ok, want)
			}
		}
	}
	if _, ok := EventsThrough(onlySource{SliceSource(tr.Events)}, 3); ok {
		t.Fatal("opaque source claimed a cheap event count")
	}
}

// TestSliceSourceOpenAt covers the in-memory DaySeeker.
func TestSliceSourceOpenAt(t *testing.T) {
	tr := synthTrace(60)
	src := SliceSource(tr.Events)
	for _, day := range []int32{0, 3, 10_000} {
		cur, err := OpenSourceAt(src, day)
		if err != nil {
			t.Fatal(err)
		}
		sameEvents(t, "slice", drainCursor(t, cur), suffixFrom(tr.Events, day))
		cur.Close()
	}
}

// onlySource hides every optional interface of a Source, forcing
// OpenSourceAt onto its generic skip path.
type onlySource struct{ src Source }

func (s onlySource) Open() (Cursor, error) { return s.src.Open() }

// TestOpenSourceAtFallback covers the generic decode-and-discard path for
// sources that are not DaySeekers.
func TestOpenSourceAtFallback(t *testing.T) {
	tr := synthTrace(60)
	day := tr.Events[len(tr.Events)-1].Day / 2
	cur, err := OpenSourceAt(onlySource{SliceSource(tr.Events)}, day)
	if err != nil {
		t.Fatal(err)
	}
	sameEvents(t, "generic", drainCursor(t, cur), suffixFrom(tr.Events, day))
	cur.Close()
}

// TestReplayFromDay asserts the segmented-replay contract the checkpoint
// plane relies on: replaying [0, D] into a state and then resuming the
// same source from D+1 fires exactly the day boundaries and events of a
// single whole-trace replay.
func TestReplayFromDay(t *testing.T) {
	tr := synthTrace(200)
	src := SliceSource(tr.Events)
	type mark struct {
		day   int32
		event bool
	}
	record := func(marks *[]mark) Hooks {
		return Hooks{
			OnEvent:  func(_ *State, ev Event) { *marks = append(*marks, mark{ev.Day, true}) },
			OnDayEnd: func(_ *State, day int32) { *marks = append(*marks, mark{day, false}) },
		}
	}

	var whole []mark
	full, err := ReplaySource(src, record(&whole))
	if err != nil {
		t.Fatal(err)
	}

	lastDay := tr.Events[len(tr.Events)-1].Day
	for _, split := range []int32{0, 1, lastDay / 3, lastDay - 1, lastDay} {
		var seg []mark
		st := NewState(16, 16)
		// First segment: replay events with Day <= split, then fire the
		// boundary for split itself, exactly as a checkpointing engine
		// pass does before saving.
		k := NewSinkContext(nil, st, record(&seg))
		for _, ev := range tr.Events {
			if ev.Day > split {
				break
			}
			if err := k.Push(ev); err != nil {
				t.Fatal(err)
			}
		}
		for k.day <= split {
			if k.hooks.OnDayEnd != nil {
				k.hooks.OnDayEnd(k.st, k.day)
			}
			k.day++
		}
		// Second segment: resume from split+1.
		if err := ReplaySourceIntoFromContext(nil, st, src, record(&seg), split+1); err != nil {
			t.Fatal(err)
		}
		if len(seg) != len(whole) {
			t.Fatalf("split %d: %d marks, want %d", split, len(seg), len(whole))
		}
		for i := range seg {
			if seg[i] != whole[i] {
				t.Fatalf("split %d: mark %d = %+v, want %+v", split, i, seg[i], whole[i])
			}
		}
		if st.Day != full.Day || st.Graph.NumNodes() != full.Graph.NumNodes() || st.Graph.NumEdges() != full.Graph.NumEdges() {
			t.Fatalf("split %d: state diverged", split)
		}
	}
}
