package trace

import (
	"container/list"
	"sync"
)

// The inflated-frame cache keeps recently decompressed segment frames in
// memory, keyed by (file identity, frame file offset). Re-opening a
// segmented trace — the δ-sweep's per-pass reference replays, OpenAt
// resumes, rrserved's refresh re-opens — used to re-run flate over the
// same frames every time; with the cache, a frame is inflated once and
// every later cursor over the same bytes serves it from memory, skipping
// the disk fetch, the CRC pass, and the inflate.
//
// File identity is the path plus the container's size and event count,
// so a file that was rewritten or appended in place (the live-ingest
// tail) gets a fresh identity and the old entries simply age out of the
// LRU — there is no explicit invalidation protocol to get wrong.
// Backend- and memory-backed blobs are served uncached: their bytes
// carry no process-stable identity, and a collision would hand a cursor
// another container's (CRC-valid, already inflated) frame.
//
// Cached frames are shared read-only across cursors: every consumer
// wraps them in a bytes.Reader and never writes through the slice.

// frameCacheKey identifies one frame of one immutable container.
type frameCacheKey struct {
	blob string // cache identity of the container (see segBlob identity above)
	off  int64  // frame's byte offset in the container
}

type frameCacheEntry struct {
	key frameCacheKey
	raw []byte
}

// FrameCacheStats is a snapshot of the cache's counters, surfaced by the
// /statz "memory" section and asserted on by the repeat-open benchmarks.
type FrameCacheStats struct {
	// Hits and Misses count frame lookups (misses include lookups while
	// the cache is disabled).
	Hits   uint64
	Misses uint64
	// HitBytes is the total raw (inflated) size of frames served from
	// cache; InflatedBytes the raw size actually decompressed — the
	// figure the cache exists to shrink.
	HitBytes      uint64
	InflatedBytes uint64
	// Bytes/Entries/Capacity describe current residency.
	Bytes    int64
	Entries  int
	Capacity int64
	// Evictions counts entries dropped to make room.
	Evictions uint64
}

type frameCache struct {
	mu      sync.Mutex
	cap     int64
	bytes   int64
	ll      *list.List // *frameCacheEntry; front = most recently used
	m       map[frameCacheKey]*list.Element
	stats   FrameCacheStats
	statsMu sync.Mutex // counters updated outside mu on the disabled path
}

// DefaultFrameCacheBytes is the process-wide inflated-frame budget. At
// the default ~1 MiB raw frame size this holds the hot tail of a
// multi-gigabyte trace; SetFrameCacheCapacity tunes or disables it.
const DefaultFrameCacheBytes = 64 << 20

var segFrameCache = newFrameCache(DefaultFrameCacheBytes)

func newFrameCache(capBytes int64) *frameCache {
	return &frameCache{cap: capBytes, ll: list.New(), m: map[frameCacheKey]*list.Element{}}
}

// SetFrameCacheCapacity resizes the process-wide inflated-frame cache.
// capBytes <= 0 disables caching and drops all entries immediately.
func SetFrameCacheCapacity(capBytes int64) {
	segFrameCache.setCapacity(capBytes)
}

// ReadFrameCacheStats returns a snapshot of the cache counters.
func ReadFrameCacheStats() FrameCacheStats {
	return segFrameCache.snapshot()
}

func (c *frameCache) setCapacity(capBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capBytes
	c.evictLocked()
}

func (c *frameCache) snapshot() FrameCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.statsMu.Lock()
	s := c.stats
	c.statsMu.Unlock()
	s.Bytes = c.bytes
	s.Entries = c.ll.Len()
	s.Capacity = c.cap
	return s
}

// countMiss records a lookup that will inflate rawLen bytes for real.
func (c *frameCache) countMiss(rawLen int64) {
	c.statsMu.Lock()
	c.stats.Misses++
	c.stats.InflatedBytes += uint64(rawLen)
	c.statsMu.Unlock()
}

// get returns the cached raw bytes for key, promoting the entry.
func (c *frameCache) get(key frameCacheKey) ([]byte, bool) {
	if key.blob == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*frameCacheEntry)
	c.statsMu.Lock()
	c.stats.Hits++
	c.stats.HitBytes += uint64(len(e.raw))
	c.statsMu.Unlock()
	return e.raw, true
}

// put inserts raw under key, taking ownership of the slice. Frames
// larger than the whole budget are not cached.
func (c *frameCache) put(key frameCacheKey, raw []byte) {
	if key.blob == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 || int64(len(raw)) > c.cap {
		return
	}
	if el, ok := c.m[key]; ok {
		// Another cursor raced the same frame in; keep the resident copy.
		c.ll.MoveToFront(el)
		return
	}
	e := &frameCacheEntry{key: key, raw: raw}
	c.m[key] = c.ll.PushFront(e)
	c.bytes += int64(len(raw))
	c.evictLocked()
}

func (c *frameCache) evictLocked() {
	for c.bytes > c.cap {
		el := c.ll.Back()
		if el == nil {
			return
		}
		e := el.Value.(*frameCacheEntry)
		c.ll.Remove(el)
		delete(c.m, e.key)
		c.bytes -= int64(len(e.raw))
		c.statsMu.Lock()
		c.stats.Evictions++
		c.statsMu.Unlock()
	}
}
