package trace

import (
	"errors"
	"path/filepath"
	"testing"
)

// gapTrace builds a trace whose events cluster on sparse days (gaps of
// empty days in between), to pin the prefetch hand-off at day boundaries
// including empty-day day-end hooks.
func gapTrace() *Trace {
	days := []int32{0, 1, 5, 6, 6, 12, 13, 13, 13, 20}
	events := make([]Event, 0, 2*len(days))
	for i, d := range days {
		events = append(events, Event{Kind: AddNode, Day: d, U: int32(i)})
		if i > 0 {
			events = append(events, Event{Kind: AddEdge, Day: d, U: int32(i - 1), V: int32(i)})
		}
	}
	tr := &Trace{Events: events}
	tr.Meta = Summarize(events)
	return tr
}

// hookLog records the exact callback sequence of one replay pass.
type hookLog struct {
	kinds []string // "ev" or "day"
	evs   []Event
	days  []int32
}

func (l *hookLog) hooks() Hooks {
	return Hooks{
		OnEvent: func(_ *State, ev Event) {
			l.kinds = append(l.kinds, "ev")
			l.evs = append(l.evs, ev)
		},
		OnDayEnd: func(_ *State, day int32) {
			l.kinds = append(l.kinds, "day")
			l.days = append(l.days, day)
		},
	}
}

func sameLog(t *testing.T, label string, got, want *hookLog) {
	t.Helper()
	if len(got.kinds) != len(want.kinds) {
		t.Fatalf("%s: %d callbacks, want %d", label, len(got.kinds), len(want.kinds))
	}
	for i := range got.kinds {
		if got.kinds[i] != want.kinds[i] {
			t.Fatalf("%s: callback %d is %s, want %s", label, i, got.kinds[i], want.kinds[i])
		}
	}
	sameEvents(t, label, got.evs, want.evs)
	for i := range got.days {
		if got.days[i] != want.days[i] {
			t.Fatalf("%s: day-end %d fired for day %d, want %d", label, i, got.days[i], want.days[i])
		}
	}
}

// TestPrefetchMatchesSequential holds the prefetched pass to the exact
// event and day-boundary sequence of the direct pass, over a trace with
// empty-day gaps.
func TestPrefetchMatchesSequential(t *testing.T) {
	tr := gapTrace()
	path := filepath.Join(t.TempDir(), "gap.trace")
	encodeToFile(t, tr, path)
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}

	var seq, pre hookLog
	if _, err := ReplaySource(fs, seq.hooks()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplaySource(Prefetch(fs), pre.hooks()); err != nil {
		t.Fatal(err)
	}
	sameLog(t, "prefetch replay", &pre, &seq)
}

// TestPrefetchBatchCapSplit drains a single day denser than the batch
// cap, so one day is handed off in multiple slices.
func TestPrefetchBatchCapSplit(t *testing.T) {
	n := prefetchBatchCap + prefetchBatchCap/2
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		events = append(events, Event{Kind: AddNode, Day: 3, U: int32(i)})
	}
	tr := &Trace{Events: events}
	tr.Meta = Summarize(events)
	path := filepath.Join(t.TempDir(), "dense.trace")
	encodeToFile(t, tr, path)
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, Prefetch(fs))
	sameEvents(t, "dense day", got, events)
}

// TestPrefetchOpenAt asserts the wrapper's DaySeeker path: OpenAt(day)
// yields exactly the suffix from that day, like the inner source.
func TestPrefetchOpenAt(t *testing.T) {
	tr := synthTrace(200)
	path := filepath.Join(t.TempDir(), "idx.trace")
	encodeToFile(t, tr, path)
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	src := Prefetch(fs)
	ds, ok := src.(DaySeeker)
	if !ok {
		t.Fatal("Prefetch of a file source should implement DaySeeker")
	}
	lastDay := tr.Events[len(tr.Events)-1].Day
	for _, day := range []int32{0, 1, lastDay / 2, lastDay, lastDay + 3} {
		cur, err := ds.OpenAt(day)
		if err != nil {
			t.Fatal(err)
		}
		got := drainCursor(t, cur)
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		sameEvents(t, "prefetch OpenAt", got, suffixFrom(tr.Events, day))
	}
}

// TestPrefetchInMemoryBypass: in-memory sources are returned unchanged —
// there is no decode cost to hide.
func TestPrefetchInMemoryBypass(t *testing.T) {
	tr := gapTrace()
	if src := Prefetch(SliceSource(tr.Events)); src == nil {
		t.Fatal("nil source")
	} else if _, ok := src.(SliceSource); !ok {
		t.Fatalf("Prefetch(SliceSource) = %T, want SliceSource", src)
	}
	if src := Prefetch(tr.Source()); src == nil {
		t.Fatal("nil source")
	} else if _, ok := src.(TraceSource); !ok {
		t.Fatalf("Prefetch(TraceSource) = %T, want TraceSource", src)
	}
}

// faultSource yields a fixed prefix of events and then fails, tracking
// whether (and how often) its cursors are closed.
type faultSource struct {
	events []Event
	failAt int // cursor position at which Next errors; -1 never
	closed int
}

var errFault = errors.New("synthetic decode fault")

func (s *faultSource) Open() (Cursor, error) { return &faultCursor{src: s}, nil }

type faultCursor struct {
	src *faultSource
	i   int
}

func (c *faultCursor) Next() (Event, bool, error) {
	if c.src.failAt >= 0 && c.i == c.src.failAt {
		return Event{}, false, errFault
	}
	if c.i >= len(c.src.events) {
		return Event{}, false, nil
	}
	ev := c.src.events[c.i]
	c.i++
	return ev, true, nil
}

func (c *faultCursor) Close() error {
	c.src.closed++
	return nil
}

// TestPrefetchErrorPosition pins error timing: a decode error surfaces
// after exactly the events that preceded it — including when the error
// lands mid-day, so the preceding partial day is still delivered.
func TestPrefetchErrorPosition(t *testing.T) {
	tr := gapTrace()
	for _, failAt := range []int{0, 1, 5, len(tr.Events)} {
		src := &faultSource{events: tr.Events, failAt: failAt}
		cur, err := Prefetch(src).Open()
		if err != nil {
			t.Fatal(err)
		}
		var got []Event
		for {
			ev, ok, err := cur.Next()
			if err != nil {
				if !errors.Is(err, errFault) {
					t.Fatalf("failAt=%d: error %v, want errFault", failAt, err)
				}
				break
			}
			if !ok {
				t.Fatalf("failAt=%d: clean EOF, want errFault", failAt)
			}
			got = append(got, ev)
		}
		// The error must stay latched on further Next calls.
		if _, _, err := cur.Next(); !errors.Is(err, errFault) {
			t.Fatalf("failAt=%d: error not latched: %v", failAt, err)
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		sameEvents(t, "prefix before fault", got, tr.Events[:failAt])
		if src.closed != 1 {
			t.Fatalf("failAt=%d: inner cursor closed %d times, want 1", failAt, src.closed)
		}
	}
}

// TestPrefetchCloseMidStream closes the consumer cursor while the reader
// still has events queued: Close must not deadlock, must close the inner
// cursor exactly once, and must return its Close error.
func TestPrefetchCloseMidStream(t *testing.T) {
	events := make([]Event, 0, 4*prefetchBatchCap)
	for i := 0; i < cap(events); i++ {
		events = append(events, Event{Kind: AddNode, Day: int32(i / 100), U: int32(i)})
	}
	src := &faultSource{events: events, failAt: -1}
	cur, err := Prefetch(src).Open()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := cur.Next(); err != nil || !ok {
			t.Fatalf("Next %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if src.closed != 1 {
		t.Fatalf("inner cursor closed %d times, want 1", src.closed)
	}
}
