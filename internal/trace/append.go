package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrNotAppendable is returned by OpenAppend for files that cannot be
// extended in place: one-shot Encode output (variable-width header, no
// room to back-patch) or files whose writer never reached Close (the
// poisoned count slot means the event stream's extent is unknown).
var ErrNotAppendable = errors.New("trace: file is not appendable")

// fixedHeaderLen is the streaming Encoder's header size: magic, the
// 2-byte uvarint of encMetaPad, the padded meta slot, the padded count.
const fixedHeaderLen = len(magic) + 2 + encMetaPad + encCountPad

// parseFixedHeader decodes the streaming Encoder's fixed-width header
// from hdr. It rejects the one-shot Encode layout (whose meta length is
// the JSON's exact size, not encMetaPad) and a poisoned count slot.
func parseFixedHeader(hdr []byte) (meta Meta, count uint64, err error) {
	if len(hdr) < fixedHeaderLen {
		return meta, 0, fmt.Errorf("%w: %d-byte file is shorter than a finalized header", ErrNotAppendable, len(hdr))
	}
	if [4]byte(hdr[:4]) != magic {
		return meta, 0, ErrBadMagic
	}
	metaLen, n := binary.Uvarint(hdr[4:])
	if n <= 0 || metaLen != encMetaPad {
		return meta, 0, fmt.Errorf("%w: header meta slot is not the fixed-width encoder layout", ErrNotAppendable)
	}
	metaStart := 4 + n
	if err := json.Unmarshal(bytes.TrimRight(hdr[metaStart:metaStart+encMetaPad], " "), &meta); err != nil {
		return meta, 0, fmt.Errorf("trace: bad meta: %w", err)
	}
	count, err = binary.ReadUvarint(bytes.NewReader(hdr[metaStart+encMetaPad : fixedHeaderLen]))
	if err != nil {
		return meta, 0, fmt.Errorf("%w: count slot is not finalized (writer crashed before Close?)", ErrNotAppendable)
	}
	if count > maxEventCount {
		return meta, 0, fmt.Errorf("%w: %d events", ErrCountTooLarge, count)
	}
	return meta, count, nil
}

// OpenAppend reopens a finalized streaming-Encoder file for in-place
// extension and returns an Encoder positioned after its last event: the
// index footer is truncated away, the day index and meta counters are
// restored, and subsequent Write/Close calls behave exactly as if the
// original encoder had never closed — appending days D..D+k to a trace
// and generating the full trace from scratch produce byte-identical
// files.
//
// f must be open read-write. While an append is in progress the header
// on disk still holds the pre-append meta and count, so a concurrent
// reader sees the original (shorter) trace; the TailProbe sees further,
// up to the last sealed day. Close back-patches the header and re-appends
// the footer, finalizing the extended file.
//
// If the footer is missing or damaged the event stream is decoded once
// to rebuild the index and locate its end; any trailing garbage past the
// declared events is truncated.
func OpenAppend(f *os.File) (*Encoder, error) {
	hdr := make([]byte, fixedHeaderLen)
	if _, err := io.ReadAtLeast(f, hdr, fixedHeaderLen); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrNotAppendable, err)
	}
	if [4]byte(hdr[:4]) == segMagic {
		return nil, fmt.Errorf("%w: segmented (compressed) traces cannot be extended in place; regenerate, or write a fresh segmented trace and tail it", ErrNotAppendable)
	}
	meta, count, err := parseFixedHeader(hdr)
	if err != nil {
		return nil, err
	}

	idx, eventsEnd := readDayIndexOff(f, count)
	prevDay := int32(0)
	if idx != nil {
		// The index's last entry marks the first event of the final day;
		// every event after it shares that day.
		if len(idx) > 0 {
			prevDay = idx[len(idx)-1].Day
		}
	} else {
		// No (valid) footer: one decode pass rebuilds the index and finds
		// the stream's end.
		if _, err := f.Seek(int64(fixedHeaderLen), io.SeekStart); err != nil {
			return nil, err
		}
		cr := &countingReader{r: f}
		br := bufio.NewReader(cr)
		dec := resumeDecoder(br, meta, count, 0)
		off := int64(fixedHeaderLen)
		var n uint64
		for {
			ev, ok, err := dec.Next()
			if err != nil {
				return nil, fmt.Errorf("%w: rebuilding index: %v", ErrNotAppendable, err)
			}
			if !ok {
				break
			}
			if n == 0 || ev.Day > prevDay {
				idx = append(idx, DayIndexEntry{Day: ev.Day, Offset: off, Event: n, PrevDay: prevDay})
			}
			off = int64(fixedHeaderLen) + cr.n - int64(br.Buffered())
			prevDay = ev.Day
			n++
		}
		eventsEnd = off
	}

	if eventsEnd < int64(fixedHeaderLen) {
		return nil, fmt.Errorf("%w: event stream ends inside the header", ErrNotAppendable)
	}
	if err := f.Truncate(eventsEnd); err != nil {
		return nil, err
	}
	if _, err := f.Seek(eventsEnd, io.SeekStart); err != nil {
		return nil, err
	}
	return &Encoder{
		ws:      f,
		bw:      bufio.NewWriterSize(f, 1<<16),
		meta:    meta,
		count:   count,
		prevDay: prevDay,
		offset:  eventsEnd,
		index:   idx,
	}, nil
}
