package trace

import (
	"reflect"
	"testing"
)

// dispatcherTrace has a three-day gap (days 1–3 empty) and a trailing
// same-day edge, to exercise empty-day delivery.
func dispatcherTrace() []Event {
	return []Event{
		{Kind: AddNode, Day: 0, U: 0},
		{Kind: AddNode, Day: 0, U: 1},
		{Kind: AddNode, Day: 4, U: 2},
		{Kind: AddEdge, Day: 4, U: 0, V: 1},
		{Kind: AddEdge, Day: 6, U: 1, V: 2},
	}
}

func TestDispatcherFansOutToAllSubscribers(t *testing.T) {
	d := &Dispatcher{}
	type seen struct {
		events []Event
		days   []int32
	}
	subs := make([]seen, 3)
	for i := range subs {
		i := i
		d.Subscribe(Hooks{
			OnEvent:  func(st *State, ev Event) { subs[i].events = append(subs[i].events, ev) },
			OnDayEnd: func(st *State, day int32) { subs[i].days = append(subs[i].days, day) },
		})
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	st, err := d.Replay(dispatcherTrace())
	if err != nil {
		t.Fatal(err)
	}
	if st.Graph.NumNodes() != 3 || st.Graph.NumEdges() != 2 {
		t.Fatalf("state: %d nodes %d edges", st.Graph.NumNodes(), st.Graph.NumEdges())
	}
	wantDays := []int32{0, 1, 2, 3, 4, 5, 6}
	for i, s := range subs {
		if !reflect.DeepEqual(s.events, dispatcherTrace()) {
			t.Errorf("subscriber %d: events = %v", i, s.events)
		}
		if !reflect.DeepEqual(s.days, wantDays) {
			t.Errorf("subscriber %d: day ends = %v, want %v (empty days must fire)", i, s.days, wantDays)
		}
	}
}

func TestDispatcherPartialSubscribers(t *testing.T) {
	d := &Dispatcher{}
	var events, days int
	d.Subscribe(Hooks{OnEvent: func(st *State, ev Event) { events++ }})
	d.Subscribe(Hooks{OnDayEnd: func(st *State, day int32) { days++ }})
	d.Subscribe(Hooks{}) // fully nil subscriber must be tolerated
	if _, err := d.Replay(dispatcherTrace()); err != nil {
		t.Fatal(err)
	}
	if events != 5 || days != 7 {
		t.Fatalf("events = %d, day ends = %d", events, days)
	}
}

func TestDispatcherSubscriptionOrder(t *testing.T) {
	d := &Dispatcher{}
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		d.Subscribe(Hooks{OnDayEnd: func(st *State, day int32) {
			if day == 0 {
				order = append(order, i)
			}
		}})
	}
	if _, err := d.Replay(dispatcherTrace()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Fatalf("dispatch order = %v", order)
	}
}

func TestOnReplayPassHookCounts(t *testing.T) {
	prev := OnReplayPass
	defer func() { OnReplayPass = prev }()
	var passes int
	OnReplayPass = func() { passes++ }
	if _, err := Replay(dispatcherTrace(), Hooks{}); err != nil {
		t.Fatal(err)
	}
	st := NewState(4, 4)
	if err := ReplayInto(st, dispatcherTrace(), Hooks{}); err != nil {
		t.Fatal(err)
	}
	if passes != 2 {
		t.Fatalf("passes = %d, want 2", passes)
	}
}
