package trace

import (
	"context"
	"errors"
	"testing"
)

// TestReplayContextCancel asserts a cancelled context aborts the pass at
// the next day boundary with context.Canceled: the day-end hook for the
// boundary after the cancellation never fires.
func TestReplayContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var days []int32
	st := NewState(8, 8)
	err := ReplaySourceIntoContext(ctx, st, SliceSource(tinyTrace()), Hooks{
		OnDayEnd: func(_ *State, day int32) {
			days = append(days, day)
			if day == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Days 0 and 1 fired; the cancel lands before day 2's boundary.
	if len(days) != 2 || days[1] != 1 {
		t.Fatalf("day-end fired for %v, want [0 1]", days)
	}
	// A nil context must keep the uncancellable fast path intact.
	if err := ReplaySourceIntoContext(nil, NewState(8, 8), SliceSource(tinyTrace()), Hooks{}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayBuildsState(t *testing.T) {
	st, err := Replay(tinyTrace(), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Graph.NumNodes() != 3 || st.Graph.NumEdges() != 3 {
		t.Fatalf("n=%d e=%d", st.Graph.NumNodes(), st.Graph.NumEdges())
	}
	if st.JoinDay[0] != 0 || st.JoinDay[2] != 1 {
		t.Fatalf("join days %v", st.JoinDay)
	}
	if st.Origin[2] != OriginFiveQ {
		t.Fatalf("origin[2] = %v", st.Origin[2])
	}
	if st.NodeAge(2, 5) != 4 {
		t.Fatalf("NodeAge = %d", st.NodeAge(2, 5))
	}
}

func TestReplayDayBoundaries(t *testing.T) {
	var days []int32
	var edgeCountAtDay []int64
	_, err := Replay(tinyTrace(), Hooks{
		OnDayEnd: func(st *State, day int32) {
			days = append(days, day)
			edgeCountAtDay = append(edgeCountAtDay, st.Graph.NumEdges())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Events span days 0..3; boundaries must fire for 0,1,2,3 exactly once.
	want := []int32{0, 1, 2, 3}
	if len(days) != len(want) {
		t.Fatalf("days = %v", days)
	}
	for i := range want {
		if days[i] != want[i] {
			t.Fatalf("days = %v, want %v", days, want)
		}
	}
	// Day 0 ends with 1 edge, day 1 and the empty day 2 with 2, day 3 with 3.
	wantEdges := []int64{1, 2, 2, 3}
	for i := range wantEdges {
		if edgeCountAtDay[i] != wantEdges[i] {
			t.Fatalf("edges at day ends = %v, want %v", edgeCountAtDay, wantEdges)
		}
	}
}

func TestReplayOnEvent(t *testing.T) {
	var kinds []Kind
	_, err := Replay(tinyTrace(), Hooks{
		OnEvent: func(st *State, ev Event) { kinds = append(kinds, ev.Kind) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 6 {
		t.Fatalf("saw %d events", len(kinds))
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	fired := false
	st, err := Replay(nil, Hooks{OnDayEnd: func(*State, int32) { fired = true }})
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("no day hooks for empty trace")
	}
	if st.Graph.NumNodes() != 0 {
		t.Fatal("state must be empty")
	}
}

func TestReplayStopsOnBadEdge(t *testing.T) {
	bad := []Event{
		{Kind: AddNode, Day: 0, U: 0},
		{Kind: AddEdge, Day: 0, U: 0, V: 0},
	}
	if _, err := Replay(bad, Hooks{}); err == nil {
		t.Fatal("want error on self-loop application")
	}
}

func TestReplayIntoSegmented(t *testing.T) {
	evs := tinyTrace()
	st := NewState(0, 0)
	if err := ReplayInto(st, evs[:3], Hooks{}); err != nil {
		t.Fatal(err)
	}
	if err := ReplayInto(st, evs[3:], Hooks{}); err != nil {
		t.Fatal(err)
	}
	if st.Graph.NumEdges() != 3 || st.Graph.NumNodes() != 3 {
		t.Fatalf("segmented replay wrong: n=%d e=%d", st.Graph.NumNodes(), st.Graph.NumEdges())
	}
}
