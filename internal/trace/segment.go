package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/storage"
)

// Segmented (compressed) trace format, magic "RRS1":
//
//	fixed header — identical layout to the flat streaming Encoder's
//	(magic, uvarint(encMetaPad), space-padded meta slot, padded-uvarint
//	count), so the same back-patch-on-Close discipline applies and a
//	crashed writer's file fails loudly instead of passing as empty.
//
//	then a run of frames, each:
//	  magic "RRSG" (4 bytes)
//	  uint32 LE compressed length, raw length, event count
//	  uint32 LE first day, last day, previous-day watermark
//	  uint32 LE CRC-32 (IEEE) of the compressed payload
//	  compressed payload: the frame's events in the columnar transposed
//	  layout (transposeFrame), flate-compressed. The *raw* form of a
//	  frame is still the exact appendEvent byte stream the flat format
//	  uses, with the day-delta watermark running *continuously across
//	  frames* — concatenating every frame's decoded raw bytes yields
//	  precisely the flat file's event stream, and all offsets in the
//	  frame header, footer and day index are raw-stream coordinates.
//
//	footer, magic "RRX2" (see appendSegFooter), then the same fixed
//	trailer the flat day-index footer uses (uint64 LE footer length +
//	"RRXE"), so one trailer-discovery routine serves both formats.
//
// Frames are cut at day boundaries once ~1 MiB of raw bytes is pending
// (or mid-day at a hard cap / on Flush), so a day-addressable read
// decompresses only the frames its days live in: the footer's segment
// table plus the embedded day index map a day to (segment, raw offset)
// without touching the prefix. Compression is stdlib flate at BestSpeed
// over the transposed columns: the container must not grow a dependency
// (DESIGN.md §10), and flate alone on the row-interleaved stream tops
// out near 68% of flat — grouping like fields into runs (kinds, day
// deltas, delta-coded ids) is what gets the container under the ≤60%
// acceptance bar while keeping decode cheap.
//
// Each completed frame is written with a single Write call, so a tail
// prober watching the file observes only whole frames (or a torn tail it
// can wait out) — that is what lets TailProbe seal days out of a live
// compressed writer without ever seeing a half-compressed block.

var (
	segMagic       = [4]byte{'R', 'R', 'S', '1'}
	segFrameMagic  = [4]byte{'R', 'R', 'S', 'G'}
	segFooterMagic = [4]byte{'R', 'R', 'X', '2'}
)

const (
	segFooterVersion = 1
	// segFrameHdrLen is the fixed frame header: magic + 7 uint32 fields.
	segFrameHdrLen = 4 + 7*4
	// segTargetRaw is the raw-byte threshold past which the encoder cuts
	// the pending frame at the next day boundary.
	segTargetRaw = 1 << 20
	// segMaxRaw force-cuts a frame mid-day, bounding encoder memory and
	// frame size when a single day exceeds the target many times over.
	segMaxRaw = 8 << 20
	// maxSegFrameLen bounds the lengths a frame or footer entry may
	// declare before any allocation trusts them.
	maxSegFrameLen = 1 << 30
)

var (
	// ErrSegmentCorrupt is returned when a segment frame fails its
	// checksum or its payload contradicts the frame header. The wrapped
	// message carries the segment ordinal and file byte offset.
	ErrSegmentCorrupt = errors.New("trace: segment corrupt")
	// ErrNotFinalized is returned when opening a segmented trace whose
	// writer never reached Close (poisoned count slot, or frames beyond
	// what the header accounts for).
	ErrNotFinalized = errors.New("trace: segmented trace is not finalized")
)

// segEntry is one frame's position in both address spaces: the file
// (where its compressed bytes live) and the raw event stream (what it
// decompresses to). The raw coordinates are what the day index points
// into.
type segEntry struct {
	fileOff    int64 // file offset of the frame header
	compLen    int64
	rawLen     int64
	rawStart   int64  // raw-stream offset of the frame's first byte
	events     uint64 // events encoded in this frame
	firstEvent uint64 // ordinal of the frame's first event
	firstDay   int32
	lastDay    int32
	prevDay    int32 // day-delta watermark before the frame's first event
}

func (s segEntry) fileEnd() int64 { return s.fileOff + segFrameHdrLen + s.compLen }
func (s segEntry) rawEnd() int64  { return s.rawStart + s.rawLen }

// SegEncoder is the segmented counterpart of Encoder: the same
// incremental Write/Flush/Close surface, producing the compressed
// container. The header is written lazily on the first frame so
// SetSeed/SetMergeDay calls made before any event (the generator's
// pattern) are visible to a concurrent TailProbe from the start.
type SegEncoder struct {
	ws      io.WriteSeeker
	meta    Meta
	count   uint64
	prevDay int32
	closed  bool
	started bool // header written

	raw             []byte // pending uncompressed frame
	rawStart        int64  // raw-stream offset of raw[0]
	frameFirstEvent uint64
	frameFirstDay   int32
	framePrevDay    int32

	fileOff int64 // file offset where the next frame goes
	segs    []segEntry
	index   []DayIndexEntry // Offset fields are raw-stream offsets
	comp    *flate.Writer
	compBuf bytes.Buffer
	scratch []byte
}

// NewSegEncoder returns a segmented-trace sink writing to ws. Like
// NewEncoder, the header's count slot stays poisoned until Close, and
// closing the underlying file is the caller's job.
func NewSegEncoder(ws io.WriteSeeker) (*SegEncoder, error) {
	cw, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	e := &SegEncoder{ws: ws, comp: cw}
	e.meta.MergeDay = -1
	return e, nil
}

// SetSeed records the generator seed in the header meta.
func (e *SegEncoder) SetSeed(seed int64) { e.meta.Seed = seed }

// SetMergeDay records the merge day in the header meta (-1 for none).
func (e *SegEncoder) SetMergeDay(day int32) { e.meta.MergeDay = day }

// Meta returns the counters accumulated so far.
func (e *SegEncoder) Meta() Meta { return e.meta }

// Events returns how many events have been written.
func (e *SegEncoder) Events() uint64 { return e.count }

// ensureHeader writes the poisoned fixed header once, before the first
// frame (or the footer of an event-free trace).
func (e *SegEncoder) ensureHeader() error {
	if e.started {
		return nil
	}
	hdr, err := renderFixedHeader(segMagic, e.meta, 0, true)
	if err != nil {
		return err
	}
	if _, err := e.ws.Write(hdr); err != nil {
		return err
	}
	e.started = true
	e.fileOff = int64(len(hdr))
	return nil
}

// Write appends one event; events must arrive in non-decreasing day
// order, exactly as for the flat Encoder.
func (e *SegEncoder) Write(ev Event) error {
	if e.closed {
		return errors.New("trace: encoder is closed")
	}
	scratch, err := appendEvent(e.scratch[:0], ev, e.prevDay)
	if err != nil {
		return fmt.Errorf("trace: event %d: %w", e.count, err)
	}
	e.scratch = scratch
	if e.count == 0 || ev.Day > e.prevDay {
		// Day boundary: preferred frame cut point, and a day-index entry
		// (in raw-stream coordinates) either way.
		if int64(len(e.raw)) >= segTargetRaw {
			if err := e.cutFrame(); err != nil {
				return err
			}
		}
		e.index = append(e.index, DayIndexEntry{
			Day: ev.Day, Offset: e.rawStart + int64(len(e.raw)), Event: e.count, PrevDay: e.prevDay,
		})
	}
	if len(e.raw) == 0 {
		e.frameFirstEvent = e.count
		e.framePrevDay = e.prevDay
		e.frameFirstDay = ev.Day
	}
	e.raw = append(e.raw, scratch...)
	e.prevDay = ev.Day
	e.meta.Accumulate(ev)
	e.count++
	if int64(len(e.raw)) >= segMaxRaw {
		return e.cutFrame()
	}
	return nil
}

// transposeFrame re-encodes one frame's raw appendEvent byte run into
// the columnar layout that gets flate-compressed: a uvarint event
// count, then the per-event fields grouped into column runs —
//
//	kind bytes           (count bytes)
//	day-delta uvarints   (one per event, same values as the raw stream)
//	AddNode ids          (signed varint delta from the previous AddNode id)
//	origin bytes         (one per AddNode)
//	AddEdge U endpoints  (signed varint delta from the previous U)
//	AddEdge V endpoints  (uvarints, same encoding as the raw stream)
//
// Grouping like fields is what makes flate earn its keep: the kind and
// day columns collapse into near-constant runs and sequentially
// assigned node ids into runs of tiny deltas. The transform is exactly
// invertible because appendEvent is the canonical encoder —
// untransposeFrame re-renders the input byte-for-byte.
func transposeFrame(raw []byte) ([]byte, error) {
	var (
		count                uint64
		kinds, days, origins []byte
		ids, us, vs          []byte
		prevID, prevU        int64
	)
	b := raw
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, false
		}
		b = b[n:]
		return v, true
	}
	for len(b) > 0 {
		kind := b[0]
		b = b[1:]
		d, ok := uv()
		if !ok {
			return nil, ErrTruncated
		}
		switch Kind(kind) {
		case AddNode:
			id, ok := uv()
			if !ok || len(b) == 0 {
				return nil, ErrTruncated
			}
			ids = binary.AppendVarint(ids, int64(id)-prevID)
			prevID = int64(id)
			origins = append(origins, b[0])
			b = b[1:]
		case AddEdge:
			u, ok := uv()
			if !ok {
				return nil, ErrTruncated
			}
			v, ok := uv()
			if !ok {
				return nil, ErrTruncated
			}
			us = binary.AppendVarint(us, int64(u)-prevU)
			prevU = int64(u)
			vs = binary.AppendUvarint(vs, v)
		default:
			return nil, ErrBadKind
		}
		kinds = append(kinds, kind)
		days = binary.AppendUvarint(days, d)
		count++
	}
	out := make([]byte, 0, binary.MaxVarintLen64+len(kinds)+len(days)+len(ids)+len(origins)+len(us)+len(vs))
	out = binary.AppendUvarint(out, count)
	out = append(out, kinds...)
	out = append(out, days...)
	out = append(out, ids...)
	out = append(out, origins...)
	out = append(out, us...)
	out = append(out, vs...)
	return out, nil
}

// untransposeFrame inverts transposeFrame, re-rendering the exact raw
// appendEvent byte run via the canonical encoder. prevDay is the day
// watermark in force before the frame's first event; rawLen and events
// are the frame header's promises, and any malformed column, count
// mismatch, out-of-range value, or reconstructed length other than
// rawLen is an error the callers wrap as ErrSegmentCorrupt.
func untransposeFrame(tp []byte, prevDay int32, rawLen int64, events uint64) ([]byte, error) {
	b := tp
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, ErrTruncated
	}
	b = b[n:]
	if count != events {
		return nil, fmt.Errorf("column event count %d contradicts frame header %d", count, events)
	}
	if count > uint64(len(b)) {
		return nil, ErrTruncated
	}
	kinds := b[:count]
	b = b[count:]
	var nodes, edges int
	for _, k := range kinds {
		switch Kind(k) {
		case AddNode:
			nodes++
		case AddEdge:
			edges++
		default:
			return nil, ErrBadKind
		}
	}
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, ErrTruncated
		}
		b = b[n:]
		return v, nil
	}
	sv := func(prev int64) (int64, error) {
		d, n := binary.Varint(b)
		if n <= 0 {
			return 0, ErrTruncated
		}
		b = b[n:]
		v := prev + d
		if v < 0 || v > math.MaxInt32 {
			return 0, ErrIDOverflow
		}
		return v, nil
	}
	days := make([]uint64, count)
	for i := range days {
		d, err := uv()
		if err != nil {
			return nil, err
		}
		days[i] = d
	}
	ids := make([]int32, nodes)
	var prev int64
	for i := range ids {
		v, err := sv(prev)
		if err != nil {
			return nil, err
		}
		ids[i], prev = int32(v), v
	}
	if len(b) < nodes {
		return nil, ErrTruncated
	}
	origins := b[:nodes]
	b = b[nodes:]
	us := make([]int32, edges)
	prev = 0
	for i := range us {
		v, err := sv(prev)
		if err != nil {
			return nil, err
		}
		us[i], prev = int32(v), v
	}
	vs := make([]int32, edges)
	for i := range vs {
		v, err := uv()
		if err != nil {
			return nil, err
		}
		if v > math.MaxInt32 {
			return nil, ErrIDOverflow
		}
		vs[i] = int32(v)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after columns", len(b))
	}
	out := make([]byte, 0, rawLen)
	day := prevDay
	var ni, ei int
	for i, k := range kinds {
		d := days[i]
		if d > math.MaxInt32 || int64(day)+int64(d) > math.MaxInt32 {
			return nil, ErrDayOverflow
		}
		ev := Event{Kind: Kind(k), Day: day + int32(d)}
		switch ev.Kind {
		case AddNode:
			ev.U = ids[ni]
			ev.Origin = Origin(origins[ni])
			ni++
		case AddEdge:
			ev.U, ev.V = us[ei], vs[ei]
			ei++
		}
		var err error
		out, err = appendEvent(out, ev, day)
		if err != nil {
			return nil, err
		}
		day = ev.Day
	}
	if int64(len(out)) != rawLen {
		return nil, fmt.Errorf("columns decode to %d raw bytes, frame promises %d", len(out), rawLen)
	}
	return out, nil
}

// inflateFrame decompresses and un-transposes one checksum-verified
// frame payload into its raw appendEvent byte run. Errors carry no
// position; the callers wrap them with the segment ordinal and offset.
func inflateFrame(payload []byte, seg segEntry) ([]byte, error) {
	// A frame's transposed form is at most ~10 bytes per event larger
	// than its raw form (a signed varint can outgrow the unsigned byte
	// it replaces), so cap the inflate: a corrupt or hostile payload
	// that blows past the bound is rejected before untransposeFrame
	// sizes any allocation off it.
	limit := seg.rawLen + 10*int64(seg.events) + 16
	fr := flate.NewReader(bytes.NewReader(payload))
	defer fr.Close()
	var buf bytes.Buffer
	n, err := io.Copy(&buf, io.LimitReader(fr, limit+1))
	if err != nil {
		return nil, err
	}
	if n > limit {
		return nil, fmt.Errorf("transposed payload exceeds %d-byte plausibility bound", limit)
	}
	return untransposeFrame(buf.Bytes(), seg.prevDay, seg.rawLen, seg.events)
}

// cutFrame compresses and writes the pending raw bytes as one frame.
// The frame (header plus payload) goes down in a single Write so a
// concurrent tail prober never observes half a frame header.
func (e *SegEncoder) cutFrame() error {
	if len(e.raw) == 0 {
		return nil
	}
	if err := e.ensureHeader(); err != nil {
		return err
	}
	tp, err := transposeFrame(e.raw)
	if err != nil {
		// Unreachable in practice: e.raw is appendEvent's own output.
		return fmt.Errorf("trace: transposing frame: %w", err)
	}
	e.compBuf.Reset()
	e.compBuf.Grow(segFrameHdrLen + len(e.raw)/2)
	e.compBuf.Write(make([]byte, segFrameHdrLen)) // header slot, patched below
	e.comp.Reset(&e.compBuf)
	if _, err := e.comp.Write(tp); err != nil {
		return err
	}
	if err := e.comp.Close(); err != nil {
		return err
	}
	frame := e.compBuf.Bytes()
	payload := frame[segFrameHdrLen:]
	seg := segEntry{
		fileOff:    e.fileOff,
		compLen:    int64(len(payload)),
		rawLen:     int64(len(e.raw)),
		rawStart:   e.rawStart,
		events:     e.count - e.frameFirstEvent,
		firstEvent: e.frameFirstEvent,
		firstDay:   e.frameFirstDay,
		lastDay:    e.prevDay,
		prevDay:    e.framePrevDay,
	}
	copy(frame[:4], segFrameMagic[:])
	binary.LittleEndian.PutUint32(frame[4:], uint32(seg.compLen))
	binary.LittleEndian.PutUint32(frame[8:], uint32(seg.rawLen))
	binary.LittleEndian.PutUint32(frame[12:], uint32(seg.events))
	binary.LittleEndian.PutUint32(frame[16:], uint32(seg.firstDay))
	binary.LittleEndian.PutUint32(frame[20:], uint32(seg.lastDay))
	binary.LittleEndian.PutUint32(frame[24:], uint32(seg.prevDay))
	binary.LittleEndian.PutUint32(frame[28:], crc32.ChecksumIEEE(payload))
	if _, err := e.ws.Write(frame); err != nil {
		return err
	}
	e.segs = append(e.segs, seg)
	e.fileOff += int64(len(frame))
	e.rawStart += int64(len(e.raw))
	e.raw = e.raw[:0]
	return nil
}

// Flush seals the pending events into a frame (mid-day if necessary) and
// writes it, making them visible to tail probers — the segmented
// equivalent of the flat Encoder's day-boundary Flush.
func (e *SegEncoder) Flush() error {
	if e.closed {
		return errors.New("trace: encoder is closed")
	}
	return e.cutFrame()
}

// Close writes the last frame, appends the footer (segment table plus
// embedded day index), and back-patches the header with the final meta
// and count.
func (e *SegEncoder) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	if err := e.cutFrame(); err != nil {
		return err
	}
	if err := e.ensureHeader(); err != nil {
		return err
	}
	footer := appendSegFooter(nil, e.segs, e.index)
	var trailer [indexTrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(len(footer)))
	copy(trailer[8:], indexEndMagic[:])
	footer = append(footer, trailer[:]...)
	if _, err := e.ws.Write(footer); err != nil {
		return err
	}
	if _, err := e.ws.Seek(0, io.SeekStart); err != nil {
		return err
	}
	hdr, err := renderFixedHeader(segMagic, e.meta, e.count, false)
	if err != nil {
		return err
	}
	if _, err := e.ws.Write(hdr); err != nil {
		return err
	}
	_, err = e.ws.Seek(0, io.SeekEnd)
	return err
}

// Segment footer layout (magic through CRC; the caller appends the
// shared fixed trailer):
//
//	magic "RRX2"
//	uvarint footer version (1)
//	uvarint segment count
//	per segment: uvarint compressed length, raw length, event count,
//	             first day, last day, previous-day watermark
//	  (file offsets, raw offsets and first-event ordinals are not stored;
//	   they are cumulative sums a parser re-derives)
//	uvarint day-index length, then an RRX1 day-index block (appendDayIndex)
//	  whose entry Offsets are raw-stream offsets
//	uint32 LE CRC-32 (IEEE) of everything above
func appendSegFooter(dst []byte, segs []segEntry, idx []DayIndexEntry) []byte {
	start := len(dst)
	dst = append(dst, segFooterMagic[:]...)
	dst = binary.AppendUvarint(dst, segFooterVersion)
	dst = binary.AppendUvarint(dst, uint64(len(segs)))
	for _, s := range segs {
		dst = binary.AppendUvarint(dst, uint64(s.compLen))
		dst = binary.AppendUvarint(dst, uint64(s.rawLen))
		dst = binary.AppendUvarint(dst, s.events)
		dst = binary.AppendUvarint(dst, uint64(s.firstDay))
		dst = binary.AppendUvarint(dst, uint64(s.lastDay))
		dst = binary.AppendUvarint(dst, uint64(s.prevDay))
	}
	idxBytes := appendDayIndex(nil, idx)
	dst = binary.AppendUvarint(dst, uint64(len(idxBytes)))
	dst = append(dst, idxBytes...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(dst[start:]))
	return append(dst, crc[:]...)
}

// parseSegFooter decodes an appendSegFooter rendering. Like the flat day
// index, any structural or checksum problem means the footer reads as
// absent — the frames are self-describing and a scan rebuilds the table.
func parseSegFooter(b []byte) ([]segEntry, []DayIndexEntry, error) {
	if len(b) < len(segFooterMagic)+4 || [4]byte(b[:4]) != segFooterMagic {
		return nil, nil, errors.New("trace: bad segment footer magic")
	}
	crc := binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(b[:len(b)-4]) != crc {
		return nil, nil, errors.New("trace: segment footer checksum mismatch")
	}
	b = b[4 : len(b)-4]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, errors.New("trace: truncated segment footer")
		}
		b = b[n:]
		return v, nil
	}
	ver, err := next()
	if err != nil {
		return nil, nil, err
	}
	if ver != segFooterVersion {
		return nil, nil, fmt.Errorf("trace: segment footer version %d", ver)
	}
	count, err := next()
	if err != nil {
		return nil, nil, err
	}
	if count > maxIndexEntries {
		return nil, nil, fmt.Errorf("trace: footer declares %d segments", count)
	}
	segs := make([]segEntry, 0, min(count, 1<<16))
	fileOff, rawStart, firstEvent := int64(fixedHeaderLen), int64(0), uint64(0)
	prevLast := int32(0)
	for i := uint64(0); i < count; i++ {
		var vs [6]uint64
		for j := range vs {
			if vs[j], err = next(); err != nil {
				return nil, nil, err
			}
		}
		s := segEntry{
			fileOff:    fileOff,
			compLen:    int64(vs[0]),
			rawLen:     int64(vs[1]),
			rawStart:   rawStart,
			events:     vs[2],
			firstEvent: firstEvent,
		}
		if vs[0] == 0 || vs[0] > maxSegFrameLen || vs[1] == 0 || vs[1] > maxSegFrameLen ||
			vs[2] == 0 || vs[2] > vs[1] ||
			vs[3] > math.MaxInt32 || vs[4] > math.MaxInt32 || vs[5] > math.MaxInt32 {
			return nil, nil, errors.New("trace: segment footer entry out of range")
		}
		s.firstDay, s.lastDay, s.prevDay = int32(vs[3]), int32(vs[4]), int32(vs[5])
		if s.firstDay < s.prevDay || s.lastDay < s.firstDay || s.prevDay != prevLast {
			if i > 0 || s.prevDay != 0 {
				return nil, nil, errors.New("trace: segment footer days not monotone")
			}
		}
		prevLast = s.lastDay
		segs = append(segs, s)
		fileOff = s.fileEnd()
		rawStart = s.rawEnd()
		firstEvent += s.events
	}
	idxLen, err := next()
	if err != nil {
		return nil, nil, err
	}
	if idxLen > uint64(len(b)) {
		return nil, nil, errors.New("trace: truncated segment footer index")
	}
	var idx []DayIndexEntry
	if idxLen > 0 {
		if idx, err = parseDayIndex(b[:idxLen]); err != nil {
			return nil, nil, err
		}
	}
	if len(idx) > 0 {
		last := idx[len(idx)-1]
		if last.Event >= firstEvent || last.Offset >= rawStart {
			return nil, nil, errors.New("trace: segment footer index beyond stream")
		}
	}
	return segs, idx, nil
}

// segBlob abstracts where a segmented trace's bytes live: a local file,
// a storage backend object, or an in-memory buffer (tests, fuzzing).
type segBlob interface {
	open() (*segHandle, error)
	size() (int64, error)
}

// segHandle is one reader over a blob. It counts the bytes actually
// fetched — the observable that holds prefix-skipping accountable, the
// segmented analogue of countingReader.
type segHandle struct {
	ra io.ReaderAt
	c  io.Closer
	n  int64
}

func (h *segHandle) readAt(p []byte, off int64) error {
	n, err := h.ra.ReadAt(p, off)
	h.n += int64(n)
	if n == len(p) {
		return nil
	}
	if err == nil || err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return err
}

func (h *segHandle) Close() error {
	if h.c != nil {
		return h.c.Close()
	}
	return nil
}

type fileSegBlob struct{ path string }

func (b fileSegBlob) open() (*segHandle, error) {
	f, err := os.Open(b.path)
	if err != nil {
		return nil, err
	}
	return &segHandle{ra: f, c: f}, nil
}

func (b fileSegBlob) size() (int64, error) {
	fi, err := os.Stat(b.path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

type bytesSegBlob struct{ data []byte }

func (b bytesSegBlob) open() (*segHandle, error) {
	return &segHandle{ra: bytes.NewReader(b.data)}, nil
}

func (b bytesSegBlob) size() (int64, error) { return int64(len(b.data)), nil }

// backendSegBlob serves a segmented trace out of a storage backend: each
// frame is one ranged read, so replaying a day range from an object
// store fetches only that range's segments.
type backendSegBlob struct {
	b    storage.Backend
	name string
}

func (b backendSegBlob) open() (*segHandle, error) {
	return &segHandle{ra: backendReaderAt{b: b.b, name: b.name}}, nil
}

func (b backendSegBlob) size() (int64, error) {
	infos, err := b.b.List(b.name)
	if err != nil {
		return 0, err
	}
	for _, info := range infos {
		if info.Name == b.name {
			return info.Size, nil
		}
	}
	return 0, fmt.Errorf("trace: %s: %w", b.name, storage.ErrNotExist)
}

type backendReaderAt struct {
	b    storage.Backend
	name string
}

func (r backendReaderAt) ReadAt(p []byte, off int64) (int, error) {
	rc, err := r.b.OpenRange(r.name, off, int64(len(p)))
	if err != nil {
		return 0, err
	}
	defer rc.Close()
	n, err := io.ReadFull(rc, p)
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		err = io.EOF
	}
	return n, err
}

// parseSegHeader decodes the fixed header of a segmented trace.
// finalized=false (with nil err) means the count slot is still poisoned:
// the writer has not closed, which TailProbe tolerates and open rejects.
func parseSegHeader(hdr []byte) (meta Meta, count uint64, finalized bool, err error) {
	if len(hdr) < len(segMagic) {
		return meta, 0, false, io.ErrUnexpectedEOF
	}
	if [4]byte(hdr[:4]) != segMagic {
		return meta, 0, false, ErrBadMagic
	}
	if len(hdr) < fixedHeaderLen {
		return meta, 0, false, fmt.Errorf("trace: truncated segmented header")
	}
	metaLen, n := binary.Uvarint(hdr[4:])
	if n <= 0 || metaLen != encMetaPad {
		return meta, 0, false, errors.New("trace: bad segmented header meta slot")
	}
	metaStart := 4 + n
	if err := json.Unmarshal(bytes.TrimRight(hdr[metaStart:metaStart+encMetaPad], " "), &meta); err != nil {
		return meta, 0, false, fmt.Errorf("trace: bad meta: %w", err)
	}
	count, cerr := binary.ReadUvarint(bytes.NewReader(hdr[metaStart+encMetaPad : fixedHeaderLen]))
	if cerr != nil {
		return meta, 0, false, nil
	}
	if count > maxEventCount {
		return meta, 0, false, fmt.Errorf("%w: %d events", ErrCountTooLarge, count)
	}
	return meta, count, true, nil
}

// SegFileSource replays a segmented (compressed) trace: the same
// out-of-core data plane as FileSource, with frames decompressed lazily
// as a cursor crosses them. OpenAt maps a day through the day index into
// (segment, raw offset) and decompresses nothing before that segment.
// A SegFileSource describes a finalized, immutable container, so Frozen
// returns the source itself.
type SegFileSource struct {
	Path string // "" when backend- or memory-backed

	blob   segBlob
	meta   Meta
	events uint64
	segs   []segEntry
	index  []DayIndexEntry // raw-stream offsets; nil when footer absent

	// cacheID keys this container's frames in the process-wide inflated-
	// frame cache; "" (backend/memory blobs) disables caching for this
	// source. See framecache.go for the identity rules.
	cacheID string
}

// OpenSegFileSource validates the header and footer of a segmented
// trace file and returns its source. Only finalized files open; a file
// whose writer is still running (or crashed) is rejected with
// ErrNotFinalized. A missing or damaged footer is tolerated by scanning
// the frame headers (the day index then reads as absent, exactly like a
// flat file with a damaged index footer).
func OpenSegFileSource(path string) (*SegFileSource, error) {
	s, err := openSegBlob(fileSegBlob{path: path}, path)
	if err != nil {
		return nil, err
	}
	s.Path = path
	return s, nil
}

// OpenSegBackend opens a segmented trace stored as an object in a
// storage backend. Cursors fetch one ranged read per frame, so a replay
// from day D touches only the bytes of the segments holding days >= D.
func OpenSegBackend(b storage.Backend, name string) (*SegFileSource, error) {
	return openSegBlob(backendSegBlob{b: b, name: name}, name)
}

// openSegBytes opens a segmented trace held in memory (tests, fuzzing).
func openSegBytes(data []byte) (*SegFileSource, error) {
	return openSegBlob(bytesSegBlob{data: data}, "segmented bytes")
}

func openSegBlob(blob segBlob, label string) (*SegFileSource, error) {
	h, err := blob.open()
	if err != nil {
		return nil, err
	}
	defer h.Close()
	size, err := blob.size()
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, fixedHeaderLen)
	if size < int64(fixedHeaderLen) {
		hdr = hdr[:size]
	}
	if err := h.readAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("trace: %s: header: %w", label, err)
	}
	meta, count, finalized, err := parseSegHeader(hdr)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", label, err)
	}
	if !finalized {
		return nil, fmt.Errorf("%w: %s: count slot not back-patched (writer in progress or crashed before Close)", ErrNotFinalized, label)
	}
	segs, idx, ok := readSegFooter(h, size)
	if !ok {
		// Footer missing or damaged: rebuild the segment table from the
		// frame headers. The day index is gone, which costs seek
		// acceleration, never correctness.
		if segs, err = scanSegFrames(h, size); err != nil {
			return nil, fmt.Errorf("trace: %s: %w", label, err)
		}
		idx = nil
	}
	var total uint64
	for _, s := range segs {
		if s.fileEnd() > size {
			return nil, fmt.Errorf("%w: %s: segment table overruns the file", ErrSegmentCorrupt, label)
		}
		total += s.events
	}
	if total != count {
		return nil, fmt.Errorf("%w: %s: frames hold %d events, header promises %d", ErrNotFinalized, label, total, count)
	}
	if len(idx) > 0 && count > 0 {
		last := idx[len(idx)-1]
		if last.Event >= count {
			idx = nil
		}
	}
	src := &SegFileSource{blob: blob, meta: meta, events: count, segs: segs, index: idx}
	if fb, ok := blob.(fileSegBlob); ok {
		// Path plus size plus event count: stable across re-opens of the
		// same finalized container, distinct the moment the file grows or
		// is rewritten in place (live-ingest tails), so stale frames are
		// never served — they just age out of the LRU under a dead key.
		src.cacheID = fmt.Sprintf("file:%s|%d|%d", fb.path, size, count)
	}
	return src, nil
}

// readSegFooter locates and parses the footer via the fixed trailer at
// the end of the blob. ok=false means absent-or-invalid, never an error:
// the frame scan is the fallback.
func readSegFooter(h *segHandle, size int64) ([]segEntry, []DayIndexEntry, bool) {
	if size < int64(fixedHeaderLen)+indexTrailerLen {
		return nil, nil, false
	}
	var trailer [indexTrailerLen]byte
	if h.readAt(trailer[:], size-indexTrailerLen) != nil {
		return nil, nil, false
	}
	if [4]byte(trailer[8:12]) != indexEndMagic {
		return nil, nil, false
	}
	n := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if n <= 0 || n > size-indexTrailerLen-int64(fixedHeaderLen) || n > maxIndexFooterBytes {
		return nil, nil, false
	}
	buf := make([]byte, n)
	if h.readAt(buf, size-indexTrailerLen-n) != nil {
		return nil, nil, false
	}
	segs, idx, err := parseSegFooter(buf)
	if err != nil {
		return nil, nil, false
	}
	return segs, idx, true
}

// scanSegFrames rebuilds the segment table by walking the frame headers
// (32 bytes per ~1 MiB frame — payloads are not read; a cursor's CRC
// check still guards them). The walk stops at the first thing that is
// not a frame header: the footer, a torn tail, or garbage. The caller's
// event-count cross-check decides whether what was found is the whole
// stream.
func scanSegFrames(h *segHandle, size int64) ([]segEntry, error) {
	var segs []segEntry
	off := int64(fixedHeaderLen)
	rawStart, firstEvent := int64(0), uint64(0)
	prevLast := int32(0)
	for off+segFrameHdrLen <= size {
		var hdr [segFrameHdrLen]byte
		if err := h.readAt(hdr[:], off); err != nil {
			return nil, err
		}
		if [4]byte(hdr[:4]) != segFrameMagic {
			break
		}
		s := segEntry{
			fileOff:    off,
			compLen:    int64(binary.LittleEndian.Uint32(hdr[4:])),
			rawLen:     int64(binary.LittleEndian.Uint32(hdr[8:])),
			rawStart:   rawStart,
			events:     uint64(binary.LittleEndian.Uint32(hdr[12:])),
			firstEvent: firstEvent,
			firstDay:   int32(binary.LittleEndian.Uint32(hdr[16:])),
			lastDay:    int32(binary.LittleEndian.Uint32(hdr[20:])),
			prevDay:    int32(binary.LittleEndian.Uint32(hdr[24:])),
		}
		if s.compLen == 0 || s.rawLen == 0 || s.events == 0 || int64(s.events) > s.rawLen ||
			s.firstDay < s.prevDay || s.lastDay < s.firstDay || s.prevDay != prevLast ||
			s.fileEnd() > size {
			break
		}
		segs = append(segs, s)
		off = s.fileEnd()
		rawStart = s.rawEnd()
		firstEvent += s.events
		prevLast = s.lastDay
	}
	return segs, nil
}

// Meta implements MetaSource with the header's metadata.
func (s *SegFileSource) Meta() Meta { return s.meta }

// Events returns the event count the header declares.
func (s *SegFileSource) Events() uint64 { return s.events }

// Index returns the day index (raw-stream offsets), nil when absent.
// The slice is shared and must not be modified.
func (s *SegFileSource) Index() []DayIndexEntry { return s.index }

// Frozen implements the freezing contract trivially: a finalized
// segmented container is immutable, so the source is its own frozen
// view.
func (s *SegFileSource) Frozen() MetaSource { return s }

// SegStats summarizes the container for observability surfaces
// (rranalyze -info, the /statz storage section).
type SegStats struct {
	// Segments is the number of compressed frames.
	Segments int
	// RawBytes is the uncompressed event-stream size the frames decode
	// to (the flat format's event-stream size, headers excluded).
	RawBytes int64
	// CompressedBytes is the total compressed payload size.
	CompressedBytes int64
	// Events is the event count.
	Events uint64
	// Indexed reports whether the day index is present.
	Indexed bool
}

// Stats reports the container's compression accounting.
func (s *SegFileSource) Stats() SegStats {
	st := SegStats{Segments: len(s.segs), Events: s.events, Indexed: s.index != nil}
	for _, e := range s.segs {
		st.RawBytes += e.rawLen
		st.CompressedBytes += e.compLen
	}
	return st
}

// Open implements Source: a fresh handle and decompression state per
// pass, so concurrent passes never share position.
func (s *SegFileSource) Open() (Cursor, error) { return s.openFrom(0, 0, 0, 0) }

// OpenAt implements DaySeeker: the day index gives the raw-stream
// offset, the segment table maps it to a frame, and the cursor
// decompresses from that frame on — the prefix segments are never read,
// let alone decompressed.
func (s *SegFileSource) OpenAt(day int32) (Cursor, error) {
	if day <= 0 {
		return s.Open()
	}
	if s.index == nil {
		cur, err := s.Open()
		if err != nil {
			return nil, err
		}
		skipped, err := skipToDay(cur, day)
		if err != nil {
			cur.Close()
			return nil, err
		}
		return skipped, nil
	}
	i := sort.Search(len(s.index), func(i int) bool { return s.index[i].Day >= day })
	if i == len(s.index) {
		// Past the last day with events: an exhausted cursor.
		return &sliceCursor{}, nil
	}
	e := s.index[i]
	k := sort.Search(len(s.segs), func(k int) bool { return s.segs[k].rawEnd() > e.Offset })
	if k == len(s.segs) {
		return nil, fmt.Errorf("%w: day index points past the segment table", ErrSegmentCorrupt)
	}
	return s.openFrom(k, e.Offset-s.segs[k].rawStart, e.Event, e.PrevDay)
}

// openFrom opens a cursor at segment k, discarding discard decompressed
// bytes to reach an event boundary with skipped events before it and
// day watermark prevDay in force.
func (s *SegFileSource) openFrom(k int, discard int64, skipped uint64, prevDay int32) (Cursor, error) {
	h, err := s.blob.open()
	if err != nil {
		return nil, err
	}
	sr := &segStreamReader{h: h, segs: s.segs, next: k, cacheID: s.cacheID}
	if discard > 0 {
		if _, err := io.CopyN(io.Discard, sr, discard); err != nil {
			h.Close()
			return nil, err
		}
	}
	dec := resumeDecoder(bufio.NewReader(sr), s.meta, s.events-skipped, prevDay)
	return &segCursor{h: h, dec: dec}, nil
}

// segStreamReader presents a run of frames as one contiguous raw event
// stream: each frame is fetched whole, checksum-verified, inflated and
// un-transposed, then served from memory. Corruption surfaces as
// ErrSegmentCorrupt pinned to the segment ordinal and file byte offset.
type segStreamReader struct {
	h       *segHandle
	segs    []segEntry
	next    int    // next frame to load
	cacheID string // frame-cache identity; "" = uncached

	raw   *bytes.Reader // current frame's raw bytes, nil between frames
	frame []byte        // scratch: current frame's compressed payload
}

func (r *segStreamReader) Read(p []byte) (int, error) {
	for {
		if r.raw != nil {
			n, err := r.raw.Read(p)
			if err == io.EOF {
				r.raw = nil
				if n > 0 {
					return n, nil
				}
				continue
			}
			if n > 0 || err != nil {
				return n, err
			}
			continue
		}
		if r.next >= len(r.segs) {
			return 0, io.EOF
		}
		if err := r.loadFrame(); err != nil {
			return 0, err
		}
	}
}

// loadFrame fetches frame r.next whole, verifies its header against the
// segment table and its payload against the stored CRC, and decodes its
// raw bytes.
func (r *segStreamReader) loadFrame() error {
	seg := r.segs[r.next]
	key := frameCacheKey{blob: r.cacheID, off: seg.fileOff}
	if raw, ok := segFrameCache.get(key); ok {
		// Cache hit: the frame was fetched, CRC-verified, and inflated
		// by an earlier cursor; serve the shared read-only bytes without
		// touching the blob at all.
		r.raw = bytes.NewReader(raw)
		r.next++
		return nil
	}
	need := segFrameHdrLen + int(seg.compLen)
	if cap(r.frame) < need {
		r.frame = make([]byte, need)
	}
	r.frame = r.frame[:need]
	if err := r.h.readAt(r.frame, seg.fileOff); err != nil {
		return fmt.Errorf("%w: segment %d at byte %d: %v", ErrSegmentCorrupt, r.next, seg.fileOff, err)
	}
	hdr, payload := r.frame[:segFrameHdrLen], r.frame[segFrameHdrLen:]
	if [4]byte(hdr[:4]) != segFrameMagic ||
		int64(binary.LittleEndian.Uint32(hdr[4:])) != seg.compLen ||
		int64(binary.LittleEndian.Uint32(hdr[8:])) != seg.rawLen {
		return fmt.Errorf("%w: segment %d at byte %d: frame header contradicts segment table", ErrSegmentCorrupt, r.next, seg.fileOff)
	}
	if crc := binary.LittleEndian.Uint32(hdr[28:]); crc32.ChecksumIEEE(payload) != crc {
		return fmt.Errorf("%w: segment %d at byte %d: checksum mismatch", ErrSegmentCorrupt, r.next, seg.fileOff)
	}
	raw, err := inflateFrame(payload, seg)
	if err != nil {
		return fmt.Errorf("%w: segment %d at byte %d: %v", ErrSegmentCorrupt, r.next, seg.fileOff, err)
	}
	segFrameCache.countMiss(seg.rawLen)
	segFrameCache.put(key, raw)
	r.raw = bytes.NewReader(raw)
	r.next++
	return nil
}

type segCursor struct {
	h   *segHandle
	dec *Decoder
}

func (c *segCursor) Next() (Event, bool, error) { return c.dec.Next() }

func (c *segCursor) Close() error { return c.h.Close() }

// bytesRead reports how many bytes this cursor has fetched off the blob
// — compressed bytes, so prefix-skip accounting observes that skipped
// segments are not even read.
func (c *segCursor) bytesRead() int64 { return c.h.n }

// TraceFile is what a trace file on disk offers regardless of container
// format: the full data plane (Source, Meta, day-addressable OpenAt)
// plus a Frozen view for snapshot publication. *FileSource and
// *SegFileSource both satisfy it.
type TraceFile interface {
	MetaSource
	DaySeeker
	Frozen() MetaSource
}

// OpenTrace opens a trace file of either container format, sniffing the
// magic: "RRT1" opens flat (OpenFileSource), "RRS1" segmented
// (OpenSegFileSource). This is the open every consumer that accepts
// user-supplied paths should use.
func OpenTrace(path string) (TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var mag [4]byte
	_, rerr := io.ReadFull(f, mag[:])
	f.Close()
	if rerr == nil && mag == segMagic {
		return OpenSegFileSource(path)
	}
	return OpenFileSource(path)
}
