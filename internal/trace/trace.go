// Package trace defines the timestamped event-stream schema that stands in
// for the paper's anonymized Renren dataset: a sequence of node-creation and
// edge-creation events, each stamped with an absolute day and, for nodes, an
// origin network tag (Xiaonei, 5Q, or post-merge Renren).
//
// Every analysis in this repository consumes only this stream, so the code
// would run unchanged on the real data. The package also provides a compact
// binary codec and a replay driver that fires day-boundary callbacks, which
// is how the 771 "daily snapshots" of the paper are realized without
// materializing 771 graphs.
package trace

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Origin identifies which network a node was born in (§5 of the paper).
type Origin uint8

const (
	// OriginXiaonei marks nodes created in the original Xiaonei network.
	OriginXiaonei Origin = iota
	// OriginFiveQ marks nodes created in the competing 5Q network.
	OriginFiveQ
	// OriginNew marks nodes that joined after the network merge.
	OriginNew
)

// String returns the origin's name.
func (o Origin) String() string {
	switch o {
	case OriginXiaonei:
		return "xiaonei"
	case OriginFiveQ:
		return "5q"
	case OriginNew:
		return "new"
	default:
		return fmt.Sprintf("origin(%d)", uint8(o))
	}
}

// Kind discriminates event types.
type Kind uint8

const (
	// AddNode creates node U on day Day with origin Origin.
	AddNode Kind = iota
	// AddEdge creates the undirected friendship edge {U, V} on day Day.
	AddEdge
)

// Event is one timestamped creation event.
type Event struct {
	Kind   Kind
	Day    int32        // absolute day; day 0 is the network's first day
	U, V   graph.NodeID // U for AddNode; {U, V} for AddEdge
	Origin Origin       // meaningful for AddNode only
}

// Meta summarizes a trace; it is stored in the file header and recomputable
// from the events via Summarize.
type Meta struct {
	Days     int32 `json:"days"`      // number of days covered (last day + 1)
	MergeDay int32 `json:"merge_day"` // day of the network merge, -1 if none
	Nodes    int64 `json:"nodes"`
	Edges    int64 `json:"edges"`
	Xiaonei  int64 `json:"xiaonei_nodes"`
	FiveQ    int64 `json:"fiveq_nodes"`
	NewUsers int64 `json:"new_nodes"`
	Seed     int64 `json:"seed"` // generator seed, 0 if unknown
}

// Trace is a full event stream plus its metadata.
type Trace struct {
	Meta   Meta
	Events []Event
}

// Accumulate folds one event into the Meta counters (Days, Nodes, Edges,
// and the per-origin node counts). MergeDay and Seed are generator
// knowledge and untouched. It is the streaming form of Summarize, used by
// the incremental Encoder and gen.GenerateStream.
func (m *Meta) Accumulate(ev Event) {
	if ev.Day+1 > m.Days {
		m.Days = ev.Day + 1
	}
	switch ev.Kind {
	case AddNode:
		m.Nodes++
		switch ev.Origin {
		case OriginXiaonei:
			m.Xiaonei++
		case OriginFiveQ:
			m.FiveQ++
		case OriginNew:
			m.NewUsers++
		}
	case AddEdge:
		m.Edges++
	}
}

// Summarize recomputes Meta counters (except MergeDay and Seed, which are
// generator knowledge) from the events.
func Summarize(events []Event) Meta {
	var m Meta
	m.MergeDay = -1
	for _, ev := range events {
		m.Accumulate(ev)
	}
	return m
}

// Validation errors.
var (
	ErrNonMonotoneDay = errors.New("trace: event days not non-decreasing")
	ErrUnknownNode    = errors.New("trace: edge references unknown node")
	ErrDuplicateNode  = errors.New("trace: node created twice")
	ErrNonDenseNode   = errors.New("trace: node ids not dense arrival order")
	ErrSelfLoop       = errors.New("trace: self-loop edge")
	ErrDuplicateEdge  = errors.New("trace: duplicate edge")
)

// Validate checks the structural invariants every well-formed trace obeys:
// non-decreasing days, dense node ids assigned in arrival order, edges only
// between existing distinct nodes, and no duplicate edges.
func Validate(events []Event) error {
	return ValidateSource(SliceSource(events))
}

// ValidateSource is Validate over a re-openable event source, consuming
// exactly one pass. With a FileSource the invariants are checked straight
// off disk without ever materializing the event slice, so on-disk traces
// can be validated in O(state) memory.
func ValidateSource(src Source) error {
	cur, err := src.Open()
	if err != nil {
		return err
	}
	verr := validateCursor(cur)
	if cerr := cur.Close(); verr == nil {
		verr = cerr
	}
	return verr
}

// validateCursor runs the invariant checks over one pass.
func validateCursor(cur Cursor) error {
	var nextNode graph.NodeID
	day := int32(0)
	g := graph.New(1024)
	for i := 0; ; i++ {
		ev, ok, err := cur.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if ev.Day < day {
			return fmt.Errorf("%w: event %d day %d after day %d", ErrNonMonotoneDay, i, ev.Day, day)
		}
		day = ev.Day
		switch ev.Kind {
		case AddNode:
			if ev.U < nextNode {
				return fmt.Errorf("%w: event %d node %d", ErrDuplicateNode, i, ev.U)
			}
			if ev.U > nextNode {
				return fmt.Errorf("%w: event %d node %d, expected %d", ErrNonDenseNode, i, ev.U, nextNode)
			}
			nextNode++
			g.EnsureNode(ev.U)
		case AddEdge:
			if ev.U == ev.V {
				return fmt.Errorf("%w: event %d node %d", ErrSelfLoop, i, ev.U)
			}
			if ev.U >= nextNode || ev.V >= nextNode || ev.U < 0 || ev.V < 0 {
				return fmt.Errorf("%w: event %d edge {%d,%d}", ErrUnknownNode, i, ev.U, ev.V)
			}
			switch err := g.AddEdge(ev.U, ev.V); err {
			case nil:
			case graph.ErrDuplicateEdge:
				return fmt.Errorf("%w: event %d edge {%d,%d}", ErrDuplicateEdge, i, ev.U, ev.V)
			default:
				return err
			}
		default:
			return fmt.Errorf("trace: event %d has unknown kind %d", i, ev.Kind)
		}
	}
}
