package trace

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the codec against corrupt and truncated input: Decode
// must never panic or over-allocate, and anything it accepts must survive
// an Encode/Decode round trip unchanged (the decoder only admits
// well-formed streams: known kinds, non-decreasing days, in-range ids).
// The seed corpus is Encode output for representative traces, including
// the incremental Encoder's fixed-width header layout.
func FuzzDecode(f *testing.F) {
	seed := func(tr *Trace) {
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(&Trace{Meta: Meta{MergeDay: -1}})
	seed(&Trace{
		Meta: Meta{Days: 4, MergeDay: 2, Nodes: 3, Edges: 3, Xiaonei: 2, FiveQ: 1, Seed: 7},
		Events: []Event{
			{Kind: AddNode, Day: 0, U: 0, Origin: OriginXiaonei},
			{Kind: AddNode, Day: 0, U: 1, Origin: OriginXiaonei},
			{Kind: AddEdge, Day: 0, U: 0, V: 1},
			{Kind: AddNode, Day: 2, U: 2, Origin: OriginFiveQ},
			{Kind: AddEdge, Day: 2, U: 1, V: 2},
			{Kind: AddEdge, Day: 3, U: 0, V: 2},
		},
	})
	seed(synthTrace(41))
	// The streaming Encoder's padded header is format-equivalent input.
	var ws seekBuffer
	enc, err := NewEncoder(&ws)
	if err != nil {
		f.Fatal(err)
	}
	enc.SetSeed(3)
	for _, ev := range synthTrace(17).Events {
		if err := enc.Write(ev); err != nil {
			f.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte{}, ws.buf...))
	// A header that lies about its count must fail, not pre-allocate.
	f.Add(append(append([]byte{}, magic[:]...), 0x02, '{', '}', 0xff, 0xff, 0xff, 0x0f))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics and hangs are not
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatalf("decoded trace does not re-encode: %v", err)
		}
		tr2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		if tr2.Meta != tr.Meta {
			t.Fatalf("meta round trip: %+v -> %+v", tr.Meta, tr2.Meta)
		}
		if len(tr2.Events) != len(tr.Events) {
			t.Fatalf("event count round trip: %d -> %d", len(tr.Events), len(tr2.Events))
		}
		for i := range tr2.Events {
			if tr2.Events[i] != tr.Events[i] {
				t.Fatalf("event %d round trip: %+v -> %+v", i, tr.Events[i], tr2.Events[i])
			}
		}
	})
}

// seekBuffer is an in-memory io.WriteSeeker for exercising the Encoder
// without a file.
type seekBuffer struct {
	buf []byte
	pos int
}

func (b *seekBuffer) Write(p []byte) (int, error) {
	if need := b.pos + len(p); need > len(b.buf) {
		b.buf = append(b.buf, make([]byte, need-len(b.buf))...)
	}
	copy(b.buf[b.pos:], p)
	b.pos += len(p)
	return len(p), nil
}

func (b *seekBuffer) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case 0:
		b.pos = int(offset)
	case 1:
		b.pos += int(offset)
	case 2:
		b.pos = len(b.buf) + int(offset)
	}
	return int64(b.pos), nil
}
