package trace

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/storage"
)

// encodeSegToFile streams a trace through the SegEncoder into a file.
// flushEveryDay forces a frame cut at each day boundary, producing a
// multi-frame file from a small trace.
func encodeSegToFile(t *testing.T, tr *Trace, path string, flushEveryDay bool) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc, err := NewSegEncoder(f)
	if err != nil {
		t.Fatal(err)
	}
	enc.SetSeed(tr.Meta.Seed)
	enc.SetMergeDay(tr.Meta.MergeDay)
	prev := int32(-1)
	for _, ev := range tr.Events {
		if flushEveryDay && prev >= 0 && ev.Day > prev {
			if err := enc.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
		prev = ev.Day
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// encodeSegBytes renders a trace as an in-memory segmented container.
func encodeSegBytes(t testing.TB, tr *Trace, flushEveryDay bool) []byte {
	t.Helper()
	var ws seekBuffer
	enc, err := NewSegEncoder(&ws)
	if err != nil {
		t.Fatal(err)
	}
	enc.SetSeed(tr.Meta.Seed)
	enc.SetMergeDay(tr.Meta.MergeDay)
	prev := int32(-1)
	for _, ev := range tr.Events {
		if flushEveryDay && prev >= 0 && ev.Day > prev {
			if err := enc.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
		prev = ev.Day
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return ws.buf
}

// TestSegRoundtripMatchesFlat is the tentpole's correctness bar at the
// event level: the segmented container must yield exactly the events and
// meta the flat container does.
func TestSegRoundtripMatchesFlat(t *testing.T) {
	tr := synthTrace(513)
	tr.Meta.MergeDay = 17
	dir := t.TempDir()
	flatPath := filepath.Join(dir, "flat.trace")
	segPath := filepath.Join(dir, "seg.trace")
	encodeToFile(t, tr, flatPath)
	encodeSegToFile(t, tr, segPath, true)

	flat, err := OpenFileSource(flatPath)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := OpenSegFileSource(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Meta() != flat.Meta() {
		t.Fatalf("meta: seg %+v, flat %+v", seg.Meta(), flat.Meta())
	}
	if seg.Events() != uint64(len(tr.Events)) {
		t.Fatalf("Events() = %d, want %d", seg.Events(), len(tr.Events))
	}
	fe, se := drain(t, flat), drain(t, seg)
	if len(fe) != len(se) {
		t.Fatalf("event count: seg %d, flat %d", len(se), len(fe))
	}
	for i := range fe {
		if fe[i] != se[i] {
			t.Fatalf("event %d: seg %+v, flat %+v", i, se[i], fe[i])
		}
	}
	st := seg.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected a multi-frame file, got %d segments", st.Segments)
	}
	if !st.Indexed || st.RawBytes == 0 || st.CompressedBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// A second pass sees the same stream (Source contract).
	if se2 := drain(t, seg); len(se2) != len(se) {
		t.Fatalf("second pass: %d events, want %d", len(se2), len(se))
	}
}

// TestSegOpenAt verifies day addressing: the cursor yields exactly the
// events with Day >= day, and — the point of segmentation — the prefix
// segments are never even read, which the cursor's fetched-byte count
// observes.
func TestSegOpenAt(t *testing.T) {
	tr := synthTrace(513)
	path := filepath.Join(t.TempDir(), "seg.trace")
	encodeSegToFile(t, tr, path, true)
	s, err := OpenSegFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.Open()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok, err := full.Next(); err != nil {
			t.Fatal(err)
		} else if !ok {
			break
		}
	}
	fullBytes := full.(*segCursor).bytesRead()
	full.Close()

	lastDay := tr.Meta.Days - 1
	for _, day := range []int32{0, 1, lastDay / 2, lastDay, lastDay + 1} {
		cur, err := s.OpenAt(day)
		if err != nil {
			t.Fatalf("OpenAt(%d): %v", day, err)
		}
		var got []Event
		for {
			ev, ok, err := cur.Next()
			if err != nil {
				t.Fatalf("OpenAt(%d): %v", day, err)
			}
			if !ok {
				break
			}
			got = append(got, ev)
		}
		var want []Event
		for _, ev := range tr.Events {
			if ev.Day >= day {
				want = append(want, ev)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("OpenAt(%d): %d events, want %d", day, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("OpenAt(%d) event %d: %+v, want %+v", day, i, got[i], want[i])
			}
		}
		if sc, ok := cur.(*segCursor); ok && day >= lastDay/2 && day <= lastDay {
			if n := sc.bytesRead(); n >= fullBytes {
				t.Fatalf("OpenAt(%d) fetched %d bytes, full pass fetched %d: prefix segments were read", day, n, fullBytes)
			}
		}
		cur.Close()
	}
}

// TestSegOpenAtMidFrameDay: a day straddling a frame boundary (Flush
// mid-day) must still seek correctly — the day index points into the
// middle of a frame and the reader discards within it.
func TestSegOpenAtMidFrameDay(t *testing.T) {
	var events []Event
	for i := 0; i < 64; i++ {
		events = append(events, Event{Kind: AddNode, Day: int32(i / 16), U: int32(i), Origin: OriginXiaonei})
	}
	tr := &Trace{Events: events}
	tr.Meta = Summarize(events)

	var ws seekBuffer
	enc, err := NewSegEncoder(&ws)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range events {
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 { // cut frames mid-day
			if err := enc.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := openSegBytes(ws.buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.segs) < 4 {
		t.Fatalf("expected several frames, got %d", len(s.segs))
	}
	for day := int32(0); day <= 4; day++ {
		cur, err := s.OpenAt(day)
		if err != nil {
			t.Fatal(err)
		}
		var got []Event
		for {
			ev, ok, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, ev)
		}
		cur.Close()
		want := 0
		for _, ev := range events {
			if ev.Day >= day {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("OpenAt(%d): %d events, want %d", day, len(got), want)
		}
	}
}

// TestSegCorruptionTypedError: a flipped payload byte must surface as
// ErrSegmentCorrupt naming the exact segment and file offset, and the
// prefix before the damage must still replay.
func TestSegCorruptionTypedError(t *testing.T) {
	tr := synthTrace(257)
	path := filepath.Join(t.TempDir(), "seg.trace")
	encodeSegToFile(t, tr, path, true)
	s, err := OpenSegFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.segs) < 3 {
		t.Fatalf("need >= 3 frames, got %d", len(s.segs))
	}
	victim := s.segs[2]

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[victim.fileOff+segFrameHdrLen+2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSegFileSource(path) // header+footer untouched: opens
	if err != nil {
		t.Fatal(err)
	}
	cur, err := s2.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var n uint64
	for {
		_, ok, err := cur.Next()
		if err != nil {
			if !errors.Is(err, ErrSegmentCorrupt) {
				t.Fatalf("error = %v, want ErrSegmentCorrupt", err)
			}
			want := fmt.Sprintf("segment 2 at byte %d", victim.fileOff)
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q does not pin %q", err, want)
			}
			break
		}
		if !ok {
			t.Fatal("corrupt frame decoded cleanly")
		}
		n++
	}
	// Everything before the damaged segment decoded.
	if n < victim.firstEvent {
		t.Fatalf("only %d events before failure, want at least %d", n, victim.firstEvent)
	}
	// Day-addressed reads that skip the damaged segment still work.
	lastSeg := s2.segs[len(s2.segs)-1]
	cur2, err := s2.OpenAt(lastSeg.firstDay)
	if err != nil {
		t.Fatal(err)
	}
	defer cur2.Close()
	if _, ok, err := cur2.Next(); err != nil || !ok {
		t.Fatalf("post-damage OpenAt: ok=%v err=%v", ok, err)
	}
}

// TestSegFooterStrippedRebuild: with the footer gone (crash after the
// last frame, before Close's footer write — then a header restored by
// hand, or a future partial-recovery tool), the frame scan rebuilds the
// segment table; the day index is absent, so OpenAt degrades to
// decode-and-discard and EventsThrough says "cannot answer", exactly
// like a flat file with a damaged index.
func TestSegFooterStrippedRebuild(t *testing.T) {
	tr := synthTrace(129)
	path := filepath.Join(t.TempDir(), "seg.trace")
	encodeSegToFile(t, tr, path, true)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the footer via the trailer and strip both.
	footLen := int64(uint64(data[len(data)-12]) | uint64(data[len(data)-11])<<8 | uint64(data[len(data)-10])<<16 | uint64(data[len(data)-9])<<24)
	stripped := data[:int64(len(data))-indexTrailerLen-footLen]
	if err := os.WriteFile(path, stripped, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenSegFileSource(path)
	if err != nil {
		t.Fatalf("footer-less open: %v", err)
	}
	if s.Index() != nil {
		t.Fatal("index should be absent after footer loss")
	}
	if _, ok := EventsThrough(s, 3); ok {
		t.Fatal("EventsThrough should not answer without an index")
	}
	got := drain(t, s)
	if len(got) != len(tr.Events) {
		t.Fatalf("drained %d events, want %d", len(got), len(tr.Events))
	}
	cur, err := s.OpenAt(5)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	ev, ok, err := cur.Next()
	if err != nil || !ok || ev.Day < 5 {
		t.Fatalf("fallback OpenAt(5) = %+v ok=%v err=%v", ev, ok, err)
	}
}

// TestSegNotFinalized: a file whose writer flushed frames but never
// closed must be rejected loudly with the typed error.
func TestSegNotFinalized(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewSegEncoder(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range synthTrace(65).Events {
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close() // no enc.Close: simulated crash
	if _, err := OpenSegFileSource(path); !errors.Is(err, ErrNotFinalized) {
		t.Fatalf("open = %v, want ErrNotFinalized", err)
	}
}

// TestSegEmptyTrace: zero events still produce a well-formed container.
func TestSegEmptyTrace(t *testing.T) {
	blob := encodeSegBytes(t, &Trace{Meta: Meta{MergeDay: -1}}, false)
	s, err := openSegBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if s.Events() != 0 || len(drain(t, s)) != 0 {
		t.Fatalf("empty container decoded %d events", s.Events())
	}
}

// TestSegBackend routes the same container through a storage backend:
// every read is a ranged Get, and day addressing works identically.
func TestSegBackend(t *testing.T) {
	tr := synthTrace(257)
	blob := encodeSegBytes(t, tr, true)
	b := storage.NewDirBackend(t.TempDir())
	if err := b.Put("traces/synth.seg", blob); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSegBackend(b, "traces/synth.seg")
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, s)
	if len(got) != len(tr.Events) {
		t.Fatalf("backend drain: %d events, want %d", len(got), len(tr.Events))
	}
	cur, err := s.OpenAt(7)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	ev, ok, err := cur.Next()
	if err != nil || !ok || ev.Day < 7 {
		t.Fatalf("backend OpenAt(7) = %+v ok=%v err=%v", ev, ok, err)
	}
	if _, err := OpenSegBackend(b, "traces/missing.seg"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("missing object open = %v, want ErrNotExist", err)
	}
}

// TestOpenTraceSniffs: one open for both container formats.
func TestOpenTraceSniffs(t *testing.T) {
	tr := synthTrace(65)
	dir := t.TempDir()
	flatPath := filepath.Join(dir, "flat.trace")
	segPath := filepath.Join(dir, "seg.trace")
	encodeToFile(t, tr, flatPath)
	encodeSegToFile(t, tr, segPath, false)

	ff, err := OpenTrace(flatPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ff.(*FileSource); !ok {
		t.Fatalf("flat OpenTrace = %T", ff)
	}
	sf, err := OpenTrace(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sf.(*SegFileSource); !ok {
		t.Fatalf("seg OpenTrace = %T", sf)
	}
	if ff.Meta() != sf.Meta() {
		t.Fatalf("meta: flat %+v, seg %+v", ff.Meta(), sf.Meta())
	}
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTrace(junk); err == nil {
		t.Fatal("junk opened")
	}
}

// TestSegAppendRejected: segmented containers are immutable; OpenAppend
// must refuse them with the typed error, not a confusing magic failure.
func TestSegAppendRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.trace")
	encodeSegToFile(t, synthTrace(33), path, false)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := OpenAppend(f); !errors.Is(err, ErrNotAppendable) {
		t.Fatalf("OpenAppend on segmented = %v, want ErrNotAppendable", err)
	}
}

// TestSegEventsThrough: the checkpoint plane's consistency probe must
// answer identically over both containers.
func TestSegEventsThrough(t *testing.T) {
	tr := synthTrace(257)
	blob := encodeSegBytes(t, tr, true)
	s, err := openSegBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	for day := int32(-1); day <= tr.Meta.Days+1; day++ {
		want, ok := EventsThrough(SliceSource(tr.Events), day)
		if !ok {
			t.Fatal("slice EventsThrough not ok")
		}
		got, ok := EventsThrough(s, day)
		if !ok {
			t.Fatalf("seg EventsThrough(%d) not ok", day)
		}
		if got != want {
			t.Fatalf("EventsThrough(%d) = %d, want %d", day, got, want)
		}
	}
}

// TestSegPrefetchWraps: the decode-ahead plane must treat the segmented
// source like any other file-backed source — decompression happens on
// the reader goroutine and the events come out identical.
func TestSegPrefetchWraps(t *testing.T) {
	tr := synthTrace(257)
	blob := encodeSegBytes(t, tr, true)
	s, err := openSegBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, Prefetch(s))
	if len(got) != len(tr.Events) {
		t.Fatalf("prefetch drain: %d events, want %d", len(got), len(tr.Events))
	}
	for i := range got {
		if got[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v, want %+v", i, got[i], tr.Events[i])
		}
	}
}

// FuzzSegDecode hardens the segmented container against corrupt input:
// opening plus a full decode must never panic, hang, or over-allocate,
// and any stream it accepts must survive a re-encode round trip.
func FuzzSegDecode(f *testing.F) {
	f.Add(encodeSegBytes(f, &Trace{Meta: Meta{MergeDay: -1}}, false))
	f.Add(encodeSegBytes(f, synthTrace(41), false))
	f.Add(encodeSegBytes(f, synthTrace(129), true))
	// A footer-less (scan-rebuilt) container is valid input too.
	multi := encodeSegBytes(f, synthTrace(129), true)
	footLen := int64(uint64(multi[len(multi)-12]) | uint64(multi[len(multi)-11])<<8 | uint64(multi[len(multi)-10])<<16 | uint64(multi[len(multi)-9])<<24)
	f.Add(append([]byte{}, multi[:int64(len(multi))-indexTrailerLen-footLen]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := openSegBytes(data)
		if err != nil {
			return // rejected input is fine; panics and hangs are not
		}
		if s.Events() > 1<<18 {
			return // don't let a lying header make the fuzzer decode forever
		}
		cur, err := s.Open()
		if err != nil {
			return
		}
		defer cur.Close()
		var events []Event
		for {
			ev, ok, err := cur.Next()
			if err != nil {
				return // corrupt payloads may fail mid-stream; that is the contract
			}
			if !ok {
				break
			}
			events = append(events, ev)
		}
		// Accepted streams round-trip.
		var ws seekBuffer
		enc, err := NewSegEncoder(&ws)
		if err != nil {
			t.Fatal(err)
		}
		meta := s.Meta()
		enc.SetSeed(meta.Seed)
		enc.SetMergeDay(meta.MergeDay)
		for i, ev := range events {
			if err := enc.Write(ev); err != nil {
				t.Fatalf("accepted event %d does not re-encode: %v", i, err)
			}
		}
		if err := enc.Close(); err != nil {
			t.Fatal(err)
		}
		s2, err := openSegBytes(ws.buf)
		if err != nil {
			t.Fatalf("re-encoded container does not open: %v", err)
		}
		cur2, err := s2.Open()
		if err != nil {
			t.Fatal(err)
		}
		defer cur2.Close()
		for i := 0; ; i++ {
			ev, ok, err := cur2.Next()
			if err != nil {
				t.Fatalf("re-encoded event %d: %v", i, err)
			}
			if !ok {
				if i != len(events) {
					t.Fatalf("re-encoded stream has %d events, want %d", i, len(events))
				}
				break
			}
			if ev != events[i] {
				t.Fatalf("event %d round trip: %+v -> %+v", i, events[i], ev)
			}
		}
	})
}
