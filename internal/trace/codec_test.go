package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestCodecRoundTrip(t *testing.T) {
	tr := &Trace{Events: tinyTrace()}
	tr.Meta = Summarize(tr.Events)
	tr.Meta.MergeDay = 2
	tr.Meta.Seed = 42

	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != tr.Meta {
		t.Fatalf("meta round trip: got %+v want %+v", got.Meta, tr.Meta)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("event count %d != %d", len(got.Events), len(tr.Events))
	}
	for i := range got.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestCodecEmptyTrace(t *testing.T) {
	tr := &Trace{Meta: Meta{MergeDay: -1}}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 0 || got.Meta.MergeDay != -1 {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	_, err := Decode(bytes.NewReader([]byte("NOPE....")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	tr := &Trace{Events: tinyTrace()}
	tr.Meta = Summarize(tr.Events)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 3 {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	// Empty stream.
	if _, err := Decode(bytes.NewReader(nil)); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v", err)
	}
}

func TestEncodeRejectsDayRegression(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Kind: AddNode, Day: 3, U: 0},
		{Kind: AddNode, Day: 1, U: 1},
	}}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err == nil {
		t.Fatal("want day regression error")
	}
}

func TestEncodeRejectsUnknownKind(t *testing.T) {
	tr := &Trace{Events: []Event{{Kind: Kind(7), Day: 0}}}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err == nil {
		t.Fatal("want unknown kind error")
	}
}

// TestCodecRoundTripRandom generates random valid traces and round-trips.
func TestCodecRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRand(seed)
		var evs []Event
		day := int32(0)
		var nodes int32
		for i := 0; i < 200; i++ {
			if rng.Intn(4) == 0 {
				day += int32(rng.Intn(3))
			}
			if nodes < 2 || rng.Intn(3) == 0 {
				evs = append(evs, Event{Kind: AddNode, Day: day, U: nodes, Origin: Origin(rng.Intn(3))})
				nodes++
			} else {
				u := int32(rng.Intn(int(nodes)))
				v := int32(rng.Intn(int(nodes)))
				if u == v {
					continue
				}
				evs = append(evs, Event{Kind: AddEdge, Day: day, U: u, V: v})
			}
		}
		tr := &Trace{Events: evs, Meta: Summarize(evs)}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if got.Meta != tr.Meta || len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range got.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
