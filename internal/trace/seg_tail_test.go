package trace

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestSegTailProbeLiveWriter follows a segmented file through its life:
// unreadable before the first frame, sealing days as frames flush, torn
// tails waited out, and finalized on Close. This is the live-follow
// story for compressed traces — frames replace day-boundary flushes as
// the unit of visibility.
func TestSegTailProbeLiveWriter(t *testing.T) {
	tr := synthTrace(257)
	path := filepath.Join(t.TempDir(), "live.seg")
	probe := NewTailProbe(path)
	if _, err := probe.Probe(); err == nil {
		t.Fatal("probe of a missing file succeeded")
	}

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc, err := NewSegEncoder(f)
	if err != nil {
		t.Fatal(err)
	}
	enc.SetSeed(tr.Meta.Seed)

	// Nothing flushed yet: the file is empty (the header is lazy), so the
	// probe backs off.
	if _, err := probe.Probe(); err == nil {
		t.Fatal("probe of an empty file succeeded")
	}

	i := 0
	writeThrough := func(day int32) {
		t.Helper()
		for ; i < len(tr.Events) && tr.Events[i].Day <= day; i++ {
			if err := enc.Write(tr.Events[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	countThrough := func(day int32) int64 {
		var n int64
		for _, ev := range tr.Events {
			if ev.Day <= day {
				n++
			}
		}
		return n
	}

	writeThrough(1)
	snap, err := probe.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if snap.SealedDay != 0 || snap.Finalized || snap.Anomaly != nil {
		t.Fatalf("after days 0-1: %+v", snap)
	}
	if snap.Events != countThrough(0) {
		t.Fatalf("sealed events = %d, want %d", snap.Events, countThrough(0))
	}

	// A torn trailing frame (half a frame header) is waited out, not an
	// anomaly, and moves nothing.
	if _, err := f.Write([]byte("RRSG\x01\x02")); err != nil {
		t.Fatal(err)
	}
	snap, err = probe.Probe()
	if err != nil || snap.SealedDay != 0 || snap.Anomaly != nil {
		t.Fatalf("torn tail: %+v, %v", snap, err)
	}
	// Writer's next frame overwrites nothing — in reality the torn bytes
	// are the writer's own partial write; simulate completion by removing
	// them before the next flush.
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(fi.Size() - 6); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		t.Fatal(err)
	}

	writeThrough(9)
	snap, err = probe.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if snap.SealedDay != 8 || snap.Finalized {
		t.Fatalf("after days 0-9: %+v", snap)
	}
	if snap.Events != countThrough(8) {
		t.Fatalf("sealed events = %d, want %d", snap.Events, countThrough(8))
	}

	// The snapshot's source replays exactly the sealed prefix, and the
	// consistency probe answers over it.
	src := snap.Source()
	got := drain(t, src)
	if int64(len(got)) != snap.Events {
		t.Fatalf("snapshot source: %d events, want %d", len(got), snap.Events)
	}
	for j := range got {
		if got[j] != tr.Events[j] {
			t.Fatalf("snapshot event %d: %+v, want %+v", j, got[j], tr.Events[j])
		}
	}
	if n, ok := EventsThrough(src, 5); !ok || n != countThrough(5) {
		t.Fatalf("EventsThrough(5) = %d, %v; want %d", n, ok, countThrough(5))
	}
	if cur, err := src.(DaySeeker).OpenAt(4); err != nil {
		t.Fatal(err)
	} else {
		ev, ok, err := cur.Next()
		cur.Close()
		if err != nil || !ok || ev.Day != 4 {
			t.Fatalf("snapshot OpenAt(4) = %+v ok=%v err=%v", ev, ok, err)
		}
	}

	// Finalize: every day seals, including the last.
	for ; i < len(tr.Events); i++ {
		if err := enc.Write(tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err = probe.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Finalized || snap.SealedDay != tr.Meta.Days-1 || int64(snap.Events) != int64(len(tr.Events)) {
		t.Fatalf("finalized: %+v", snap)
	}
	if snap.Meta != tr.Meta {
		t.Fatalf("finalized meta %+v, want %+v", snap.Meta, tr.Meta)
	}
}

// TestSegTailProbeTrustedFinalized: the first probe of an
// already-finalized segmented file trusts header and footer without
// decoding, exactly like the flat fast path, and its snapshot source
// still replays correctly.
func TestSegTailProbeTrustedFinalized(t *testing.T) {
	tr := synthTrace(129)
	path := filepath.Join(t.TempDir(), "final.seg")
	encodeSegToFile(t, tr, path, true)

	probe := NewTailProbe(path)
	snap, err := probe.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Finalized || snap.Meta != tr.Meta || int64(snap.Events) != int64(len(tr.Events)) {
		t.Fatalf("trusted probe: %+v", snap)
	}
	got := drain(t, snap.Source())
	if len(got) != len(tr.Events) {
		t.Fatalf("trusted source: %d events, want %d", len(got), len(tr.Events))
	}
	// A second probe of the unchanged file re-renders the same view.
	snap2, err := probe.Probe()
	if err != nil || !snap2.Finalized || snap2.Events != snap.Events {
		t.Fatalf("re-probe: %+v, %v", snap2, err)
	}
}

// TestSegTailProbeCorruptFrame: a complete frame failing its checksum is
// an anomaly — reported, frontier pinned before the damage, sealed
// prefix still serveable.
func TestSegTailProbeCorruptFrame(t *testing.T) {
	tr := synthTrace(257)
	path := filepath.Join(t.TempDir(), "corrupt.seg")

	// Build a mid-write file (no Close): frames only.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewSegEncoder(f)
	if err != nil {
		t.Fatal(err)
	}
	prev := int32(-1)
	for _, ev := range tr.Events {
		if prev >= 0 && ev.Day > prev {
			if err := enc.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
		prev = ev.Day
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Locate frame 3 via a clean probe's segment table, then corrupt it.
	clean := NewTailProbe(path)
	snapClean, err := clean.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if len(snapClean.segs) < 5 {
		t.Fatalf("need >= 5 frames, got %d", len(snapClean.segs))
	}
	victim := snapClean.segs[3]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[victim.fileOff+segFrameHdrLen] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	probe := NewTailProbe(path)
	snap, err := probe.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(snap.Anomaly, ErrSegmentCorrupt) {
		t.Fatalf("anomaly = %v, want ErrSegmentCorrupt", snap.Anomaly)
	}
	if snap.FrontierEvents != int64(victim.firstEvent) {
		t.Fatalf("frontier = %d events, want pinned at %d", snap.FrontierEvents, victim.firstEvent)
	}
	// The prefix before the damaged frame still seals and serves.
	if snap.Events <= 0 || snap.SealedDay < 0 {
		t.Fatalf("no sealed prefix: %+v", snap)
	}
	got := drain(t, snap.Source())
	if int64(len(got)) != snap.Events {
		t.Fatalf("sealed prefix: %d events, want %d", len(got), snap.Events)
	}
}
