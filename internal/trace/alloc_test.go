package trace

import (
	"bufio"
	"bytes"
	"testing"
)

// TestDecodeAllocsPerEvent pins the decoder hot loop to zero allocations
// per event: over a 20k-event stream the whole run — decoder construction
// included — must stay within a small fixed budget, which is only possible
// if Next itself never allocates. A regression that adds even one
// allocation per event blows the bound by four orders of magnitude.
func TestDecodeAllocsPerEvent(t *testing.T) {
	tr := synthTrace(10000)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	nEvents := len(tr.Events)

	rd := bytes.NewReader(data)
	br := bufio.NewReader(rd)
	allocs := testing.AllocsPerRun(5, func() {
		rd.Reset(data)
		br.Reset(rd)
		d, err := NewDecoder(br)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			_, ok, err := d.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		if n != nEvents {
			t.Fatalf("decoded %d events, want %d", n, nEvents)
		}
	})
	// Construction allocates the meta buffer, the parsed Meta, and the
	// Decoder itself; the per-event loop must contribute nothing.
	const setupBudget = 16
	if allocs > setupBudget {
		t.Fatalf("decode pass allocated %.0f times for %d events (budget %d): Decoder.Next is allocating per event", allocs, nEvents, setupBudget)
	}
}

// TestApplyAllocsPerEvent pins State.Apply to amortized near-zero
// allocations: growth must come from capacity-doubling reservations
// (O(log n) allocations per pass), never from per-event appends.
func TestApplyAllocsPerEvent(t *testing.T) {
	tr := synthTrace(10000)
	nEvents := len(tr.Events)

	allocs := testing.AllocsPerRun(5, func() {
		st := NewState(0, 0)
		for _, ev := range tr.Events {
			if err := st.Apply(ev); err != nil {
				t.Fatal(err)
			}
		}
		if st.Graph.NumNodes() != 10000 {
			t.Fatalf("replayed %d nodes", st.Graph.NumNodes())
		}
	})
	// A doubling schedule over 10k nodes is ~14 growth steps for each of
	// the node columns and arena pools; 256 leaves ample slack while still
	// catching any O(n) allocation pattern (10k nodes → ≥10k allocs).
	const budget = 256
	if allocs > budget {
		t.Fatalf("apply pass allocated %.0f times for %d events (budget %d): State.Apply is allocating per event", allocs, nEvents, budget)
	}
}
