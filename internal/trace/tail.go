package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// TailProbe incrementally tracks a trace file that a writer may still be
// appending to (see DESIGN.md §9). Each Probe call re-examines the file
// and returns a TailSnapshot describing the *sealed prefix* — the events
// of every day that is provably complete — which is the only part of a
// growing trace an analysis may consume.
//
// The sealing rule: day D is sealed once an event of a later day has been
// observed (events are written in non-decreasing day order, so a day-D+1
// event proves day D gained its last event), or once the file is
// finalized (a valid index footer plus a back-patched header count mean
// the writer's Close ran and every day is complete). The trailing,
// still-growing day is therefore never sealed until the writer moves past
// it — that is what makes figures computed from a snapshot reproducible
// against a from-zero run over the eventually-finalized file.
//
// The probe tolerates everything a live writer does to the file:
//
//   - A stale header. An appender (OpenAppend) leaves the pre-append
//     header in place until its Close, so the header's count is treated
//     as a floor, never the stream's extent — the probe finds the extent
//     by decoding.
//   - A missing index footer. The appender truncates it away while it
//     holds the file; the probe builds its own day index as it decodes.
//   - A torn tail. A partially flushed final event decodes as a
//     truncation; the probe forgives it, keeps its frontier at the last
//     complete event, and re-reads the few partial bytes next time.
//
// Decode anomalies that a live writer cannot produce (a bad kind byte,
// id overflow) are reported on the snapshot's Anomaly field without
// advancing the frontier: the sealed prefix stays serveable while the
// operator investigates.
//
// Probes are incremental: each call decodes only the bytes appended
// since the previous call (the first probe of an already-finalized file
// trusts its header and footer outright, like OpenFileSource). A
// TailProbe is not safe for concurrent use; callers serialize Probe.
type TailProbe struct {
	path string
	fi   os.FileInfo // identity of the file the state below describes

	start       int64 // byte offset of the first event (end of header)
	headerMeta  Meta
	headerCount uint64

	cur     tailPos // decode frontier: boundary after the last complete event
	curDay  int32   // day-delta watermark at the frontier
	curMeta Meta    // counters accumulated over [0, cur.count)

	sealed      tailPos // boundary before the trailing day's first event
	sealedMeta  Meta    // counters accumulated over [0, sealed.count)
	trailingDay int32   // day of the events past sealed; -1 before any event
	sealedValid bool    // false after a trusted-finalized load, until a new
	// day barrier (or a reset) re-derives the sealed state by decoding

	index []DayIndexEntry // first-event-of-day entries, entries never mutated

	seg *segProbe // non-nil while probing a segmented (RRS1) file
}

// segProbe is the extra frontier state a segmented file needs: the scan
// position in *file* coordinates (frames are fetched and checksummed
// whole), while the inherited cur/sealed positions run in *raw-stream*
// coordinates — the address space the day index and any snapshot source
// operate in. Each complete frame is decompressed exactly once, when the
// scan first crosses it.
type segProbe struct {
	frameOff int64 // file offset of the next unscanned frame
	rawOff   int64 // raw-stream offset corresponding to frameOff
	segs     []segEntry
}

// tailPos is one event boundary in the stream: a byte offset and how many
// events precede it.
type tailPos struct {
	off   int64
	count uint64
}

// NewTailProbe returns a probe for the trace file at path. The file need
// not exist yet; Probe reports the open error until it does.
func NewTailProbe(path string) *TailProbe { return &TailProbe{path: path} }

// reset clears all decode state; the next Probe re-derives it from
// scratch.
func (p *TailProbe) reset() {
	p.fi = nil
	p.cur = tailPos{}
	p.curDay = 0
	p.curMeta = Meta{MergeDay: -1}
	p.sealed = tailPos{}
	p.sealedMeta = Meta{MergeDay: -1}
	p.trailingDay = -1
	p.sealedValid = true
	p.index = nil
	p.seg = nil
}

// Probe re-examines the file and returns the current sealed-prefix
// snapshot. An error means the file could not be probed at all (missing,
// unreadable, or its header is not yet decodable — a from-scratch writer
// that has not finalized); the caller backs off and retries. Tail decode
// anomalies ride on the snapshot instead: the sealed prefix they leave
// behind is still valid.
func (p *TailProbe) Probe() (*TailSnapshot, error) {
	f, err := os.Open(p.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	// Dispatch on the container magic: a segmented (compressed) file has
	// its own frame-at-a-time probing path.
	var mag [4]byte
	if _, err := f.ReadAt(mag[:], 0); err != nil {
		return nil, err // shorter than a magic: not probeable yet
	}
	if mag == segMagic {
		return p.probeSeg(f, fi)
	}
	// The header is re-read every probe: an appender's Close back-patches
	// it in place (and a from-scratch writer's header stays poisoned —
	// undecodable — until its Close, which surfaces here as an error).
	meta, count, start, err := parseStreamHeader(f)
	if err != nil {
		return nil, err
	}
	// The footer bounds the event stream when present. Validity here is
	// structural (magic, CRC) only — during the writer's Close there is a
	// moment when the new footer is on disk but the header is still old,
	// and using the stale count to judge the footer would misplace the
	// stream's end.
	idx, footOff := readDayIndexOff(f, maxEventCount)
	eventsEnd := fi.Size()
	if footOff >= 0 {
		eventsEnd = footOff
	}

	fresh := p.fi == nil || !os.SameFile(p.fi, fi) || p.seg != nil || p.start != start || eventsEnd < p.cur.off
	if fresh {
		p.reset()
		p.start = start
		p.cur.off = start
		// A finalized file on a clean slate: trust header and footer the
		// way OpenFileSource does, skipping the O(events) decode. The
		// sealed state is deliberately left unset (sealedValid=false) —
		// if the file is later reopened for append, the first new day
		// barrier re-derives it, and cheaper than a full decode.
		trust := footOff >= 0 && idx != nil &&
			(count == 0) == (len(idx) == 0) &&
			(len(idx) == 0 || (idx[len(idx)-1].Event < count && idx[len(idx)-1].Offset < footOff))
		if trust {
			p.fi = fi
			p.headerMeta, p.headerCount = meta, count
			p.cur = tailPos{off: eventsEnd, count: count}
			p.curMeta = meta
			if len(idx) > 0 {
				p.curDay = idx[len(idx)-1].Day
			}
			p.sealedValid = false
			p.index = idx
			return p.snapshot(true, nil), nil
		}
	}
	p.fi = fi
	p.headerMeta, p.headerCount = meta, count

	// Decode forward from the frontier over the newly visible bytes.
	var anomaly error
	if eventsEnd > p.cur.off {
		base := p.cur.off
		cr := &countingReader{r: io.NewSectionReader(f, base, eventsEnd-base)}
		br := bufio.NewReader(cr)
		dec := resumeDecoder(br, p.headerMeta, maxEventCount, p.curDay)
		for {
			ev, ok, err := dec.Next()
			if err != nil {
				if errors.Is(err, ErrTruncated) {
					// The stream ran out: either exactly at our frontier
					// (a clean boundary) or inside an event (a torn tail
					// write). Both are normal under a live writer; a
					// finalized stream ending mid-event is not.
					if footOff >= 0 && p.cur.off != eventsEnd {
						anomaly = fmt.Errorf("trace: finalized stream ends mid-event: %w", err)
					}
				} else {
					anomaly = err
				}
				break
			}
			if !ok {
				break
			}
			if !p.sealedValid && ev.Day <= p.curDay {
				// Appended events continue the trusted file's final day:
				// the sealed boundary now lies inside a prefix we never
				// decoded. Rescan from scratch to re-derive it exactly.
				p.reset()
				return p.Probe()
			}
			if p.cur.count == 0 || ev.Day > p.curDay {
				p.sealed = p.cur
				p.sealedMeta = p.curMeta
				p.trailingDay = ev.Day
				p.sealedValid = true
				p.index = append(p.index, DayIndexEntry{
					Day: ev.Day, Offset: p.cur.off, Event: p.cur.count, PrevDay: p.curDay,
				})
			}
			p.curMeta.Accumulate(ev)
			p.cur.count++
			p.curDay = ev.Day
			p.cur.off = base + cr.n - int64(br.Buffered())
		}
	}

	finalized := footOff >= 0 && anomaly == nil &&
		p.cur.off == eventsEnd && p.cur.count == p.headerCount
	return p.snapshot(finalized, anomaly), nil
}

// probeSeg is Probe for the segmented container. The sealing rule and
// all tolerance properties are the flat path's; what differs is the unit
// of progress: only *fully-flushed frames* are consumed. A frame whose
// header or payload has not completely hit the disk is a torn tail to
// wait out; a frame that is complete but fails its checksum is an
// anomaly that never advances the frontier. Within each complete frame
// the payload is checksum-verified, decompressed once, and its events
// run through the same day-barrier sealing machine — so a day is sealed
// only when a later-day event has been observed in some fully-flushed
// frame (or the footer finalizes the file).
func (p *TailProbe) probeSeg(f *os.File, fi os.FileInfo) (*TailSnapshot, error) {
	hdr := make([]byte, fixedHeaderLen)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, err // header not fully written yet: back off
	}
	meta, count, hdrFinal, err := parseSegHeader(hdr)
	if err != nil {
		return nil, err
	}
	// A mid-write header's count slot is poisoned; the probe treats the
	// count as unknown (zero floor) and finds the extent by scanning.
	if !hdrFinal {
		count = 0
	}
	h := &segHandle{ra: f}

	fresh := p.fi == nil || !os.SameFile(p.fi, fi) || p.seg == nil || fi.Size() < p.seg.frameOff
	if fresh {
		p.reset()
		p.start = 0 // snapshot offsets run in raw-stream coordinates
		p.seg = &segProbe{frameOff: int64(fixedHeaderLen)}
		if hdrFinal {
			// Finalized file on a clean slate: trust header and footer the
			// way OpenSegFileSource does, skipping the O(events) decode.
			if segs, idx, ok := readSegFooter(h, fi.Size()); ok {
				var total uint64
				rawEnd, frameEnd := int64(0), int64(fixedHeaderLen)
				for _, s := range segs {
					total += s.events
					rawEnd = s.rawEnd()
					frameEnd = s.fileEnd()
				}
				if total == count {
					p.fi = fi
					p.headerMeta, p.headerCount = meta, count
					p.seg.segs = segs
					p.seg.frameOff = frameEnd
					p.seg.rawOff = rawEnd
					p.cur = tailPos{off: rawEnd, count: count}
					p.curMeta = meta
					if len(segs) > 0 {
						p.curDay = segs[len(segs)-1].lastDay
					}
					p.sealedValid = false
					p.index = idx
					return p.snapshot(true, nil), nil
				}
			}
		}
	}
	p.fi = fi
	p.headerMeta, p.headerCount = meta, count

	var anomaly error
	sp := p.seg
scan:
	for {
		if fi.Size() < sp.frameOff+segFrameHdrLen {
			break // no complete frame header yet: wait
		}
		var fh [segFrameHdrLen]byte
		if err := h.readAt(fh[:], sp.frameOff); err != nil {
			anomaly = err
			break
		}
		if [4]byte(fh[:4]) != segFrameMagic {
			break // the footer (or trailing garbage) starts here
		}
		seg := segEntry{
			fileOff:    sp.frameOff,
			compLen:    int64(binary.LittleEndian.Uint32(fh[4:])),
			rawLen:     int64(binary.LittleEndian.Uint32(fh[8:])),
			rawStart:   sp.rawOff,
			events:     uint64(binary.LittleEndian.Uint32(fh[12:])),
			firstEvent: p.cur.count,
			firstDay:   int32(binary.LittleEndian.Uint32(fh[16:])),
			lastDay:    int32(binary.LittleEndian.Uint32(fh[20:])),
			prevDay:    int32(binary.LittleEndian.Uint32(fh[24:])),
		}
		ordinal := len(sp.segs)
		if seg.compLen == 0 || seg.compLen > maxSegFrameLen || seg.rawLen == 0 || seg.rawLen > maxSegFrameLen ||
			seg.events == 0 || int64(seg.events) > seg.rawLen || seg.prevDay != p.curDay {
			anomaly = fmt.Errorf("%w: segment %d at byte %d: implausible frame header", ErrSegmentCorrupt, ordinal, sp.frameOff)
			break
		}
		if fi.Size() < seg.fileEnd() {
			break // torn frame write: wait for the rest
		}
		payload := make([]byte, seg.compLen)
		if err := h.readAt(payload, sp.frameOff+segFrameHdrLen); err != nil {
			anomaly = err
			break
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(fh[28:]) {
			anomaly = fmt.Errorf("%w: segment %d at byte %d: checksum mismatch", ErrSegmentCorrupt, ordinal, sp.frameOff)
			break
		}
		// Decode the whole frame before applying any of it, so a frame
		// that fails mid-decode leaves the frontier exactly where it was.
		raw, ierr := inflateFrame(payload, seg)
		if ierr != nil {
			anomaly = fmt.Errorf("%w: segment %d at byte %d: %v", ErrSegmentCorrupt, ordinal, sp.frameOff, ierr)
			break
		}
		cr := &countingReader{r: bytes.NewReader(raw)}
		br := bufio.NewReader(cr)
		dec := resumeDecoder(br, p.headerMeta, seg.events, p.curDay)
		evs := make([]Event, 0, seg.events)
		offs := make([]int64, 0, seg.events)
		for {
			ev, ok, derr := dec.Next()
			if derr != nil {
				anomaly = fmt.Errorf("%w: segment %d at byte %d: %v", ErrSegmentCorrupt, ordinal, sp.frameOff, derr)
				break scan
			}
			if !ok {
				break
			}
			evs = append(evs, ev)
			offs = append(offs, sp.rawOff+cr.n-int64(br.Buffered()))
		}
		if uint64(len(evs)) != seg.events || offs[len(offs)-1] != sp.rawOff+seg.rawLen {
			anomaly = fmt.Errorf("%w: segment %d at byte %d: payload contradicts frame header", ErrSegmentCorrupt, ordinal, sp.frameOff)
			break
		}
		for i, ev := range evs {
			if !p.sealedValid && ev.Day <= p.curDay {
				// Events continued past a trusted-finalized load (the file
				// was rebuilt in place): rescan from scratch.
				p.reset()
				return p.Probe()
			}
			if p.cur.count == 0 || ev.Day > p.curDay {
				p.sealed = p.cur
				p.sealedMeta = p.curMeta
				p.trailingDay = ev.Day
				p.sealedValid = true
				p.index = append(p.index, DayIndexEntry{
					Day: ev.Day, Offset: p.cur.off, Event: p.cur.count, PrevDay: p.curDay,
				})
			}
			p.curMeta.Accumulate(ev)
			p.cur.count++
			p.curDay = ev.Day
			p.cur.off = offs[i]
		}
		sp.segs = append(sp.segs, seg)
		sp.frameOff = seg.fileEnd()
		sp.rawOff += seg.rawLen
	}

	finalized := false
	if anomaly == nil && hdrFinal && p.cur.count == count {
		_, _, finalized = readSegFooter(h, fi.Size())
	}
	return p.snapshot(finalized, anomaly), nil
}

// snapshot renders the probe's current state.
func (p *TailProbe) snapshot(finalized bool, anomaly error) *TailSnapshot {
	s := &TailSnapshot{
		Path:           p.path,
		Anomaly:        anomaly,
		FrontierDay:    p.curDay,
		FrontierEvents: int64(p.cur.count),
		FrontierOffset: p.cur.off,
		start:          p.start,
	}
	if p.seg != nil {
		s.segs = p.seg.segs[:len(p.seg.segs):len(p.seg.segs)]
	}
	if p.cur.count == 0 {
		s.FrontierDay = -1
	}
	switch {
	case finalized:
		s.Finalized = true
		s.Meta = p.headerMeta
		s.SealedDay = p.headerMeta.Days - 1
		s.Events = int64(p.cur.count)
		s.EndOffset = p.cur.off
		s.index = p.index[:len(p.index):len(p.index)]
	case !p.sealedValid:
		// Trusted-finalized file reopened for append, no new day barrier
		// yet: the pre-append header still vouches for every event we
		// have seen (the frontier equals its count), so everything
		// through its last day stays sealed.
		s.Meta = p.headerMeta
		s.SealedDay = p.headerMeta.Days - 1
		s.Events = int64(p.cur.count)
		s.EndOffset = p.cur.off
		s.index = p.index[:len(p.index):len(p.index)]
	case p.trailingDay < 0:
		// No complete event yet: nothing is sealed.
		s.SealedDay = -1
		s.Meta = Meta{MergeDay: -1, Seed: p.headerMeta.Seed}
		s.EndOffset = p.start
	default:
		m := p.sealedMeta
		// Days is set from the barrier, not the counters: event-free days
		// between the last sealed event and the trailing day are complete
		// too.
		m.Days = p.trailingDay
		m.Seed = p.headerMeta.Seed
		m.MergeDay = -1
		if hd := p.headerMeta.MergeDay; hd >= 0 && hd < p.trailingDay {
			m.MergeDay = hd
		}
		s.Meta = m
		s.SealedDay = p.trailingDay - 1
		s.Events = int64(p.sealed.count)
		s.EndOffset = p.sealed.off
		// Exclude the trailing (unsealed) day's index entry.
		k := len(p.index)
		if k > 0 && p.index[k-1].Event >= p.sealed.count {
			k--
		}
		s.index = p.index[:k:k]
	}
	return s
}

// parseStreamHeader reads the trace header (either layout) and returns
// its meta, declared count, and the byte offset of the first event.
func parseStreamHeader(f *os.File) (Meta, uint64, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return Meta{}, 0, 0, err
	}
	cr := &countingReader{r: f}
	br := bufio.NewReader(cr)
	dec, err := NewDecoder(br)
	if err != nil {
		return Meta{}, 0, 0, err
	}
	return dec.Meta(), dec.Events(), cr.n - int64(br.Buffered()), nil
}

// TailSnapshot is one probe's view of a growing trace: the sealed prefix
// (serveable) and the decode frontier (diagnostic). Snapshots are
// immutable; Source adapts the sealed prefix to the analysis data plane.
type TailSnapshot struct {
	// Path is the probed file.
	Path string
	// Meta describes the sealed prefix: Days = SealedDay+1, counters
	// accumulated over exactly the sealed events, Seed (and MergeDay,
	// once the merge day is sealed) from the file header. For a
	// Finalized file it is the header meta verbatim.
	Meta Meta
	// SealedDay is the last complete day, -1 when nothing is sealed yet.
	SealedDay int32
	// Events is the number of events in the sealed prefix.
	Events int64
	// EndOffset is the byte offset where the sealed prefix ends.
	EndOffset int64
	// Finalized reports that the writer's Close has run: header and
	// footer are consistent and every day — including the last — is
	// sealed.
	Finalized bool
	// FrontierDay/FrontierEvents/FrontierOffset locate the decode
	// frontier: the last complete event observed, sealed or not.
	// FrontierDay is -1 before any event.
	FrontierDay    int32
	FrontierEvents int64
	FrontierOffset int64
	// Anomaly is a tail decode failure that a live writer cannot
	// explain (corruption past the sealed prefix). The sealed prefix
	// itself is unaffected.
	Anomaly error

	start int64
	index []DayIndexEntry
	segs  []segEntry // non-nil for a segmented file; offsets above are raw-stream
}

// Source adapts the sealed prefix to a MetaSource. Cursors decode the
// underlying file bounded by the snapshot's event count, so a writer
// appending past the sealed prefix — or finalizing the file — never
// perturbs an open pass. Returns nil when the snapshot holds no sealed
// events.
func (s *TailSnapshot) Source() MetaSource {
	if s.Events <= 0 {
		return nil
	}
	if s.segs != nil {
		// Sealed prefix of a segmented file: the count bound stops the
		// decoder mid-stream, so frames past the sealed boundary are never
		// fetched, let alone decompressed.
		return &SegFileSource{
			Path:   s.Path,
			blob:   fileSegBlob{path: s.Path},
			meta:   s.Meta,
			events: uint64(s.Events),
			segs:   s.segs,
			index:  s.index,
		}
	}
	return &tailSource{
		path:   s.Path,
		meta:   s.Meta,
		start:  s.start,
		events: uint64(s.Events),
		index:  s.index,
	}
}

// tailSource replays the sealed prefix of a (possibly still growing)
// trace file. It is the same out-of-core data plane as FileSource with
// two differences: the meta and event count come from the tail probe's
// sealed snapshot rather than the file header, and every cursor is
// count-bounded so bytes past the sealed prefix are never decoded.
type tailSource struct {
	path   string
	meta   Meta
	start  int64
	events uint64
	index  []DayIndexEntry
}

// Meta implements MetaSource with the sealed-prefix metadata.
func (s *tailSource) Meta() Meta { return s.meta }

// Open implements Source.
func (s *tailSource) Open() (Cursor, error) { return s.openFrom(s.start, 0, 0) }

// OpenAt implements DaySeeker via the snapshot's observed day index. A
// nil index (a Frozen view of an index-less file) falls back to
// decode-and-discard of the prefix, like FileSource.
func (s *tailSource) OpenAt(day int32) (Cursor, error) {
	if day <= 0 {
		return s.Open()
	}
	if s.index == nil {
		cur, err := s.Open()
		if err != nil {
			return nil, err
		}
		skipped, err := skipToDay(cur, day)
		if err != nil {
			cur.Close()
			return nil, err
		}
		return skipped, nil
	}
	i := sort.Search(len(s.index), func(i int) bool { return s.index[i].Day >= day })
	if i == len(s.index) {
		// Past the last sealed day with events: an exhausted cursor.
		return &sliceCursor{}, nil
	}
	e := s.index[i]
	return s.openFrom(e.Offset, e.Event, e.PrevDay)
}

// openFrom opens a cursor at an event boundary: byte offset off, with
// skipped events before it and day watermark prevDay in force.
func (s *tailSource) openFrom(off int64, skipped uint64, prevDay int32) (Cursor, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	cr := &countingReader{r: f}
	dec := resumeDecoder(bufio.NewReader(cr), s.meta, s.events-skipped, prevDay)
	return &fileCursor{f: f, cr: cr, dec: dec}, nil
}

// eventsThrough counts sealed events with Day <= day; the EventsThrough
// dispatch in source.go routes here, which is what lets the checkpoint
// plane's consistency probe work against a sealed tail.
func (s *tailSource) eventsThrough(day int32) (int64, bool) {
	if s.index == nil {
		return 0, false
	}
	i := sort.Search(len(s.index), func(i int) bool { return s.index[i].Day > day })
	if i == len(s.index) {
		return int64(s.events), true
	}
	return int64(s.index[i].Event), true
}
