package trace

// Prefetch wraps a Source so that every cursor it opens decodes ahead of
// the consumer on a reader goroutine: events are accumulated into
// day-aligned batches and handed off through a small bounded channel, so
// decode/parse cost (file I/O, varint decoding) overlaps the consumer's
// per-event compute. It is the pipelined data plane of the parallel
// shared pass (DESIGN.md §7).
//
// The hand-off is deterministic: the consumer observes exactly the inner
// cursor's event sequence, and a decode error surfaces at exactly the
// position the inner cursor reported it — after every event that preceded
// it, never earlier. Batches are split at day boundaries (a batch never
// spans two days), so the consumer's day-barrier work naturally runs
// while the reader decodes the next day.
//
// In-memory sources (SliceSource, TraceSource) are returned unchanged:
// their cursors have no decode cost to hide, and the copy through a
// channel would only add overhead.
func Prefetch(src Source) Source {
	switch src.(type) {
	case SliceSource, TraceSource:
		return src
	}
	return &prefetchSource{inner: src}
}

type prefetchSource struct{ inner Source }

// Open implements Source.
func (s *prefetchSource) Open() (Cursor, error) {
	cur, err := s.inner.Open()
	if err != nil {
		return nil, err
	}
	return newPrefetchCursor(cur), nil
}

// OpenAt implements DaySeeker by delegating positioning to the inner
// source (OpenSourceAt uses its day index when it has one) and
// prefetching from there.
func (s *prefetchSource) OpenAt(day int32) (Cursor, error) {
	cur, err := OpenSourceAt(s.inner, day)
	if err != nil {
		return nil, err
	}
	return newPrefetchCursor(cur), nil
}

const (
	// prefetchBatchCap bounds a batch's length so a very dense day is
	// handed off in slices instead of one huge allocation.
	prefetchBatchCap = 8192
	// prefetchDepth is how many full batches the hand-off channel buffers.
	// With the batch the reader is filling and the batch the consumer is
	// draining, depth 1 is the classic double buffer: the reader is at
	// most one day (or batch-cap slice) ahead of the consumer.
	prefetchDepth = 1
)

// prefetchBatch is one hand-off unit. err, when non-nil, is the inner
// cursor's error and is delivered to the consumer only after every event
// in the batch — the same position a sequential pass would see it.
type prefetchBatch struct {
	events []Event
	err    error
}

type prefetchCursor struct {
	out  chan prefetchBatch
	free chan []Event  // recycled batch buffers, consumer -> reader
	stop chan struct{} // closed by Close to unblock the reader
	done chan struct{} // closed by the reader after inner.Close

	closeErr error // inner cursor's Close error; written before done closes

	cur prefetchBatch // batch being drained
	i   int
	err error
	eof bool
}

func newPrefetchCursor(inner Cursor) *prefetchCursor {
	c := &prefetchCursor{
		out:  make(chan prefetchBatch, prefetchDepth),
		free: make(chan []Event, prefetchDepth+2),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go c.read(inner)
	return c
}

// read is the reader goroutine: it drains the inner cursor into
// day-aligned batches and sends them on out. It owns the inner cursor
// and closes it on the way out, recording the Close error for the
// consumer's Close to return.
func (c *prefetchCursor) read(inner Cursor) {
	defer close(c.done)
	defer close(c.out)
	defer func() { c.closeErr = inner.Close() }()
	buf := c.take()
	var day int32
	// send hands one batch to the consumer; false means Close was called
	// and the pass should stop.
	send := func(b prefetchBatch) bool {
		select {
		case c.out <- b:
			return true
		case <-c.stop:
			return false
		}
	}
	for {
		ev, ok, err := inner.Next()
		if err != nil {
			// The error is attached to the events that preceded it, so the
			// consumer sees them first and the error at its exact position.
			send(prefetchBatch{events: buf, err: err})
			return
		}
		if !ok {
			if len(buf) > 0 {
				send(prefetchBatch{events: buf})
			}
			return
		}
		if len(buf) > 0 && (ev.Day != day || len(buf) >= prefetchBatchCap) {
			if !send(prefetchBatch{events: buf}) {
				return
			}
			buf = c.take()
		}
		day = ev.Day
		buf = append(buf, ev)
	}
}

// take reuses a recycled buffer when one is available.
func (c *prefetchCursor) take() []Event {
	select {
	case b := <-c.free:
		return b
	default:
		return make([]Event, 0, prefetchBatchCap)
	}
}

// Next implements Cursor. It drains the current batch, then blocks on the
// reader's next hand-off.
func (c *prefetchCursor) Next() (Event, bool, error) {
	for {
		if c.err != nil {
			return Event{}, false, c.err
		}
		if c.i < len(c.cur.events) {
			ev := c.cur.events[c.i]
			c.i++
			return ev, true, nil
		}
		if c.cur.err != nil {
			c.err = c.cur.err
			return Event{}, false, c.err
		}
		if c.eof {
			return Event{}, false, nil
		}
		if c.cur.events != nil {
			select {
			case c.free <- c.cur.events[:0]:
			default:
			}
			c.cur.events = nil
		}
		b, ok := <-c.out
		if !ok {
			c.eof = true
			continue
		}
		c.cur, c.i = b, 0
	}
}

// Close implements Cursor: it stops the reader (which may be blocked on a
// full hand-off channel), waits for it to close the inner cursor, and
// returns the inner cursor's Close error.
func (c *prefetchCursor) Close() error {
	close(c.stop)
	for range c.out { // unblock and drain until the reader closes out
	}
	<-c.done
	return c.closeErr
}
