package trace

import (
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

// resetFrameCache empties the process-wide cache and restores the default
// capacity when the test finishes. Disabling drops every entry, so
// disable-then-enable yields a cold cache at the requested capacity.
func resetFrameCache(t *testing.T, capBytes int64) {
	t.Helper()
	SetFrameCacheCapacity(0)
	SetFrameCacheCapacity(capBytes)
	t.Cleanup(func() {
		SetFrameCacheCapacity(0)
		SetFrameCacheCapacity(DefaultFrameCacheBytes)
	})
}

// TestFrameCacheLRU exercises the cache in isolation: insertion, hit
// promotion, byte-capped eviction in LRU order, the oversized-frame and
// disabled paths, and the racing-put rule.
func TestFrameCacheLRU(t *testing.T) {
	c := newFrameCache(100)
	k := func(i int) frameCacheKey { return frameCacheKey{blob: "b", off: int64(i)} }
	mk := func(n int) []byte { return make([]byte, n) }

	c.put(k(1), mk(40))
	c.put(k(2), mk(40))
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("miss on resident entry 1")
	}
	// 1 was promoted, so inserting 3 (40 bytes, total 120 > 100) must
	// evict 2, the least recently used.
	c.put(k(3), mk(40))
	if _, ok := c.get(k(2)); ok {
		t.Fatal("entry 2 should have been evicted")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("entry 1 should have survived (it was promoted)")
	}
	if _, ok := c.get(k(3)); !ok {
		t.Fatal("entry 3 should be resident")
	}

	// A frame larger than the whole budget is never cached.
	c.put(k(4), mk(200))
	if _, ok := c.get(k(4)); ok {
		t.Fatal("oversized frame should not be cached")
	}

	// A racing put of a resident key keeps the first copy.
	first, _ := c.get(k(1))
	c.put(k(1), mk(40))
	again, _ := c.get(k(1))
	if &first[0] != &again[0] {
		t.Fatal("racing put replaced the resident copy")
	}

	// The empty blob identity (uncacheable containers) is a no-op.
	c.put(frameCacheKey{off: 7}, mk(10))
	if _, ok := c.get(frameCacheKey{off: 7}); ok {
		t.Fatal("empty blob identity must not cache")
	}

	// Disabling drops everything.
	c.setCapacity(0)
	if _, ok := c.get(k(1)); ok {
		t.Fatal("disable should drop all entries")
	}
	c.put(k(5), mk(10))
	if _, ok := c.get(k(5)); ok {
		t.Fatal("disabled cache accepted an entry")
	}

	s := c.snapshot()
	if s.Bytes != 0 || s.Entries != 0 {
		t.Fatalf("disabled cache reports residency: %+v", s)
	}
	if s.Evictions == 0 {
		t.Fatal("evictions counter never moved")
	}
}

// TestSegRepeatOpenServesFromCache is the cache's end-to-end contract: a
// second pass over the same segmented file must decode identical events
// while inflating zero new bytes — every frame comes out of the cache.
func TestSegRepeatOpenServesFromCache(t *testing.T) {
	resetFrameCache(t, DefaultFrameCacheBytes)
	tr := synthTrace(2000)
	path := filepath.Join(t.TempDir(), "cache.rrs")
	encodeSegToFile(t, tr, path, true)

	src, err := OpenSegFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	first := drain(t, src)
	mid := ReadFrameCacheStats()
	if mid.InflatedBytes == 0 {
		t.Fatal("cold pass inflated nothing — test is not exercising frames")
	}

	second := drain(t, src)
	after := ReadFrameCacheStats()
	if d := after.InflatedBytes - mid.InflatedBytes; d != 0 {
		t.Fatalf("warm pass inflated %d bytes, want 0", d)
	}
	if after.Hits <= mid.Hits {
		t.Fatal("warm pass recorded no cache hits")
	}
	if len(first) != len(second) {
		t.Fatalf("pass lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("event %d differs between cold and warm pass", i)
		}
	}
}

// TestSegRepeatOpenAtInflatesLess pins the acceptance number: repeated
// OpenAt resumes against a warm cache must inflate at least 2x fewer
// bytes than the same resumes with the cache disabled.
func TestSegRepeatOpenAtInflatesLess(t *testing.T) {
	tr := synthTrace(4000)
	path := filepath.Join(t.TempDir(), "openat.rrs")
	encodeSegToFile(t, tr, path, true)
	src, err := OpenSegFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	days := src.Meta().Days

	passes := func() {
		for rep := 0; rep < 4; rep++ {
			for _, day := range []int32{0, days / 2, days - 1} {
				cur, err := src.OpenAt(day)
				if err != nil {
					t.Fatal(err)
				}
				for {
					_, ok, err := cur.Next()
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						break
					}
				}
				cur.Close()
			}
		}
	}

	resetFrameCache(t, DefaultFrameCacheBytes)
	SetFrameCacheCapacity(0) // disabled
	before := ReadFrameCacheStats()
	passes()
	cold := ReadFrameCacheStats().InflatedBytes - before.InflatedBytes

	SetFrameCacheCapacity(DefaultFrameCacheBytes) // enabled, empty
	before = ReadFrameCacheStats()
	passes()
	warm := ReadFrameCacheStats().InflatedBytes - before.InflatedBytes

	if cold == 0 {
		t.Fatal("disabled passes inflated nothing — test is not exercising frames")
	}
	if warm*2 > cold {
		t.Fatalf("frame cache saved too little: %d bytes inflated warm vs %d disabled (want >= 2x reduction)", warm, cold)
	}
}

// TestSegBackendBlobUncached: backend-served containers have no
// process-stable identity, so their frames must bypass the cache rather
// than risk a collision serving another container's frames.
func TestSegBackendBlobUncached(t *testing.T) {
	resetFrameCache(t, DefaultFrameCacheBytes)
	tr := synthTrace(500)
	data := encodeSegBytes(t, tr, true)
	b := storage.NewDirBackend(t.TempDir())
	if err := b.Put("tr.rrs", data); err != nil {
		t.Fatal(err)
	}
	src, err := OpenSegBackend(b, "tr.rrs")
	if err != nil {
		t.Fatal(err)
	}
	before := ReadFrameCacheStats()
	drain(t, src)
	drain(t, src)
	after := ReadFrameCacheStats()
	if after.Hits != before.Hits {
		t.Fatalf("backend blob hit the frame cache %d times", after.Hits-before.Hits)
	}
	if after.Entries != before.Entries {
		t.Fatalf("backend blob populated the frame cache: %d new entries", after.Entries-before.Entries)
	}
}
