package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// File format:
//
//	magic "RRT1" (4 bytes)
//	uvarint meta length, JSON-encoded Meta
//	uvarint event count
//	per event: kind (1 byte), uvarint day delta from previous event,
//	           then AddNode: uvarint node id, origin (1 byte)
//	                AddEdge: uvarint u, uvarint v
//
// Day deltas and dense ids keep typical traces around 5–8 bytes/event.

var magic = [4]byte{'R', 'R', 'T', '1'}

// ErrBadMagic is returned when decoding a stream that is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic")

// Encode writes tr to w in the binary trace format.
func Encode(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	metaJSON, err := json.Marshal(tr.Meta)
	if err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(metaJSON))); err != nil {
		return err
	}
	if _, err := bw.Write(metaJSON); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(tr.Events))); err != nil {
		return err
	}
	prevDay := int32(0)
	for i, ev := range tr.Events {
		if ev.Day < prevDay {
			return fmt.Errorf("trace: event %d day regression %d -> %d", i, prevDay, ev.Day)
		}
		if err := bw.WriteByte(byte(ev.Kind)); err != nil {
			return err
		}
		if err := putUvarint(uint64(ev.Day - prevDay)); err != nil {
			return err
		}
		prevDay = ev.Day
		switch ev.Kind {
		case AddNode:
			if err := putUvarint(uint64(ev.U)); err != nil {
				return err
			}
			if err := bw.WriteByte(byte(ev.Origin)); err != nil {
				return err
			}
		case AddEdge:
			if err := putUvarint(uint64(ev.U)); err != nil {
				return err
			}
			if err := putUvarint(uint64(ev.V)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("trace: event %d has unknown kind %d", i, ev.Kind)
		}
	}
	return bw.Flush()
}

// Decode reads a trace in the binary format from r.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	metaLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if metaLen > 1<<20 {
		return nil, fmt.Errorf("trace: unreasonable meta length %d", metaLen)
	}
	metaJSON := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaJSON); err != nil {
		return nil, err
	}
	var tr Trace
	if err := json.Unmarshal(metaJSON, &tr.Meta); err != nil {
		return nil, fmt.Errorf("trace: bad meta: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if count > 1<<33 {
		return nil, fmt.Errorf("trace: unreasonable event count %d", count)
	}
	tr.Events = make([]Event, 0, count)
	day := int32(0)
	for i := uint64(0); i < count; i++ {
		kindByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d day: %w", i, err)
		}
		day += int32(delta)
		ev := Event{Kind: Kind(kindByte), Day: day}
		switch ev.Kind {
		case AddNode:
			u, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d node: %w", i, err)
			}
			origin, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: event %d origin: %w", i, err)
			}
			ev.U = int32(u)
			ev.Origin = Origin(origin)
		case AddEdge:
			u, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d u: %w", i, err)
			}
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d v: %w", i, err)
			}
			ev.U, ev.V = int32(u), int32(v)
		default:
			return nil, fmt.Errorf("trace: event %d has unknown kind %d", i, kindByte)
		}
		tr.Events = append(tr.Events, ev)
	}
	return &tr, nil
}
