package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// File format:
//
//	magic "RRT1" (4 bytes)
//	uvarint meta length, JSON-encoded Meta
//	uvarint event count
//	per event: kind (1 byte), uvarint day delta from previous event,
//	           then AddNode: uvarint node id, origin (1 byte)
//	                AddEdge: uvarint u, uvarint v
//
// Day deltas and dense ids keep typical traces around 5–8 bytes/event.
//
// The streaming Encoder emits the same format with a fixed-width header
// (space-padded meta slot, padded-uvarint count) so Close can back-patch
// the final counters in place; Decoder and Decode read both layouts
// transparently.

var magic = [4]byte{'R', 'R', 'T', '1'}

// Decode hardening bounds and typed errors. The bounds reject
// resource-exhaustion headers before any allocation; the overflow errors
// reject events whose uvarint fields cannot fit the int32 id/day space.
const (
	// maxMetaLen bounds the header's JSON meta blob.
	maxMetaLen = 1 << 20
	// maxEventCount bounds the declared event count (~8.6G events).
	maxEventCount = 1 << 33
	// decodePrealloc caps how much capacity Decode trusts the header's
	// count for; a larger (possibly lying) count grows by append instead
	// of one huge up-front allocation.
	decodePrealloc = 1 << 20
	// encMetaPad is the fixed, space-padded meta slot the streaming
	// Encoder reserves so Close can rewrite the header in place.
	encMetaPad = 256
	// encCountPad is the fixed width of the Encoder's padded-uvarint
	// event count.
	encCountPad = binary.MaxVarintLen64
)

var (
	// ErrBadMagic is returned when decoding a stream that is not a trace
	// file.
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrMetaTooLarge is returned when the header declares a meta blob
	// beyond maxMetaLen.
	ErrMetaTooLarge = errors.New("trace: meta length exceeds limit")
	// ErrCountTooLarge is returned when the header declares more than
	// maxEventCount events.
	ErrCountTooLarge = errors.New("trace: event count exceeds limit")
	// ErrBadKind is returned for an event with an unknown kind byte.
	ErrBadKind = errors.New("trace: unknown event kind")
	// ErrIDOverflow is returned when a node id does not fit the int32 id
	// space.
	ErrIDOverflow = errors.New("trace: node id overflows id space")
	// ErrDayOverflow is returned when an accumulated day delta does not
	// fit the int32 day space.
	ErrDayOverflow = errors.New("trace: day overflows day space")
	// ErrTruncated is returned when the stream ends inside an event the
	// header promised.
	ErrTruncated = errors.New("trace: truncated stream")
)

// appendEvent appends one event's encoding to dst. Its errors carry no
// "trace:" prefix; the callers wrap them with one plus the event index.
func appendEvent(dst []byte, ev Event, prevDay int32) ([]byte, error) {
	if ev.Day < prevDay {
		return dst, fmt.Errorf("day regression %d -> %d", prevDay, ev.Day)
	}
	dst = append(dst, byte(ev.Kind))
	dst = binary.AppendUvarint(dst, uint64(ev.Day-prevDay))
	switch ev.Kind {
	case AddNode:
		dst = binary.AppendUvarint(dst, uint64(ev.U))
		dst = append(dst, byte(ev.Origin))
	case AddEdge:
		dst = binary.AppendUvarint(dst, uint64(ev.U))
		dst = binary.AppendUvarint(dst, uint64(ev.V))
	default:
		return dst, fmt.Errorf("unknown event kind %d", ev.Kind)
	}
	return dst, nil
}

// Encode writes tr to w in the binary trace format.
func Encode(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	metaJSON, err := json.Marshal(tr.Meta)
	if err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(metaJSON))); err != nil {
		return err
	}
	if _, err := bw.Write(metaJSON); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(tr.Events))); err != nil {
		return err
	}
	prevDay := int32(0)
	var scratch []byte
	for i, ev := range tr.Events {
		scratch, err = appendEvent(scratch[:0], ev, prevDay)
		if err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		if _, err := bw.Write(scratch); err != nil {
			return err
		}
		prevDay = ev.Day
	}
	return bw.Flush()
}

// Decoder incrementally decodes a trace stream: the header is read at
// construction, events one at a time through Next, so a pass over an
// arbitrarily long trace holds O(1) memory. FileSource builds its cursors
// on it.
type Decoder struct {
	br    *bufio.Reader
	meta  Meta
	count uint64 // events the header promises
	read  uint64 // events decoded so far
	day   int32
	err   error // sticky first failure
}

// NewDecoder reads and validates the stream's header (magic, meta, event
// count) and returns a decoder positioned at the first event.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	metaLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: meta length: %w", err)
	}
	if metaLen > maxMetaLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrMetaTooLarge, metaLen)
	}
	metaJSON := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaJSON); err != nil {
		return nil, fmt.Errorf("trace: meta: %w", err)
	}
	d := &Decoder{br: br}
	if err := json.Unmarshal(metaJSON, &d.meta); err != nil {
		return nil, fmt.Errorf("trace: bad meta: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: event count: %w", err)
	}
	if count > maxEventCount {
		return nil, fmt.Errorf("%w: %d events", ErrCountTooLarge, count)
	}
	d.count = count
	return d, nil
}

// resumeDecoder returns a decoder positioned mid-stream: br must be
// positioned at the first byte of an event boundary, remaining is the
// number of events from there to the end of the stream, and day the
// day-delta watermark in force at that boundary. FileSource.OpenAt builds
// these from the trace file's day index.
func resumeDecoder(br *bufio.Reader, meta Meta, remaining uint64, day int32) *Decoder {
	return &Decoder{br: br, meta: meta, count: remaining, day: day}
}

// Meta returns the header's metadata.
func (d *Decoder) Meta() Meta { return d.meta }

// Events returns the event count the header declares.
func (d *Decoder) Events() uint64 { return d.count }

// Next decodes one event. ok=false signals the clean end of the declared
// stream; errors (corruption, truncation, overflow) are sticky.
func (d *Decoder) Next() (Event, bool, error) {
	if d.err != nil {
		return Event{}, false, d.err
	}
	if d.read >= d.count {
		return Event{}, false, nil
	}
	ev, err := d.decodeEvent()
	if err != nil {
		d.err = err
		return Event{}, false, err
	}
	d.read++
	return ev, true, nil
}

// wrap annotates a per-event read failure, converting end-of-stream into
// the typed truncation error (the header promised more events).
func (d *Decoder) wrap(what string, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: event %d %s: %w", ErrTruncated, d.read, what, err)
	}
	return fmt.Errorf("trace: event %d %s: %w", d.read, what, err)
}

func (d *Decoder) readID(what string) (int32, error) {
	u, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, d.wrap(what, err)
	}
	if u > math.MaxInt32 {
		return 0, fmt.Errorf("%w: event %d %s %d", ErrIDOverflow, d.read, what, u)
	}
	return int32(u), nil
}

func (d *Decoder) decodeEvent() (Event, error) {
	kindByte, err := d.br.ReadByte()
	if err != nil {
		return Event{}, d.wrap("kind", err)
	}
	delta, err := binary.ReadUvarint(d.br)
	if err != nil {
		return Event{}, d.wrap("day", err)
	}
	if delta > math.MaxInt32 || int64(d.day)+int64(delta) > math.MaxInt32 {
		return Event{}, fmt.Errorf("%w: event %d day delta %d", ErrDayOverflow, d.read, delta)
	}
	d.day += int32(delta)
	ev := Event{Kind: Kind(kindByte), Day: d.day}
	switch ev.Kind {
	case AddNode:
		if ev.U, err = d.readID("node"); err != nil {
			return Event{}, err
		}
		origin, err := d.br.ReadByte()
		if err != nil {
			return Event{}, d.wrap("origin", err)
		}
		ev.Origin = Origin(origin)
	case AddEdge:
		if ev.U, err = d.readID("u"); err != nil {
			return Event{}, err
		}
		if ev.V, err = d.readID("v"); err != nil {
			return Event{}, err
		}
	default:
		return Event{}, fmt.Errorf("%w: event %d kind %d", ErrBadKind, d.read, kindByte)
	}
	return ev, nil
}

// Decode reads a full trace in the binary format from r.
func Decode(r io.Reader) (*Trace, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	hint := d.count
	if hint > decodePrealloc {
		hint = decodePrealloc
	}
	tr := &Trace{Meta: d.meta, Events: make([]Event, 0, hint)}
	for {
		ev, ok, err := d.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return tr, nil
		}
		tr.Events = append(tr.Events, ev)
	}
}

// putUvarint10 writes x as a fixed-width (MaxVarintLen64-byte) varint by
// padding with zero continuation groups; binary.ReadUvarint accepts the
// non-canonical form, which is what lets the Encoder reserve the count
// slot before the count is known.
func putUvarint10(buf []byte, x uint64) {
	for i := 0; i < encCountPad-1; i++ {
		buf[i] = byte(x)&0x7f | 0x80
		x >>= 7
	}
	buf[encCountPad-1] = byte(x)
}

// DayIndexEntry locates the first event of one day in the encoded event
// stream, so a cursor can start mid-trace without decoding the prefix.
type DayIndexEntry struct {
	// Day is the entry's day: the located event is the stream's first
	// event with this Day.
	Day int32
	// Offset is the absolute byte offset of that event's encoding.
	Offset int64
	// Event is that event's ordinal in the stream.
	Event uint64
	// PrevDay is the day-delta watermark in force before that event.
	PrevDay int32
}

// Day-index footer layout, appended by the streaming Encoder after the
// event stream and tolerated-if-absent by every decode path (the decoder
// stops after the header's event count, so trailing bytes are invisible
// to it):
//
//	magic "RRX1" (4 bytes)
//	uvarint index version (1)
//	uvarint entry count
//	per entry, delta-encoded against the previous entry:
//	  uvarint day delta, uvarint offset delta, uvarint event delta,
//	  uvarint (day - prevDay) watermark gap
//	uint32 LE CRC-32 (IEEE) of everything above
//	trailer: uint64 LE footer length (magic through CRC), magic "RRXE"
//
// The fixed-width trailer lets a reader find the footer by seeking to the
// end of the file; files written before the index existed (or by the
// one-shot Encode) simply have no trailer and decode as before. The CRC
// exists because a damaged index must read as *absent*, never as a wrong
// seek target: OpenAt trusts an entry's event ordinal for the resumed
// decoder's remaining-count, so silent corruption there would truncate a
// replay instead of failing it.
var (
	indexMagic    = [4]byte{'R', 'R', 'X', '1'}
	indexEndMagic = [4]byte{'R', 'R', 'X', 'E'}
)

const (
	indexVersion = 1
	// indexTrailerLen is the fixed trailer: 8-byte length + end magic.
	indexTrailerLen = 8 + 4
	// maxIndexEntries bounds a parsed index (one entry per distinct day).
	maxIndexEntries = 1 << 24
)

// appendDayIndex renders the index footer (magic through CRC, no
// trailer).
func appendDayIndex(dst []byte, idx []DayIndexEntry) []byte {
	start := len(dst)
	dst = append(dst, indexMagic[:]...)
	dst = binary.AppendUvarint(dst, indexVersion)
	dst = binary.AppendUvarint(dst, uint64(len(idx)))
	var prev DayIndexEntry
	for _, e := range idx {
		dst = binary.AppendUvarint(dst, uint64(e.Day-prev.Day))
		dst = binary.AppendUvarint(dst, uint64(e.Offset-prev.Offset))
		dst = binary.AppendUvarint(dst, e.Event-prev.Event)
		dst = binary.AppendUvarint(dst, uint64(e.Day-e.PrevDay))
		prev = e
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(dst[start:]))
	return append(dst, crc[:]...)
}

// parseDayIndex decodes an index footer rendered by appendDayIndex. Any
// structural or checksum problem returns an error; callers treat a bad
// index as absent, never as data corruption — the event stream is
// self-contained.
func parseDayIndex(b []byte) ([]DayIndexEntry, error) {
	if len(b) < len(indexMagic)+4 || [4]byte(b[:4]) != indexMagic {
		return nil, errors.New("trace: bad index magic")
	}
	crc := binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(b[:len(b)-4]) != crc {
		return nil, errors.New("trace: index checksum mismatch")
	}
	b = b[4 : len(b)-4]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, errors.New("trace: truncated index")
		}
		b = b[n:]
		return v, nil
	}
	ver, err := next()
	if err != nil {
		return nil, err
	}
	if ver != indexVersion {
		return nil, fmt.Errorf("trace: index version %d", ver)
	}
	count, err := next()
	if err != nil {
		return nil, err
	}
	if count > maxIndexEntries {
		return nil, fmt.Errorf("trace: index declares %d entries", count)
	}
	hint := count
	if hint > 1<<16 {
		hint = 1 << 16
	}
	idx := make([]DayIndexEntry, 0, hint)
	var prev DayIndexEntry
	for i := uint64(0); i < count; i++ {
		var vs [4]uint64
		for j := range vs {
			if vs[j], err = next(); err != nil {
				return nil, err
			}
		}
		day := int64(prev.Day) + int64(vs[0])
		off := prev.Offset + int64(vs[1])
		back := int64(vs[3])
		if day > math.MaxInt32 || off < 0 || back > day {
			return nil, errors.New("trace: index entry out of range")
		}
		e := DayIndexEntry{
			Day:     int32(day),
			Offset:  off,
			Event:   prev.Event + vs[2],
			PrevDay: int32(day - back),
		}
		if i == 0 && (e.Event != 0 || e.PrevDay != 0) {
			return nil, errors.New("trace: index head entry not at stream start")
		}
		if i > 0 && (e.Day <= prev.Day || e.Offset <= prev.Offset || e.Event <= prev.Event) {
			return nil, errors.New("trace: index entries not increasing")
		}
		idx = append(idx, e)
		prev = e
	}
	return idx, nil
}

// Encoder is the incremental trace sink: events are appended one at a
// time (e.g. straight from gen.GenerateStream) and the header — meta
// counters accumulated from the events plus the event count — is
// back-patched on Close. A trace therefore streams to disk without the
// event slice or the encoded bytes ever being resident. The writer must
// be seekable (a file); the output decodes with the same Decoder/Decode
// as Encode's. Close also appends the per-day byte-offset index footer
// that lets FileSource.OpenAt start a cursor mid-trace.
type Encoder struct {
	ws      io.WriteSeeker
	bw      *bufio.Writer
	meta    Meta
	count   uint64
	prevDay int32
	closed  bool

	offset  int64 // absolute byte offset of the next event's encoding
	index   []DayIndexEntry
	scratch []byte
}

// NewEncoder writes a placeholder header to ws and returns a ready sink.
// The placeholder is deliberately invalid (its count slot cannot decode),
// so a file whose writer crashed before Close fails loudly instead of
// passing as an empty trace. MergeDay defaults to -1 (no merge); use
// SetMergeDay/SetSeed to record generator knowledge before Close.
func NewEncoder(ws io.WriteSeeker) (*Encoder, error) {
	e := &Encoder{ws: ws, bw: bufio.NewWriterSize(ws, 1<<16)}
	e.meta.MergeDay = -1
	hdr, err := e.header(false)
	if err != nil {
		return nil, err
	}
	if _, err := e.bw.Write(hdr); err != nil {
		return nil, err
	}
	e.offset = int64(len(hdr))
	return e, nil
}

// SetSeed records the generator seed in the header meta.
func (e *Encoder) SetSeed(seed int64) { e.meta.Seed = seed }

// SetMergeDay records the merge day in the header meta (-1 for none).
func (e *Encoder) SetMergeDay(day int32) { e.meta.MergeDay = day }

// header renders the fixed-width rewritable header. When final is false
// the count slot is filled with continuation bytes that no uvarint reader
// accepts, poisoning the file until Close back-patches the real count.
func (e *Encoder) header(final bool) ([]byte, error) {
	return renderFixedHeader(magic, e.meta, e.count, !final)
}

// renderFixedHeader renders the fixed-width rewritable header layout the
// streaming encoders (flat and segmented) share: magic, a space-padded
// meta slot, and a padded-uvarint count slot. With poison set the count
// slot is filled with continuation bytes no uvarint reader accepts, so a
// file whose writer crashed before Close fails loudly instead of passing
// as an empty trace.
func renderFixedHeader(mag [4]byte, meta Meta, count uint64, poison bool) ([]byte, error) {
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	if len(metaJSON) > encMetaPad {
		return nil, fmt.Errorf("trace: meta exceeds the %d-byte encoder slot", encMetaPad)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], encMetaPad)
	hdr := make([]byte, 0, len(mag)+n+encMetaPad+encCountPad)
	hdr = append(hdr, mag[:]...)
	hdr = append(hdr, lenBuf[:n]...)
	pad := make([]byte, encMetaPad)
	for i := range pad {
		pad[i] = ' ' // JSON decoders skip trailing whitespace
	}
	copy(pad, metaJSON)
	hdr = append(hdr, pad...)
	var cnt [encCountPad]byte
	if poison {
		for i := range cnt {
			cnt[i] = 0xff
		}
	} else {
		putUvarint10(cnt[:], count)
	}
	return append(hdr, cnt[:]...), nil
}

// Write appends one event. Events must arrive in non-decreasing day
// order, exactly as a replay or generator emits them. The first event of
// every new day is recorded in the day index that Close appends.
func (e *Encoder) Write(ev Event) error {
	if e.closed {
		return errors.New("trace: encoder is closed")
	}
	scratch, err := appendEvent(e.scratch[:0], ev, e.prevDay)
	if err != nil {
		return fmt.Errorf("trace: event %d: %w", e.count, err)
	}
	e.scratch = scratch
	if e.count == 0 || ev.Day > e.prevDay {
		e.index = append(e.index, DayIndexEntry{
			Day: ev.Day, Offset: e.offset, Event: e.count, PrevDay: e.prevDay,
		})
	}
	if _, err := e.bw.Write(scratch); err != nil {
		return err
	}
	e.offset += int64(len(scratch))
	e.prevDay = ev.Day
	e.meta.Accumulate(ev)
	e.count++
	return nil
}

// Meta returns the counters accumulated so far (plus the SetSeed /
// SetMergeDay knowledge); after Close it is exactly what the header holds.
func (e *Encoder) Meta() Meta { return e.meta }

// Events returns how many events have been written (for an OpenAppend
// encoder, including the events the file already held).
func (e *Encoder) Events() uint64 { return e.count }

// Flush forces buffered event bytes down to the underlying writer. An
// appender tailing readers follow calls it at day boundaries: once the
// first event of day D+1 is on disk, a TailProbe can prove day D is
// sealed — without flushes, completed days sit invisible in the buffer
// until it fills or Close runs.
func (e *Encoder) Flush() error {
	if e.closed {
		return errors.New("trace: encoder is closed")
	}
	return e.bw.Flush()
}

// Close flushes the event stream, appends the day-index footer, and
// back-patches the header with the final meta and count. The encoder is
// unusable afterwards; closing the underlying file stays the caller's job.
func (e *Encoder) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	footer := appendDayIndex(nil, e.index)
	var trailer [indexTrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(len(footer)))
	copy(trailer[8:], indexEndMagic[:])
	footer = append(footer, trailer[:]...)
	if _, err := e.bw.Write(footer); err != nil {
		return err
	}
	if err := e.bw.Flush(); err != nil {
		return err
	}
	if _, err := e.ws.Seek(0, io.SeekStart); err != nil {
		return err
	}
	hdr, err := e.header(true)
	if err != nil {
		return err
	}
	if _, err := e.ws.Write(hdr); err != nil {
		return err
	}
	// Leave the writer positioned at the end, where appends would go.
	_, err = e.ws.Seek(0, io.SeekEnd)
	return err
}
