package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// File format:
//
//	magic "RRT1" (4 bytes)
//	uvarint meta length, JSON-encoded Meta
//	uvarint event count
//	per event: kind (1 byte), uvarint day delta from previous event,
//	           then AddNode: uvarint node id, origin (1 byte)
//	                AddEdge: uvarint u, uvarint v
//
// Day deltas and dense ids keep typical traces around 5–8 bytes/event.
//
// The streaming Encoder emits the same format with a fixed-width header
// (space-padded meta slot, padded-uvarint count) so Close can back-patch
// the final counters in place; Decoder and Decode read both layouts
// transparently.

var magic = [4]byte{'R', 'R', 'T', '1'}

// Decode hardening bounds and typed errors. The bounds reject
// resource-exhaustion headers before any allocation; the overflow errors
// reject events whose uvarint fields cannot fit the int32 id/day space.
const (
	// maxMetaLen bounds the header's JSON meta blob.
	maxMetaLen = 1 << 20
	// maxEventCount bounds the declared event count (~8.6G events).
	maxEventCount = 1 << 33
	// decodePrealloc caps how much capacity Decode trusts the header's
	// count for; a larger (possibly lying) count grows by append instead
	// of one huge up-front allocation.
	decodePrealloc = 1 << 20
	// encMetaPad is the fixed, space-padded meta slot the streaming
	// Encoder reserves so Close can rewrite the header in place.
	encMetaPad = 256
	// encCountPad is the fixed width of the Encoder's padded-uvarint
	// event count.
	encCountPad = binary.MaxVarintLen64
)

var (
	// ErrBadMagic is returned when decoding a stream that is not a trace
	// file.
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrMetaTooLarge is returned when the header declares a meta blob
	// beyond maxMetaLen.
	ErrMetaTooLarge = errors.New("trace: meta length exceeds limit")
	// ErrCountTooLarge is returned when the header declares more than
	// maxEventCount events.
	ErrCountTooLarge = errors.New("trace: event count exceeds limit")
	// ErrBadKind is returned for an event with an unknown kind byte.
	ErrBadKind = errors.New("trace: unknown event kind")
	// ErrIDOverflow is returned when a node id does not fit the int32 id
	// space.
	ErrIDOverflow = errors.New("trace: node id overflows id space")
	// ErrDayOverflow is returned when an accumulated day delta does not
	// fit the int32 day space.
	ErrDayOverflow = errors.New("trace: day overflows day space")
	// ErrTruncated is returned when the stream ends inside an event the
	// header promised.
	ErrTruncated = errors.New("trace: truncated stream")
)

// putEvent appends one event's encoding to bw and returns the new
// previous-day watermark. Its errors carry no "trace:" prefix; the
// callers wrap them with one plus the event index.
func putEvent(bw *bufio.Writer, ev Event, prevDay int32) (int32, error) {
	if ev.Day < prevDay {
		return prevDay, fmt.Errorf("day regression %d -> %d", prevDay, ev.Day)
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := bw.WriteByte(byte(ev.Kind)); err != nil {
		return prevDay, err
	}
	if err := putUvarint(uint64(ev.Day - prevDay)); err != nil {
		return prevDay, err
	}
	switch ev.Kind {
	case AddNode:
		if err := putUvarint(uint64(ev.U)); err != nil {
			return prevDay, err
		}
		if err := bw.WriteByte(byte(ev.Origin)); err != nil {
			return prevDay, err
		}
	case AddEdge:
		if err := putUvarint(uint64(ev.U)); err != nil {
			return prevDay, err
		}
		if err := putUvarint(uint64(ev.V)); err != nil {
			return prevDay, err
		}
	default:
		return prevDay, fmt.Errorf("unknown event kind %d", ev.Kind)
	}
	return ev.Day, nil
}

// Encode writes tr to w in the binary trace format.
func Encode(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	metaJSON, err := json.Marshal(tr.Meta)
	if err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(metaJSON))); err != nil {
		return err
	}
	if _, err := bw.Write(metaJSON); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(tr.Events))); err != nil {
		return err
	}
	prevDay := int32(0)
	for i, ev := range tr.Events {
		if prevDay, err = putEvent(bw, ev, prevDay); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Decoder incrementally decodes a trace stream: the header is read at
// construction, events one at a time through Next, so a pass over an
// arbitrarily long trace holds O(1) memory. FileSource builds its cursors
// on it.
type Decoder struct {
	br    *bufio.Reader
	meta  Meta
	count uint64 // events the header promises
	read  uint64 // events decoded so far
	day   int32
	err   error // sticky first failure
}

// NewDecoder reads and validates the stream's header (magic, meta, event
// count) and returns a decoder positioned at the first event.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	metaLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: meta length: %w", err)
	}
	if metaLen > maxMetaLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrMetaTooLarge, metaLen)
	}
	metaJSON := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaJSON); err != nil {
		return nil, fmt.Errorf("trace: meta: %w", err)
	}
	d := &Decoder{br: br}
	if err := json.Unmarshal(metaJSON, &d.meta); err != nil {
		return nil, fmt.Errorf("trace: bad meta: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: event count: %w", err)
	}
	if count > maxEventCount {
		return nil, fmt.Errorf("%w: %d events", ErrCountTooLarge, count)
	}
	d.count = count
	return d, nil
}

// Meta returns the header's metadata.
func (d *Decoder) Meta() Meta { return d.meta }

// Events returns the event count the header declares.
func (d *Decoder) Events() uint64 { return d.count }

// Next decodes one event. ok=false signals the clean end of the declared
// stream; errors (corruption, truncation, overflow) are sticky.
func (d *Decoder) Next() (Event, bool, error) {
	if d.err != nil {
		return Event{}, false, d.err
	}
	if d.read >= d.count {
		return Event{}, false, nil
	}
	ev, err := d.decodeEvent()
	if err != nil {
		d.err = err
		return Event{}, false, err
	}
	d.read++
	return ev, true, nil
}

// wrap annotates a per-event read failure, converting end-of-stream into
// the typed truncation error (the header promised more events).
func (d *Decoder) wrap(what string, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: event %d %s: %w", ErrTruncated, d.read, what, err)
	}
	return fmt.Errorf("trace: event %d %s: %w", d.read, what, err)
}

func (d *Decoder) readID(what string) (int32, error) {
	u, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, d.wrap(what, err)
	}
	if u > math.MaxInt32 {
		return 0, fmt.Errorf("%w: event %d %s %d", ErrIDOverflow, d.read, what, u)
	}
	return int32(u), nil
}

func (d *Decoder) decodeEvent() (Event, error) {
	kindByte, err := d.br.ReadByte()
	if err != nil {
		return Event{}, d.wrap("kind", err)
	}
	delta, err := binary.ReadUvarint(d.br)
	if err != nil {
		return Event{}, d.wrap("day", err)
	}
	if delta > math.MaxInt32 || int64(d.day)+int64(delta) > math.MaxInt32 {
		return Event{}, fmt.Errorf("%w: event %d day delta %d", ErrDayOverflow, d.read, delta)
	}
	d.day += int32(delta)
	ev := Event{Kind: Kind(kindByte), Day: d.day}
	switch ev.Kind {
	case AddNode:
		if ev.U, err = d.readID("node"); err != nil {
			return Event{}, err
		}
		origin, err := d.br.ReadByte()
		if err != nil {
			return Event{}, d.wrap("origin", err)
		}
		ev.Origin = Origin(origin)
	case AddEdge:
		if ev.U, err = d.readID("u"); err != nil {
			return Event{}, err
		}
		if ev.V, err = d.readID("v"); err != nil {
			return Event{}, err
		}
	default:
		return Event{}, fmt.Errorf("%w: event %d kind %d", ErrBadKind, d.read, kindByte)
	}
	return ev, nil
}

// Decode reads a full trace in the binary format from r.
func Decode(r io.Reader) (*Trace, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	hint := d.count
	if hint > decodePrealloc {
		hint = decodePrealloc
	}
	tr := &Trace{Meta: d.meta, Events: make([]Event, 0, hint)}
	for {
		ev, ok, err := d.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return tr, nil
		}
		tr.Events = append(tr.Events, ev)
	}
}

// putUvarint10 writes x as a fixed-width (MaxVarintLen64-byte) varint by
// padding with zero continuation groups; binary.ReadUvarint accepts the
// non-canonical form, which is what lets the Encoder reserve the count
// slot before the count is known.
func putUvarint10(buf []byte, x uint64) {
	for i := 0; i < encCountPad-1; i++ {
		buf[i] = byte(x)&0x7f | 0x80
		x >>= 7
	}
	buf[encCountPad-1] = byte(x)
}

// Encoder is the incremental trace sink: events are appended one at a
// time (e.g. straight from gen.GenerateStream) and the header — meta
// counters accumulated from the events plus the event count — is
// back-patched on Close. A trace therefore streams to disk without the
// event slice or the encoded bytes ever being resident. The writer must
// be seekable (a file); the output decodes with the same Decoder/Decode
// as Encode's.
type Encoder struct {
	ws      io.WriteSeeker
	bw      *bufio.Writer
	meta    Meta
	count   uint64
	prevDay int32
	closed  bool
}

// NewEncoder writes a placeholder header to ws and returns a ready sink.
// The placeholder is deliberately invalid (its count slot cannot decode),
// so a file whose writer crashed before Close fails loudly instead of
// passing as an empty trace. MergeDay defaults to -1 (no merge); use
// SetMergeDay/SetSeed to record generator knowledge before Close.
func NewEncoder(ws io.WriteSeeker) (*Encoder, error) {
	e := &Encoder{ws: ws, bw: bufio.NewWriterSize(ws, 1<<16)}
	e.meta.MergeDay = -1
	hdr, err := e.header(false)
	if err != nil {
		return nil, err
	}
	if _, err := e.bw.Write(hdr); err != nil {
		return nil, err
	}
	return e, nil
}

// SetSeed records the generator seed in the header meta.
func (e *Encoder) SetSeed(seed int64) { e.meta.Seed = seed }

// SetMergeDay records the merge day in the header meta (-1 for none).
func (e *Encoder) SetMergeDay(day int32) { e.meta.MergeDay = day }

// header renders the fixed-width rewritable header. When final is false
// the count slot is filled with continuation bytes that no uvarint reader
// accepts, poisoning the file until Close back-patches the real count.
func (e *Encoder) header(final bool) ([]byte, error) {
	metaJSON, err := json.Marshal(e.meta)
	if err != nil {
		return nil, err
	}
	if len(metaJSON) > encMetaPad {
		return nil, fmt.Errorf("trace: meta exceeds the %d-byte encoder slot", encMetaPad)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], encMetaPad)
	hdr := make([]byte, 0, len(magic)+n+encMetaPad+encCountPad)
	hdr = append(hdr, magic[:]...)
	hdr = append(hdr, lenBuf[:n]...)
	pad := make([]byte, encMetaPad)
	for i := range pad {
		pad[i] = ' ' // JSON decoders skip trailing whitespace
	}
	copy(pad, metaJSON)
	hdr = append(hdr, pad...)
	var cnt [encCountPad]byte
	if final {
		putUvarint10(cnt[:], e.count)
	} else {
		for i := range cnt {
			cnt[i] = 0xff
		}
	}
	return append(hdr, cnt[:]...), nil
}

// Write appends one event. Events must arrive in non-decreasing day
// order, exactly as a replay or generator emits them.
func (e *Encoder) Write(ev Event) error {
	if e.closed {
		return errors.New("trace: encoder is closed")
	}
	prev, err := putEvent(e.bw, ev, e.prevDay)
	if err != nil {
		return fmt.Errorf("trace: event %d: %w", e.count, err)
	}
	e.prevDay = prev
	e.meta.Accumulate(ev)
	e.count++
	return nil
}

// Meta returns the counters accumulated so far (plus the SetSeed /
// SetMergeDay knowledge); after Close it is exactly what the header holds.
func (e *Encoder) Meta() Meta { return e.meta }

// Close flushes the event stream and back-patches the header with the
// final meta and count. The encoder is unusable afterwards; closing the
// underlying file stays the caller's job.
func (e *Encoder) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	if err := e.bw.Flush(); err != nil {
		return err
	}
	if _, err := e.ws.Seek(0, io.SeekStart); err != nil {
		return err
	}
	hdr, err := e.header(true)
	if err != nil {
		return err
	}
	if _, err := e.ws.Write(hdr); err != nil {
		return err
	}
	// Leave the writer positioned at the end, where appends would go.
	_, err = e.ws.Seek(0, io.SeekEnd)
	return err
}
