package trace

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// liveTrace is an Encoder-backed trace file under test control: events go
// in via write/flush, and the file can be finalized or abandoned. It
// models the real live-writer flow — a finalized seed file reopened with
// OpenAppend — because a from-scratch Encoder's header stays poisoned
// (undecodable) until its Close, which the prober reports as an error.
type liveTrace struct {
	f   *os.File
	enc *Encoder
}

// extendLiveTrace writes a finalized file holding events[:k] and reopens
// it for append, returning the live writer.
func extendLiveTrace(t *testing.T, path string, events []Event, k int, seed int64, mergeDay int32) *liveTrace {
	t.Helper()
	encodePrefixToFile(t, events[:k], seed, mergeDay, path)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := OpenAppend(f)
	if err != nil {
		t.Fatal(err)
	}
	return &liveTrace{f: f, enc: enc}
}

func (w *liveTrace) write(t *testing.T, evs ...Event) {
	t.Helper()
	for _, ev := range evs {
		if err := w.enc.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
}

func (w *liveTrace) flush(t *testing.T) {
	t.Helper()
	if err := w.enc.Flush(); err != nil {
		t.Fatal(err)
	}
}

func (w *liveTrace) finalize(t *testing.T) {
	t.Helper()
	if err := w.enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
}

// sealedUpTo returns the number of events before the first event of day
// (i.e. the sealed prefix length once day is the trailing day).
func sealedUpTo(events []Event, day int32) int {
	for i, ev := range events {
		if ev.Day >= day {
			return i
		}
	}
	return len(events)
}

// sealedMetaFor is the Meta a snapshot should carry when trailing day is
// in force: counters over the sealed prefix, Days = trailing day.
func sealedMetaFor(events []Event, trailing int32, seed int64) Meta {
	m := Summarize(events[:sealedUpTo(events, trailing)])
	m.Days = trailing
	m.Seed = seed
	return m
}

// TestTailProbeSealsAtDayBarriers follows a live writer event by event:
// after every flushed write, the snapshot's sealed day must be exactly
// one behind the trailing day, with Meta and event count matching the
// sealed prefix — and finalization seals the last day.
func TestTailProbeSealsAtDayBarriers(t *testing.T) {
	tr := synthTrace(200)
	path := filepath.Join(t.TempDir(), "live.trace")
	p := NewTailProbe(path)
	if _, err := p.Probe(); err == nil {
		t.Fatal("probe of a missing file should error")
	}

	k0 := sealedUpTo(tr.Events, 1) // seed file: day 0, finalized
	w := extendLiveTrace(t, path, tr.Events, k0, tr.Meta.Seed, tr.Meta.MergeDay)

	for i := k0; i < len(tr.Events); i++ {
		ev := tr.Events[i]
		w.write(t, ev)
		w.flush(t)
		s, err := p.Probe()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if s.Anomaly != nil {
			t.Fatalf("event %d: anomaly %v", i, s.Anomaly)
		}
		wantSealed := ev.Day - 1
		if s.SealedDay != wantSealed {
			t.Fatalf("event %d (day %d): SealedDay = %d, want %d", i, ev.Day, s.SealedDay, wantSealed)
		}
		if want := int64(sealedUpTo(tr.Events, ev.Day)); s.Events != want {
			t.Fatalf("event %d: sealed Events = %d, want %d", i, s.Events, want)
		}
		if s.FrontierEvents != int64(i+1) || s.FrontierDay != ev.Day {
			t.Fatalf("event %d: frontier = (%d, day %d), want (%d, day %d)",
				i, s.FrontierEvents, s.FrontierDay, i+1, ev.Day)
		}
		if s.Finalized {
			t.Fatalf("event %d: snapshot claims finalized mid-write", i)
		}
		if ev.Day > 0 {
			if want := sealedMetaFor(tr.Events, ev.Day, tr.Meta.Seed); s.Meta != want {
				t.Fatalf("event %d: Meta = %+v, want %+v", i, s.Meta, want)
			}
		}
		if i == len(tr.Events)/2 {
			src := s.Source()
			cur, err := src.Open()
			if err != nil {
				t.Fatal(err)
			}
			got := drainCursor(t, cur)
			cur.Close()
			sameEvents(t, "mid-write sealed replay", got, tr.Events[:s.Events])
		}
	}

	w.finalize(t)
	s, err := p.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Finalized || s.Anomaly != nil {
		t.Fatalf("after Close: Finalized=%v anomaly=%v", s.Finalized, s.Anomaly)
	}
	if s.SealedDay != tr.Meta.Days-1 || s.Events != int64(len(tr.Events)) {
		t.Fatalf("after Close: SealedDay=%d Events=%d, want %d, %d",
			s.SealedDay, s.Events, tr.Meta.Days-1, len(tr.Events))
	}
	if s.Meta != tr.Meta {
		t.Fatalf("after Close: Meta = %+v, want header %+v", s.Meta, tr.Meta)
	}
}

// TestTailProbeTornTailAndAnomaly: a partially flushed event is forgiven
// (the frontier holds, no anomaly) and is re-read once the writer
// completes it; genuinely corrupt tail bytes surface as Anomaly without
// disturbing the sealed prefix.
func TestTailProbeTornTailAndAnomaly(t *testing.T) {
	tr := synthTrace(100)
	path := filepath.Join(t.TempDir(), "torn.trace")
	p := NewTailProbe(path)

	k := sealedUpTo(tr.Events, 10)
	k2 := sealedUpTo(tr.Events, 12)
	w := extendLiveTrace(t, path, tr.Events, k, tr.Meta.Seed, tr.Meta.MergeDay)
	w.write(t, tr.Events[k:k2]...)
	w.flush(t)
	s, err := p.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if s.Anomaly != nil || s.SealedDay != tr.Events[k2-1].Day-1 {
		t.Fatalf("live probe: %+v", s)
	}
	base := *s

	// A torn write: the writer's buffer cut mid-event (a lone AddNode kind
	// byte). Appended through a second handle, so the encoder's own file
	// position still points at the cut — its next flush overwrites it, the
	// way a real writer's retry would.
	torn, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := torn.Write([]byte{byte(AddNode)}); err != nil {
		t.Fatal(err)
	}
	torn.Close()

	s, err = p.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if s.Anomaly != nil {
		t.Fatalf("torn tail reported as anomaly: %v", s.Anomaly)
	}
	if s.SealedDay != base.SealedDay || s.Events != base.Events || s.FrontierEvents != base.FrontierEvents {
		t.Fatalf("torn tail moved the frontier: %+v vs %+v", s, base)
	}

	// The writer completes the cut: its flush overwrites the torn byte
	// with the real events, and the probe re-reads from its held frontier.
	k3 := sealedUpTo(tr.Events, 13)
	w.write(t, tr.Events[k2:k3]...)
	w.flush(t)
	s, err = p.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if s.Anomaly != nil || s.SealedDay != tr.Events[k3-1].Day-1 || s.FrontierEvents != int64(k3) {
		t.Fatalf("after completing the cut: %+v", s)
	}

	// Corruption a live writer cannot produce: an invalid kind byte plus
	// payload. Anomaly rides the snapshot; the sealed prefix stands.
	bad, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Write([]byte{0xee, 0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	bad.Close()
	s, err = p.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if s.Anomaly == nil {
		t.Fatal("corrupt tail byte not reported as anomaly")
	}
	if s.SealedDay != tr.Events[k3-1].Day-1 || s.FrontierEvents != int64(k3) {
		t.Fatalf("anomaly moved the frontier: %+v", s)
	}
}

// eventLayout decodes a finalized trace file and returns the byte offset
// at which each event's encoding ends.
func eventLayout(t *testing.T, path string) (evs []Event, ends []int64) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	meta, count, start, err := parseStreamHeader(f)
	if err != nil {
		t.Fatal(err)
	}
	cr := &countingReader{r: io.NewSectionReader(f, start, 1<<62)}
	br := bufio.NewReader(cr)
	dec := resumeDecoder(br, meta, count, 0)
	for {
		ev, ok, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return evs, ends
		}
		evs = append(evs, ev)
		ends = append(ends, start+cr.n-int64(br.Buffered()))
	}
}

// TestTailProbeTruncatedFinalDay is the torn-final-day regression sweep:
// a finalized trace truncated at EVERY byte offset from the final day's
// first byte through end-of-file must still report the last provably
// complete day — never an error, never a short sealed prefix, never a
// day that could still grow.
func TestTailProbeTruncatedFinalDay(t *testing.T) {
	tr := synthTrace(200)
	dir := t.TempDir()
	full := filepath.Join(dir, "full.trace")
	encodeToFile(t, tr, full)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	evs, ends := eventLayout(t, full)
	sameEvents(t, "layout decode", evs, tr.Events)

	lastDay := evs[len(evs)-1].Day
	firstLast := sealedUpTo(evs, lastDay) // index of final day's first event
	sealedEnd := ends[firstLast-1]        // byte boundary before the final day
	eventsEnd := ends[len(ends)-1]        // byte boundary after the last event

	path := filepath.Join(dir, "cut.trace")
	for off := sealedEnd; off < int64(len(raw)); off++ {
		if err := os.WriteFile(path, raw[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := NewTailProbe(path).Probe()
		if err != nil {
			t.Fatalf("cut at %d: %v", off, err)
		}
		// How many final-day events survive the cut whole?
		complete := 0
		for i := firstLast; i < len(ends) && ends[i] <= off; i++ {
			complete++
		}
		wantSealed, wantEvents := lastDay-1, int64(firstLast)
		if complete == 0 {
			// Not a single final-day event: the previous day has no
			// successor event and cannot be proven complete either.
			wantSealed, wantEvents = lastDay-2, int64(sealedUpTo(evs, lastDay-1))
		}
		if s.SealedDay != wantSealed || s.Events != wantEvents {
			t.Fatalf("cut at %d: SealedDay=%d Events=%d, want %d, %d",
				off, s.SealedDay, s.Events, wantSealed, wantEvents)
		}
		if s.Finalized {
			t.Fatalf("cut at %d: truncated file claims finalized", off)
		}
		// Cuts inside the event stream are indistinguishable from a live
		// writer and must not alarm; cuts inside the footer may.
		if off <= eventsEnd && s.Anomaly != nil {
			t.Fatalf("cut at %d: anomaly %v", off, s.Anomaly)
		}
	}

	// One representative cut: the sealed source replays the exact prefix.
	mid := (sealedEnd + eventsEnd) / 2
	if err := os.WriteFile(path, raw[:mid], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewTailProbe(path).Probe()
	if err != nil {
		t.Fatal(err)
	}
	cur, err := s.Source().Open()
	if err != nil {
		t.Fatal(err)
	}
	got := drainCursor(t, cur)
	cur.Close()
	sameEvents(t, "truncated sealed replay", got, evs[:s.Events])
}

// TestTailSourceMatchesFileSource: on a finalized file the sealed tail
// source and FileSource are the same data plane — same meta, same full
// pass, same day-addressed cursors, same EventsThrough answers.
func TestTailSourceMatchesFileSource(t *testing.T) {
	tr := synthTrace(400)
	path := filepath.Join(t.TempDir(), "fin.trace")
	encodeToFile(t, tr, path)

	s, err := NewTailProbe(path).Probe()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Finalized {
		t.Fatalf("fresh probe of finalized file: %+v", s)
	}
	ts := s.Source()
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Meta() != fs.Meta() {
		t.Fatalf("meta: tail %+v, file %+v", ts.Meta(), fs.Meta())
	}
	for _, day := range []int32{0, 1, 7, 23, tr.Meta.Days - 1, tr.Meta.Days + 5} {
		tc, err := OpenSourceAt(ts, day)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := OpenSourceAt(fs, day)
		if err != nil {
			t.Fatal(err)
		}
		got, want := drainCursor(t, tc), drainCursor(t, fc)
		tc.Close()
		fc.Close()
		sameEvents(t, "OpenAt", got, want)

		tn, tok := EventsThrough(ts, day)
		fn, fok := EventsThrough(fs, day)
		if tn != fn || tok != fok {
			t.Fatalf("EventsThrough(%d): tail (%d,%v), file (%d,%v)", day, tn, tok, fn, fok)
		}
	}
}

// TestTailProbeTrustedThenAppended: the probe's O(1) trust of an
// already-finalized file must survive the file being reopened for append
// — both when the appended events continue the file's final day (the
// sealed boundary lies in the never-decoded prefix and forces a rescan)
// and when they start a new day (the trusted frontier itself seals).
func TestTailProbeTrustedThenAppended(t *testing.T) {
	tr := synthTrace(100)
	evs := tr.Events

	t.Run("same-day", func(t *testing.T) {
		// Split mid-day: k2 extends the same trailing day, k3 starts the
		// next one.
		k := sealedUpTo(evs, 10) + 3
		d := evs[k-1].Day
		if evs[k].Day != d {
			t.Fatal("bad fixture: split is not mid-day")
		}
		k2 := sealedUpTo(evs, d+1)
		path := filepath.Join(t.TempDir(), "sameday.trace")
		encodePrefixToFile(t, evs[:k], tr.Meta.Seed, tr.Meta.MergeDay, path)

		p := NewTailProbe(path)
		s, err := p.Probe()
		if err != nil {
			t.Fatal(err)
		}
		if !s.Finalized || s.Events != int64(k) {
			t.Fatalf("trust probe: %+v", s)
		}

		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := OpenAppend(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs[k:k2] {
			if err := enc.Write(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		s, err = p.Probe()
		if err != nil {
			t.Fatal(err)
		}
		if s.SealedDay != d-1 || s.Events != int64(sealedUpTo(evs, d)) || s.Finalized {
			t.Fatalf("after same-day append: %+v (want sealed day %d)", s, d-1)
		}
		// The next day's first event seals the extended day d whole.
		if err := enc.Write(evs[k2]); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		s, err = p.Probe()
		if err != nil {
			t.Fatal(err)
		}
		if s.SealedDay != d || s.Events != int64(k2) {
			t.Fatalf("after barrier: %+v (want sealed day %d, events %d)", s, d, k2)
		}
		cur, err := s.Source().Open()
		if err != nil {
			t.Fatal(err)
		}
		got := drainCursor(t, cur)
		cur.Close()
		sameEvents(t, "rescanned sealed replay", got, evs[:k2])
		f.Close()
	})

	t.Run("new-day", func(t *testing.T) {
		k := sealedUpTo(evs, 12)
		path := filepath.Join(t.TempDir(), "newday.trace")
		encodePrefixToFile(t, evs[:k], tr.Meta.Seed, tr.Meta.MergeDay, path)

		p := NewTailProbe(path)
		if _, err := p.Probe(); err != nil {
			t.Fatal(err)
		}

		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := OpenAppend(f)
		if err != nil {
			t.Fatal(err)
		}
		k2 := sealedUpTo(evs, 14)
		for _, ev := range evs[k:k2] {
			if err := enc.Write(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		s, err := p.Probe()
		if err != nil {
			t.Fatal(err)
		}
		last := evs[k2-1].Day
		if s.SealedDay != last-1 || s.Events != int64(sealedUpTo(evs, last)) {
			t.Fatalf("after new-day append: %+v (want sealed day %d)", s, last-1)
		}
		// Finalize and confirm the probe converges on the header meta.
		if err := enc.Close(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		s, err = p.Probe()
		if err != nil {
			t.Fatal(err)
		}
		want := Summarize(evs[:k2])
		want.Seed = tr.Meta.Seed
		if !s.Finalized || s.Meta != want {
			t.Fatalf("after finalize: %+v, want meta %+v", s, want)
		}
	})
}

// TestTailProbeFileReplaced: swapping a different file in at the same
// path (new inode) resets the probe cleanly.
func TestTailProbeFileReplaced(t *testing.T) {
	dir := t.TempDir()
	a, b := synthTrace(80), synthTrace(200)
	path := filepath.Join(dir, "live.trace")
	other := filepath.Join(dir, "other.trace")
	encodeToFile(t, a, path)
	encodeToFile(t, b, other)

	p := NewTailProbe(path)
	s, err := p.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if s.SealedDay != a.Meta.Days-1 || s.Events != int64(len(a.Events)) {
		t.Fatalf("first file: %+v", s)
	}
	if err := os.Rename(other, path); err != nil {
		t.Fatal(err)
	}
	s, err = p.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if s.SealedDay != b.Meta.Days-1 || s.Events != int64(len(b.Events)) || !s.Finalized {
		t.Fatalf("replaced file: %+v", s)
	}
}
