package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// synthTrace builds a Validate()-clean trace of n nodes with a ring of
// edges, spread over one event-day per 8 events, for source/codec tests.
func synthTrace(n int) *Trace {
	events := make([]Event, 0, 2*n)
	day := int32(0)
	for i := 0; i < n; i++ {
		events = append(events, Event{Kind: AddNode, Day: day, U: int32(i), Origin: Origin(i % 3)})
		if i > 0 {
			events = append(events, Event{Kind: AddEdge, Day: day, U: int32(i - 1), V: int32(i)})
		}
		if i%4 == 3 {
			day++
		}
	}
	tr := &Trace{Events: events}
	tr.Meta = Summarize(events)
	tr.Meta.Seed = 99
	return tr
}

// encodeToFile streams a trace through the incremental Encoder.
func encodeToFile(t *testing.T, tr *Trace, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc, err := NewEncoder(f)
	if err != nil {
		t.Fatal(err)
	}
	enc.SetSeed(tr.Meta.Seed)
	enc.SetMergeDay(tr.Meta.MergeDay)
	for _, ev := range tr.Events {
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// drain collects every event of one pass.
func drain(t *testing.T, src Source) []Event {
	t.Helper()
	cur, err := src.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var out []Event
	for {
		ev, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// TestSliceFileCursorEquivalence is the data-plane equivalence guarantee
// at the cursor level: a SliceSource over the in-memory events and a
// FileSource over the Encoder's stream yield the same events, and the
// FileSource is re-openable — a second pass sees the same stream.
func TestSliceFileCursorEquivalence(t *testing.T) {
	tr := synthTrace(257)
	tr.Meta.MergeDay = 11
	path := filepath.Join(t.TempDir(), "synth.trace")
	encodeToFile(t, tr, path)

	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Meta() != tr.Meta {
		t.Fatalf("file meta %+v != slice meta %+v", fs.Meta(), tr.Meta)
	}

	want := drain(t, SliceSource(tr.Events))
	if len(want) != len(tr.Events) {
		t.Fatalf("slice cursor yielded %d events, want %d", len(want), len(tr.Events))
	}
	for pass := 0; pass < 2; pass++ { // re-open semantics: every pass is full
		got := drain(t, fs)
		if len(got) != len(want) {
			t.Fatalf("pass %d: file cursor yielded %d events, want %d", pass, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("pass %d event %d: file %+v != slice %+v", pass, i, got[i], want[i])
			}
		}
	}

	// Replay equivalence through the generic source path.
	stSlice, err := ReplaySource(tr.Source(), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	stFile, err := ReplaySource(fs, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if stSlice.Graph.NumNodes() != stFile.Graph.NumNodes() || stSlice.Graph.NumEdges() != stFile.Graph.NumEdges() {
		t.Fatalf("replayed states differ: %d/%d nodes, %d/%d edges",
			stSlice.Graph.NumNodes(), stFile.Graph.NumNodes(),
			stSlice.Graph.NumEdges(), stFile.Graph.NumEdges())
	}
}

// TestEncoderMatchesEncode: the incremental Encoder and the one-shot
// Encode produce streams that decode to the same trace.
func TestEncoderMatchesEncode(t *testing.T) {
	tr := synthTrace(64)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	fromEncode, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "enc.trace")
	encodeToFile(t, tr, path)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fromEncoder, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	if fromEncode.Meta != fromEncoder.Meta {
		t.Fatalf("meta: %+v vs %+v", fromEncode.Meta, fromEncoder.Meta)
	}
	if len(fromEncode.Events) != len(fromEncoder.Events) {
		t.Fatalf("events: %d vs %d", len(fromEncode.Events), len(fromEncoder.Events))
	}
	for i := range fromEncode.Events {
		if fromEncode.Events[i] != fromEncoder.Events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, fromEncode.Events[i], fromEncoder.Events[i])
		}
	}
}

func TestEncoderMetaAccumulates(t *testing.T) {
	tr := synthTrace(32)
	path := filepath.Join(t.TempDir(), "meta.trace")
	encodeToFile(t, tr, path)
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.Meta(); got != tr.Meta {
		t.Fatalf("encoder-accumulated meta %+v != Summarize %+v", got, tr.Meta)
	}
}

func TestEncoderRejectsDayRegression(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc, err := NewEncoder(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Write(Event{Kind: AddNode, Day: 5, U: 0}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Write(Event{Kind: AddNode, Day: 4, U: 1}); err == nil {
		t.Fatal("day regression not rejected")
	}
}

// TestEncoderUnclosedFileIsInvalid: a file whose Encoder never reached
// Close (writer crashed mid-stream) must not decode as a valid trace —
// the placeholder header's count slot is deliberately poisoned until the
// back-patch.
func TestEncoderUnclosedFileIsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc, err := NewEncoder(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range synthTrace(16).Events {
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate a crash. The events may or may not have been
	// flushed; either way the header must reject the file.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileSource(path); err == nil {
		t.Fatal("unclosed encoder file opened as a valid trace")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("unclosed encoder file decoded as a valid trace")
	}
}

func TestFileSourceTruncated(t *testing.T) {
	tr := synthTrace(64)
	path := filepath.Join(t.TempDir(), "trunc.trace")
	encodeToFile(t, tr, path)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The file ends with the day-index footer; find its length from the
	// trailer so the cut lands inside the event stream, not the index.
	footer := int(int64(len(raw)) - indexTrailerLen -
		int64(binary.LittleEndian.Uint64(raw[len(raw)-indexTrailerLen:])))
	cut := filepath.Join(t.TempDir(), "cut.trace")
	if err := os.WriteFile(cut, raw[:footer-7], 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(cut) // header is intact
	if err != nil {
		t.Fatal(err)
	}
	if fs.Index() != nil {
		t.Fatal("truncated file kept a day index")
	}
	cur, err := fs.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for {
		_, ok, err := cur.Next()
		if err != nil {
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("err = %v, want ErrTruncated", err)
			}
			return
		}
		if !ok {
			t.Fatal("truncated stream drained cleanly")
		}
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	// Each case hand-assembles a stream around a valid header.
	header := func(metaLen uint64) []byte {
		b := append([]byte{}, magic[:]...)
		var tmp [10]byte
		n := putUvarint(tmp[:], metaLen)
		return append(b, tmp[:n]...)
	}
	body := func(parts ...[]byte) []byte {
		out := header(2)
		out = append(out, '{', '}')
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	uv := func(x uint64) []byte {
		var tmp [10]byte
		n := putUvarint(tmp[:], x)
		return tmp[:n:n]
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"meta too large", header(maxMetaLen + 1), ErrMetaTooLarge},
		{"count too large", body(uv(maxEventCount + 1)), ErrCountTooLarge},
		{"bad kind", body(uv(1), []byte{7}, uv(0)), ErrBadKind},
		{"day overflow", body(uv(1), []byte{byte(AddNode)}, uv(uint64(1)<<32), uv(0), []byte{0}), ErrDayOverflow},
		{"id overflow", body(uv(1), []byte{byte(AddNode)}, uv(0), uv(uint64(1)<<40), []byte{0}), ErrIDOverflow},
		{"truncated event", body(uv(3), []byte{byte(AddNode)}, uv(0), uv(0), []byte{0}), ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(bytes.NewReader(tc.data))
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// putUvarint is a test-local canonical uvarint writer.
func putUvarint(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}
