package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// TestOriginsPartitionAroundMerge: Xiaonei nodes are created strictly
// before the merge day, 5Q nodes exactly on it, new users strictly after.
func TestOriginsPartitionAroundMerge(t *testing.T) {
	tr, err := Generate(tinyMergeConfig())
	if err != nil {
		t.Fatal(err)
	}
	mergeDay := tr.Meta.MergeDay
	for _, ev := range tr.Events {
		if ev.Kind != trace.AddNode {
			continue
		}
		switch ev.Origin {
		case trace.OriginXiaonei:
			if ev.Day >= mergeDay {
				t.Fatalf("xiaonei node on day %d (merge %d)", ev.Day, mergeDay)
			}
		case trace.OriginFiveQ:
			if ev.Day != mergeDay {
				t.Fatalf("5q node on day %d (merge %d)", ev.Day, mergeDay)
			}
		case trace.OriginNew:
			if ev.Day < mergeDay {
				t.Fatalf("new node on day %d before merge %d", ev.Day, mergeDay)
			}
		}
	}
}

// TestRandomConfigsProduceValidTraces fuzzes generator knobs and validates
// every produced trace.
func TestRandomConfigsProduceValidTraces(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		if rng < 0 {
			rng = -rng
		}
		c := tinyConfig()
		c.Seed = seed
		c.Days = 60 + int32(rng%120)
		c.Activity.InitialEdgesMean = 1 + float64(rng%5)
		c.Attach.TriangleProb = float64(rng%90) / 100
		c.Attach.CommunityBias = float64(rng%100) / 100
		c.Community.Theta = 1 + float64(rng%40)
		c.Community.WaveProb = float64(rng%100) / 100
		tr, err := Generate(c)
		if err != nil {
			return false
		}
		return trace.Validate(tr.Events) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeSpikeScalesWithFiveQ: a bigger 5Q network produces a bigger
// merge-day spike.
func TestMergeSpikeScalesWithFiveQ(t *testing.T) {
	spike := func(base float64) int {
		c := tinyMergeConfig()
		c.Merge.FiveQArrivalBase = base
		tr, err := Generate(c)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, ev := range tr.Events {
			if ev.Kind == trace.AddNode && ev.Origin == trace.OriginFiveQ {
				n++
			}
		}
		return n
	}
	small, big := spike(4), spike(24)
	if big <= small {
		t.Fatalf("5q sizing broken: base 4 -> %d nodes, base 24 -> %d nodes", small, big)
	}
}

// TestDegreeDistributionHeavyTail: the max degree should far exceed the
// average (hubs exist), but respect the cap.
func TestDegreeDistributionHeavyTail(t *testing.T) {
	c := tinyConfig()
	tr, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	deg := map[int32]int{}
	for _, ev := range tr.Events {
		if ev.Kind == trace.AddEdge {
			deg[ev.U]++
			deg[ev.V]++
		}
	}
	maxDeg, sum := 0, 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
		sum += d
	}
	avg := float64(sum) / float64(len(deg))
	if float64(maxDeg) < 5*avg {
		t.Fatalf("no hubs: max %d vs avg %.1f", maxDeg, avg)
	}
	if maxDeg > c.Attach.MaxDegree+1 {
		t.Fatalf("degree cap violated: %d", maxDeg)
	}
}

// TestPAWeightMonotone: the mixing weight never increases with network size.
func TestPAWeightMonotone(t *testing.T) {
	s := newSim(DefaultConfig(), nil)
	prev := 2.0
	for n := 1; n < 1_000_000; n *= 4 {
		s.nodes = make([]nodeState, n)
		w := s.paWeight()
		if w > prev+1e-12 {
			t.Fatalf("paWeight increased at n=%d: %v -> %v", n, prev, w)
		}
		if w < s.cfg.Attach.PAFloor-1e-12 || w > 1 {
			t.Fatalf("paWeight out of range at n=%d: %v", n, w)
		}
		prev = w
	}
}
