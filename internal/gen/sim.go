package gen

import (
	"container/heap"
	"errors"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/trace"
)

// nodeState is the per-node simulation state.
type nodeState struct {
	join      float64 // join time in fractional days (global clock)
	lifetime  float64 // active span in days; initiates no edges beyond it
	comm      int32   // home community
	origin    trace.Origin
	actFactor float64 // activity multiplier (<1 slows a node down)
	inactive  bool    // duplicate account: neither initiates nor receives
	retired   bool    // stopped initiating (still receives)
}

// simEvent is a scheduled edge-creation attempt for a node.
type simEvent struct {
	t float64
	u graph.NodeID
}

type eventHeap []simEvent

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].t < h[j].t }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// sim is one running network simulation.
type sim struct {
	cfg   Config
	rng   *rand.Rand
	g     *graph.Graph
	nodes []nodeState
	queue eventHeap

	// emit receives every trace event as it happens; nil discards the
	// stream (the standalone 5Q sub-simulation only matters for its final
	// state). emitErr latches the first sink failure so the day loop can
	// abort; emission never touches the RNG, so a discarding run is
	// byte-identical to a recording one.
	emit    func(trace.Event) error
	emitErr error

	pa          *graph.PASampler
	commMembers [][]graph.NodeID // home-community member lists
	commPA      [][]graph.NodeID // per-community degree-proportional endpoint lists

	byOrigin [3][]graph.NodeID

	pop       float64 // expected population of the arrival process
	mergeDay  float64 // -1 when no merge
	mergeDone bool
}

func newSim(cfg Config, rng *rand.Rand) *sim {
	s := &sim{
		cfg:      cfg,
		rng:      rng,
		g:        graph.New(4096),
		pa:       graph.NewPASampler(4096),
		pop:      cfg.Arrival.Base,
		mergeDay: -1,
	}
	if cfg.Merge != nil {
		s.mergeDay = float64(cfg.Merge.Day)
	}
	return s
}

// Generate produces a full in-memory trace for cfg. It is the
// materializing wrapper over GenerateStream; out-of-core callers stream
// through GenerateStream or GenerateToFile instead.
func Generate(cfg Config) (*trace.Trace, error) {
	events := make([]trace.Event, 0, 1024)
	meta, err := GenerateStream(cfg, func(ev trace.Event) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &trace.Trace{Meta: meta, Events: events}, nil
}

// send forwards one event to the emit sink, latching the first error.
func (s *sim) send(ev trace.Event) {
	if s.emitErr == nil && s.emit != nil {
		s.emitErr = s.emit(ev)
	}
}

// validateConfig rejects configurations that cannot run.
func validateConfig(cfg Config) error {
	switch {
	case cfg.Days <= 0:
		return errors.New("gen: Days must be positive")
	case cfg.MaxNodes <= 0:
		return errors.New("gen: MaxNodes must be positive")
	case cfg.Arrival.Base < 0 || cfg.Arrival.GrowthStart < 0 || cfg.Arrival.GrowthEnd < 0:
		return errors.New("gen: arrival parameters must be non-negative")
	case cfg.Activity.GapXm <= 0 || cfg.Activity.GapAlpha <= 0:
		return errors.New("gen: gap distribution parameters must be positive")
	case cfg.Attach.MaxDegree < 1:
		return errors.New("gen: MaxDegree must be at least 1")
	case cfg.Community.Theta <= 0:
		return errors.New("gen: community Theta must be positive")
	case cfg.Community.WaveProb < 0 || cfg.Community.WaveProb > 1:
		return errors.New("gen: WaveProb must be in [0,1]")
	case cfg.Community.WaveWindow < 0:
		return errors.New("gen: WaveWindow must be non-negative")
	}
	if m := cfg.Merge; m != nil {
		switch {
		case m.Day <= 0 || m.Day >= cfg.Days:
			return errors.New("gen: merge day out of range")
		case m.FiveQStart < 0 || m.FiveQStart >= m.Day:
			return errors.New("gen: 5Q start must precede the merge day")
		case m.XiaoneiInactiveFrac < 0 || m.XiaoneiInactiveFrac > 1 ||
			m.FiveQInactiveFrac < 0 || m.FiveQInactiveFrac > 1:
			return errors.New("gen: inactive fractions must be in [0,1]")
		case m.FiveQActivityFactor <= 0:
			return errors.New("gen: FiveQActivityFactor must be positive")
		}
	}
	return nil
}

// fiveQConfig derives the standalone 5Q simulation config.
func fiveQConfig(cfg Config) Config {
	m := cfg.Merge
	fq := cfg
	fq.Merge = nil
	fq.Days = m.Day - m.FiveQStart
	fq.Arrival = ArrivalConfig{
		InitialNodes: 2,
		Base:         m.FiveQArrivalBase,
		GrowthStart:  m.FiveQGrowth,
	}
	fq.Activity.InitialEdgesMean = m.FiveQInitialEdgesMean
	fq.MaxNodes = cfg.MaxNodes
	return fq
}

// run executes the simulation day loop. fiveQ, when non-nil, is the grown
// 5Q network to import on the merge day.
func (s *sim) run(fiveQ *sim) error {
	for day := int32(0); day < s.cfg.Days; day++ {
		if fiveQ != nil && !s.mergeDone && day == s.cfg.Merge.Day {
			s.importNetwork(fiveQ)
		}
		s.spawnArrivals(day)
		s.drainUntil(float64(day + 1))
		if s.emitErr != nil {
			return s.emitErr
		}
	}
	return s.emitErr
}

// arrivalRate returns the expected number of arrivals on the given day and
// advances the population process.
func (s *sim) arrivalRate(day int32) float64 {
	g := s.cfg.Arrival.GrowthAt(day)
	r := s.pop * g
	s.pop *= 1 + g
	for _, w := range s.cfg.Arrival.Dips {
		if w.Contains(day) {
			r *= w.Factor
		}
	}
	for _, w := range s.cfg.Arrival.Bursts {
		if w.Contains(day) {
			r *= w.Factor
		}
	}
	return r
}

// dipFactor returns the activity modulation for a day (dips slow edge
// creation as well as arrivals; bursts only affect arrivals).
func (s *sim) dipFactor(day int32) float64 {
	f := 1.0
	for _, w := range s.cfg.Arrival.Dips {
		if w.Contains(day) {
			f *= w.Factor
		}
	}
	return f
}

// poisson draws a Poisson(lambda) variate (normal approximation for large λ).
func poisson(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// spawnArrivals creates the day's new nodes and queues their processes.
func (s *sim) spawnArrivals(day int32) {
	n := poisson(s.arrivalRate(day), s.rng)
	if day == 0 {
		n += s.cfg.Arrival.InitialNodes
	}
	for i := 0; i < n; i++ {
		if len(s.nodes) >= s.cfg.MaxNodes {
			return
		}
		t := float64(day) + s.rng.Float64()
		origin := trace.OriginXiaonei
		if s.mergeDone {
			origin = trace.OriginNew
		}
		s.addNode(t, origin, 1.0)
	}
}

// addNode creates one node at time t and schedules its activity. Returns
// the new id.
func (s *sim) addNode(t float64, origin trace.Origin, actFactor float64) graph.NodeID {
	u := s.g.AddNode()
	comm := s.pickCommunity()
	s.nodes = append(s.nodes, nodeState{
		join:      t,
		lifetime:  stats.Pareto(s.cfg.Activity.LifetimeXm, s.cfg.Activity.LifetimeAlpha, s.rng),
		comm:      comm,
		origin:    origin,
		actFactor: actFactor,
	})
	s.commMembers[comm] = append(s.commMembers[comm], u)
	s.byOrigin[origin] = append(s.byOrigin[origin], u)
	s.send(trace.Event{Kind: trace.AddNode, Day: int32(t), U: u, Origin: origin})

	// Initial friendship burst: the "finding offline friends" phase.
	burst := poisson(s.cfg.Activity.InitialEdgesMean, s.rng)
	for k := 0; k < burst; k++ {
		s.tryEdge(u, t)
	}
	heap.Push(&s.queue, simEvent{t: t + s.nextGap(u, t), u: u})
	return u
}

// pickCommunity draws a home community from the (wave-localized) CRP
// prior: a fresh community with probability Theta/(pool+Theta), otherwise
// the community of a random node from the adoption pool — the recent
// arrivals with probability WaveProb, anyone otherwise.
func (s *sim) pickCommunity() int32 {
	c := s.cfg.Community
	pool := len(s.nodes)
	wave := c.WaveWindow > 0 && s.rng.Float64() < c.WaveProb
	if wave && pool > c.WaveWindow {
		pool = c.WaveWindow
	}
	if len(s.nodes) == 0 || s.rng.Float64()*(float64(pool)+c.Theta) < c.Theta {
		s.commMembers = append(s.commMembers, nil)
		s.commPA = append(s.commPA, nil)
		return int32(len(s.commMembers) - 1)
	}
	var v graph.NodeID
	if wave {
		// A random node among the last `pool` arrivals (ids are dense in
		// arrival order).
		v = graph.NodeID(len(s.nodes) - 1 - s.rng.Intn(pool))
	} else {
		v = graph.NodeID(s.rng.Intn(len(s.nodes)))
	}
	return s.nodes[v].comm
}

// drainUntil processes queued edge events strictly before time limit.
func (s *sim) drainUntil(limit float64) {
	for len(s.queue) > 0 && s.queue[0].t < limit {
		ev := heap.Pop(&s.queue).(simEvent)
		s.fireEdgeEvent(ev)
	}
}

// fireEdgeEvent handles one scheduled edge creation for ev.u.
func (s *sim) fireEdgeEvent(ev simEvent) {
	u := ev.u
	st := &s.nodes[u]
	if st.inactive || st.retired {
		return
	}
	if ev.t-st.join > st.lifetime {
		st.retired = true
		return
	}
	if s.g.Degree(u) >= s.cfg.Attach.MaxDegree {
		st.retired = true
		return
	}
	// Holiday dips slow edge creation: postpone with probability 1-factor.
	day := int32(ev.t)
	if f := s.dipFactor(day); f < 1 && s.rng.Float64() > f {
		heap.Push(&s.queue, simEvent{t: ev.t + s.nextGap(u, ev.t), u: u})
		return
	}
	s.tryEdge(u, ev.t)
	heap.Push(&s.queue, simEvent{t: ev.t + s.nextGap(u, ev.t), u: u})
}

// nextGap draws the node's next inter-edge gap in days: Pareto base times
// the aging slowdown, divided by the node's activity factor.
func (s *sim) nextGap(u graph.NodeID, t float64) float64 {
	a := s.cfg.Activity
	age := t - s.nodes[u].join
	if age < 0 {
		age = 0
	}
	gap := stats.Pareto(a.GapXm, a.GapAlpha, s.rng)
	gap *= 1 + age/a.AgingScale
	gap /= s.nodes[u].actFactor
	return gap
}

// paWeight returns the preferential-attachment mixing weight at the current
// network size (the decaying-PA mechanism, Fig 3c).
func (s *sim) paWeight() float64 {
	ref := s.cfg.Attach.PARefNodes
	if ref <= 0 {
		ref = 1
	}
	x := float64(len(s.nodes)) / ref
	if x < 1 {
		x = 1
	}
	w := s.cfg.Attach.PAStart - s.cfg.Attach.PALogSlope*math.Log10(x)
	if w < s.cfg.Attach.PAFloor {
		w = s.cfg.Attach.PAFloor
	}
	if w > 1 {
		w = 1
	}
	return w
}

// crossProb returns the probability that a pre-merge user targets the
// opposite network at time t (0 before the merge or for post-merge users).
func (s *sim) crossProb(origin trace.Origin, t float64) float64 {
	if !s.mergeDone || origin == trace.OriginNew {
		return 0
	}
	m := s.cfg.Merge
	return m.CrossFloor + m.CrossBoost*math.Exp(-(t-s.mergeDay)/m.CrossTau)
}

// tryEdge attempts to create one edge from u at time t; it gives up
// silently after a bounded number of destination rejections.
func (s *sim) tryEdge(u graph.NodeID, t float64) bool {
	if s.g.Degree(u) >= s.cfg.Attach.MaxDegree {
		return false
	}
	const attempts = 12
	for i := 0; i < attempts; i++ {
		v, ok := s.pickDestination(u, t)
		if !ok || v == u {
			continue
		}
		sv := &s.nodes[v]
		if sv.inactive || s.g.Degree(v) >= s.cfg.Attach.MaxDegree || s.g.HasEdge(u, v) {
			continue
		}
		s.commitEdge(u, v, int32(t))
		return true
	}
	return false
}

// commitEdge records the edge in the graph, the samplers, and the trace.
func (s *sim) commitEdge(u, v graph.NodeID, day int32) {
	if err := s.g.AddEdge(u, v); err != nil {
		return
	}
	s.pa.Observe(u, v)
	cu, cv := s.nodes[u].comm, s.nodes[v].comm
	s.commPA[cu] = append(s.commPA[cu], u)
	s.commPA[cv] = append(s.commPA[cv], v)
	s.send(trace.Event{Kind: trace.AddEdge, Day: day, U: u, V: v})
}

// pickDestination draws a candidate destination for an edge from u.
func (s *sim) pickDestination(u graph.NodeID, t float64) (graph.NodeID, bool) {
	st := &s.nodes[u]
	r := s.rng.Float64()

	// Cross-network curiosity right after the merge.
	if p := s.crossProb(st.origin, t); p > 0 && r < p {
		other := trace.OriginFiveQ
		if st.origin == trace.OriginFiveQ {
			other = trace.OriginXiaonei
		}
		pool := s.byOrigin[other]
		if len(pool) == 0 {
			return 0, false
		}
		return pool[s.rng.Intn(len(pool))], true
	}

	// Triangle closure: friend of a friend. The rng draw sequence matches
	// the earlier slice-index form exactly: one Intn per hop.
	if s.rng.Float64() < s.cfg.Attach.TriangleProb {
		if d := s.g.Degree(u); d > 0 {
			v := s.g.NeighborAt(u, s.rng.Intn(d))
			if d2 := s.g.Degree(v); d2 > 0 {
				return s.g.NeighborAt(v, s.rng.Intn(d2)), true
			}
		}
		// fall through when u has no two-hop neighborhood yet
	}

	// Homophily: most non-triangle edges stay inside the home community.
	local := s.rng.Float64() < s.cfg.Attach.CommunityBias

	// Preferential attachment — finding popular people, usually within
	// one's own community, sometimes anywhere. Its weight decays with
	// network size (the Fig 3c mechanism).
	if s.rng.Float64() < s.paWeight() {
		if local {
			if pool := s.commPA[st.comm]; len(pool) > 0 {
				return pool[s.rng.Intn(len(pool))], true
			}
		}
		if v, ok := s.pa.Sample(s.rng); ok {
			return v, true
		}
	}

	// Otherwise a random acquaintance, community-biased the same way.
	if local {
		if pool := s.commMembers[st.comm]; len(pool) > 1 {
			return pool[s.rng.Intn(len(pool))], true
		}
	}
	if len(s.nodes) == 0 {
		return 0, false
	}
	return graph.NodeID(s.rng.Intn(len(s.nodes))), true
}
