package gen

import (
	"testing"

	"repro/internal/trace"
)

// tinyConfig is a fast single-network config for unit tests.
func tinyConfig() Config {
	c := DefaultConfig()
	c.Days = 120
	c.MaxNodes = 5000
	c.Arrival.Base = 20
	c.Arrival.GrowthStart = 0.08
	c.Arrival.GrowthEnd = 0.02
	c.Arrival.GrowthTau = 40
	c.Arrival.Dips = nil
	c.Arrival.Bursts = nil
	c.Merge = nil
	return c
}

// tinyMergeConfig is a fast two-network config.
func tinyMergeConfig() Config {
	c := tinyConfig()
	c.Days = 160
	c.Merge = &MergeConfig{
		Day:                   80,
		FiveQStart:            30,
		FiveQArrivalBase:      12,
		FiveQGrowth:           0.06,
		FiveQActivityFactor:   0.45,
		FiveQInitialEdgesMean: 1.6,
		XiaoneiInactiveFrac:   0.11,
		FiveQInactiveFrac:     0.28,
		CrossBoost:            0.45,
		CrossTau:              10,
		CrossFloor:            0.03,
	}
	return c
}

func TestGenerateValidTrace(t *testing.T) {
	tr, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(tr.Events); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if tr.Meta.Nodes < 100 {
		t.Fatalf("too few nodes: %d", tr.Meta.Nodes)
	}
	if tr.Meta.Edges < tr.Meta.Nodes {
		t.Fatalf("too few edges: %d nodes / %d edges", tr.Meta.Nodes, tr.Meta.Edges)
	}
	if tr.Meta.MergeDay != -1 {
		t.Fatalf("merge day = %d for single network", tr.Meta.MergeDay)
	}
	if tr.Meta.FiveQ != 0 || tr.Meta.NewUsers != 0 {
		t.Fatalf("single network has foreign origins: %+v", tr.Meta)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	c1 := tinyConfig()
	c2 := tinyConfig()
	c2.Seed = 2
	a, _ := Generate(c1)
	b, _ := Generate(c2)
	if len(a.Events) == len(b.Events) {
		same := true
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds gave identical traces")
		}
	}
}

func TestGenerateMergeTrace(t *testing.T) {
	tr, err := Generate(tinyMergeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(tr.Events); err != nil {
		t.Fatalf("merge trace invalid: %v", err)
	}
	if tr.Meta.MergeDay != 80 {
		t.Fatalf("merge day = %d", tr.Meta.MergeDay)
	}
	if tr.Meta.FiveQ == 0 {
		t.Fatal("no 5Q nodes imported")
	}
	if tr.Meta.NewUsers == 0 {
		t.Fatal("no post-merge users")
	}
	// All 5Q node events must be stamped with the merge day.
	for _, ev := range tr.Events {
		if ev.Kind == trace.AddNode && ev.Origin == trace.OriginFiveQ && ev.Day != 80 {
			t.Fatalf("5Q node created on day %d", ev.Day)
		}
	}
	// There must be a spike: more edges on the merge day than the day before.
	perDay := map[int32]int{}
	for _, ev := range tr.Events {
		if ev.Kind == trace.AddEdge {
			perDay[ev.Day]++
		}
	}
	if perDay[80] <= perDay[79]*2 {
		t.Fatalf("no merge-day edge spike: day79=%d day80=%d", perDay[79], perDay[80])
	}
}

func TestGenerateRespectsMaxNodes(t *testing.T) {
	c := tinyConfig()
	c.MaxNodes = 200
	tr, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.Nodes > 200 {
		t.Fatalf("node cap violated: %d", tr.Meta.Nodes)
	}
}

func TestGenerateRespectsDegreeCap(t *testing.T) {
	c := tinyConfig()
	c.Attach.MaxDegree = 10
	tr, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	deg := map[int32]int{}
	for _, ev := range tr.Events {
		if ev.Kind == trace.AddEdge {
			deg[ev.U]++
			deg[ev.V]++
		}
	}
	for u, d := range deg {
		// The cap is checked before creating an edge, so a node can reach
		// the cap but never exceed it by more than the receiving slot.
		if d > 10+1 {
			t.Fatalf("node %d degree %d exceeds cap", u, d)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.MaxNodes = 0 },
		func(c *Config) { c.Arrival.Base = -1 },
		func(c *Config) { c.Activity.GapXm = 0 },
		func(c *Config) { c.Attach.MaxDegree = 0 },
		func(c *Config) { c.Community.Theta = 0 },
	}
	for i, mutate := range cases {
		c := tinyConfig()
		mutate(&c)
		if _, err := Generate(c); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	mergeCases := []func(*MergeConfig){
		func(m *MergeConfig) { m.Day = 0 },
		func(m *MergeConfig) { m.Day = 9999 },
		func(m *MergeConfig) { m.FiveQStart = 200 },
		func(m *MergeConfig) { m.XiaoneiInactiveFrac = 1.5 },
		func(m *MergeConfig) { m.FiveQActivityFactor = 0 },
	}
	for i, mutate := range mergeCases {
		c := tinyMergeConfig()
		mutate(c.Merge)
		if _, err := Generate(c); err == nil {
			t.Fatalf("merge case %d: invalid config accepted", i)
		}
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{Start: 10, Length: 5, Factor: 0.5}
	for _, tc := range []struct {
		day  int32
		want bool
	}{{9, false}, {10, true}, {14, true}, {15, false}} {
		if w.Contains(tc.day) != tc.want {
			t.Fatalf("Contains(%d) != %v", tc.day, tc.want)
		}
	}
}

func TestArrivalDipsReduceGrowth(t *testing.T) {
	c := tinyConfig()
	base, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Arrival.Dips = []Window{{Start: 0, Length: 120, Factor: 0.2}}
	dipped, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if dipped.Meta.Nodes >= base.Meta.Nodes {
		t.Fatalf("dip did not reduce arrivals: %d vs %d", dipped.Meta.Nodes, base.Meta.Nodes)
	}
}

// TestCalibrationSmoke prints the headline shape of the small config so
// regressions in generator tuning are visible in test logs.
func TestCalibrationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration smoke is moderate cost")
	}
	tr, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(tr.Events); err != nil {
		t.Fatal(err)
	}
	m := tr.Meta
	t.Logf("small config: %d nodes (%d xiaonei / %d 5q / %d new), %d edges, avg degree %.1f",
		m.Nodes, m.Xiaonei, m.FiveQ, m.NewUsers, m.Edges, 2*float64(m.Edges)/float64(m.Nodes))
	if m.Nodes < 1000 {
		t.Fatalf("small config too small: %d nodes", m.Nodes)
	}
	avgDeg := 2 * float64(m.Edges) / float64(m.Nodes)
	if avgDeg < 4 || avgDeg > 80 {
		t.Fatalf("average degree out of plausible band: %.1f", avgDeg)
	}
}
