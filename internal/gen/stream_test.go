package gen

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// TestGenerateStreamMatchesGenerate: the emit-mode generator must be
// byte-identical to the materializing one — same events, same meta — and
// a merged scenario must stream the 5Q import correctly.
func TestGenerateStreamMatchesGenerate(t *testing.T) {
	cfg := SmallConfig()
	cfg.Days = 200 // past the day-150 merge, fast enough for a unit test

	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []trace.Event
	meta, err := GenerateStream(cfg, func(ev trace.Event) error {
		streamed = append(streamed, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta != tr.Meta {
		t.Fatalf("meta: stream %+v != slice %+v", meta, tr.Meta)
	}
	if len(streamed) != len(tr.Events) {
		t.Fatalf("events: stream %d != slice %d", len(streamed), len(tr.Events))
	}
	for i := range streamed {
		if streamed[i] != tr.Events[i] {
			t.Fatalf("event %d: stream %+v != slice %+v", i, streamed[i], tr.Events[i])
		}
	}
}

// TestGenerateToFileRoundTrip: stream-generate to disk, replay via
// FileSource, and compare against the in-memory path event by event.
func TestGenerateToFileRoundTrip(t *testing.T) {
	cfg := SmallConfig()
	cfg.Days = 200

	path := filepath.Join(t.TempDir(), "gen.trace")
	meta, err := GenerateToFile(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if meta != tr.Meta {
		t.Fatalf("meta: file %+v != slice %+v", meta, tr.Meta)
	}

	fs, err := trace.OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Meta() != tr.Meta {
		t.Fatalf("header meta %+v != %+v", fs.Meta(), tr.Meta)
	}
	cur, err := fs.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := range tr.Events {
		ev, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("file stream ended at event %d of %d", i, len(tr.Events))
		}
		if ev != tr.Events[i] {
			t.Fatalf("event %d: file %+v != slice %+v", i, ev, tr.Events[i])
		}
	}
	if _, ok, err := cur.Next(); err != nil || ok {
		t.Fatalf("file stream has trailing events (ok=%v err=%v)", ok, err)
	}
}

// TestGenerateStreamEmitError: a failing sink aborts the run and
// surfaces the sink's error; GenerateToFile removes the partial file.
func TestGenerateStreamEmitError(t *testing.T) {
	cfg := SmallConfig()
	cfg.Days = 60
	cfg.Merge = nil
	sentinel := os.ErrClosed
	n := 0
	_, err := GenerateStream(cfg, func(trace.Event) error {
		n++
		if n > 10 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err = %v, want the sink's sentinel", err)
	}
}
