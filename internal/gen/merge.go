package gen

import (
	"container/heap"

	"repro/internal/graph"
	"repro/internal/trace"
)

// importNetwork merges a fully grown 5Q simulation into this one on the
// merge day, mirroring §5.1: both networks were "locked", all 5Q accounts
// and friendships were imported in one shot (the day-386 spike of Fig 1a),
// duplicate-account holders picked one profile to keep (the discarded ones
// never act again), and from the next day on users could friend across the
// old network boundary.
func (s *sim) importNetwork(fq *sim) {
	m := s.cfg.Merge
	day := m.Day
	t := float64(day)

	// Duplicate accounts on the Xiaonei side go silent immediately.
	for u := range s.nodes {
		if s.nodes[u].origin == trace.OriginXiaonei && s.rng.Float64() < m.XiaoneiInactiveFrac {
			s.nodes[u].inactive = true
		}
	}

	// Map 5Q node ids into the combined id space, emitting AddNode events.
	idMap := make([]graph.NodeID, len(fq.nodes))
	commMap := make([]int32, len(fq.commMembers))
	for c := range commMap {
		commMap[c] = -1
	}
	for old := range fq.nodes {
		nu := s.g.AddNode()
		idMap[old] = nu
		fst := fq.nodes[old]
		comm := commMap[fst.comm]
		if comm < 0 {
			s.commMembers = append(s.commMembers, nil)
			s.commPA = append(s.commPA, nil)
			comm = int32(len(s.commMembers) - 1)
			commMap[fst.comm] = comm
		}
		st := nodeState{
			// Preserve account age: the 5Q clock's zero is FiveQStart.
			join:      fst.join + float64(m.FiveQStart),
			lifetime:  fst.lifetime,
			comm:      comm,
			origin:    trace.OriginFiveQ,
			actFactor: m.FiveQActivityFactor,
			inactive:  s.rng.Float64() < m.FiveQInactiveFrac,
			retired:   fst.retired,
		}
		s.nodes = append(s.nodes, st)
		s.commMembers[comm] = append(s.commMembers[comm], nu)
		s.byOrigin[trace.OriginFiveQ] = append(s.byOrigin[trace.OriginFiveQ], nu)
		s.send(trace.Event{Kind: trace.AddNode, Day: day, U: nu, Origin: trace.OriginFiveQ})
	}

	// Import 5Q's friendship edges, all stamped with the merge day.
	fq.g.ForEachEdge(func(a, b graph.NodeID) {
		s.commitEdge(idMap[a], idMap[b], day)
	})

	// Surviving 5Q users resume their activity processes on the combined
	// network; their gaps reflect their (preserved) age and 5Q's lower
	// activity level.
	for old := range fq.nodes {
		nu := idMap[old]
		st := &s.nodes[nu]
		if st.inactive || st.retired {
			continue
		}
		heap.Push(&s.queue, simEvent{t: t + s.nextGap(nu, t), u: nu})
	}

	// Merge excitement: active pre-merge users on both sides get a prompt
	// extra edge opportunity, producing the short-lived burst of §5.3.
	for u := range s.nodes {
		st := &s.nodes[u]
		if st.inactive || st.retired || st.origin == trace.OriginNew {
			continue
		}
		if s.rng.Float64() < 0.5 {
			heap.Push(&s.queue, simEvent{t: t + 3*s.rng.Float64(), u: graph.NodeID(u)})
		}
	}

	s.mergeDone = true
}
