package gen

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/trace"
)

// ErrAppendMismatch is returned when the configuration handed to
// AppendToFile would not regenerate the file's existing events as an
// exact prefix — a different seed, a shrunk horizon, an inconsistent
// merge day, or (caught by the counter cross-check) different generator
// knobs. The file is left exactly as it was.
var ErrAppendMismatch = errors.New("gen: config does not extend the existing trace")

// AppendToFile extends an existing generated trace file in place to
// cfg.Days, prefix-stable: the file's events are untouched and only the
// days past its current horizon are appended. It relies on the
// generator's determinism — the same config with a longer horizon emits
// the shorter trace as an exact prefix (pinned by
// TestExtendedHorizonKeepsPrefix) — so cfg must be the file's original
// configuration with only Days raised. The prefix is re-simulated and
// skipped (determinism has no shortcut), and its accumulated counters
// are cross-checked against the file header before a single byte is
// appended; a mismatch aborts with ErrAppendMismatch and the file
// re-finalized unchanged.
//
// The appended events are flushed to disk at every day boundary, so a
// concurrent trace.TailProbe observes each completed day as soon as the
// next one starts — this is the live writer the ingest plane tails.
// Close back-patches the header and index footer, after which the file
// is byte-identical to generating the full horizon from scratch.
func AppendToFile(cfg Config, path string) (trace.Meta, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return trace.Meta{}, err
	}
	defer f.Close()
	enc, err := trace.OpenAppend(f)
	if err != nil {
		return trace.Meta{}, err
	}
	old := enc.Meta()
	if err := checkAppendConfig(cfg, old); err == nil {
		// The one identity knob an extension may legally change: a merge
		// day inside the appended window (the prefix days are merge-free
		// either way). The finalized header must record it, exactly as a
		// from-scratch generation would.
		if cfg.Merge != nil {
			enc.SetMergeDay(cfg.Merge.Day)
		}
	} else {
		// OpenAppend truncated the footer; re-finalize the unchanged
		// events so the file is restored byte-for-byte.
		if cerr := enc.Close(); cerr != nil {
			return trace.Meta{}, fmt.Errorf("%w (and re-finalizing failed: %v)", err, cerr)
		}
		return trace.Meta{}, err
	}

	skip := enc.Events()
	var (
		prefix  trace.Meta
		n       uint64
		lastDay = int32(-1)
	)
	prefix.MergeDay = -1
	meta, err := GenerateStream(cfg, func(ev trace.Event) error {
		if n < skip {
			prefix.Accumulate(ev)
			n++
			if n == skip && !prefixMatches(prefix, old) {
				return fmt.Errorf("%w: regenerated prefix summarizes to %+v, file header holds %+v (different generator knobs?)",
					ErrAppendMismatch, prefix, old)
			}
			return nil
		}
		n++
		newDay := ev.Day != lastDay
		lastDay = ev.Day
		if err := enc.Write(ev); err != nil {
			return err
		}
		if newDay {
			// The first event of a new day is what seals the previous
			// one for tail readers; push it to disk.
			return enc.Flush()
		}
		return nil
	})
	if err != nil {
		// The stream may have emitted fewer events than the file holds
		// (shrunk arrival knobs) or failed mid-append. Whatever complete
		// events were written are finalized so the file stays decodable.
		if cerr := enc.Close(); cerr != nil {
			return trace.Meta{}, fmt.Errorf("%w (and re-finalizing failed: %v)", err, cerr)
		}
		return trace.Meta{}, err
	}
	if n < skip {
		err = fmt.Errorf("%w: config generates only %d events, file holds %d", ErrAppendMismatch, n, skip)
		if cerr := enc.Close(); cerr != nil {
			return trace.Meta{}, fmt.Errorf("%w (and re-finalizing failed: %v)", err, cerr)
		}
		return trace.Meta{}, err
	}
	if err := enc.Close(); err != nil {
		return trace.Meta{}, err
	}
	if cerr := f.Close(); cerr != nil {
		return trace.Meta{}, cerr
	}
	return meta, nil
}

// checkAppendConfig validates the cheap identity knobs before any
// simulation work.
func checkAppendConfig(cfg Config, old trace.Meta) error {
	switch {
	case cfg.Seed != old.Seed:
		return fmt.Errorf("%w: seed %d, file was generated with seed %d", ErrAppendMismatch, cfg.Seed, old.Seed)
	case cfg.Days <= old.Days:
		return fmt.Errorf("%w: horizon %d does not extend the file's %d days", ErrAppendMismatch, cfg.Days, old.Days)
	}
	want := int32(-1)
	if cfg.Merge != nil {
		want = cfg.Merge.Day
	}
	switch {
	case old.MergeDay >= 0 && want != old.MergeDay:
		return fmt.Errorf("%w: merge day %d, file recorded merge day %d", ErrAppendMismatch, want, old.MergeDay)
	case old.MergeDay < 0 && want >= 0 && want < old.Days:
		return fmt.Errorf("%w: merge day %d falls inside the file's %d merge-free days", ErrAppendMismatch, want, old.Days)
	}
	return nil
}

// prefixMatches compares the regenerated prefix's accumulated counters
// with the file header's. Seed and MergeDay are generator knowledge (not
// accumulated) and checked separately by checkAppendConfig.
func prefixMatches(got, old trace.Meta) bool {
	return got.Days == old.Days && got.Nodes == old.Nodes && got.Edges == old.Edges &&
		got.Xiaonei == old.Xiaonei && got.FiveQ == old.FiveQ && got.NewUsers == old.NewUsers
}
