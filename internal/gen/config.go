// Package gen generates synthetic dynamic-OSN traces with the mechanisms
// the paper observes in Renren, standing in for the proprietary dataset
// (see DESIGN.md §2 for the substitution argument):
//
//   - exponential node arrival with seasonal dips and publicity bursts;
//   - per-node activity processes with an initial friendship burst and
//     power-law (Pareto) inter-arrival gaps that lengthen with account age;
//   - destination selection mixing preferential attachment (whose weight
//     decays as the network grows), triangle closure, and uniform random
//     choice, with homophily toward the node's home community;
//   - community structure from a Chinese-Restaurant-Process prior, giving
//     power-law community sizes;
//   - an optional network-merge event that imports a separately grown "5Q"
//     network on a configurable day, silences duplicate accounts, and adds
//     a decaying cross-network attachment boost.
//
// The output is a trace.Trace; all analyses consume only that stream.
package gen

import "math"

// Window is a time interval during which the arrival (or activity) rate is
// multiplied by Factor. Factor < 1 models holiday dips, > 1 publicity
// campaigns.
type Window struct {
	Start  int32
	Length int32
	Factor float64
}

// Contains reports whether day falls inside the window.
func (w Window) Contains(day int32) bool {
	return day >= w.Start && day < w.Start+w.Length
}

// ArrivalConfig controls the node-arrival process. The expected population
// P(d) grows multiplicatively with a relative daily growth rate that decays
// from GrowthStart to GrowthEnd with time constant GrowthTau:
//
//	g(d) = GrowthEnd + (GrowthStart-GrowthEnd) * exp(-d/GrowthTau)
//	arrivals(d) = P(d) * g(d) * dips(d) * bursts(d),  P(d+1) = P(d)*(1+g(d))
//
// A decaying relative growth rate is what the paper measures in Fig 1(b)
// (wild early growth stabilizing to a low constant), and it is also the
// mechanism behind the declining share of new-node edges in Fig 2(c).
type ArrivalConfig struct {
	InitialNodes int     // seed nodes created on day 0
	Base         float64 // initial expected population scale P(0)
	GrowthStart  float64 // relative daily growth at day 0
	GrowthEnd    float64 // asymptotic relative daily growth
	GrowthTau    float64 // decay time constant in days (<=0: constant rate)
	Dips         []Window
	Bursts       []Window
}

// GrowthAt returns the relative daily growth rate g(d).
func (a ArrivalConfig) GrowthAt(day int32) float64 {
	if a.GrowthTau <= 0 {
		return a.GrowthStart
	}
	return a.GrowthEnd + (a.GrowthStart-a.GrowthEnd)*math.Exp(-float64(day)/a.GrowthTau)
}

// ActivityConfig controls each node's edge-creation process.
type ActivityConfig struct {
	// InitialEdgesMean is the mean of the geometric burst of friendships
	// created right after joining.
	InitialEdgesMean float64
	// GapXm and GapAlpha parameterize the Pareto inter-arrival gap (days)
	// between a node's edge creations; the gap PDF has exponent
	// GapAlpha+1, the paper's 1.8–2.5 range (Fig 2a).
	GapXm    float64
	GapAlpha float64
	// AgingScale slows a node down with age: gaps are multiplied by
	// (1 + age/AgingScale), front-loading activity (Fig 2b).
	AgingScale float64
	// LifetimeXm/LifetimeAlpha draw each node's active lifetime (days)
	// from a Pareto distribution; after it elapses the node stops
	// initiating edges (it can still receive them).
	LifetimeXm    float64
	LifetimeAlpha float64
}

// AttachConfig controls destination selection.
type AttachConfig struct {
	// MaxDegree is the friend cap (Renren's default is 1000).
	MaxDegree int
	// The preferential-attachment mixing weight decays with network size
	// once it exceeds PARefNodes ("supernodes become hard to locate in
	// the massive network", §3.2):
	//
	//	paWeight(n) = clamp(PAStart - PALogSlope*log10(max(1, n/PARefNodes)),
	//	                    PAFloor, 1)
	//
	// This is the mechanism behind the α(t) decay of Fig 3(c).
	PAStart    float64
	PAFloor    float64
	PALogSlope float64
	PARefNodes float64
	// TriangleProb is the probability an edge is a friend-of-a-friend
	// closure, the source of clustering and community cohesion.
	TriangleProb float64
	// CommunityBias is the probability that a non-triangle edge is
	// restricted to the initiator's home community.
	CommunityBias float64
}

// CommunityConfig controls the home-community prior.
type CommunityConfig struct {
	// Theta is the Chinese-Restaurant-Process concentration: a joining
	// node founds a new community with probability Theta/(pool+Theta),
	// and otherwise adopts the community of a random node in the pool.
	Theta float64
	// WaveWindow and WaveProb model wave onboarding (universities join a
	// social network in bursts): with probability WaveProb the adoption
	// pool is only the most recent WaveWindow arrivals, making community
	// growth time-localized — communities are born, grow in a wave, then
	// stagnate. With probability 1-WaveProb the pool is everyone
	// (size-proportional rich-get-richer growth). WaveWindow 0 disables
	// waves entirely.
	WaveWindow int
	WaveProb   float64
}

// MergeConfig describes the 5Q network and the merge event (§5).
type MergeConfig struct {
	// Day the merge happens (the 5Q network is imported at this day).
	Day int32
	// FiveQStart is the day the 5Q network was founded.
	FiveQStart int32
	// FiveQArrivalBase is 5Q's initial population scale and FiveQGrowth
	// its (constant) relative daily growth over [FiveQStart, Day).
	FiveQArrivalBase float64
	FiveQGrowth      float64
	// FiveQActivityFactor scales 5Q users' activity down (<1): the paper
	// finds Xiaonei users create over twice as many edges (§5.2).
	FiveQActivityFactor float64
	// FiveQInitialEdgesMean is 5Q's initial-burst mean (5Q is "loosely
	// connected": 670K users, only 3M edges).
	FiveQInitialEdgesMean float64
	// XiaoneiInactiveFrac and FiveQInactiveFrac are the duplicate-account
	// fractions silenced immediately at the merge (paper: 11% and 28%).
	XiaoneiInactiveFrac float64
	FiveQInactiveFrac   float64
	// CrossBoost is the initial probability that a pre-merge user's edge
	// targets the opposite network; it decays as exp(-(t-Day)/CrossTau)
	// down to CrossFloor.
	CrossBoost float64
	CrossTau   float64
	CrossFloor float64
}

// Config is the full generator configuration.
type Config struct {
	Seed     int64
	Days     int32
	MaxNodes int // hard cap on total nodes (safety valve)

	Arrival   ArrivalConfig
	Activity  ActivityConfig
	Attach    AttachConfig
	Community CommunityConfig

	// Merge is nil for a single-network trace.
	Merge *MergeConfig
}

// DefaultConfig returns the scaled-down Renren scenario used by the figure
// benches: the paper's 771-day horizon with the merge on day 386, sized to
// roughly 1/150 of Renren (≈10^5 nodes, ≈10^6 edges).
func DefaultConfig() Config {
	return Config{
		Seed:     1,
		Days:     771,
		MaxNodes: 400_000,
		Arrival: ArrivalConfig{
			InitialNodes: 2,
			Base:         16,
			GrowthStart:  0.03,
			GrowthEnd:    0.007,
			GrowthTau:    150,
			Dips: []Window{
				{Start: 56, Length: 14, Factor: 0.35},  // lunar new year 1
				{Start: 222, Length: 60, Factor: 0.55}, // summer vacation 1
				{Start: 432, Length: 14, Factor: 0.35}, // lunar new year 2
				{Start: 587, Length: 60, Factor: 0.55}, // summer vacation 2
			},
			Bursts: []Window{
				{Start: 300, Length: 25, Factor: 2.2}, // publicity campaigns (§2)
			},
		},
		Activity: ActivityConfig{
			InitialEdgesMean: 3.5,
			GapXm:            2.5,
			GapAlpha:         1.25,
			AgingScale:       30,
			LifetimeXm:       30,
			LifetimeAlpha:    0.6,
		},
		Attach: AttachConfig{
			MaxDegree:     1000,
			PAStart:       1.0,
			PAFloor:       0.15,
			PALogSlope:    0.5,
			PARefNodes:    2000,
			TriangleProb:  0.45,
			CommunityBias: 0.8,
		},
		Community: CommunityConfig{Theta: 18, WaveWindow: 1500, WaveProb: 0.75},
		Merge: &MergeConfig{
			Day:                   386,
			FiveQStart:            140,
			FiveQArrivalBase:      25,
			FiveQGrowth:           0.02,
			FiveQActivityFactor:   0.45,
			FiveQInitialEdgesMean: 1.6,
			XiaoneiInactiveFrac:   0.11,
			FiveQInactiveFrac:     0.28,
			CrossBoost:            0.45,
			CrossTau:              12,
			CrossFloor:            0.03,
		},
	}
}

// LargeConfig returns the million-node out-of-core scenario: the default
// 771-day Renren+5Q shape with the arrival processes scaled ~10×. At this
// size the event stream (~10⁷ events) stops fitting comfortably next to
// the analyses, which is exactly what the streaming data plane is for:
// generate with GenerateToFile, replay with trace.OpenFileSource, and the
// only O(events) artifact is the file (see DESIGN.md §4).
func LargeConfig() Config {
	c := DefaultConfig()
	c.MaxNodes = 4_000_000
	c.Arrival.Base = 160
	c.Merge.FiveQArrivalBase = 250
	return c
}

// SmallConfig returns a quick configuration (a few thousand nodes) for
// tests and examples.
func SmallConfig() Config {
	c := DefaultConfig()
	c.Days = 300
	c.MaxNodes = 30_000
	c.Arrival.Base = 35
	c.Arrival.GrowthStart = 0.04
	c.Arrival.GrowthEnd = 0.012
	c.Arrival.GrowthTau = 60
	c.Arrival.Dips = []Window{{Start: 56, Length: 14, Factor: 0.35}}
	c.Arrival.Bursts = nil
	c.Merge = &MergeConfig{
		Day:                   150,
		FiveQStart:            60,
		FiveQArrivalBase:      25,
		FiveQGrowth:           0.04,
		FiveQActivityFactor:   0.45,
		FiveQInitialEdgesMean: 1.6,
		XiaoneiInactiveFrac:   0.11,
		FiveQInactiveFrac:     0.28,
		CrossBoost:            0.45,
		CrossTau:              10,
		CrossFloor:            0.03,
	}
	return c
}
