package gen

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sameBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// appendTestConfig is SmallConfig at a horizon past the merge, fast
// enough to simulate a few times per test.
func appendTestConfig(days int32) Config {
	c := SmallConfig()
	c.Days = days
	return c
}

// TestAppendToFileByteIdentical pins the live-ingest contract end to end:
// generate a 160-day trace, AppendToFile it out to 200 days (through the
// day-150 merge's post-merge regime), and the file must be byte-identical
// to generating 200 days from scratch.
func TestAppendToFileByteIdentical(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.trace")
	grown := filepath.Join(dir, "grown.trace")

	wantMeta, err := GenerateToFile(appendTestConfig(200), full)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateToFile(appendTestConfig(160), grown); err != nil {
		t.Fatal(err)
	}
	gotMeta, err := AppendToFile(appendTestConfig(200), grown)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != wantMeta {
		t.Fatalf("meta: append %+v, from-scratch %+v", gotMeta, wantMeta)
	}
	if !sameBytes(mustReadFile(t, grown), mustReadFile(t, full)) {
		t.Fatal("appended file differs from from-scratch generation")
	}

	// A second extension of the already-extended file.
	if _, err := AppendToFile(appendTestConfig(230), grown); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateToFile(appendTestConfig(230), full); err != nil {
		t.Fatal(err)
	}
	if !sameBytes(mustReadFile(t, grown), mustReadFile(t, full)) {
		t.Fatal("second append differs from from-scratch generation")
	}
}

// TestAppendToFileMergeInWindow: extending a merge-free trace with a
// config whose merge day falls inside the appended window is legal (the
// prefix days are merge-free either way) and stays byte-identical.
func TestAppendToFileMergeInWindow(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.trace")
	grown := filepath.Join(dir, "grown.trace")

	base := appendTestConfig(120)
	base.Merge = nil
	ext := appendTestConfig(200) // merge day 150 ∈ [120, 200)

	if _, err := GenerateToFile(ext, full); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateToFile(base, grown); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendToFile(ext, grown); err != nil {
		t.Fatal(err)
	}
	if !sameBytes(mustReadFile(t, grown), mustReadFile(t, full)) {
		t.Fatal("merge-in-window append differs from from-scratch generation")
	}
}

// TestAppendToFileRejectsMismatch: every identity violation — wrong seed,
// shrunk horizon, moved merge day, different generator knobs (caught by
// the counter cross-check after re-simulating the prefix) — aborts with
// ErrAppendMismatch and leaves the file byte-for-byte untouched,
// including its footer.
func TestAppendToFileRejectsMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.trace")
	if _, err := GenerateToFile(appendTestConfig(160), path); err != nil {
		t.Fatal(err)
	}
	before := mustReadFile(t, path)

	badSeed := appendTestConfig(200)
	badSeed.Seed++
	shrunk := appendTestConfig(160)
	movedMerge := appendTestConfig(200)
	movedMerge.Merge.Day = 170
	badKnobs := appendTestConfig(200)
	badKnobs.Arrival.Base *= 2

	for name, cfg := range map[string]Config{
		"seed": badSeed, "shrunk": shrunk, "merge": movedMerge, "knobs": badKnobs,
	} {
		if _, err := AppendToFile(cfg, path); !errors.Is(err, ErrAppendMismatch) {
			t.Fatalf("%s: err = %v, want ErrAppendMismatch", name, err)
		}
		if !sameBytes(mustReadFile(t, path), before) {
			t.Fatalf("%s: rejected append modified the file", name)
		}
	}
}
