package gen

import "testing"

// TestExtendedHorizonKeepsPrefix pins the property the incremental
// checkpoint-resume workflow depends on (README: generate → run with
// checkpoints → append days → resume): regenerating with the same seed
// and a longer -days horizon reproduces the shorter trace as an exact
// prefix and only appends events after it. The simulation is day-driven
// off one RNG stream, so the horizon never influences earlier days.
func TestExtendedHorizonKeepsPrefix(t *testing.T) {
	base := SmallConfig()
	ext := SmallConfig()
	ext.Days = base.Days + 30

	short, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Generate(ext)
	if err != nil {
		t.Fatal(err)
	}
	if len(long.Events) <= len(short.Events) {
		t.Fatalf("extended horizon appended nothing: %d vs %d events", len(long.Events), len(short.Events))
	}
	for i := range short.Events {
		if short.Events[i] != long.Events[i] {
			t.Fatalf("event %d diverged under a longer horizon: %+v vs %+v", i, short.Events[i], long.Events[i])
		}
	}
	for _, ev := range long.Events[len(short.Events):] {
		if ev.Day < base.Days-1 {
			t.Fatalf("appended event stamped inside the old horizon: %+v", ev)
		}
	}
}
