package gen

import (
	"fmt"
	"os"

	"repro/internal/stats"
	"repro/internal/trace"
)

// GenerateStream runs the simulation for cfg, invoking emit for every
// event in trace order, without ever materializing the event slice: the
// generator's memory is its simulation state, not the event count. It is
// the emit-mode core that Generate (slice), GenerateToFile (disk), and
// direct-replay consumers (a trace.Sink, a trace.Encoder) all share.
//
// The returned Meta carries the same counters Generate reports, including
// Seed and MergeDay. A non-nil error from emit aborts the run at the next
// day boundary and is returned verbatim. A nil emit discards the stream
// (useful for warming or costing a configuration).
func GenerateStream(cfg Config, emit func(trace.Event) error) (trace.Meta, error) {
	meta := trace.Meta{MergeDay: -1}
	if err := validateConfig(cfg); err != nil {
		return meta, err
	}
	rng := stats.NewRand(cfg.Seed)
	s := newSim(cfg, rng)
	s.emit = func(ev trace.Event) error {
		meta.Accumulate(ev)
		if emit == nil {
			return nil
		}
		return emit(ev)
	}

	var fiveQ *sim
	if cfg.Merge != nil {
		// Grow the 5Q network standalone over [0, Day-FiveQStart) days of
		// its own clock, with its own RNG stream. Its event stream is
		// discarded — only the final state is imported on the merge day —
		// so the sub-simulation keeps no emit sink at all.
		fq := fiveQConfig(cfg)
		fiveQ = newSim(fq, stats.NewRand(cfg.Seed+7919))
		if err := fiveQ.run(nil); err != nil {
			return meta, fmt.Errorf("gen: 5q sub-simulation: %w", err)
		}
	}
	if err := s.run(fiveQ); err != nil {
		return meta, err
	}
	meta.Seed = cfg.Seed
	if cfg.Merge != nil {
		meta.MergeDay = cfg.Merge.Day
	}
	return meta, nil
}

// GenerateToFile streams a generated trace straight into the binary trace
// format at path — the out-of-core companion to Generate: neither the
// event slice nor the encoded bytes are ever resident, so a million-node
// trace costs generator-state memory and one disk file. The written file
// replays through trace.OpenFileSource. On error the partial file is
// removed.
func GenerateToFile(cfg Config, path string) (trace.Meta, error) {
	f, err := os.Create(path)
	if err != nil {
		return trace.Meta{}, err
	}
	meta, err := generateToEncoder(cfg, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return trace.Meta{}, err
	}
	return meta, nil
}

// GenerateToSegFile is GenerateToFile writing the compressed segmented
// container instead of the flat format: frames of flate-compressed
// day-runs with an embedded day index (trace.SegEncoder). The written
// file replays through trace.OpenTrace (or trace.OpenSegFileSource) and
// is typically well under half the flat encoding's size. Segmented files
// are immutable once finalized — they cannot be extended with
// AppendToFile — so this is the archival/serving form, not the
// append-workflow form. On error the partial file is removed.
func GenerateToSegFile(cfg Config, path string) (trace.Meta, error) {
	f, err := os.Create(path)
	if err != nil {
		return trace.Meta{}, err
	}
	meta, err := generateToSegEncoder(cfg, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return trace.Meta{}, err
	}
	return meta, nil
}

func generateToSegEncoder(cfg Config, f *os.File) (trace.Meta, error) {
	enc, err := trace.NewSegEncoder(f)
	if err != nil {
		return trace.Meta{}, err
	}
	enc.SetSeed(cfg.Seed)
	if cfg.Merge != nil {
		enc.SetMergeDay(cfg.Merge.Day)
	}
	meta, err := GenerateStream(cfg, enc.Write)
	if err != nil {
		return trace.Meta{}, err
	}
	if err := enc.Close(); err != nil {
		return trace.Meta{}, err
	}
	return meta, nil
}

func generateToEncoder(cfg Config, f *os.File) (trace.Meta, error) {
	enc, err := trace.NewEncoder(f)
	if err != nil {
		return trace.Meta{}, err
	}
	enc.SetSeed(cfg.Seed)
	if cfg.Merge != nil {
		enc.SetMergeDay(cfg.Merge.Day)
	}
	meta, err := GenerateStream(cfg, enc.Write)
	if err != nil {
		return trace.Meta{}, err
	}
	if err := enc.Close(); err != nil {
		return trace.Meta{}, err
	}
	return meta, nil
}
