package core

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/trace"
)

// resumeTestConfig mirrors the equivalence test's scaled-down knobs, plus
// a checkpoint cadence that lands several checkpoints inside the small
// trace.
func resumeTestConfig(dir string) Config {
	cfg := DefaultConfig()
	cfg.Alpha.Interval = 2000
	cfg.Alpha.MinEdges = 4000
	cfg.Alpha.PolyDegree = 3
	cfg.Community.SnapshotEvery = 6
	cfg.Community.SizeDistDays = []int32{200, 254, 296}
	cfg.DeltaSweep = []float64{0.01, 0.1}
	cfg.PathEvery = 30
	cfg.PathSources = 30
	cfg.ClusteringSamples = 300
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 90
	return cfg
}

// encodeTrace streams tr to a trace file (day index included) and opens
// it, so resume exercises the real OpenAt path.
func encodeTrace(t *testing.T, tr *trace.Trace, path string) *trace.FileSource {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := trace.NewEncoder(f)
	if err != nil {
		t.Fatal(err)
	}
	enc.SetSeed(tr.Meta.Seed)
	enc.SetMergeDay(tr.Meta.MergeDay)
	for _, ev := range tr.Events {
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fs, err := trace.OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// checkpointDays lists the checkpoint days present in dir, ascending.
func checkpointDays(t *testing.T, dir string) []int32 {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var days []int32
	for _, e := range ents {
		if d, ok := parseCheckpointDay(e.Name()); ok {
			days = append(days, d)
		}
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	return days
}

// compareRuns holds two pipeline results bit-identical: every figure
// table, the δ-sweep runs, and the community tracking events.
func compareRuns(t *testing.T, label string, base, other *Result) {
	t.Helper()
	compareAllFigures(t, label, base, other)
	if !reflect.DeepEqual(base.DeltaSweep, other.DeltaSweep) {
		t.Errorf("%s: δ-sweep results diverged", label)
	}
	if (base.Community == nil) != (other.Community == nil) {
		t.Fatalf("%s: community result presence diverged", label)
	}
	if base.Community != nil && !reflect.DeepEqual(base.Community.Events, other.Community.Events) {
		t.Errorf("%s: tracking events diverged", label)
	}
	if base.MergeOverall != other.MergeOverall {
		t.Errorf("%s: merge prediction diverged: %+v vs %+v", label, base.MergeOverall, other.MergeOverall)
	}
}

// TestResumeMatchesFromZero is the tentpole's correctness guarantee: for
// every registered streaming stage set, a run resumed from any
// intermediate checkpoint day yields bit-identical figure tables
// (δ-sweep results and tracking events included) to the from-zero run.
func TestResumeMatchesFromZero(t *testing.T) {
	tr, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := encodeTrace(t, tr, filepath.Join(t.TempDir(), "resume.trace"))

	// One case per producing stage's minimal plan, plus the full plan
	// (nil figure list = every stage the config enables, sweep included).
	cases := []struct {
		name    string
		figures []string
	}{
		{"full", nil},
		{"metrics", []string{"fig1a"}},
		{"evolution", []string{"fig2a"}},
		{"alpha", []string{"fig3c"}},
		{"community", []string{"fig5a"}},
		{"users", []string{"fig7a"}},
		{"svm", []string{"fig6b"}},
		{"sweep", []string{"fig4a"}},
		{"osnmerge", []string{"fig8c"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := resumeTestConfig(dir)

			// From-zero run, writing checkpoints as it goes.
			base, err := RunFigures(nil, src, cfg, tc.figures...)
			if err != nil {
				t.Fatal(err)
			}
			if base.ResumedFromDay != -1 {
				t.Fatalf("from-zero run reports ResumedFromDay %d", base.ResumedFromDay)
			}
			days := checkpointDays(t, dir)
			if len(days) < 3 {
				t.Fatalf("only %d checkpoints written: %v", len(days), days)
			}

			// Checkpointing itself must not perturb results.
			plain := cfg
			plain.CheckpointDir = ""
			noCkpt, err := RunFigures(nil, src, plain, tc.figures...)
			if err != nil {
				t.Fatal(err)
			}
			compareRuns(t, tc.name+":checkpointing-off", base, noCkpt)

			// Resume from every checkpoint day: each gets a directory with
			// just that file, so resolution can't pick a later one.
			for _, day := range days {
				one := t.TempDir()
				raw, err := os.ReadFile(filepath.Join(dir, checkpointFileName(day)))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(one, checkpointFileName(day)), raw, 0o644); err != nil {
					t.Fatal(err)
				}
				rcfg := cfg
				rcfg.CheckpointDir = one
				rcfg.Resume = true
				res, err := RunFigures(nil, src, rcfg, tc.figures...)
				if err != nil {
					t.Fatalf("resume from day %d: %v", day, err)
				}
				if res.ResumedFromDay != day {
					t.Fatalf("resume from day %d: ResumedFromDay = %d", day, res.ResumedFromDay)
				}
				compareRuns(t, tc.name+":resume", base, res)
			}
		})
	}
}

// TestResumeFallsBackOnMismatch pins the compatibility contract: a
// checkpoint written under a different config or stage set is ignored —
// the run replays from day 0 and still produces the from-zero tables.
func TestResumeFallsBackOnMismatch(t *testing.T) {
	tr, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := encodeTrace(t, tr, filepath.Join(t.TempDir(), "mismatch.trace"))
	dir := t.TempDir()
	cfg := resumeTestConfig(dir)

	if _, err := RunFigures(nil, src, cfg, "fig1a"); err != nil {
		t.Fatal(err)
	}
	if len(checkpointDays(t, dir)) == 0 {
		t.Fatal("no checkpoints written")
	}
	// Every scenario below also *writes* checkpoints under its own
	// fingerprint; give each its own copy of the originals so one
	// scenario's output can't satisfy (or shadow) another's lookup.
	cloneDir := func() string {
		clone := t.TempDir()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(clone, e.Name()), raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return clone
	}

	// Config mismatch: a different metrics seed changes the fingerprint.
	seedCfg := cfg
	seedCfg.CheckpointDir = cloneDir()
	seedCfg.Resume = true
	seedCfg.Seed = 99
	res, err := RunFigures(nil, src, seedCfg, "fig1a")
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFromDay != -1 {
		t.Fatalf("config-mismatched run resumed from day %d", res.ResumedFromDay)
	}
	fresh := seedCfg
	fresh.CheckpointDir = ""
	fresh.Resume = false
	want, err := RunFigures(nil, src, fresh, "fig1a")
	if err != nil {
		t.Fatal(err)
	}
	compareRuns(t, "config-mismatch", want, res)

	// Progress toggle: the observational progress stage is excluded from
	// the state plane, so turning the display on must not invalidate the
	// checkpoints.
	progCfg := cfg
	progCfg.CheckpointDir = cloneDir()
	progCfg.Resume = true
	progCfg.OnProgress = func(int32, int64) {}
	res, err = RunFigures(nil, src, progCfg, "fig1a")
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFromDay < 0 {
		t.Error("toggling -progress invalidated the checkpoints")
	}

	// Trace mismatch: a trace regenerated with the same seed but
	// different generator knobs carries the same fingerprint identity
	// (seed, merge day) yet a different event stream; the event-count
	// probe must reject the checkpoints instead of serving stale state.
	otherGen := gen.SmallConfig()
	otherGen.Arrival.Base *= 2
	otherTr, err := gen.Generate(otherGen)
	if err != nil {
		t.Fatal(err)
	}
	if otherTr.Meta.Seed != tr.Meta.Seed || otherTr.Meta.MergeDay != tr.Meta.MergeDay {
		t.Fatalf("regenerated trace changed identity: %+v vs %+v", otherTr.Meta, tr.Meta)
	}
	otherSrc := encodeTrace(t, otherTr, filepath.Join(t.TempDir(), "other.trace"))
	otherCfg := cfg
	otherCfg.CheckpointDir = cloneDir()
	otherCfg.Resume = true
	res, err = RunFigures(nil, otherSrc, otherCfg, "fig1a")
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFromDay != -1 {
		t.Fatalf("foreign trace resumed from day %d", res.ResumedFromDay)
	}

	// Stage-set mismatch: the checkpoints were written by a metrics-only
	// plan; an evolution plan must not touch them.
	stageCfg := cfg
	stageCfg.CheckpointDir = cloneDir()
	stageCfg.Resume = true
	res, err = RunFigures(nil, src, stageCfg, "fig2a")
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFromDay != -1 {
		t.Fatalf("stage-mismatched run resumed from day %d", res.ResumedFromDay)
	}

	// Truncated checkpoint (e.g. a crash mid-write outside the atomic
	// rename): the run must fall back cleanly, not fail.
	days := checkpointDays(t, dir)
	last := filepath.Join(dir, checkpointFileName(days[len(days)-1]))
	raw, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, raw[:len(raw)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	okCfg := cfg
	okCfg.Resume = true
	res, err = RunFigures(nil, src, okCfg, "fig1a")
	if err != nil {
		t.Fatalf("corrupt checkpoint broke the run: %v", err)
	}
	// Resolution skips the broken newest file and restores the next
	// older checkpoint instead of replaying everything.
	if want := days[len(days)-2]; res.ResumedFromDay != want {
		t.Errorf("ResumedFromDay = %d, want %d (next older checkpoint)", res.ResumedFromDay, want)
	}
	baseCfg := cfg
	baseCfg.CheckpointDir = ""
	want, err = RunFigures(nil, src, baseCfg, "fig1a")
	if err != nil {
		t.Fatal(err)
	}
	compareRuns(t, "corrupt-fallback", want, res)
}
