package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
)

// TestResumeToleratesConcurrentRotation pins the concurrent-caller
// contract of checkpoint resolution: when a checkpoint file vanishes
// between the directory scan and the restore — retention deleting an old
// day while a writer renames a newer one into place — the resolution
// rescans and resumes from the newly visible checkpoint instead of
// silently falling back to day 0.
func TestResumeToleratesConcurrentRotation(t *testing.T) {
	tr, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := encodeTrace(t, tr, filepath.Join(t.TempDir(), "rotate.trace"))
	all := t.TempDir()
	cfg := resumeTestConfig(all)

	// From-zero run writes the checkpoint inventory (days 90/180/270/299
	// at the small preset) and is the bit-identical reference.
	base, err := RunFigures(nil, src, cfg, "fig1a")
	if err != nil {
		t.Fatal(err)
	}
	days := checkpointDays(t, all)
	if len(days) < 3 {
		t.Fatalf("only %d checkpoints written: %v", len(days), days)
	}
	copyCkpt := func(dir string, day int32) {
		raw, err := os.ReadFile(filepath.Join(all, checkpointFileName(day)))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, checkpointFileName(day)), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("rescan finds the rotated-in newer checkpoint", func(t *testing.T) {
		old, newer := days[0], days[len(days)-1]
		dir := t.TempDir()
		copyCkpt(dir, old)
		// Between the scan and the restore, "another process" finishes a
		// newer checkpoint and retention deletes the old day: the
		// scanned candidate now ENOENTs, and only a rescan can see the
		// replacement.
		calls := 0
		testCkptAfterScan = func(attempt int) {
			if attempt != 0 {
				return
			}
			calls++
			if err := os.Remove(filepath.Join(dir, checkpointFileName(old))); err != nil {
				t.Fatal(err)
			}
			copyCkpt(dir, newer)
		}
		defer func() { testCkptAfterScan = nil }()

		rcfg := cfg
		rcfg.CheckpointDir = dir
		rcfg.Resume = true
		res, err := RunFigures(nil, src, rcfg, "fig1a")
		if err != nil {
			t.Fatal(err)
		}
		if calls == 0 {
			t.Fatal("rotation hook never ran")
		}
		if res.ResumedFromDay != newer {
			t.Fatalf("ResumedFromDay = %d, want %d (the rotated-in checkpoint)", res.ResumedFromDay, newer)
		}
		compareRuns(t, "rotated", base, res)
	})

	t.Run("vanished checkpoint with no replacement falls back to day 0", func(t *testing.T) {
		dir := t.TempDir()
		copyCkpt(dir, days[0])
		testCkptAfterScan = func(int) {
			// Delete whatever the scan saw, every attempt: the bounded
			// rescan must terminate and fall back to a clean day-0 run.
			os.Remove(filepath.Join(dir, checkpointFileName(days[0])))
		}
		defer func() { testCkptAfterScan = nil }()

		rcfg := cfg
		rcfg.CheckpointDir = dir
		rcfg.Resume = true
		res, err := RunFigures(nil, src, rcfg, "fig1a")
		if err != nil {
			t.Fatal(err)
		}
		if res.ResumedFromDay != -1 {
			t.Fatalf("ResumedFromDay = %d, want -1 (day-0 fallback)", res.ResumedFromDay)
		}
		compareRuns(t, "vanished", base, res)
	})
}
