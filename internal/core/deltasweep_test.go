package core

import (
	"reflect"
	"testing"
)

// TestParseDeltaSweep pins the -deltas parser's contract: well-formed
// grids parse in order, and the degenerate inputs a CLI can produce —
// empty or whitespace-only strings, empty segments, non-numbers,
// non-positive or non-finite thresholds, duplicates — are explicit
// errors instead of silent surprises.
func TestParseDeltaSweep(t *testing.T) {
	good := []struct {
		in   string
		want []float64
	}{
		{"0.04", []float64{0.04}},
		{"0.01,0.04,0.16", []float64{0.01, 0.04, 0.16}},
		{" 0.01 ,\t0.04 ", []float64{0.01, 0.04}},
		{"1e-4,0.3", []float64{0.0001, 0.3}},
		// Order is preserved, not sorted: result slots are keyed by it.
		{"0.3,0.01", []float64{0.3, 0.01}},
	}
	for _, tc := range good {
		got, err := ParseDeltaSweep(tc.in)
		if err != nil {
			t.Errorf("ParseDeltaSweep(%q) = error %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseDeltaSweep(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}

	bad := []struct {
		in  string
		why string
	}{
		{"", "empty input"},
		{"   ", "whitespace-only input"},
		{"\t\n", "whitespace-only input"},
		{"0.01,,0.04", "empty segment"},
		{"0.01,", "trailing comma"},
		{"0.01,zero", "non-numeric value"},
		{"0.01,0.04,0.01", "duplicate δ"},
		{"0.04,0.04", "adjacent duplicate δ"},
		{"-0.04", "negative δ"},
		{"0.01,-1e-9", "negative δ in list"},
		{"0", "zero δ (would silently become the default)"},
		{"NaN", "NaN δ"},
		{"+Inf", "infinite δ"},
	}
	for _, tc := range bad {
		if got, err := ParseDeltaSweep(tc.in); err == nil {
			t.Errorf("ParseDeltaSweep(%q) = %v, want error (%s)", tc.in, got, tc.why)
		}
	}
}
