package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/gen"
)

// parallelTestConfig is the resume test's scaled-down full-plan config
// without the checkpoint plane.
func parallelTestConfig() Config {
	cfg := resumeTestConfig("")
	cfg.CheckpointDir = ""
	cfg.CheckpointEvery = 0
	return cfg
}

type progressPoint struct {
	Day    int32
	Events int64
}

// TestParallelWorkersMatch is the determinism stress test at the seams:
// the full plan at workers ∈ {1, 2, 8} must produce bit-identical figure
// tables, δ-sweep results, and tracking events, and the OnProgress
// sequence must be identical too — one emission per day, in strict day
// order, with the same cumulative event counts (never double-counted by
// the decode-ahead reader).
func TestParallelWorkersMatch(t *testing.T) {
	tr, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := encodeTrace(t, tr, filepath.Join(t.TempDir(), "parallel.trace"))

	run := func(workers int) (*Result, []progressPoint) {
		cfg := parallelTestConfig()
		cfg.Workers = workers
		var pr []progressPoint
		cfg.OnProgress = func(day int32, events int64) {
			pr = append(pr, progressPoint{day, events})
		}
		res, err := RunPlan(context.Background(), src, cfg, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, pr
	}

	base, basePr := run(1)
	for i := 1; i < len(basePr); i++ {
		if basePr[i].Day != basePr[i-1].Day+1 {
			t.Fatalf("progress days not consecutive: %d then %d", basePr[i-1].Day, basePr[i].Day)
		}
		if basePr[i].Events < basePr[i-1].Events {
			t.Fatalf("progress events regressed at day %d", basePr[i].Day)
		}
	}
	for _, workers := range []int{2, 8} {
		res, pr := run(workers)
		compareRuns(t, fmt.Sprintf("workers=%d", workers), base, res)
		if !reflect.DeepEqual(pr, basePr) {
			t.Errorf("workers=%d: progress sequence diverged from sequential", workers)
		}
	}
}

// TestParallelCancelMidDay: a cancellation raised at a day boundary stops
// the run with ctx's error and no Result, at any worker count — the
// parallel day barrier and the prefetch reader both honor it.
func TestParallelCancelMidDay(t *testing.T) {
	tr, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := encodeTrace(t, tr, filepath.Join(t.TempDir(), "cancel.trace"))
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := parallelTestConfig()
		cfg.Workers = workers
		cfg.OnProgress = func(day int32, _ int64) {
			if day == 120 {
				cancel()
			}
		}
		res, err := RunPlan(ctx, src, cfg, nil)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Fatalf("workers=%d: got a Result from a cancelled run", workers)
		}
	}
}

// TestParallelResumeAcrossWorkerCounts pins that Workers is a throughput
// knob outside the checkpoint fingerprint: a mid-trace checkpoint written
// at one worker count resumes at another, bit-identical to the writing
// run.
func TestParallelResumeAcrossWorkerCounts(t *testing.T) {
	tr, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := encodeTrace(t, tr, filepath.Join(t.TempDir(), "xworkers.trace"))
	for _, tc := range []struct{ write, resume int }{{1, 8}, {8, 1}} {
		t.Run(fmt.Sprintf("write%d_resume%d", tc.write, tc.resume), func(t *testing.T) {
			dir := t.TempDir()
			cfg := resumeTestConfig(dir)
			cfg.Workers = tc.write
			base, err := RunPlan(context.Background(), src, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			days := checkpointDays(t, dir)
			if len(days) < 2 {
				t.Fatalf("only %d checkpoints written: %v", len(days), days)
			}
			day := days[len(days)/2] // a mid-trace checkpoint, not the end-of-run one
			one := t.TempDir()
			raw, err := os.ReadFile(filepath.Join(dir, checkpointFileName(day)))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(one, checkpointFileName(day)), raw, 0o644); err != nil {
				t.Fatal(err)
			}
			rcfg := resumeTestConfig(one)
			rcfg.Workers = tc.resume
			rcfg.Resume = true
			res, err := RunPlan(context.Background(), src, rcfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.ResumedFromDay != day {
				t.Fatalf("ResumedFromDay = %d, want %d", res.ResumedFromDay, day)
			}
			compareRuns(t, "cross-worker resume", base, res)
		})
	}
}
