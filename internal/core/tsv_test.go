package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestParseFormat(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Format
		ok   bool
	}{
		{"", FormatTSV, true},
		{"tsv", FormatTSV, true},
		{"JSON", FormatJSON, true},
		{" json ", FormatJSON, true},
		{"xml", "", false},
	} {
		got, err := ParseFormat(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseFormat(%q) = %q, %v; want %q, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	// The extension is what rranalyze joins onto the figure id.
	if FormatTSV.Ext() != ".tsv" || FormatJSON.Ext() != ".json" {
		t.Errorf("Ext() = %q / %q, want dot-prefixed", FormatTSV.Ext(), FormatJSON.Ext())
	}
}

// TestWriteJSON pins the JSON encoding: deterministic bytes, TSV content
// parity (same columns and row count), and non-finite cells as null —
// encoding/json rejects NaN, and null keeps the cell addressable.
func TestWriteJSON(t *testing.T) {
	tab := &Table{
		Figure:  "figX",
		Title:   "test table",
		Columns: []string{"day", "value"},
		Rows:    [][]float64{{1, 0.5}, {2, math.NaN()}, {3, math.Inf(1)}},
		Notes:   map[string]float64{"alpha": 0.7, "bad": math.NaN()},
	}
	var a, b bytes.Buffer
	if err := tab.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := tab.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteJSON is not deterministic")
	}
	var dec struct {
		Figure  string              `json:"figure"`
		Columns []string            `json:"columns"`
		Rows    [][]*float64        `json:"rows"`
		Notes   map[string]*float64 `json:"notes"`
	}
	if err := json.Unmarshal(a.Bytes(), &dec); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if dec.Figure != "figX" || len(dec.Columns) != 2 || len(dec.Rows) != 3 {
		t.Fatalf("decoded shape = %+v", dec)
	}
	if dec.Rows[1][1] != nil || dec.Rows[2][1] != nil {
		t.Error("non-finite cells must encode as null")
	}
	if v := dec.Rows[0][1]; v == nil || *v != 0.5 {
		t.Error("finite cell lost")
	}
	if v, ok := dec.Notes["bad"]; !ok || v != nil {
		t.Error("non-finite note must stay present as null")
	}
	if v := dec.Notes["alpha"]; v == nil || *v != 0.7 {
		t.Error("finite note lost")
	}
}
