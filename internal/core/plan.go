package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/checkpoint"
	"repro/internal/community"
	"repro/internal/engine"
	"repro/internal/evolution"
	"repro/internal/metrics"
	"repro/internal/osnmerge"
	"repro/internal/storage"
	"repro/internal/trace"
)

// StageSpec is one analysis stage's registration with the planner: its
// name, the figure panels it produces, and the stages whose results its
// Finish step reads (the planner pulls dependencies in automatically, so
// requesting fig7a also runs the community pipeline the users stage
// classifies against). The wiring — how the stage subscribes to the shared
// pass, fans out on the worker pool, and harvests its result — is attached
// by the registry in this package; external callers see the descriptive
// fields only, via Registry and StageFor.
type StageSpec struct {
	// Name is the stage's registry key (e.g. "metrics", "sweep").
	Name string
	// Deps names stages that must also run because this stage reads their
	// results at Finish time (community → users/svm).
	Deps []string
	// Figures lists the panel ids this stage produces, in paper order.
	Figures []string

	// subscribe instantiates the stage and subscribes it to the shared
	// engine pass; the one stage that only runs after it (svm) leaves it
	// nil. The δ-sweep subscribes too — it fans per-snapshot detector
	// tasks out on the pool from inside the pass (community.SweepStage).
	subscribe func(rt *planRT, eng *engine.Engine)
	// afterPass submits pool tasks that depend on the shared pass having
	// finished (the SVM evaluation reads the community stage's result).
	afterPass func(ctx context.Context, rt *planRT, pool *engine.Pool)
	// harvest copies the stage's output into the Result after the pool
	// has been joined.
	harvest func(rt *planRT)
	// emitters builds each of the stage's figure tables from a Result.
	emitters map[string]func(*Result) (*Table, error)
}

// planRT carries one pipeline run's stage instances, so dependent specs
// (users, svm) can read their producers' results at Finish time and every
// spec's harvest step can reach its own stage.
type planRT struct {
	cfg  Config
	meta trace.Meta
	res  *Result
	// pool is the run's bounded worker pool: the δ-sweep's per-snapshot
	// detector tasks and the post-pass SVM evaluation fan out on it; run
	// drains it before harvesting.
	pool *engine.Pool

	metrics *metrics.Stage
	evo     *evolution.Stage
	alpha   *evolution.AlphaStage
	comm    *community.Stage
	users   *community.UsersStage
	merge   *osnmerge.Stage
	sweep   *community.SweepStage
}

// stageRegistry lists every stage spec in execution order: subscription
// order on the shared pass (which fixes callback and Finish order) and
// harvest order. Dependencies must precede their dependents.
var stageRegistry = []*StageSpec{
	{
		Name:    metrics.StageName,
		Figures: []string{"fig1a", "fig1b", "fig1c", "fig1d", "fig1e", "fig1f"},
		subscribe: func(rt *planRT, eng *engine.Engine) {
			rt.metrics = metrics.NewStage(metrics.StageOptions{
				MetricsEvery:      rt.cfg.MetricsEvery,
				PathEvery:         rt.cfg.PathEvery,
				PathSources:       rt.cfg.PathSources,
				ClusteringSamples: rt.cfg.ClusteringSamples,
				Seed:              rt.cfg.Seed,
				Workers:           rt.pool.Workers(),
			})
			eng.Subscribe(rt.metrics)
		},
		harvest: func(rt *planRT) {
			rt.res.Growth = rt.metrics.Growth
			rt.res.Metrics = rt.metrics.Snapshots
		},
		emitters: map[string]func(*Result) (*Table, error){
			"fig1a": (*Result).fig1a,
			"fig1b": (*Result).fig1b,
			"fig1c": func(r *Result) (*Table, error) { return r.fig1Metric("fig1c") },
			"fig1d": (*Result).fig1d,
			"fig1e": func(r *Result) (*Table, error) { return r.fig1Metric("fig1e") },
			"fig1f": func(r *Result) (*Table, error) { return r.fig1Metric("fig1f") },
		},
	},
	{
		Name:    evolution.StageName,
		Figures: []string{"fig2a", "fig2b", "fig2c"},
		subscribe: func(rt *planRT, eng *engine.Engine) {
			rt.evo = evolution.NewStage(rt.cfg.Evolution)
			eng.Subscribe(rt.evo)
		},
		harvest: func(rt *planRT) { rt.res.Evolution = rt.evo.Result() },
		emitters: map[string]func(*Result) (*Table, error){
			"fig2a": (*Result).fig2a,
			"fig2b": (*Result).fig2b,
			"fig2c": (*Result).fig2c,
		},
	},
	{
		Name:    evolution.AlphaStageName,
		Figures: []string{"fig3a", "fig3b", "fig3c"},
		subscribe: func(rt *planRT, eng *engine.Engine) {
			rt.alpha = evolution.NewAlphaStage(rt.cfg.Alpha)
			eng.Subscribe(rt.alpha)
		},
		harvest: func(rt *planRT) { rt.res.Alpha = rt.alpha.Result() },
		emitters: map[string]func(*Result) (*Table, error){
			"fig3a": func(r *Result) (*Table, error) { return r.fig3pe("fig3a", true) },
			"fig3b": func(r *Result) (*Table, error) { return r.fig3pe("fig3b", false) },
			"fig3c": (*Result).fig3c,
		},
	},
	{
		Name:    community.StageName,
		Figures: []string{"fig5a", "fig5b", "fig5c", "fig6a", "fig6c"},
		subscribe: func(rt *planRT, eng *engine.Engine) {
			rt.comm = community.NewStage(rt.cfg.Community)
			rt.comm.SetWorkers(rt.pool.Workers())
			eng.Subscribe(rt.comm)
		},
		harvest: func(rt *planRT) { rt.res.Community = rt.comm.Result() },
		emitters: map[string]func(*Result) (*Table, error){
			"fig5a": (*Result).fig5a,
			"fig5b": (*Result).fig5b,
			"fig5c": (*Result).fig5c,
			"fig6a": (*Result).fig6a,
			"fig6c": (*Result).fig6c,
		},
	},
	{
		Name:    community.UsersStageName,
		Deps:    []string{community.StageName},
		Figures: []string{"fig7a", "fig7b", "fig7c"},
		subscribe: func(rt *planRT, eng *engine.Engine) {
			// The community stage subscribes first (registry order), so its
			// Finish has sealed the final snapshot by the time this stage
			// classifies users against it.
			rt.users = community.NewUsersStage(nil, rt.comm.Result)
			eng.Subscribe(rt.users)
		},
		harvest: func(rt *planRT) { rt.res.Users = rt.users.Impact() },
		emitters: map[string]func(*Result) (*Table, error){
			"fig7a": (*Result).fig7a,
			"fig7b": func(r *Result) (*Table, error) { return r.fig7Buckets("fig7b") },
			"fig7c": func(r *Result) (*Table, error) { return r.fig7Buckets("fig7c") },
		},
	},
	{
		Name:    "svm",
		Deps:    []string{community.StageName},
		Figures: []string{"fig6b"},
		afterPass: func(ctx context.Context, rt *planRT, pool *engine.Pool) {
			// The SVM evaluation depends on the community stage's result but
			// not on the other finishers; it joins the concurrent fan-out.
			pool.GoContext(ctx, func() error {
				applyMergePrediction(rt.res, rt.comm.Result(), rt.meta.MergeDay, rt.cfg.Seed)
				return nil
			})
		},
		emitters: map[string]func(*Result) (*Table, error){
			"fig6b": (*Result).fig6b,
		},
	},
	{
		Name:    community.SweepStageName,
		Figures: []string{"fig4a", "fig4b", "fig4c"},
		subscribe: func(rt *planRT, eng *engine.Engine) {
			// The δ-sweep subscribes to the same shared pass as every
			// other stage: the engine maintains the single evolving graph,
			// and at each snapshot day the stage freezes it once and fans
			// the per-δ detectors out on the pool against the frozen view
			// — one replay and one graph for the whole sweep, instead of
			// re-opening the source per δ. Skip*-translated plans reach
			// here with an empty δ list; nothing runs then (matching the
			// historic no-op fan-out).
			if len(rt.cfg.DeltaSweep) == 0 {
				return
			}
			rt.sweep = community.NewSweepStage(rt.cfg.Community, rt.cfg.DeltaSweep, rt.pool)
			eng.Subscribe(rt.sweep)
		},
		harvest: func(rt *planRT) {
			if rt.sweep == nil {
				return
			}
			opt := rt.cfg.Community
			for i, d := range rt.cfg.DeltaSweep {
				dr := rt.sweep.Result(i)
				if dr == nil {
					continue
				}
				run := DeltaRun{Delta: d, Stats: dr.Stats}
				if len(opt.SizeDistDays) > 0 {
					run.SizeDist = dr.SizeDists[opt.SizeDistDays[len(opt.SizeDistDays)-1]]
				}
				rt.res.DeltaSweep = append(rt.res.DeltaSweep, run)
			}
		},
		emitters: map[string]func(*Result) (*Table, error){
			"fig4a": func(r *Result) (*Table, error) { return r.fig4Series("fig4a") },
			"fig4b": func(r *Result) (*Table, error) { return r.fig4Series("fig4b") },
			"fig4c": (*Result).fig4c,
		},
	},
	{
		Name:    osnmerge.StageName,
		Figures: []string{"fig8a", "fig8b", "fig8c", "fig9a", "fig9b", "fig9c"},
		subscribe: func(rt *planRT, eng *engine.Engine) {
			// The §5 analysis only exists for traces with a merge event;
			// without one the stage stays unsubscribed and its figures
			// report ErrStageSkipped.
			if rt.meta.MergeDay < 0 {
				return
			}
			rt.merge = osnmerge.NewStage(rt.meta.MergeDay, rt.cfg.Merge)
			eng.Subscribe(rt.merge)
		},
		harvest: func(rt *planRT) {
			if rt.merge != nil {
				rt.res.Merge = rt.merge.Result()
			}
		},
		emitters: map[string]func(*Result) (*Table, error){
			"fig8a": func(r *Result) (*Table, error) { return r.fig8Active("fig8a") },
			"fig8b": func(r *Result) (*Table, error) { return r.fig8Active("fig8b") },
			"fig8c": (*Result).fig8c,
			"fig9a": func(r *Result) (*Table, error) { return r.fig9Ratios("fig9a") },
			"fig9b": func(r *Result) (*Table, error) { return r.fig9Ratios("fig9b") },
			"fig9c": (*Result).fig9c,
		},
	},
}

// figureEntry resolves one figure id to its producing stage and emitter.
type figureEntry struct {
	stage *StageSpec
	emit  func(*Result) (*Table, error)
}

var (
	specByName     = map[string]*StageSpec{}
	figureRegistry = map[string]*figureEntry{}
)

// init indexes the registry and cross-checks it against AllFigures: every
// listed panel must have exactly one producing stage, every dependency must
// precede its dependent, and no stage may register a figure outside the
// paper-order list. A mismatch is a programmer error in this package.
func init() {
	for _, s := range stageRegistry {
		if specByName[s.Name] != nil {
			panic("core: duplicate stage " + s.Name)
		}
		specByName[s.Name] = s
		for _, d := range s.Deps {
			if specByName[d] == nil {
				panic("core: stage " + s.Name + " depends on " + d + ", which must be registered first")
			}
		}
		for _, id := range s.Figures {
			if figureRegistry[id] != nil {
				panic("core: figure " + id + " registered twice")
			}
			emit := s.emitters[id]
			if emit == nil {
				panic("core: figure " + id + " has no emitter")
			}
			figureRegistry[id] = &figureEntry{stage: s, emit: emit}
		}
		if len(s.emitters) != len(s.Figures) {
			panic("core: stage " + s.Name + " has emitters outside its figure list")
		}
	}
	for _, id := range AllFigures {
		if figureRegistry[id] == nil {
			panic("core: figure " + id + " has no registered stage")
		}
	}
	if len(figureRegistry) != len(AllFigures) {
		panic("core: registry produces figures outside AllFigures")
	}
}

// Registry returns descriptive copies of the registered stage specs in
// execution order — the figure id → stage mapping tooling consumes (e.g.
// `figures -list`).
func Registry() []StageSpec {
	out := make([]StageSpec, len(stageRegistry))
	for i, s := range stageRegistry {
		out[i] = StageSpec{
			Name:    s.Name,
			Deps:    append([]string(nil), s.Deps...),
			Figures: append([]string(nil), s.Figures...),
		}
	}
	return out
}

// FigureUsesDeltaSweep reports whether the panel is produced by the
// δ-sweep stage — i.e. whether a δ-set parameter changes its content.
// The serving layer routes figure requests with a custom δ-set through a
// cold plan execution only when this is true; for every other panel δ is
// inert and the warm snapshot serves the request.
func FigureUsesDeltaSweep(id string) bool {
	e, ok := figureRegistry[id]
	return ok && e.stage.Name == community.SweepStageName
}

// StageFor returns the name of the stage that produces the figure id, or
// ErrUnknownFigure.
func StageFor(id string) (string, error) {
	e, ok := figureRegistry[id]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownFigure, id)
	}
	return e.stage.Name, nil
}

// FigurePlan is a resolved, dependency-closed set of stages — the unit of
// execution of the demand-driven pipeline. Build one with Plan and run it
// with RunPlan.
type FigurePlan struct {
	specs     []*StageSpec // execution (registry) order
	requested []string     // explicitly requested figure ids, if any
}

// ErrNoDeltaSweep is returned at plan time when a fig4 panel is requested
// with an empty Config.DeltaSweep: the sweep stage would run zero passes
// and the requested panel could only ever report ErrStageSkipped.
var ErrNoDeltaSweep = errors.New("core: fig4 panels need a non-empty Config.DeltaSweep")

// Plan resolves the minimal dependency-closed stage set that produces the
// requested figures: each id maps to its producing stage, and stages whose
// Finish reads another stage's result pull that stage in (fig7a runs the
// community pipeline too). Requests that can never be served fail at plan
// time — ErrUnknownFigure for ids outside AllFigures, ErrNoDeltaSweep for
// fig4 panels without configured δ values. With no figure ids the plan
// covers everything the config enables, translating the deprecated Skip*
// toggles (unvalidated, matching their historic best-effort semantics); an
// explicit figure request overrides them.
func Plan(cfg Config, figures ...string) (*FigurePlan, error) {
	if len(figures) == 0 {
		return planFromConfig(cfg), nil
	}
	seen := map[string]bool{}
	var names, requested []string
	for _, id := range figures {
		e, ok := figureRegistry[id]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownFigure, id)
		}
		if e.stage.Name == community.SweepStageName && len(cfg.DeltaSweep) == 0 {
			return nil, fmt.Errorf("%w (requested %q)", ErrNoDeltaSweep, id)
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		requested = append(requested, id)
		names = append(names, e.stage.Name)
	}
	return planOf(names, requested), nil
}

// planFromConfig translates the deprecated Skip* booleans into a plan, so
// the pre-planner entry points (Run, RunSource) keep their exact stage
// gating: skipping "community" also drops the users, svm, and sweep stages
// that historically rode on that toggle.
func planFromConfig(cfg Config) *FigurePlan {
	var names []string
	if !cfg.SkipMetrics {
		names = append(names, metrics.StageName)
	}
	if !cfg.SkipEvolution {
		names = append(names, evolution.StageName, evolution.AlphaStageName)
	}
	if !cfg.SkipCommunity {
		names = append(names, community.StageName, community.UsersStageName, "svm", community.SweepStageName)
	}
	if !cfg.SkipMerge {
		names = append(names, osnmerge.StageName)
	}
	return planOf(names, nil)
}

// planOf closes the named stage set over Deps and orders it by the
// registry's execution order.
func planOf(names, requested []string) *FigurePlan {
	need := map[string]bool{}
	var add func(name string)
	add = func(name string) {
		if need[name] {
			return
		}
		need[name] = true
		for _, d := range specByName[name].Deps {
			add(d)
		}
	}
	for _, n := range names {
		add(n)
	}
	p := &FigurePlan{requested: requested}
	for _, s := range stageRegistry {
		if need[s.Name] {
			p.specs = append(p.specs, s)
		}
	}
	return p
}

// Stages returns the plan's stage names in execution order.
func (p *FigurePlan) Stages() []string {
	out := make([]string, len(p.specs))
	for i, s := range p.specs {
		out[i] = s.Name
	}
	return out
}

// Has reports whether the plan includes the named stage.
func (p *FigurePlan) Has(name string) bool {
	for _, s := range p.specs {
		if s.Name == name {
			return true
		}
	}
	return false
}

// Figures returns the panel ids the plan serves: the explicitly requested
// ids for a figure-driven plan, otherwise every id its stages produce, in
// paper order.
func (p *FigurePlan) Figures() []string {
	if len(p.requested) > 0 {
		return append([]string(nil), p.requested...)
	}
	var out []string
	for _, id := range AllFigures {
		if p.Has(figureRegistry[id].stage.Name) {
			out = append(out, id)
		}
	}
	return out
}

// progressStage adapts Config.OnProgress to a named, checkpointable
// stage: the cumulative event count is externalized so a resumed run's
// progress line continues from the checkpoint's count instead of zero.
type progressStage struct {
	events int64
	fn     func(day int32, events int64)
}

func (p *progressStage) Name() string                          { return "progress" }
func (p *progressStage) OnEvent(_ *trace.State, _ trace.Event) { p.events++ }
func (p *progressStage) OnDayEnd(_ *trace.State, day int32)    { p.fn(day, p.events) }
func (p *progressStage) Finish(_ *trace.State) error           { return nil }

// SaveState implements engine.Checkpointer.
func (p *progressStage) SaveState(w io.Writer) error {
	e := checkpoint.NewEncoder(w)
	e.I64(p.events)
	return e.Flush()
}

// LoadState implements engine.Checkpointer.
func (p *progressStage) LoadState(r io.Reader) error {
	d := checkpoint.NewDecoder(r)
	p.events = d.I64()
	return d.Err()
}

// planExec is one instantiation of a FigurePlan over a concrete trace:
// the engine with every plan stage subscribed, plus the runtime the specs
// share. Split from run so tests can assert the subscription set.
type planExec struct {
	plan *FigurePlan
	rt   *planRT
	eng  *engine.Engine

	// backend, ckptHash, and ckptNames identify where checkpoints live
	// and which are compatible, when checkpointing is armed
	// (armCheckpoints).
	backend   storage.Backend
	ckptHash  uint64
	ckptNames []string

	// parent summarizes the last checkpoint this run wrote or restored —
	// what the next delta checkpoint is diffed against (nil until the
	// first full is written; writes fall back to full without it).
	parent *ckptParent

	// resumeState/resumeDay carry a restored checkpoint into run: the
	// shared state at the end of resumeDay, with every subscribed stage
	// already restored via LoadState.
	resumeState *trace.State
	resumeDay   int32
}

// instantiate builds the run: defaults the config, constructs each stage
// from it (the δ-sweep gets the run's worker pool for its per-snapshot
// fan-out), and subscribes the shared-pass stages in registry order.
func (p *FigurePlan) instantiate(cfg Config, meta trace.Meta) *planExec {
	cfg = cfg.withDefaults()
	// One pool (and one resolved worker count) serves the whole run: the
	// sweep/SVM fan-out, the engine's per-day stage overlap, and the
	// kernel fan-outs all size themselves by it.
	rt := &planRT{cfg: cfg, meta: meta, res: &Result{Meta: meta, ResumedFromDay: -1}, pool: engine.NewPool(cfg.Workers)}
	eng := engine.New()
	eng.Hint(int(meta.Nodes), int(meta.Edges))
	eng.SetWorkers(rt.pool.Workers())
	for _, s := range p.specs {
		if s.subscribe != nil {
			s.subscribe(rt, eng)
		}
	}
	// The progress hook observes the shared pass, so it only subscribes
	// when some analysis stage gives that pass a reason to run (with an
	// empty δ list even a sweep-only plan subscribes nothing). By day-end
	// every event has been dispatched to all subscribers, so position in
	// the subscription order doesn't change the reported counts. The
	// stage is deliberately NOT Overlappable: it stays inline on the
	// replay goroutine, counting each event exactly once as it is
	// applied (never the prefetch reader's decode-ahead), and its
	// OnDayEnd fires after the parallel day barrier — so OnProgress is
	// emitted once per day, in strict day order, at any worker count.
	if cfg.OnProgress != nil && eng.Stages() > 0 {
		eng.Subscribe(&progressStage{fn: cfg.OnProgress})
	}
	x := &planExec{plan: p, rt: rt, eng: eng}
	x.armCheckpoints()
	return x
}

// run executes the instantiated plan: the engine runs the shared pass
// with ctx checked at day boundaries (the δ-sweep's per-snapshot detector
// tasks fan out on the pool from inside that pass), Finish-dependent
// tasks join the pool after it, and harvest copies stage outputs into the
// Result once the pool is drained. On any error — including ctx
// cancellation — no Result is returned.
func (x *planExec) run(ctx context.Context, src trace.Source) (*Result, error) {
	// An already-cancelled context must never yield a success Result, even
	// when the plan has no shared-pass stages or pool tasks to notice it.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	pool := x.rt.pool
	var err error
	if x.eng.Stages() > 0 {
		if x.resumeState != nil {
			x.rt.res.ResumedFromDay = x.resumeDay
			_, err = x.eng.ResumeSourceContext(ctx, src, x.resumeState, x.resumeDay)
		} else {
			_, err = x.eng.RunSourceContext(ctx, src)
		}
	}
	if err == nil {
		for _, s := range x.plan.specs {
			if s.afterPass != nil {
				s.afterPass(ctx, x.rt, pool)
			}
		}
	}
	// Always drain the pool, even on engine error, so no goroutine
	// outlives the call.
	if werr := pool.Wait(); err == nil && werr != nil {
		return nil, werr
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	for _, s := range x.plan.specs {
		if s.harvest != nil {
			s.harvest(x.rt)
		}
	}
	res := x.rt.res
	// Demand-driven runs pre-populate the keyed table store with the
	// requested panels; skipped-stage errors stay lazy so Figure reports
	// them per lookup.
	for _, id := range x.plan.requested {
		if tab, err := figureRegistry[id].emit(res); err == nil {
			res.putTable(id, tab)
		}
	}
	return res, nil
}

// runPlan is the execution entry shared by RunPlan and the deprecated
// Run/RunSource shims. With Config.Resume set it restores the latest
// compatible checkpoint — latest checkpoint day not past the trace's last
// day, exact stage-set and fingerprint match — and replays only the days
// after it; any restore problem discards the instantiation and falls back
// to a from-zero run, so resume is never worse than not resuming.
func runPlan(ctx context.Context, src trace.Source, meta trace.Meta, cfg Config, plan *FigurePlan) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	x := plan.instantiate(cfg, meta)
	if cfg.Resume && x.backend != nil && x.eng.Stages() > 0 {
		// Restore the newest compatible checkpoint chain; tolerant of
		// another process rotating the backend mid-scan (see
		// resolveResume).
		x = resolveResume(plan, x, src, meta, cfg)
	}
	return x.run(ctx, src)
}

// RunPlan executes a resolved plan over a re-openable event source on the
// streaming engine: every plan stage — the δ-sweep included — subscribes
// to one shared replay, with the sweep's per-snapshot detector tasks and
// the post-pass SVM evaluation fanned out on the bounded worker pool. ctx
// cancels the whole run at the next day boundary (in-flight snapshot
// barriers included) — RunPlan then returns ctx's error and no Result. A
// nil plan runs everything the config enables (the Skip* translation).
func RunPlan(ctx context.Context, src trace.MetaSource, cfg Config, plan *FigurePlan) (*Result, error) {
	meta := src.Meta()
	if meta.Nodes == 0 && meta.Edges == 0 {
		return nil, ErrEmptyTrace
	}
	if plan == nil {
		plan = planFromConfig(cfg)
	}
	return runPlan(ctx, src, meta, cfg, plan)
}

// RunFigures plans and runs the minimal stage set for the requested figure
// panels — the demand-driven entry point: asking for one panel pays for
// exactly the stages (and replay passes) that panel needs. The returned
// Result serves Figure(id) for each requested id from the keyed store.
func RunFigures(ctx context.Context, src trace.MetaSource, cfg Config, figures ...string) (*Result, error) {
	plan, err := Plan(cfg, figures...)
	if err != nil {
		return nil, err
	}
	return RunPlan(ctx, src, cfg, plan)
}
