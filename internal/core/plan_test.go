package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/gen"
	"repro/internal/trace"
)

// planTrace generates the shared small merge trace for planner tests.
func planTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestPlanFigureOnly is the demand-driven headline: requesting only fig1a
// subscribes exactly the metrics stage and costs exactly one replay pass.
func TestPlanFigureOnly(t *testing.T) {
	tr := planTrace(t)
	cfg := DefaultConfig()

	plan, err := Plan(cfg, "fig1a")
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Stages(); len(got) != 1 || got[0] != "metrics" {
		t.Fatalf("stages = %v, want [metrics]", got)
	}
	if x := plan.instantiate(cfg, tr.Meta); x.eng.Stages() != 1 {
		t.Fatalf("engine stages = %d, want exactly 1 (metrics)", x.eng.Stages())
	}

	prev := trace.OnReplayPass
	var passes atomic.Int64
	trace.OnReplayPass = func() { passes.Add(1) }
	res, err := RunPlan(context.Background(), tr.Source(), cfg, plan)
	trace.OnReplayPass = prev
	if err != nil {
		t.Fatal(err)
	}
	if got := passes.Load(); got != 1 {
		t.Fatalf("replay passes = %d, want exactly 1", got)
	}

	// The requested panel is pre-emitted into the keyed store; panels of
	// stages the plan never ran report ErrStageSkipped.
	if res.tables["fig1a"] == nil {
		t.Fatal("fig1a missing from the keyed table store")
	}
	tab, err := res.Figure("fig1a")
	if err != nil || len(tab.Rows) == 0 {
		t.Fatalf("fig1a: tab=%v err=%v", tab, err)
	}
	for _, id := range []string{"fig2a", "fig5b", "fig8a"} {
		if _, err := res.Figure(id); !errors.Is(err, ErrStageSkipped) {
			t.Fatalf("figure %s: err = %v, want ErrStageSkipped", id, err)
		}
	}
}

// TestPlanDependencyClosure asserts Finish-time dependencies are pulled in:
// the users stage (fig7a) and the SVM evaluation (fig6b) both require the
// community pipeline.
func TestPlanDependencyClosure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeltaSweep = []float64{0.04} // fig4a plans the sweep stage
	cases := []struct {
		fig  string
		want []string
	}{
		{"fig7a", []string{"community", "users"}},
		{"fig6b", []string{"community", "svm"}},
		{"fig4a", []string{"sweep"}},
		{"fig9c", []string{"osnmerge"}},
	}
	for _, c := range cases {
		plan, err := Plan(cfg, c.fig)
		if err != nil {
			t.Fatalf("%s: %v", c.fig, err)
		}
		got := plan.Stages()
		if len(got) != len(c.want) {
			t.Fatalf("%s: stages = %v, want %v", c.fig, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s: stages = %v, want %v", c.fig, got, c.want)
			}
		}
	}
}

// TestPlanUnknownFigure asserts bad ids fail at plan time, not run time.
func TestPlanUnknownFigure(t *testing.T) {
	if _, err := Plan(DefaultConfig(), "fig1a", "fig99z"); !errors.Is(err, ErrUnknownFigure) {
		t.Fatalf("err = %v, want ErrUnknownFigure", err)
	}
	if _, err := RunFigures(context.Background(), planTrace(t).Source(), DefaultConfig(), "nope"); !errors.Is(err, ErrUnknownFigure) {
		t.Fatalf("err = %v, want ErrUnknownFigure", err)
	}
}

// TestPlanNoDeltaSweep asserts a fig4 request against a δ-less config is
// rejected at plan time instead of silently producing a skipped panel.
func TestPlanNoDeltaSweep(t *testing.T) {
	if _, err := Plan(DefaultConfig(), "fig4a"); !errors.Is(err, ErrNoDeltaSweep) {
		t.Fatalf("err = %v, want ErrNoDeltaSweep", err)
	}
	cfg := DefaultConfig()
	cfg.DeltaSweep = []float64{0.04}
	if _, err := Plan(cfg, "fig4a"); err != nil {
		t.Fatalf("err = %v with a configured sweep", err)
	}
}

// TestPlanFromConfig asserts the deprecated Skip* shims translate into the
// historic stage gating: skipping community drops users, svm, and sweep.
func TestPlanFromConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipCommunity = true
	cfg.SkipMerge = true
	plan, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"metrics", "evolution", "alpha"}
	got := plan.Stages()
	if len(got) != len(want) {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stages = %v, want %v", got, want)
		}
	}
}

// TestRunPlanCancel asserts a mid-replay cancellation surfaces
// context.Canceled promptly — the pass stops at the next day boundary —
// and returns no partial Result.
func TestRunPlanCancel(t *testing.T) {
	tr := planTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const cancelDay = 20
	var lastDay atomic.Int32
	cfg := DefaultConfig()
	cfg.OnProgress = func(day int32, events int64) {
		lastDay.Store(day)
		if day == cancelDay {
			cancel()
		}
	}
	res, err := RunFigures(ctx, tr.Source(), cfg, "fig1a")
	if res != nil {
		t.Fatalf("got partial result %+v, want nil", res.Meta)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := lastDay.Load(); got != cancelDay {
		t.Fatalf("replay continued to day %d after cancellation on day %d", got, cancelDay)
	}
}

// TestRunPlanCancelSweep asserts cancellation reaches the δ-sweep's pool
// fan-out mid-replay: cancelling as the first sweep pass starts aborts it
// at a day boundary without producing a result.
func TestRunPlanCancelSweep(t *testing.T) {
	tr := planTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	prev := trace.OnReplayPass
	trace.OnReplayPass = func() { cancel() }
	cfg := DefaultConfig()
	cfg.DeltaSweep = []float64{0.01}
	res, err := RunFigures(ctx, tr.Source(), cfg, "fig4a")
	trace.OnReplayPass = prev
	if res != nil {
		t.Fatal("got result from a cancelled sweep run")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunPlanCancelledBeforeStart asserts an already-cancelled context
// never yields a Result, even for plans whose stages end up doing no
// shared-pass or pool work at all.
func TestRunPlanCancelledBeforeStart(t *testing.T) {
	tr := planTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunFigures(ctx, tr.Source(), DefaultConfig(), "fig1a")
	if res != nil {
		t.Fatal("got result from a pre-cancelled run")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStageFor asserts the registry's figure -> stage mapping covers every
// panel and rejects unknown ids.
func TestStageFor(t *testing.T) {
	want := map[string]string{
		"fig1a": "metrics",
		"fig2b": "evolution",
		"fig3c": "alpha",
		"fig4b": "sweep",
		"fig5a": "community",
		"fig6b": "svm",
		"fig7c": "users",
		"fig8b": "osnmerge",
	}
	for id, stage := range want {
		got, err := StageFor(id)
		if err != nil || got != stage {
			t.Fatalf("StageFor(%s) = %q, %v; want %q", id, got, err, stage)
		}
	}
	for _, id := range AllFigures {
		if _, err := StageFor(id); err != nil {
			t.Fatalf("StageFor(%s): %v", id, err)
		}
	}
	if _, err := StageFor("fig0x"); !errors.Is(err, ErrUnknownFigure) {
		t.Fatalf("err = %v, want ErrUnknownFigure", err)
	}
}

// TestRegistryDescriptive asserts Registry returns the descriptive view in
// execution order with dependencies intact.
func TestRegistryDescriptive(t *testing.T) {
	specs := Registry()
	if len(specs) != 8 {
		t.Fatalf("registry has %d specs, want 8", len(specs))
	}
	figures := 0
	byName := map[string]StageSpec{}
	for _, s := range specs {
		byName[s.Name] = s
		figures += len(s.Figures)
	}
	if figures != len(AllFigures) {
		t.Fatalf("registry covers %d figures, want %d", figures, len(AllFigures))
	}
	if deps := byName["users"].Deps; len(deps) != 1 || deps[0] != "community" {
		t.Fatalf("users deps = %v, want [community]", deps)
	}
	if deps := byName["svm"].Deps; len(deps) != 1 || deps[0] != "community" {
		t.Fatalf("svm deps = %v, want [community]", deps)
	}
}
