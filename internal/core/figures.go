package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/osnmerge"
	"repro/internal/stats"
	"repro/internal/svm"
)

// Table is one figure panel's data: the rows a plotting tool would consume
// to regenerate the paper's plot.
type Table struct {
	Figure  string
	Title   string
	Columns []string
	Rows    [][]float64
	// Notes carries scalar summary values (fitted exponents, MSEs,
	// overall fractions) keyed by name.
	Notes map[string]float64
}

// Equal reports whether two tables carry identical data: same identity,
// columns, rows, and notes, with float cells compared by bit pattern so
// NaN notes (an unfittable exponent) compare equal to themselves. The
// serving layer uses it at publish time to detect panels a day advance
// did not change.
func (t *Table) Equal(o *Table) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Figure != o.Figure || t.Title != o.Title ||
		len(t.Columns) != len(o.Columns) || len(t.Rows) != len(o.Rows) ||
		len(t.Notes) != len(o.Notes) {
		return false
	}
	for i := range t.Columns {
		if t.Columns[i] != o.Columns[i] {
			return false
		}
	}
	for i := range t.Rows {
		if len(t.Rows[i]) != len(o.Rows[i]) {
			return false
		}
		for j := range t.Rows[i] {
			if math.Float64bits(t.Rows[i][j]) != math.Float64bits(o.Rows[i][j]) {
				return false
			}
		}
	}
	for k, v := range t.Notes {
		ov, ok := o.Notes[k]
		if !ok || math.Float64bits(v) != math.Float64bits(ov) {
			return false
		}
	}
	return true
}

// AllFigures lists every reproducible panel id, in paper order.
var AllFigures = []string{
	"fig1a", "fig1b", "fig1c", "fig1d", "fig1e", "fig1f",
	"fig2a", "fig2b", "fig2c",
	"fig3a", "fig3b", "fig3c",
	"fig4a", "fig4b", "fig4c",
	"fig5a", "fig5b", "fig5c",
	"fig6a", "fig6b", "fig6c",
	"fig7a", "fig7b", "fig7c",
	"fig8a", "fig8b", "fig8c",
	"fig9a", "fig9b", "fig9c",
}

// ErrUnknownFigure is returned for ids outside AllFigures.
var ErrUnknownFigure = errors.New("core: unknown figure id")

// ErrStageSkipped is returned when the figure's pipeline stage did not run.
var ErrStageSkipped = errors.New("core: required stage skipped or empty")

func svmOptions(seed int64) svm.Options {
	return svm.Options{Seed: seed, ClassWeighted: true}
}

// Figure extracts one panel's table from a pipeline result: a registry
// lookup resolves the id to its stage's emitter (ErrUnknownFigure for ids
// outside AllFigures), and panels pre-emitted by a demand-driven run are
// served from the keyed store without re-emitting. Emitters report
// ErrStageSkipped when their stage did not run or produced nothing.
//
// On a sealed Result (see Seal) every lookup — tables and skip errors
// alike — is a read of the pre-emitted store, so any number of goroutines
// may call Figure concurrently.
func (r *Result) Figure(id string) (*Table, error) {
	e, ok := figureRegistry[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFigure, id)
	}
	if tab, ok := r.tables[id]; ok {
		return tab, nil
	}
	if err, ok := r.tableErrs[id]; ok {
		return nil, err
	}
	return e.emit(r)
}

// Seal pre-emits every panel into the keyed store — tables for panels the
// run's stages produced, the emit error (typically ErrStageSkipped) for
// the rest — and marks the Result immutable. After Seal, Figure never
// runs an emitter: it is a pure lookup in maps that are no longer
// written, so a sealed Result is safe for unsynchronized concurrent
// readers. This is the serving plane's snapshot contract (DESIGN.md §8):
// rrserved seals a Result before publishing it, and a refresh pass builds
// an entirely new Result rather than touching a published one.
//
// Seal itself must not race with other access: call it from the goroutine
// that built the Result, before sharing it.
func (r *Result) Seal() {
	for _, id := range AllFigures {
		if _, ok := r.tables[id]; ok {
			continue
		}
		tab, err := figureRegistry[id].emit(r)
		if err != nil {
			if r.tableErrs == nil {
				r.tableErrs = make(map[string]error)
			}
			r.tableErrs[id] = err
		} else {
			r.putTable(id, tab)
		}
	}
}

// Figures returns the panel ids the result can serve — those whose table
// is in the keyed store — in paper order. Before Seal only a demand-driven
// run's requested panels are stored; after Seal the list is exactly the
// panels the run's stages produced.
func (r *Result) Figures() []string {
	out := make([]string, 0, len(r.tables))
	for _, id := range AllFigures {
		if _, ok := r.tables[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// putTable stores one emitted panel in the keyed store.
func (r *Result) putTable(id string, tab *Table) {
	if r.tables == nil {
		r.tables = make(map[string]*Table)
	}
	r.tables[id] = tab
}

func (r *Result) fig1a() (*Table, error) {
	if len(r.Growth) == 0 {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig1a", Title: "Absolute network growth (nodes/edges added per day)",
		Columns: []string{"day", "nodes_added", "edges_added"}}
	for _, g := range r.Growth {
		t.Rows = append(t.Rows, []float64{float64(g.Day), float64(g.NodesAdded), float64(g.EdgesAdded)})
	}
	return t, nil
}

func (r *Result) fig1b() (*Table, error) {
	if len(r.Growth) == 0 {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig1b", Title: "Relative network growth (% of previous day's size)",
		Columns: []string{"day", "node_growth_pct", "edge_growth_pct"}}
	for _, g := range r.Growth {
		t.Rows = append(t.Rows, []float64{float64(g.Day), g.NodeGrowthPct, g.EdgeGrowthPct})
	}
	return t, nil
}

func (r *Result) fig1Metric(id string) (*Table, error) {
	if len(r.Metrics) == 0 {
		return nil, ErrStageSkipped
	}
	var title, col string
	t := &Table{Figure: id}
	switch id {
	case "fig1c":
		title, col = "Average node degree over time", "avg_degree"
	case "fig1e":
		title, col = "Average clustering coefficient over time", "clustering"
	case "fig1f":
		title, col = "Assortativity over time", "assortativity"
	}
	t.Title = title
	t.Columns = []string{"day", col}
	for _, m := range r.Metrics {
		v := 0.0
		switch id {
		case "fig1c":
			v = m.AvgDegree
		case "fig1e":
			v = m.Clustering
		case "fig1f":
			v = m.Assort
		}
		t.Rows = append(t.Rows, []float64{float64(m.Day), v})
	}
	return t, nil
}

func (r *Result) fig1d() (*Table, error) {
	if len(r.Metrics) == 0 {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig1d", Title: "Sampled average path length over time",
		Columns: []string{"day", "avg_path_length"}}
	for _, m := range r.Metrics {
		if m.PathLength > 0 {
			t.Rows = append(t.Rows, []float64{float64(m.Day), m.PathLength})
		}
	}
	if len(t.Rows) == 0 {
		return nil, ErrStageSkipped
	}
	return t, nil
}

func (r *Result) fig2a() (*Table, error) {
	if r.Evolution == nil {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig2a", Title: "PDF of edge inter-arrival times by node-age bucket",
		Columns: []string{"bucket", "gap_days", "pdf"}, Notes: map[string]float64{}}
	for bi, b := range r.Evolution.InterArrival {
		t.Notes[fmt.Sprintf("gamma_bucket%d", bi)] = b.Gamma
		for _, p := range b.PDF {
			t.Rows = append(t.Rows, []float64{float64(bi), p.Center, p.Density})
		}
	}
	return t, nil
}

func (r *Result) fig2b() (*Table, error) {
	if r.Evolution == nil {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig2b", Title: "Edge creation vs normalized user lifetime",
		Columns: []string{"normalized_lifetime", "edge_fraction"},
		Notes:   map[string]float64{"nodes_analyzed": float64(r.Evolution.NodesAnalyzed)}}
	n := len(r.Evolution.LifetimeHist)
	for i, f := range r.Evolution.LifetimeHist {
		center := (float64(i) + 0.5) / float64(n)
		t.Rows = append(t.Rows, []float64{center, f})
	}
	return t, nil
}

func (r *Result) fig2c() (*Table, error) {
	if r.Evolution == nil {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig2c", Title: "Share of daily edges by minimum endpoint age",
		Columns: []string{"day", "min_age_le_1d", "min_age_le_10d", "min_age_le_30d"}}
	for _, d := range r.Evolution.MinAge {
		row := []float64{float64(d.Day)}
		for _, f := range d.Frac {
			row = append(row, f)
		}
		for len(row) < 4 {
			row = append(row, math.NaN())
		}
		t.Rows = append(t.Rows, row[:4])
	}
	return t, nil
}

func (r *Result) fig3pe(id string, higher bool) (*Table, error) {
	if r.Alpha == nil {
		return nil, ErrStageSkipped
	}
	pts := r.Alpha.PERandom
	alpha, mse := r.Alpha.FinalAlphaRandom, r.Alpha.FinalMSERandom
	title := "p_e(d) with random destination selection"
	if higher {
		pts = r.Alpha.PEHigher
		alpha, mse = r.Alpha.FinalAlphaHigher, r.Alpha.FinalMSEHigher
		title = "p_e(d) with higher-degree destination selection"
	}
	t := &Table{Figure: id, Title: title,
		Columns: []string{"degree", "pe", "fit"},
		Notes:   map[string]float64{"alpha": alpha, "mse": mse}}
	// Reconstruct the fitted curve's constant from alpha and the points.
	var c float64
	var n int
	for _, p := range pts {
		if p.Degree > 0 && p.PE > 0 {
			c += math.Log(p.PE) - alpha*math.Log(float64(p.Degree))
			n++
		}
	}
	if n > 0 {
		c = math.Exp(c / float64(n))
	}
	for _, p := range pts {
		if p.Degree == 0 {
			continue
		}
		fit := c * math.Pow(float64(p.Degree), alpha)
		t.Rows = append(t.Rows, []float64{float64(p.Degree), p.PE, fit})
	}
	return t, nil
}

func (r *Result) fig3c() (*Table, error) {
	if r.Alpha == nil || len(r.Alpha.Samples) == 0 {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig3c", Title: "Evolution of the PA strength α(t)",
		Columns: []string{"edges", "alpha_higher", "alpha_random", "poly_higher", "poly_random"},
		Notes:   map[string]float64{}}
	for _, s := range r.Alpha.Samples {
		ph, pr := math.NaN(), math.NaN()
		if r.Alpha.PolyHigher != nil {
			ph = stats.PolyEval(r.Alpha.PolyHigher, float64(s.Edges)/r.Alpha.PolyScale)
		}
		if r.Alpha.PolyRandom != nil {
			pr = stats.PolyEval(r.Alpha.PolyRandom, float64(s.Edges)/r.Alpha.PolyScale)
		}
		t.Rows = append(t.Rows, []float64{float64(s.Edges), s.AlphaHigher, s.AlphaRandom, ph, pr})
	}
	first, last := r.Alpha.Samples[0], r.Alpha.Samples[len(r.Alpha.Samples)-1]
	t.Notes["alpha_higher_first"] = first.AlphaHigher
	t.Notes["alpha_higher_last"] = last.AlphaHigher
	t.Notes["alpha_random_first"] = first.AlphaRandom
	t.Notes["alpha_random_last"] = last.AlphaRandom
	t.Notes["gap_last"] = last.AlphaHigher - last.AlphaRandom
	return t, nil
}

func (r *Result) fig4Series(id string) (*Table, error) {
	if len(r.DeltaSweep) == 0 {
		return nil, ErrStageSkipped
	}
	title := "Modularity over time by δ"
	if id == "fig4b" {
		title = "Average community similarity over time by δ"
	}
	t := &Table{Figure: id, Title: title, Columns: []string{"delta", "day", "value"}}
	for _, run := range r.DeltaSweep {
		for _, s := range run.Stats {
			v := s.Modularity
			if id == "fig4b" {
				v = s.AvgSimilarity
			}
			t.Rows = append(t.Rows, []float64{run.Delta, float64(s.Day), v})
		}
	}
	return t, nil
}

func (r *Result) fig4c() (*Table, error) {
	if len(r.DeltaSweep) == 0 {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig4c", Title: "Community size distribution by δ at the sweep day",
		Columns: []string{"delta", "size", "count"}}
	for _, run := range r.DeltaSweep {
		if len(run.SizeDist) == 0 {
			continue
		}
		for size, count := range countSizes(run.SizeDist) {
			t.Rows = append(t.Rows, []float64{run.Delta, float64(size), float64(count)})
		}
	}
	sortRows(t)
	if len(t.Rows) == 0 {
		return nil, ErrStageSkipped
	}
	return t, nil
}

func countSizes(sizes []int) map[int]int {
	m := map[int]int{}
	for _, s := range sizes {
		m[s]++
	}
	return m
}

func sortRows(t *Table) {
	sort.Slice(t.Rows, func(i, j int) bool {
		a, b := t.Rows[i], t.Rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

func (r *Result) fig5a() (*Table, error) {
	if r.Community == nil || len(r.Community.SizeDists) == 0 {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig5a", Title: "Community size distribution at selected days",
		Columns: []string{"day", "size", "count"}}
	for day, sizes := range r.Community.SizeDists {
		for size, count := range countSizes(sizes) {
			t.Rows = append(t.Rows, []float64{float64(day), float64(size), float64(count)})
		}
	}
	sortRows(t)
	return t, nil
}

func (r *Result) fig5b() (*Table, error) {
	if r.Community == nil {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig5b", Title: "Share of nodes covered by the top-5 communities",
		Columns: []string{"day", "top1", "top2", "top3", "top4", "top5", "top5_total"}}
	for _, s := range r.Community.Stats {
		row := []float64{float64(s.Day)}
		for _, c := range s.TopCoverage {
			row = append(row, c)
		}
		row = append(row, s.Top5Coverage)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func (r *Result) fig5c() (*Table, error) {
	if r.Community == nil {
		return nil, ErrStageSkipped
	}
	ls := r.Community.Lifetimes()
	if len(ls) == 0 {
		return nil, ErrStageSkipped
	}
	cdf := stats.NewCDF(ls)
	xs, ps := cdf.Points(200)
	t := &Table{Figure: "fig5c", Title: "CDF of community lifetime",
		Columns: []string{"lifetime_days", "cdf"},
		Notes:   map[string]float64{"communities": float64(len(ls))}}
	for i := range xs {
		t.Rows = append(t.Rows, []float64{xs[i], ps[i]})
	}
	return t, nil
}

func (r *Result) fig6a() (*Table, error) {
	if r.Community == nil {
		return nil, ErrStageSkipped
	}
	mr, sr := r.Community.SizeRatios()
	if len(mr) == 0 && len(sr) == 0 {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig6a", Title: "CDF of size ratio of the two largest communities in merges vs splits",
		Columns: []string{"kind", "ratio", "cdf"},
		Notes: map[string]float64{
			"merge_events": float64(len(mr)),
			"split_events": float64(len(sr)),
		}}
	emit := func(kind float64, ratios []float64) {
		for i, x := range ratios {
			t.Rows = append(t.Rows, []float64{kind, x, float64(i+1) / float64(len(ratios))})
		}
	}
	emit(0, mr) // 0 = merge
	emit(1, sr) // 1 = split
	return t, nil
}

func (r *Result) fig6b() (*Table, error) {
	if len(r.MergeBins) == 0 {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig6b", Title: "Merge-prediction accuracy vs community age",
		Columns: []string{"age_lo", "age_hi", "pos_accuracy", "neg_accuracy", "n"},
		Notes: map[string]float64{
			"overall_pos": r.MergeOverall.PosAccuracy,
			"overall_neg": r.MergeOverall.NegAccuracy,
			"overall_acc": r.MergeOverall.Accuracy,
		}}
	for _, b := range r.MergeBins {
		t.Rows = append(t.Rows, []float64{float64(b.AgeLo), float64(b.AgeHi), b.PosAccuracy, b.NegAccuracy, float64(b.N)})
	}
	return t, nil
}

func (r *Result) fig6c() (*Table, error) {
	if r.Community == nil {
		return nil, ErrStageSkipped
	}
	ties, frac := r.Community.StrongestTies()
	if len(ties) == 0 {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig6c", Title: "Merges choosing the strongest-tie destination over time",
		Columns: []string{"day", "strongest_tie"},
		Notes:   map[string]float64{"strongest_tie_fraction": frac}}
	for _, e := range ties {
		v := 0.0
		if e.StrongestTie {
			v = 1
		}
		t.Rows = append(t.Rows, []float64{float64(e.Day), v})
	}
	return t, nil
}

func (r *Result) fig7a() (*Table, error) {
	if r.Users == nil {
		return nil, ErrStageSkipped
	}
	comm := stats.NewCDF(r.Users.CommunityGaps)
	non := stats.NewCDF(r.Users.NonCommunityGaps)
	if comm.N() == 0 && non.N() == 0 {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig7a", Title: "Edge inter-arrival CDF: community vs non-community users",
		Columns: []string{"series", "gap_days", "cdf"},
		Notes: map[string]float64{
			"community_gaps":     float64(comm.N()),
			"non_community_gaps": float64(non.N()),
		}}
	emit := func(kind float64, c *stats.CDF) {
		xs, ps := c.Points(200)
		for i := range xs {
			t.Rows = append(t.Rows, []float64{kind, xs[i], ps[i]})
		}
	}
	emit(0, comm) // 0 = community users
	emit(1, non)  // 1 = non-community users
	return t, nil
}

func (r *Result) fig7Buckets(id string) (*Table, error) {
	if r.Users == nil {
		return nil, ErrStageSkipped
	}
	src := r.Users.LifetimesBySize
	title := "User lifetime CDF by community size"
	xcol := "lifetime_days"
	if id == "fig7c" {
		src = r.Users.InRatioBySize
		title = "In-degree-ratio CDF by community size"
		xcol = "in_degree_ratio"
	}
	if len(src) == 0 {
		return nil, ErrStageSkipped
	}
	// Stable bucket order: non-community first, then by name.
	names := make([]string, 0, len(src))
	for k := range src {
		names = append(names, k)
	}
	sort.Strings(names)
	t := &Table{Figure: id, Title: title,
		Columns: []string{"bucket", xcol, "cdf"},
		Notes:   map[string]float64{}}
	for bi, name := range names {
		t.Notes[fmt.Sprintf("bucket%d_%s_n", bi, name)] = float64(len(src[name]))
		c := stats.NewCDF(src[name])
		xs, ps := c.Points(120)
		for i := range xs {
			t.Rows = append(t.Rows, []float64{float64(bi), xs[i], ps[i]})
		}
	}
	return t, nil
}

func (r *Result) fig8Active(id string) (*Table, error) {
	if r.Merge == nil {
		return nil, ErrStageSkipped
	}
	series := r.Merge.ActiveXiaonei
	title := "Active Xiaonei users after the merge"
	inactive := r.Merge.InactiveAtMergeXiaonei
	if id == "fig8b" {
		series = r.Merge.ActiveFiveQ
		title = "Active 5Q users after the merge"
		inactive = r.Merge.InactiveAtMergeFiveQ
	}
	if len(series) == 0 {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: id, Title: title,
		Columns: []string{"days_after_merge", "all_pct", "new_pct", "internal_pct", "external_pct"},
		Notes: map[string]float64{
			"inactive_at_merge":  inactive,
			"activity_threshold": float64(r.Merge.ActivityThreshold),
		}}
	for _, d := range series {
		t.Rows = append(t.Rows, []float64{float64(d.DaysAfter), d.All, d.New, d.Internal, d.External})
	}
	return t, nil
}

func (r *Result) fig8c() (*Table, error) {
	if r.Merge == nil || len(r.Merge.EdgesPerDay) == 0 {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig8c", Title: "Edges created per day after the merge, by type",
		Columns: []string{"days_after_merge", "new", "internal", "external"}}
	for _, d := range r.Merge.EdgesPerDay {
		t.Rows = append(t.Rows, []float64{float64(d.Day), float64(d.NewUsers), float64(d.Internal), float64(d.External)})
	}
	return t, nil
}

func (r *Result) fig9Ratios(id string) (*Table, error) {
	if r.Merge == nil {
		return nil, ErrStageSkipped
	}
	pick := func(d osnmerge.RatioDay) (float64, bool) { return d.IntOverExt, d.HasIntExt }
	title := "Ratio of internal to external edges per day"
	if id == "fig9b" {
		pick = func(d osnmerge.RatioDay) (float64, bool) { return d.NewOverExt, d.HasNewExt }
		title = "Ratio of new to external edges per day"
	}
	t := &Table{Figure: id, Title: title,
		Columns: []string{"days_after_merge", "xiaonei", "fiveq", "both"}}
	n := len(r.Merge.RatiosBoth)
	for i := 0; i < n; i++ {
		row := []float64{float64(r.Merge.RatiosBoth[i].Day)}
		for _, series := range [][]osnmerge.RatioDay{r.Merge.RatiosXiaonei, r.Merge.RatiosFiveQ, r.Merge.RatiosBoth} {
			v := math.NaN()
			if i < len(series) {
				if x, ok := pick(series[i]); ok {
					v = x
				}
			}
			row = append(row, v)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func (r *Result) fig9c() (*Table, error) {
	if r.Merge == nil || len(r.Merge.Distances) == 0 {
		return nil, ErrStageSkipped
	}
	t := &Table{Figure: "fig9c", Title: "Average BFS distance between the two OSNs over time",
		Columns: []string{"days_after_merge", "xiaonei_to_5q", "fiveq_to_xiaonei"}}
	for _, d := range r.Merge.Distances {
		t.Rows = append(t.Rows, []float64{float64(d.DaysAfter), d.XiaoneiTo5Q, d.FiveQToXiaonei})
	}
	return t, nil
}

// FitPowerLawXY re-exposes the power-law fitting helper so examples can fit
// a size distribution straight from a figure table.
func FitPowerLawXY(xs, ys []float64) (alpha float64, err error) {
	a, _, _, err := stats.FitPowerLaw(xs, ys)
	return a, err
}
