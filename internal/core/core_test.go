package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/trace"
)

var (
	once    sync.Once
	result  *Result
	onceErr error
)

// fullRun executes the full pipeline once over the small merge trace,
// including a small δ sweep.
func fullRun(t *testing.T) *Result {
	t.Helper()
	once.Do(func() {
		tr, err := gen.Generate(gen.SmallConfig())
		if err != nil {
			onceErr = err
			return
		}
		cfg := DefaultConfig()
		cfg.Alpha.Interval = 2000
		cfg.Alpha.MinEdges = 4000
		cfg.Alpha.PolyDegree = 3
		cfg.Community.SizeDistDays = []int32{200, 251, 296}
		cfg.DeltaSweep = []float64{0.01, 0.1}
		cfg.PathEvery = 30
		cfg.PathSources = 30
		result, onceErr = Run(tr, cfg)
	})
	if onceErr != nil {
		t.Fatal(onceErr)
	}
	return result
}

func TestRunEmptyTrace(t *testing.T) {
	if _, err := Run(&trace.Trace{}, DefaultConfig()); err != ErrEmptyTrace {
		t.Fatalf("err = %v", err)
	}
}

func TestAllFiguresExtract(t *testing.T) {
	res := fullRun(t)
	for _, id := range AllFigures {
		tab, err := res.Figure(id)
		if err != nil {
			t.Errorf("figure %s: %v", id, err)
			continue
		}
		if tab.Figure != id {
			t.Errorf("figure %s: id mismatch %q", id, tab.Figure)
		}
		if len(tab.Columns) == 0 || len(tab.Rows) == 0 {
			t.Errorf("figure %s: empty table", id)
			continue
		}
		for ri, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("figure %s row %d: %d cells for %d columns", id, ri, len(row), len(tab.Columns))
				break
			}
		}
		if tab.Title == "" {
			t.Errorf("figure %s: missing title", id)
		}
	}
}

func TestUnknownFigure(t *testing.T) {
	res := fullRun(t)
	if _, err := res.Figure("fig99z"); !errors.Is(err, ErrUnknownFigure) {
		t.Fatalf("err = %v", err)
	}
}

func TestSkippedStageReported(t *testing.T) {
	tr, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SkipMetrics = true
	cfg.SkipCommunity = true
	cfg.SkipMerge = true
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig1a", "fig4a", "fig5b", "fig8a", "fig9c"} {
		if _, err := res.Figure(id); !errors.Is(err, ErrStageSkipped) {
			t.Fatalf("figure %s: err = %v, want ErrStageSkipped", id, err)
		}
	}
	// Evolution figures still work.
	if _, err := res.Figure("fig2a"); err != nil {
		t.Fatalf("fig2a: %v", err)
	}
}

func TestGrowthSeriesConsistency(t *testing.T) {
	res := fullRun(t)
	var nodes, edges int64
	for _, g := range res.Growth {
		nodes += g.NodesAdded
		edges += g.EdgesAdded
		if g.Nodes != nodes || g.Edges != edges {
			t.Fatalf("cumulative mismatch at day %d", g.Day)
		}
	}
	if nodes != res.Meta.Nodes || edges != res.Meta.Edges {
		t.Fatalf("totals: %d/%d vs meta %d/%d", nodes, edges, res.Meta.Nodes, res.Meta.Edges)
	}
}

func TestHeadlineShapes(t *testing.T) {
	res := fullRun(t)

	// Fig 1c: average degree grows over the pre-merge period.
	var early, late float64
	for _, m := range res.Metrics {
		if m.Day == 60 {
			early = m.AvgDegree
		}
		if m.Day == 144 {
			late = m.AvgDegree
		}
	}
	if late <= early {
		t.Errorf("avg degree did not grow pre-merge: %v -> %v", early, late)
	}

	// Fig 3c: α decays and the higher rule dominates.
	tab, err := res.Figure("fig3c")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Notes["gap_last"] <= 0 {
		t.Errorf("alpha gap = %v", tab.Notes["gap_last"])
	}

	// Fig 8: 5Q loses more users than Xiaonei.
	if res.Merge.InactiveAtMergeFiveQ <= res.Merge.InactiveAtMergeXiaonei {
		t.Errorf("duplicate asymmetry missing: %v vs %v",
			res.Merge.InactiveAtMergeFiveQ, res.Merge.InactiveAtMergeXiaonei)
	}

	// Fig 9c: distances end below 2.5 hops.
	last := res.Merge.Distances[len(res.Merge.Distances)-1]
	if last.XiaoneiTo5Q > 2.5 || math.IsNaN(last.XiaoneiTo5Q) {
		t.Errorf("end distance %v", last.XiaoneiTo5Q)
	}

	// Fig 4a: larger δ gives no higher modularity at matching days.
	if len(res.DeltaSweep) == 2 {
		tight, loose := res.DeltaSweep[0], res.DeltaSweep[1]
		var tightAvg, looseAvg float64
		n := len(tight.Stats)
		if len(loose.Stats) < n {
			n = len(loose.Stats)
		}
		for i := 0; i < n; i++ {
			tightAvg += tight.Stats[i].Modularity
			looseAvg += loose.Stats[i].Modularity
		}
		if n > 0 && looseAvg > tightAvg+0.05*float64(n) {
			t.Errorf("δ=0.1 modularity substantially above δ=0.01: %v vs %v", looseAvg, tightAvg)
		}
	}
}

func TestGenerateAndRun(t *testing.T) {
	cfg := gen.SmallConfig()
	cfg.Days = 120
	cfg.Merge = nil
	pcfg := DefaultConfig()
	pcfg.SkipCommunity = true
	pcfg.SkipMerge = true
	pcfg.Alpha.Interval = 1000
	pcfg.Alpha.MinEdges = 2000
	pcfg.Alpha.PolyDegree = 2
	tr, res, err := GenerateAndRun(cfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.Nodes == 0 || res.Alpha == nil {
		t.Fatal("incomplete result")
	}
}
