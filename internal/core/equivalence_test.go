package core

import (
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/gen"
	"repro/internal/trace"
)

// eqFloat is equality with NaN == NaN, for comparing figure cells (e.g.
// unmeasurable distance points) across the two pipeline implementations.
func eqFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func compareTables(t *testing.T, id string, eng, bat *Table) {
	t.Helper()
	if eng.Title != bat.Title {
		t.Errorf("%s: title %q vs %q", id, eng.Title, bat.Title)
	}
	if len(eng.Columns) != len(bat.Columns) {
		t.Errorf("%s: columns %v vs %v", id, eng.Columns, bat.Columns)
		return
	}
	for i := range eng.Columns {
		if eng.Columns[i] != bat.Columns[i] {
			t.Errorf("%s: column %d %q vs %q", id, i, eng.Columns[i], bat.Columns[i])
		}
	}
	if len(eng.Rows) != len(bat.Rows) {
		t.Errorf("%s: %d rows vs %d rows", id, len(eng.Rows), len(bat.Rows))
		return
	}
	for ri := range eng.Rows {
		if len(eng.Rows[ri]) != len(bat.Rows[ri]) {
			t.Errorf("%s row %d: width mismatch", id, ri)
			return
		}
		for ci := range eng.Rows[ri] {
			if !eqFloat(eng.Rows[ri][ci], bat.Rows[ri][ci]) {
				t.Errorf("%s row %d col %d: %v vs %v", id, ri, ci, eng.Rows[ri][ci], bat.Rows[ri][ci])
				return
			}
		}
	}
	if len(eng.Notes) != len(bat.Notes) {
		t.Errorf("%s: notes %v vs %v", id, eng.Notes, bat.Notes)
		return
	}
	for k, v := range eng.Notes {
		bv, ok := bat.Notes[k]
		if !ok || !eqFloat(v, bv) {
			t.Errorf("%s: note %q %v vs %v", id, k, v, bv)
		}
	}
}

// TestEngineMatchesBatch is the tentpole's equivalence guarantee: the
// single-pass streaming engine (Run) and the multi-pass batch reference
// (RunBatch) must produce identical figure tables on the same seeded trace,
// and the engine must make exactly ONE replay pass for everything — the
// δ-sweep included, since its per-δ detectors now run off frozen snapshots
// of the shared pass's graph instead of replaying per δ.
func TestEngineMatchesBatch(t *testing.T) {
	tr, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Alpha.Interval = 2000
	cfg.Alpha.MinEdges = 4000
	cfg.Alpha.PolyDegree = 3
	cfg.Community.SizeDistDays = []int32{200, 251, 296}
	cfg.DeltaSweep = []float64{0.01, 0.1}
	cfg.PathEvery = 30
	cfg.PathSources = 30

	prev := trace.OnReplayPass
	var passes atomic.Int64
	trace.OnReplayPass = func() { passes.Add(1) }
	engRes, err := Run(tr, cfg)
	trace.OnReplayPass = prev
	if err != nil {
		t.Fatal(err)
	}
	if got, want := passes.Load(), int64(1); got != want {
		t.Errorf("replay passes = %d, want %d (one shared pass, δ-sweep included)", got, want)
	}

	batRes, err := RunBatch(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if engRes.Meta != batRes.Meta {
		t.Errorf("meta: %+v vs %+v", engRes.Meta, batRes.Meta)
	}
	if engRes.MergeOverall != batRes.MergeOverall {
		t.Errorf("merge overall: %+v vs %+v", engRes.MergeOverall, batRes.MergeOverall)
	}
	if len(engRes.DeltaSweep) != len(batRes.DeltaSweep) {
		t.Fatalf("delta sweep: %d vs %d runs", len(engRes.DeltaSweep), len(batRes.DeltaSweep))
	}
	for i := range engRes.DeltaSweep {
		if engRes.DeltaSweep[i].Delta != batRes.DeltaSweep[i].Delta {
			t.Errorf("sweep %d: δ order %v vs %v (parallel fan-out must keep order)",
				i, engRes.DeltaSweep[i].Delta, batRes.DeltaSweep[i].Delta)
		}
	}

	compareAllFigures(t, "batch", engRes, batRes)

	// Disk-backed variant: stream the trace to a file through the
	// incremental Encoder and re-run the engine path from a FileSource.
	// The figure tables must be bit-identical to the in-memory slice
	// path — the data plane must be invisible to the analyses.
	path := filepath.Join(t.TempDir(), "eq.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := trace.NewEncoder(f)
	if err != nil {
		t.Fatal(err)
	}
	enc.SetSeed(tr.Meta.Seed)
	enc.SetMergeDay(tr.Meta.MergeDay)
	for _, ev := range tr.Events {
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fs, err := trace.OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Meta() != tr.Meta {
		t.Fatalf("file meta %+v != trace meta %+v", fs.Meta(), tr.Meta)
	}
	fileRes, err := RunSource(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fileRes.Meta != engRes.Meta {
		t.Errorf("file meta: %+v vs %+v", fileRes.Meta, engRes.Meta)
	}
	if fileRes.MergeOverall != engRes.MergeOverall {
		t.Errorf("file merge overall: %+v vs %+v", fileRes.MergeOverall, engRes.MergeOverall)
	}
	compareAllFigures(t, "filesource", engRes, fileRes)
}

// compareAllFigures asserts bit-identical figure tables (and identical
// figure availability) between the engine result and another pipeline run.
func compareAllFigures(t *testing.T, label string, engRes, other *Result) {
	t.Helper()
	for _, id := range AllFigures {
		engTab, engErr := engRes.Figure(id)
		otherTab, otherErr := other.Figure(id)
		if (engErr == nil) != (otherErr == nil) {
			t.Errorf("figure %s: engine err %v vs %s err %v", id, engErr, label, otherErr)
			continue
		}
		if engErr != nil {
			continue
		}
		compareTables(t, label+":"+id, engTab, otherTab)
	}
}

// TestRunSinglePass asserts the headline property on a sweep-free
// configuration: every subscribed stage shares one replay pass.
func TestRunSinglePass(t *testing.T) {
	cfg := gen.SmallConfig()
	cfg.Days = 150
	cfg.Merge = nil
	tr, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := DefaultConfig()
	pcfg.SkipCommunity = true // the Louvain schedule dominates runtime
	pcfg.SkipMerge = true     // the 150-day horizon has no merge window
	pcfg.Alpha.Interval = 1000
	pcfg.Alpha.MinEdges = 2000
	pcfg.Alpha.PolyDegree = 2
	pcfg.PathEvery = 30
	pcfg.PathSources = 20

	prev := trace.OnReplayPass
	var passes atomic.Int64
	trace.OnReplayPass = func() { passes.Add(1) }
	res, err := Run(tr, pcfg)
	trace.OnReplayPass = prev
	if err != nil {
		t.Fatal(err)
	}
	if got := passes.Load(); got != 1 {
		t.Fatalf("replay passes = %d, want exactly 1", got)
	}
	if len(res.Growth) == 0 || res.Evolution == nil || res.Alpha == nil {
		t.Fatal("stages incomplete after the single pass")
	}
}
