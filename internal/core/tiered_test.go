package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/storage"
)

// tieredConfig is resumeTestConfig at the tiered cadence: every second
// checkpoint is a delta, landing a full/delta mix (90 F, 180 D, 270 F,
// 299 D at the small preset's 90-day cadence) inside the small trace.
func tieredConfig(dir string) Config {
	cfg := resumeTestConfig(dir)
	cfg.CheckpointFullEvery = 2
	return cfg
}

// ckptNamesIn lists the checkpoint object names present in dir.
func ckptNamesIn(t *testing.T, dir string) []string {
	t.Helper()
	objs, err := storage.NewDirBackend(dir).List(checkpointPrefix)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(objs))
	for i, o := range objs {
		names[i] = o.Name
	}
	return names
}

// TestTieredResumeMatchesFromZero is the delta plane's correctness bar:
// a run resumed through a full-plus-delta chain produces figure tables
// bit-identical to the from-zero run, and the deltas are genuinely
// smaller than the fulls they ride between.
func TestTieredResumeMatchesFromZero(t *testing.T) {
	tr, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := encodeTrace(t, tr, filepath.Join(t.TempDir(), "tiered.trace"))
	dir := t.TempDir()
	cfg := tieredConfig(dir)

	var stats []CheckpointStat
	cfg.CheckpointObserver = func(s CheckpointStat) { stats = append(stats, s) }
	base, err := RunFigures(nil, src, cfg, "fig1a")
	if err != nil {
		t.Fatal(err)
	}
	cfg.CheckpointObserver = nil

	// The cadence produced alternating kinds, the observer saw every
	// write, and each delta undercuts its neighboring fulls.
	var fulls, deltas int
	var fullBytes, deltaBytes int64
	for _, s := range stats {
		if s.Delta {
			deltas++
			deltaBytes += s.Bytes
		} else {
			fulls++
			fullBytes += s.Bytes
		}
		if s.Bytes <= 0 {
			t.Fatalf("observer saw a %d-byte checkpoint: %+v", s.Bytes, s)
		}
	}
	if fulls < 2 || deltas < 2 {
		t.Fatalf("cadence produced %d fulls, %d deltas: %+v", fulls, deltas, stats)
	}
	if avgD, avgF := deltaBytes/int64(deltas), fullBytes/int64(fulls); avgD >= avgF {
		t.Errorf("deltas average %d bytes, fulls %d — delta encoding saved nothing", avgD, avgF)
	}
	names := ckptNamesIn(t, dir)
	var sawDelta bool
	for _, n := range names {
		sawDelta = sawDelta || strings.HasSuffix(n, deltaExt)
	}
	if !sawDelta {
		t.Fatalf("no delta objects on disk: %v", names)
	}

	// Resume from the full inventory: the newest checkpoint is a delta,
	// so resolution must walk its chain.
	rcfg := cfg
	rcfg.Resume = true
	res, err := RunFigures(nil, src, rcfg, "fig1a")
	if err != nil {
		t.Fatal(err)
	}
	last := stats[len(stats)-1]
	if !last.Delta {
		t.Fatalf("expected the last checkpoint to be a delta: %+v", stats)
	}
	if res.ResumedFromDay != last.Day {
		t.Fatalf("ResumedFromDay = %d, want %d (the delta chain tip)", res.ResumedFromDay, last.Day)
	}
	compareRuns(t, "tiered-resume", base, res)

	// The inventory helper sees the same objects, with parent links.
	infos, err := ListCheckpoints(storage.NewDirBackend(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(stats) {
		t.Fatalf("inventory has %d objects, observer saw %d writes", len(infos), len(stats))
	}
	for _, info := range infos {
		if info.Err != "" {
			t.Fatalf("inventory flagged %s: %s", info.Name, info.Err)
		}
		if info.Delta && info.ParentDay < 0 {
			t.Fatalf("delta %s has no parent day", info.Name)
		}
	}
}

// TestTieredFallbackOnBrokenChain pins the failure contract: a delta
// whose parent is missing or rewritten is a dead chain — resolution
// falls back to the newest older resolvable checkpoint (here the
// previous delta's intact chain), never to day 0 and never to an error.
func TestTieredFallbackOnBrokenChain(t *testing.T) {
	tr, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := encodeTrace(t, tr, filepath.Join(t.TempDir(), "chain.trace"))
	dir := t.TempDir()
	cfg := tieredConfig(dir)

	var stats []CheckpointStat
	cfg.CheckpointObserver = func(s CheckpointStat) { stats = append(stats, s) }
	base, err := RunFigures(nil, src, cfg, "fig1a")
	if err != nil {
		t.Fatal(err)
	}
	cfg.CheckpointObserver = nil
	// Expected shape: full, delta, full, delta (90/180/270/299).
	if len(stats) != 4 || stats[0].Delta || !stats[1].Delta || stats[2].Delta || !stats[3].Delta {
		t.Fatalf("unexpected checkpoint shape: %+v", stats)
	}
	wantFallback := stats[1].Day // the older delta, whose own chain is intact

	for name, breakParent := range map[string]func(path string){
		"missing-parent": func(path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		},
		"corrupt-parent": func(path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)*2/3], 0o644); err != nil {
				t.Fatal(err)
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			clone := t.TempDir()
			for _, obj := range ckptNamesIn(t, dir) {
				raw, err := os.ReadFile(filepath.Join(dir, obj))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(clone, obj), raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			// Break the newest delta's parent full (day 270): its chain is
			// now unresolvable, and day 270 itself no longer loads.
			breakParent(filepath.Join(clone, checkpointFileName(stats[2].Day)))

			rcfg := cfg
			rcfg.CheckpointDir = clone
			rcfg.Resume = true
			res, err := RunFigures(nil, src, rcfg, "fig1a")
			if err != nil {
				t.Fatalf("broken chain broke the run: %v", err)
			}
			if res.ResumedFromDay != wantFallback {
				t.Fatalf("ResumedFromDay = %d, want %d (older intact chain)", res.ResumedFromDay, wantFallback)
			}
			compareRuns(t, name, base, res)
		})
	}
}

// TestCheckpointRetention pins the GC contract: CheckpointKeep=N leaves
// the newest N fulls plus the deltas above them, and never touches
// objects it cannot attribute to this run's fingerprint.
func TestCheckpointRetention(t *testing.T) {
	tr, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := encodeTrace(t, tr, filepath.Join(t.TempDir(), "retain.trace"))
	dir := t.TempDir()
	cfg := tieredConfig(dir)
	cfg.CheckpointKeep = 1

	// A foreign object under the checkpoint prefix — same namespace,
	// unreadable header — must survive every GC pass.
	foreign := filepath.Join(dir, checkpointFileName(7))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(foreign, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	var stats []CheckpointStat
	cfg.CheckpointObserver = func(s CheckpointStat) { stats = append(stats, s) }
	base, err := RunFigures(nil, src, cfg, "fig1a")
	if err != nil {
		t.Fatal(err)
	}
	cfg.CheckpointObserver = nil
	if len(stats) < 4 {
		t.Fatalf("only %d checkpoints written: %+v", len(stats), stats)
	}

	var keptFullDay int32 = -1
	var mine []string
	for _, obj := range ckptNamesIn(t, dir) {
		if filepath.Join(dir, obj) == foreign {
			continue
		}
		day, isDelta, ok := parseCheckpointName(obj)
		if !ok {
			continue
		}
		mine = append(mine, obj)
		if !isDelta {
			if keptFullDay >= 0 {
				t.Fatalf("retention kept two fulls: %v", mine)
			}
			keptFullDay = day
		}
	}
	if keptFullDay < 0 {
		t.Fatalf("retention deleted every full: %v", mine)
	}
	for _, obj := range mine {
		if day, _, _ := parseCheckpointName(obj); day < keptFullDay {
			t.Fatalf("object %s is older than the kept full (day %d)", obj, keptFullDay)
		}
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("retention deleted the foreign object: %v", err)
	}

	// What retention kept still resumes, from the newest day.
	rcfg := cfg
	rcfg.Resume = true
	res, err := RunFigures(nil, src, rcfg, "fig1a")
	if err != nil {
		t.Fatal(err)
	}
	if want := stats[len(stats)-1].Day; res.ResumedFromDay != want {
		t.Fatalf("ResumedFromDay = %d, want %d", res.ResumedFromDay, want)
	}
	compareRuns(t, "retention-resume", base, res)
}

// TestTieredResumeContinuesChain: a run that restores a checkpoint can
// delta against it — resuming does not force the next checkpoint back to
// a full.
func TestTieredResumeContinuesChain(t *testing.T) {
	tr, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := encodeTrace(t, tr, filepath.Join(t.TempDir(), "cont.trace"))
	dir := t.TempDir()
	cfg := tieredConfig(dir)

	var first []CheckpointStat
	cfg.CheckpointObserver = func(s CheckpointStat) { first = append(first, s) }
	if _, err := RunFigures(nil, src, cfg, "fig1a"); err != nil {
		t.Fatal(err)
	}

	// Keep only the first full; the resumed run rebuilds the rest of the
	// inventory and its first new checkpoint rides the restored parent.
	for _, obj := range ckptNamesIn(t, dir) {
		if obj != checkpointFileName(first[0].Day) {
			if err := os.Remove(filepath.Join(dir, obj)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var second []CheckpointStat
	rcfg := cfg
	rcfg.Resume = true
	rcfg.CheckpointObserver = func(s CheckpointStat) { second = append(second, s) }
	res, err := RunFigures(nil, src, rcfg, "fig1a")
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFromDay != first[0].Day {
		t.Fatalf("ResumedFromDay = %d, want %d", res.ResumedFromDay, first[0].Day)
	}
	if len(second) == 0 || !second[0].Delta {
		t.Fatalf("resumed run's first checkpoint should delta against the restored full: %+v", second)
	}
}
