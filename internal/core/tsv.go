package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Format selects a figure table's wire encoding — the two content types
// the CLIs' -format flags and the rrserved daemon share.
type Format string

const (
	// FormatTSV is the tab-separated encoding WriteTSV produces.
	FormatTSV Format = "tsv"
	// FormatJSON is the JSON object encoding WriteJSON produces.
	FormatJSON Format = "json"
)

// ParseFormat parses a -format flag or ?format= query value.
func ParseFormat(s string) (Format, error) {
	switch Format(strings.ToLower(strings.TrimSpace(s))) {
	case "", FormatTSV:
		return FormatTSV, nil
	case FormatJSON:
		return FormatJSON, nil
	}
	return "", fmt.Errorf("core: unknown format %q (want tsv or json)", s)
}

// ContentType returns the HTTP content type of the encoding.
func (f Format) ContentType() string {
	if f == FormatJSON {
		return "application/json; charset=utf-8"
	}
	return "text/tab-separated-values; charset=utf-8"
}

// Ext returns the conventional file extension, dot included.
func (f Format) Ext() string { return "." + string(f) }

// Write encodes the table in the given format.
func (t *Table) Write(w io.Writer, f Format) error {
	if f == FormatJSON {
		return t.WriteJSON(w)
	}
	return t.WriteTSV(w)
}

// WriteTSV writes the table as tab-separated values: a comment header with
// the title and notes, the column header, then one line per row. Floats are
// printed with %g so the output is both compact and lossless enough for
// plotting.
func (t *Table) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %s\n", t.Figure, t.Title)
	if len(t.Notes) > 0 {
		keys := make([]string, 0, len(t.Notes))
		for k := range t.Notes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(bw, "# %s = %g\n", k, t.Notes[k])
		}
	}
	for i, c := range t.Columns {
		if i > 0 {
			bw.WriteByte('\t')
		}
		bw.WriteString(c)
	}
	bw.WriteByte('\n')
	for _, row := range t.Rows {
		for i, v := range row {
			if i > 0 {
				bw.WriteByte('\t')
			}
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteJSON writes the table as one JSON object mirroring the TSV layout:
// figure id, title, sorted notes, column names, and the rows as arrays.
// Table cells can legitimately be NaN (fig2c pads ragged rows, fig9 marks
// undefined ratios), which encoding/json refuses to emit — those cells
// become null, the usual JSON convention for "no value". The encoding is
// deterministic (sorted note keys, fixed field order), so equal tables
// produce equal bytes — the property the serving cache keys rely on.
func (t *Table) WriteJSON(w io.Writer) error {
	type jsonTable struct {
		Figure  string         `json:"figure"`
		Title   string         `json:"title"`
		Notes   map[string]any `json:"notes,omitempty"`
		Columns []string       `json:"columns"`
		Rows    [][]any        `json:"rows"`
	}
	jt := jsonTable{Figure: t.Figure, Title: t.Title, Columns: t.Columns, Rows: make([][]any, len(t.Rows))}
	if len(t.Notes) > 0 {
		jt.Notes = make(map[string]any, len(t.Notes))
		for k, v := range t.Notes {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				jt.Notes[k] = nil
			} else {
				jt.Notes[k] = v
			}
		}
	}
	for i, row := range t.Rows {
		out := make([]any, len(row))
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				out[j] = nil
			} else {
				out[j] = v
			}
		}
		jt.Rows[i] = out
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&jt)
}

// WriteFigureTSV and WriteFigureJSON are the function forms of the table
// encoders, for callers that hold the io.Writer rather than the table
// (the daemon's content-type dispatch).
func WriteFigureTSV(w io.Writer, t *Table) error  { return t.WriteTSV(w) }
func WriteFigureJSON(w io.Writer, t *Table) error { return t.WriteJSON(w) }
