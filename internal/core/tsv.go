package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteTSV writes the table as tab-separated values: a comment header with
// the title and notes, the column header, then one line per row. Floats are
// printed with %g so the output is both compact and lossless enough for
// plotting.
func (t *Table) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %s\n", t.Figure, t.Title)
	if len(t.Notes) > 0 {
		keys := make([]string, 0, len(t.Notes))
		for k := range t.Notes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(bw, "# %s = %g\n", k, t.Notes[k])
		}
	}
	for i, c := range t.Columns {
		if i > 0 {
			bw.WriteByte('\t')
		}
		bw.WriteString(c)
	}
	bw.WriteByte('\n')
	for _, row := range t.Rows {
		for i, v := range row {
			if i > 0 {
				bw.WriteByte('\t')
			}
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
