package core

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/community"
	"repro/internal/engine"
	"repro/internal/evolution"
	"repro/internal/metrics"
	"repro/internal/osnmerge"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Checkpoint plumbing for the demand-driven pipeline: object naming, the
// compatibility fingerprint, writing at the engine's cadence hook (full
// or delta, per the tiered cadence), resolving/restoring the newest
// usable full-plus-delta chain for a resume, and retention.
//
// All checkpoint IO goes through a storage.Backend — a DirBackend over
// Config.CheckpointDir by default, or whatever Config.CheckpointBackend
// supplies — so the plane never assumes more than atomic whole-object
// puts and ranged reads.

// defaultCheckpointEvery is the cadence used when checkpointing is
// enabled but CheckpointEvery is not set.
const defaultCheckpointEvery = 90

// Stage-name aliases for fingerprint gating, bound to the registries'
// canonical constants so they cannot drift.
const (
	metricsStageName   = metrics.StageName
	evolutionStageName = evolution.StageName
	alphaStageName     = evolution.AlphaStageName
	communityStageName = community.StageName
	usersStageName     = community.UsersStageName
	sweepStageName     = community.SweepStageName
	osnmergeStageName  = osnmerge.StageName
)

const (
	checkpointPrefix = "checkpoint-"
	checkpointExt    = ".ckpt"
	// deltaExt marks a delta checkpoint: a patch against the previous
	// checkpoint (full or delta), resolvable only through its chain.
	deltaExt = ".dckpt"
)

// maxChainDepth bounds how many deltas a resume will walk before giving
// up on a candidate — a corrupted ParentDay must not send resolution on
// an unbounded tour of the backend.
const maxChainDepth = 64

// ckptHeaderProbe is how many bytes of an object the header scan reads.
// Headers are a few hundred bytes (magic, hashes, stage names); 64 KiB
// is a comfortable ceiling even at maxSections stages.
const ckptHeaderProbe = 1 << 16

// checkpointFileName renders the canonical day-addressed object name for
// a full checkpoint.
func checkpointFileName(day int32) string {
	return fmt.Sprintf("%s%08d%s", checkpointPrefix, day, checkpointExt)
}

// deltaFileName renders the object name for a delta checkpoint.
func deltaFileName(day int32) string {
	return fmt.Sprintf("%s%08d%s", checkpointPrefix, day, deltaExt)
}

// parseCheckpointName inverts checkpointFileName/deltaFileName.
func parseCheckpointName(name string) (day int32, delta, ok bool) {
	if !strings.HasPrefix(name, checkpointPrefix) {
		return 0, false, false
	}
	mid := strings.TrimPrefix(name, checkpointPrefix)
	switch {
	case strings.HasSuffix(mid, checkpointExt):
		mid = strings.TrimSuffix(mid, checkpointExt)
	case strings.HasSuffix(mid, deltaExt):
		mid, delta = strings.TrimSuffix(mid, deltaExt), true
	default:
		return 0, false, false
	}
	v, err := strconv.ParseInt(mid, 10, 32)
	if err != nil || v < 0 {
		return 0, false, false
	}
	return int32(v), delta, true
}

// parseCheckpointDay inverts checkpointFileName (full checkpoints only).
func parseCheckpointDay(name string) (int32, bool) {
	day, delta, ok := parseCheckpointName(name)
	if !ok || delta {
		return 0, false
	}
	return day, true
}

// configFingerprint hashes everything a checkpoint's validity depends
// on: the subscribed stage set, the Config knobs those stages read
// during the replay, and the trace's identity (generator seed and merge
// day — deliberately not the day count, since the trace growing more
// days between runs is the whole point of incremental resume). Knobs of
// stages outside the plan are excluded on purpose: e.g. rranalyze
// derives SizeDistDays from the trace length, and hashing it into a
// metrics-only run would spuriously invalidate every checkpoint the
// moment the trace grows. The storage knobs (cadence, retention,
// backend) are excluded too: they decide where and how often state is
// persisted, never what the state is, so checkpoints written full
// resume runs configured for deltas and vice versa. Two runs with equal
// fingerprints accumulate identical stage state day by day, so a
// checkpoint from one can seed the other. (The post-pass SVM evaluation
// re-runs from the community result on every run, resumed or not, so it
// constrains nothing.)
func configFingerprint(cfg Config, meta trace.Meta, stages []string) uint64 {
	has := map[string]bool{}
	for _, s := range stages {
		has[s] = true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "v1|stages=%v", stages)
	fmt.Fprintf(h, "|trace=%d,%d", meta.Seed, meta.MergeDay)
	if has[metricsStageName] {
		fmt.Fprintf(h, "|metrics=%d,%d,%d,%d,%d", cfg.MetricsEvery, cfg.PathEvery, cfg.PathSources, cfg.ClusteringSamples, cfg.Seed)
	}
	if has[evolutionStageName] {
		fmt.Fprintf(h, "|evolution=%+v", cfg.Evolution)
	}
	if has[alphaStageName] {
		fmt.Fprintf(h, "|alpha=%+v", cfg.Alpha)
	}
	if has[communityStageName] || has[sweepStageName] || has[usersStageName] {
		fmt.Fprintf(h, "|community=%+v", cfg.Community)
	}
	if has[sweepStageName] {
		fmt.Fprintf(h, "|deltas=%v", cfg.DeltaSweep)
	}
	if has[osnmergeStageName] {
		fmt.Fprintf(h, "|merge=%+v", cfg.Merge)
	}
	return h.Sum64()
}

// Fingerprint hashes cfg and the trace identity under the plan's stage
// set — the same stage-set-gated derivation the checkpoint plane uses
// (configFingerprint), exposed so the serving layer can build cache keys:
// two requests share a fingerprint exactly when their runs would
// accumulate identical state, so (fingerprint, trace day, figure id) is a
// sound cache identity. It hashes the plan's declared stage list
// (pre-gating), which can differ from a checkpoint header's subscribed
// set (e.g. the merge stage on a merge-free trace) — it identifies cache
// entries, not checkpoint files.
func (p *FigurePlan) Fingerprint(cfg Config, meta trace.Meta) uint64 {
	return configFingerprint(cfg.withDefaults(), meta, p.Stages())
}

// stageNames lists the subscribed stages in subscription order.
func stageNames(stages []engine.Stage) []string {
	out := make([]string, len(stages))
	for i, s := range stages {
		out[i] = s.Name()
	}
	return out
}

// fnvSum is the checkpoint plane's object identity hash: deltas record
// the FNV-64a of their parent's exact bytes, so a chain only resolves
// against the very objects it was diffed from.
func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// ckptStages returns the subscribed stages that belong to the state
// plane: everything except the observational progress display, which
// must never gate resume compatibility — toggling a stderr progress line
// between runs is not a different computation. (A resumed run's progress
// counter therefore counts only the replayed delta.)
func (x *planExec) ckptStages() []engine.Stage {
	all := x.eng.Subscribed()
	out := all[:0]
	for _, s := range all {
		if _, observational := s.(*progressStage); !observational {
			out = append(out, s)
		}
	}
	return out
}

// ckptParent is the writer's summary of the last checkpoint it wrote (or
// restored): exactly what the next delta needs — the parent's identity
// (day, byte hash), its state shape (node count, degree vector), its
// stage blobs for unchanged-detection, and its position in the chain.
// Holding this instead of the whole parent state keeps the delta path
// O(nodes) in memory, not O(edges).
type ckptParent struct {
	day   int32
	sum   uint64
	nodes int
	deg   []int32
	blobs [][]byte
	depth int // 0 = full checkpoint, k = k-th delta in its chain
}

// armCheckpoints enables checkpoint writing on the instantiated run and
// records the fingerprint resume resolution matches against. The backend
// is resolved here: an explicit Config.CheckpointBackend wins, else a
// DirBackend over CheckpointDir.
func (x *planExec) armCheckpoints() {
	cfg := x.rt.cfg
	x.backend = cfg.CheckpointBackend
	if x.backend == nil {
		if cfg.CheckpointDir == "" {
			return
		}
		x.backend = storage.NewDirBackend(cfg.CheckpointDir)
	}
	x.ckptNames = stageNames(x.ckptStages())
	x.ckptHash = configFingerprint(cfg, x.rt.meta, x.ckptNames)
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = defaultCheckpointEvery
	}
	x.eng.EnableCheckpoints(every, x.writeCheckpoint)
}

// writeCheckpoint serializes the run at one day boundary. At the tiered
// cadence (Config.CheckpointFullEvery = F) one checkpoint in F is a full
// container and the rest are deltas against the previous checkpoint:
// the state patch the append-only replay implies, plus only the stage
// blobs whose bytes actually changed. Whole objects go through the
// backend's atomic Put, so readers only ever see complete checkpoints.
// Any reason a delta can't be computed (first checkpoint, foreign
// restore, non-extension state) falls back to a full — a delta is an
// optimization, never a requirement.
func (x *planExec) writeCheckpoint(day int32, st *trace.State) error {
	start := time.Now()
	stages := x.ckptStages()
	raw := make([][]byte, 0, len(stages))
	blobs := make([]checkpoint.StageBlob, 0, len(stages))
	for _, s := range stages {
		var buf bytes.Buffer
		if err := s.(engine.Checkpointer).SaveState(&buf); err != nil {
			return fmt.Errorf("stage %s: %w", s.Name(), err)
		}
		raw = append(raw, buf.Bytes())
		blobs = append(blobs, checkpoint.StageBlob{Name: s.Name(), Data: buf.Bytes()})
	}

	fullEvery := x.rt.cfg.CheckpointFullEvery
	var buf bytes.Buffer
	var name string
	delta := false
	if fullEvery > 1 && x.parent != nil && x.parent.depth+1 < fullEvery && x.parent.day < day {
		patch, err := checkpoint.DiffState(x.parent.nodes, x.parent.deg, st)
		if err == nil {
			dblobs := make([]checkpoint.DeltaBlob, len(raw))
			for i := range raw {
				changed := i >= len(x.parent.blobs) || !bytes.Equal(raw[i], x.parent.blobs[i])
				dblobs[i] = checkpoint.DeltaBlob{Name: x.ckptNames[i], Changed: changed}
				if changed {
					dblobs[i].Data = raw[i]
				}
			}
			h := checkpoint.DeltaHeader{Day: day, ParentDay: x.parent.day, ParentSum: x.parent.sum, ConfigHash: x.ckptHash, Stages: x.ckptNames}
			if err := checkpoint.WriteDelta(&buf, h, patch, dblobs); err != nil {
				return err
			}
			name, delta = deltaFileName(day), true
		}
	}
	if !delta {
		h := checkpoint.Header{Day: day, ConfigHash: x.ckptHash, Stages: x.ckptNames}
		if err := checkpoint.Write(&buf, h, st, blobs); err != nil {
			return err
		}
		name = checkpointFileName(day)
	}
	if err := x.backend.Put(name, buf.Bytes()); err != nil {
		return err
	}
	depth := 0
	if delta {
		depth = x.parent.depth + 1
	}
	x.parent = &ckptParent{
		day:   day,
		sum:   fnvSum(buf.Bytes()),
		nodes: st.Graph.NumNodes(),
		deg:   checkpoint.Degrees(st),
		blobs: raw,
		depth: depth,
	}
	if obs := x.rt.cfg.CheckpointObserver; obs != nil {
		obs(CheckpointStat{Day: day, Delta: delta, Bytes: int64(buf.Len()), Elapsed: time.Since(start)})
	}
	x.gcCheckpoints()
	return nil
}

// gcCheckpoints enforces Config.CheckpointKeep: all but the newest N
// full checkpoints carrying this run's fingerprint — and every delta
// chained above the oldest kept full — are deleted. Deltas always chain
// downward to the nearest full at or below their day, so nothing that a
// kept-full resume could walk is ever removed. Objects under other
// fingerprints (another config sharing the backend) are never touched,
// and every failure here is swallowed: retention is best-effort
// housekeeping, not a reason to fail a checkpoint write.
func (x *planExec) gcCheckpoints() {
	keep := x.rt.cfg.CheckpointKeep
	if keep <= 0 {
		return
	}
	objs, err := x.backend.List(checkpointPrefix)
	if err != nil {
		return
	}
	type entry struct {
		name  string
		day   int32
		delta bool
	}
	var mine []entry
	var fullDays []int32
	for _, o := range objs {
		day, isDelta, ok := parseCheckpointName(o.Name)
		if !ok {
			continue
		}
		if match, _ := x.headerMatches(o.Name, isDelta); !match {
			continue
		}
		mine = append(mine, entry{o.Name, day, isDelta})
		if !isDelta {
			fullDays = append(fullDays, day)
		}
	}
	if len(fullDays) <= keep {
		return
	}
	sort.Slice(fullDays, func(i, j int) bool { return fullDays[i] > fullDays[j] })
	cutoff := fullDays[keep-1]
	for _, e := range mine {
		if e.day < cutoff {
			_ = x.backend.Delete(e.name)
		}
	}
}

// ckptCandidate is one resolvable checkpoint object.
type ckptCandidate struct {
	name  string
	day   int32
	delta bool
}

// findCheckpoints resolves the checkpoints usable by this run — every
// checkpoint day <= maxDay whose header carries this run's exact stage
// set and config fingerprint — newest first, full before delta on a
// shared day (the full resolves cheaper). The caller restores the first
// whose chain loads cleanly; unreadable candidates are skipped, never
// fatal. stale reports that a listed object vanished between the listing
// and the header probe — the signature of a concurrent writer rotating
// the backend (atomic put over an existing name, or retention deleting
// old days) — so the caller knows a rescan may see a newer object than
// any candidate returned here.
func (x *planExec) findCheckpoints(maxDay int32) (cands []ckptCandidate, stale bool) {
	objs, err := x.backend.List(checkpointPrefix)
	if err != nil {
		return nil, false
	}
	for _, o := range objs {
		if d, isDelta, ok := parseCheckpointName(o.Name); ok && d <= maxDay {
			cands = append(cands, ckptCandidate{name: o.Name, day: d, delta: isDelta})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].day != cands[j].day {
			return cands[i].day > cands[j].day
		}
		return !cands[i].delta && cands[j].delta
	})
	out := cands[:0]
	for _, c := range cands {
		ok, notExist := x.headerMatches(c.name, c.delta)
		if notExist {
			stale = true
		}
		if ok {
			out = append(out, c)
		}
	}
	return out, stale
}

// headerMatches reports whether the checkpoint object was written by a
// run with this run's stage set and fingerprint; notExist distinguishes
// an object that vanished mid-scan from one that exists but doesn't
// match. Only a bounded prefix is fetched — resolution scans many
// candidates and must not pay whole-object reads for each.
func (x *planExec) headerMatches(name string, delta bool) (ok, notExist bool) {
	rc, err := x.backend.OpenRange(name, 0, ckptHeaderProbe)
	if err != nil {
		return false, errors.Is(err, fs.ErrNotExist)
	}
	defer rc.Close()
	var hash uint64
	var stages []string
	if delta {
		h, err := checkpoint.ReadDeltaHeader(rc)
		if err != nil {
			return false, false
		}
		hash, stages = h.ConfigHash, h.Stages
	} else {
		h, err := checkpoint.ReadHeader(rc)
		if err != nil {
			return false, false
		}
		hash, stages = h.ConfigHash, h.Stages
	}
	if hash != x.ckptHash || len(stages) != len(x.ckptNames) {
		return false, false
	}
	for i, s := range stages {
		if s != x.ckptNames[i] {
			return false, false
		}
	}
	return true, false
}

// ckptScanRetries bounds how many times a resume rescans a checkpoint
// backend that changed under it before settling for what it can read.
const ckptScanRetries = 3

// testCkptAfterScan, when non-nil, runs after each candidate scan and
// before any restore attempt — the regression tests' window for mutating
// the backend the way a concurrent writer would.
var testCkptAfterScan func(attempt int)

// resolveResume finds and restores the newest compatible checkpoint into
// a plan instantiation, returning the instantiation to run (with
// resumeState set on success, clean for a day-0 replay otherwise).
//
// The single-process assumption of the original resolution does not hold
// for a serving daemon: a refresh pass may atomically put a new
// checkpoint over an existing day object, or retention may delete old
// days, between this run's listing and its read. An ENOENT on the
// candidate itself does not mean "no checkpoint" — it means the scan is
// stale, and settling for an older candidate (or day 0) would silently
// discard the incremental win. Instead the resolution rescans, bounded
// by ckptScanRetries; every other load failure — a corrupt object, a
// broken or missing delta parent — keeps the original semantics (skip to
// the next older candidate, fall back to day 0). Each failed restore may
// leave stages half-loaded, so the instantiation is rebuilt before the
// next attempt.
func resolveResume(plan *FigurePlan, x *planExec, src trace.Source, meta trace.Meta, cfg Config) *planExec {
	for attempt := 0; ; attempt++ {
		cands, stale := x.findCheckpoints(meta.Days - 1)
		if testCkptAfterScan != nil {
			testCkptAfterScan(attempt)
		}
		rescan := false
		for _, cand := range cands {
			st, day, err := x.loadCheckpointChain(src, cand)
			if err == nil {
				x.resumeState, x.resumeDay = st, day
				return x
			}
			x = plan.instantiate(cfg, meta)
			if errors.Is(err, fs.ErrNotExist) {
				// The candidate vanished after the scan: prefer a fresh
				// scan (which may surface a newer replacement) over
				// quietly resuming from an older day.
				rescan = true
				break
			}
		}
		if (!rescan && !stale) || attempt >= ckptScanRetries {
			return x
		}
	}
}

// fetchChainParent resolves one link of a delta chain: the checkpoint at
// day whose exact bytes hash to wantSum — the parent this delta was
// diffed against, full or delta. Errors here must NOT satisfy
// errors.Is(err, fs.ErrNotExist): a missing or substituted parent means
// "this chain is dead, fall back to an older candidate", not "the scan
// is stale, rescan" — wrapping the backend's not-exist would burn
// resolveResume's bounded retries and land the run at day 0 instead of
// the older full sitting right there.
func (x *planExec) fetchChainParent(day int32, wantSum uint64) (data []byte, delta bool, err error) {
	for _, try := range []struct {
		name  string
		delta bool
	}{{checkpointFileName(day), false}, {deltaFileName(day), true}} {
		b, err := x.backend.Get(try.name)
		if err != nil {
			continue
		}
		if fnvSum(b) == wantSum {
			return b, try.delta, nil
		}
	}
	return nil, false, fmt.Errorf("core: delta parent day %d (sum %016x) missing or rewritten", day, wantSum)
}

// loadCheckpointChain reads the candidate, resolves its delta chain down
// to a full checkpoint if needed, cross-checks the restored state
// against the source, and restores every state-plane stage from its
// effective blob. On any error the stages may be partially restored —
// the caller discards the whole instantiation and falls back.
func (x *planExec) loadCheckpointChain(src trace.Source, cand ckptCandidate) (*trace.State, int32, error) {
	data, err := x.backend.Get(cand.name)
	if err != nil {
		// Propagated as-is: a vanished candidate is resolveResume's
		// rescan signal (unlike a vanished chain parent, see
		// fetchChainParent).
		return nil, 0, err
	}
	candSum := fnvSum(data)

	// Walk the chain: candidate-first, collecting deltas until a full
	// checkpoint grounds it.
	var chain []*checkpoint.DeltaFile
	cur, curDelta := data, cand.delta
	for curDelta {
		if len(chain) >= maxChainDepth {
			return nil, 0, fmt.Errorf("core: delta chain deeper than %d at day %d", maxChainDepth, cand.day)
		}
		df, err := checkpoint.ReadDelta(bytes.NewReader(cur))
		if err != nil {
			return nil, 0, err
		}
		if err := x.chainHeaderOK(df.Header); err != nil {
			return nil, 0, err
		}
		chain = append(chain, df)
		cur, curDelta, err = x.fetchChainParent(df.Header.ParentDay, df.Header.ParentSum)
		if err != nil {
			return nil, 0, err
		}
	}
	file, err := checkpoint.Read(bytes.NewReader(cur))
	if err != nil {
		return nil, 0, err
	}
	if file.Header.ConfigHash != x.ckptHash {
		return nil, 0, fmt.Errorf("core: chain base day %d has foreign fingerprint", file.Header.Day)
	}

	// Replay the chain newest-last onto the base: one adjacency
	// materialization regardless of depth, and each delta's changed
	// blobs override the running per-stage bytes.
	st, day := file.State, file.Header.Day
	blobs := file.Blobs
	if len(chain) > 0 {
		b := checkpoint.NewStateBuilder(file.State)
		eff := make([]checkpoint.StageBlob, len(blobs))
		copy(eff, blobs)
		prevDay := file.Header.Day
		for i := len(chain) - 1; i >= 0; i-- {
			df := chain[i]
			if df.Header.ParentDay != prevDay {
				return nil, 0, fmt.Errorf("core: delta day %d chains to day %d, parent is day %d", df.Header.Day, df.Header.ParentDay, prevDay)
			}
			if err := b.Apply(df.Patch); err != nil {
				return nil, 0, err
			}
			if len(df.Blobs) != len(eff) {
				return nil, 0, fmt.Errorf("core: delta day %d has %d blobs, chain has %d", df.Header.Day, len(df.Blobs), len(eff))
			}
			for j, db := range df.Blobs {
				if db.Name != eff[j].Name {
					return nil, 0, fmt.Errorf("core: delta blob %d is %q, chain has %q", j, db.Name, eff[j].Name)
				}
				if db.Changed {
					eff[j] = checkpoint.StageBlob{Name: db.Name, Data: db.Data}
				}
			}
			prevDay = df.Header.Day
		}
		st, err = b.State()
		if err != nil {
			return nil, 0, err
		}
		day, blobs = chain[0].Header.Day, eff
	}

	// Consistency probe: the restored graph must account for exactly the
	// events the trace holds through the checkpoint day (every event is
	// one node or one edge). This catches a trace regenerated with the
	// same seed but different generator knobs — identical fingerprint,
	// different stream — before it can silently serve stale results.
	if n, ok := trace.EventsThrough(src, day); ok {
		applied := int64(st.Graph.NumNodes()) + st.Graph.NumEdges()
		if n != applied {
			return nil, 0, fmt.Errorf("core: checkpoint day %d accounts for %d events, trace holds %d — not this trace's prefix", day, applied, n)
		}
	}
	stages := x.ckptStages()
	if len(blobs) != len(stages) {
		return nil, 0, fmt.Errorf("core: checkpoint has %d stage blobs, run has %d stages", len(blobs), len(stages))
	}
	rawBlobs := make([][]byte, len(blobs))
	for i, s := range stages {
		b := blobs[i]
		if b.Name != s.Name() {
			return nil, 0, fmt.Errorf("core: checkpoint blob %d is %q, run stage is %q", i, b.Name, s.Name())
		}
		if err := s.(engine.Checkpointer).LoadState(bytes.NewReader(b.Data)); err != nil {
			return nil, 0, fmt.Errorf("core: restore stage %s: %w", s.Name(), err)
		}
		rawBlobs[i] = b.Data
	}
	// The restored checkpoint seeds the writer's parent summary, so a
	// resumed run's next checkpoint can be a delta against it.
	x.parent = &ckptParent{
		day:   day,
		sum:   candSum,
		nodes: st.Graph.NumNodes(),
		deg:   checkpoint.Degrees(st),
		blobs: rawBlobs,
		depth: len(chain),
	}
	return st, day, nil
}

// chainHeaderOK validates one delta header against this run's identity:
// every link of a chain must carry the run's fingerprint and stage set
// (the candidate's header was vetted by the scan; intermediates were
// not), and must actually point backwards.
func (x *planExec) chainHeaderOK(h checkpoint.DeltaHeader) error {
	if h.ConfigHash != x.ckptHash {
		return fmt.Errorf("core: delta day %d has foreign fingerprint", h.Day)
	}
	if len(h.Stages) != len(x.ckptNames) {
		return fmt.Errorf("core: delta day %d has %d stages, run has %d", h.Day, len(h.Stages), len(x.ckptNames))
	}
	for i, s := range h.Stages {
		if s != x.ckptNames[i] {
			return fmt.Errorf("core: delta day %d stage %d is %q, run has %q", h.Day, i, s, x.ckptNames[i])
		}
	}
	if h.ParentDay >= h.Day {
		return fmt.Errorf("core: delta day %d chains forward to day %d", h.Day, h.ParentDay)
	}
	return nil
}

// CheckpointStat describes one checkpoint write — the observer payload
// surfaced on /statz (object size feeds the daemon's storage section,
// the latency its write-cost gauge).
type CheckpointStat struct {
	// Day is the checkpointed day.
	Day int32
	// Delta reports whether the object was a delta (vs a full container).
	Delta bool
	// Bytes is the written object's size.
	Bytes int64
	// Elapsed is the wall time of serialization plus backend put.
	Elapsed time.Duration
}

// CheckpointInfo describes one checkpoint object in a backend — the
// inventory row `rranalyze -info` prints.
type CheckpointInfo struct {
	Name       string
	Day        int32
	Delta      bool
	Size       int64
	ConfigHash uint64
	Stages     []string
	// ParentDay is the chained-to day (deltas only).
	ParentDay int32
	// Err records a header that would not parse; such an object is
	// unreadable by resume and a candidate for manual cleanup.
	Err string
}

// ListCheckpoints inventories the checkpoint objects in a backend,
// sorted by day ascending (fulls before deltas on a shared day). Objects
// under the checkpoint prefix whose names don't parse are skipped;
// objects whose headers don't parse are reported with Err set.
func ListCheckpoints(b storage.Backend) ([]CheckpointInfo, error) {
	objs, err := b.List(checkpointPrefix)
	if err != nil {
		return nil, err
	}
	var out []CheckpointInfo
	for _, o := range objs {
		day, isDelta, ok := parseCheckpointName(o.Name)
		if !ok {
			continue
		}
		info := CheckpointInfo{Name: o.Name, Day: day, Delta: isDelta, Size: o.Size, ParentDay: -1}
		if err := readCheckpointHeaderInto(b, o.Name, isDelta, &info); err != nil {
			info.Err = err.Error()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Day != out[j].Day {
			return out[i].Day < out[j].Day
		}
		return !out[i].Delta && out[j].Delta
	})
	return out, nil
}

// readCheckpointHeaderInto fills info from the object's header prefix.
func readCheckpointHeaderInto(b storage.Backend, name string, delta bool, info *CheckpointInfo) error {
	rc, err := b.OpenRange(name, 0, ckptHeaderProbe)
	if err != nil {
		return err
	}
	defer func() { _ = rc.Close() }()
	var r io.Reader = rc
	if delta {
		h, err := checkpoint.ReadDeltaHeader(r)
		if err != nil {
			return err
		}
		info.ConfigHash, info.Stages, info.ParentDay = h.ConfigHash, h.Stages, h.ParentDay
		return nil
	}
	h, err := checkpoint.ReadHeader(r)
	if err != nil {
		return err
	}
	info.ConfigHash, info.Stages = h.ConfigHash, h.Stages
	return nil
}
