package core

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/community"
	"repro/internal/engine"
	"repro/internal/evolution"
	"repro/internal/metrics"
	"repro/internal/osnmerge"
	"repro/internal/trace"
)

// Checkpoint plumbing for the demand-driven pipeline: file naming, the
// compatibility fingerprint, writing at the engine's cadence hook, and
// resolving/restoring the latest usable checkpoint for a resume.

// defaultCheckpointEvery is the cadence used when CheckpointDir is set
// but CheckpointEvery is not.
const defaultCheckpointEvery = 90

// Stage-name aliases for fingerprint gating, bound to the registries'
// canonical constants so they cannot drift.
const (
	metricsStageName   = metrics.StageName
	evolutionStageName = evolution.StageName
	alphaStageName     = evolution.AlphaStageName
	communityStageName = community.StageName
	usersStageName     = community.UsersStageName
	sweepStageName     = community.SweepStageName
	osnmergeStageName  = osnmerge.StageName
)

const (
	checkpointPrefix = "checkpoint-"
	checkpointExt    = ".ckpt"
)

// checkpointFileName renders the canonical day-addressed file name.
func checkpointFileName(day int32) string {
	return fmt.Sprintf("%s%08d%s", checkpointPrefix, day, checkpointExt)
}

// parseCheckpointDay inverts checkpointFileName.
func parseCheckpointDay(name string) (int32, bool) {
	if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointExt) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), checkpointExt)
	v, err := strconv.ParseInt(mid, 10, 32)
	if err != nil || v < 0 {
		return 0, false
	}
	return int32(v), true
}

// configFingerprint hashes everything a checkpoint's validity depends
// on: the subscribed stage set, the Config knobs those stages read
// during the replay, and the trace's identity (generator seed and merge
// day — deliberately not the day count, since the trace growing more
// days between runs is the whole point of incremental resume). Knobs of
// stages outside the plan are excluded on purpose: e.g. rranalyze
// derives SizeDistDays from the trace length, and hashing it into a
// metrics-only run would spuriously invalidate every checkpoint the
// moment the trace grows. Two runs with equal fingerprints accumulate
// identical stage state day by day, so a checkpoint from one can seed
// the other. (The post-pass SVM evaluation re-runs from the community
// result on every run, resumed or not, so it constrains nothing.)
func configFingerprint(cfg Config, meta trace.Meta, stages []string) uint64 {
	has := map[string]bool{}
	for _, s := range stages {
		has[s] = true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "v1|stages=%v", stages)
	fmt.Fprintf(h, "|trace=%d,%d", meta.Seed, meta.MergeDay)
	if has[metricsStageName] {
		fmt.Fprintf(h, "|metrics=%d,%d,%d,%d,%d", cfg.MetricsEvery, cfg.PathEvery, cfg.PathSources, cfg.ClusteringSamples, cfg.Seed)
	}
	if has[evolutionStageName] {
		fmt.Fprintf(h, "|evolution=%+v", cfg.Evolution)
	}
	if has[alphaStageName] {
		fmt.Fprintf(h, "|alpha=%+v", cfg.Alpha)
	}
	if has[communityStageName] || has[sweepStageName] || has[usersStageName] {
		fmt.Fprintf(h, "|community=%+v", cfg.Community)
	}
	if has[sweepStageName] {
		fmt.Fprintf(h, "|deltas=%v", cfg.DeltaSweep)
	}
	if has[osnmergeStageName] {
		fmt.Fprintf(h, "|merge=%+v", cfg.Merge)
	}
	return h.Sum64()
}

// Fingerprint hashes cfg and the trace identity under the plan's stage
// set — the same stage-set-gated derivation the checkpoint plane uses
// (configFingerprint), exposed so the serving layer can build cache keys:
// two requests share a fingerprint exactly when their runs would
// accumulate identical state, so (fingerprint, trace day, figure id) is a
// sound cache identity. It hashes the plan's declared stage list
// (pre-gating), which can differ from a checkpoint header's subscribed
// set (e.g. the merge stage on a merge-free trace) — it identifies cache
// entries, not checkpoint files.
func (p *FigurePlan) Fingerprint(cfg Config, meta trace.Meta) uint64 {
	return configFingerprint(cfg.withDefaults(), meta, p.Stages())
}

// stageNames lists the subscribed stages in subscription order.
func stageNames(stages []engine.Stage) []string {
	out := make([]string, len(stages))
	for i, s := range stages {
		out[i] = s.Name()
	}
	return out
}

// ckptStages returns the subscribed stages that belong to the state
// plane: everything except the observational progress display, which
// must never gate resume compatibility — toggling a stderr progress line
// between runs is not a different computation. (A resumed run's progress
// counter therefore counts only the replayed delta.)
func (x *planExec) ckptStages() []engine.Stage {
	all := x.eng.Subscribed()
	out := all[:0]
	for _, s := range all {
		if _, observational := s.(*progressStage); !observational {
			out = append(out, s)
		}
	}
	return out
}

// armCheckpoints enables checkpoint writing on the instantiated run and
// records the fingerprint resume resolution matches against.
func (x *planExec) armCheckpoints() {
	cfg := x.rt.cfg
	if cfg.CheckpointDir == "" {
		return
	}
	x.ckptNames = stageNames(x.ckptStages())
	x.ckptHash = configFingerprint(cfg, x.rt.meta, x.ckptNames)
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = defaultCheckpointEvery
	}
	x.eng.EnableCheckpoints(every, x.writeCheckpoint)
}

// writeCheckpoint serializes the run at one day boundary: the shared
// state plus every subscribed stage's blob, written to a temp file and
// atomically renamed, so readers only ever see complete checkpoints.
func (x *planExec) writeCheckpoint(day int32, st *trace.State) error {
	stages := x.ckptStages()
	blobs := make([]checkpoint.StageBlob, 0, len(stages))
	for _, s := range stages {
		var buf bytes.Buffer
		if err := s.(engine.Checkpointer).SaveState(&buf); err != nil {
			return fmt.Errorf("stage %s: %w", s.Name(), err)
		}
		blobs = append(blobs, checkpoint.StageBlob{Name: s.Name(), Data: buf.Bytes()})
	}
	dir := x.rt.cfg.CheckpointDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, checkpointFileName(day))
	tmp, err := os.CreateTemp(dir, checkpointFileName(day)+".tmp*")
	if err != nil {
		return err
	}
	h := checkpoint.Header{Day: day, ConfigHash: x.ckptHash, Stages: x.ckptNames}
	if err := checkpoint.Write(tmp, h, st, blobs); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ckptCandidate is one resolvable checkpoint file.
type ckptCandidate struct {
	path string
	day  int32
}

// findCheckpoints resolves the checkpoints usable by this run — every
// checkpoint day <= maxDay whose header carries this run's exact stage
// set and config fingerprint — newest first. The caller restores the
// first that loads cleanly; unreadable candidates are skipped, never
// fatal. stale reports that a listed file vanished between the directory
// scan and the header probe — the signature of a concurrent writer
// rotating the directory (atomic rename over an existing name, or
// retention deleting old days) — so the caller knows a rescan may see a
// newer file than any candidate returned here.
func (x *planExec) findCheckpoints(maxDay int32) (cands []ckptCandidate, stale bool) {
	dir := x.rt.cfg.CheckpointDir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, false
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if d, ok := parseCheckpointDay(ent.Name()); ok && d <= maxDay {
			cands = append(cands, ckptCandidate{path: filepath.Join(dir, ent.Name()), day: d})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].day > cands[j].day })
	out := cands[:0]
	for _, c := range cands {
		ok, notExist := x.headerMatches(c.path)
		if notExist {
			stale = true
		}
		if ok {
			out = append(out, c)
		}
	}
	return out, stale
}

// headerMatches reports whether the checkpoint at path was written by a
// run with this run's stage set and fingerprint; notExist distinguishes a
// file that vanished mid-scan from one that exists but doesn't match.
func (x *planExec) headerMatches(path string) (ok, notExist bool) {
	f, err := os.Open(path)
	if err != nil {
		return false, errors.Is(err, fs.ErrNotExist)
	}
	defer f.Close()
	h, err := checkpoint.ReadHeader(f)
	if err != nil || h.ConfigHash != x.ckptHash || len(h.Stages) != len(x.ckptNames) {
		return false, false
	}
	for i, s := range h.Stages {
		if s != x.ckptNames[i] {
			return false, false
		}
	}
	return true, false
}

// ckptScanRetries bounds how many times a resume rescans a checkpoint
// directory that changed under it before settling for what it can read.
const ckptScanRetries = 3

// testCkptAfterScan, when non-nil, runs after each candidate scan and
// before any restore attempt — the regression tests' window for mutating
// the directory the way a concurrent writer would.
var testCkptAfterScan func(attempt int)

// resolveResume finds and restores the newest compatible checkpoint into
// a plan instantiation, returning the instantiation to run (with
// resumeState set on success, clean for a day-0 replay otherwise).
//
// The single-process assumption of the original resolution does not hold
// for a serving daemon: a refresh pass may atomically rename a new
// checkpoint over an existing day file, or retention may delete old days,
// between this run's directory scan and its open. An ENOENT there does
// not mean "no checkpoint" — it means the scan is stale, and settling for
// an older candidate (or day 0) would silently discard the incremental
// win. Instead the resolution rescans, bounded by ckptScanRetries; every
// other load failure keeps the original semantics (skip to the next older
// candidate, fall back to day 0). Each failed restore may leave stages
// half-loaded, so the instantiation is rebuilt before the next attempt.
func resolveResume(plan *FigurePlan, x *planExec, src trace.Source, meta trace.Meta, cfg Config) *planExec {
	for attempt := 0; ; attempt++ {
		cands, stale := x.findCheckpoints(meta.Days - 1)
		if testCkptAfterScan != nil {
			testCkptAfterScan(attempt)
		}
		rescan := false
		for _, cand := range cands {
			st, day, err := x.loadCheckpoint(src, cand.path)
			if err == nil {
				x.resumeState, x.resumeDay = st, day
				return x
			}
			x = plan.instantiate(cfg, meta)
			if errors.Is(err, fs.ErrNotExist) {
				// The candidate vanished after the scan: prefer a fresh
				// scan (which may surface a newer replacement) over
				// quietly resuming from an older day.
				rescan = true
				break
			}
		}
		if (!rescan && !stale) || attempt >= ckptScanRetries {
			return x
		}
	}
}

// loadCheckpoint reads the checkpoint at path, cross-checks it against
// the source, and restores every state-plane stage from its blob. On any
// error the stages may be partially restored — the caller discards the
// whole instantiation and falls back to a from-zero run.
func (x *planExec) loadCheckpoint(src trace.Source, path string) (*trace.State, int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	file, err := checkpoint.Read(f)
	if err != nil {
		return nil, 0, err
	}
	// Consistency probe: the restored graph must account for exactly the
	// events the trace holds through the checkpoint day (every event is
	// one node or one edge). This catches a trace regenerated with the
	// same seed but different generator knobs — identical fingerprint,
	// different stream — before it can silently serve stale results.
	if n, ok := trace.EventsThrough(src, file.Header.Day); ok {
		applied := int64(file.State.Graph.NumNodes()) + file.State.Graph.NumEdges()
		if n != applied {
			return nil, 0, fmt.Errorf("core: checkpoint day %d accounts for %d events, trace holds %d — not this trace's prefix", file.Header.Day, applied, n)
		}
	}
	stages := x.ckptStages()
	if len(file.Blobs) != len(stages) {
		return nil, 0, fmt.Errorf("core: checkpoint has %d stage blobs, run has %d stages", len(file.Blobs), len(stages))
	}
	for i, s := range stages {
		b := file.Blobs[i]
		if b.Name != s.Name() {
			return nil, 0, fmt.Errorf("core: checkpoint blob %d is %q, run stage is %q", i, b.Name, s.Name())
		}
		if err := s.(engine.Checkpointer).LoadState(bytes.NewReader(b.Data)); err != nil {
			return nil, 0, fmt.Errorf("core: restore stage %s: %w", s.Name(), err)
		}
	}
	return file.State, file.Header.Day, nil
}
