package core

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/community"
	"repro/internal/engine"
	"repro/internal/evolution"
	"repro/internal/metrics"
	"repro/internal/osnmerge"
	"repro/internal/trace"
)

// Checkpoint plumbing for the demand-driven pipeline: file naming, the
// compatibility fingerprint, writing at the engine's cadence hook, and
// resolving/restoring the latest usable checkpoint for a resume.

// defaultCheckpointEvery is the cadence used when CheckpointDir is set
// but CheckpointEvery is not.
const defaultCheckpointEvery = 90

// Stage-name aliases for fingerprint gating, bound to the registries'
// canonical constants so they cannot drift.
const (
	metricsStageName   = metrics.StageName
	evolutionStageName = evolution.StageName
	alphaStageName     = evolution.AlphaStageName
	communityStageName = community.StageName
	usersStageName     = community.UsersStageName
	sweepStageName     = community.SweepStageName
	osnmergeStageName  = osnmerge.StageName
)

const (
	checkpointPrefix = "checkpoint-"
	checkpointExt    = ".ckpt"
)

// checkpointFileName renders the canonical day-addressed file name.
func checkpointFileName(day int32) string {
	return fmt.Sprintf("%s%08d%s", checkpointPrefix, day, checkpointExt)
}

// parseCheckpointDay inverts checkpointFileName.
func parseCheckpointDay(name string) (int32, bool) {
	if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointExt) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), checkpointExt)
	v, err := strconv.ParseInt(mid, 10, 32)
	if err != nil || v < 0 {
		return 0, false
	}
	return int32(v), true
}

// configFingerprint hashes everything a checkpoint's validity depends
// on: the subscribed stage set, the Config knobs those stages read
// during the replay, and the trace's identity (generator seed and merge
// day — deliberately not the day count, since the trace growing more
// days between runs is the whole point of incremental resume). Knobs of
// stages outside the plan are excluded on purpose: e.g. rranalyze
// derives SizeDistDays from the trace length, and hashing it into a
// metrics-only run would spuriously invalidate every checkpoint the
// moment the trace grows. Two runs with equal fingerprints accumulate
// identical stage state day by day, so a checkpoint from one can seed
// the other. (The post-pass SVM evaluation re-runs from the community
// result on every run, resumed or not, so it constrains nothing.)
func configFingerprint(cfg Config, meta trace.Meta, stages []string) uint64 {
	has := map[string]bool{}
	for _, s := range stages {
		has[s] = true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "v1|stages=%v", stages)
	fmt.Fprintf(h, "|trace=%d,%d", meta.Seed, meta.MergeDay)
	if has[metricsStageName] {
		fmt.Fprintf(h, "|metrics=%d,%d,%d,%d,%d", cfg.MetricsEvery, cfg.PathEvery, cfg.PathSources, cfg.ClusteringSamples, cfg.Seed)
	}
	if has[evolutionStageName] {
		fmt.Fprintf(h, "|evolution=%+v", cfg.Evolution)
	}
	if has[alphaStageName] {
		fmt.Fprintf(h, "|alpha=%+v", cfg.Alpha)
	}
	if has[communityStageName] || has[sweepStageName] || has[usersStageName] {
		fmt.Fprintf(h, "|community=%+v", cfg.Community)
	}
	if has[sweepStageName] {
		fmt.Fprintf(h, "|deltas=%v", cfg.DeltaSweep)
	}
	if has[osnmergeStageName] {
		fmt.Fprintf(h, "|merge=%+v", cfg.Merge)
	}
	return h.Sum64()
}

// stageNames lists the subscribed stages in subscription order.
func stageNames(stages []engine.Stage) []string {
	out := make([]string, len(stages))
	for i, s := range stages {
		out[i] = s.Name()
	}
	return out
}

// ckptStages returns the subscribed stages that belong to the state
// plane: everything except the observational progress display, which
// must never gate resume compatibility — toggling a stderr progress line
// between runs is not a different computation. (A resumed run's progress
// counter therefore counts only the replayed delta.)
func (x *planExec) ckptStages() []engine.Stage {
	all := x.eng.Subscribed()
	out := all[:0]
	for _, s := range all {
		if _, observational := s.(*progressStage); !observational {
			out = append(out, s)
		}
	}
	return out
}

// armCheckpoints enables checkpoint writing on the instantiated run and
// records the fingerprint resume resolution matches against.
func (x *planExec) armCheckpoints() {
	cfg := x.rt.cfg
	if cfg.CheckpointDir == "" {
		return
	}
	x.ckptNames = stageNames(x.ckptStages())
	x.ckptHash = configFingerprint(cfg, x.rt.meta, x.ckptNames)
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = defaultCheckpointEvery
	}
	x.eng.EnableCheckpoints(every, x.writeCheckpoint)
}

// writeCheckpoint serializes the run at one day boundary: the shared
// state plus every subscribed stage's blob, written to a temp file and
// atomically renamed, so readers only ever see complete checkpoints.
func (x *planExec) writeCheckpoint(day int32, st *trace.State) error {
	stages := x.ckptStages()
	blobs := make([]checkpoint.StageBlob, 0, len(stages))
	for _, s := range stages {
		var buf bytes.Buffer
		if err := s.(engine.Checkpointer).SaveState(&buf); err != nil {
			return fmt.Errorf("stage %s: %w", s.Name(), err)
		}
		blobs = append(blobs, checkpoint.StageBlob{Name: s.Name(), Data: buf.Bytes()})
	}
	dir := x.rt.cfg.CheckpointDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, checkpointFileName(day))
	tmp, err := os.CreateTemp(dir, checkpointFileName(day)+".tmp*")
	if err != nil {
		return err
	}
	h := checkpoint.Header{Day: day, ConfigHash: x.ckptHash, Stages: x.ckptNames}
	if err := checkpoint.Write(tmp, h, st, blobs); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ckptCandidate is one resolvable checkpoint file.
type ckptCandidate struct {
	path string
	day  int32
}

// findCheckpoints resolves the checkpoints usable by this run — every
// checkpoint day <= maxDay whose header carries this run's exact stage
// set and config fingerprint — newest first. The caller restores the
// first that loads cleanly; unreadable candidates are skipped, never
// fatal.
func (x *planExec) findCheckpoints(maxDay int32) []ckptCandidate {
	dir := x.rt.cfg.CheckpointDir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var cands []ckptCandidate
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if d, ok := parseCheckpointDay(ent.Name()); ok && d <= maxDay {
			cands = append(cands, ckptCandidate{path: filepath.Join(dir, ent.Name()), day: d})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].day > cands[j].day })
	out := cands[:0]
	for _, c := range cands {
		if x.headerMatches(c.path) {
			out = append(out, c)
		}
	}
	return out
}

// headerMatches reports whether the checkpoint at path was written by a
// run with this run's stage set and fingerprint.
func (x *planExec) headerMatches(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	h, err := checkpoint.ReadHeader(f)
	if err != nil || h.ConfigHash != x.ckptHash || len(h.Stages) != len(x.ckptNames) {
		return false
	}
	for i, s := range h.Stages {
		if s != x.ckptNames[i] {
			return false
		}
	}
	return true
}

// loadCheckpoint reads the checkpoint at path, cross-checks it against
// the source, and restores every state-plane stage from its blob. On any
// error the stages may be partially restored — the caller discards the
// whole instantiation and falls back to a from-zero run.
func (x *planExec) loadCheckpoint(src trace.Source, path string) (*trace.State, int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	file, err := checkpoint.Read(f)
	if err != nil {
		return nil, 0, err
	}
	// Consistency probe: the restored graph must account for exactly the
	// events the trace holds through the checkpoint day (every event is
	// one node or one edge). This catches a trace regenerated with the
	// same seed but different generator knobs — identical fingerprint,
	// different stream — before it can silently serve stale results.
	if n, ok := trace.EventsThrough(src, file.Header.Day); ok {
		applied := int64(file.State.Graph.NumNodes()) + file.State.Graph.NumEdges()
		if n != applied {
			return nil, 0, fmt.Errorf("core: checkpoint day %d accounts for %d events, trace holds %d — not this trace's prefix", file.Header.Day, applied, n)
		}
	}
	stages := x.ckptStages()
	if len(file.Blobs) != len(stages) {
		return nil, 0, fmt.Errorf("core: checkpoint has %d stage blobs, run has %d stages", len(file.Blobs), len(stages))
	}
	for i, s := range stages {
		b := file.Blobs[i]
		if b.Name != s.Name() {
			return nil, 0, fmt.Errorf("core: checkpoint blob %d is %q, run stage is %q", i, b.Name, s.Name())
		}
		if err := s.(engine.Checkpointer).LoadState(bytes.NewReader(b.Data)); err != nil {
			return nil, 0, fmt.Errorf("core: restore stage %s: %w", s.Name(), err)
		}
	}
	return file.State, file.Header.Day, nil
}
