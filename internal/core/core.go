// Package core is the paper's contribution assembled as a library: the
// multi-scale analysis pipeline. Given a dynamic-network trace it runs the
// network-level (§2), node-level (§3), community-level (§4), and
// network-merge (§5) analyses, and exposes every figure of the paper's
// evaluation as a data table (see figures.go and DESIGN.md's experiment
// index).
package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/community"
	"repro/internal/evolution"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/osnmerge"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Config selects and parameterizes the pipeline stages.
type Config struct {
	// MetricsEvery is the cadence (days) of degree/clustering/
	// assortativity measurements; PathEvery of sampled path length
	// (the paper computes path length every 3 days with 1000 sources;
	// the scaled defaults are 3 and 9/100).
	MetricsEvery int32
	PathEvery    int32
	// PathSources is the number of BFS sources for path length.
	PathSources int
	// ClusteringSamples is the node sample size for average clustering.
	ClusteringSamples int

	// Evolution and Alpha parameterize the §3 analyses.
	Evolution evolution.Options
	Alpha     evolution.AlphaOptions

	// Community parameterizes the §4 pipeline; DeltaSweep lists the δ
	// values for Fig 4 (empty = skip the sweep).
	Community  community.Options
	DeltaSweep []float64

	// Merge parameterizes the §5 analysis.
	Merge osnmerge.Options

	// Stage toggles, for cheap partial runs.
	//
	// Deprecated: the planner subsumes these coarse booleans — build a
	// plan with Plan(cfg, figures...) and execute it with RunPlan (or call
	// RunFigures) to run exactly the stages a set of panels needs. The
	// toggles remain as shims: Run and RunSource translate them into a
	// plan (skipping "community" also drops the users, svm, and sweep
	// stages that historically rode on that toggle), and an explicit
	// figure request to Plan overrides them entirely.
	SkipMetrics   bool
	SkipEvolution bool
	SkipCommunity bool
	SkipMerge     bool

	// Seed for sampled metrics.
	Seed int64

	// Workers bounds the run's concurrency: the worker pool the δ-sweep
	// and SVM evaluation fan out on, the engine's parallel shared pass
	// (decode-ahead reader plus per-day stage overlap), and the kernel
	// fan-outs (parallel Louvain prepare, sampled-BFS sources) all size
	// themselves by it. <= 0 selects GOMAXPROCS; 1 forces the fully
	// sequential pass. It is a throughput knob, never a result knob:
	// every figure is bit-identical at any setting
	// (TestParallelWorkersMatch), and Workers is deliberately excluded
	// from the checkpoint fingerprint, so checkpoints written at one
	// worker count resume at any other.
	Workers int

	// OnProgress, when non-nil, is invoked at every day boundary of the
	// shared streaming pass with the finished day and the cumulative
	// number of events applied. Since the δ-sweep also rides the shared
	// pass, this observes the whole run's replay. It must not block: it
	// runs on the replay's goroutine.
	OnProgress func(day int32, events int64)

	// CheckpointDir enables the checkpointed state plane (DESIGN.md §6):
	// when non-empty, RunPlan writes a checkpoint of the shared state and
	// every streaming stage's accumulators into this directory every
	// CheckpointEvery days at the engine's Sync barrier, plus one at the
	// last replayed day — the end-of-run checkpoint an incremental
	// workflow resumes from after the trace gains days.
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in days; <= 0 defaults to
	// 90 when CheckpointDir is set.
	CheckpointEvery int32
	// CheckpointFullEvery is the tiered-storage cadence: of every N
	// checkpoints, the first is a full container and the following N-1
	// are deltas against their predecessor — changed stage blobs plus
	// the appended graph ranges only. <= 1 writes only full checkpoints
	// (the historic behavior). Like every storage knob it is excluded
	// from the compatibility fingerprint: full and delta checkpoints of
	// the same run interoperate freely.
	CheckpointFullEvery int
	// CheckpointKeep bounds retention: after each checkpoint write, all
	// but the newest N full checkpoints under this run's fingerprint
	// (plus the deltas chained above the oldest kept full) are deleted
	// from the backend. <= 0 keeps everything. Checkpoints written under
	// other fingerprints are never touched.
	CheckpointKeep int
	// CheckpointBackend overrides where checkpoints are written and
	// resolved from; nil uses a DirBackend rooted at CheckpointDir. An
	// explicit backend makes CheckpointDir optional.
	CheckpointBackend storage.Backend
	// CheckpointObserver, when non-nil, is invoked after every
	// successful checkpoint write with the written object's stats — the
	// serving daemon's /statz storage section hangs off it. Called on
	// the replay goroutine; it must not block.
	CheckpointObserver func(CheckpointStat)
	// Resume makes RunPlan restore the latest compatible checkpoint in
	// CheckpointDir — same stage set and config fingerprint, checkpoint
	// day within the trace — and replay only the days after it. Any
	// mismatch (different knobs, different stage plan, corrupt or
	// truncated file) falls back cleanly to a from-zero replay; resumed
	// or not, the figure tables are bit-identical
	// (TestResumeMatchesFromZero).
	Resume bool
}

// DefaultConfig mirrors the paper's parameters at the scaled sizes.
func DefaultConfig() Config {
	cm := community.DefaultOptions()
	return Config{
		MetricsEvery:      3,
		PathEvery:         9,
		PathSources:       100,
		ClusteringSamples: 1000,
		Evolution:         evolution.DefaultOptions(),
		Alpha:             evolution.AlphaOptions{Interval: 5000, MinEdges: 10000, PolyDegree: 5},
		Community:         cm,
		Merge:             osnmerge.DefaultOptions(),
		Seed:              1,
	}
}

// ParseDeltaSweep parses a comma-separated δ list — the textual form of
// Config.DeltaSweep used by the CLIs' -deltas flags. The values are
// Louvain modularity-gain thresholds, so each must be a positive finite
// number; duplicates are rejected too (a repeated δ would silently run
// the same detection twice and emit duplicate Fig 4 series).
func ParseDeltaSweep(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("empty δ list")
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad δ value %q: %v", f, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return nil, fmt.Errorf("δ value %q out of range: must be a positive finite threshold", f)
		}
		for _, prev := range out {
			if prev == v {
				return nil, fmt.Errorf("duplicate δ value %v", v)
			}
		}
		out = append(out, v)
	}
	return out, nil
}

// GrowthDay is one day of the Fig 1a/1b series.
type GrowthDay = metrics.GrowthDay

// DeltaRun is one δ value's community pipeline outcome (Fig 4).
type DeltaRun struct {
	Delta float64
	Stats []community.SnapshotStat
	// SizeDist is the community size distribution at the sweep's
	// distribution day.
	SizeDist []int
}

// MergeAccuracy is the overall Fig 6b merge-prediction evaluation: held-out
// accuracy over N samples, split by class. It is a named type (not an
// anonymous struct) so callers can carry it through their own signatures.
type MergeAccuracy struct {
	PosAccuracy, NegAccuracy, Accuracy float64
	N                                  int
}

// Result is the full multi-scale analysis output.
type Result struct {
	Meta trace.Meta

	Growth  []GrowthDay
	Metrics []metrics.Snapshot

	Evolution *evolution.Result
	Alpha     *evolution.AlphaResult

	Community *community.Result
	Users     *community.UserImpact
	// MergeBins and MergeOverall are the Fig 6b evaluation.
	MergeBins    []community.AgeBinAccuracy
	MergeOverall MergeAccuracy
	DeltaSweep   []DeltaRun

	Merge *osnmerge.Result

	// ResumedFromDay is the checkpoint day this run resumed from, or -1
	// when it replayed from day 0 (no checkpointing, no compatible
	// checkpoint, or Config.Resume unset).
	ResumedFromDay int32

	// tables is the keyed figure store: panels pre-emitted by a
	// demand-driven run (RunPlan/RunFigures) or by Seal, served by Figure
	// without re-emitting. tableErrs is its error side, filled by Seal so
	// a sealed Result never runs an emitter (see Seal's concurrency
	// contract).
	tables    map[string]*Table
	tableErrs map[string]error
}

// ErrEmptyTrace is returned for traces with no events.
var ErrEmptyTrace = errors.New("core: empty trace")

// withDefaults fills the paper's scaled defaults into zero-valued knobs.
func (cfg Config) withDefaults() Config {
	if cfg.MetricsEvery <= 0 {
		cfg.MetricsEvery = 3
	}
	if cfg.PathEvery <= 0 {
		cfg.PathEvery = 9
	}
	if cfg.PathSources <= 0 {
		cfg.PathSources = 100
	}
	if cfg.ClusteringSamples <= 0 {
		cfg.ClusteringSamples = 1000
	}
	return cfg
}

// applyMergePrediction trains and evaluates the Fig 6b SVM merge predictor
// over a community result and copies the outcome into res. Evaluation
// errors (e.g. a dataset too small to split) leave the result fields empty;
// the figure then reports ErrStageSkipped, matching the pipeline's historic
// behavior.
func applyMergePrediction(res *Result, cr *community.Result, mergeDay int32, seed int64) {
	ds := community.BuildMergeDataset(cr, mergeDay)
	bins, overall, err := community.EvaluateMergePrediction(ds, 10, svmOptions(seed))
	if err != nil {
		return
	}
	res.MergeBins = bins
	res.MergeOverall = MergeAccuracy{
		PosAccuracy: overall.PosAccuracy,
		NegAccuracy: overall.NegAccuracy,
		Accuracy:    overall.Accuracy,
		N:           overall.N,
	}
}

// Run executes the configured pipeline stages over the trace on the
// streaming engine: every stage — the δ-sweep included — subscribes to
// one shared replay pass. The sweep's per-δ detectors run against frozen
// snapshots of the shared graph on a bounded worker pool, and the SVM
// merge-prediction evaluation joins that pool after the pass. The result
// is identical to RunBatch's (the equivalence is enforced by
// TestEngineMatchesBatch); only the pass structure differs.
//
// Run translates the deprecated Skip* toggles into a plan; demand-driven
// callers should use Plan/RunPlan (or RunFigures) instead, which also
// accept a context for cancellation.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	if len(tr.Events) == 0 {
		return nil, ErrEmptyTrace
	}
	return runPlan(nil, trace.SliceSource(tr.Events), tr.Meta, cfg, planFromConfig(cfg))
}

// RunSource is Run over a re-openable event source — the out-of-core
// entry point. With a disk-backed trace.FileSource the only O(events)
// artifact is the file itself: the single shared pass opens one cursor
// (the δ-sweep no longer opens its own), so resident memory is the live
// trace.State plus per-stage accumulators — O(state) with exactly one
// live graph regardless of how many δ values sweep (asserted by the
// replay-memory and delta-sweep benchmarks). The source's Meta gates
// the merge stage and sizes the state, exactly as a Trace's Meta does.
//
// Like Run, this is a Skip*-translating shim over RunPlan.
func RunSource(src trace.MetaSource, cfg Config) (*Result, error) {
	return RunPlan(nil, src, cfg, nil)
}

// RunBatch executes the same pipeline through the per-analysis batch entry
// points: each stage replays the trace independently (8+ passes on a full
// configuration). It is kept as the reference implementation the streaming
// engine is tested against, and as a fallback when per-stage isolation is
// worth more than speed.
func RunBatch(tr *trace.Trace, cfg Config) (*Result, error) {
	if len(tr.Events) == 0 {
		return nil, ErrEmptyTrace
	}
	return runBatchSource(trace.SliceSource(tr.Events), tr.Meta, cfg)
}

// RunBatchSource is RunBatch over a re-openable event source: every
// analysis re-opens the source for a private pass (8+ passes on a full
// configuration), trading passes for per-stage isolation exactly like
// RunBatch does.
func RunBatchSource(src trace.MetaSource, cfg Config) (*Result, error) {
	meta := src.Meta()
	if meta.Nodes == 0 && meta.Edges == 0 {
		return nil, ErrEmptyTrace
	}
	return runBatchSource(src, meta, cfg)
}

// runBatchSource is the batch-path implementation shared by RunBatch and
// RunBatchSource.
func runBatchSource(src trace.Source, meta trace.Meta, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Meta: meta, ResumedFromDay: -1}

	if !cfg.SkipMetrics {
		if err := runMetrics(src, cfg, res); err != nil {
			return nil, err
		}
	}
	if !cfg.SkipEvolution {
		ev, err := evolution.AnalyzeSource(src, cfg.Evolution)
		if err != nil {
			return nil, fmt.Errorf("core: evolution: %w", err)
		}
		res.Evolution = ev
		al, err := evolution.AnalyzeAlphaSource(src, cfg.Alpha)
		if err != nil {
			return nil, fmt.Errorf("core: alpha: %w", err)
		}
		res.Alpha = al
	}
	if !cfg.SkipCommunity {
		cr, err := community.RunSource(src, cfg.Community)
		if err != nil {
			return nil, fmt.Errorf("core: community: %w", err)
		}
		res.Community = cr
		ui, err := community.AnalyzeUsersSource(src, cr, nil)
		if err != nil {
			return nil, fmt.Errorf("core: users: %w", err)
		}
		res.Users = ui
		applyMergePrediction(res, cr, meta.MergeDay, cfg.Seed)
		for _, d := range cfg.DeltaSweep {
			opt := cfg.Community
			opt.Delta = d
			dr, err := community.RunSource(src, opt)
			if err != nil {
				return nil, fmt.Errorf("core: delta sweep δ=%v: %w", d, err)
			}
			run := DeltaRun{Delta: d, Stats: dr.Stats}
			if len(opt.SizeDistDays) > 0 {
				run.SizeDist = dr.SizeDists[opt.SizeDistDays[len(opt.SizeDistDays)-1]]
			}
			res.DeltaSweep = append(res.DeltaSweep, run)
		}
	}
	if !cfg.SkipMerge && meta.MergeDay >= 0 {
		mr, err := osnmerge.AnalyzeSource(src, meta.MergeDay, cfg.Merge)
		if err != nil {
			return nil, fmt.Errorf("core: merge: %w", err)
		}
		res.Merge = mr
	}
	return res, nil
}

// runMetrics computes the Fig 1 series in one replay pass of its own,
// independent of the streaming metrics.Stage, so the batch reference path
// stays a genuinely separate implementation.
func runMetrics(src trace.Source, cfg Config, res *Result) error {
	rng := stats.NewRand(cfg.Seed)
	var prevNodes, prevEdges int64
	var addedNodes, addedEdges int64
	_, err := trace.ReplaySource(src, trace.Hooks{
		OnEvent: func(st *trace.State, ev trace.Event) {
			switch ev.Kind {
			case trace.AddNode:
				addedNodes++
			case trace.AddEdge:
				addedEdges++
			}
		},
		OnDayEnd: func(st *trace.State, day int32) {
			g := st.Graph
			nodes, edges := int64(g.NumNodes()), g.NumEdges()
			gd := GrowthDay{
				Day:        day,
				NodesAdded: addedNodes,
				EdgesAdded: addedEdges,
				Nodes:      nodes,
				Edges:      edges,
			}
			if prevNodes > 0 {
				gd.NodeGrowthPct = 100 * float64(addedNodes) / float64(prevNodes)
			}
			if prevEdges > 0 {
				gd.EdgeGrowthPct = 100 * float64(addedEdges) / float64(prevEdges)
			}
			res.Growth = append(res.Growth, gd)
			prevNodes, prevEdges = nodes, edges
			addedNodes, addedEdges = 0, 0

			if day%cfg.MetricsEvery == 0 && nodes > 0 {
				snap := metrics.Snapshot{
					Day:        day,
					Nodes:      nodes,
					Edges:      edges,
					AvgDegree:  metrics.AverageDegree(g),
					Clustering: metrics.SampledClustering(g, cfg.ClusteringSamples, rng),
					Assort:     metrics.Assortativity(g),
				}
				if day%cfg.PathEvery == 0 {
					if pl, err := metrics.SampledPathLength(g, cfg.PathSources, rng); err == nil {
						snap.PathLength = pl
					}
				}
				res.Metrics = append(res.Metrics, snap)
			}
		},
	})
	return err
}

// GenerateAndRun generates a trace from the given generator config and runs
// the pipeline on it — the one-call entry point used by the examples.
func GenerateAndRun(gcfg gen.Config, cfg Config) (*trace.Trace, *Result, error) {
	tr, err := gen.Generate(gcfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := Run(tr, cfg)
	if err != nil {
		return nil, nil, err
	}
	return tr, res, nil
}
