package louvain

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/stats"
)

// randomGraph builds a random graph with n nodes and ~e edges.
func randomGraph(n, e int, rng interface{ Intn(int) int }) *graph.Graph {
	g := graph.New(n)
	g.EnsureNode(graph.NodeID(n - 1))
	for i := 0; i < e; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return g
}

// TestModularityBounds: Q of any partition lies in [-1, 1].
func TestModularityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRand(seed)
		n := 3 + rng.Intn(30)
		g := randomGraph(n, 3*n, rng)
		comm := make([]int32, n)
		k := 1 + rng.Intn(n)
		for i := range comm {
			comm[i] = int32(rng.Intn(k))
		}
		q := Modularity(g, comm)
		return q >= -1.000001 && q <= 1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRunImprovesOnSingletons: Louvain's result is never worse than the
// all-singletons partition it starts from.
func TestRunImprovesOnSingletons(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRand(seed)
		n := 3 + rng.Intn(40)
		g := randomGraph(n, 2*n, rng)
		res, err := Run(g, Options{Delta: 1e-6, Seed: seed})
		if err != nil {
			return false
		}
		singletons := make([]int32, n)
		for i := range singletons {
			singletons[i] = int32(i)
		}
		return res.Modularity >= Modularity(g, singletons)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionIsTotal: every node receives exactly one dense label.
func TestPartitionIsTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRand(seed)
		n := 1 + rng.Intn(40)
		g := randomGraph(n, 2*n, rng)
		res, err := Run(g, Options{Seed: seed})
		if err != nil || len(res.Community) != n {
			return false
		}
		nc := int32(res.NumCommunities())
		for _, c := range res.Community {
			if c < 0 || c >= nc {
				return false
			}
		}
		// Labels dense: each label in [0, nc) appears at least once.
		seen := make([]bool, nc)
		for _, c := range res.Community {
			seen[c] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalNeverCrashesOnGrowth simulates the pipeline pattern:
// partitions seed the next run as the graph grows.
func TestIncrementalNeverCrashesOnGrowth(t *testing.T) {
	rng := stats.NewRand(33)
	g := graph.New(0)
	var prev []int32
	for step := 0; step < 10; step++ {
		for i := 0; i < 15; i++ {
			g.AddNode()
		}
		n := g.NumNodes()
		for i := 0; i < 25; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		init := make([]int32, n)
		for i := range init {
			if i < len(prev) {
				init[i] = prev[i]
			} else {
				init[i] = -1
			}
		}
		if prev == nil {
			init = nil
		}
		res, err := Run(g, Options{Delta: 0.04, MaxLevels: 1, Seed: 1, Init: init})
		if err != nil {
			t.Fatal(err)
		}
		prev = res.Community
	}
}
