// Package louvain implements the Louvain community-detection algorithm
// (Blondel et al. 2008) with the two features the paper relies on in §4.1:
//
//   - a modularity-gain threshold δ that stops optimization once the
//     improvement of a sweep falls below it — the knob whose sensitivity the
//     paper analyzes in Fig 4; and
//   - an incremental mode, where the partition found on the previous
//     snapshot seeds the initial community assignment for the next one,
//     giving communities an explicit identity tie across snapshots.
//
// The implementation is the standard two-phase scheme: local moving of
// nodes until the modularity gain of a sweep drops below δ, then
// aggregation of communities into a weighted super-graph, repeated until no
// level improves modularity by more than δ.
package louvain

import (
	"errors"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Options configures a Louvain run.
type Options struct {
	// Delta is the modularity-gain threshold δ: a local-moving sweep (and
	// a whole level) stops when it improves modularity by less than this.
	Delta float64
	// MaxLevels bounds the number of aggregation levels (0 = default 32).
	MaxLevels int
	// Seed drives the node-visiting order shuffle.
	Seed int64
	// Init optionally assigns each node an initial community label
	// (incremental mode). Labels need not be dense. A label of -1 puts
	// the node in its own singleton community. nil means all singletons.
	Init []int32
}

// Result is the output of a Louvain run.
type Result struct {
	// Community[u] is the final community label of node u. Labels are
	// dense in [0, NumCommunities).
	Community []int32
	// Modularity of the final partition on the input graph.
	Modularity float64
	// Levels actually performed.
	Levels int
}

// NumCommunities returns the number of distinct final communities.
func (r *Result) NumCommunities() int {
	max := int32(-1)
	for _, c := range r.Community {
		if c > max {
			max = c
		}
	}
	return int(max + 1)
}

// Groups returns the member lists of each community, indexed by label.
func (r *Result) Groups() [][]graph.NodeID {
	out := make([][]graph.NodeID, r.NumCommunities())
	for u, c := range r.Community {
		out[c] = append(out[c], graph.NodeID(u))
	}
	return out
}

// wgraph is a weighted multigraph. It has two storage forms:
//
//   - Level 0 (the input graph, all weights exactly 1): a compact CSR —
//     off/tgt — with no self loops. A million-node snapshot costs two flat
//     arrays instead of a million small maps, which used to be the single
//     largest item on the replay heap.
//   - Aggregation levels (a few thousand super-nodes with fractional
//     weights): neighbor->weight maps, as before.
//
// Every weight in either form is a multiple of 0.5, which float64
// represents exactly, so sums are independent of accumulation order and
// the two forms produce bit-identical modularity and move decisions.
type wgraph struct {
	n int
	// Level-0 CSR form (off != nil): unit weights, no self loops.
	off []int64
	tgt []int32
	// Aggregated map form.
	adj  []map[int32]float64 // neighbor -> weight, excluding self loops
	self []float64           // self-loop weight (intra-community weight)
	deg  []float64           // weighted degree incl. 2*self

	total float64 // 2m: sum of all degrees
}

// degree returns u's weighted degree in either storage form.
func (w *wgraph) degree(u int32) float64 {
	if w.off != nil {
		return float64(w.off[u+1] - w.off[u])
	}
	return w.deg[u]
}

// selfWeight returns u's self-loop weight (always 0 at level 0).
func (w *wgraph) selfWeight(u int32) float64 {
	if w.off != nil {
		return 0
	}
	return w.self[u]
}

func newWGraphFromGraph(g graph.View) *wgraph {
	// A Frozen snapshot already *is* the level-0 CSR — same offsets/targets
	// layout, same insertion order, simple graph with unit weights and no
	// self loops — so alias its columns instead of copying them. The
	// wgraph never mutates off/tgt (aggregation levels derive fresh
	// super-graphs), and the result is bit-identical by construction: the
	// arrays are the same ones a copy would have reproduced. This removes
	// the single largest per-snapshot allocation of the δ-sweep.
	if f, ok := g.(*graph.Frozen); ok {
		off, tgt := f.CSR()
		return &wgraph{n: f.NumNodes(), off: off, tgt: tgt, total: float64(off[len(off)-1])}
	}
	n := g.NumNodes()
	w := &wgraph{n: n, off: make([]int64, n+1)}
	for u := 0; u < n; u++ {
		w.off[u+1] = w.off[u] + int64(g.Degree(graph.NodeID(u)))
	}
	tgt := make([]graph.NodeID, 0, w.off[n])
	for u := 0; u < n; u++ {
		tgt = g.AppendNeighbors(tgt, graph.NodeID(u))
	}
	w.tgt = tgt
	w.total = float64(w.off[n])
	return w
}

// modularity computes Q for the given community assignment over w. It uses
// dense arrays indexed by label so summation order (and therefore floating-
// point rounding) is deterministic.
func (w *wgraph) modularity(comm []int32) float64 {
	if w.total == 0 {
		return 0
	}
	nc := maxLabel(comm) + 1
	in := make([]float64, nc)  // 2 * intra-community weight
	tot := make([]float64, nc) // degree mass per community
	for u := 0; u < w.n; u++ {
		c := comm[u]
		tot[c] += w.degree(int32(u))
		if w.off != nil {
			for i := w.off[u]; i < w.off[u+1]; i++ {
				if comm[w.tgt[i]] == c {
					in[c]++ // unit weight, counted from both sides → totals 2w
				}
			}
			continue
		}
		in[c] += 2 * w.self[u]
		for v, wt := range w.adj[u] {
			if comm[v] == c {
				in[c] += wt // counted from both sides → totals 2w
			}
		}
	}
	var q float64
	for c := int32(0); c < nc; c++ {
		q += in[c]/w.total - (tot[c]/w.total)*(tot[c]/w.total)
	}
	return q
}

// ErrInitLength is returned when Options.Init has the wrong length.
var ErrInitLength = errors.New("louvain: init assignment length mismatch")

// Prepared is a Louvain-ready weighted view of a graph: the level-0
// weighted adjacency built once by Prepare and read, never written, by
// RunPrepared. It exists for two reasons. First, a single run needs the
// base weighted graph twice — for optimization and for the final
// modularity — and Prepared makes that one build instead of two. Second,
// it is safe to share between any number of concurrent RunPrepared calls,
// so the δ-sweep builds one Prepared per frozen snapshot and every per-δ
// worker reuses it, instead of K workers re-deriving identical weighted
// graphs.
type Prepared struct {
	w *wgraph
}

// Prepare builds the shared weighted view of g. The result is immutable
// and unaffected by later growth of g's underlying graph.
func Prepare(g graph.View) *Prepared {
	return &Prepared{w: newWGraphFromGraph(g)}
}

// NumNodes returns the node count at Prepare time.
func (p *Prepared) NumNodes() int { return p.w.n }

// Run performs Louvain community detection on g. It only reads the graph,
// so g may be the live replay graph or an immutable graph.Frozen snapshot
// shared with other concurrent runs (the δ-sweep's fan-out).
func Run(g graph.View, opt Options) (*Result, error) {
	return RunPrepared(Prepare(g), opt)
}

// RunPrepared is Run over a pre-built weighted view, bit-identical to Run
// on the graph Prepare saw: the level-0 weighted graph is a pure function
// of the adjacency, optimization never mutates it (aggregation levels
// derive fresh super-graphs), and level-0 weights are unit so summation
// order cannot perturb the floats.
func RunPrepared(p *Prepared, opt Options) (*Result, error) {
	n := p.w.n
	if opt.Init != nil && len(opt.Init) != n {
		return nil, ErrInitLength
	}
	if opt.Delta <= 0 {
		opt.Delta = 1e-6
	}
	maxLevels := opt.MaxLevels
	if maxLevels <= 0 {
		maxLevels = 32
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// final[u] tracks each original node's community through the levels.
	final := make([]int32, n)
	w := p.w

	// Level-0 initial assignment: Init labels densified, or singletons.
	var init []int32
	if opt.Init != nil {
		init = densify(opt.Init)
	}

	// The level loop embodies the paper's δ semantics: aggregation
	// continues only while a level improves modularity by at least δ.
	// A large δ therefore terminates early with finer communities; a
	// small δ aggregates toward the resolution limit.
	levels := 0
	prevQ := 0.0
	for level := 0; level < maxLevels; level++ {
		comm := localMove(w, init, opt.Delta, rng)
		init = nil // only the first level is seeded
		dense := densify(comm)
		q := w.modularity(dense)
		if level > 0 && q-prevQ < opt.Delta {
			break // this level is not worth δ; discard it
		}
		levels++
		prevQ = q

		// Fold this level's assignment into the original-node mapping.
		if level == 0 {
			copy(final, dense)
		} else {
			for u := range final {
				final[u] = dense[final[u]]
			}
		}

		nc := maxLabel(dense) + 1
		if int(nc) == w.n {
			break // nothing was merged; converged
		}
		w = w.aggregate(dense, int(nc))
	}

	res := &Result{Community: densify(final), Levels: levels}
	res.Modularity = p.w.modularity(res.Community)
	return res, nil
}

// Modularity computes the modularity of an arbitrary assignment on g,
// exported for δ-sensitivity analyses (Fig 4a).
func Modularity(g graph.View, comm []int32) float64 {
	if len(comm) != g.NumNodes() {
		return 0
	}
	return newWGraphFromGraph(g).modularity(comm)
}

// localMove runs the phase-1 sweeps on w starting from init (nil =
// singletons, -1 entries = singleton) until a sweep gains less than delta.
func localMove(w *wgraph, init []int32, delta float64, rng *rand.Rand) []int32 {
	comm := make([]int32, w.n)
	if init == nil {
		for i := range comm {
			comm[i] = int32(i)
		}
	} else {
		next := maxLabel(init) + 1
		for i, c := range init {
			if c < 0 {
				comm[i] = next
				next++
			} else {
				comm[i] = c
			}
		}
	}

	// Community aggregates.
	tot := make(map[int32]float64, w.n)
	for u := 0; u < w.n; u++ {
		tot[comm[u]] += w.degree(int32(u))
	}

	order := rng.Perm(w.n)
	m2 := w.total
	if m2 == 0 {
		return comm
	}
	// links and keys are hoisted out of the node loop and wiped between
	// nodes (a delete per touched key, not a rebuild) — the sweep visits
	// every node every pass, so a fresh map per node dominated the
	// allocation profile of large runs.
	links := make(map[int32]float64, 64)
	var keysBuf []int32

	prevQ := w.modularity(comm)
	for sweep := 0; sweep < 128; sweep++ {
		moved := false
		for _, ui := range order {
			u := int32(ui)
			cu := comm[u]
			// Weights from u to each neighboring community, visited in
			// sorted label order so that tie-breaking is deterministic.
			keys := keysBuf[:0]
			if w.off != nil {
				for i := w.off[u]; i < w.off[u+1]; i++ {
					c := comm[w.tgt[i]]
					if _, seen := links[c]; !seen {
						keys = append(keys, c)
					}
					links[c]++ // unit weight
				}
			} else {
				for v, wt := range w.adj[u] {
					c := comm[v]
					if _, seen := links[c]; !seen {
						keys = append(keys, c)
					}
					links[c] += wt
				}
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			// Remove u from its community.
			du := w.degree(u)
			tot[cu] -= du
			// Gain of joining community c (up to a constant factor):
			// k_{u,in}(c) - tot_c * k_u / m2.
			best := cu
			bestGain := links[cu] - tot[cu]*du/m2
			for _, c := range keys {
				if c == cu {
					continue
				}
				gain := links[c] - tot[c]*du/m2
				if gain > bestGain+1e-12 {
					best, bestGain = c, gain
				}
			}
			for _, c := range keys {
				delete(links, c)
			}
			keysBuf = keys
			comm[u] = best
			tot[best] += du
			if best != cu {
				moved = true
			}
		}
		if !moved {
			break
		}
		q := w.modularity(comm)
		if q-prevQ < delta {
			break
		}
		prevQ = q
	}
	return comm
}

// aggregate builds the super-graph where each community becomes one node.
func (w *wgraph) aggregate(comm []int32, nc int) *wgraph {
	out := &wgraph{
		n:    nc,
		adj:  make([]map[int32]float64, nc),
		self: make([]float64, nc),
		deg:  make([]float64, nc),
	}
	for u := 0; u < w.n; u++ {
		cu := comm[u]
		out.self[cu] += w.selfWeight(int32(u))
		if w.off != nil {
			for i := w.off[u]; i < w.off[u+1]; i++ {
				cv := comm[w.tgt[i]]
				if cv == cu {
					out.self[cu] += 0.5 // unit weight seen from both sides
					continue
				}
				if out.adj[cu] == nil {
					out.adj[cu] = make(map[int32]float64)
				}
				out.adj[cu][cv]++
			}
			continue
		}
		for v, wt := range w.adj[u] {
			cv := comm[v]
			if cv == cu {
				out.self[cu] += wt / 2 // seen from both sides
				continue
			}
			if out.adj[cu] == nil {
				out.adj[cu] = make(map[int32]float64)
			}
			out.adj[cu][cv] += wt
		}
	}
	for u := 0; u < nc; u++ {
		d := 2 * out.self[u]
		for _, wt := range out.adj[u] {
			d += wt
		}
		out.deg[u] = d
		out.total += d
	}
	return out
}

// densify renumbers labels to a dense [0, k) range preserving identity.
func densify(labels []int32) []int32 {
	remap := make(map[int32]int32, 64)
	out := make([]int32, len(labels))
	var next int32
	for i, l := range labels {
		d, ok := remap[l]
		if !ok {
			d = next
			remap[l] = d
			next++
		}
		out[i] = d
	}
	return out
}

func maxLabel(labels []int32) int32 {
	m := int32(-1)
	for _, l := range labels {
		if l > m {
			m = l
		}
	}
	return m
}
