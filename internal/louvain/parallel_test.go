package louvain

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// bigRandomGraph builds a graph big enough that PrepareWorkers actually
// splits (prepareMinNodesPerWorker per worker), via the shared
// randomGraph helper.
func bigRandomGraph(n, m int, seed int64) *graph.Graph {
	return randomGraph(n, m, rand.New(rand.NewSource(seed)))
}

// TestPrepareWorkersBitIdentical holds the fanned-out level-0 build to
// the sequential Prepare, field by field: the CSR offset and target
// columns and the float total must match exactly, and a full RunPrepared
// over both views must produce identical assignments and modularity.
func TestPrepareWorkersBitIdentical(t *testing.T) {
	g := bigRandomGraph(3*prepareMinNodesPerWorker+17, 6*prepareMinNodesPerWorker, 7)
	seq := Prepare(g)
	for _, workers := range []int{2, 3, 8} {
		par := PrepareWorkers(g, workers)
		if par.w.n != seq.w.n || par.w.total != seq.w.total {
			t.Fatalf("workers=%d: n=%d total=%v, want n=%d total=%v", workers, par.w.n, par.w.total, seq.w.n, seq.w.total)
		}
		if !reflect.DeepEqual(par.w.off, seq.w.off) {
			t.Fatalf("workers=%d: CSR offsets diverged from Prepare", workers)
		}
		if !reflect.DeepEqual(par.w.tgt, seq.w.tgt) {
			t.Fatalf("workers=%d: CSR targets diverged from Prepare", workers)
		}

		want, err := RunPrepared(seq, Options{Delta: 0.01, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunPrepared(par, Options{Delta: 0.01, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if got.Modularity != want.Modularity || !reflect.DeepEqual(got.Community, want.Community) {
			t.Fatalf("workers=%d: RunPrepared diverged", workers)
		}
	}
}

// TestPrepareWorkersSmallGraphFallback: graphs too small to split fall
// back to the sequential build (still correct, no goroutines needed).
func TestPrepareWorkersSmallGraphFallback(t *testing.T) {
	g := bigRandomGraph(64, 128, 5)
	seq, par := Prepare(g), PrepareWorkers(g, 8)
	if !reflect.DeepEqual(par.w, seq.w) {
		t.Fatal("small-graph PrepareWorkers diverged from Prepare")
	}
}
