package louvain

import (
	"sync"

	"repro/internal/graph"
)

// prepareMinNodesPerWorker keeps the fan-out from shredding small graphs
// into per-goroutine crumbs: below this many nodes per worker the
// spawn/join overhead outweighs the build.
const prepareMinNodesPerWorker = 2048

// PrepareWorkers is Prepare with the level-0 weighted-graph build fanned
// out across at most `workers` goroutines over contiguous node ranges.
// The result is bit-identical to Prepare's: each node's adjacency map,
// self weight, and degree are pure per-node functions of g (disjoint
// slice sections, no sharing), and the graph total is a sum of integer-
// valued degrees — exact in float64 regardless of grouping — accumulated
// per worker and reduced in worker-index order. workers <= 1, or a graph
// too small to split profitably, falls back to the sequential Prepare.
//
// g must be safe for concurrent reads: a graph.Frozen snapshot, or the
// live graph at a quiescent barrier (graph.Graph documents concurrent
// reads as safe).
func PrepareWorkers(g graph.View, workers int) *Prepared {
	n := g.NumNodes()
	if workers > n/prepareMinNodesPerWorker {
		workers = n / prepareMinNodesPerWorker
	}
	if workers <= 1 {
		return Prepare(g)
	}
	w := &wgraph{
		n:    n,
		adj:  make([]map[int32]float64, n),
		self: make([]float64, n),
		deg:  make([]float64, n),
	}
	totals := make([]float64, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		lo, hi := k*chunk, (k+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			var t float64
			for u := lo; u < hi; u++ {
				ns := g.Neighbors(graph.NodeID(u))
				if len(ns) == 0 {
					continue
				}
				m := make(map[int32]float64, len(ns))
				for _, v := range ns {
					m[v] = 1
				}
				w.adj[u] = m
				w.deg[u] = float64(len(ns))
				t += float64(len(ns))
			}
			totals[k] = t
		}(k, lo, hi)
	}
	wg.Wait()
	for _, t := range totals {
		w.total += t
	}
	return &Prepared{w: w}
}
