package louvain

import (
	"sync"

	"repro/internal/graph"
)

// prepareMinNodesPerWorker keeps the fan-out from shredding small graphs
// into per-goroutine crumbs: below this many nodes per worker the
// spawn/join overhead outweighs the build.
const prepareMinNodesPerWorker = 2048

// PrepareWorkers is Prepare with the level-0 CSR build fanned out across
// at most `workers` goroutines over contiguous node ranges. The offsets
// column is a sequential prefix sum (cheap); the targets column is filled
// in parallel, each worker writing the disjoint off[lo]..off[hi] region of
// its node range. The result is bit-identical to Prepare's — the CSR is a
// pure function of the adjacency, laid out in node order regardless of
// which worker wrote which region. workers <= 1, or a graph too small to
// split profitably, falls back to the sequential Prepare.
//
// g must be safe for concurrent reads: a graph.Frozen snapshot, or the
// live graph at a quiescent barrier (graph.Graph documents concurrent
// reads as safe).
func PrepareWorkers(g graph.View, workers int) *Prepared {
	// A Frozen snapshot aliases straight into the level-0 CSR (see
	// newWGraphFromGraph) — nothing to build, sequential or otherwise.
	if _, ok := g.(*graph.Frozen); ok {
		return Prepare(g)
	}
	n := g.NumNodes()
	if workers > n/prepareMinNodesPerWorker {
		workers = n / prepareMinNodesPerWorker
	}
	if workers <= 1 {
		return Prepare(g)
	}
	w := &wgraph{n: n, off: make([]int64, n+1)}
	for u := 0; u < n; u++ {
		w.off[u+1] = w.off[u] + int64(g.Degree(graph.NodeID(u)))
	}
	w.tgt = make([]int32, w.off[n])
	w.total = float64(w.off[n])
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		lo, hi := k*chunk, (k+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Full three-index cap: a degree mismatch would panic here
			// instead of silently racing into the next worker's region.
			dst := w.tgt[w.off[lo]:w.off[lo]:w.off[hi]]
			for u := lo; u < hi; u++ {
				dst = g.AppendNeighbors(dst, graph.NodeID(u))
			}
		}(lo, hi)
	}
	wg.Wait()
	return &Prepared{w: w}
}
