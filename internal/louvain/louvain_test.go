package louvain

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/stats"
)

// twoCliques builds two k-cliques joined by a single bridge edge.
func twoCliques(k int) *graph.Graph {
	g := graph.New(2 * k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			g.AddEdge(graph.NodeID(k+i), graph.NodeID(k+j))
		}
	}
	g.AddEdge(0, graph.NodeID(k))
	return g
}

// plantedPartition builds c communities of size s with dense intra and
// sparse inter edges.
func plantedPartition(c, s int, pIn, pOut float64, seed int64) (*graph.Graph, []int32) {
	rng := stats.NewRand(seed)
	n := c * s
	g := graph.New(n)
	g.EnsureNode(graph.NodeID(n - 1))
	truth := make([]int32, n)
	for i := 0; i < n; i++ {
		truth[i] = int32(i / s)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pOut
			if truth[i] == truth[j] {
				p = pIn
			}
			if rng.Float64() < p {
				g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	return g, truth
}

func TestTwoCliquesSeparated(t *testing.T) {
	g := twoCliques(8)
	res, err := Run(g, Options{Delta: 1e-6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities() != 2 {
		t.Fatalf("communities = %d, want 2 (got %v)", res.NumCommunities(), res.Community)
	}
	// All of clique 1 together, all of clique 2 together.
	for i := 1; i < 8; i++ {
		if res.Community[i] != res.Community[0] {
			t.Fatalf("clique 1 fractured: %v", res.Community)
		}
		if res.Community[8+i] != res.Community[8] {
			t.Fatalf("clique 2 fractured: %v", res.Community)
		}
	}
	if res.Community[0] == res.Community[8] {
		t.Fatal("cliques merged")
	}
	if res.Modularity < 0.4 {
		t.Fatalf("modularity = %v", res.Modularity)
	}
}

func TestPlantedPartitionRecovered(t *testing.T) {
	g, truth := plantedPartition(4, 16, 0.6, 0.01, 7)
	res, err := Run(g, Options{Delta: 1e-6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities() != 4 {
		t.Fatalf("communities = %d, want 4", res.NumCommunities())
	}
	// Check the partition matches the planted truth exactly (up to labels).
	label := map[int32]int32{}
	for i, c := range res.Community {
		want, ok := label[truth[i]]
		if !ok {
			label[truth[i]] = c
			continue
		}
		if c != want {
			t.Fatalf("node %d misassigned", i)
		}
	}
}

func TestModularityKnownValue(t *testing.T) {
	// Two triangles joined by one edge, communities = the triangles.
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	g.AddEdge(2, 3)
	comm := []int32{0, 0, 0, 1, 1, 1}
	// m = 7, 2m = 14. in: each triangle 2*3=6. tot: 7 per community.
	// Q = 2*(6/14 - (7/14)^2) = 2*(0.428571 - 0.25) = 0.357142...
	q := Modularity(g, comm)
	want := 2 * (6.0/14 - 0.25)
	if d := q - want; d > 1e-9 || d < -1e-9 {
		t.Fatalf("Q = %v, want %v", q, want)
	}
}

func TestModularityBadLength(t *testing.T) {
	g := twoCliques(3)
	if got := Modularity(g, []int32{0}); got != 0 {
		t.Fatalf("bad length must be 0, got %v", got)
	}
}

func TestRunEmptyGraph(t *testing.T) {
	res, err := Run(graph.New(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities() != 0 || res.Modularity != 0 {
		t.Fatalf("empty: %+v", res)
	}
}

func TestRunEdgelessGraph(t *testing.T) {
	g := graph.New(5)
	g.EnsureNode(4)
	res, err := Run(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Community) != 5 {
		t.Fatalf("len = %d", len(res.Community))
	}
	// Isolated nodes stay singletons.
	if res.NumCommunities() != 5 {
		t.Fatalf("communities = %d", res.NumCommunities())
	}
}

func TestInitLengthChecked(t *testing.T) {
	g := twoCliques(3)
	if _, err := Run(g, Options{Init: []int32{0, 1}}); err != ErrInitLength {
		t.Fatalf("err = %v", err)
	}
}

func TestIncrementalSeedPreservesLabels(t *testing.T) {
	// Seeding with the perfect partition must keep it (and converge fast).
	g := twoCliques(10)
	init := make([]int32, 20)
	for i := 10; i < 20; i++ {
		init[i] = 1
	}
	res, err := Run(g, Options{Delta: 1e-6, Seed: 3, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities() != 2 {
		t.Fatalf("communities = %d", res.NumCommunities())
	}
	for i := 1; i < 10; i++ {
		if res.Community[i] != res.Community[0] {
			t.Fatal("clique 1 fractured under incremental seed")
		}
	}
}

func TestIncrementalWithNewNodes(t *testing.T) {
	// Previous partition for 16 nodes; 4 new nodes marked -1.
	g, _ := plantedPartition(2, 10, 0.7, 0.02, 5)
	init := make([]int32, 20)
	for i := 0; i < 10; i++ {
		init[i] = 0
	}
	for i := 10; i < 16; i++ {
		init[i] = 1
	}
	for i := 16; i < 20; i++ {
		init[i] = -1
	}
	res, err := Run(g, Options{Delta: 1e-6, Seed: 4, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities() != 2 {
		t.Fatalf("communities = %d, want 2", res.NumCommunities())
	}
}

func TestGroupsPartitionNodes(t *testing.T) {
	g, _ := plantedPartition(3, 8, 0.7, 0.02, 9)
	res, err := Run(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[graph.NodeID]bool{}
	for _, grp := range res.Groups() {
		for _, u := range grp {
			if seen[u] {
				t.Fatalf("node %d in two groups", u)
			}
			seen[u] = true
		}
	}
	if len(seen) != g.NumNodes() {
		t.Fatalf("groups cover %d of %d nodes", len(seen), g.NumNodes())
	}
}

func TestDeltaMonotonicity(t *testing.T) {
	// A very large δ must terminate immediately-ish and produce no better
	// modularity than a tiny δ.
	g, _ := plantedPartition(4, 12, 0.6, 0.03, 11)
	loose, err := Run(g, Options{Delta: 0.3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Run(g, Options{Delta: 1e-7, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Modularity < loose.Modularity-1e-9 {
		t.Fatalf("tight δ worse: %v < %v", tight.Modularity, loose.Modularity)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g, _ := plantedPartition(3, 10, 0.6, 0.02, 13)
	a, err := Run(g, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Community {
		if a.Community[i] != b.Community[i] {
			t.Fatal("same seed must give identical partitions")
		}
	}
}

func TestModularityInvariantUnderRelabel(t *testing.T) {
	g, _ := plantedPartition(3, 8, 0.5, 0.05, 17)
	res, _ := Run(g, Options{Seed: 1})
	// Relabel communities (swap 0 and 1) — Q must not change.
	relab := make([]int32, len(res.Community))
	for i, c := range res.Community {
		switch c {
		case 0:
			relab[i] = 1
		case 1:
			relab[i] = 0
		default:
			relab[i] = c
		}
	}
	q1, q2 := Modularity(g, res.Community), Modularity(g, relab)
	if d := q1 - q2; d > 1e-9 || d < -1e-9 {
		t.Fatalf("Q changed under relabel: %v vs %v", q1, q2)
	}
}

func TestDensify(t *testing.T) {
	got := densify([]int32{7, 7, 3, 9, 3})
	want := []int32{0, 0, 1, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("densify = %v, want %v", got, want)
		}
	}
}
