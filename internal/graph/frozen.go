package graph

// View is the read-only surface shared by the live Graph and its Frozen
// snapshots. Analyses that only read a graph (Louvain, community tracking)
// take a View, so the same code runs against the engine's evolving shared
// graph and against an immutable snapshot of it fanned out to concurrent
// workers. Implementations must present neighbors in insertion order — the
// analyses' determinism (and the engine/batch bit-identical equivalence)
// depends on both implementations presenting the same adjacency order.
//
// The live Graph stores adjacency in chunked arenas and cannot hand out a
// contiguous per-node slice, so the interface exposes adjacency as an
// append-into-scratch form and a per-neighbor callback instead of a
// `Neighbors() []NodeID` accessor. Frozen additionally offers a zero-copy
// Neighbors on its concrete type for callers that hold one.
type View interface {
	NumNodes() int
	NumEdges() int64
	Degree(u NodeID) int
	// AppendNeighbors appends u's neighbors to dst in insertion order and
	// returns the extended slice.
	AppendNeighbors(dst []NodeID, u NodeID) []NodeID
	// ForEachNeighbor calls fn for each neighbor of u in insertion order.
	ForEachNeighbor(u NodeID, fn func(v NodeID))
	ForEachEdge(fn func(u, v NodeID))
}

var (
	_ View = (*Graph)(nil)
	_ View = (*Frozen)(nil)
)

// Frozen is an immutable CSR-style snapshot of a Graph: one offsets column
// and one packed targets column, preserving each node's adjacency order.
// It is safe for concurrent readers and stays valid while the source graph
// keeps mutating — the δ-sweep freezes the shared graph once per snapshot
// day and hands the same Frozen to every per-δ detection worker.
//
// The layout is also compact: 8·(n+1) bytes of offsets plus 4·2m bytes of
// targets, with none of the per-node chunk slack the live adjacency
// arenas carry.
type Frozen struct {
	off   []int64  // off[u]..off[u+1] brackets u's targets; len n+1
	tgt   []NodeID // both directions of every edge, grouped by source
	edges int64
}

// Freeze builds a Frozen snapshot of the graph's current state. The
// snapshot shares nothing with the graph; later AddEdge/AddNode calls do
// not affect it.
func (g *Graph) Freeze() *Frozen {
	n := len(g.deg)
	f := &Frozen{off: make([]int64, n+1), edges: g.NumEdges()}
	for u := 0; u < n; u++ {
		f.off[u+1] = f.off[u] + int64(g.deg[u])
	}
	f.tgt = make([]NodeID, f.off[n])
	for u := 0; u < n; u++ {
		o := f.off[u]
		for it := g.Chunks(NodeID(u)); ; {
			s := it.Next()
			if s == nil {
				break
			}
			o += int64(copy(f.tgt[o:], s))
		}
	}
	return f
}

// CSR exposes the snapshot's raw offsets and targets columns: node u's
// neighbors are tgt[off[u]:off[u+1]], in insertion order. The slices alias
// the snapshot and must not be modified. Readers that already want a CSR
// of the unweighted simple graph (the Louvain level-0 build) can use the
// columns directly instead of copying 8·(n+1)+4·2m bytes into an
// identical layout.
func (f *Frozen) CSR() (off []int64, tgt []NodeID) { return f.off, f.tgt }

// NumNodes returns the number of nodes at freeze time.
func (f *Frozen) NumNodes() int { return len(f.off) - 1 }

// NumEdges returns the number of undirected edges at freeze time.
func (f *Frozen) NumEdges() int64 { return f.edges }

// Degree returns the degree of node u, or 0 for out-of-range ids.
func (f *Frozen) Degree(u NodeID) int {
	if u < 0 || int(u) >= f.NumNodes() {
		return 0
	}
	return int(f.off[u+1] - f.off[u])
}

// Neighbors returns u's adjacency in the source graph's insertion order.
// The returned slice aliases the snapshot and must not be modified.
func (f *Frozen) Neighbors(u NodeID) []NodeID {
	if u < 0 || int(u) >= f.NumNodes() {
		return nil
	}
	return f.tgt[f.off[u]:f.off[u+1]]
}

// AppendNeighbors appends u's neighbors to dst in insertion order and
// returns the extended slice.
func (f *Frozen) AppendNeighbors(dst []NodeID, u NodeID) []NodeID {
	return append(dst, f.Neighbors(u)...)
}

// ForEachNeighbor calls fn for each neighbor of u in insertion order.
func (f *Frozen) ForEachNeighbor(u NodeID, fn func(v NodeID)) {
	for _, v := range f.Neighbors(u) {
		fn(v)
	}
}

// ForEachEdge calls fn once per undirected edge with u < v, in the same
// order the live graph's ForEachEdge would have produced at freeze time.
func (f *Frozen) ForEachEdge(fn func(u, v NodeID)) {
	for u := 0; u < f.NumNodes(); u++ {
		for _, v := range f.tgt[f.off[u]:f.off[u+1]] {
			if NodeID(u) < v {
				fn(NodeID(u), v)
			}
		}
	}
}
