package graph

import (
	"testing"

	"repro/internal/stats"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.SetCount() != 5 || uf.Len() != 5 {
		t.Fatalf("fresh UF: sets=%d len=%d", uf.SetCount(), uf.Len())
	}
	if !uf.Union(0, 1) {
		t.Fatal("first union must merge")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeat union must not merge")
	}
	if !uf.Connected(0, 1) || uf.Connected(0, 2) {
		t.Fatal("connectivity wrong")
	}
	if uf.SizeOf(0) != 2 || uf.SizeOf(2) != 1 {
		t.Fatalf("sizes %d %d", uf.SizeOf(0), uf.SizeOf(2))
	}
	if uf.SetCount() != 4 {
		t.Fatalf("sets = %d", uf.SetCount())
	}
}

func TestUnionFindGrow(t *testing.T) {
	uf := NewUnionFind(2)
	uf.Union(0, 1)
	uf.Grow(4)
	if uf.Len() != 4 || uf.SetCount() != 3 {
		t.Fatalf("after grow: len=%d sets=%d", uf.Len(), uf.SetCount())
	}
	if uf.Connected(2, 3) {
		t.Fatal("new elements must be singletons")
	}
	uf.Grow(2) // no-op
	if uf.Len() != 4 {
		t.Fatal("Grow must never shrink")
	}
}

func TestUnionFindMatchesBFS(t *testing.T) {
	rng := stats.NewRand(21)
	g := New(0)
	const n = 50
	g.EnsureNode(n - 1)
	uf := NewUnionFind(n)
	for i := 0; i < 60; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if g.AddEdge(u, v) == nil {
			uf.Union(u, v)
		}
	}
	for s := NodeID(0); s < n; s++ {
		d := g.BFS(s)
		for v := NodeID(0); v < n; v++ {
			bfsConn := d[v] != Unreachable
			if bfsConn != uf.Connected(s, v) {
				t.Fatalf("connectivity mismatch %d-%d", s, v)
			}
		}
	}
}

func TestLargestComponent(t *testing.T) {
	g := New(0)
	// Component A: 0-1-2-3 (4 nodes). Component B: 5-6 (2 nodes). 4 isolated.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(5, 6)
	g.EnsureNode(4)
	lc := g.LargestComponent()
	if len(lc) != 4 {
		t.Fatalf("largest = %v", lc)
	}
	want := map[NodeID]bool{0: true, 1: true, 2: true, 3: true}
	for _, v := range lc {
		if !want[v] {
			t.Fatalf("unexpected member %d", v)
		}
	}
}

func TestLargestComponentEmpty(t *testing.T) {
	g := New(0)
	if lc := g.LargestComponent(); lc != nil {
		t.Fatalf("empty graph largest = %v", lc)
	}
}

func TestUnionFindSizeSum(t *testing.T) {
	rng := stats.NewRand(4)
	uf := NewUnionFind(100)
	for i := 0; i < 300; i++ {
		uf.Union(int32(rng.Intn(100)), int32(rng.Intn(100)))
	}
	// Sum of distinct root sizes must equal element count.
	total := int32(0)
	for i := int32(0); i < 100; i++ {
		if uf.Find(i) == i {
			total += uf.SizeOf(i)
		}
	}
	if total != 100 {
		t.Fatalf("size sum = %d", total)
	}
}
