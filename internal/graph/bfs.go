package graph

// Unreachable is the distance reported for nodes not reachable from the
// BFS source.
const Unreachable = -1

// BFS computes hop distances from src to every node. The result slice has
// one entry per node; unreachable nodes get Unreachable.
func (g *Graph) BFS(src NodeID) []int32 {
	dist, _ := g.BFSInto(src, nil, nil)
	return dist
}

// BFSInto is BFS with caller-owned scratch: dist and queue are grown as
// needed and returned for reuse, so repeated traversals (the sampled
// path-length estimator runs hundreds per snapshot) allocate nothing after
// the first call. Pass nil slices on first use.
func (g *Graph) BFSInto(src NodeID, dist []int32, queue []NodeID) ([]int32, []NodeID) {
	n := len(g.deg)
	if cap(dist) < n {
		dist = make([]int32, n)
	} else {
		dist = dist[:n]
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	if src < 0 || int(src) >= n {
		return dist, queue
	}
	if cap(queue) == 0 {
		queue = make([]NodeID, 0, 64)
	}
	queue = append(queue[:0], src)
	dist[src] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for it := g.Chunks(u); ; {
			s := it.Next()
			if s == nil {
				break
			}
			for _, v := range s {
				if dist[v] == Unreachable {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
	return dist, queue
}

// BFSWithin is like BFS but only traverses nodes for which allowed returns
// true (the source is always traversed). A nil predicate allows all nodes.
// This supports the paper's inter-OSN distance experiment, which excludes
// post-merge users and their edges (Fig 9c).
func (g *Graph) BFSWithin(src NodeID, allowed func(NodeID) bool) []int32 {
	dist := make([]int32, len(g.deg))
	for i := range dist {
		dist[i] = Unreachable
	}
	if src < 0 || int(src) >= len(g.deg) {
		return dist
	}
	queue := []NodeID{src}
	dist[src] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for it := g.Chunks(u); ; {
			s := it.Next()
			if s == nil {
				break
			}
			for _, v := range s {
				if dist[v] != Unreachable {
					continue
				}
				if allowed != nil && !allowed(v) {
					continue
				}
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestToSet returns the hop distance from src to the nearest node for
// which target returns true, traversing only allowed nodes (nil allows all).
// Target nodes themselves must be allowed to be reached. It returns
// Unreachable when no target can be reached.
func (g *Graph) ShortestToSet(src NodeID, target func(NodeID) bool, allowed func(NodeID) bool) int32 {
	if src < 0 || int(src) >= len(g.deg) {
		return Unreachable
	}
	if target(src) {
		return 0
	}
	dist := make(map[NodeID]int32, 1024)
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for it := g.Chunks(u); ; {
			s := it.Next()
			if s == nil {
				break
			}
			for _, v := range s {
				if _, seen := dist[v]; seen {
					continue
				}
				if allowed != nil && !allowed(v) {
					continue
				}
				if target(v) {
					return du + 1
				}
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return Unreachable
}

// ComponentOf returns all nodes in the connected component containing src.
func (g *Graph) ComponentOf(src NodeID) []NodeID {
	dist := g.BFS(src)
	var out []NodeID
	for i, d := range dist {
		if d != Unreachable {
			out = append(out, NodeID(i))
		}
	}
	return out
}
