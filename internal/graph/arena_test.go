package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// refGraph is the retired [][]NodeID adjacency representation, kept as a
// test oracle: the arena-backed Graph must be operation-for-operation
// equivalent to it — neighbor order included, since adjacency order is
// semantic for checkpoints and bit-identical replay equivalence.
type refGraph struct {
	adj  [][]NodeID
	arcs int64
}

func (r *refGraph) ensure(id NodeID) {
	for NodeID(len(r.adj)) <= id {
		r.adj = append(r.adj, nil)
	}
}

func (r *refGraph) addNode() NodeID {
	r.adj = append(r.adj, nil)
	return NodeID(len(r.adj) - 1)
}

func (r *refGraph) hasEdge(u, v NodeID) bool {
	if u < 0 || v < 0 || int(u) >= len(r.adj) || int(v) >= len(r.adj) {
		return false
	}
	for _, w := range r.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

func (r *refGraph) addEdge(u, v NodeID) bool {
	if u == v || u < 0 || v < 0 {
		return false
	}
	hi := u
	if v > hi {
		hi = v
	}
	r.ensure(hi)
	if r.hasEdge(u, v) {
		return false
	}
	r.adj[u] = append(r.adj[u], v)
	r.adj[v] = append(r.adj[v], u)
	r.arcs += 2
	return true
}

// TestArenaMatchesReference drives the arena graph and the reference
// representation through the same randomized AddNode/AddEdge/EnsureNode
// sequence and checks full observable equivalence after every burst:
// node/edge counts, per-node degree, neighbor lists in order (via
// AppendNeighbors, ForEachNeighbor, NeighborAt, and the chunk iterator),
// HasEdge on random pairs, and the Frozen CSR.
func TestArenaMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New(0)
		ref := &refGraph{}
		maxID := int32(1 + rng.Intn(200))
		for step := 0; step < 3000; step++ {
			switch op := rng.Intn(10); {
			case op == 0:
				a, b := g.AddNode(), ref.addNode()
				if a != b {
					t.Fatalf("seed %d step %d: AddNode id %d vs %d", seed, step, a, b)
				}
			case op == 1:
				id := NodeID(rng.Intn(int(maxID)))
				g.EnsureNode(id)
				ref.ensure(id)
			default:
				u, v := NodeID(rng.Intn(int(maxID))), NodeID(rng.Intn(int(maxID)))
				err := g.AddEdge(u, v)
				ok := ref.addEdge(u, v)
				if (err == nil) != ok {
					t.Fatalf("seed %d step %d: AddEdge(%d,%d) err=%v ref-ok=%v", seed, step, u, v, err, ok)
				}
			}
			if step%500 == 0 {
				checkEquivalent(t, g, ref, rng)
			}
		}
		checkEquivalent(t, g, ref, rng)
	}
}

func checkEquivalent(t *testing.T, g *Graph, ref *refGraph, rng *rand.Rand) {
	t.Helper()
	if g.NumNodes() != len(ref.adj) {
		t.Fatalf("nodes %d vs %d", g.NumNodes(), len(ref.adj))
	}
	if g.NumEdges() != ref.arcs/2 || g.Arcs() != ref.arcs {
		t.Fatalf("edges %d/%d vs %d", g.NumEdges(), g.Arcs(), ref.arcs)
	}
	f := g.Freeze()
	var scratch []NodeID
	for u := 0; u < len(ref.adj); u++ {
		want := ref.adj[u]
		if g.Degree(NodeID(u)) != len(want) {
			t.Fatalf("node %d: degree %d vs %d", u, g.Degree(NodeID(u)), len(want))
		}
		scratch = g.AppendNeighbors(scratch[:0], NodeID(u))
		if len(scratch) != len(want) {
			t.Fatalf("node %d: AppendNeighbors len %d vs %d", u, len(scratch), len(want))
		}
		for i := range want {
			if scratch[i] != want[i] {
				t.Fatalf("node %d: neighbor %d is %d, want %d (order must be preserved)", u, i, scratch[i], want[i])
			}
			if got := g.NeighborAt(NodeID(u), i); got != want[i] {
				t.Fatalf("node %d: NeighborAt(%d) = %d, want %d", u, i, got, want[i])
			}
		}
		i := 0
		g.ForEachNeighbor(NodeID(u), func(v NodeID) {
			if v != want[i] {
				t.Fatalf("node %d: ForEachNeighbor[%d] = %d, want %d", u, i, v, want[i])
			}
			i++
		})
		if i != len(want) {
			t.Fatalf("node %d: ForEachNeighbor yielded %d of %d", u, i, len(want))
		}
		pos := 0
		for it := g.Chunks(NodeID(u)); ; {
			s := it.Next()
			if s == nil {
				break
			}
			if !reflect.DeepEqual(s, want[pos:pos+len(s)]) {
				t.Fatalf("node %d: chunk at %d = %v, want %v", u, pos, s, want[pos:pos+len(s)])
			}
			pos += len(s)
		}
		if pos != len(want) {
			t.Fatalf("node %d: chunks yielded %d of %d", u, pos, len(want))
		}
		if fn := f.Neighbors(NodeID(u)); !reflect.DeepEqual(append([]NodeID{}, fn...), append([]NodeID{}, want...)) {
			t.Fatalf("node %d: frozen neighbors %v, want %v", u, fn, want)
		}
	}
	for i := 0; i < 50; i++ {
		u := NodeID(rng.Intn(len(ref.adj) + 1))
		v := NodeID(rng.Intn(len(ref.adj) + 1))
		if g.HasEdge(u, v) != ref.hasEdge(u, v) {
			t.Fatalf("HasEdge(%d,%d) = %v, ref %v", u, v, g.HasEdge(u, v), ref.hasEdge(u, v))
		}
	}
}

// TestCloneIndependence: a clone must carry the exact adjacency and not
// share growth with the original afterwards.
func TestCloneIndependence(t *testing.T) {
	g := New(0)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	c := g.Clone()
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if c.HasEdge(0, 2) {
		t.Fatal("clone saw an edge added to the original")
	}
	if c.NumEdges() != 5 || g.NumEdges() != 6 {
		t.Fatalf("edges %d/%d", c.NumEdges(), g.NumEdges())
	}
	if err := c.AddEdge(1, 4); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 4) || g.NumNodes() != 4 {
		t.Fatal("original saw an edge added to the clone")
	}
}

// TestAppendArc covers the deserialization path: arcs appended from both
// endpoints reconstruct the same graph AddEdge built, order included.
func TestAppendArc(t *testing.T) {
	g := New(0)
	edges := [][2]NodeID{{0, 5}, {5, 2}, {2, 0}, {3, 5}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	r := New(0)
	var ns []NodeID
	for u := 0; u < g.NumNodes(); u++ {
		ns = g.AppendNeighbors(ns[:0], NodeID(u))
		for _, v := range ns {
			r.AppendArc(NodeID(u), v)
		}
	}
	r.EnsureNode(NodeID(g.NumNodes() - 1))
	if r.NumNodes() != g.NumNodes() || r.NumEdges() != g.NumEdges() {
		t.Fatalf("rebuilt %d/%d, want %d/%d", r.NumNodes(), r.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for u := 0; u < g.NumNodes(); u++ {
		a := g.AppendNeighbors(nil, NodeID(u))
		b := r.AppendNeighbors(nil, NodeID(u))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("node %d: %v vs %v", u, a, b)
		}
	}
}
