package graph

// Int32Lists is a collection of append-only int32 lists keyed by dense
// non-negative indices, stored in the same chunked-arena layout as the
// graph's adjacency: each list is a chain of fixed-size chunks carved from
// a few large pointer-free backing arrays, with an 8-slot first chunk
// (most lists stay short) and 16-slot overflow chunks. A million lists
// cost a handful of heap objects the garbage collector never scans
// element by element, instead of a million slice headers plus their
// append-doubling slack — the same trade the adjacency arenas make, made
// reusable for stage accumulators that keep a per-node history (the
// evolution stage's per-user edge-day lists).
//
// Lists preserve append order exactly. The zero value is ready to use.
// Int32Lists is not safe for concurrent mutation; concurrent reads are
// safe.
type Int32Lists struct {
	// Per-list columns: head/tail chunk refs and length. Chunk refs pack
	// arena index and size class as idx<<1 | class (0 small, 1 large);
	// nilRef ends a chain. The tail chunk's fill is derivable from the
	// length alone, so there is no per-chunk bookkeeping.
	heads []int32
	tails []int32
	lens  []int32

	small     []int32
	smallNext []int32
	large     []int32
	largeNext []int32

	total int64
}

// NumLists returns the number of lists (the highest touched index + 1).
func (l *Int32Lists) NumLists() int { return len(l.lens) }

// Total returns the total number of values across all lists.
func (l *Int32Lists) Total() int64 { return l.total }

// Len returns the length of list i, or 0 for out-of-range indices.
func (l *Int32Lists) Len(i int) int {
	if i < 0 || i >= len(l.lens) {
		return 0
	}
	return int(l.lens[i])
}

// grow extends the per-list columns to cover index i.
func (l *Int32Lists) grow(i int) {
	n := i + 1
	if n <= len(l.lens) {
		return
	}
	l.heads = growInt32(l.heads, n, nilRef)
	l.tails = growInt32(l.tails, n, nilRef)
	l.lens = growInt32(l.lens, n, 0)
}

// Append appends v to list i, growing the collection to cover i. i must be
// non-negative.
func (l *Int32Lists) Append(i int, v int32) {
	l.grow(i)
	d := l.lens[i]
	if d < smallSlots {
		if d == 0 {
			idx := int32(len(l.smallNext))
			var zero [smallSlots]int32
			l.small = append(l.small, zero[:]...)
			l.smallNext = append(l.smallNext, nilRef)
			ref := idx << 1
			l.heads[i] = ref
			l.tails[i] = ref
		}
		l.small[int(l.tails[i]>>1)*smallSlots+int(d)] = v
	} else {
		fill := (d - smallSlots) % largeSlots
		if fill == 0 {
			idx := int32(len(l.largeNext))
			var zero [largeSlots]int32
			l.large = append(l.large, zero[:]...)
			l.largeNext = append(l.largeNext, nilRef)
			ref := idx<<1 | 1
			if l.tails[i]&1 == 0 {
				l.smallNext[l.tails[i]>>1] = ref
			} else {
				l.largeNext[l.tails[i]>>1] = ref
			}
			l.tails[i] = ref
		}
		l.large[int(l.tails[i]>>1)*largeSlots+int(fill)] = v
	}
	l.lens[i] = d + 1
	l.total++
}

// AppendTo appends list i's values to dst in append order and returns the
// extended slice. Callers materializing many lists reuse one scratch
// buffer (dst[:0]) so the copy is the only cost.
func (l *Int32Lists) AppendTo(dst []int32, i int) []int32 {
	if i < 0 || i >= len(l.lens) {
		return dst
	}
	rem := l.lens[i]
	for ref := l.heads[i]; rem > 0 && ref != nilRef; {
		var s []int32
		if ref&1 == 0 {
			base := int(ref>>1) * smallSlots
			s = l.small[base : base+smallSlots]
			ref = l.smallNext[ref>>1]
		} else {
			base := int(ref>>1) * largeSlots
			s = l.large[base : base+largeSlots]
			ref = l.largeNext[ref>>1]
		}
		if int32(len(s)) > rem {
			s = s[:rem]
		}
		rem -= int32(len(s))
		dst = append(dst, s...)
	}
	return dst
}

// Last returns the most recently appended value of list i; ok is false for
// an empty or out-of-range list.
func (l *Int32Lists) Last(i int) (v int32, ok bool) {
	if i < 0 || i >= len(l.lens) || l.lens[i] == 0 {
		return 0, false
	}
	d := l.lens[i] - 1
	if d < smallSlots {
		return l.small[int(l.heads[i]>>1)*smallSlots+int(d)], true
	}
	fill := (d - smallSlots) % largeSlots
	return l.large[int(l.tails[i]>>1)*largeSlots+int(fill)], true
}
