package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// buildRandom grows a random simple graph for snapshot comparison.
func buildRandom(t *testing.T, n, m int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	g.EnsureNode(NodeID(n - 1))
	added := 0
	for added < m {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if err := g.AddEdge(u, v); err == nil {
			added++
		}
	}
	return g
}

// TestFrozenMatchesLive asserts a Frozen snapshot presents exactly the
// same View as the live graph at freeze time: counts, degrees, adjacency
// in insertion order, and ForEachEdge order.
func TestFrozenMatchesLive(t *testing.T) {
	g := buildRandom(t, 200, 600, 1)
	f := g.Freeze()
	if f.NumNodes() != g.NumNodes() || f.NumEdges() != g.NumEdges() {
		t.Fatalf("frozen %d nodes %d edges, live %d/%d", f.NumNodes(), f.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for u := 0; u < g.NumNodes(); u++ {
		if f.Degree(NodeID(u)) != g.Degree(NodeID(u)) {
			t.Fatalf("node %d: degree %d vs %d", u, f.Degree(NodeID(u)), g.Degree(NodeID(u)))
		}
		fn, gn := f.Neighbors(NodeID(u)), g.AppendNeighbors(nil, NodeID(u))
		if len(fn) != len(gn) {
			t.Fatalf("node %d: neighbor count %d vs %d", u, len(fn), len(gn))
		}
		for i := range fn {
			if fn[i] != gn[i] {
				t.Fatalf("node %d: adjacency order diverges at %d: %d vs %d", u, i, fn[i], gn[i])
			}
		}
	}
	type edge struct{ u, v NodeID }
	var fe, ge []edge
	f.ForEachEdge(func(u, v NodeID) { fe = append(fe, edge{u, v}) })
	g.ForEachEdge(func(u, v NodeID) { ge = append(ge, edge{u, v}) })
	if !reflect.DeepEqual(fe, ge) {
		t.Fatalf("ForEachEdge order diverges: %d vs %d edges", len(fe), len(ge))
	}
	// Out-of-range reads behave like the live graph's.
	if f.Degree(-1) != 0 || f.Neighbors(NodeID(f.NumNodes())) != nil {
		t.Fatal("out-of-range access not zero-valued")
	}
}

// TestFrozenImmutable asserts a snapshot is unaffected by later growth of
// the source graph — the property the δ-sweep's concurrent detectors rely
// on while the replay keeps mutating the shared graph.
func TestFrozenImmutable(t *testing.T) {
	g := buildRandom(t, 50, 120, 2)
	f := g.Freeze()
	nodes, edges := f.NumNodes(), f.NumEdges()
	deg0 := f.Degree(0)
	n0 := append([]NodeID(nil), f.Neighbors(0)...)

	// Mutate the live graph heavily.
	g.EnsureNode(99)
	for v := NodeID(1); v < 90; v++ {
		g.AddEdge(0, v) // some duplicates; ignored
	}
	if f.NumNodes() != nodes || f.NumEdges() != edges || f.Degree(0) != deg0 {
		t.Fatalf("snapshot changed after source mutation: %d/%d deg0=%d", f.NumNodes(), f.NumEdges(), f.Degree(0))
	}
	if !reflect.DeepEqual(append([]NodeID(nil), f.Neighbors(0)...), n0) {
		t.Fatal("snapshot adjacency changed after source mutation")
	}
	// An empty graph freezes cleanly.
	ef := New(0).Freeze()
	if ef.NumNodes() != 0 || ef.NumEdges() != 0 {
		t.Fatal("empty freeze not empty")
	}
}
