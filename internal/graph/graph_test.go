package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestAddNodeAndEnsure(t *testing.T) {
	g := New(4)
	if id := g.AddNode(); id != 0 {
		t.Fatalf("first id = %d", id)
	}
	if id := g.AddNode(); id != 1 {
		t.Fatalf("second id = %d", id)
	}
	g.EnsureNode(5)
	if g.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d, want 6", g.NumNodes())
	}
	g.EnsureNode(2) // no-op
	if g.NumNodes() != 6 {
		t.Fatalf("EnsureNode shrank or grew wrongly: %d", g.NumNodes())
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(0)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("n=%d e=%d", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge must be symmetric")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees %d %d", g.Degree(0), g.Degree(1))
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New(0)
	if err := g.AddEdge(3, 3); err != ErrSelfLoop {
		t.Fatalf("err = %v, want ErrSelfLoop", err)
	}
}

func TestAddEdgeRejectsDuplicate(t *testing.T) {
	g := New(0)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err != ErrDuplicateEdge {
		t.Fatalf("err = %v, want ErrDuplicateEdge", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestAddEdgeRejectsNegative(t *testing.T) {
	g := New(0)
	if err := g.AddEdge(-1, 2); err == nil {
		t.Fatal("want error for negative id")
	}
}

func TestDegreeOutOfRange(t *testing.T) {
	g := New(0)
	if g.Degree(-1) != 0 || g.Degree(10) != 0 {
		t.Fatal("out-of-range degree must be 0")
	}
	if g.AppendNeighbors(nil, -1) != nil || g.AppendNeighbors(nil, 7) != nil {
		t.Fatal("out-of-range neighbors must be nil")
	}
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Fatal("out-of-range HasEdge must be false")
	}
}

func TestForEachEdge(t *testing.T) {
	g := New(0)
	edges := [][2]NodeID{{0, 1}, {1, 2}, {0, 2}, {3, 1}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[[2]NodeID]bool{}
	g.ForEachEdge(func(u, v NodeID) {
		if u >= v {
			t.Fatalf("ForEachEdge must emit u<v, got %d,%d", u, v)
		}
		seen[[2]NodeID{u, v}] = true
	})
	if len(seen) != len(edges) {
		t.Fatalf("saw %d edges, want %d", len(seen), len(edges))
	}
}

func TestClone(t *testing.T) {
	g := New(0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	c := g.Clone()
	c.AddEdge(2, 3)
	if g.NumEdges() != 2 || c.NumEdges() != 3 {
		t.Fatalf("clone not independent: g=%d c=%d", g.NumEdges(), c.NumEdges())
	}
	if g.NumNodes() != 3 || c.NumNodes() != 4 {
		t.Fatalf("clone nodes wrong: g=%d c=%d", g.NumNodes(), c.NumNodes())
	}
}

// TestDegreeSumInvariant checks Σ deg = 2E under random insertions.
func TestDegreeSumInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRand(seed)
		g := New(0)
		n := 2 + rng.Intn(40)
		for i := 0; i < 200; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			_ = g.AddEdge(u, v) // self loops / dups rejected internally
		}
		var degSum int64
		for i := 0; i < g.NumNodes(); i++ {
			degSum += int64(g.Degree(NodeID(i)))
		}
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestHasEdgeMatchesNeighborScan cross-checks HasEdge against a map oracle.
func TestHasEdgeMatchesOracle(t *testing.T) {
	rng := stats.NewRand(77)
	g := New(0)
	oracle := map[[2]NodeID]bool{}
	const n = 30
	for i := 0; i < 300; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		err := g.AddEdge(u, v)
		if u != v && err == nil {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			oracle[[2]NodeID{a, b}] = true
		}
	}
	for u := NodeID(0); u < n; u++ {
		for v := NodeID(0); v < n; v++ {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if g.HasEdge(u, v) != oracle[[2]NodeID{a, b}] {
				t.Fatalf("HasEdge(%d,%d) mismatch", u, v)
			}
		}
	}
}
