// Package graph implements the dynamic undirected graph substrate the
// reproduction is built on: an append-only adjacency structure sized for
// millions of edges, breadth-first traversals, connected components, and a
// degree-proportional sampler used by preferential-attachment processes.
//
// Node identifiers are dense int32 values assigned in arrival order, which
// matches the paper's anonymized event stream where users are numbered by
// account-creation time.
//
// Adjacency is stored in chunked arenas rather than per-node slices: each
// node's neighbor list is a chain of fixed-size chunks carved from a few
// large pointer-free backing arrays. A million-node graph is a handful of
// allocations the garbage collector never has to scan element by element,
// instead of millions of slice headers it must mark on every cycle. Chunk
// chains are append-only and preserve insertion order exactly — adjacency
// order is semantic here: checkpoints serialize it, and the engine/batch
// bit-identical equivalence depends on every reader seeing the same order.
package graph

import (
	"errors"
	"fmt"
)

// NodeID identifies a node. IDs are dense and assigned in arrival order.
type NodeID = int32

// Chunk size classes. Every node's first chunk is small (most OSN nodes
// stay low-degree, so the common case is one 8-slot chunk and zero chain
// hops); overflow chunks are larger so higher-degree nodes amortize the
// chain. With this fixed policy the tail chunk's fill is derivable from the
// degree alone, so no per-chunk length bookkeeping is needed.
//
// The overflow class is deliberately modest: in a heavy-tailed degree
// distribution most nodes that outgrow the first chunk stop within a few
// dozen neighbors, so a large overflow class strands most of its slots —
// at the million-node preset, 64-slot overflow chunks held ~2.5x more
// slack than payload (~70 MB of the live heap), while 16-slot chunks keep
// a degree-24 node at two hops and cap the tail waste at 60 bytes. Truly
// high-degree hubs pay proportionally more next-refs, but a chain hop is
// one array read against 16 payload reads.
const (
	smallSlots = 8
	largeSlots = 16
)

// A chunk reference packs the arena index and the size class into one
// int32: idx<<1 | class, with class 0 = small, 1 = large. nilRef ends a
// chain (and marks a degree-0 node's head).
const nilRef = int32(-1)

// Graph is a growing undirected simple graph. The zero value is ready to use.
// Graph is not safe for concurrent mutation; concurrent reads are safe.
type Graph struct {
	// Per-node columns: head/tail chunk refs and degree.
	heads []int32
	tails []int32
	deg   []int32

	// Arenas. small/large hold the chunk payload slots; smallNext/largeNext
	// hold each chunk's successor ref (indexed by chunk, not slot).
	small     []NodeID
	smallNext []int32
	large     []NodeID
	largeNext []int32

	// arcs counts directed adjacency entries; NumEdges is arcs/2.
	arcs int64
}

// New returns an empty graph with capacity hints for n nodes.
func New(nHint int) *Graph {
	return &Graph{
		heads: make([]int32, 0, nHint),
		tails: make([]int32, 0, nHint),
		deg:   make([]int32, 0, nHint),
	}
}

// growInt32 extends s to length n, filling new entries with fill. The
// no-grow path is allocation free; growth at least doubles capacity so
// repeated one-node extensions stay amortized O(1).
func growInt32(s []int32, n int, fill int32) []int32 {
	if n <= len(s) {
		return s
	}
	old := len(s)
	if cap(s) < n {
		c := 2 * cap(s)
		if c < n {
			c = n
		}
		if c < 64 {
			c = 64
		}
		ns := make([]int32, n, c)
		copy(ns, s)
		s = ns
	} else {
		s = s[:n]
	}
	if fill != 0 {
		for i := old; i < n; i++ {
			s[i] = fill
		}
	}
	return s
}

// AddNode appends a new node and returns its id.
func (g *Graph) AddNode() NodeID {
	n := len(g.deg) + 1
	g.heads = growInt32(g.heads, n, nilRef)
	g.tails = growInt32(g.tails, n, nilRef)
	g.deg = growInt32(g.deg, n, 0)
	return NodeID(n - 1)
}

// EnsureNode grows the graph so that id is a valid node. The whole gap is
// grown in one reservation, not one node at a time — this is on the
// event-apply hot path for every node-creation event.
func (g *Graph) EnsureNode(id NodeID) {
	n := int(id) + 1
	if n <= len(g.deg) {
		return
	}
	g.heads = growInt32(g.heads, n, nilRef)
	g.tails = growInt32(g.tails, n, nilRef)
	g.deg = growInt32(g.deg, n, 0)
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.deg) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 { return g.arcs / 2 }

// Arcs returns the number of directed adjacency entries (twice the edge
// count for a consistent undirected graph). Deserialization paths use it
// to validate that every edge was appended from both endpoints.
func (g *Graph) Arcs() int64 { return g.arcs }

// Degree returns the degree of node u, or 0 for out-of-range ids.
func (g *Graph) Degree(u NodeID) int {
	if u < 0 || int(u) >= len(g.deg) {
		return 0
	}
	return int(g.deg[u])
}

// newSmall carves a fresh small chunk and returns its packed ref.
func (g *Graph) newSmall() int32 {
	idx := int32(len(g.smallNext))
	var zero [smallSlots]NodeID
	g.small = append(g.small, zero[:]...)
	g.smallNext = append(g.smallNext, nilRef)
	return idx << 1
}

// newLarge carves a fresh large chunk and returns its packed ref.
func (g *Graph) newLarge() int32 {
	idx := int32(len(g.largeNext))
	var zero [largeSlots]NodeID
	g.large = append(g.large, zero[:]...)
	g.largeNext = append(g.largeNext, nilRef)
	return idx<<1 | 1
}

// setNext links ref's chunk to next.
func (g *Graph) setNext(ref, next int32) {
	if ref&1 == 0 {
		g.smallNext[ref>>1] = next
	} else {
		g.largeNext[ref>>1] = next
	}
}

// push appends v to u's adjacency chain. u must be a valid node.
func (g *Graph) push(u, v NodeID) {
	d := g.deg[u]
	if d < smallSlots {
		if d == 0 {
			ref := g.newSmall()
			g.heads[u] = ref
			g.tails[u] = ref
		}
		g.small[int(g.tails[u]>>1)*smallSlots+int(d)] = v
	} else {
		fill := (d - smallSlots) % largeSlots
		if fill == 0 {
			ref := g.newLarge()
			g.setNext(g.tails[u], ref)
			g.tails[u] = ref
		}
		g.large[int(g.tails[u]>>1)*largeSlots+int(fill)] = v
	}
	g.deg[u] = d + 1
	g.arcs++
}

// ChunkIter walks one node's adjacency as contiguous runs of NodeIDs, in
// insertion order. It lets hot loops (BFS, clustering, CSR builds) consume
// arena-backed adjacency without a closure per neighbor or a copy per node.
type ChunkIter struct {
	g   *Graph
	ref int32
	rem int32
}

// Chunks returns an iterator over u's adjacency. Call Next until it
// returns nil:
//
//	for it := g.Chunks(u); ; {
//		s := it.Next()
//		if s == nil {
//			break
//		}
//		for _, v := range s { ... }
//	}
func (g *Graph) Chunks(u NodeID) ChunkIter {
	if u < 0 || int(u) >= len(g.deg) {
		return ChunkIter{ref: nilRef}
	}
	return ChunkIter{g: g, ref: g.heads[u], rem: g.deg[u]}
}

// Next returns the next contiguous run of neighbors, or nil at the end.
// The returned slice aliases the arena and must not be modified.
func (it *ChunkIter) Next() []NodeID {
	if it.rem <= 0 || it.ref == nilRef {
		return nil
	}
	var s []NodeID
	var next int32
	if it.ref&1 == 0 {
		base := int(it.ref>>1) * smallSlots
		s = it.g.small[base : base+smallSlots]
		next = it.g.smallNext[it.ref>>1]
	} else {
		base := int(it.ref>>1) * largeSlots
		s = it.g.large[base : base+largeSlots]
		next = it.g.largeNext[it.ref>>1]
	}
	if int32(len(s)) > it.rem {
		s = s[:it.rem]
	}
	it.rem -= int32(len(s))
	it.ref = next
	return s
}

// AppendNeighbors appends u's neighbors to dst in insertion order and
// returns the extended slice. Callers that need a materialized adjacency
// list reuse one scratch buffer across nodes (dst[:0]) so the copy is the
// only cost.
func (g *Graph) AppendNeighbors(dst []NodeID, u NodeID) []NodeID {
	for it := g.Chunks(u); ; {
		s := it.Next()
		if s == nil {
			return dst
		}
		dst = append(dst, s...)
	}
}

// ForEachNeighbor calls fn for each neighbor of u in insertion order.
func (g *Graph) ForEachNeighbor(u NodeID, fn func(v NodeID)) {
	for it := g.Chunks(u); ; {
		s := it.Next()
		if s == nil {
			return
		}
		for _, v := range s {
			fn(v)
		}
	}
}

// NeighborAt returns u's i-th neighbor in insertion order. It panics if i
// is out of range. The first small chunk is O(1); deeper positions walk
// the large-chunk chain.
func (g *Graph) NeighborAt(u NodeID, i int) NodeID {
	if u < 0 || int(u) >= len(g.deg) || i < 0 || i >= int(g.deg[u]) {
		panic(fmt.Sprintf("graph: NeighborAt(%d, %d) out of range", u, i))
	}
	ref := g.heads[u]
	if i < smallSlots {
		return g.small[int(ref>>1)*smallSlots+i]
	}
	i -= smallSlots
	ref = g.smallNext[ref>>1]
	for i >= largeSlots {
		i -= largeSlots
		ref = g.largeNext[ref>>1]
	}
	return g.large[int(ref>>1)*largeSlots+i]
}

// HasEdge reports whether the undirected edge {u, v} exists. It scans the
// smaller adjacency list, so it is O(min(deg(u), deg(v))).
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u < 0 || v < 0 || int(u) >= len(g.deg) || int(v) >= len(g.deg) {
		return false
	}
	a, b := u, v
	if g.deg[a] > g.deg[b] {
		a, b = b, a
	}
	for it := g.Chunks(a); ; {
		s := it.Next()
		if s == nil {
			return false
		}
		for _, w := range s {
			if w == b {
				return true
			}
		}
	}
}

// ErrSelfLoop is returned by AddEdge for u == v.
var ErrSelfLoop = errors.New("graph: self loop")

// ErrDuplicateEdge is returned by AddEdge when the edge already exists.
var ErrDuplicateEdge = errors.New("graph: duplicate edge")

// AddEdge inserts the undirected edge {u, v}, growing the node set as
// needed. Self loops and duplicate edges are rejected.
func (g *Graph) AddEdge(u, v NodeID) error {
	if u == v {
		return ErrSelfLoop
	}
	if u < 0 || v < 0 {
		return fmt.Errorf("graph: negative node id (%d, %d)", u, v)
	}
	hi := u
	if v > hi {
		hi = v
	}
	g.EnsureNode(hi)
	if g.HasEdge(u, v) {
		return ErrDuplicateEdge
	}
	g.push(u, v)
	g.push(v, u)
	return nil
}

// AppendArc appends v to u's adjacency without the simple-graph checks,
// growing the node set as needed. It exists for deserialization paths
// (checkpoint restore, delta application) that rebuild a graph's exact
// adjacency row by row; every undirected edge must be appended from both
// endpoints, and NumEdges counts appended arcs in pairs.
func (g *Graph) AppendArc(u, v NodeID) {
	g.EnsureNode(u)
	g.push(u, v)
}

// ForEachEdge calls fn once per undirected edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v NodeID)) {
	for u := 0; u < len(g.deg); u++ {
		for it := g.Chunks(NodeID(u)); ; {
			s := it.Next()
			if s == nil {
				break
			}
			for _, v := range s {
				if NodeID(u) < v {
					fn(NodeID(u), v)
				}
			}
		}
	}
}

// FromAdjacency reconstructs a graph from a per-node adjacency structure.
// Every undirected edge must appear in both endpoints' lists (the edge
// count is half the total list length), and list order is preserved
// exactly — the checkpoint codec relies on this to restore a replayed
// graph bit-identically, adjacency order included, since traversal order
// is semantic downstream (Louvain, frozen CSR views).
func FromAdjacency(adj [][]NodeID) *Graph {
	g := New(len(adj))
	g.EnsureNode(NodeID(len(adj) - 1))
	for u, ns := range adj {
		for _, v := range ns {
			g.push(NodeID(u), v)
		}
	}
	return g
}

// Clone returns a deep copy of the graph. With arena-backed adjacency this
// is a handful of flat copies, independent of node count granularity.
func (g *Graph) Clone() *Graph {
	return &Graph{
		heads:     append([]int32(nil), g.heads...),
		tails:     append([]int32(nil), g.tails...),
		deg:       append([]int32(nil), g.deg...),
		small:     append([]NodeID(nil), g.small...),
		smallNext: append([]int32(nil), g.smallNext...),
		large:     append([]NodeID(nil), g.large...),
		largeNext: append([]int32(nil), g.largeNext...),
		arcs:      g.arcs,
	}
}
