// Package graph implements the dynamic undirected graph substrate the
// reproduction is built on: an append-only adjacency structure sized for
// millions of edges, breadth-first traversals, connected components, and a
// degree-proportional sampler used by preferential-attachment processes.
//
// Node identifiers are dense int32 values assigned in arrival order, which
// matches the paper's anonymized event stream where users are numbered by
// account-creation time.
package graph

import (
	"errors"
	"fmt"
)

// NodeID identifies a node. IDs are dense and assigned in arrival order.
type NodeID = int32

// Graph is a growing undirected simple graph. The zero value is ready to use.
// Graph is not safe for concurrent mutation; concurrent reads are safe.
type Graph struct {
	adj   [][]NodeID
	edges int64
}

// New returns an empty graph with capacity hints for n nodes.
func New(nHint int) *Graph {
	return &Graph{adj: make([][]NodeID, 0, nHint)}
}

// AddNode appends a new node and returns its id.
func (g *Graph) AddNode() NodeID {
	g.adj = append(g.adj, nil)
	return NodeID(len(g.adj) - 1)
}

// EnsureNode grows the graph so that id is a valid node.
func (g *Graph) EnsureNode(id NodeID) {
	for NodeID(len(g.adj)) <= id {
		g.adj = append(g.adj, nil)
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 { return g.edges }

// Degree returns the degree of node u, or 0 for out-of-range ids.
func (g *Graph) Degree(u NodeID) int {
	if u < 0 || int(u) >= len(g.adj) {
		return 0
	}
	return len(g.adj[u])
}

// Neighbors returns the adjacency list of u. The returned slice is shared
// with the graph and must not be modified.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	if u < 0 || int(u) >= len(g.adj) {
		return nil
	}
	return g.adj[u]
}

// HasEdge reports whether the undirected edge {u, v} exists. It scans the
// smaller adjacency list, so it is O(min(deg(u), deg(v))).
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u < 0 || v < 0 || int(u) >= len(g.adj) || int(v) >= len(g.adj) {
		return false
	}
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// ErrSelfLoop is returned by AddEdge for u == v.
var ErrSelfLoop = errors.New("graph: self loop")

// ErrDuplicateEdge is returned by AddEdge when the edge already exists.
var ErrDuplicateEdge = errors.New("graph: duplicate edge")

// AddEdge inserts the undirected edge {u, v}, growing the node set as
// needed. Self loops and duplicate edges are rejected.
func (g *Graph) AddEdge(u, v NodeID) error {
	if u == v {
		return ErrSelfLoop
	}
	if u < 0 || v < 0 {
		return fmt.Errorf("graph: negative node id (%d, %d)", u, v)
	}
	hi := u
	if v > hi {
		hi = v
	}
	g.EnsureNode(hi)
	if g.HasEdge(u, v) {
		return ErrDuplicateEdge
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges++
	return nil
}

// ForEachEdge calls fn once per undirected edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v NodeID)) {
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				fn(NodeID(u), v)
			}
		}
	}
}

// FromAdjacency reconstructs a graph directly from a per-node adjacency
// structure, taking ownership of adj. Every undirected edge must appear
// in both endpoints' lists (the edge count is half the total list
// length), and list order is preserved exactly — the checkpoint codec
// uses this to restore a replayed graph bit-identically, adjacency order
// included, since traversal order is semantic downstream (Louvain,
// frozen CSR views).
func FromAdjacency(adj [][]NodeID) *Graph {
	var ends int64
	for _, ns := range adj {
		ends += int64(len(ns))
	}
	return &Graph{adj: adj, edges: ends / 2}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]NodeID, len(g.adj)), edges: g.edges}
	for i, ns := range g.adj {
		if len(ns) > 0 {
			c.adj[i] = append([]NodeID(nil), ns...)
		}
	}
	return c
}
