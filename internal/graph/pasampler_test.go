package graph

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestPASamplerEmpty(t *testing.T) {
	s := NewPASampler(0)
	if _, ok := s.Sample(stats.NewRand(1)); ok {
		t.Fatal("empty sampler must report !ok")
	}
}

func TestPASamplerProportional(t *testing.T) {
	// Star around node 0 with 9 leaves: deg(0)=9, leaves deg 1.
	s := NewPASampler(16)
	for v := NodeID(1); v <= 9; v++ {
		s.Observe(0, v)
	}
	if s.Len() != 18 {
		t.Fatalf("Len = %d", s.Len())
	}
	rng := stats.NewRand(2)
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		v, ok := s.Sample(rng)
		if !ok {
			t.Fatal("sampler empty")
		}
		if v == 0 {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.5) > 0.02 {
		t.Fatalf("hub sampled with p=%v, want ~0.5", p)
	}
}

func TestPASamplerTracksGraph(t *testing.T) {
	// Property: endpoint multiset reflects degrees exactly.
	rng := stats.NewRand(3)
	g := New(0)
	s := NewPASampler(0)
	const n = 25
	for i := 0; i < 120; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if g.AddEdge(u, v) == nil {
			s.Observe(u, v)
		}
	}
	counts := make([]int, n)
	for _, e := range s.endpoints {
		counts[e]++
	}
	for i := 0; i < n; i++ {
		if counts[i] != g.Degree(NodeID(i)) {
			t.Fatalf("node %d: sampler count %d != degree %d", i, counts[i], g.Degree(NodeID(i)))
		}
	}
}
