package graph

import (
	"testing"

	"repro/internal/stats"
)

// path builds 0-1-2-...-n-1.
func path(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	return g
}

func TestBFSPath(t *testing.T) {
	g := path(5)
	d := g.BFS(0)
	for i := 0; i < 5; i++ {
		if d[i] != int32(i) {
			t.Fatalf("dist[%d] = %d", i, d[i])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(0)
	g.AddEdge(0, 1)
	g.EnsureNode(3)
	d := g.BFS(0)
	if d[2] != Unreachable || d[3] != Unreachable {
		t.Fatalf("isolated nodes must be unreachable: %v", d)
	}
	if d[1] != 1 {
		t.Fatalf("dist[1] = %d", d[1])
	}
}

func TestBFSBadSource(t *testing.T) {
	g := path(3)
	d := g.BFS(-1)
	for _, x := range d {
		if x != Unreachable {
			t.Fatal("bad source must reach nothing")
		}
	}
	d = g.BFS(100)
	for _, x := range d {
		if x != Unreachable {
			t.Fatal("out-of-range source must reach nothing")
		}
	}
}

func TestBFSWithinPredicate(t *testing.T) {
	// 0-1-2 and 0-3-2: blocking node 1 forces the longer route.
	g := New(0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 2)
	d := g.BFSWithin(0, func(v NodeID) bool { return v != 1 })
	if d[1] != Unreachable {
		t.Fatalf("blocked node reached: %v", d)
	}
	if d[2] != 2 {
		t.Fatalf("dist[2] = %d, want 2 via 3", d[2])
	}
	// nil predicate behaves like BFS.
	d2 := g.BFSWithin(0, nil)
	d3 := g.BFS(0)
	for i := range d2 {
		if d2[i] != d3[i] {
			t.Fatalf("nil predicate mismatch at %d", i)
		}
	}
}

func TestShortestToSet(t *testing.T) {
	g := path(6)
	target := func(v NodeID) bool { return v == 4 || v == 5 }
	if d := g.ShortestToSet(0, target, nil); d != 4 {
		t.Fatalf("dist = %d, want 4", d)
	}
	if d := g.ShortestToSet(4, target, nil); d != 0 {
		t.Fatalf("src in target set: dist = %d, want 0", d)
	}
	// Blocked by predicate.
	if d := g.ShortestToSet(0, target, func(v NodeID) bool { return v != 3 }); d != Unreachable {
		t.Fatalf("dist = %d, want unreachable when cut", d)
	}
	if d := g.ShortestToSet(-1, target, nil); d != Unreachable {
		t.Fatalf("bad src: %d", d)
	}
}

func TestShortestToSetMatchesBFS(t *testing.T) {
	rng := stats.NewRand(5)
	g := New(0)
	const n = 60
	for i := 0; i < 150; i++ {
		g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	g.EnsureNode(n - 1)
	targets := map[NodeID]bool{7: true, 23: true, 41: true}
	target := func(v NodeID) bool { return targets[v] }
	for src := NodeID(0); src < n; src++ {
		want := int32(Unreachable)
		d := g.BFS(src)
		for v := range targets {
			if d[v] != Unreachable && (want == Unreachable || d[v] < want) {
				want = d[v]
			}
		}
		if got := g.ShortestToSet(src, target, nil); got != want {
			t.Fatalf("src %d: got %d want %d", src, got, want)
		}
	}
}

func TestComponentOf(t *testing.T) {
	g := New(0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	comp := g.ComponentOf(1)
	if len(comp) != 3 {
		t.Fatalf("component = %v", comp)
	}
}

func TestBFSTriangleInequality(t *testing.T) {
	// Property: for edge (u,v), |dist(s,u) - dist(s,v)| <= 1 when both reachable.
	rng := stats.NewRand(9)
	g := New(0)
	const n = 80
	for i := 0; i < 200; i++ {
		g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	d := g.BFS(0)
	bad := false
	g.ForEachEdge(func(u, v NodeID) {
		if d[u] != Unreachable && d[v] != Unreachable {
			diff := d[u] - d[v]
			if diff < -1 || diff > 1 {
				bad = true
			}
		}
	})
	if bad {
		t.Fatal("BFS distances violate edge Lipschitz property")
	}
}
