package graph

import "math/rand"

// PASampler draws nodes with probability proportional to their degree in
// O(1) by keeping one entry per edge endpoint. It is the core primitive of
// the preferential-attachment process in the trace generator (§3 of the
// paper: "nodes with higher degrees are more likely to be selected").
//
// The sampler is fed edge insertions via Observe and stays consistent with
// the graph it mirrors as long as every accepted edge is observed exactly
// once.
type PASampler struct {
	endpoints []NodeID
}

// NewPASampler returns an empty sampler with a capacity hint for e edges.
func NewPASampler(eHint int) *PASampler {
	return &PASampler{endpoints: make([]NodeID, 0, 2*eHint)}
}

// Observe records the insertion of edge {u, v}.
func (s *PASampler) Observe(u, v NodeID) {
	s.endpoints = append(s.endpoints, u, v)
}

// Sample draws one node with probability proportional to degree. It reports
// false when no edges have been observed yet.
func (s *PASampler) Sample(rng *rand.Rand) (NodeID, bool) {
	if len(s.endpoints) == 0 {
		return 0, false
	}
	return s.endpoints[rng.Intn(len(s.endpoints))], true
}

// Len returns the number of stored endpoints (2 × observed edges).
func (s *PASampler) Len() int { return len(s.endpoints) }
