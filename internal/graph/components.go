package graph

// UnionFind is a disjoint-set forest with path compression and union by
// size, used for incremental connected-component tracking while a trace
// streams in.
type UnionFind struct {
	parent []int32
	size   []int32
	sets   int
}

// NewUnionFind creates a union-find over n singleton elements.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n), size: make([]int32, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// Grow extends the structure to n elements, adding singletons.
func (uf *UnionFind) Grow(n int) {
	for len(uf.parent) < n {
		uf.parent = append(uf.parent, int32(len(uf.parent)))
		uf.size = append(uf.size, 1)
		uf.sets++
	}
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int32) int32 {
	root := x
	for uf.parent[root] != root {
		root = uf.parent[root]
	}
	for uf.parent[x] != root {
		uf.parent[x], x = root, uf.parent[x]
	}
	return root
}

// Union merges the sets containing x and y; it reports whether a merge
// happened (false if they were already together).
func (uf *UnionFind) Union(x, y int32) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.size[rx] < uf.size[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	uf.size[rx] += uf.size[ry]
	uf.sets--
	return true
}

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int32) bool { return uf.Find(x) == uf.Find(y) }

// SetCount returns the number of disjoint sets.
func (uf *UnionFind) SetCount() int { return uf.sets }

// SizeOf returns the size of the set containing x.
func (uf *UnionFind) SizeOf(x int32) int32 { return uf.size[uf.Find(x)] }

// Len returns the number of elements tracked.
func (uf *UnionFind) Len() int { return len(uf.parent) }

// LargestComponent returns the member nodes of the graph's largest connected
// component (ties broken by lowest representative id).
func (g *Graph) LargestComponent() []NodeID {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	uf := NewUnionFind(n)
	g.ForEachEdge(func(u, v NodeID) { uf.Union(u, v) })
	best := int32(0)
	bestSize := int32(0)
	for i := 0; i < n; i++ {
		r := uf.Find(int32(i))
		if r == int32(i) && uf.size[r] > bestSize {
			best, bestSize = r, uf.size[r]
		}
	}
	out := make([]NodeID, 0, bestSize)
	for i := 0; i < n; i++ {
		if uf.Find(int32(i)) == best {
			out = append(out, NodeID(i))
		}
	}
	return out
}
