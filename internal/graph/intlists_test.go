package graph

import (
	"math/rand"
	"testing"
)

// TestInt32ListsMatchesReference drives random appends against Int32Lists
// and a plain [][]int32 oracle, checking every accessor at checkpoints:
// the arena layout (chunk chains, size classes, tail fill derived from
// length) must be invisible to readers.
func TestInt32ListsMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var l Int32Lists
		var ref [][]int32
		check := func(step int) {
			t.Helper()
			if l.NumLists() != len(ref) {
				t.Fatalf("seed %d step %d: NumLists %d, want %d", seed, step, l.NumLists(), len(ref))
			}
			var total int64
			var scratch []int32
			for i, want := range ref {
				total += int64(len(want))
				if l.Len(i) != len(want) {
					t.Fatalf("seed %d step %d: Len(%d) = %d, want %d", seed, step, i, l.Len(i), len(want))
				}
				scratch = l.AppendTo(scratch[:0], i)
				if len(scratch) != len(want) {
					t.Fatalf("seed %d step %d: AppendTo(%d) len %d, want %d", seed, step, i, len(scratch), len(want))
				}
				for j, v := range want {
					if scratch[j] != v {
						t.Fatalf("seed %d step %d: list %d slot %d = %d, want %d", seed, step, i, j, scratch[j], v)
					}
				}
				last, ok := l.Last(i)
				if ok != (len(want) > 0) {
					t.Fatalf("seed %d step %d: Last(%d) ok=%v with %d values", seed, step, i, ok, len(want))
				}
				if ok && last != want[len(want)-1] {
					t.Fatalf("seed %d step %d: Last(%d) = %d, want %d", seed, step, i, last, want[len(want)-1])
				}
			}
			if l.Total() != total {
				t.Fatalf("seed %d step %d: Total %d, want %d", seed, step, l.Total(), total)
			}
		}
		for step := 0; step < 3000; step++ {
			// Skewed index choice so some lists cross both chunk-class
			// boundaries (8 and 8+64) while others stay empty or short.
			i := rng.Intn(40)
			if rng.Intn(4) == 0 {
				i = rng.Intn(3)
			}
			v := int32(rng.Intn(1 << 20))
			l.Append(i, v)
			for len(ref) <= i {
				ref = append(ref, nil)
			}
			ref[i] = append(ref[i], v)
			if step%500 == 499 {
				check(step)
			}
		}
		check(3000)
		// Out-of-range reads are empty, not panics.
		if l.Len(-1) != 0 || l.Len(1<<20) != 0 {
			t.Fatalf("out-of-range Len not 0")
		}
		if got := l.AppendTo(nil, 1<<20); got != nil {
			t.Fatalf("out-of-range AppendTo appended %v", got)
		}
		if _, ok := l.Last(-1); ok {
			t.Fatalf("out-of-range Last ok")
		}
	}
}
