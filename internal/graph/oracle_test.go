package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// floydWarshall computes all-pairs shortest paths as an oracle.
func floydWarshall(g *Graph) [][]int32 {
	n := g.NumNodes()
	const inf = int32(1 << 30)
	d := make([][]int32, n)
	for i := range d {
		d[i] = make([]int32, n)
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else {
				d[i][j] = inf
			}
		}
	}
	g.ForEachEdge(func(u, v NodeID) {
		d[u][v] = 1
		d[v][u] = 1
	})
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if d[i][k] >= inf {
				continue
			}
			for j := 0; j < n; j++ {
				if d[k][j] < inf && d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

// TestBFSMatchesFloydWarshall cross-checks BFS against the O(n^3) oracle on
// random small graphs.
func TestBFSMatchesFloydWarshall(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRand(seed)
		n := 2 + rng.Intn(18)
		g := New(n)
		g.EnsureNode(NodeID(n - 1))
		edges := rng.Intn(3 * n)
		for i := 0; i < edges; i++ {
			g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		oracle := floydWarshall(g)
		for s := 0; s < n; s++ {
			bfs := g.BFS(NodeID(s))
			for v := 0; v < n; v++ {
				want := oracle[s][v]
				if want >= 1<<30 {
					want = Unreachable
				}
				if bfs[v] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
