package stats

import (
	"errors"
	"math"
	"math/rand"
)

// NewRand returns a deterministic *rand.Rand for the given seed. All
// randomized code in this repository takes an explicit RNG so experiments
// are reproducible.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ReservoirInt maintains a uniform random sample of fixed size k over a
// stream of ints (Algorithm R).
type ReservoirInt struct {
	k      int
	seen   int64
	sample []int
	rng    *rand.Rand
}

// NewReservoirInt creates a reservoir of capacity k using rng.
func NewReservoirInt(k int, rng *rand.Rand) (*ReservoirInt, error) {
	if k <= 0 {
		return nil, errors.New("stats: reservoir capacity must be positive")
	}
	if rng == nil {
		return nil, errors.New("stats: nil rng")
	}
	return &ReservoirInt{k: k, rng: rng, sample: make([]int, 0, k)}, nil
}

// Add offers one stream element to the reservoir.
func (r *ReservoirInt) Add(v int) {
	r.seen++
	if len(r.sample) < r.k {
		r.sample = append(r.sample, v)
		return
	}
	j := r.rng.Int63n(r.seen)
	if j < int64(r.k) {
		r.sample[j] = v
	}
}

// Sample returns the current sample (shared slice; do not modify).
func (r *ReservoirInt) Sample() []int { return r.sample }

// Seen returns the number of elements offered so far.
func (r *ReservoirInt) Seen() int64 { return r.seen }

// SampleWithoutReplacement returns k distinct values drawn uniformly from
// [0, n). If k >= n it returns the full range in random order.
func SampleWithoutReplacement(n, k int, rng *rand.Rand) []int {
	if n <= 0 {
		return nil
	}
	if k >= n {
		out := rng.Perm(n)
		return out
	}
	// Floyd's algorithm.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// WeightedChoice returns an index drawn proportionally to weights. Weights
// must be non-negative with a positive sum.
func WeightedChoice(weights []float64, rng *rand.Rand) (int, error) {
	var total float64
	for _, w := range weights {
		if w < 0 {
			return 0, errors.New("stats: negative weight")
		}
		total += w
	}
	if total <= 0 {
		return 0, errors.New("stats: zero total weight")
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i, nil
		}
	}
	return len(weights) - 1, nil
}

// Pareto draws from a Pareto(xm, alpha) distribution: P(X > x) = (xm/x)^alpha
// for x >= xm. Used for power-law edge inter-arrival gaps (Fig 2a).
func Pareto(xm, alpha float64, rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}
