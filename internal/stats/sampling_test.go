package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReservoirFillsToCapacity(t *testing.T) {
	rng := NewRand(1)
	r, err := NewReservoirInt(5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r.Add(i)
	}
	if len(r.Sample()) != 3 || r.Seen() != 3 {
		t.Fatalf("sample %v seen %d", r.Sample(), r.Seen())
	}
	for i := 3; i < 100; i++ {
		r.Add(i)
	}
	if len(r.Sample()) != 5 || r.Seen() != 100 {
		t.Fatalf("sample %v seen %d", r.Sample(), r.Seen())
	}
}

func TestReservoirErrors(t *testing.T) {
	if _, err := NewReservoirInt(0, NewRand(1)); err == nil {
		t.Fatal("want capacity error")
	}
	if _, err := NewReservoirInt(3, nil); err == nil {
		t.Fatal("want nil-rng error")
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 20 items should appear in a size-5 reservoir with p=0.25.
	counts := make([]int, 20)
	rng := NewRand(42)
	const trials = 4000
	for trial := 0; trial < trials; trial++ {
		r, _ := NewReservoirInt(5, rng)
		for i := 0; i < 20; i++ {
			r.Add(i)
		}
		for _, v := range r.Sample() {
			counts[v]++
		}
	}
	for i, c := range counts {
		p := float64(c) / trials
		if math.Abs(p-0.25) > 0.04 {
			t.Fatalf("item %d selected with p=%v, want ~0.25", i, p)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := NewRand(3)
	got := SampleWithoutReplacement(100, 10, rng)
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate: %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacementEdge(t *testing.T) {
	rng := NewRand(3)
	if got := SampleWithoutReplacement(0, 5, rng); got != nil {
		t.Fatalf("n=0 should give nil, got %v", got)
	}
	got := SampleWithoutReplacement(4, 10, rng)
	if len(got) != 4 {
		t.Fatalf("k>=n should return all: %v", got)
	}
}

func TestSampleWithoutReplacementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRand(seed)
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(n)
		got := SampleWithoutReplacement(n, k, rng)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedChoice(t *testing.T) {
	rng := NewRand(11)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 8000; i++ {
		j, err := WeightedChoice(w, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[j]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight item chosen %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.4 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoiceErrors(t *testing.T) {
	rng := NewRand(1)
	if _, err := WeightedChoice([]float64{0, 0}, rng); err == nil {
		t.Fatal("want zero-total error")
	}
	if _, err := WeightedChoice([]float64{1, -1}, rng); err == nil {
		t.Fatal("want negative-weight error")
	}
}

func TestParetoSupport(t *testing.T) {
	rng := NewRand(5)
	for i := 0; i < 1000; i++ {
		x := Pareto(2, 1.5, rng)
		if x < 2 {
			t.Fatalf("Pareto below xm: %v", x)
		}
	}
}

func TestParetoTail(t *testing.T) {
	// P(X > 2*xm) = 0.5^alpha; check empirically for alpha=1.
	rng := NewRand(6)
	n, over := 20000, 0
	for i := 0; i < n; i++ {
		if Pareto(1, 1, rng) > 2 {
			over++
		}
	}
	p := float64(over) / float64(n)
	if math.Abs(p-0.5) > 0.02 {
		t.Fatalf("tail prob = %v, want ~0.5", p)
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must give same stream")
		}
	}
}
