package stats

import "sort"

// CDF is an empirical cumulative distribution function built from samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// index of first element > x
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest sample x with P(X <= x) >= q, for q in (0,1].
func (c *CDF) Quantile(q float64) (float64, error) {
	if len(c.sorted) == 0 {
		return 0, ErrEmpty
	}
	if q <= 0 {
		return c.sorted[0], nil
	}
	if q > 1 {
		q = 1
	}
	i := int(q*float64(len(c.sorted))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i], nil
}

// Points returns up to max evenly spaced (x, P(X<=x)) points suitable for
// plotting the CDF curve. If max <= 0 or exceeds the sample count, one point
// per sample is returned.
func (c *CDF) Points(max int) (xs, ps []float64) {
	n := len(c.sorted)
	if n == 0 {
		return nil, nil
	}
	step := 1
	if max > 0 && n > max {
		step = n / max
	}
	for i := 0; i < n; i += step {
		xs = append(xs, c.sorted[i])
		ps = append(ps, float64(i+1)/float64(n))
	}
	// Always include the final point so the curve reaches 1.
	if xs[len(xs)-1] != c.sorted[n-1] || ps[len(ps)-1] != 1 {
		xs = append(xs, c.sorted[n-1])
		ps = append(ps, 1)
	}
	return xs, ps
}
