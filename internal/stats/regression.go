package stats

import (
	"errors"
	"math"
)

// LinearFit holds the result of a simple least-squares line fit y = a + b*x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// FitLine fits y = a + b*x by ordinary least squares.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: need at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: x has zero variance")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 0.0
	if syy > 0 {
		r2 = sxy * sxy / (sxx * syy)
	}
	return LinearFit{Intercept: a, Slope: b, R2: r2}, nil
}

// PolyFit fits a polynomial of the given degree by least squares, returning
// coefficients c[0] + c[1]*x + ... + c[degree]*x^degree. The paper fits α(t)
// with a degree-5 polynomial of the network edge count (Fig 3c).
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, errors.New("stats: length mismatch")
	}
	if degree < 0 {
		return nil, errors.New("stats: negative degree")
	}
	n := degree + 1
	if len(xs) < n {
		return nil, errors.New("stats: not enough points for degree")
	}
	// Normal equations: (V^T V) c = V^T y with Vandermonde V.
	a := make([][]float64, n) // augmented matrix n x (n+1)
	for i := range a {
		a[i] = make([]float64, n+1)
	}
	// Precompute power sums Σ x^k for k in [0, 2*degree] and Σ x^k y.
	pow := make([]float64, 2*degree+1)
	rhs := make([]float64, n)
	for i := range xs {
		xp := 1.0
		for k := 0; k <= 2*degree; k++ {
			pow[k] += xp
			if k < n {
				rhs[k] += xp * ys[i]
			}
			xp *= xs[i]
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			a[r][c] = pow[r+c]
		}
		a[r][n] = rhs[r]
	}
	if err := gaussSolve(a); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = a[i][n]
	}
	return out, nil
}

// gaussSolve solves the augmented system in place with partial pivoting.
func gaussSolve(a [][]float64) error {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-300 {
			return errors.New("stats: singular system")
		}
		a[col], a[piv] = a[piv], a[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := a[r][n]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * a[c][n]
		}
		a[r][n] = s / a[r][r]
	}
	return nil
}

// PolyEval evaluates the polynomial with coefficients c (low order first) at x.
func PolyEval(c []float64, x float64) float64 {
	var y float64
	for i := len(c) - 1; i >= 0; i-- {
		y = y*x + c[i]
	}
	return y
}

// FitPowerLaw fits y = C * x^alpha on positive data by least squares in
// log-log space and reports the MSE of the fit in *linear* space, matching
// the paper's goodness-of-fit metric for p_e(d) (Figs 3a–3b).
func FitPowerLaw(xs, ys []float64) (alpha, c, mse float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, errors.New("stats: length mismatch")
	}
	var lx, ly []float64
	var px, py []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
			px = append(px, xs[i])
			py = append(py, ys[i])
		}
	}
	if len(lx) < 2 {
		return 0, 0, 0, errors.New("stats: need at least two positive points")
	}
	fit, err := FitLine(lx, ly)
	if err != nil {
		return 0, 0, 0, err
	}
	alpha = fit.Slope
	c = math.Exp(fit.Intercept)
	var ss float64
	for i := range px {
		pred := c * math.Pow(px[i], alpha)
		d := pred - py[i]
		ss += d * d
	}
	mse = ss / float64(len(px))
	return alpha, c, mse, nil
}
