// Package stats provides the small numeric substrate used throughout the
// reproduction: descriptive statistics, histograms (linear and logarithmic),
// empirical distribution functions, least-squares fitting (linear and
// polynomial), correlation, and deterministic sampling helpers.
//
// Everything here is dependency-free and deterministic given a seed, so the
// figure harnesses are reproducible run to run.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions that need at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (division by n, not n-1).
// It returns 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Pearson returns the Pearson correlation coefficient of the paired samples
// (xs[i], ys[i]). It returns 0 if either side has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// MSE returns the mean squared error between predicted and observed values.
func MSE(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var ss float64
	for i := range pred {
		d := pred[i] - obs[i]
		ss += d * d
	}
	return ss / float64(len(pred)), nil
}
