package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Underflow != 1 {
		t.Fatalf("underflow = %d", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Fatalf("overflow = %d", h.Overflow)
	}
	want := []int64{2, 1, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("want bin-count error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("want min<max error")
	}
}

func TestHistogramPDFIntegratesToOne(t *testing.T) {
	h, _ := NewHistogram(0, 1, 17)
	rng := NewRand(7)
	for i := 0; i < 10000; i++ {
		h.Add(rng.Float64())
	}
	pdf := h.PDF()
	w := 1.0 / 17
	var integral float64
	for _, d := range pdf {
		integral += d * w
	}
	if !almostEq(integral, 1, 1e-9) {
		t.Fatalf("integral = %v", integral)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); !almostEq(got, 1, 1e-12) {
		t.Fatalf("center(0) = %v", got)
	}
	if got := h.BinCenter(4); !almostEq(got, 9, 1e-12) {
		t.Fatalf("center(4) = %v", got)
	}
}

func TestLogHistogram(t *testing.T) {
	h, err := NewLogHistogram(2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Add(0) || h.Add(-3) {
		t.Fatal("non-positive samples must be rejected")
	}
	for _, x := range []float64{1, 1.5, 2, 3, 4, 100} {
		if !h.Add(x) {
			t.Fatalf("Add(%v) rejected", x)
		}
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	bs := h.Buckets()
	if len(bs) == 0 {
		t.Fatal("no buckets")
	}
	// Buckets sorted by center, counts sum to total.
	var sum int64
	for i, b := range bs {
		sum += b.Count
		if i > 0 && bs[i-1].Center >= b.Center {
			t.Fatal("buckets not sorted")
		}
	}
	if sum != h.Total() {
		t.Fatalf("bucket counts sum %d != total %d", sum, h.Total())
	}
}

func TestLogHistogramBase(t *testing.T) {
	if _, err := NewLogHistogram(1); err == nil {
		t.Fatal("want base error")
	}
}

func TestLogHistogramDensityIntegral(t *testing.T) {
	// Property: sum over buckets of density * width == 1.
	f := func(seed int64) bool {
		rng := NewRand(seed)
		h, _ := NewLogHistogram(1.5)
		n := 100 + rng.Intn(1000)
		for i := 0; i < n; i++ {
			h.Add(math.Exp(rng.NormFloat64() * 2))
		}
		var integral float64
		for _, b := range h.Buckets() {
			// width = hi-lo; recover from center: center = sqrt(lo*hi), hi = lo*base
			lo := b.Center / math.Sqrt(1.5)
			hi := lo * 1.5
			integral += b.Density * (hi - lo)
		}
		return almostEq(integral, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestIntCounts(t *testing.T) {
	var c IntCounts
	c.Add(3)
	c.Add(3)
	c.Add(0)
	c.Add(-1) // ignored
	if c.Count(3) != 2 || c.Count(0) != 1 || c.Count(5) != 0 || c.Count(-1) != 0 {
		t.Fatalf("counts wrong: %+v", c)
	}
	if c.Total() != 3 {
		t.Fatalf("total = %d", c.Total())
	}
	if c.Max() != 3 {
		t.Fatalf("max = %d", c.Max())
	}
	vs, ns := c.NonZero()
	if len(vs) != 2 || vs[0] != 0 || vs[1] != 3 || ns[0] != 1 || ns[1] != 2 {
		t.Fatalf("NonZero = %v %v", vs, ns)
	}
}

func TestIntCountsEmptyMax(t *testing.T) {
	var c IntCounts
	if c.Max() != -1 {
		t.Fatalf("empty Max = %d, want -1", c.Max())
	}
}
