package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSumMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Sum(xs); got != 10 {
		t.Fatalf("Sum = %v, want 10", got)
	}
	if got := Mean(xs); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Variance(xs); !almostEq(got, 1.25, 1e-12) {
		t.Fatalf("Variance = %v, want 1.25", got)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(1.25), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Fatalf("Variance(single) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatalf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	} {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("want error for p>100")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Fatalf("perfect positive correlation = %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Fatalf("perfect negative correlation = %v", r)
	}
	flat := []float64{5, 5, 5, 5}
	r, _ = Pearson(xs, flat)
	if r != 0 {
		t.Fatalf("zero-variance correlation = %v, want 0", r)
	}
	if _, err := Pearson(xs, xs[:2]); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

func TestPearsonRange(t *testing.T) {
	// Property: |r| <= 1 for random inputs.
	f := func(seedRaw int64) bool {
		rng := NewRand(seedRaw)
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		return err == nil && r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{1, 2}, []float64{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 2, 1e-12) {
		t.Fatalf("MSE = %v, want 2", got)
	}
	if _, err := MSE(nil, nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestFitLine(t *testing.T) {
	// y = 3 + 2x exactly.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{3, 5, 7, 9}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Intercept, 3, 1e-10) || !almostEq(fit.Slope, 2, 1e-10) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almostEq(fit.R2, 1, 1e-10) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
	if _, err := FitLine([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("want zero-variance error")
	}
}

func TestPolyFitExact(t *testing.T) {
	// y = 1 - 2x + 0.5x^3
	coef := []float64{1, -2, 0, 0.5}
	var xs, ys []float64
	for x := -3.0; x <= 3; x += 0.25 {
		xs = append(xs, x)
		ys = append(ys, PolyEval(coef, x))
	}
	got, err := PolyFit(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coef {
		if !almostEq(got[i], coef[i], 1e-8) {
			t.Fatalf("coef[%d] = %v, want %v (all: %v)", i, got[i], coef[i], got)
		}
	}
}

func TestPolyFitDegreeZero(t *testing.T) {
	got, err := PolyFit([]float64{1, 2, 3}, []float64{4, 6, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got[0], 6, 1e-12) {
		t.Fatalf("constant fit = %v, want mean 6", got[0])
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{1}, 2); err == nil {
		t.Fatal("want not-enough-points error")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Fatal("want negative degree error")
	}
}

func TestPolyFitRecoversRandomPolys(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRand(seed)
		deg := 1 + rng.Intn(4)
		coef := make([]float64, deg+1)
		for i := range coef {
			coef[i] = rng.Float64()*4 - 2
		}
		var xs, ys []float64
		for x := -2.0; x <= 2; x += 0.1 {
			xs = append(xs, x)
			ys = append(ys, PolyEval(coef, x))
		}
		got, err := PolyFit(xs, ys, deg)
		if err != nil {
			return false
		}
		for i := range coef {
			if !almostEq(got[i], coef[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFitPowerLaw(t *testing.T) {
	// y = 3 x^0.78, the exponent of Fig 3(a).
	var xs, ys []float64
	for d := 1; d <= 1000; d *= 2 {
		xs = append(xs, float64(d))
		ys = append(ys, 3*math.Pow(float64(d), 0.78))
	}
	alpha, c, mse, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(alpha, 0.78, 1e-9) || !almostEq(c, 3, 1e-8) {
		t.Fatalf("alpha=%v c=%v", alpha, c)
	}
	if mse > 1e-15 {
		t.Fatalf("mse = %v on exact data", mse)
	}
}

func TestFitPowerLawIgnoresNonPositive(t *testing.T) {
	xs := []float64{-1, 0, 1, 2, 4}
	ys := []float64{5, 5, 2, 4, 8}
	alpha, _, _, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(alpha, 1, 1e-9) {
		t.Fatalf("alpha = %v, want 1 (y=2x over positives)", alpha)
	}
	if _, _, _, err := FitPowerLaw([]float64{0}, []float64{1}); err == nil {
		t.Fatal("want error with <2 positive points")
	}
}
