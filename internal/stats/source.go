package stats

import "math/rand"

// Source is a checkpointable rand.Source64: it wraps the standard
// library's seeded source and counts draws, so a consumer's RNG state can
// be externalized as the pair (seed, draws) and restored bit-exactly by
// reseeding and fast-forwarding. Both Int63 and Uint64 advance the
// underlying generator by exactly one step, so the draw count fully
// determines the generator state regardless of which *rand.Rand methods
// produced the draws.
//
// Wrapping rand.NewSource (rather than substituting another generator)
// keeps every sampled figure numerically identical to the pre-checkpoint
// pipeline.
type Source struct {
	seed  int64
	draws int64
	src   rand.Source64
}

// NewSource returns a counting source seeded with seed.
func NewSource(seed int64) *Source {
	return &Source{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64 — *rand.Rand detects it and uses the
// same one-step path as the standard seeded source.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count.
func (s *Source) Seed(seed int64) {
	s.seed, s.draws = seed, 0
	s.src.Seed(seed)
}

// SeedValue returns the seed the source currently derives from.
func (s *Source) SeedValue() int64 { return s.seed }

// Draws returns the number of generator steps taken since the last seed.
func (s *Source) Draws() int64 { return s.draws }

// Restore reseeds the source and fast-forwards it by draws steps,
// reproducing the exact generator state a from-zero consumer had after
// that many draws.
func (s *Source) Restore(seed, draws int64) {
	s.Seed(seed)
	for i := int64(0); i < draws; i++ {
		s.src.Uint64()
	}
	s.draws = draws
}
