package stats

import (
	"errors"
	"math"
	"sort"
)

// Histogram is a fixed-width linear histogram over [Min, Max).
// Samples outside the range are counted in the under/overflow counters.
type Histogram struct {
	Min, Max  float64
	Counts    []int64
	Underflow int64
	Overflow  int64
	total     int64
}

// NewHistogram creates a histogram with n equal-width bins over [min, max).
func NewHistogram(min, max float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(min < max) {
		return nil, errors.New("stats: histogram needs min < max")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int64, n)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Min:
		h.Underflow++
	case x >= h.Max:
		h.Overflow++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard against floating-point edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// PDF returns the per-bin probability density (count / total / binwidth)
// over in-range samples only.
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.Counts))
	in := h.total - h.Underflow - h.Overflow
	if in == 0 {
		return out
	}
	w := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(in) / w
	}
	return out
}

// LogHistogram bins positive samples into logarithmically spaced buckets,
// the standard tool for visualizing power-law distributions (Figs 2a, 4c, 5a).
type LogHistogram struct {
	Base   float64 // bucket boundary growth factor, > 1
	Counts map[int]int64
	total  int64
}

// NewLogHistogram creates a log histogram whose bucket i covers
// [Base^i, Base^(i+1)).
func NewLogHistogram(base float64) (*LogHistogram, error) {
	if base <= 1 {
		return nil, errors.New("stats: log histogram base must be > 1")
	}
	return &LogHistogram{Base: base, Counts: make(map[int]int64)}, nil
}

// RestoreCounts replaces the histogram's contents with the given bucket
// counts (the total is their sum), the inverse of reading Counts — used
// by the checkpoint plane to externalize mid-stream histograms.
func (h *LogHistogram) RestoreCounts(counts map[int]int64) {
	h.Counts = make(map[int]int64, len(counts))
	h.total = 0
	for i, c := range counts {
		h.Counts[i] = c
		h.total += c
	}
}

// Add records one sample; non-positive samples are ignored and reported false.
func (h *LogHistogram) Add(x float64) bool {
	if x <= 0 {
		return false
	}
	i := int(math.Floor(math.Log(x) / math.Log(h.Base)))
	h.Counts[i]++
	h.total++
	return true
}

// Total returns the number of accepted samples.
func (h *LogHistogram) Total() int64 { return h.total }

// Bucket holds one log-histogram bucket in (center, density) form.
type Bucket struct {
	Center  float64 // geometric center of the bucket
	Count   int64
	Density float64 // count / total / bucket width
}

// Buckets returns the non-empty buckets sorted by center.
func (h *LogHistogram) Buckets() []Bucket {
	idx := make([]int, 0, len(h.Counts))
	for i := range h.Counts {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]Bucket, 0, len(idx))
	for _, i := range idx {
		lo := math.Pow(h.Base, float64(i))
		hi := lo * h.Base
		c := h.Counts[i]
		out = append(out, Bucket{
			Center:  math.Sqrt(lo * hi),
			Count:   c,
			Density: float64(c) / float64(h.total) / (hi - lo),
		})
	}
	return out
}

// IntCounts counts occurrences of small non-negative integers (e.g. community
// sizes, degrees). It grows on demand.
type IntCounts struct {
	counts []int64
	total  int64
}

// Add records one integer sample; negative values are ignored.
func (c *IntCounts) Add(v int) {
	if v < 0 {
		return
	}
	for v >= len(c.counts) {
		c.counts = append(c.counts, 0)
	}
	c.counts[v]++
	c.total++
}

// Count returns the number of times v was recorded.
func (c *IntCounts) Count(v int) int64 {
	if v < 0 || v >= len(c.counts) {
		return 0
	}
	return c.counts[v]
}

// Total returns the number of samples recorded.
func (c *IntCounts) Total() int64 { return c.total }

// Max returns the largest value with a nonzero count, or -1 if empty.
func (c *IntCounts) Max() int {
	for v := len(c.counts) - 1; v >= 0; v-- {
		if c.counts[v] > 0 {
			return v
		}
	}
	return -1
}

// NonZero returns (value, count) pairs for all values with nonzero counts,
// in increasing value order.
func (c *IntCounts) NonZero() (values []int, counts []int64) {
	for v, n := range c.counts {
		if n > 0 {
			values = append(values, v)
			counts = append(counts, n)
		}
	}
	return values, counts
}
