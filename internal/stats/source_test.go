package stats

import (
	"math/rand"
	"testing"
)

// TestSourceMatchesStdStream holds the no-regression guarantee: a Rand on
// the counting Source emits exactly the standard seeded stream, so
// swapping it under the sampled estimators changes no figure.
func TestSourceMatchesStdStream(t *testing.T) {
	std := rand.New(rand.NewSource(42))
	cnt := rand.New(NewSource(42))
	for i := 0; i < 1000; i++ {
		if a, b := std.Int63(), cnt.Int63(); a != b {
			t.Fatalf("draw %d: %d vs %d", i, a, b)
		}
	}
	if a, b := std.Float64(), cnt.Float64(); a != b {
		t.Fatalf("Float64: %v vs %v", a, b)
	}
	if a, b := std.Uint64(), cnt.Uint64(); a != b {
		t.Fatalf("Uint64: %v vs %v", a, b)
	}
}

// TestSourceRestore holds the checkpoint contract: (seed, draws) fully
// determines the stream, across a mix of Rand methods.
func TestSourceRestore(t *testing.T) {
	src := NewSource(7)
	rng := rand.New(src)
	for i := 0; i < 257; i++ {
		switch i % 4 {
		case 0:
			rng.Intn(100)
		case 1:
			rng.Float64()
		case 2:
			rng.Perm(5)
		case 3:
			rng.Int63n(1 << 40)
		}
	}
	draws := src.Draws()
	var want [32]int64
	for i := range want {
		want[i] = rng.Int63()
	}

	restored := NewSource(0)
	restored.Restore(7, draws)
	if restored.Draws() != draws {
		t.Fatalf("draws = %d, want %d", restored.Draws(), draws)
	}
	rng2 := rand.New(restored)
	for i := range want {
		if got := rng2.Int63(); got != want[i] {
			t.Fatalf("restored draw %d: %d vs %d", i, got, want[i])
		}
	}
}
