package stats

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {9, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 {
		t.Fatal("empty CDF must be 0 everywhere")
	}
	if _, err := c.Quantile(0.5); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	xs, ps := c.Points(10)
	if xs != nil || ps != nil {
		t.Fatal("empty CDF Points must be nil")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	for _, tc := range []struct{ q, want float64 }{
		{0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40}, {0.01, 10}, {0, 10}, {2, 40},
	} {
		got, err := c.Quantile(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	c := NewCDF(xs)
	xs[0] = 100
	if got := c.At(3); !almostEq(got, 1, 1e-12) {
		t.Fatalf("CDF aliased caller slice: At(3)=%v", got)
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRand(seed)
		n := 1 + rng.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		c := NewCDF(xs)
		px, pp := c.Points(37)
		if len(px) == 0 || pp[len(pp)-1] != 1 {
			return false
		}
		return sort.Float64sAreSorted(px) && sort.Float64sAreSorted(pp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFQuantileAtInverse(t *testing.T) {
	// Property: At(Quantile(q)) >= q.
	f := func(seed int64) bool {
		rng := NewRand(seed)
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		c := NewCDF(xs)
		for _, q := range []float64{0.01, 0.25, 0.5, 0.94, 0.99, 1} {
			v, err := c.Quantile(q)
			if err != nil || c.At(v) < q-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
