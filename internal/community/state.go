package community

import (
	"fmt"
	"io"

	"repro/internal/checkpoint"
	"repro/internal/graph"
	"repro/internal/tracking"
)

// Checkpoint codecs for the §4 pipeline. A Detector's externalized state
// is exactly what makes a δ's detection resumable: the previous
// snapshot's Louvain assignment (the seed chain), the tracker, and the
// accumulated per-snapshot results. Options are construction-time
// knowledge — the planner's config fingerprint guards their
// compatibility — so they are not serialized.

// stageStateV1 versions the §4 stages' checkpoint blobs.
const stageStateV1 = 1

// saveState serializes the detector through e.
func (d *Detector) saveState(e *checkpoint.Encoder) error {
	if d.err != nil {
		// A latched Louvain failure is not a resumable state.
		return d.err
	}
	e.Bool(d.prevComm != nil)
	e.I32s(d.prevComm)
	d.tracker.SaveState(e)
	e.U64(uint64(len(d.res.Stats)))
	for _, s := range d.res.Stats {
		e.I32(s.Day)
		e.Int(s.Nodes)
		e.I64(s.Edges)
		e.F64(s.Modularity)
		e.F64(s.AvgSimilarity)
		e.Int(s.NumCommunities)
		e.F64(s.Top5Coverage)
		for _, c := range s.TopCoverage {
			e.F64(c)
		}
	}
	e.U64(uint64(len(d.res.SizeDists)))
	for _, day := range checkpoint.SortedKeys(d.res.SizeDists) {
		e.I32(day)
		sizes := d.res.SizeDists[day]
		e.U64(uint64(len(sizes)))
		for _, s := range sizes {
			e.Int(s)
		}
	}
	e.I32(d.res.LastDay)
	e.Bool(d.res.Final != nil)
	if f := d.res.Final; f != nil {
		e.I32(f.Day)
		e.F64(f.AvgSimilarity)
		e.U64(uint64(len(f.Communities)))
		for _, id := range checkpoint.SortedKeys(f.Communities) {
			e.I64(id)
			nodes := f.Communities[id]
			e.U64(uint64(len(nodes)))
			for _, u := range nodes {
				e.I32(u)
			}
		}
	}
	return e.Err()
}

// loadState restores a freshly constructed detector from dec.
func (d *Detector) loadState(dec *checkpoint.Decoder) error {
	hadPrev := dec.Bool()
	d.prevComm = dec.I32s()
	if !hadPrev {
		d.prevComm = nil
	}
	if err := d.tracker.LoadState(dec); err != nil {
		return err
	}
	n := dec.Len()
	d.res.Stats = make([]SnapshotStat, 0, min(n, 1<<16))
	for i := 0; i < n && dec.Err() == nil; i++ {
		s := SnapshotStat{
			Day: dec.I32(), Nodes: dec.Int(), Edges: dec.I64(),
			Modularity: dec.F64(), AvgSimilarity: dec.F64(),
			NumCommunities: dec.Int(), Top5Coverage: dec.F64(),
		}
		for j := range s.TopCoverage {
			s.TopCoverage[j] = dec.F64()
		}
		d.res.Stats = append(d.res.Stats, s)
	}
	n = dec.Len()
	d.res.SizeDists = make(map[int32][]int, min(n, 1<<16))
	for i := 0; i < n && dec.Err() == nil; i++ {
		day := dec.I32()
		sn := dec.Len()
		sizes := make([]int, 0, min(sn, 1<<16))
		for j := 0; j < sn && dec.Err() == nil; j++ {
			sizes = append(sizes, dec.Int())
		}
		d.res.SizeDists[day] = sizes
	}
	d.res.LastDay = dec.I32()
	if dec.Bool() {
		f := &tracking.SnapshotResult{
			Day:           dec.I32(),
			AvgSimilarity: dec.F64(),
			Communities:   map[int64][]graph.NodeID{},
			NodeCommunity: map[graph.NodeID]int64{},
		}
		cn := dec.Len()
		for i := 0; i < cn && dec.Err() == nil; i++ {
			id := dec.I64()
			nn := dec.Len()
			nodes := make([]graph.NodeID, 0, min(nn, 1<<16))
			for j := 0; j < nn && dec.Err() == nil; j++ {
				u := dec.I32()
				nodes = append(nodes, u)
				f.NodeCommunity[u] = id
			}
			f.Communities[id] = nodes
		}
		d.res.Final = f
	}
	return dec.Err()
}

// SaveState implements engine.Checkpointer for the single-δ stage.
func (s *Stage) SaveState(w io.Writer) error {
	e := checkpoint.NewEncoder(w)
	e.U64(stageStateV1)
	if err := s.det.saveState(e); err != nil {
		return err
	}
	return e.Flush()
}

// LoadState implements engine.Checkpointer.
func (s *Stage) LoadState(r io.Reader) error {
	d := checkpoint.NewDecoder(r)
	if v := d.U64(); d.Err() == nil && v != stageStateV1 {
		return fmt.Errorf("community: checkpoint state version %d", v)
	}
	return s.det.loadState(d)
}

// SaveState implements engine.Checkpointer for the Fig 7 stage: the
// per-node activity columns and the buffered inter-arrival gaps.
func (s *UsersStage) SaveState(w io.Writer) error {
	e := checkpoint.NewEncoder(w)
	e.U64(stageStateV1)
	e.U64(uint64(len(s.nodes)))
	for _, a := range s.nodes {
		e.I32(a.lastEdge)
		e.Bool(a.hasEdge)
	}
	e.U64(uint64(len(s.gaps)))
	for _, g := range s.gaps {
		e.I32(g.u)
		e.I32(g.gap)
	}
	return e.Flush()
}

// LoadState implements engine.Checkpointer.
func (s *UsersStage) LoadState(r io.Reader) error {
	d := checkpoint.NewDecoder(r)
	if v := d.U64(); d.Err() == nil && v != stageStateV1 {
		return fmt.Errorf("users: checkpoint state version %d", v)
	}
	n := d.Len()
	s.nodes = make([]nodeActivity, 0, min(n, 1<<16))
	for i := 0; i < n && d.Err() == nil; i++ {
		s.nodes = append(s.nodes, nodeActivity{lastEdge: d.I32(), hasEdge: d.Bool()})
	}
	n = d.Len()
	s.gaps = make([]nodeGap, 0, min(n, 1<<16))
	for i := 0; i < n && d.Err() == nil; i++ {
		s.gaps = append(s.gaps, nodeGap{u: d.I32(), gap: d.I32()})
	}
	return d.Err()
}

// SaveState implements engine.Checkpointer for the δ-sweep. It runs at
// the engine's Sync barrier on the replay goroutine, so it first joins
// the detector tasks still in flight from the current snapshot — the
// per-δ states must be quiescent before serialization. Each detector's
// state is recorded under its δ so a mismatched sweep grid fails loudly.
func (s *SweepStage) SaveState(w io.Writer) error {
	s.join(nil)
	e := checkpoint.NewEncoder(w)
	e.U64(stageStateV1)
	e.U64(uint64(len(s.dets)))
	for i, det := range s.dets {
		e.F64(s.deltas[i])
		if err := det.saveState(e); err != nil {
			return fmt.Errorf("δ=%v: %w", s.deltas[i], err)
		}
	}
	return e.Flush()
}

// LoadState implements engine.Checkpointer.
func (s *SweepStage) LoadState(r io.Reader) error {
	d := checkpoint.NewDecoder(r)
	if v := d.U64(); d.Err() == nil && v != stageStateV1 {
		return fmt.Errorf("sweep: checkpoint state version %d", v)
	}
	if n := d.Len(); d.Err() == nil && n != len(s.dets) {
		return fmt.Errorf("sweep: checkpoint has %d detectors, stage %d", n, len(s.dets))
	}
	for i, det := range s.dets {
		if delta := d.F64(); d.Err() == nil && delta != s.deltas[i] {
			return fmt.Errorf("sweep: checkpoint δ[%d]=%v, stage δ=%v", i, delta, s.deltas[i])
		}
		if err := det.loadState(d); err != nil {
			return fmt.Errorf("δ=%v: %w", s.deltas[i], err)
		}
	}
	return d.Err()
}
