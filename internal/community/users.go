package community

import (
	"repro/internal/trace"
)

// SizeBucket labels one community-size class of Figs 7b–7c.
type SizeBucket struct {
	Name     string
	Min, Max int // [Min, Max)
}

// DefaultSizeBuckets reproduces the paper's buckets: [10,100], [100,1k],
// [1k,100k], 100k+.
func DefaultSizeBuckets() []SizeBucket {
	return []SizeBucket{
		{Name: "[10,100]", Min: 10, Max: 100},
		{Name: "[100,1k]", Min: 100, Max: 1000},
		{Name: "[1k,100k]", Min: 1000, Max: 100000},
		{Name: "100k+", Min: 100000, Max: 1 << 30},
	}
}

// UserImpact is the Fig 7 result: user-activity measures separated by
// community membership and community size.
type UserImpact struct {
	// CommunityGaps and NonCommunityGaps pool edge inter-arrival times
	// (days) over users inside/outside tracked communities (Fig 7a).
	CommunityGaps    []float64
	NonCommunityGaps []float64
	// LifetimesBySize maps bucket name -> user lifetimes in days; the
	// "non-community" key holds users outside every tracked community
	// (Fig 7b).
	LifetimesBySize map[string][]float64
	// InRatioBySize maps bucket name -> users' in-degree ratios (Fig 7c).
	InRatioBySize map[string][]float64
}

// AnalyzeUsers computes the Fig 7 measures: users are classified by the
// final snapshot's tracked communities, and their activity is measured
// over the whole trace. It is the batch entry point over the streaming
// UsersStage, which the engine also feeds from its single shared pass.
// The result is never nil; for a trace that is not Validate()-clean the
// replay stops at the first invalid event and the impact covers the valid
// prefix.
func AnalyzeUsers(events []trace.Event, res *Result, buckets []SizeBucket) *UserImpact {
	// A slice source cannot fail at the data-plane level.
	ui, _ := AnalyzeUsersSource(trace.SliceSource(events), res, buckets)
	return ui
}

// AnalyzeUsersSource is AnalyzeUsers over a re-openable event source.
// Invalid events are tolerated exactly like AnalyzeUsers (the impact
// covers the valid prefix), but data-plane failures — the source not
// opening, a corrupt or truncated stream — are surfaced: silently
// reporting an empty impact for an unreadable trace would be wrong.
func AnalyzeUsersSource(src trace.Source, res *Result, buckets []SizeBucket) (*UserImpact, error) {
	s := NewUsersStage(buckets, func() *Result { return res })
	st := trace.NewState(1024, 4096)
	cur, err := src.Open()
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	sink := trace.NewSink(st, trace.Hooks{OnEvent: s.OnEvent})
	for {
		ev, ok, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if err := sink.Push(ev); err != nil {
			break // invalid event: keep the valid prefix
		}
	}
	sink.Finish()
	// UsersStage's Finish never fails.
	_ = s.Finish(st)
	return s.Impact(), nil
}
