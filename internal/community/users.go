package community

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/trace"
)

// SizeBucket labels one community-size class of Figs 7b–7c.
type SizeBucket struct {
	Name     string
	Min, Max int // [Min, Max)
}

// DefaultSizeBuckets reproduces the paper's buckets: [10,100], [100,1k],
// [1k,100k], 100k+.
func DefaultSizeBuckets() []SizeBucket {
	return []SizeBucket{
		{Name: "[10,100]", Min: 10, Max: 100},
		{Name: "[100,1k]", Min: 100, Max: 1000},
		{Name: "[1k,100k]", Min: 1000, Max: 100000},
		{Name: "100k+", Min: 100000, Max: 1 << 30},
	}
}

// UserImpact is the Fig 7 result: user-activity measures separated by
// community membership and community size.
type UserImpact struct {
	// CommunityGaps and NonCommunityGaps pool edge inter-arrival times
	// (days) over users inside/outside tracked communities (Fig 7a).
	CommunityGaps    []float64
	NonCommunityGaps []float64
	// LifetimesBySize maps bucket name -> user lifetimes in days; the
	// "non-community" key holds users outside every tracked community
	// (Fig 7b).
	LifetimesBySize map[string][]float64
	// InRatioBySize maps bucket name -> users' in-degree ratios (Fig 7c).
	InRatioBySize map[string][]float64
}

// AnalyzeUsers computes the Fig 7 measures: users are classified by the
// final snapshot's tracked communities, and their activity is measured
// over the whole trace.
func AnalyzeUsers(events []trace.Event, res *Result, buckets []SizeBucket) *UserImpact {
	if len(buckets) == 0 {
		buckets = DefaultSizeBuckets()
	}
	out := &UserImpact{
		LifetimesBySize: map[string][]float64{},
		InRatioBySize:   map[string][]float64{},
	}

	// Per-node first/last edge day, gap collection, and intra-community
	// degree under the final assignment.
	type nodeAgg struct {
		join     int32
		lastEdge int32
		hasEdge  bool
		degree   int
		inDeg    int
	}
	var agg []nodeAgg
	nodeComm := map[graph.NodeID]int64{}
	commSize := map[int64]int{}
	if res.Final != nil {
		nodeComm = res.Final.NodeCommunity
		for id, nodes := range res.Final.Communities {
			commSize[id] = len(nodes)
		}
	}
	lastEdgeDay := map[graph.NodeID]int32{}
	for _, ev := range events {
		switch ev.Kind {
		case trace.AddNode:
			for int32(len(agg)) <= ev.U {
				agg = append(agg, nodeAgg{join: ev.Day})
			}
			agg[ev.U].join = ev.Day
		case trace.AddEdge:
			cu, inU := nodeComm[ev.U]
			cv, inV := nodeComm[ev.V]
			same := inU && inV && cu == cv
			for _, u := range [2]graph.NodeID{ev.U, ev.V} {
				a := &agg[u]
				a.degree++
				if same {
					a.inDeg++
				}
				if last, ok := lastEdgeDay[u]; ok {
					gap := float64(ev.Day - last)
					if gap > 0 {
						_, inComm := nodeComm[u]
						if inComm {
							out.CommunityGaps = append(out.CommunityGaps, gap)
						} else {
							out.NonCommunityGaps = append(out.NonCommunityGaps, gap)
						}
					}
				}
				lastEdgeDay[u] = ev.Day
				a.lastEdge = ev.Day
				a.hasEdge = true
			}
		}
	}

	bucketName := func(size int) string {
		for _, b := range buckets {
			if size >= b.Min && size < b.Max {
				return b.Name
			}
		}
		return ""
	}

	for u := range agg {
		a := &agg[u]
		id, inComm := nodeComm[graph.NodeID(u)]
		key := "non-community"
		if inComm {
			key = bucketName(commSize[id])
			if key == "" {
				continue
			}
		}
		if a.hasEdge {
			out.LifetimesBySize[key] = append(out.LifetimesBySize[key], float64(a.lastEdge-a.join))
		}
		if inComm && a.degree > 0 {
			out.InRatioBySize[key] = append(out.InRatioBySize[key], float64(a.inDeg)/float64(a.degree))
		}
	}
	for _, v := range out.LifetimesBySize {
		sort.Float64s(v)
	}
	for _, v := range out.InRatioBySize {
		sort.Float64s(v)
	}
	sort.Float64s(out.CommunityGaps)
	sort.Float64s(out.NonCommunityGaps)
	return out
}
