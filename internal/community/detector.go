package community

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/louvain"
	"repro/internal/tracking"
)

// Detector is the per-δ detection layer of the §4 community pipeline: the
// incremental-Louvain seed chain, the similarity tracker, and the result
// accumulation for one δ. It owns no graph — every snapshot is handed in
// as a read-only graph.View, either the live shared graph (the single-δ
// Stage drives it straight off the engine pass) or a frozen CSR snapshot
// shared by all of a sweep's detectors (SweepStage). Splitting detection
// from graph maintenance is what lets a K-δ sweep run on one graph: the
// per-δ state is just the previous assignment plus tracking histories.
//
// A Detector is single-goroutine: Advance calls must be sequential and in
// snapshot order (day D's Louvain seeds from the previous snapshot's
// assignment). Concurrency across δ values is the caller's job.
type Detector struct {
	opt      Options
	workers  int               // Louvain-prepare fan-out width; see SetWorkers
	wantDist map[int32][]int32 // snapshot day -> requested SizeDistDays it serves
	tracker  *tracking.Tracker
	prevComm []int32
	res      *Result
	err      error
	done     bool
}

// NewDetector creates a per-δ detector with Run's defaulting. Requested
// SizeDistDays that fall between snapshots are snapped to the nearest
// scheduled snapshot day (see Options.SizeDistDays).
func NewDetector(opt Options) *Detector {
	opt = opt.withDefaults()
	d := &Detector{
		opt:      opt,
		wantDist: map[int32][]int32{},
		tracker:  tracking.NewTracker(opt.MinSize),
		res:      &Result{Opt: opt, SizeDists: map[int32][]int{}},
	}
	for _, day := range opt.SizeDistDays {
		snap := opt.SnapToSnapshotDay(day)
		d.wantDist[snap] = append(d.wantDist[snap], day)
	}
	return d
}

// SetWorkers sets the fan-out width of the per-snapshot Louvain prepare
// (louvain.PrepareWorkers) when Advance has to build its own weighted
// view. It is a throughput knob only — the prepared view is bit-identical
// at any width — and therefore lives outside Options, which is hashed
// into the checkpoint fingerprint: checkpoints must stay portable across
// worker counts.
func (d *Detector) SetWorkers(n int) { d.workers = n }

// due reports whether day is a scheduled snapshot day for this detector
// with a graph of `nodes` nodes.
func (d *Detector) due(day int32, nodes int) bool {
	return d.opt.due(day, nodes)
}

// Advance runs one snapshot over the given graph view: incremental
// Louvain seeded from the previous snapshot's assignment, tracker
// matching, and the per-snapshot statistics. After a Louvain error the
// detector latches it and further Advance calls are no-ops; the error
// surfaces from Finish.
func (d *Detector) Advance(day int32, g graph.View) {
	d.AdvancePrepared(day, g, nil)
}

// AdvancePrepared is Advance with a pre-built Louvain view of g (nil
// builds one): the sweep prepares the frozen snapshot's weighted graph
// once and shares it read-only across every δ's detector, so K detectors
// don't re-derive K identical weighted graphs per snapshot.
func (d *Detector) AdvancePrepared(day int32, g graph.View, prep *louvain.Prepared) {
	if d.err != nil {
		return
	}
	if prep == nil {
		prep = louvain.PrepareWorkers(g, d.workers)
	}
	n := g.NumNodes()
	// Incremental Louvain: seed with the previous snapshot's assignment;
	// nodes that joined since get singletons.
	init := make([]int32, n)
	for i := range init {
		if i < len(d.prevComm) {
			init[i] = d.prevComm[i]
		} else {
			init[i] = -1
		}
	}
	if d.prevComm == nil {
		init = nil
	}
	lr, err := louvain.RunPrepared(prep, louvain.Options{
		Delta:     d.opt.Delta,
		MaxLevels: d.opt.MaxLevels,
		Seed:      d.opt.Seed,
		Init:      init,
	})
	if err != nil {
		d.err = fmt.Errorf("community: louvain at day %d: %w", day, err)
		return
	}
	d.prevComm = lr.Community
	snap := d.tracker.Advance(day, g, tracking.Assignment(lr.Community))
	d.res.Final = snap

	stat := SnapshotStat{
		Day:            day,
		Nodes:          n,
		Edges:          g.NumEdges(),
		Modularity:     lr.Modularity,
		AvgSimilarity:  snap.AvgSimilarity,
		NumCommunities: len(snap.Communities),
	}
	// Top-5 coverage and size distribution.
	sizes := make([]int, 0, len(snap.Communities))
	for _, nodes := range snap.Communities {
		sizes = append(sizes, len(nodes))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	top5 := 0
	for i, sz := range sizes {
		if i >= 5 {
			break
		}
		top5 += sz
		if stat.Nodes > 0 {
			stat.TopCoverage[i] = float64(sz) / float64(stat.Nodes)
		}
	}
	if stat.Nodes > 0 {
		stat.Top5Coverage = float64(top5) / float64(stat.Nodes)
	}
	for _, want := range d.wantDist[day] {
		d.res.SizeDists[want] = sizes
	}
	d.res.Stats = append(d.res.Stats, stat)
	d.res.LastDay = day
}

// Finish seals the detector: it reports any Louvain error, ErrNoSnapshots
// for traces that never reached snapshot size, and otherwise attaches the
// tracker's event log and histories to the result.
func (d *Detector) Finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.res.Stats) == 0 {
		return ErrNoSnapshots
	}
	d.res.Events = d.tracker.Events()
	d.res.Histories = d.tracker.Histories()
	d.done = true
	return nil
}

// Result returns the detector's output after a successful Finish; nil
// before.
func (d *Detector) Result() *Result {
	if !d.done {
		return nil
	}
	return d.res
}
