package community

import (
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/svm"
	"repro/internal/trace"
	"repro/internal/tracking"
)

var (
	runOnce   sync.Once
	runEvents []trace.Event
	runRes    *Result
	runErr    error
)

// pipeline runs (once) the community pipeline over a small merge trace.
func pipeline(t *testing.T) ([]trace.Event, *Result) {
	t.Helper()
	runOnce.Do(func() {
		cfg := gen.SmallConfig()
		cfg.Days = 220
		tr, err := gen.Generate(cfg)
		if err != nil {
			runErr = err
			return
		}
		runEvents = tr.Events
		opt := DefaultOptions()
		opt.SizeDistDays = []int32{200}
		runRes, runErr = Run(runEvents, opt)
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return runEvents, runRes
}

func TestRunProducesSnapshots(t *testing.T) {
	_, res := pipeline(t)
	if len(res.Stats) < 10 {
		t.Fatalf("snapshots = %d", len(res.Stats))
	}
	for i, s := range res.Stats {
		if s.Modularity < -0.5 || s.Modularity > 1 {
			t.Fatalf("snapshot %d day %d: modularity %v out of band", i, s.Day, s.Modularity)
		}
		if s.Top5Coverage < 0 || s.Top5Coverage > 1 {
			t.Fatalf("top5 coverage %v", s.Top5Coverage)
		}
		if i > 0 && s.Day <= res.Stats[i-1].Day {
			t.Fatal("snapshot days not increasing")
		}
	}
	// Strong community structure claim of §4.1: modularity > 0.4 on most
	// snapshots once the (small test) network has matured.
	var mature, strong int
	for _, s := range res.Stats {
		if s.Day >= 120 {
			mature++
			if s.Modularity > 0.4 {
				strong++
			}
		}
	}
	if mature == 0 || float64(strong)/float64(mature) < 0.8 {
		t.Fatalf("modularity > 0.4 on only %d/%d mature snapshots", strong, mature)
	}
}

func TestSimilarityReasonable(t *testing.T) {
	_, res := pipeline(t)
	// After warmup, matched similarity should be meaningfully positive.
	var sum float64
	var n int
	for _, s := range res.Stats {
		if s.Day >= 100 {
			sum += s.AvgSimilarity
			n++
		}
	}
	if n == 0 {
		t.Fatal("no mature snapshots")
	}
	if avg := sum / float64(n); avg < 0.3 {
		t.Fatalf("avg similarity = %v, tracking too unstable", avg)
	}
}

func TestSizeDistRecorded(t *testing.T) {
	_, res := pipeline(t)
	sizes, ok := res.SizeDists[200]
	if !ok {
		// Day 200 may not be on the 3-day grid from StartDay=20; the
		// grid covers 20, 23, ..., so 200 is on it.
		t.Fatalf("no size distribution for day 200; keys=%v", res.SizeDists)
	}
	if len(sizes) == 0 {
		t.Fatal("empty size distribution")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatal("sizes not sorted descending")
		}
	}
	if sizes[len(sizes)-1] < res.Opt.MinSize {
		t.Fatalf("community below MinSize: %d", sizes[len(sizes)-1])
	}
}

func TestLifetimes(t *testing.T) {
	_, res := pipeline(t)
	ls := res.Lifetimes()
	if len(ls) == 0 {
		t.Fatal("no lifetimes")
	}
	for _, l := range ls {
		if l < 0 {
			t.Fatalf("negative lifetime %v", l)
		}
	}
	// The paper finds most communities short-lived: the median lifetime
	// must be well below the trace length.
	med := ls[len(ls)/2]
	if med > 150 {
		t.Fatalf("median lifetime %v too long for a dynamic network", med)
	}
}

func TestSizeRatiosShapes(t *testing.T) {
	_, res := pipeline(t)
	mr, sr := res.SizeRatios()
	if len(mr) == 0 {
		t.Fatal("no merge events")
	}
	for _, r := range append(append([]float64{}, mr...), sr...) {
		if r <= 0 || r > 1 {
			t.Fatalf("ratio out of (0,1]: %v", r)
		}
	}
	// Small-into-large merges must occur (the dominant paper pattern);
	// the full distributional claim is checked at scale in EXPERIMENTS.md.
	if mr[0] > 0.35 {
		t.Fatalf("no small-into-large merge observed; min ratio %v", mr[0])
	}
}

func TestStrongestTies(t *testing.T) {
	_, res := pipeline(t)
	ties, frac := res.StrongestTies()
	if len(ties) == 0 {
		t.Fatal("no merge events")
	}
	// The paper reports 99%; any healthy tracker should be above 50%.
	if frac < 0.5 {
		t.Fatalf("strongest-tie fraction = %v", frac)
	}
}

func TestBuildMergeDataset(t *testing.T) {
	_, res := pipeline(t)
	ds := BuildMergeDataset(res, -1)
	if len(ds.X) < 20 {
		t.Fatalf("dataset too small: %d", len(ds.X))
	}
	if len(ds.X) != len(ds.Y) || len(ds.X) != len(ds.Age) {
		t.Fatal("dataset lengths inconsistent")
	}
	for _, x := range ds.X {
		if len(x) != FeatureCount {
			t.Fatalf("feature count = %d", len(x))
		}
	}
	pf := ds.PositiveFraction()
	if pf <= 0 || pf >= 1 {
		t.Fatalf("positive fraction = %v (need both classes)", pf)
	}
	// Exclusion: excluding all birthdays at the network merge day must
	// not grow the dataset.
	ds2 := BuildMergeDataset(res, 150)
	if len(ds2.X) > len(ds.X) {
		t.Fatal("exclusion grew the dataset")
	}
}

func TestEvaluateMergePrediction(t *testing.T) {
	_, res := pipeline(t)
	ds := BuildMergeDataset(res, 150)
	bins, overall, err := EvaluateMergePrediction(ds, 20, svm.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) == 0 {
		t.Fatal("no age bins")
	}
	if overall.N == 0 {
		t.Fatal("empty test set")
	}
	// The held-out positive count is tiny at test scale, so only overall
	// accuracy is asserted here; the paper's ~75% per-class claim is
	// checked at scale in EXPERIMENTS.md.
	if overall.Accuracy < 0.6 {
		t.Fatalf("accuracy too low: %+v", overall)
	}
	if _, _, err := EvaluateMergePrediction(&MergeDataset{}, 10, svm.Options{}); err != ErrDatasetTooSmall {
		t.Fatalf("err = %v", err)
	}
}

func TestAnalyzeUsers(t *testing.T) {
	events, res := pipeline(t)
	ui := AnalyzeUsers(events, res, nil)
	if len(ui.CommunityGaps) == 0 {
		t.Fatal("no community-user gaps")
	}
	if len(ui.LifetimesBySize) == 0 {
		t.Fatal("no lifetime buckets")
	}
	// Community users must exist in at least one size bucket.
	foundBucket := false
	for k, v := range ui.LifetimesBySize {
		if k != "non-community" && len(v) > 0 {
			foundBucket = true
		}
	}
	if !foundBucket {
		t.Fatal("no community users bucketed")
	}
	for k, v := range ui.InRatioBySize {
		for _, r := range v {
			if r < 0 || r > 1 {
				t.Fatalf("in-degree ratio out of range in %s: %v", k, r)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	// A node-only trace never reaches snapshot size.
	evs := []trace.Event{{Kind: trace.AddNode, Day: 0, U: 0}}
	if _, err := Run(evs, DefaultOptions()); err != ErrNoSnapshots {
		t.Fatalf("err = %v", err)
	}
}

func TestCommunityOfNode(t *testing.T) {
	_, res := pipeline(t)
	found := false
	for u := graph0; u < 2000; u++ {
		if _, ok := res.CommunityOfNode(u); ok {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no node in any final community")
	}
}

const graph0 = int32(0)

func TestEventsConsistency(t *testing.T) {
	_, res := pipeline(t)
	for _, ev := range res.Events {
		if ev.Type == tracking.Merge && ev.Other == 0 {
			t.Fatal("merge event without surviving community")
		}
	}
}
