// Package community implements the community-level analyses of §4: the
// snapshot pipeline that runs incremental Louvain and similarity-based
// tracking over a trace (Fig 4), community statistics over time (Fig 5),
// merge/split structure and the SVM merge predictor (Fig 6), and the impact
// of community membership on user activity (Fig 7).
package community

import (
	"context"
	"errors"
	"sort"

	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/tracking"
)

// Options configures the community pipeline.
type Options struct {
	// SnapshotEvery is the cadence, in days, of community snapshots
	// (the paper uses 3).
	SnapshotEvery int32
	// StartDay is the first day eligible for a snapshot (paper: day 20).
	StartDay int32
	// MinNodes is the minimum graph size before snapshots begin
	// (paper: 64 nodes).
	MinNodes int
	// MinSize filters communities smaller than this (paper: 10).
	MinSize int
	// Delta is the Louvain modularity-gain threshold δ (paper: 0.04).
	Delta float64
	// MaxLevels caps Louvain aggregation levels. The default 1 keeps
	// community evolution at node-move granularity between snapshots,
	// which preserves small communities against the resolution limit;
	// aggregation levels would fuse them wholesale.
	MaxLevels int
	// Seed drives Louvain's node-visiting order.
	Seed int64
	// SizeDistDays lists days whose community size distributions should
	// be retained (Figs 4c, 5a). A requested day that falls between
	// snapshots is served by the nearest scheduled snapshot day
	// (SnapToSnapshotDay) and recorded in Result.SizeDists under the
	// requested day; it stays absent only if that snapshot never runs
	// (graph below MinNodes, or trace too short).
	SizeDistDays []int32
}

// withDefaults fills Run's defaults into zero-valued knobs.
func (o Options) withDefaults() Options {
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 3
	}
	if o.MinSize <= 0 {
		o.MinSize = 10
	}
	if o.Delta <= 0 {
		o.Delta = 0.04
	}
	return o
}

// due reports whether day is on the snapshot schedule with a graph large
// enough to detect on. It must be called on defaulted options.
func (o Options) due(day int32, nodes int) bool {
	return day >= o.StartDay && (day-o.StartDay)%o.SnapshotEvery == 0 && nodes >= o.MinNodes
}

// SnapToSnapshotDay returns the scheduled snapshot day nearest to d: days
// at or before StartDay snap to StartDay, and a day exactly halfway
// between two snapshots rounds up. The snapped day is still subject to
// the MinNodes gate and the trace's length — a size distribution is only
// recorded if that snapshot actually runs.
func (o Options) SnapToSnapshotDay(d int32) int32 {
	o = o.withDefaults()
	if d <= o.StartDay {
		return o.StartDay
	}
	k := (d - o.StartDay + o.SnapshotEvery/2) / o.SnapshotEvery
	return o.StartDay + k*o.SnapshotEvery
}

// DefaultOptions mirrors the paper's parameters.
func DefaultOptions() Options {
	return Options{
		SnapshotEvery: 3,
		StartDay:      20,
		MinNodes:      64,
		MinSize:       10,
		Delta:         0.04,
		MaxLevels:     1,
		Seed:          1,
	}
}

// SnapshotStat is one snapshot's community-level measurements.
type SnapshotStat struct {
	Day            int32
	Nodes          int
	Edges          int64
	Modularity     float64
	AvgSimilarity  float64
	NumCommunities int
	// Top5Coverage is the fraction of all nodes inside the five largest
	// tracked communities, and TopCoverage[r] the fraction inside the
	// rank-r largest alone (Fig 5b plots ranks separately).
	Top5Coverage float64
	TopCoverage  [5]float64
}

// Result is the output of the community pipeline.
type Result struct {
	Opt       Options
	Stats     []SnapshotStat
	Events    []tracking.Event
	Histories map[int64]*tracking.History
	// LastDay is the final snapshot day.
	LastDay int32
	// SizeDists maps requested days to the sorted community sizes seen.
	SizeDists map[int32][]int
	// Final holds the last snapshot's tracked communities.
	Final *tracking.SnapshotResult
}

// ErrNoSnapshots is returned when the trace never reaches snapshot size.
var ErrNoSnapshots = errors.New("community: no snapshots taken")

// Run replays the trace, detecting and tracking communities on the
// snapshot schedule. It is the batch entry point over the streaming Stage,
// which the engine also feeds from its single shared pass.
func Run(events []trace.Event, opt Options) (*Result, error) {
	return RunSource(trace.SliceSource(events), opt)
}

// RunSource is Run over a re-openable event source; it consumes exactly
// one pass. This re-open-per-δ form is the δ-sweep's retained reference
// path (RunBatch still opens one pass per δ through here); the streaming
// sweep itself runs as SweepStage off one shared pass and is held
// bit-identical to this path by TestSweepMatchesPerPass.
func RunSource(src trace.Source, opt Options) (*Result, error) {
	return RunSourceContext(nil, src, opt)
}

// RunSourceContext is RunSource with cancellation: the replay checks ctx
// at every day boundary, so a pass fanned out on a worker pool stops
// promptly (with ctx.Err()) when its pipeline run is cancelled. A nil ctx
// disables the checks.
func RunSourceContext(ctx context.Context, src trace.Source, opt Options) (*Result, error) {
	s := NewStage(opt)
	st := trace.NewState(1024, 4096)
	if err := trace.ReplaySourceIntoContext(ctx, st, src, trace.Hooks{OnDayEnd: s.OnDayEnd}); err != nil {
		return nil, err
	}
	if err := s.Finish(nil); err != nil {
		return nil, err
	}
	return s.Result(), nil
}

// Lifetimes returns the lifetime in days of every tracked community,
// using the final snapshot day for still-alive ones (Fig 5c).
func (r *Result) Lifetimes() []float64 {
	out := make([]float64, 0, len(r.Histories))
	for _, h := range r.Histories {
		out = append(out, float64(h.Lifetime(r.LastDay)))
	}
	sort.Float64s(out)
	return out
}

// SizeRatios returns the size ratios (smaller/larger) of the two largest
// communities involved in every merge and split event (Fig 6a).
func (r *Result) SizeRatios() (mergeRatios, splitRatios []float64) {
	for _, ev := range r.Events {
		if ev.SizeA == 0 || ev.SizeB == 0 {
			continue
		}
		a, b := float64(ev.SizeA), float64(ev.SizeB)
		ratio := a / b
		if a > b {
			ratio = b / a
		}
		switch ev.Type {
		case tracking.Merge:
			mergeRatios = append(mergeRatios, ratio)
		case tracking.Split:
			splitRatios = append(splitRatios, ratio)
		}
	}
	sort.Float64s(mergeRatios)
	sort.Float64s(splitRatios)
	return mergeRatios, splitRatios
}

// StrongestTie summarizes Fig 6c: for every merge event, the day and
// whether the destination was the dying community's strongest tie.
type StrongestTie struct {
	Day          int32
	StrongestTie bool
}

// StrongestTies returns the per-merge strongest-tie outcomes and the
// overall fraction of merges that chose the strongest-tie destination.
func (r *Result) StrongestTies() ([]StrongestTie, float64) {
	var out []StrongestTie
	hits := 0
	for _, ev := range r.Events {
		if ev.Type != tracking.Merge {
			continue
		}
		out = append(out, StrongestTie{Day: ev.Day, StrongestTie: ev.StrongestTie})
		if ev.StrongestTie {
			hits++
		}
	}
	if len(out) == 0 {
		return nil, 0
	}
	return out, float64(hits) / float64(len(out))
}

// CommunityOfNode returns the final tracked community id of node u, or
// false when u is not in any tracked community.
func (r *Result) CommunityOfNode(u graph.NodeID) (int64, bool) {
	if r.Final == nil {
		return 0, false
	}
	id, ok := r.Final.NodeCommunity[u]
	return id, ok
}
