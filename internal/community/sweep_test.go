package community

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/trace"
)

// sweepTrace generates a small merge trace for sweep tests.
func sweepTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := gen.SmallConfig()
	cfg.Days = 160
	tr, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSweepMatchesPerPass is the shared-snapshot sweep's correctness
// guarantee: for every δ, the SweepStage run off one shared pass (frozen
// CSR snapshots, pool fan-out, per-snapshot barrier) must be bit-identical
// — stats, size distributions, tracking events, and histories — to the
// retained re-open-per-δ reference path (RunSource per δ).
func TestSweepMatchesPerPass(t *testing.T) {
	tr := sweepTrace(t)
	deltas := []float64{0.01, 0.04, 0.16}
	opt := DefaultOptions()
	// 139 is off the snapshot grid (StartDay 20, every 3 ⇒ snapshots at
	// 20, 23, …, 140, …); it must be served by its nearest snapshot day,
	// 140, and recorded under the requested day 139 — on both paths.
	opt.SizeDistDays = []int32{110, 139}

	pool := engine.NewPool(0)
	sw := NewSweepStage(opt, deltas, pool)
	eng := engine.New()
	eng.Subscribe(sw)
	if _, err := eng.RunSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	if err := pool.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := sw.Deltas(); !reflect.DeepEqual(got, deltas) {
		t.Fatalf("Deltas() = %v, want %v", got, deltas)
	}

	for i, d := range deltas {
		o := opt
		o.Delta = d
		ref, err := RunSource(tr.Source(), o)
		if err != nil {
			t.Fatalf("δ=%v reference: %v", d, err)
		}
		got := sw.Result(i)
		if got == nil {
			t.Fatalf("δ=%v: no sweep result", d)
		}
		if !reflect.DeepEqual(got.Stats, ref.Stats) {
			t.Errorf("δ=%v: snapshot stats differ\nsweep: %+v\nref:   %+v", d, got.Stats, ref.Stats)
		}
		if !reflect.DeepEqual(got.SizeDists, ref.SizeDists) {
			t.Errorf("δ=%v: size dists differ: %v vs %v", d, got.SizeDists, ref.SizeDists)
		}
		if _, ok := got.SizeDists[139]; !ok {
			t.Errorf("δ=%v: off-grid SizeDistDay 139 not served by its nearest snapshot", d)
		}
		if !reflect.DeepEqual(got.Events, ref.Events) {
			t.Errorf("δ=%v: tracking events differ (%d vs %d)", d, len(got.Events), len(ref.Events))
		}
		if !reflect.DeepEqual(got.Histories, ref.Histories) {
			t.Errorf("δ=%v: histories differ (%d vs %d)", d, len(got.Histories), len(ref.Histories))
		}
		if got.LastDay != ref.LastDay {
			t.Errorf("δ=%v: last day %d vs %d", d, got.LastDay, ref.LastDay)
		}
		if !reflect.DeepEqual(got.Final.NodeCommunity, ref.Final.NodeCommunity) {
			t.Errorf("δ=%v: final node-community maps differ", d)
		}
	}
}

// TestSweepCancelMidSnapshot drives the cancellation path through the
// per-snapshot barrier: the pool's only worker is blocked so the first
// snapshot's detector tasks can never finish, and the run is cancelled
// while the next snapshot's Sync is waiting on them. The barrier wait must
// return ctx.Err() promptly — aborting the replay at that day boundary
// with no Finish and no results — and the skipped tasks must still drain.
func TestSweepCancelMidSnapshot(t *testing.T) {
	tr := sweepTrace(t)
	deltas := []float64{0.01, 0.04}
	opt := DefaultOptions()

	pool := engine.NewPool(1)
	block := make(chan struct{})
	pool.Go(func() error { <-block; return nil }) // occupy the only worker

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sw := NewSweepStage(opt, deltas, pool)
	eng := engine.New()
	eng.Subscribe(sw)
	// Cancel at the second snapshot day, after the sweep's OnDayEnd but
	// before the engine's sync point: Sync then hits the barrier with the
	// first snapshot's tasks still queued behind the blocked worker.
	cancelDay := opt.StartDay + opt.SnapshotEvery
	eng.Subscribe(engine.Funcs{
		StageName: "canceler",
		DayEnd: func(_ *trace.State, day int32) {
			if day == cancelDay {
				cancel()
			}
		},
	})

	_, err := eng.RunSourceContext(ctx, tr.Source())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(block)
	if err := pool.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range deltas {
		if sw.Result(i) != nil {
			t.Fatalf("δ index %d: got a result from a cancelled run", i)
		}
	}
}

// TestSweepNoSnapshots asserts the shared-snapshot path reports
// ErrNoSnapshots per δ exactly like the per-pass path when the trace never
// reaches snapshot size.
func TestSweepNoSnapshots(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.AddNode, Day: 0, U: 0},
		{Kind: trace.AddNode, Day: 0, U: 1},
		{Kind: trace.AddEdge, Day: 30, U: 0, V: 1},
	}
	pool := engine.NewPool(0)
	sw := NewSweepStage(DefaultOptions(), []float64{0.04}, pool)
	eng := engine.New()
	eng.Subscribe(sw)
	_, err := eng.RunSource(trace.SliceSource(events))
	if !errors.Is(err, ErrNoSnapshots) {
		t.Fatalf("err = %v, want ErrNoSnapshots", err)
	}
	if err := pool.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapToSnapshotDay pins the SizeDistDays snapping rule: nearest
// scheduled day, StartDay floor, half-way ties rounding up.
func TestSnapToSnapshotDay(t *testing.T) {
	opt := Options{StartDay: 20, SnapshotEvery: 3}
	cases := []struct{ in, want int32 }{
		{0, 20}, {20, 20}, {21, 20}, {22, 23}, {23, 23}, {139, 140}, {251, 251},
	}
	for _, c := range cases {
		if got := opt.SnapToSnapshotDay(c.in); got != c.want {
			t.Errorf("snap(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	even := Options{StartDay: 10, SnapshotEvery: 4}
	if got := even.SnapToSnapshotDay(12); got != 14 {
		t.Errorf("half-way tie snap(12) = %d, want 14 (rounds up)", got)
	}
}
