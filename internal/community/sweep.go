package community

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/louvain"
	"repro/internal/trace"
)

// SweepStageName is the planner registry name of the δ-sweep stage.
const SweepStageName = "sweep"

// SweepStage runs the Fig 4 δ-sensitivity sweep as a single subscriber to
// the shared engine pass, splitting the community pipeline into its two
// layers. The graph-maintenance layer is the engine's one evolving shared
// graph plus this stage's snapshot schedule: at every scheduled snapshot
// day the stage freezes the graph into a compact read-only CSR view
// (graph.Frozen, built once per snapshot day). The per-δ detection layer
// is one Detector per δ — Louvain seed chain and tracking state only —
// fanned out on the worker pool against that shared frozen view.
//
// A K-δ sweep therefore costs exactly one replay pass and one live graph,
// plus K lightweight detector states, instead of the 1+K passes and 1+K
// live graphs of the re-open-per-δ reference path (community.RunSource per
// δ, retained as the equivalence baseline — TestSweepMatchesPerPass holds
// the two bit-identical).
//
// The stage implements engine.Syncer for the engine's per-snapshot
// barrier: Sync — called at every day boundary, before the next day's
// events mutate the shared graph — joins the previous snapshot's in-flight
// detector tasks (honoring ctx cancellation) before freezing the next
// snapshot. That bounds the live frozen views at one per sweep no matter
// how far the replay runs ahead, and keeps each detector's snapshot
// sequence strictly ordered (day D's Louvain seeds from the previous
// snapshot's assignment).
type SweepStage struct {
	opt    Options
	deltas []float64
	dets   []*Detector
	pool   *engine.Pool

	done        chan struct{} // one token per finished detector task
	outstanding int           // launched but not yet joined; engine goroutine only
}

// NewSweepStage creates the multi-δ community stage: opt carries the
// shared snapshot schedule and tracking knobs (its Delta is ignored),
// deltas the per-detector Louvain thresholds in result order, and pool the
// worker pool the per-snapshot detector tasks fan out on.
func NewSweepStage(opt Options, deltas []float64, pool *engine.Pool) *SweepStage {
	opt = opt.withDefaults()
	s := &SweepStage{
		opt:    opt,
		deltas: append([]float64(nil), deltas...),
		pool:   pool,
		done:   make(chan struct{}, len(deltas)),
	}
	for _, delta := range s.deltas {
		o := opt
		o.Delta = delta
		s.dets = append(s.dets, NewDetector(o))
	}
	return s
}

// Name implements engine.Stage.
func (s *SweepStage) Name() string { return SweepStageName }

// OnEvent implements engine.Stage; the sweep is snapshot-driven.
func (s *SweepStage) OnEvent(_ *trace.State, _ trace.Event) {}

// OnDayEnd implements engine.Stage. Snapshot work happens in Sync, which
// the engine calls right after with the run's context, so the barrier wait
// stays cancellable.
func (s *SweepStage) OnDayEnd(_ *trace.State, _ int32) {}

// Sync implements engine.Syncer: on snapshot days it joins the previous
// snapshot's detector tasks, freezes the shared graph, and fans one task
// per δ out against the frozen view.
func (s *SweepStage) Sync(ctx context.Context, st *trace.State, day int32) error {
	if len(s.dets) == 0 || !s.opt.due(day, st.Graph.NumNodes()) {
		return nil
	}
	if err := s.join(ctx); err != nil {
		return err
	}
	// One frozen CSR view for the trackers plus one prepared Louvain view,
	// both built once here and shared read-only by every δ worker. The
	// prepare itself fans out across the pool's worker budget — the frozen
	// CSR is immutable, so the level-0 build is safely (and bit-
	// identically) parallel.
	frozen := st.Graph.Freeze()
	prep := louvain.PrepareWorkers(frozen, s.pool.Workers())
	for _, det := range s.dets {
		det := det
		s.outstanding++
		s.pool.Go(func() error {
			defer func() { s.done <- struct{}{} }()
			// A cancelled run skips the snapshot: the aborted pass never
			// reads detector results, and joins only count tokens.
			if ctx == nil || ctx.Err() == nil {
				det.AdvancePrepared(day, frozen, prep)
			}
			return nil
		})
	}
	return nil
}

// join blocks until every in-flight detector task has finished. A nil ctx
// waits unconditionally (the post-pass join in Finish); otherwise a
// cancellation during the wait returns ctx.Err() with the remaining tasks
// still counted as outstanding — the run is aborting, and the pool drain
// collects them.
func (s *SweepStage) join(ctx context.Context) error {
	for s.outstanding > 0 {
		if ctx == nil {
			<-s.done
		} else {
			select {
			case <-s.done:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		s.outstanding--
	}
	return nil
}

// Finish implements engine.Stage: it joins the final snapshot's tasks and
// seals every detector, reporting the first per-δ error (ErrNoSnapshots
// when the trace never reached snapshot size, exactly like the per-pass
// path).
func (s *SweepStage) Finish(_ *trace.State) error {
	s.join(nil)
	for i, det := range s.dets {
		if err := det.Finish(); err != nil {
			return fmt.Errorf("δ=%v: %w", s.deltas[i], err)
		}
	}
	return nil
}

// Deltas returns the sweep's δ values in result order.
func (s *SweepStage) Deltas() []float64 { return append([]float64(nil), s.deltas...) }

// Result returns the i-th δ's pipeline result after a successful Finish;
// nil before.
func (s *SweepStage) Result(i int) *Result { return s.dets[i].Result() }
