package community

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/trace"
)

// Stage is the streaming form of Run: the snapshot pipeline driven by
// day-end callbacks from the engine's single shared pass. It is the
// single-δ composition of the pipeline's two layers — the engine's shared
// replay maintains the graph, and a Detector (incremental Louvain +
// similarity tracking) consumes it directly on the snapshot schedule, with
// no frozen copy in between. The δ-sweep's multi-δ composition is
// SweepStage.
type Stage struct {
	det *Detector
}

// NewStage creates a streaming community-pipeline stage with Run's
// defaulting.
func NewStage(opt Options) *Stage {
	return &Stage{det: NewDetector(opt)}
}

// StageName and UsersStageName are the planner registry names of the two
// §4 stages.
const (
	StageName      = "community"
	UsersStageName = "users"
)

// Name implements engine.Stage.
func (s *Stage) Name() string { return StageName }

// OverlapSafe marks the stage for the engine's parallel driver: OnEvent
// is a no-op and OnDayEnd's snapshot reads the quiescent graph read-only
// (the detector owns no graph — see Detector).
func (s *Stage) OverlapSafe() {}

// SetWorkers forwards the kernel fan-out width to the detector's
// per-snapshot Louvain prepare.
func (s *Stage) SetWorkers(n int) { s.det.SetWorkers(n) }

// OnEvent implements engine.Stage; the pipeline is snapshot-driven.
func (s *Stage) OnEvent(_ *trace.State, _ trace.Event) {}

// OnDayEnd runs one snapshot when the day is on the schedule and the graph
// is large enough.
func (s *Stage) OnDayEnd(st *trace.State, day int32) {
	if s.det.due(day, st.Graph.NumNodes()) {
		s.det.Advance(day, st.Graph)
	}
}

// Finish seals the pipeline: it reports any Louvain error, ErrNoSnapshots
// for traces that never reached snapshot size, and otherwise attaches the
// tracker's event log and histories to the result.
func (s *Stage) Finish(_ *trace.State) error { return s.det.Finish() }

// Result returns the pipeline output after a successful Finish; nil before.
func (s *Stage) Result() *Result { return s.det.Result() }

// nodeActivity is UsersStage's per-node accumulator.
type nodeActivity struct {
	lastEdge int32
	hasEdge  bool
}

// nodeGap is one buffered inter-arrival observation; community membership
// of u is only known once the pipeline's final snapshot exists, so gaps are
// classified in Finish.
type nodeGap struct {
	u   graph.NodeID
	gap int32
}

// UsersStage is the streaming form of AnalyzeUsers (Fig 7). It subscribes
// to the same pass as the community Stage; because users are classified by
// the *final* snapshot's communities, per-node activity is buffered during
// the pass and resolved against the community result in Finish. Degrees and
// intra-community degrees come from the shared state's graph.
type UsersStage struct {
	buckets []SizeBucket
	source  func() *Result
	nodes   []nodeActivity
	gaps    []nodeGap
	impact  *UserImpact
}

// NewUsersStage creates a streaming Fig 7 stage; source provides the
// community pipeline's result at Finish time (subscribe the community Stage
// first and pass its Result method).
func NewUsersStage(buckets []SizeBucket, source func() *Result) *UsersStage {
	if len(buckets) == 0 {
		buckets = DefaultSizeBuckets()
	}
	return &UsersStage{buckets: buckets, source: source}
}

// Name implements engine.Stage.
func (s *UsersStage) Name() string { return UsersStageName }

// OverlapSafe marks the stage for the engine's parallel driver: OnEvent
// records activity in private per-node maps and OnDayEnd is a no-op (the
// community join happens in Finish, post-pass).
func (s *UsersStage) OverlapSafe() {}

// OnEvent records per-node edge activity and inter-arrival gaps.
func (s *UsersStage) OnEvent(_ *trace.State, ev trace.Event) {
	if ev.Kind != trace.AddEdge {
		return
	}
	for _, u := range [2]graph.NodeID{ev.U, ev.V} {
		for int32(len(s.nodes)) <= u {
			s.nodes = append(s.nodes, nodeActivity{})
		}
		a := &s.nodes[u]
		if a.hasEdge {
			if gap := ev.Day - a.lastEdge; gap > 0 {
				s.gaps = append(s.gaps, nodeGap{u: u, gap: gap})
			}
		}
		a.lastEdge = ev.Day
		a.hasEdge = true
	}
}

// OnDayEnd implements engine.Stage.
func (s *UsersStage) OnDayEnd(_ *trace.State, _ int32) {}

// Finish classifies the buffered activity by the final snapshot's tracked
// communities and assembles the UserImpact.
func (s *UsersStage) Finish(st *trace.State) error {
	var res *Result
	if s.source != nil {
		res = s.source()
	}
	out := &UserImpact{
		LifetimesBySize: map[string][]float64{},
		InRatioBySize:   map[string][]float64{},
	}
	nodeComm := map[graph.NodeID]int64{}
	commSize := map[int64]int{}
	if res != nil && res.Final != nil {
		nodeComm = res.Final.NodeCommunity
		for id, nodes := range res.Final.Communities {
			commSize[id] = len(nodes)
		}
	}

	// Fig 7a: gaps pooled by final community membership.
	for _, g := range s.gaps {
		if _, inComm := nodeComm[g.u]; inComm {
			out.CommunityGaps = append(out.CommunityGaps, float64(g.gap))
		} else {
			out.NonCommunityGaps = append(out.NonCommunityGaps, float64(g.gap))
		}
	}

	bucketName := func(size int) string {
		for _, b := range s.buckets {
			if size >= b.Min && size < b.Max {
				return b.Name
			}
		}
		return ""
	}

	n := st.Graph.NumNodes()
	for int32(len(s.nodes)) < int32(n) {
		s.nodes = append(s.nodes, nodeActivity{})
	}
	for u := 0; u < n; u++ {
		a := &s.nodes[u]
		id, inComm := nodeComm[graph.NodeID(u)]
		key := "non-community"
		if inComm {
			key = bucketName(commSize[id])
			if key == "" {
				continue
			}
		}
		if a.hasEdge {
			out.LifetimesBySize[key] = append(out.LifetimesBySize[key], float64(a.lastEdge-st.JoinDay[u]))
		}
		if inComm {
			if deg := st.Graph.Degree(graph.NodeID(u)); deg > 0 {
				cu := nodeComm[graph.NodeID(u)]
				inDeg := 0
				st.Graph.ForEachNeighbor(graph.NodeID(u), func(v graph.NodeID) {
					if cv, ok := nodeComm[v]; ok && cv == cu {
						inDeg++
					}
				})
				out.InRatioBySize[key] = append(out.InRatioBySize[key], float64(inDeg)/float64(deg))
			}
		}
	}
	for _, v := range out.LifetimesBySize {
		sort.Float64s(v)
	}
	for _, v := range out.InRatioBySize {
		sort.Float64s(v)
	}
	sort.Float64s(out.CommunityGaps)
	sort.Float64s(out.NonCommunityGaps)
	s.impact = out
	return nil
}

// Impact returns the assembled Fig 7 result after Finish; nil before.
func (s *UsersStage) Impact() *UserImpact { return s.impact }
