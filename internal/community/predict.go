package community

import (
	"errors"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/svm"
)

// FeatureCount is the dimensionality of the merge-prediction feature
// vector: the three basic structural metrics (size, in-degree ratio,
// self-similarity), their running standard deviations, their first- and
// second-order change indicators, and the community age (§4.3).
const FeatureCount = 13

// MergeDataset is the labeled set for the Fig 6b predictor. Y[i] is +1
// when the community merges into another at the next snapshot.
type MergeDataset struct {
	X   [][]float64
	Y   []int
	Age []int32 // community age in days at sample time
}

// sign returns the paper's change indicator: -1, 0, or +1.
func sign(x float64) float64 {
	switch {
	case x > 1e-12:
		return 1
	case x < -1e-12:
		return -1
	default:
		return 0
	}
}

// BuildMergeDataset extracts one sample per community-snapshot with at
// least three observations. Communities born on excludeBirthDay (the
// network-merge day) are skipped, following the paper ("we do not consider
// communities created on the day of the network merge with 5Q").
// Pass excludeBirthDay < 0 to disable the exclusion.
func BuildMergeDataset(res *Result, excludeBirthDay int32) *MergeDataset {
	ds := &MergeDataset{}
	every := res.Opt.SnapshotEvery
	ids := make([]int64, 0, len(res.Histories))
	for id := range res.Histories {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		h := res.Histories[id]
		if excludeBirthDay >= 0 && h.Birth == excludeBirthDay {
			continue
		}
		fs := h.Features
		for i := 2; i < len(fs); i++ {
			cur, prev, prev2 := fs[i], fs[i-1], fs[i-2]
			// Running stddev over the history up to i.
			var size, in, sim []float64
			for j := 0; j <= i; j++ {
				size = append(size, float64(fs[j].Size))
				in = append(in, fs[j].InRatio)
				sim = append(sim, fs[j].SelfSim)
			}
			d1s := float64(cur.Size - prev.Size)
			d1i := cur.InRatio - prev.InRatio
			d1m := cur.SelfSim - prev.SelfSim
			d2s := d1s - float64(prev.Size-prev2.Size)
			d2i := d1i - (prev.InRatio - prev2.InRatio)
			d2m := d1m - (prev.SelfSim - prev2.SelfSim)
			age := cur.Day - h.Birth
			x := []float64{
				float64(cur.Size), cur.InRatio, cur.SelfSim,
				stats.StdDev(size), stats.StdDev(in), stats.StdDev(sim),
				sign(d1s), sign(d1i), sign(d1m),
				sign(d2s), sign(d2i), sign(d2m),
				float64(age),
			}
			// Label: merges at the next snapshot = this is the last
			// feature and the history died by merge right after.
			label := -1
			if i == len(fs)-1 && h.MergedInto != 0 && h.Death >= 0 && h.Death <= cur.Day+every {
				label = 1
			}
			ds.X = append(ds.X, x)
			ds.Y = append(ds.Y, label)
			ds.Age = append(ds.Age, age)
		}
	}
	return ds
}

// AgeBinAccuracy is one point of the Fig 6b curve: per-class prediction
// accuracy for test communities in one age bin.
type AgeBinAccuracy struct {
	AgeLo, AgeHi int32
	svm.Metrics
}

// ErrDatasetTooSmall is returned when the dataset cannot support training.
var ErrDatasetTooSmall = errors.New("community: merge dataset too small")

// EvaluateMergePrediction trains the SVM on a 70% split and reports
// per-age-bin accuracy on the held-out 30% (Fig 6b), plus overall metrics.
func EvaluateMergePrediction(ds *MergeDataset, binWidth int32, opt svm.Options) ([]AgeBinAccuracy, svm.Metrics, error) {
	if len(ds.X) < 10 {
		return nil, svm.Metrics{}, ErrDatasetTooSmall
	}
	if binWidth <= 0 {
		binWidth = 10
	}
	// Stratified 70/30 split: merge samples are rare, so positives are
	// split separately to guarantee both sides see both classes.
	rng := stats.NewRand(opt.Seed + 99)
	var posIdx, negIdx []int
	for i, y := range ds.Y {
		if y == 1 {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	rng.Shuffle(len(posIdx), func(a, b int) { posIdx[a], posIdx[b] = posIdx[b], posIdx[a] })
	rng.Shuffle(len(negIdx), func(a, b int) { negIdx[a], negIdx[b] = negIdx[b], negIdx[a] })
	var trX, teX [][]float64
	var trY, teY []int
	var teAge []int32
	take := func(idx []int) {
		cut := len(idx) * 7 / 10
		if cut == 0 && len(idx) > 1 {
			cut = 1
		}
		for p, i := range idx {
			if p < cut {
				trX = append(trX, ds.X[i])
				trY = append(trY, ds.Y[i])
			} else {
				teX = append(teX, ds.X[i])
				teY = append(teY, ds.Y[i])
				teAge = append(teAge, ds.Age[i])
			}
		}
	}
	take(posIdx)
	take(negIdx)
	opt.ClassWeighted = true
	model, err := svm.Train(trX, trY, opt)
	if err != nil {
		return nil, svm.Metrics{}, err
	}
	overall := model.Evaluate(teX, teY)

	// Bin test samples by age.
	maxAge := int32(0)
	for _, a := range teAge {
		if a > maxAge {
			maxAge = a
		}
	}
	var bins []AgeBinAccuracy
	for lo := int32(0); lo <= maxAge; lo += binWidth {
		hi := lo + binWidth
		var bx [][]float64
		var by []int
		for i, a := range teAge {
			if a >= lo && a < hi {
				bx = append(bx, teX[i])
				by = append(by, teY[i])
			}
		}
		if len(bx) == 0 {
			continue
		}
		bins = append(bins, AgeBinAccuracy{AgeLo: lo, AgeHi: hi, Metrics: model.Evaluate(bx, by)})
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i].AgeLo < bins[j].AgeLo })
	return bins, overall, nil
}

// PositiveFraction reports the share of positive labels (diagnostic for
// class imbalance).
func (ds *MergeDataset) PositiveFraction() float64 {
	if len(ds.Y) == 0 {
		return math.NaN()
	}
	pos := 0
	for _, y := range ds.Y {
		if y == 1 {
			pos++
		}
	}
	return float64(pos) / float64(len(ds.Y))
}
