package storage

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func TestDirBackendRoundtrip(t *testing.T) {
	b := NewDirBackend(t.TempDir())
	if err := b.Put("a/one.bin", []byte("hello")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := b.Get("a/one.bin")
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := b.Put("a/one.bin", []byte("replaced")); err != nil {
		t.Fatalf("Put replace: %v", err)
	}
	got, _ = b.Get("a/one.bin")
	if string(got) != "replaced" {
		t.Fatalf("Get after replace = %q", got)
	}
}

func TestDirBackendGetMissingIsNotExist(t *testing.T) {
	b := NewDirBackend(t.TempDir())
	if _, err := b.Get("nope"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get missing = %v, want fs.ErrNotExist", err)
	}
	if _, err := b.OpenRange("nope", 0, -1); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("OpenRange missing = %v, want fs.ErrNotExist", err)
	}
	if err := b.Delete("nope"); err != nil {
		t.Fatalf("Delete missing = %v, want nil", err)
	}
}

func TestDirBackendOpenRange(t *testing.T) {
	b := NewDirBackend(t.TempDir())
	if err := b.Put("blob", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	rc, err := b.OpenRange("blob", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	got, err := io.ReadAll(rc)
	if err != nil || string(got) != "3456" {
		t.Fatalf("OpenRange(3,4) = %q, %v", got, err)
	}
	rc, err = b.OpenRange("blob", 8, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	got, _ = io.ReadAll(rc)
	if string(got) != "89" {
		t.Fatalf("OpenRange(8,-1) = %q", got)
	}
}

func TestDirBackendList(t *testing.T) {
	b := NewDirBackend(t.TempDir())
	for _, n := range []string{"ck/b.ckpt", "ck/a.ckpt", "trace.seg"} {
		if err := b.Put(n, make([]byte, len(n))); err != nil {
			t.Fatal(err)
		}
	}
	// A stray temp file from a crashed Put must not list.
	if err := os.WriteFile(filepath.Join(b.Root(), "ck", "c.ckpt.tmp123"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err := b.List("ck/")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "ck/a.ckpt" || infos[1].Name != "ck/b.ckpt" {
		t.Fatalf("List(ck/) = %+v", infos)
	}
	if infos[0].Size != int64(len("ck/a.ckpt")) {
		t.Fatalf("Size = %d", infos[0].Size)
	}
	all, err := b.List("")
	if err != nil || len(all) != 3 {
		t.Fatalf("List(\"\") = %+v, %v", all, err)
	}
}

func TestDirBackendListEmptyRoot(t *testing.T) {
	b := NewDirBackend(filepath.Join(t.TempDir(), "never-created"))
	infos, err := b.List("")
	if err != nil || len(infos) != 0 {
		t.Fatalf("List on absent root = %+v, %v", infos, err)
	}
}

func TestDirBackendNameValidation(t *testing.T) {
	b := NewDirBackend(t.TempDir())
	for _, bad := range []string{"", "/abs", "../escape", "a/../b", "a//b", ".", "a/.", `a\b`} {
		if err := b.Put(bad, nil); err == nil {
			t.Errorf("Put(%q) accepted", bad)
		}
		if _, err := b.Get(bad); err == nil {
			t.Errorf("Get(%q) accepted", bad)
		}
	}
}

func TestDirBackendPutAtomic(t *testing.T) {
	// No partial object may ever exist under the target name: after a
	// Put the directory holds exactly the object (no temp residue).
	b := NewDirBackend(t.TempDir())
	if err := b.Put("obj", []byte("final")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(b.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "obj" {
		t.Fatalf("root holds %v, want exactly [obj]", entries)
	}
}
