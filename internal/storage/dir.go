package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DirBackend implements Backend over a local directory: objects are
// files, Put is a temp file renamed into place (the same atomicity the
// checkpoint writer has always relied on), and ranged reads are served
// straight off the file. The root is created lazily on the first Put.
type DirBackend struct {
	root string
}

// NewDirBackend returns a backend rooted at dir. The directory need not
// exist yet; Put creates it.
func NewDirBackend(dir string) *DirBackend { return &DirBackend{root: dir} }

// Root returns the backend's root directory.
func (b *DirBackend) Root() string { return b.root }

// path maps an object name onto the rooted file path.
func (b *DirBackend) path(name string) (string, error) {
	if err := ValidateName(name); err != nil {
		return "", err
	}
	return filepath.Join(b.root, filepath.FromSlash(name)), nil
}

// Put implements Backend: write-to-temp then rename, so readers never
// observe a partial object and a crash leaves at most a stray temp file.
func (b *DirBackend) Put(name string, data []byte) error {
	p, err := b.path(name)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(p)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// Get implements Backend.
func (b *DirBackend) Get(name string) ([]byte, error) {
	p, err := b.path(name)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(p)
}

// OpenRange implements Backend. The file handle is held by the returned
// reader, so the bytes read are the object version that existed at open
// time even if a Put renames a replacement over the name meanwhile.
func (b *DirBackend) OpenRange(name string, off, n int64) (io.ReadCloser, error) {
	p, err := b.path(name)
	if err != nil {
		return nil, err
	}
	if off < 0 {
		return nil, fmt.Errorf("storage: negative offset %d", off)
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	if n < 0 {
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		n = fi.Size() - off
		if n < 0 {
			n = 0
		}
	}
	return &sectionReadCloser{r: io.NewSectionReader(f, off, n), f: f}, nil
}

type sectionReadCloser struct {
	r *io.SectionReader
	f *os.File
}

func (s *sectionReadCloser) Read(p []byte) (int, error) { return s.r.Read(p) }
func (s *sectionReadCloser) Close() error               { return s.f.Close() }

// List implements Backend: a recursive walk under root, reporting slash-
// separated names relative to it. Temp files from in-flight Puts are
// filtered by their ".tmp" infix so a concurrent writer never surfaces
// half an object in a listing.
func (b *DirBackend) List(prefix string) ([]ObjectInfo, error) {
	if prefix != "" {
		// A prefix is a name fragment, not a full name, but the same
		// escape rules apply to what it can address.
		if err := ValidateName(strings.TrimSuffix(prefix, "/")); err != nil {
			return nil, err
		}
	}
	var out []ObjectInfo
	err := filepath.Walk(b.root, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil // an empty backend lists as empty
			}
			return err
		}
		if fi.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(b.root, p)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if !strings.HasPrefix(name, prefix) || strings.Contains(filepath.Base(name), ".tmp") {
			return nil
		}
		out = append(out, ObjectInfo{Name: name, Size: fi.Size()})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Delete implements Backend; a missing object is not an error.
func (b *DirBackend) Delete(name string) error {
	p, err := b.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
