// Package storage is the tiered-storage plane's backend abstraction: a
// small object-store-shaped interface (named blobs, atomic whole-object
// puts, prefix listing, ranged reads) that the trace segment reader, the
// checkpoint save/resolve plane, and the serving daemon all go through.
// Today the one implementation is DirBackend — a local directory with
// temp-file-plus-rename atomicity — but nothing above this package
// assumes seekable files, in-place mutation, or POSIX semantics beyond
// what an object store offers, so a daemon built on it holds no local
// state it could not re-fetch (DESIGN.md §10).
package storage

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"strings"
)

// ErrNotExist is the sentinel for a missing object. Implementations must
// return errors matching errors.Is(err, fs.ErrNotExist) (this alias) so
// callers can distinguish "gone" from "broken" — the checkpoint plane's
// stale-scan rescan logic depends on it.
var ErrNotExist = fs.ErrNotExist

// ObjectInfo describes one stored object.
type ObjectInfo struct {
	// Name is the object's key, relative to the backend root.
	Name string
	// Size is the object's byte length.
	Size int64
}

// Backend is a flat namespace of immutable-once-written blobs. All
// methods must be safe for concurrent use.
//
// The contract is deliberately object-store shaped:
//
//   - Put replaces the whole object atomically: a concurrent Get or
//     OpenRange observes either the old bytes or the new bytes, never a
//     mix, and a crash mid-Put never leaves a partial object under name.
//   - Get and OpenRange return an error matching fs.ErrNotExist for a
//     missing name.
//   - List returns objects whose name starts with prefix, in
//     lexicographic name order.
//   - Delete of a missing name is not an error (idempotent).
type Backend interface {
	// Put atomically writes data under name, replacing any existing
	// object.
	Put(name string, data []byte) error
	// Get reads the whole object.
	Get(name string) ([]byte, error)
	// OpenRange streams n bytes of the object starting at byte off;
	// n < 0 streams to the end. Reading past the end of the object
	// surfaces as io.EOF/io.ErrUnexpectedEOF from the returned reader,
	// not from OpenRange itself.
	OpenRange(name string, off, n int64) (io.ReadCloser, error)
	// List enumerates objects under prefix in name order.
	List(prefix string) ([]ObjectInfo, error)
	// Delete removes the object; deleting a missing name succeeds.
	Delete(name string) error
}

// ValidateName rejects keys that could escape a rooted namespace or that
// an object store would refuse: empty names, absolute paths, "." or ".."
// segments, and backslashes. Path-style separators ("a/b") are allowed —
// DirBackend maps them to subdirectories.
func ValidateName(name string) error {
	if name == "" {
		return errors.New("storage: empty object name")
	}
	if strings.HasPrefix(name, "/") || strings.Contains(name, "\\") {
		return fmt.Errorf("storage: invalid object name %q", name)
	}
	for _, seg := range strings.Split(name, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return fmt.Errorf("storage: invalid object name %q", name)
		}
	}
	return nil
}
