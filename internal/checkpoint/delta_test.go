package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/trace"
)

// deltaEvents is a replay long enough to produce grown old nodes, new
// nodes, and multi-day structure across three cut points.
func deltaEvents() []trace.Event {
	return []trace.Event{
		{Kind: trace.AddNode, Day: 0, U: 0, Origin: trace.OriginXiaonei},
		{Kind: trace.AddNode, Day: 0, U: 1, Origin: trace.OriginFiveQ},
		{Kind: trace.AddEdge, Day: 0, U: 0, V: 1},
		{Kind: trace.AddNode, Day: 1, U: 2, Origin: trace.OriginNew},
		{Kind: trace.AddEdge, Day: 1, U: 2, V: 0},
		// cut 1: 3 nodes, 2 edges, day 1
		{Kind: trace.AddEdge, Day: 2, U: 1, V: 2},
		{Kind: trace.AddNode, Day: 3, U: 3, Origin: trace.OriginXiaonei},
		{Kind: trace.AddEdge, Day: 3, U: 3, V: 1},
		// cut 2: 4 nodes, 4 edges, day 3
		{Kind: trace.AddNode, Day: 4, U: 4, Origin: trace.OriginFiveQ},
		{Kind: trace.AddEdge, Day: 4, U: 4, V: 3},
		{Kind: trace.AddEdge, Day: 5, U: 4, V: 0},
		// cut 3: 5 nodes, 6 edges, day 5
	}
}

func replayed(t *testing.T, events []trace.Event) *trace.State {
	t.Helper()
	st := trace.NewState(8, 16)
	for _, ev := range events {
		if err := st.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestDeltaDiffApplyChain is the delta plane's correctness core: diff at
// two cut points, serialize, decode, apply the chain onto the base — the
// result must be element-identical to the directly replayed state,
// including adjacency order.
func TestDeltaDiffApplyChain(t *testing.T) {
	events := deltaEvents()
	base := replayed(t, events[:5])
	mid := replayed(t, events[:8])
	tip := replayed(t, events)

	p1, err := DiffState(base.Graph.NumNodes(), Degrees(base), mid)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := DiffState(mid.Graph.NumNodes(), Degrees(mid), tip)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.NewAdj) != 1 || len(p1.Grown) == 0 {
		t.Fatalf("patch 1 shape: %d new, %d grown", len(p1.NewAdj), len(p1.Grown))
	}

	// Serialize and decode both deltas.
	h := DeltaHeader{Day: 3, ParentDay: 1, ParentSum: 42, ConfigHash: 7, Stages: []string{"a", "b"}}
	blobs := []DeltaBlob{{Name: "a", Changed: true, Data: []byte("blob-a")}, {Name: "b"}}
	var buf bytes.Buffer
	if err := WriteDelta(&buf, h, p1, blobs); err != nil {
		t.Fatal(err)
	}
	df, err := ReadDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if df.Header.Day != h.Day || df.Header.ParentDay != h.ParentDay ||
		df.Header.ParentSum != h.ParentSum || df.Header.ConfigHash != h.ConfigHash {
		t.Fatalf("header round trip: %+v vs %+v", df.Header, h)
	}
	if len(df.Header.Stages) != 2 || df.Header.Stages[0] != "a" || df.Header.Stages[1] != "b" {
		t.Fatalf("stages round trip: %v", df.Header.Stages)
	}
	if !df.Blobs[0].Changed || string(df.Blobs[0].Data) != "blob-a" || df.Blobs[1].Changed {
		t.Fatalf("blobs round trip: %+v", df.Blobs)
	}

	var buf2 bytes.Buffer
	if err := WriteDelta(&buf2, DeltaHeader{Day: 5, ParentDay: 3, Stages: []string{"a", "b"}}, p2,
		[]DeltaBlob{{Name: "a"}, {Name: "b", Changed: true, Data: []byte("blob-b2")}}); err != nil {
		t.Fatal(err)
	}
	df2, err := ReadDelta(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	b := NewStateBuilder(base)
	if err := b.Apply(df.Patch); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(df2.Patch); err != nil {
		t.Fatal(err)
	}
	got, err := b.State()
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, tip)
}

// TestDeltaEmptyPatch: a quiet interval (no new nodes or edges, day
// advanced) still round-trips.
func TestDeltaEmptyPatch(t *testing.T) {
	events := deltaEvents()
	st := replayed(t, events[:5])
	p, err := DiffState(st.Graph.NumNodes(), Degrees(st), st)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Grown) != 0 || len(p.NewAdj) != 0 {
		t.Fatalf("self-diff not empty: %+v", p)
	}
	var buf bytes.Buffer
	if err := WriteDelta(&buf, DeltaHeader{Day: st.Day, ParentDay: st.Day}, p, nil); err != nil {
		t.Fatal(err)
	}
	df, err := ReadDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	b := NewStateBuilder(st)
	if err := b.Apply(df.Patch); err != nil {
		t.Fatal(err)
	}
	got, err := b.State()
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, st)
}

// TestDiffStateRejectsNonExtension: pairing the wrong states must fail
// loudly, not produce a garbage patch.
func TestDiffStateRejectsNonExtension(t *testing.T) {
	events := deltaEvents()
	small := replayed(t, events[:5])
	big := replayed(t, events)
	if _, err := DiffState(big.Graph.NumNodes(), Degrees(big), small); err == nil {
		t.Fatal("shrinking diff accepted")
	}
	deg := Degrees(small)
	deg[0] += 5 // parent claims more neighbors than the child has
	if _, err := DiffState(small.Graph.NumNodes(), deg, small); err == nil {
		t.Fatal("degree-shrink diff accepted")
	}
}

// TestApplyRejectsMismatchedChain: a patch applied out of order fails.
func TestApplyRejectsMismatchedChain(t *testing.T) {
	events := deltaEvents()
	base := replayed(t, events[:5])
	tip := replayed(t, events)
	p, err := DiffState(base.Graph.NumNodes(), Degrees(base), tip)
	if err != nil {
		t.Fatal(err)
	}
	b := NewStateBuilder(tip) // wrong base: node counts differ
	if err := b.Apply(p); err == nil {
		t.Fatal("mismatched patch accepted")
	}
}

// TestDeltaDecodeHardening: magic confusion and corruption surface as
// the package's typed errors, never panics.
func TestDeltaDecodeHardening(t *testing.T) {
	events := deltaEvents()
	base := replayed(t, events[:5])
	tip := replayed(t, events)
	p, err := DiffState(base.Graph.NumNodes(), Degrees(base), tip)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDelta(&buf, DeltaHeader{Day: 5, ParentDay: 1, Stages: []string{"s"}}, p,
		[]DeltaBlob{{Name: "s", Changed: true, Data: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// A full-container magic is not a delta.
	if _, err := ReadDeltaHeader(bytes.NewReader([]byte("RRC1xxxx"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("full magic read as delta: %v", err)
	}
	// Truncations at every prefix length fail typed, never panic.
	for n := 0; n < len(good); n += 7 {
		if _, err := ReadDelta(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	// A flipped end magic is corruption.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff
	if _, err := ReadDelta(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad end magic: %v", err)
	}
}
