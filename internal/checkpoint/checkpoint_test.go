package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/trace"
)

// TestPrimitivesRoundTrip exercises every primitive through one buffer.
func TestPrimitivesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.U64(0)
	e.U64(math.MaxUint64)
	e.I64(-1)
	e.I64(math.MaxInt64)
	e.I32(-42)
	e.Int(123456)
	e.Bool(true)
	e.Bool(false)
	e.F64(math.Pi)
	e.F64(math.NaN())
	e.F64(math.Inf(-1))
	e.String("état")
	e.Bytes([]byte{0, 1, 2})
	e.Bytes(nil)
	e.I32s([]int32{-1, 0, 1 << 30})
	e.I64s([]int64{math.MinInt64, 7})
	e.F64s([]float64{0.5, -0.25})
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	d := NewDecoder(&buf)
	if got := d.U64(); got != 0 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.U64(); got != math.MaxUint64 {
		t.Errorf("U64 max = %d", got)
	}
	if got := d.I64(); got != -1 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.I64(); got != math.MaxInt64 {
		t.Errorf("I64 max = %d", got)
	}
	if got := d.I32(); got != -42 {
		t.Errorf("I32 = %d", got)
	}
	if got := d.Int(); got != 123456 {
		t.Errorf("Int = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip")
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := d.F64(); !math.IsNaN(got) {
		t.Errorf("F64 NaN = %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 -Inf = %v", got)
	}
	if got := d.String(); got != "état" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{0, 1, 2}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := d.Bytes(); got != nil {
		t.Errorf("nil Bytes = %v", got)
	}
	if got := d.I32s(); len(got) != 3 || got[2] != 1<<30 {
		t.Errorf("I32s = %v", got)
	}
	if got := d.I64s(); len(got) != 2 || got[0] != math.MinInt64 {
		t.Errorf("I64s = %v", got)
	}
	if got := d.F64s(); len(got) != 2 || got[1] != -0.25 {
		t.Errorf("F64s = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

// testState builds a small replayed state with nontrivial adjacency order.
func testState(t *testing.T) *trace.State {
	t.Helper()
	st := trace.NewState(8, 16)
	events := []trace.Event{
		{Kind: trace.AddNode, Day: 0, U: 0, Origin: trace.OriginXiaonei},
		{Kind: trace.AddNode, Day: 0, U: 1, Origin: trace.OriginFiveQ},
		{Kind: trace.AddEdge, Day: 0, U: 0, V: 1},
		{Kind: trace.AddNode, Day: 2, U: 2, Origin: trace.OriginNew},
		{Kind: trace.AddEdge, Day: 2, U: 2, V: 0},
		{Kind: trace.AddEdge, Day: 3, U: 1, V: 2},
	}
	for _, ev := range events {
		if err := st.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func sameState(t *testing.T, got, want *trace.State) {
	t.Helper()
	if got.Day != want.Day {
		t.Errorf("day %d vs %d", got.Day, want.Day)
	}
	if got.Graph.NumNodes() != want.Graph.NumNodes() || got.Graph.NumEdges() != want.Graph.NumEdges() {
		t.Fatalf("graph size %d/%d vs %d/%d",
			got.Graph.NumNodes(), got.Graph.NumEdges(), want.Graph.NumNodes(), want.Graph.NumEdges())
	}
	for u := 0; u < want.Graph.NumNodes(); u++ {
		g := got.Graph.AppendNeighbors(nil, graph.NodeID(u))
		w := want.Graph.AppendNeighbors(nil, graph.NodeID(u))
		if len(g) != len(w) {
			t.Fatalf("node %d degree %d vs %d", u, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("node %d neighbor %d: %d vs %d (adjacency order must survive)", u, i, g[i], w[i])
			}
		}
	}
	for i := range want.JoinDay {
		if got.JoinDay[i] != want.JoinDay[i] || got.Origin[i] != want.Origin[i] {
			t.Fatalf("node %d columns diverged", i)
		}
	}
}

// TestFileRoundTrip covers the container: header, state, blobs, end magic.
func TestFileRoundTrip(t *testing.T) {
	st := testState(t)
	h := Header{Day: 3, ConfigHash: 0xDEADBEEF, Stages: []string{"metrics", "sweep"}}
	blobs := []StageBlob{{Name: "metrics", Data: []byte{1, 2, 3}}, {Name: "sweep", Data: nil}}
	var buf bytes.Buffer
	if err := Write(&buf, h, st, blobs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	hdr, err := ReadHeader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Day != 3 || hdr.ConfigHash != 0xDEADBEEF || len(hdr.Stages) != 2 || hdr.Stages[1] != "sweep" {
		t.Fatalf("header = %+v", hdr)
	}

	f, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, f.State, st)
	if len(f.Blobs) != 2 || f.Blobs[0].Name != "metrics" || !bytes.Equal(f.Blobs[0].Data, []byte{1, 2, 3}) || f.Blobs[1].Data != nil {
		t.Fatalf("blobs = %+v", f.Blobs)
	}

	// Determinism: a second Write of the same inputs is bit-identical.
	var buf2 bytes.Buffer
	if err := Write(&buf2, h, st, blobs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf2.Bytes()) {
		t.Fatal("checkpoint encoding is not deterministic")
	}

	// Truncation at every prefix must fail typed, not panic or succeed.
	for cut := 0; cut < len(raw); cut++ {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d read cleanly", cut)
		}
	}
}

// TestTypedErrors pins the typed failure modes resume's fallback keys on.
func TestTypedErrors(t *testing.T) {
	st := testState(t)
	var buf bytes.Buffer
	if err := Write(&buf, Header{Day: 1}, st, nil); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := ReadHeader(bytes.NewReader([]byte("not a checkpoint"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	skew := append([]byte{}, raw...)
	skew[4] = 0x7f // format version 127
	if _, err := ReadHeader(bytes.NewReader(skew)); !errors.Is(err, ErrVersion) {
		t.Errorf("version skew: %v", err)
	}
	if _, err := Read(bytes.NewReader(raw[:5])); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncation: %v", err)
	}
}
