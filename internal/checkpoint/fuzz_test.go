package checkpoint

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/trace"
)

// FuzzCheckpointDecode hardens the checkpoint reader the way FuzzDecode
// hardens the trace codec: Read must never panic, hang, or over-allocate
// on corrupt input — truncations, version skew, lying lengths — and
// whatever it accepts must re-encode byte-identically (the codec is
// deterministic). The seed corpus covers a real container, version skew,
// truncation inside every layer, and a header that declares absurd
// lengths.
func FuzzCheckpointDecode(f *testing.F) {
	st := trace.NewState(4, 4)
	for _, ev := range []trace.Event{
		{Kind: trace.AddNode, Day: 0, U: 0, Origin: trace.OriginXiaonei},
		{Kind: trace.AddNode, Day: 1, U: 1, Origin: trace.OriginFiveQ},
		{Kind: trace.AddEdge, Day: 1, U: 0, V: 1},
	} {
		if err := st.Apply(ev); err != nil {
			f.Fatal(err)
		}
	}
	var valid bytes.Buffer
	err := Write(&valid, Header{Day: 1, ConfigHash: 7, Stages: []string{"metrics", "evolution"}}, st,
		[]StageBlob{{Name: "metrics", Data: []byte{1, 1, 2, 3, 5}}, {Name: "evolution", Data: []byte{}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Truncations inside the header, the state section, and the blobs.
	for _, cut := range []int{3, 5, 9, valid.Len() / 2, valid.Len() - 3} {
		f.Add(append([]byte{}, valid.Bytes()[:cut]...))
	}
	// Version skew.
	skew := append([]byte{}, valid.Bytes()...)
	skew[4] = 0x63
	f.Add(skew)
	// Length overflow: a header that promises 2^40 stages.
	overflow := append([]byte{}, fileMagic[:]...)
	overflow = append(overflow, 1) // version
	overflow = append(overflow, 0) // config hash
	overflow = append(overflow, 2) // day (zigzag 1)
	overflow = binary.AppendUvarint(overflow, 1<<40)
	f.Add(overflow)
	// A state section whose node count lies.
	lies := append([]byte{}, fileMagic[:]...)
	lies = append(lies, 1, 0, 0, 0) // version, hash, day, 0 stages
	lies = binary.AppendUvarint(lies, 1<<50)
	f.Add(lies)

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics, hangs, and OOMs are not
		}
		// Accepted input must survive a deterministic re-encode/decode.
		var buf bytes.Buffer
		if err := Write(&buf, file.Header, file.State, file.Blobs); err != nil {
			t.Fatalf("accepted checkpoint does not re-encode: %v", err)
		}
		again, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded checkpoint does not decode: %v", err)
		}
		if again.Header.Day != file.Header.Day || again.Header.ConfigHash != file.Header.ConfigHash ||
			len(again.Blobs) != len(file.Blobs) {
			t.Fatalf("round trip diverged: %+v vs %+v", again.Header, file.Header)
		}
		if again.State.Day != file.State.Day || again.State.Graph.NumNodes() != file.State.Graph.NumNodes() ||
			again.State.Graph.NumEdges() != file.State.Graph.NumEdges() {
			t.Fatal("state round trip diverged")
		}
	})
}
