package checkpoint

import (
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/trace"
)

// FormatVersion is the container format version this build writes. A
// reader seeing any other version returns ErrVersion — checkpoints are a
// cache of replayable computation, so version skew falls back to a
// from-zero run rather than attempting migration.
const FormatVersion = 1

// File layout (all integers in the package's varint/fixed encodings):
//
//	magic "RRC1"
//	uvarint format version (FormatVersion)
//	uvarint config hash (the run fingerprint recorded by the writer)
//	varint  day (the snapshot's day; state is "end of this day")
//	uvarint stage count, then per stage a length-prefixed name
//	state section (encodeState)
//	per stage, in header order: length-prefixed opaque blob
//	end magic "RRCE"
var (
	fileMagic    = [4]byte{'R', 'R', 'C', '1'}
	fileEndMagic = [4]byte{'R', 'R', 'C', 'E'}
)

// Header identifies a checkpoint: the day it was taken (the shared state
// reflects the end of that day), the writer's config fingerprint, and the
// checkpointed stage names in subscription order. Resume requires an
// exact stage-set and fingerprint match; anything else falls back to a
// from-zero replay.
type Header struct {
	Day        int32
	ConfigHash uint64
	Stages     []string
}

// StageBlob is one stage's serialized accumulator state, opaque to the
// container.
type StageBlob struct {
	Name string
	Data []byte
}

// File is a fully decoded checkpoint.
type File struct {
	Header Header
	State  *trace.State
	Blobs  []StageBlob
}

// Write renders a checkpoint file: header, shared state, and one blob per
// stage (blobs must be in the same order as h.Stages).
func Write(w io.Writer, h Header, st *trace.State, blobs []StageBlob) error {
	if len(blobs) != len(h.Stages) {
		return fmt.Errorf("checkpoint: %d blobs for %d stages", len(blobs), len(h.Stages))
	}
	e := NewEncoder(w)
	e.write(fileMagic[:])
	e.U64(FormatVersion)
	e.U64(h.ConfigHash)
	e.I32(h.Day)
	e.U64(uint64(len(h.Stages)))
	for _, s := range h.Stages {
		e.String(s)
	}
	EncodeState(e, st)
	for _, b := range blobs {
		e.Bytes(b.Data)
	}
	e.write(fileEndMagic[:])
	return e.Flush()
}

// readHeader decodes the header with d positioned at the magic.
func readHeader(d *Decoder) (Header, error) {
	var m [4]byte
	if _, err := io.ReadFull(d.br, m[:]); err != nil {
		return Header{}, d.fail(err)
	}
	if m != fileMagic {
		return Header{}, d.fail(ErrBadMagic)
	}
	if v := d.U64(); d.err == nil && v != FormatVersion {
		return Header{}, d.fail(fmt.Errorf("%w: %d", ErrVersion, v))
	}
	var h Header
	h.ConfigHash = d.U64()
	h.Day = d.I32()
	n := d.Len()
	if d.err == nil && n > maxSections {
		return Header{}, d.fail(fmt.Errorf("%w: %d stages", ErrTooLarge, n))
	}
	for i := 0; i < n && d.err == nil; i++ {
		h.Stages = append(h.Stages, d.String())
	}
	return h, d.err
}

// ReadHeader decodes just the header — the cheap probe checkpoint
// resolution scans candidate files with.
func ReadHeader(r io.Reader) (Header, error) {
	return readHeader(NewDecoder(r))
}

// Read decodes a whole checkpoint file.
func Read(r io.Reader) (*File, error) {
	d := NewDecoder(r)
	h, err := readHeader(d)
	if err != nil {
		return nil, err
	}
	st, err := DecodeState(d)
	if err != nil {
		return nil, err
	}
	f := &File{Header: h, State: st}
	for _, name := range h.Stages {
		data := d.Bytes()
		if d.err != nil {
			return nil, d.err
		}
		f.Blobs = append(f.Blobs, StageBlob{Name: name, Data: data})
	}
	var m [4]byte
	if _, err := io.ReadFull(d.br, m[:]); err != nil {
		return nil, d.fail(err)
	}
	if m != fileEndMagic {
		return nil, d.fail(fmt.Errorf("%w: bad end magic", ErrCorrupt))
	}
	return f, nil
}

// EncodeState serializes the shared replay state: the graph's full
// adjacency structure in insertion order (order is semantic — Louvain
// visiting order and frozen-CSR layout derive from it), the per-node
// day and origin columns, and the day watermark.
func EncodeState(e *Encoder, st *trace.State) {
	n := st.Graph.NumNodes()
	e.U64(uint64(n))
	var ns []graph.NodeID
	for u := 0; u < n; u++ {
		ns = st.Graph.AppendNeighbors(ns[:0], graph.NodeID(u))
		e.U64(uint64(len(ns)))
		for _, v := range ns {
			e.U64(uint64(v))
		}
	}
	e.I32s(st.JoinDay)
	origins := make([]byte, len(st.Origin))
	for i, o := range st.Origin {
		origins[i] = byte(o)
	}
	e.Bytes(origins)
	e.I32(st.Day)
}

// DecodeState is EncodeState's inverse, with the same hardening as the
// rest of the package: node counts are bounded before allocation and
// neighbor ids validated against the node count.
func DecodeState(d *Decoder) (*trace.State, error) {
	n := d.Len()
	if d.err != nil {
		return nil, d.err
	}
	// The graph is rebuilt row by row straight into the arena structure
	// (no intermediate [][]NodeID), preserving adjacency order exactly.
	// Growth stays incremental with the decode, so a corrupt node count
	// cannot force a huge up-front allocation.
	g := graph.New(capLen(n))
	for u := 0; u < n; u++ {
		deg := d.Len()
		if d.err != nil {
			return nil, d.err
		}
		for i := 0; i < deg; i++ {
			v := d.U64()
			if d.err != nil {
				return nil, d.err
			}
			if v >= uint64(n) {
				return nil, d.fail(fmt.Errorf("%w: neighbor %d of %d nodes", ErrCorrupt, v, n))
			}
			g.AppendArc(graph.NodeID(u), graph.NodeID(v))
		}
	}
	if n > 0 {
		g.EnsureNode(graph.NodeID(n - 1))
	}
	if g.Arcs()%2 != 0 {
		return nil, d.fail(fmt.Errorf("%w: odd adjacency ends", ErrCorrupt))
	}
	st := &trace.State{
		Graph:   g,
		JoinDay: d.I32s(),
		Day:     0,
	}
	origins := d.Bytes()
	st.Origin = make([]trace.Origin, len(origins))
	for i, b := range origins {
		st.Origin[i] = trace.Origin(b)
	}
	st.Day = d.I32()
	if d.err != nil {
		return nil, d.err
	}
	if len(st.JoinDay) != n || len(st.Origin) != n {
		return nil, d.fail(fmt.Errorf("%w: column lengths %d/%d for %d nodes", ErrCorrupt, len(st.JoinDay), len(st.Origin), n))
	}
	return st, nil
}
