// Package checkpoint implements the versioned, deterministic binary codec
// behind the pipeline's day-addressable state plane (DESIGN.md §6): the
// low-level Encoder/Decoder primitives every streaming stage serializes
// its accumulator state with, the codec for the shared trace.State, and
// the checkpoint file container (header + state section + one opaque,
// length-prefixed blob per stage).
//
// Determinism is a correctness requirement, not a nicety: a run resumed
// from a checkpoint must be bit-identical to the from-zero run, so
// serialization never iterates a map directly — callers emit map entries
// in sorted key order (SortedKeys) — and floating-point values round-trip
// through their exact IEEE-754 bits.
//
// Decoding is hardened the same way the trace codec is: typed errors for
// bad magic, version skew, and truncation; declared lengths are bounded
// before any allocation, and slice preallocation is capped so a lying
// header grows by append instead of one huge up-front allocation.
package checkpoint

import (
	"bufio"
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// Typed decode errors, mirrored on the trace codec's hardening.
var (
	// ErrBadMagic is returned when a stream is not a checkpoint file.
	ErrBadMagic = errors.New("checkpoint: bad magic")
	// ErrVersion is returned for a container format version this build
	// does not understand.
	ErrVersion = errors.New("checkpoint: unsupported format version")
	// ErrTruncated is returned when the stream ends inside a promised
	// structure.
	ErrTruncated = errors.New("checkpoint: truncated stream")
	// ErrTooLarge is returned when a declared length exceeds its bound.
	ErrTooLarge = errors.New("checkpoint: declared length exceeds limit")
	// ErrCorrupt is returned for structurally invalid content (value out
	// of range, malformed varint, bad section framing).
	ErrCorrupt = errors.New("checkpoint: corrupt stream")
)

// Decode bounds.
const (
	// maxLen bounds every declared string/slice/blob length.
	maxLen = 1 << 31
	// prealloc caps how much capacity a decoder trusts a declared length
	// for.
	prealloc = 1 << 16
	// maxSections bounds the number of per-stage sections in a container.
	maxSections = 1 << 10
)

// Encoder writes the checkpoint primitive types to an underlying writer.
// Errors are sticky: the first failure is kept and every later call is a
// no-op, so call sites stay linear and check Err (or Flush) once.
type Encoder struct {
	bw  *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{bw: bufio.NewWriter(w)}
}

// Err returns the first write failure, nil if none.
func (e *Encoder) Err() error { return e.err }

// Flush flushes buffered output and returns the first failure.
func (e *Encoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	e.err = e.bw.Flush()
	return e.err
}

func (e *Encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.bw.Write(p)
}

// U64 writes an unsigned varint.
func (e *Encoder) U64(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.write(e.buf[:n])
}

// I64 writes a signed (zigzag) varint.
func (e *Encoder) I64(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.write(e.buf[:n])
}

// I32 writes a signed varint constrained to the int32 range on decode.
func (e *Encoder) I32(v int32) { e.I64(int64(v)) }

// Int writes a signed varint constrained to the int range on decode.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool writes a single 0/1 byte.
func (e *Encoder) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.write([]byte{b})
}

// F64 writes the value's exact IEEE-754 bits (8 bytes, little endian).
func (e *Encoder) F64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	e.write(b[:])
}

// Bytes writes a length-prefixed byte blob.
func (e *Encoder) Bytes(b []byte) {
	e.U64(uint64(len(b)))
	e.write(b)
}

// String writes a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U64(uint64(len(s)))
	e.write([]byte(s))
}

// I32s writes a length-prefixed []int32.
func (e *Encoder) I32s(v []int32) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.I32(x)
	}
}

// I64s writes a length-prefixed []int64.
func (e *Encoder) I64s(v []int64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.I64(x)
	}
}

// F64s writes a length-prefixed []float64.
func (e *Encoder) F64s(v []float64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// Decoder reads the checkpoint primitive types. Like the Encoder, its
// error is sticky; reads after a failure return zero values.
type Decoder struct {
	br  *bufio.Reader
	err error
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &Decoder{br: br}
}

// Err returns the first decode failure, nil if none.
func (d *Decoder) Err() error { return d.err }

// fail latches the first error and returns it.
func (d *Decoder) fail(err error) error {
	if d.err == nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		d.err = err
	}
	return d.err
}

// U64 reads an unsigned varint.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		d.fail(err)
		return 0
	}
	return v
}

// I64 reads a signed (zigzag) varint.
func (d *Decoder) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.br)
	if err != nil {
		d.fail(err)
		return 0
	}
	return v
}

// I32 reads a signed varint, rejecting values outside the int32 range.
func (d *Decoder) I32() int32 {
	v := d.I64()
	if d.err == nil && (v < math.MinInt32 || v > math.MaxInt32) {
		d.fail(fmt.Errorf("%w: value %d overflows int32", ErrCorrupt, v))
		return 0
	}
	return int32(v)
}

// Int reads a signed varint, rejecting values outside the int range.
func (d *Decoder) Int() int {
	v := d.I64()
	if d.err == nil && (v < math.MinInt || v > math.MaxInt) {
		d.fail(fmt.Errorf("%w: value %d overflows int", ErrCorrupt, v))
		return 0
	}
	return int(v)
}

// Bool reads a 0/1 byte.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	b, err := d.br.ReadByte()
	if err != nil {
		d.fail(err)
		return false
	}
	if b > 1 {
		d.fail(fmt.Errorf("%w: bool byte %d", ErrCorrupt, b))
		return false
	}
	return b == 1
}

// F64 reads 8 little-endian IEEE-754 bits.
func (d *Decoder) F64() float64 {
	if d.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(d.br, b[:]); err != nil {
		d.fail(err)
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// Len reads a declared length and bounds it.
func (d *Decoder) Len() int {
	n := d.U64()
	if d.err == nil && n > maxLen {
		d.fail(fmt.Errorf("%w: length %d", ErrTooLarge, n))
		return 0
	}
	return int(n)
}

// capLen caps a declared length to the preallocation bound.
func capLen(n int) int {
	if n > prealloc {
		return prealloc
	}
	return n
}

// Bytes reads a length-prefixed byte blob.
func (d *Decoder) Bytes() []byte {
	n := d.Len()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, 0, capLen(n))
	var chunk [4096]byte
	for len(out) < n {
		want := n - len(out)
		if want > len(chunk) {
			want = len(chunk)
		}
		if _, err := io.ReadFull(d.br, chunk[:want]); err != nil {
			d.fail(err)
			return nil
		}
		out = append(out, chunk[:want]...)
	}
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// I32s reads a length-prefixed []int32.
func (d *Decoder) I32s() []int32 {
	n := d.Len()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, 0, capLen(n))
	for i := 0; i < n; i++ {
		out = append(out, d.I32())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// I64s reads a length-prefixed []int64.
func (d *Decoder) I64s() []int64 {
	n := d.Len()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, 0, capLen(n))
	for i := 0; i < n; i++ {
		out = append(out, d.I64())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// F64s reads a length-prefixed []float64.
func (d *Decoder) F64s() []float64 {
	n := d.Len()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, 0, capLen(n))
	for i := 0; i < n; i++ {
		out = append(out, d.F64())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// SortedKeys returns m's keys in ascending order — the deterministic map
// iteration every stage codec uses.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
