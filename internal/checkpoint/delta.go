package checkpoint

import (
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/trace"
)

// Delta checkpoints exploit the one structural invariant of the replay
// state: it is append-only. A later day never removes a node, never
// removes an edge, and never rewrites a neighbor list — it only appends
// to adjacency lists and extends the per-node columns. A delta against a
// parent checkpoint therefore needs just three things: the suffixes
// appended to old nodes' neighbor lists, the new nodes' full rows, and
// whichever stage blobs actually changed. At a weekly full cadence the
// in-between days shrink to a few percent of a full snapshot.
//
// Delta file layout (same primitive codec as the full container):
//
//	magic "RRD1"
//	uvarint format version (FormatVersion)
//	uvarint config hash
//	varint  day (snapshot day, like the full container)
//	varint  parent day (the full-or-delta checkpoint this extends)
//	uvarint parent sum — FNV-64a over the parent file's exact bytes, so
//	        resume can prove the parent on disk is the parent this delta
//	        was diffed against, not a same-named rewrite
//	uvarint stage count, then per stage a length-prefixed name
//	state patch (encodeStatePatch)
//	per stage, in header order: one flag byte — 0 the blob is unchanged
//	        (byte-identical to the parent's), 1 a length-prefixed
//	        replacement blob follows
//	end magic "RRDE"
var (
	deltaMagic    = [4]byte{'R', 'R', 'D', '1'}
	deltaEndMagic = [4]byte{'R', 'R', 'D', 'E'}
)

// DeltaHeader identifies a delta checkpoint and the parent it extends.
type DeltaHeader struct {
	Day        int32
	ParentDay  int32
	ParentSum  uint64
	ConfigHash uint64
	Stages     []string
}

// GrownNode is one pre-existing node whose neighbor list gained a
// suffix since the parent checkpoint.
type GrownNode struct {
	Node  int32
	Added []graph.NodeID
}

// StatePatch is the shared-state delta: what replaying the days between
// parent and child appended.
type StatePatch struct {
	// ParentNodes is the parent state's node count — the split point
	// between "grown" and "new".
	ParentNodes int
	// Grown lists old nodes with appended neighbors, in ascending node
	// order.
	Grown []GrownNode
	// NewAdj holds the full neighbor lists of nodes ParentNodes.. in
	// insertion order (order is semantic, as in the full container).
	NewAdj [][]graph.NodeID
	// JoinDay and Origin are the column suffixes for the new nodes.
	JoinDay []int32
	Origin  []trace.Origin
	// Day is the patched state's day watermark.
	Day int32
}

// DeltaBlob is one stage's entry in a delta: either "unchanged since
// parent" or a full replacement blob. Stage states are opaque to the
// container, so changed blobs are carried whole; for the heavy stages
// the state is itself day-incremental and small next to the graph.
type DeltaBlob struct {
	Name    string
	Changed bool
	Data    []byte // nil when !Changed
}

// DeltaFile is a fully decoded delta checkpoint.
type DeltaFile struct {
	Header DeltaHeader
	Patch  *StatePatch
	Blobs  []DeltaBlob
}

// DiffState computes the patch from a parent state summary to cur. The
// parent is summarized by its node count and per-node degrees (what the
// writer retains between checkpoints — holding the whole parent state
// would defeat the point). An error means cur is not an append-extension
// of the parent, which indicates the caller paired the wrong states.
func DiffState(parentNodes int, parentDeg []int32, cur *trace.State) (*StatePatch, error) {
	n := cur.Graph.NumNodes()
	if len(parentDeg) != parentNodes {
		return nil, fmt.Errorf("checkpoint: %d parent degrees for %d parent nodes", len(parentDeg), parentNodes)
	}
	if n < parentNodes {
		return nil, fmt.Errorf("checkpoint: state has %d nodes, parent had %d — not an extension", n, parentNodes)
	}
	if len(cur.JoinDay) != n || len(cur.Origin) != n {
		return nil, fmt.Errorf("checkpoint: column lengths %d/%d for %d nodes", len(cur.JoinDay), len(cur.Origin), n)
	}
	p := &StatePatch{ParentNodes: parentNodes, Day: cur.Day}
	var ns []graph.NodeID
	for u := 0; u < parentNodes; u++ {
		deg := cur.Graph.Degree(graph.NodeID(u))
		old := int(parentDeg[u])
		if deg < old {
			return nil, fmt.Errorf("checkpoint: node %d degree shrank %d -> %d — not an extension", u, old, deg)
		}
		if deg > old {
			ns = cur.Graph.AppendNeighbors(ns[:0], graph.NodeID(u))
			added := make([]graph.NodeID, deg-old)
			copy(added, ns[old:])
			p.Grown = append(p.Grown, GrownNode{Node: int32(u), Added: added})
		}
	}
	for u := parentNodes; u < n; u++ {
		deg := cur.Graph.Degree(graph.NodeID(u))
		row := cur.Graph.AppendNeighbors(make([]graph.NodeID, 0, deg), graph.NodeID(u))
		p.NewAdj = append(p.NewAdj, row)
	}
	p.JoinDay = append([]int32(nil), cur.JoinDay[parentNodes:]...)
	p.Origin = append([]trace.Origin(nil), cur.Origin[parentNodes:]...)
	return p, nil
}

// StateBuilder accumulates a base state plus a chain of patches directly
// in a mutable arena graph — the replay state is append-only, so a patch
// is exactly a sequence of arena appends. Resolving a k-deep delta chain
// never materializes an intermediate per-node adjacency structure.
type StateBuilder struct {
	g      *graph.Graph
	join   []int32
	origin []trace.Origin
	day    int32
}

// NewStateBuilder seeds a builder from a decoded full-checkpoint state.
func NewStateBuilder(st *trace.State) *StateBuilder {
	return &StateBuilder{
		g:      st.Graph.Clone(),
		join:   append([]int32(nil), st.JoinDay...),
		origin: append([]trace.Origin(nil), st.Origin...),
		day:    st.Day,
	}
}

// Apply extends the builder with one patch. The patch's ParentNodes must
// match the builder's current node count — patches apply in chain order.
func (b *StateBuilder) Apply(p *StatePatch) error {
	if p.ParentNodes != b.g.NumNodes() {
		return fmt.Errorf("checkpoint: patch expects %d parent nodes, state has %d", p.ParentNodes, b.g.NumNodes())
	}
	if len(p.JoinDay) != len(p.NewAdj) || len(p.Origin) != len(p.NewAdj) {
		return fmt.Errorf("%w: patch column lengths %d/%d for %d new nodes", ErrCorrupt, len(p.JoinDay), len(p.Origin), len(p.NewAdj))
	}
	if p.Day < b.day {
		return fmt.Errorf("%w: patch day %d before state day %d", ErrCorrupt, p.Day, b.day)
	}
	total := b.g.NumNodes() + len(p.NewAdj)
	prev := int32(-1)
	for _, gn := range p.Grown {
		if gn.Node <= prev || int(gn.Node) >= p.ParentNodes {
			return fmt.Errorf("%w: grown node %d out of order or range", ErrCorrupt, gn.Node)
		}
		prev = gn.Node
		for _, v := range gn.Added {
			if int(v) >= total || v < 0 {
				return fmt.Errorf("%w: neighbor %d of %d nodes", ErrCorrupt, v, total)
			}
		}
		for _, v := range gn.Added {
			b.g.AppendArc(gn.Node, v)
		}
	}
	for i, ns := range p.NewAdj {
		u := graph.NodeID(p.ParentNodes + i)
		for _, v := range ns {
			if int(v) >= total || v < 0 {
				return fmt.Errorf("%w: neighbor %d of %d nodes", ErrCorrupt, v, total)
			}
		}
		for _, v := range ns {
			b.g.AppendArc(u, v)
		}
	}
	if total > 0 {
		b.g.EnsureNode(graph.NodeID(total - 1))
	}
	b.join = append(b.join, p.JoinDay...)
	b.origin = append(b.origin, p.Origin...)
	b.day = p.Day
	return nil
}

// State materializes the accumulated state. The builder must not be used
// afterwards (the graph and columns are handed over, and ends-parity is
// validated here like DecodeState does).
func (b *StateBuilder) State() (*trace.State, error) {
	if b.g.Arcs()%2 != 0 {
		return nil, fmt.Errorf("%w: odd adjacency ends", ErrCorrupt)
	}
	if len(b.join) != b.g.NumNodes() || len(b.origin) != b.g.NumNodes() {
		return nil, fmt.Errorf("%w: column lengths %d/%d for %d nodes", ErrCorrupt, len(b.join), len(b.origin), b.g.NumNodes())
	}
	return &trace.State{
		Graph:   b.g,
		JoinDay: b.join,
		Origin:  b.origin,
		Day:     b.day,
	}, nil
}

// Degrees summarizes a state for future diffing: the per-node degree
// vector a writer keeps so the next delta can be computed without
// retaining the whole parent state.
func Degrees(st *trace.State) []int32 {
	n := st.Graph.NumNodes()
	deg := make([]int32, n)
	for u := 0; u < n; u++ {
		deg[u] = int32(st.Graph.Degree(graph.NodeID(u)))
	}
	return deg
}

// WriteDelta renders a delta checkpoint (blobs in h.Stages order).
func WriteDelta(w io.Writer, h DeltaHeader, p *StatePatch, blobs []DeltaBlob) error {
	if len(blobs) != len(h.Stages) {
		return fmt.Errorf("checkpoint: %d blobs for %d stages", len(blobs), len(h.Stages))
	}
	e := NewEncoder(w)
	e.write(deltaMagic[:])
	e.U64(FormatVersion)
	e.U64(h.ConfigHash)
	e.I32(h.Day)
	e.I32(h.ParentDay)
	e.U64(h.ParentSum)
	e.U64(uint64(len(h.Stages)))
	for _, s := range h.Stages {
		e.String(s)
	}
	encodeStatePatch(e, p)
	for _, b := range blobs {
		e.Bool(b.Changed)
		if b.Changed {
			e.Bytes(b.Data)
		}
	}
	e.write(deltaEndMagic[:])
	return e.Flush()
}

func encodeStatePatch(e *Encoder, p *StatePatch) {
	e.U64(uint64(p.ParentNodes))
	e.U64(uint64(len(p.Grown)))
	for _, g := range p.Grown {
		e.I32(g.Node)
		e.U64(uint64(len(g.Added)))
		for _, v := range g.Added {
			e.U64(uint64(v))
		}
	}
	e.U64(uint64(len(p.NewAdj)))
	for _, ns := range p.NewAdj {
		e.U64(uint64(len(ns)))
		for _, v := range ns {
			e.U64(uint64(v))
		}
	}
	e.I32s(p.JoinDay)
	origins := make([]byte, len(p.Origin))
	for i, o := range p.Origin {
		origins[i] = byte(o)
	}
	e.Bytes(origins)
	e.I32(p.Day)
}

func decodeStatePatch(d *Decoder) (*StatePatch, error) {
	p := &StatePatch{ParentNodes: d.Len()}
	grown := d.Len()
	if d.err != nil {
		return nil, d.err
	}
	total := p.ParentNodes // refined after new-node count is known
	p.Grown = make([]GrownNode, 0, capLen(grown))
	for i := 0; i < grown; i++ {
		g := GrownNode{Node: d.I32()}
		deg := d.Len()
		if d.err != nil {
			return nil, d.err
		}
		g.Added = make([]graph.NodeID, 0, capLen(deg))
		for j := 0; j < deg; j++ {
			g.Added = append(g.Added, graph.NodeID(d.U64()))
			if d.err != nil {
				return nil, d.err
			}
		}
		p.Grown = append(p.Grown, g)
	}
	newNodes := d.Len()
	if d.err != nil {
		return nil, d.err
	}
	total += newNodes
	p.NewAdj = make([][]graph.NodeID, 0, capLen(newNodes))
	for i := 0; i < newNodes; i++ {
		deg := d.Len()
		if d.err != nil {
			return nil, d.err
		}
		ns := make([]graph.NodeID, 0, capLen(deg))
		for j := 0; j < deg; j++ {
			v := d.U64()
			if d.err != nil {
				return nil, d.err
			}
			if v >= uint64(total) {
				return nil, d.fail(fmt.Errorf("%w: neighbor %d of %d nodes", ErrCorrupt, v, total))
			}
			ns = append(ns, graph.NodeID(v))
		}
		p.NewAdj = append(p.NewAdj, ns)
	}
	// Grown rows are validated here too, now that the total is known
	// (Apply re-checks against the builder's actual size).
	prev := int32(-1)
	for _, g := range p.Grown {
		if g.Node <= prev || int(g.Node) >= p.ParentNodes {
			return nil, d.fail(fmt.Errorf("%w: grown node %d out of order or range", ErrCorrupt, g.Node))
		}
		prev = g.Node
		for _, v := range g.Added {
			if int(v) >= total {
				return nil, d.fail(fmt.Errorf("%w: neighbor %d of %d nodes", ErrCorrupt, v, total))
			}
		}
	}
	p.JoinDay = d.I32s()
	origins := d.Bytes()
	p.Origin = make([]trace.Origin, len(origins))
	for i, b := range origins {
		p.Origin[i] = trace.Origin(b)
	}
	p.Day = d.I32()
	if d.err != nil {
		return nil, d.err
	}
	if len(p.JoinDay) != newNodes || len(p.Origin) != newNodes {
		return nil, d.fail(fmt.Errorf("%w: patch column lengths %d/%d for %d new nodes", ErrCorrupt, len(p.JoinDay), len(p.Origin), newNodes))
	}
	return p, nil
}

// readDeltaHeader decodes the delta header with d at the magic.
func readDeltaHeader(d *Decoder) (DeltaHeader, error) {
	var m [4]byte
	if _, err := io.ReadFull(d.br, m[:]); err != nil {
		return DeltaHeader{}, d.fail(err)
	}
	if m != deltaMagic {
		return DeltaHeader{}, d.fail(ErrBadMagic)
	}
	if v := d.U64(); d.err == nil && v != FormatVersion {
		return DeltaHeader{}, d.fail(fmt.Errorf("%w: %d", ErrVersion, v))
	}
	var h DeltaHeader
	h.ConfigHash = d.U64()
	h.Day = d.I32()
	h.ParentDay = d.I32()
	h.ParentSum = d.U64()
	n := d.Len()
	if d.err == nil && n > maxSections {
		return DeltaHeader{}, d.fail(fmt.Errorf("%w: %d stages", ErrTooLarge, n))
	}
	for i := 0; i < n && d.err == nil; i++ {
		h.Stages = append(h.Stages, d.String())
	}
	return h, d.err
}

// ReadDeltaHeader decodes just a delta's header — the cheap probe resume
// resolution scans candidates with.
func ReadDeltaHeader(r io.Reader) (DeltaHeader, error) {
	return readDeltaHeader(NewDecoder(r))
}

// ReadDelta decodes a whole delta checkpoint file.
func ReadDelta(r io.Reader) (*DeltaFile, error) {
	d := NewDecoder(r)
	h, err := readDeltaHeader(d)
	if err != nil {
		return nil, err
	}
	p, err := decodeStatePatch(d)
	if err != nil {
		return nil, err
	}
	f := &DeltaFile{Header: h, Patch: p}
	for _, name := range h.Stages {
		b := DeltaBlob{Name: name, Changed: d.Bool()}
		if b.Changed {
			b.Data = d.Bytes()
		}
		if d.err != nil {
			return nil, d.err
		}
		f.Blobs = append(f.Blobs, b)
	}
	var m [4]byte
	if _, err := io.ReadFull(d.br, m[:]); err != nil {
		return nil, d.fail(err)
	}
	if m != deltaEndMagic {
		return nil, d.fail(fmt.Errorf("%w: bad end magic", ErrCorrupt))
	}
	return f, nil
}
