// Package metrics computes the first-order graph metrics the paper tracks
// over daily snapshots in §2 (Fig 1): average degree, average clustering
// coefficient, degree assortativity, and sampled average path length.
//
// The path-length and clustering computations support node sampling, which
// is the paper's own tractability device ("we follow the standard practice
// of sampling nodes to make path length computation tractable").
package metrics

import (
	"errors"
	"math/rand"
	"sync"

	"repro/internal/graph"
	"repro/internal/stats"
)

// AverageDegree returns 2E/N, the mean node degree, or 0 for an empty graph.
func AverageDegree(g *graph.Graph) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(n)
}

// LocalClustering returns the clustering coefficient of node u: the fraction
// of pairs of u's neighbors that are themselves connected. Nodes with degree
// < 2 have coefficient 0, matching the convention the paper inherits.
func LocalClustering(g *graph.Graph, u graph.NodeID) float64 {
	d := g.Degree(u)
	if d < 2 {
		return 0
	}
	ns := g.AppendNeighbors(make([]graph.NodeID, 0, d), u)
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(ns[i], ns[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / (float64(d) * float64(d-1))
}

// AverageClustering returns the mean local clustering coefficient over all
// nodes (exact computation).
func AverageClustering(g *graph.Graph) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	var sum float64
	for u := 0; u < n; u++ {
		sum += LocalClustering(g, graph.NodeID(u))
	}
	return sum / float64(n)
}

// SampledClustering estimates the average clustering coefficient from a
// uniform sample of k nodes. With k >= NumNodes it is exact.
func SampledClustering(g *graph.Graph, k int, rng *rand.Rand) float64 {
	var c ClusteringSampler
	return c.Sample(g, k, rng)
}

// ClusteringSampler is SampledClustering with a reusable neighbor-marks
// scratch array. Marking u's neighborhood turns each local coefficient into
// one scan over the neighbors' adjacency lists instead of a quadratic
// HasEdge pair-scan — the dominant cost of the Fig 1 snapshot series — while
// counting exactly the same linked pairs.
type ClusteringSampler struct {
	marks []bool
	ns    []graph.NodeID // scratch: u's materialized neighbor list
}

func (c *ClusteringSampler) local(g *graph.Graph, u graph.NodeID) float64 {
	d := g.Degree(u)
	if d < 2 {
		return 0
	}
	c.ns = g.AppendNeighbors(c.ns[:0], u)
	ns := c.ns
	if n := g.NumNodes(); cap(c.marks) < n {
		c.marks = make([]bool, n)
	} else {
		c.marks = c.marks[:n]
	}
	for _, v := range ns {
		c.marks[v] = true
	}
	// Every linked neighbor pair {v, w} is seen twice, once from each side.
	links := 0
	for _, v := range ns {
		for it := g.Chunks(v); ; {
			s := it.Next()
			if s == nil {
				break
			}
			for _, w := range s {
				if c.marks[w] {
					links++
				}
			}
		}
	}
	for _, v := range ns {
		c.marks[v] = false
	}
	links /= 2
	return 2 * float64(links) / (float64(d) * float64(d-1))
}

// Sample estimates the average clustering coefficient exactly as
// SampledClustering does.
func (c *ClusteringSampler) Sample(g *graph.Graph, k int, rng *rand.Rand) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	if k >= n {
		var sum float64
		for u := 0; u < n; u++ {
			sum += c.local(g, graph.NodeID(u))
		}
		return sum / float64(n)
	}
	ids := stats.SampleWithoutReplacement(n, k, rng)
	var sum float64
	for _, u := range ids {
		sum += c.local(g, graph.NodeID(u))
	}
	return sum / float64(len(ids))
}

// Assortativity returns the degree assortativity coefficient: the Pearson
// correlation of the degrees at either end of every edge (both orientations
// counted, the standard Newman formulation). It returns 0 for graphs with
// no edges or uniform degrees. The computation streams over edges without
// materializing the degree pairs, so it is allocation-free even on
// million-edge snapshots.
func Assortativity(g *graph.Graph) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	// With both orientations counted, Σx = Σy and Σx² = Σy², so only one
	// side's moments are needed.
	var n, sx, sxx, sxy float64
	g.ForEachEdge(func(u, v graph.NodeID) {
		du, dv := float64(g.Degree(u)), float64(g.Degree(v))
		n += 2
		sx += du + dv
		sxx += du*du + dv*dv
		sxy += 2 * du * dv
	})
	varX := sxx - sx*sx/n
	if varX <= 0 {
		return 0
	}
	cov := sxy - sx*sx/n
	return cov / varX
}

// ErrNoSample is returned when a sampled estimate has nothing to average.
var ErrNoSample = errors.New("metrics: no valid samples")

// SampledPathLength estimates the average shortest-path length by running
// BFS from k sources sampled uniformly from the graph's largest connected
// component and averaging distances to every reachable node, the procedure
// the paper uses with k=1000 on each snapshot (Fig 1d).
func SampledPathLength(g *graph.Graph, k int, rng *rand.Rand) (float64, error) {
	var ps PathSampler
	return ps.Sample(g, k, rng)
}

// PathSampler is SampledPathLength with reusable BFS scratch buffers, for
// callers (the streaming metrics stage) that measure many snapshots: the
// per-source distance and queue slices are allocated once and reused.
//
// With Workers > 1 the BFS sources fan out across that many goroutines,
// each with private scratch. The estimate is bit-identical to the
// sequential one: source selection happens before the fan-out (the rng
// draw sequence is unchanged), sources are split into contiguous chunks,
// and each chunk's distance sum and pair count — integer-valued, far
// below 2^53 — are reduced in chunk order, so no float rounding can
// depend on scheduling.
type PathSampler struct {
	// Workers is the fan-out width for the per-source BFS sweep; <= 1
	// runs sequentially.
	Workers int

	dist    []int32
	queue   []graph.NodeID
	scratch []pathScratch
}

// pathScratch is one worker's private BFS buffers.
type pathScratch struct {
	dist  []int32
	queue []graph.NodeID
}

// Sample estimates the average shortest-path length exactly as
// SampledPathLength does.
func (p *PathSampler) Sample(g *graph.Graph, k int, rng *rand.Rand) (float64, error) {
	comp := g.LargestComponent()
	if len(comp) < 2 {
		return 0, ErrNoSample
	}
	var sources []graph.NodeID
	if k >= len(comp) {
		sources = comp
	} else {
		for _, i := range stats.SampleWithoutReplacement(len(comp), k, rng) {
			sources = append(sources, comp[i])
		}
	}
	total, count := p.sweep(g, sources)
	if count == 0 {
		return 0, ErrNoSample
	}
	return total / float64(count), nil
}

// sweep runs BFS from every source and accumulates the distance total and
// reachable-pair count, sequentially or fanned out per Workers.
func (p *PathSampler) sweep(g *graph.Graph, sources []graph.NodeID) (float64, int64) {
	workers := p.Workers
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers <= 1 {
		var total float64
		var count int64
		for _, s := range sources {
			p.dist, p.queue = g.BFSInto(s, p.dist, p.queue)
			for v, d := range p.dist {
				if d > 0 && graph.NodeID(v) != s {
					total += float64(d)
					count++
				}
			}
		}
		return total, count
	}
	if len(p.scratch) < workers {
		p.scratch = append(p.scratch, make([]pathScratch, workers-len(p.scratch))...)
	}
	totals := make([]float64, workers)
	counts := make([]int64, workers)
	chunk := (len(sources) + workers - 1) / workers
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > len(sources) {
			hi = len(sources)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			sc := &p.scratch[i]
			var total float64
			var count int64
			for _, s := range sources[lo:hi] {
				sc.dist, sc.queue = g.BFSInto(s, sc.dist, sc.queue)
				for v, d := range sc.dist {
					if d > 0 && graph.NodeID(v) != s {
						total += float64(d)
						count++
					}
				}
			}
			totals[i], counts[i] = total, count
		}(i, lo, hi)
	}
	wg.Wait()
	var total float64
	var count int64
	for i := 0; i < workers; i++ {
		total += totals[i]
		count += counts[i]
	}
	return total, count
}

// DegreeHistogram returns counts of nodes by degree.
func DegreeHistogram(g *graph.Graph) *stats.IntCounts {
	var c stats.IntCounts
	for u := 0; u < g.NumNodes(); u++ {
		c.Add(g.Degree(graph.NodeID(u)))
	}
	return &c
}

// Snapshot bundles the Fig 1 metrics measured on one daily snapshot.
type Snapshot struct {
	Day        int32
	Nodes      int64
	Edges      int64
	AvgDegree  float64
	PathLength float64 // NaN-free: 0 when not measured that day
	Clustering float64
	Assort     float64
}
