package metrics

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/stats"
)

func triangle() *graph.Graph {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	return g
}

func star(n int) *graph.Graph {
	g := graph.New(n + 1)
	for i := 1; i <= n; i++ {
		g.AddEdge(0, graph.NodeID(i))
	}
	return g
}

func TestAverageDegree(t *testing.T) {
	if got := AverageDegree(graph.New(0)); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := AverageDegree(triangle()); got != 2 {
		t.Fatalf("triangle = %v, want 2", got)
	}
	// Star with 4 leaves: 2*4/5.
	if got := AverageDegree(star(4)); math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("star = %v, want 1.6", got)
	}
}

func TestLocalClustering(t *testing.T) {
	g := triangle()
	for u := graph.NodeID(0); u < 3; u++ {
		if got := LocalClustering(g, u); got != 1 {
			t.Fatalf("triangle node %d = %v", u, got)
		}
	}
	s := star(5)
	if got := LocalClustering(s, 0); got != 0 {
		t.Fatalf("star hub = %v", got)
	}
	if got := LocalClustering(s, 1); got != 0 {
		t.Fatalf("degree-1 leaf = %v", got)
	}
}

func TestLocalClusteringPartial(t *testing.T) {
	// Node 0 adjacent to 1,2,3; only 1-2 connected → C = 1/3.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	if got := LocalClustering(g, 0); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("C(0) = %v, want 1/3", got)
	}
}

func TestAverageClustering(t *testing.T) {
	if got := AverageClustering(graph.New(0)); got != 0 {
		t.Fatal("empty graph")
	}
	if got := AverageClustering(triangle()); got != 1 {
		t.Fatalf("triangle = %v", got)
	}
	if got := AverageClustering(star(6)); got != 0 {
		t.Fatalf("star = %v", got)
	}
}

func TestSampledClusteringExactWhenKLarge(t *testing.T) {
	g := triangle()
	rng := stats.NewRand(1)
	if got := SampledClustering(g, 100, rng); got != 1 {
		t.Fatalf("sampled(k>n) = %v", got)
	}
	if got := SampledClustering(graph.New(0), 10, rng); got != 0 {
		t.Fatal("empty graph")
	}
}

func TestSampledClusteringApproximates(t *testing.T) {
	// Graph of many disjoint triangles: true average clustering = 1.
	g := graph.New(0)
	for i := 0; i < 300; i += 3 {
		a, b, c := graph.NodeID(i), graph.NodeID(i+1), graph.NodeID(i+2)
		g.AddEdge(a, b)
		g.AddEdge(b, c)
		g.AddEdge(a, c)
	}
	rng := stats.NewRand(2)
	got := SampledClustering(g, 50, rng)
	if got != 1 {
		t.Fatalf("sampled = %v, want exactly 1 (every node has C=1)", got)
	}
}

func TestAssortativityStar(t *testing.T) {
	// Star: hubs connect to leaves only → strongly disassortative (-1).
	if got := Assortativity(star(8)); math.Abs(got+1) > 1e-9 {
		t.Fatalf("star assortativity = %v, want -1", got)
	}
}

func TestAssortativityRegularGraph(t *testing.T) {
	// Cycle: all degrees equal → correlation undefined → 0 by convention.
	g := graph.New(0)
	const n = 10
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	if got := Assortativity(g); got != 0 {
		t.Fatalf("cycle = %v, want 0", got)
	}
	if got := Assortativity(graph.New(3)); got != 0 {
		t.Fatal("edgeless graph must be 0")
	}
}

func TestAssortativityRange(t *testing.T) {
	rng := stats.NewRand(8)
	g := graph.New(0)
	for i := 0; i < 400; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(100)), graph.NodeID(rng.Intn(100)))
	}
	r := Assortativity(g)
	if r < -1 || r > 1 {
		t.Fatalf("assortativity out of range: %v", r)
	}
}

func TestSampledPathLengthPath(t *testing.T) {
	// Path 0-1-2-3: exact average over ordered reachable pairs.
	g := graph.New(0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	rng := stats.NewRand(1)
	got, err := SampledPathLength(g, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Pair distances: 1,2,3,1,2,1 → mean = 10/6 over unordered, same over ordered.
	want := 10.0 / 6
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("APL = %v, want %v", got, want)
	}
}

func TestSampledPathLengthUsesLargestComponent(t *testing.T) {
	g := graph.New(0)
	// Big component: square. Small: single edge.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	g.AddEdge(10, 11)
	rng := stats.NewRand(1)
	got, err := SampledPathLength(g, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Square: distances 1,1,2 from each node → mean 4/3.
	if math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("APL = %v, want 4/3", got)
	}
}

func TestSampledPathLengthErrors(t *testing.T) {
	rng := stats.NewRand(1)
	if _, err := SampledPathLength(graph.New(0), 5, rng); err != ErrNoSample {
		t.Fatalf("err = %v", err)
	}
	g := graph.New(3) // isolated nodes only
	g.AddNode()
	if _, err := SampledPathLength(g, 5, rng); err != ErrNoSample {
		t.Fatalf("err = %v", err)
	}
}

func TestSampledPathLengthSubsample(t *testing.T) {
	// On a clique every distance is 1, so any sample gives exactly 1.
	g := graph.New(0)
	const n = 20
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	got, err := SampledPathLength(g, 5, stats.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("clique APL = %v", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram(star(3))
	if h.Count(3) != 1 || h.Count(1) != 3 || h.Count(0) != 0 {
		t.Fatalf("histogram wrong: %+v", h)
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
}
