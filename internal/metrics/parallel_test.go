package metrics

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// pathTestGraph builds a connected-ish random graph for the sampler.
func pathTestGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(i)), graph.NodeID(i)) // spanning tree: one component
	}
	for i := 0; i < m; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return g
}

// TestPathSamplerParallelBitIdentical holds the fanned-out sampled-BFS
// sweep to the sequential one: same seed, bit-identical estimate, and an
// identical rng position afterwards (source selection must consume
// exactly the same draws).
func TestPathSamplerParallelBitIdentical(t *testing.T) {
	g := pathTestGraph(4000, 6000, 11)
	sample := func(workers, k int) (float64, error, int64) {
		p := PathSampler{Workers: workers}
		rng := rand.New(rand.NewSource(42))
		v, err := p.Sample(g, k, rng)
		return v, err, rng.Int63() // post-sample draw pins the rng position
	}
	for _, k := range []int{5, 100, 5000 /* > component: all sources */} {
		want, errSeq, drawSeq := sample(0, k)
		for _, workers := range []int{2, 3, 8} {
			got, errPar, drawPar := sample(workers, k)
			if (errSeq == nil) != (errPar == nil) {
				t.Fatalf("k=%d workers=%d: err=%v, want %v", k, workers, errPar, errSeq)
			}
			if got != want {
				t.Fatalf("k=%d workers=%d: estimate %v, want %v", k, workers, got, want)
			}
			if drawSeq != drawPar {
				t.Fatalf("k=%d workers=%d: rng positions diverged", k, workers)
			}
		}
	}
}

// TestPathSamplerScratchReuse: repeated parallel samples on a growing
// graph reuse per-worker scratch without corrupting results.
func TestPathSamplerScratchReuse(t *testing.T) {
	g := pathTestGraph(1000, 1500, 3)
	par := PathSampler{Workers: 4}
	seq := PathSampler{}
	for round := 0; round < 3; round++ {
		rngA := rand.New(rand.NewSource(int64(round)))
		rngB := rand.New(rand.NewSource(int64(round)))
		want, _ := seq.Sample(g, 64, rngA)
		got, _ := par.Sample(g, 64, rngB)
		if got != want {
			t.Fatalf("round %d: %v != %v", round, got, want)
		}
		// Grow the graph between rounds so BFS frontiers change size.
		base := g.NumNodes()
		for i := 0; i < 200; i++ {
			g.AddEdge(graph.NodeID(i%base), graph.NodeID(base+i))
		}
	}
}
