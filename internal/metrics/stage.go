package metrics

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/checkpoint"
	"repro/internal/stats"
	"repro/internal/trace"
)

// GrowthDay is one day of the paper's Fig 1a/1b growth series.
type GrowthDay struct {
	Day        int32
	NodesAdded int64
	EdgesAdded int64
	Nodes      int64 // cumulative
	Edges      int64 // cumulative
	// NodeGrowthPct/EdgeGrowthPct are the relative daily growth
	// percentages of Fig 1b.
	NodeGrowthPct float64
	EdgeGrowthPct float64
}

// StageOptions parameterizes the streaming Fig 1 stage.
type StageOptions struct {
	// MetricsEvery is the cadence (days) of degree/clustering/
	// assortativity measurements; PathEvery of sampled path length.
	MetricsEvery int32
	PathEvery    int32
	// PathSources is the number of BFS sources for path length.
	PathSources int
	// ClusteringSamples is the node sample size for average clustering.
	ClusteringSamples int
	// Seed drives the sampled estimators.
	Seed int64
	// Workers is the fan-out width of the sampled-BFS path-length sweep
	// (<= 1 sequential). A throughput knob only: the estimate is
	// bit-identical at any width (see PathSampler), so it is deliberately
	// not part of the checkpoint config fingerprint.
	Workers int
}

// Stage computes the Fig 1 growth and snapshot-metric series from a single
// replay pass; it subscribes to the engine alongside the other analyses.
type Stage struct {
	opt StageOptions
	src *stats.Source
	rng *rand.Rand

	prevNodes, prevEdges   int64
	addedNodes, addedEdges int64

	paths      PathSampler
	clustering ClusteringSampler

	// Growth and Snapshots accumulate the Fig 1a/1b and Fig 1c–1f series.
	Growth    []GrowthDay
	Snapshots []Snapshot
}

// NewStage creates a streaming Fig 1 stage; zero-valued cadences and
// sample sizes get the paper's scaled defaults.
func NewStage(opt StageOptions) *Stage {
	if opt.MetricsEvery <= 0 {
		opt.MetricsEvery = 3
	}
	if opt.PathEvery <= 0 {
		opt.PathEvery = 9
	}
	if opt.PathSources <= 0 {
		opt.PathSources = 100
	}
	if opt.ClusteringSamples <= 0 {
		opt.ClusteringSamples = 1000
	}
	src := stats.NewSource(opt.Seed)
	return &Stage{opt: opt, src: src, rng: rand.New(src), paths: PathSampler{Workers: opt.Workers}}
}

// StageName is the stage's planner registry name.
const StageName = "metrics"

// OverlapSafe marks the stage for the engine's parallel driver: OnEvent
// only tallies arrival counts in private fields (it never reads the
// shared state), and OnDayEnd reads the quiescent graph read-only for
// the day's snapshot.
func (s *Stage) OverlapSafe() {}

// Name implements engine.Stage.
func (s *Stage) Name() string { return StageName }

// OnEvent counts the day's node and edge arrivals.
func (s *Stage) OnEvent(st *trace.State, ev trace.Event) {
	switch ev.Kind {
	case trace.AddNode:
		s.addedNodes++
	case trace.AddEdge:
		s.addedEdges++
	}
}

// OnDayEnd closes the day's growth row and, on the metrics cadence, takes a
// full metric snapshot of the live graph.
func (s *Stage) OnDayEnd(st *trace.State, day int32) {
	g := st.Graph
	nodes, edges := int64(g.NumNodes()), g.NumEdges()
	gd := GrowthDay{
		Day:        day,
		NodesAdded: s.addedNodes,
		EdgesAdded: s.addedEdges,
		Nodes:      nodes,
		Edges:      edges,
	}
	if s.prevNodes > 0 {
		gd.NodeGrowthPct = 100 * float64(s.addedNodes) / float64(s.prevNodes)
	}
	if s.prevEdges > 0 {
		gd.EdgeGrowthPct = 100 * float64(s.addedEdges) / float64(s.prevEdges)
	}
	s.Growth = append(s.Growth, gd)
	s.prevNodes, s.prevEdges = nodes, edges
	s.addedNodes, s.addedEdges = 0, 0

	if day%s.opt.MetricsEvery == 0 && nodes > 0 {
		snap := Snapshot{
			Day:        day,
			Nodes:      nodes,
			Edges:      edges,
			AvgDegree:  AverageDegree(g),
			Clustering: s.clustering.Sample(g, s.opt.ClusteringSamples, s.rng),
			Assort:     Assortativity(g),
		}
		if day%s.opt.PathEvery == 0 {
			if pl, err := s.paths.Sample(g, s.opt.PathSources, s.rng); err == nil {
				snap.PathLength = pl
			}
		}
		s.Snapshots = append(s.Snapshots, snap)
	}
}

// Finish implements engine.Stage; the series are complete after the pass.
func (s *Stage) Finish(st *trace.State) error { return nil }

// stageStateV1 versions the stage's checkpoint blob.
const stageStateV1 = 1

// SaveState implements engine.Checkpointer: the growth/snapshot series
// accumulated so far, the day-to-day counters, and the sampler RNG's
// position.
func (s *Stage) SaveState(w io.Writer) error {
	e := checkpoint.NewEncoder(w)
	e.U64(stageStateV1)
	e.I64(s.prevNodes)
	e.I64(s.prevEdges)
	e.I64(s.addedNodes)
	e.I64(s.addedEdges)
	e.U64(uint64(len(s.Growth)))
	for _, g := range s.Growth {
		e.I32(g.Day)
		e.I64(g.NodesAdded)
		e.I64(g.EdgesAdded)
		e.I64(g.Nodes)
		e.I64(g.Edges)
		e.F64(g.NodeGrowthPct)
		e.F64(g.EdgeGrowthPct)
	}
	e.U64(uint64(len(s.Snapshots)))
	for _, m := range s.Snapshots {
		e.I32(m.Day)
		e.I64(m.Nodes)
		e.I64(m.Edges)
		e.F64(m.AvgDegree)
		e.F64(m.PathLength)
		e.F64(m.Clustering)
		e.F64(m.Assort)
	}
	e.I64(s.src.Draws())
	return e.Flush()
}

// LoadState implements engine.Checkpointer.
func (s *Stage) LoadState(r io.Reader) error {
	d := checkpoint.NewDecoder(r)
	if v := d.U64(); d.Err() == nil && v != stageStateV1 {
		return fmt.Errorf("metrics: checkpoint state version %d", v)
	}
	s.prevNodes = d.I64()
	s.prevEdges = d.I64()
	s.addedNodes = d.I64()
	s.addedEdges = d.I64()
	n := d.Len()
	s.Growth = make([]GrowthDay, 0, min(n, 1<<16))
	for i := 0; i < n && d.Err() == nil; i++ {
		s.Growth = append(s.Growth, GrowthDay{
			Day: d.I32(), NodesAdded: d.I64(), EdgesAdded: d.I64(),
			Nodes: d.I64(), Edges: d.I64(),
			NodeGrowthPct: d.F64(), EdgeGrowthPct: d.F64(),
		})
	}
	n = d.Len()
	s.Snapshots = make([]Snapshot, 0, min(n, 1<<16))
	for i := 0; i < n && d.Err() == nil; i++ {
		s.Snapshots = append(s.Snapshots, Snapshot{
			Day: d.I32(), Nodes: d.I64(), Edges: d.I64(),
			AvgDegree: d.F64(), PathLength: d.F64(), Clustering: d.F64(), Assort: d.F64(),
		})
	}
	draws := d.I64()
	if err := d.Err(); err != nil {
		return err
	}
	s.src.Restore(s.opt.Seed, draws)
	return nil
}
