package metrics

import (
	"math/rand"

	"repro/internal/stats"
	"repro/internal/trace"
)

// GrowthDay is one day of the paper's Fig 1a/1b growth series.
type GrowthDay struct {
	Day        int32
	NodesAdded int64
	EdgesAdded int64
	Nodes      int64 // cumulative
	Edges      int64 // cumulative
	// NodeGrowthPct/EdgeGrowthPct are the relative daily growth
	// percentages of Fig 1b.
	NodeGrowthPct float64
	EdgeGrowthPct float64
}

// StageOptions parameterizes the streaming Fig 1 stage.
type StageOptions struct {
	// MetricsEvery is the cadence (days) of degree/clustering/
	// assortativity measurements; PathEvery of sampled path length.
	MetricsEvery int32
	PathEvery    int32
	// PathSources is the number of BFS sources for path length.
	PathSources int
	// ClusteringSamples is the node sample size for average clustering.
	ClusteringSamples int
	// Seed drives the sampled estimators.
	Seed int64
}

// Stage computes the Fig 1 growth and snapshot-metric series from a single
// replay pass; it subscribes to the engine alongside the other analyses.
type Stage struct {
	opt StageOptions
	rng *rand.Rand

	prevNodes, prevEdges   int64
	addedNodes, addedEdges int64

	paths      PathSampler
	clustering ClusteringSampler

	// Growth and Snapshots accumulate the Fig 1a/1b and Fig 1c–1f series.
	Growth    []GrowthDay
	Snapshots []Snapshot
}

// NewStage creates a streaming Fig 1 stage; zero-valued cadences and
// sample sizes get the paper's scaled defaults.
func NewStage(opt StageOptions) *Stage {
	if opt.MetricsEvery <= 0 {
		opt.MetricsEvery = 3
	}
	if opt.PathEvery <= 0 {
		opt.PathEvery = 9
	}
	if opt.PathSources <= 0 {
		opt.PathSources = 100
	}
	if opt.ClusteringSamples <= 0 {
		opt.ClusteringSamples = 1000
	}
	return &Stage{opt: opt, rng: stats.NewRand(opt.Seed)}
}

// StageName is the stage's planner registry name.
const StageName = "metrics"

// Name implements engine.Stage.
func (s *Stage) Name() string { return StageName }

// OnEvent counts the day's node and edge arrivals.
func (s *Stage) OnEvent(st *trace.State, ev trace.Event) {
	switch ev.Kind {
	case trace.AddNode:
		s.addedNodes++
	case trace.AddEdge:
		s.addedEdges++
	}
}

// OnDayEnd closes the day's growth row and, on the metrics cadence, takes a
// full metric snapshot of the live graph.
func (s *Stage) OnDayEnd(st *trace.State, day int32) {
	g := st.Graph
	nodes, edges := int64(g.NumNodes()), g.NumEdges()
	gd := GrowthDay{
		Day:        day,
		NodesAdded: s.addedNodes,
		EdgesAdded: s.addedEdges,
		Nodes:      nodes,
		Edges:      edges,
	}
	if s.prevNodes > 0 {
		gd.NodeGrowthPct = 100 * float64(s.addedNodes) / float64(s.prevNodes)
	}
	if s.prevEdges > 0 {
		gd.EdgeGrowthPct = 100 * float64(s.addedEdges) / float64(s.prevEdges)
	}
	s.Growth = append(s.Growth, gd)
	s.prevNodes, s.prevEdges = nodes, edges
	s.addedNodes, s.addedEdges = 0, 0

	if day%s.opt.MetricsEvery == 0 && nodes > 0 {
		snap := Snapshot{
			Day:        day,
			Nodes:      nodes,
			Edges:      edges,
			AvgDegree:  AverageDegree(g),
			Clustering: s.clustering.Sample(g, s.opt.ClusteringSamples, s.rng),
			Assort:     Assortativity(g),
		}
		if day%s.opt.PathEvery == 0 {
			if pl, err := s.paths.Sample(g, s.opt.PathSources, s.rng); err == nil {
				snap.PathLength = pl
			}
		}
		s.Snapshots = append(s.Snapshots, snap)
	}
}

// Finish implements engine.Stage; the series are complete after the pass.
func (s *Stage) Finish(st *trace.State) error { return nil }
