// Package serve is the warm-state figure-serving plane: a long-lived
// daemon (cmd/rrserved) that keeps one trace's fully-analyzed state
// resident and answers figure-panel requests in O(cache lookup) instead
// of O(replay).
//
// Three layers do the work (DESIGN.md §8):
//
//   - A published snapshot: at startup the server resumes the trace's
//     newest compatible checkpoint (the PR 5 state plane), runs the full
//     plan over the remaining days, seals the Result — after which every
//     Figure lookup is a read of pre-emitted tables — and publishes it
//     through an atomic pointer. Readers never lock; a refresh pass
//     builds an entirely new Result from the grown trace and swaps the
//     pointer, leaving the old snapshot valid for requests in flight
//     (copy-on-advance).
//
//   - A result cache: encoded panels keyed by (config fingerprint, last
//     trace day, figure id, δ-set, format), byte-capped with LRU
//     eviction. The day in the key makes a refresh invalidate every
//     older entry by construction; DropOtherDays reclaims their bytes.
//
//   - Single-flight coalescing: N concurrent requests for the same
//     uncached panel — in particular a custom-δ fig4 request, which
//     costs a real plan execution — trigger exactly one computation.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Options configures a Server.
type Options struct {
	// TracePath is the trace file to serve figures of (required). The
	// file is re-opened on every refresh, so a writer appending days —
	// or atomically replacing the file with a longer encoding — is
	// picked up without restarting the daemon.
	TracePath string
	// CheckpointDir, when set, arms the checkpointed state plane: the
	// warm pass resumes from the newest compatible checkpoint and writes
	// new ones as it advances, so a daemon restart (and every refresh)
	// replays only the days past the last checkpoint.
	CheckpointDir string
	// CheckpointFullEvery sets the tiered cadence of the warm pass's
	// checkpoints: of every N, 1 is a full container and N-1 are deltas
	// against their predecessor (<=1 = every checkpoint is full).
	CheckpointFullEvery int
	// CheckpointKeep bounds the checkpoint directory: after each write
	// the warm pass retains only the newest N full checkpoints (plus the
	// delta chains riding on them) under its fingerprint (<=0 = keep
	// everything).
	CheckpointKeep int
	// Config is the pipeline configuration of the warm plan. Its
	// DeltaSweep is the warm δ grid: requests without a delta parameter
	// (or with exactly this grid) are served from the snapshot; any
	// other δ-set routes through a cold plan execution. CheckpointDir,
	// CheckpointEvery and Resume on it are overridden by the fields
	// above.
	Config core.Config
	// CacheBytes caps the result cache (default 64 MiB).
	CacheBytes int64
	// Log receives request and lifecycle records (default slog.Default).
	Log *slog.Logger
	// Open, when set, replaces the default trace probe: it returns the
	// MetaSource the warm pass and every refresh read. The ingest plane
	// points it at the tail prober's sealed prefix, so a refresh can
	// never decode a torn tail or a half-written day. Defaults to opening
	// TracePath as a finalized trace file.
	Open func() (trace.MetaSource, error)
}

// ErrClosed is returned by Refresh and AdvanceTo once Close has begun:
// the server no longer advances, though the published snapshot keeps
// serving reads until the process exits.
var ErrClosed = errors.New("serve: server is closed")

// Snapshot is one published generation of warm state: an immutable,
// sealed Result plus the identity its cache keys derive from. Fields are
// never mutated after publish — a refresh builds a new Snapshot.
type Snapshot struct {
	Res  *core.Result
	Meta trace.Meta
	// Src is the data plane this snapshot was computed from. Cold plan
	// executions (custom-δ requests) replay it, so they see exactly the
	// days the snapshot describes — never a torn tail the file may have
	// grown in the meantime.
	Src         trace.MetaSource
	Day         int32 // last trace day (Meta.Days - 1)
	Fingerprint uint64
	Deltas      []float64
	DeltaTag    string
	LoadedAt    time.Time
	ResumedFrom int32 // checkpoint day the warm pass resumed from, -1 if from zero
	// Carried counts the figures whose tables were bit-identical to the
	// previous snapshot's at publish time — their cached encodings were
	// re-keyed to this generation instead of recomputed.
	Carried int
}

// Server is the figure-serving daemon's engine room; Handler exposes it
// over HTTP.
type Server struct {
	opt   Options
	log   *slog.Logger
	cache *Cache

	snap atomic.Pointer[Snapshot]

	// baseCtx scopes computations whose lifetime belongs to the server,
	// not to one request: a cold plan execution that 99 coalesced
	// waiters ride must not die because the leader's client hung up.
	baseCtx context.Context
	cancel  context.CancelFunc

	refreshMu  sync.Mutex
	refreshing *refreshFlight

	// applyMu serializes snapshot advances (Refresh and the ingest
	// plane's AdvanceTo); Close acquires it to drain an in-flight apply
	// before cancelling baseCtx.
	applyMu sync.Mutex
	closed  atomic.Bool

	// open probes the trace: Options.Open, or the TracePath default.
	open func() (trace.MetaSource, error)

	statzMu    sync.Mutex
	statzExtra map[string]func() any

	// lastCkpt is the newest checkpoint write the warm pass reported,
	// surfaced in the /statz storage section.
	ckptMu   sync.Mutex
	lastCkpt *core.CheckpointStat

	start     time.Time
	requests  atomic.Int64
	refreshes atomic.Int64

	// runFigures executes a plan; tests swap it to count executions.
	runFigures func(ctx context.Context, src trace.MetaSource, cfg core.Config, figures ...string) (*core.Result, error)
}

// NewServer loads the trace's warm state — resuming the newest compatible
// checkpoint when Options.CheckpointDir is set — seals it, and returns a
// server ready to handle requests.
func NewServer(ctx context.Context, opt Options) (*Server, error) {
	if opt.TracePath == "" {
		return nil, errors.New("serve: Options.TracePath is required")
	}
	if opt.CacheBytes <= 0 {
		opt.CacheBytes = 64 << 20
	}
	log := opt.Log
	if log == nil {
		log = slog.Default()
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:        opt,
		log:        log,
		cache:      NewCache(opt.CacheBytes),
		baseCtx:    baseCtx,
		cancel:     cancel,
		statzExtra: make(map[string]func() any),
		start:      time.Now(),
		runFigures: core.RunFigures,
	}
	s.RegisterStatz("storage", s.storageStats)
	s.RegisterStatz("memory", memoryStats)
	s.open = opt.Open
	if s.open == nil {
		// Frozen: the snapshot's source must keep replaying the days the
		// snapshot was computed from even while a writer grows the file.
		// OpenTrace sniffs the magic, so the daemon serves flat and
		// compressed segmented traces alike.
		s.open = func() (trace.MetaSource, error) {
			tf, err := trace.OpenTrace(opt.TracePath)
			if err != nil {
				return nil, err
			}
			return tf.Frozen(), nil
		}
	}
	src, err := s.open()
	if err != nil {
		cancel()
		return nil, fmt.Errorf("serve: open trace: %w", err)
	}
	snap, err := s.loadFrom(ctx, src)
	if err != nil {
		cancel()
		return nil, err
	}
	s.publish(snap)
	log.LogAttrs(ctx, slog.LevelInfo, "warm state loaded",
		slog.Int("last_day", int(snap.Day)),
		slog.Int("resumed_from", int(snap.ResumedFrom)),
		slog.Int("figures", len(snap.Res.Figures())),
		slog.String("fingerprint", fmt.Sprintf("%016x", snap.Fingerprint)),
		slog.Duration("took", time.Since(s.start)))
	return s, nil
}

// Close shuts the advance plane down cleanly: it marks the server closed
// (new Refresh/AdvanceTo calls return ErrClosed), drains the apply in
// flight — a refresh that has already started completes and publishes,
// so its work is not torn away mid-pass — and only then cancels the
// background context, aborting any cold plan executions at their next
// day boundary. Safe to call more than once.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		s.cancel()
		return
	}
	// Acquiring applyMu is the drain: an in-flight apply holds it until
	// its publish completes.
	s.applyMu.Lock()
	s.applyMu.Unlock() //nolint:staticcheck // empty section is the drain
	s.cancel()
}

// Snapshot returns the currently published generation.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// warmConfig is Options.Config with the server's checkpoint plane wired
// in — the configuration of the warm pass.
func (s *Server) warmConfig() core.Config {
	cfg := s.opt.Config
	cfg.CheckpointDir = s.opt.CheckpointDir
	cfg.CheckpointFullEvery = s.opt.CheckpointFullEvery
	cfg.CheckpointKeep = s.opt.CheckpointKeep
	cfg.Resume = cfg.CheckpointDir != ""
	if cfg.CheckpointDir != "" || cfg.CheckpointBackend != nil {
		cfg.CheckpointObserver = s.observeCheckpoint
	}
	return cfg
}

// coldConfig derives the configuration of a custom-δ plan execution: the
// warm knobs with the requested δ grid, and no checkpoint plane — cold
// plans must never write into (or resume from) the warm state directory,
// whose files belong to the warm fingerprint.
func (s *Server) coldConfig(deltas []float64) core.Config {
	cfg := s.opt.Config
	cfg.DeltaSweep = append([]float64(nil), deltas...)
	cfg.CheckpointDir = ""
	cfg.CheckpointEvery = 0
	cfg.CheckpointFullEvery = 0
	cfg.CheckpointKeep = 0
	cfg.CheckpointBackend = nil
	cfg.CheckpointObserver = nil
	cfg.Resume = false
	cfg.OnProgress = nil
	return cfg
}

// loadFrom runs the warm plan over src and seals the Result into a
// publishable Snapshot.
func (s *Server) loadFrom(ctx context.Context, src trace.MetaSource) (*Snapshot, error) {
	if ctx == nil {
		ctx = s.baseCtx
	}
	meta := src.Meta()
	cfg := s.warmConfig()
	plan, err := core.Plan(cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: plan: %w", err)
	}
	res, err := s.runFigures(ctx, src, cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: warm pass: %w", err)
	}
	res.Seal()
	return &Snapshot{
		Res:         res,
		Src:         src,
		Meta:        meta,
		Day:         meta.Days - 1,
		Fingerprint: plan.Fingerprint(cfg, meta),
		Deltas:      append([]float64(nil), cfg.DeltaSweep...),
		DeltaTag:    deltaTag(cfg.DeltaSweep),
		LoadedAt:    time.Now(),
		ResumedFrom: res.ResumedFromDay,
	}, nil
}

// publish swaps the published snapshot pointer and eagerly drops cache
// entries of superseded generations. The swap is the only synchronization
// between the refresh pass and readers: the old snapshot stays whole for
// requests already holding it.
func (s *Server) publish(snap *Snapshot) {
	s.snap.Store(snap)
	s.cache.DropOtherDays(snap.Day)
}

// refreshFlight coalesces concurrent Refresh calls onto one pass.
type refreshFlight struct {
	done     chan struct{}
	advanced bool
	day      int32
	err      error
}

// Refresh re-probes the trace file and, if it gained days, runs the warm
// plan over the new content (resuming from the latest checkpoint when
// armed) and publishes the fresh snapshot. Concurrent calls coalesce
// onto the in-flight pass. It returns whether the published day
// advanced and the now-current last day.
func (s *Server) Refresh(ctx context.Context) (advanced bool, day int32, err error) {
	s.refreshMu.Lock()
	if f := s.refreshing; f != nil {
		s.refreshMu.Unlock()
		select {
		case <-f.done:
			return f.advanced, f.day, f.err
		case <-ctx.Done():
			return false, 0, ctx.Err()
		}
	}
	f := &refreshFlight{done: make(chan struct{})}
	s.refreshing = f
	s.refreshMu.Unlock()

	f.advanced, f.day, f.err = s.refresh(ctx)
	s.refreshMu.Lock()
	s.refreshing = nil
	s.refreshMu.Unlock()
	close(f.done)
	return f.advanced, f.day, f.err
}

// refresh is one ingest pass: probe, advance, publish.
func (s *Server) refresh(ctx context.Context) (bool, int32, error) {
	if s.closed.Load() {
		return false, s.snap.Load().Day, ErrClosed
	}
	src, err := s.open()
	if err != nil {
		return false, s.snap.Load().Day, fmt.Errorf("serve: refresh probe: %w", err)
	}
	return s.AdvanceTo(ctx, src)
}

// AdvanceTo runs the warm plan over src — resuming from the newest
// compatible checkpoint when armed — and publishes the result, carrying
// forward cache entries of figures whose tables did not change. It is
// the ingest plane's entry point: the tailer hands it each newly sealed
// prefix. A src whose horizon does not extend past the published day is
// a no-op. Advances are serialized; the pass itself runs under the
// server's lifetime context, so a caller hanging up cannot tear down a
// publish other readers are waiting on, and Close drains any apply in
// flight before cancelling.
func (s *Server) AdvanceTo(ctx context.Context, src trace.MetaSource) (advanced bool, day int32, err error) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	cur := s.snap.Load()
	if s.closed.Load() {
		return false, cur.Day, ErrClosed
	}
	if src.Meta().Days-1 <= cur.Day {
		return false, cur.Day, nil
	}
	t0 := time.Now()
	snap, err := s.loadFrom(s.baseCtx, src)
	if err != nil {
		return false, cur.Day, err
	}
	s.publishAdvance(cur, snap)
	s.refreshes.Add(1)
	s.log.LogAttrs(ctx, slog.LevelInfo, "refreshed",
		slog.Int("from_day", int(cur.Day)),
		slog.Int("to_day", int(snap.Day)),
		slog.Int("resumed_from", int(snap.ResumedFrom)),
		slog.Int("carried", snap.Carried),
		slog.Duration("took", time.Since(t0)))
	return true, snap.Day, nil
}

// publishAdvance publishes snap, first re-keying the cache entries of
// every figure whose table is identical to the outgoing snapshot's:
// day-advance invalidation is by construction (the day is in the key),
// so unchanged panels would otherwise be re-encoded on their next
// request even though not a byte of them moved.
func (s *Server) publishAdvance(prev, snap *Snapshot) {
	if prev != nil && snap.Day != prev.Day && snap.DeltaTag == prev.DeltaTag {
		for _, id := range snap.Res.Figures() {
			oldTab, oldErr := prev.Res.Figure(id)
			newTab, newErr := snap.Res.Figure(id)
			if oldErr != nil || newErr != nil || !newTab.Equal(oldTab) {
				continue
			}
			snap.Carried++
			for _, f := range []core.Format{core.FormatTSV, core.FormatJSON} {
				s.cache.Rekey(
					cacheKey(prev.Fingerprint, prev.Day, id, prev.DeltaTag, f),
					cacheKey(snap.Fingerprint, snap.Day, id, snap.DeltaTag, f),
					snap.Day)
			}
		}
	}
	s.publish(snap)
}

// Handler returns the daemon's HTTP surface:
//
//	GET  /figures            panel ids the snapshot serves, as JSON
//	GET  /figures/{id}       one panel; ?format=tsv|json, ?delta=0.01,...
//	GET  /healthz            liveness + published day
//	GET  /statz              cache/snapshot/request counters, as JSON
//	POST /refresh            re-probe the trace and advance the snapshot
//
// Every request is logged through the server's slog.Logger.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /figures", s.handleList)
	mux.HandleFunc("GET /figures/{id}", s.handleFigure)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	mux.HandleFunc("POST /refresh", s.handleRefresh)
	return s.logged(mux)
}

// handleFigure serves one panel. Requests resolve against the snapshot
// published at arrival: a refresh mid-request cannot tear the response.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := core.StageFor(id); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	format, err := core.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var deltas []float64
	if dq := r.URL.Query().Get("delta"); dq != "" {
		if deltas, err = core.ParseDeltaSweep(dq); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	snap := s.snap.Load()

	// A δ-set only changes sweep-produced panels; everything else is
	// warm-served no matter what δ the client passed.
	cold := len(deltas) > 0 && core.FigureUsesDeltaSweep(id) && !sameDeltas(deltas, snap.Deltas)
	var key string
	var compute func() ([]byte, error)
	if cold {
		cfg := s.coldConfig(deltas)
		plan, err := core.Plan(cfg, id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		key = cacheKey(plan.Fingerprint(cfg, snap.Meta), snap.Day, id, deltaTag(deltas), format)
		compute = func() ([]byte, error) {
			// Replay the snapshot's own source: re-opening the file here
			// would read days (or a torn tail) the snapshot's day key
			// doesn't describe.
			res, err := s.runFigures(s.baseCtx, snap.Src, cfg, id)
			if err != nil {
				return nil, err
			}
			tab, err := res.Figure(id)
			if err != nil {
				return nil, err
			}
			return encodeTable(tab, format)
		}
	} else {
		key = cacheKey(snap.Fingerprint, snap.Day, id, snap.DeltaTag, format)
		compute = func() ([]byte, error) {
			tab, err := snap.Res.Figure(id) // lock-free: the Result is sealed
			if err != nil {
				return nil, err
			}
			return encodeTable(tab, format)
		}
	}

	val, hit, err := s.cache.GetOrCompute(key, snap.Day, compute)
	if err != nil {
		s.writeFigureError(w, r, id, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", format.ContentType())
	h.Set("X-Cache", hitLabel(hit))
	h.Set("X-Trace-Day", strconv.Itoa(int(snap.Day)))
	w.Write(val)
}

// writeFigureError maps pipeline errors onto HTTP statuses.
func (s *Server) writeFigureError(w http.ResponseWriter, r *http.Request, id string, err error) {
	switch {
	case errors.Is(err, core.ErrStageSkipped):
		http.Error(w, fmt.Sprintf("%s: not available for this trace/config: %v", id, err), http.StatusNotFound)
	case errors.Is(err, core.ErrUnknownFigure):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "computation cancelled", http.StatusServiceUnavailable)
	default:
		s.log.LogAttrs(r.Context(), slog.LevelError, "figure failed",
			slog.String("figure", id), slog.String("err", err.Error()))
		http.Error(w, "internal error", http.StatusInternalServerError)
	}
}

// handleList reports the ids the published snapshot serves.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	writeJSON(w, map[string]any{
		"figures":  snap.Res.Figures(),
		"last_day": snap.Day,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	writeJSON(w, map[string]any{"status": "ok", "last_day": snap.Day})
}

// RegisterStatz merges fn's value under name into every /statz response
// — the hook the ingest plane uses to expose tail-lag metrics. fn must
// be safe for concurrent use.
func (s *Server) RegisterStatz(name string, fn func() any) {
	s.statzMu.Lock()
	defer s.statzMu.Unlock()
	s.statzExtra[name] = fn
}

// observeCheckpoint records the warm pass's newest checkpoint write for
// the /statz storage section. It runs on the replay goroutine, so it
// only stores the stat under a mutex.
func (s *Server) observeCheckpoint(st core.CheckpointStat) {
	s.ckptMu.Lock()
	s.lastCkpt = &st
	s.ckptMu.Unlock()
}

// memoryStats renders the /statz "memory" section: live-heap and
// GC-pause gauges for the warm pass's resident state, plus the
// process-wide inflated-frame cache counters — together they show
// whether the allocation-lean data plane is holding (low GC activity)
// and whether refresh re-opens are hitting the frame cache instead of
// re-running flate.
func memoryStats() any {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fc := trace.ReadFrameCacheStats()
	return map[string]any{
		"heap_alloc_bytes":  ms.HeapAlloc,
		"heap_sys_bytes":    ms.HeapSys,
		"heap_objects":      ms.HeapObjects,
		"gc_cycles":         ms.NumGC,
		"gc_pause_total_ns": ms.PauseTotalNs,
		"gc_last_pause_ns":  ms.PauseNs[(ms.NumGC+255)%256],
		"gc_cpu_fraction":   ms.GCCPUFraction,
		"next_gc_bytes":     ms.NextGC,
		"frame_cache": map[string]any{
			"hits":           fc.Hits,
			"misses":         fc.Misses,
			"hit_bytes":      fc.HitBytes,
			"inflated_bytes": fc.InflatedBytes,
			"bytes":          fc.Bytes,
			"entries":        fc.Entries,
			"capacity_bytes": fc.Capacity,
			"evictions":      fc.Evictions,
		},
	}
}

// storageStats renders the /statz "storage" section: the trace
// container's compression accounting (when segmented), the checkpoint
// backend's inventory, and the last checkpoint write's size and latency.
func (s *Server) storageStats() any {
	out := map[string]any{}
	if snap := s.snap.Load(); snap != nil {
		if sf, ok := snap.Src.(interface{ Stats() trace.SegStats }); ok {
			st := sf.Stats()
			ratio := 0.0
			if st.RawBytes > 0 {
				ratio = float64(st.CompressedBytes) / float64(st.RawBytes)
			}
			out["trace"] = map[string]any{
				"format":            "segmented",
				"segments":          st.Segments,
				"raw_bytes":         st.RawBytes,
				"compressed_bytes":  st.CompressedBytes,
				"compression_ratio": ratio,
			}
		} else {
			out["trace"] = map[string]any{"format": "flat"}
		}
	}
	if dir := s.opt.CheckpointDir; dir != "" {
		ck := map[string]any{"dir": dir}
		if infos, err := core.ListCheckpoints(storage.NewDirBackend(dir)); err != nil {
			ck["error"] = err.Error()
		} else {
			var fulls, deltas, unreadable int
			var size int64
			for _, ci := range infos {
				size += ci.Size
				switch {
				case ci.Err != "":
					unreadable++
				case ci.Delta:
					deltas++
				default:
					fulls++
				}
			}
			ck["objects"] = len(infos)
			ck["fulls"] = fulls
			ck["deltas"] = deltas
			ck["unreadable"] = unreadable
			ck["bytes"] = size
		}
		out["checkpoints"] = ck
	}
	s.ckptMu.Lock()
	if st := s.lastCkpt; st != nil {
		out["last_checkpoint"] = map[string]any{
			"day":      st.Day,
			"delta":    st.Delta,
			"bytes":    st.Bytes,
			"write_ms": float64(st.Elapsed.Nanoseconds()) / 1e6,
		}
	}
	s.ckptMu.Unlock()
	return out
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	stats := map[string]any{
		"uptime_s": time.Since(s.start).Seconds(),
		"requests": s.requests.Load(),
		"trace": map[string]any{
			"path":      s.opt.TracePath,
			"days":      snap.Meta.Days,
			"last_day":  snap.Day,
			"nodes":     snap.Meta.Nodes,
			"edges":     snap.Meta.Edges,
			"merge_day": snap.Meta.MergeDay,
		},
		"snapshot": map[string]any{
			"fingerprint":  fmt.Sprintf("%016x", snap.Fingerprint),
			"loaded_at":    snap.LoadedAt.UTC().Format(time.RFC3339),
			"resumed_from": snap.ResumedFrom,
			"figures":      len(snap.Res.Figures()),
			"deltas":       snap.Deltas,
			"carried":      snap.Carried,
		},
		"cache":     s.cache.Stats(),
		"refreshes": s.refreshes.Load(),
	}
	s.statzMu.Lock()
	for name, fn := range s.statzExtra {
		stats[name] = fn()
	}
	s.statzMu.Unlock()
	writeJSON(w, stats)
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	advanced, day, err := s.Refresh(r.Context())
	if err != nil {
		s.log.LogAttrs(r.Context(), slog.LevelError, "refresh failed", slog.String("err", err.Error()))
		http.Error(w, "refresh failed", http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{"advanced": advanced, "last_day": day})
}

// logged wraps the mux with request accounting and slog records.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		t0 := time.Now()
		lw := &loggingWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(lw, r)
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.RequestURI()),
			slog.Int("status", lw.status),
			slog.Int64("bytes", lw.bytes),
			slog.String("cache", lw.Header().Get("X-Cache")),
			slog.Duration("took", time.Since(t0)))
	})
}

// loggingWriter captures status and byte count for the request log.
type loggingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (l *loggingWriter) WriteHeader(code int) {
	l.status = code
	l.ResponseWriter.WriteHeader(code)
}

func (l *loggingWriter) Write(p []byte) (int, error) {
	n, err := l.ResponseWriter.Write(p)
	l.bytes += int64(n)
	return n, err
}

// cacheKey renders the cache identity of one encoded panel.
func cacheKey(fp uint64, day int32, id, deltaTag string, f core.Format) string {
	return fmt.Sprintf("%016x|%d|%s|%s|%s", fp, day, id, deltaTag, f)
}

// deltaTag canonicalizes a δ-set for cache keys.
func deltaTag(deltas []float64) string {
	if len(deltas) == 0 {
		return "-"
	}
	parts := make([]string, len(deltas))
	for i, d := range deltas {
		parts[i] = strconv.FormatFloat(d, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// sameDeltas reports element-wise equality (order matters: the δ order is
// the fig4 series order).
func sameDeltas(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func encodeTable(t *core.Table, f core.Format) ([]byte, error) {
	var buf bytes.Buffer
	if err := t.Write(&buf, f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func hitLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(v)
}
