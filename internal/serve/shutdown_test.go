package serve

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestCloseDrainsInFlightRefresh: a refresh that has already started when
// Close is called completes un-cancelled and publishes its snapshot;
// Close returns only after it has. Refreshes arriving after Close get
// ErrClosed.
func TestCloseDrainsInFlightRefresh(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "live.trace")
	copyFile(t, fxBase, live)
	srv := newTestServer(t, live, "")

	// Slow the warm pass down so Close provably overlaps it. The stub
	// fails the test if the pass's context dies while it sleeps — that
	// would mean Close cancelled work it promised to drain.
	inner := srv.runFigures
	started := make(chan struct{})
	srv.runFigures = func(ctx context.Context, src trace.MetaSource, cfg core.Config, figures ...string) (*core.Result, error) {
		close(started)
		select {
		case <-ctx.Done():
			t.Error("in-flight refresh cancelled by Close")
			return nil, ctx.Err()
		case <-time.After(300 * time.Millisecond):
		}
		return inner(ctx, src, cfg, figures...)
	}

	replaceFile(t, fxExt, live)
	refreshed := make(chan error, 1)
	go func() {
		_, _, err := srv.Refresh(context.Background())
		refreshed <- err
	}()
	<-started

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a refresh was still applying")
	case <-time.After(50 * time.Millisecond):
	}

	if err := <-refreshed; err != nil {
		t.Fatalf("drained refresh failed: %v", err)
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the refresh completed")
	}
	if snap := srv.Snapshot(); snap.Day != fxExtDays-1 {
		t.Fatalf("drained refresh did not publish: day %d, want %d", snap.Day, fxExtDays-1)
	}

	if _, _, err := srv.Refresh(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Refresh after Close: err = %v, want ErrClosed", err)
	}
	src, err := trace.OpenFileSource(live)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.AdvanceTo(context.Background(), src); !errors.Is(err, ErrClosed) {
		t.Fatalf("AdvanceTo after Close: err = %v, want ErrClosed", err)
	}
	// Reads keep working off the last published snapshot.
	if rec := get(t, srv.Handler(), "/figures/fig1a"); rec.Code != 200 {
		t.Fatalf("read after Close: status %d", rec.Code)
	}
}

// TestAdvanceToCarriesUnchangedPanels: a day advance re-keys cached
// encodings of panels whose tables did not change, so they are served
// without re-encoding, while changed panels are recomputed under the new
// day key.
func TestAdvanceToCarriesUnchangedPanels(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "live.trace")
	copyFile(t, fxBase, live)
	srv := newTestServer(t, live, "")
	h := srv.Handler()

	// Warm the cache with every panel the snapshot serves.
	for _, id := range srv.Snapshot().Res.Figures() {
		if rec := get(t, h, "/figures/"+id); rec.Code != 200 {
			t.Fatalf("%s: status %d", id, rec.Code)
		}
	}

	replaceFile(t, fxExt, live)
	advanced, day, err := srv.Refresh(context.Background())
	if err != nil || !advanced || day != fxExtDays-1 {
		t.Fatalf("refresh: advanced=%v day=%d err=%v", advanced, day, err)
	}
	snap := srv.Snapshot()
	if snap.Carried == 0 {
		t.Fatal("no panels carried across the advance (expected at least the early-horizon distributions)")
	}
	stats := srv.cache.Stats()
	if stats.Carried == 0 {
		t.Fatal("cache carried no entries")
	}

	// Every carried panel must now hit the cache under the NEW day key
	// and serve bytes identical to a from-zero run over the extension.
	_, extRes := referenceResults(t)
	hits := 0
	for _, id := range snap.Res.Figures() {
		rec := get(t, h, "/figures/"+id)
		if rec.Code != 200 {
			t.Fatalf("%s after advance: status %d", id, rec.Code)
		}
		if rec.Header().Get("X-Cache") == "hit" {
			hits++
		}
		if want := encodeFigure(t, extRes, id, core.FormatTSV); !bytesEqual(rec.Body.Bytes(), want) {
			t.Fatalf("%s after advance: served bytes differ from from-zero reference", id)
		}
	}
	if hits < snap.Carried {
		t.Fatalf("only %d cache hits after advance, %d panels were carried", hits, snap.Carried)
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestColdComputeUsesSnapshotSource: a custom-δ request after the file
// grew — but before any refresh — must compute from the snapshot's own
// source, not the file's new content: the response is keyed and stamped
// with the snapshot's day.
func TestColdComputeUsesSnapshotSource(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "live.trace")
	copyFile(t, fxBase, live)
	srv := newTestServer(t, live, "")

	// Grow the file out from under the published snapshot.
	replaceFile(t, fxExt, live)

	cfg := serveTestConfig()
	cfg.DeltaSweep = []float64{0.05}
	src, err := trace.OpenFileSource(fxBase)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := core.RunFigures(nil, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRes.Seal()

	rec := get(t, srv.Handler(), "/figures/fig4a?delta=0.05")
	if rec.Code != 200 {
		t.Fatalf("cold request: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Trace-Day"); got != "269" {
		t.Fatalf("cold request served day %s, want the snapshot's 269", got)
	}
	if want := encodeFigure(t, wantRes, "fig4a", core.FormatTSV); !bytesEqual(rec.Body.Bytes(), want) {
		t.Fatal("cold δ response differs from a from-zero run over the snapshot's days")
	}
}
