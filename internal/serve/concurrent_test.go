package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestServeConcurrentReadersDuringRefresh is the PR's concurrency
// acceptance gate (run under -race in CI): readers hammer the figure
// endpoints while an ingest pass advances the trace by 30 days and swaps
// the published snapshot. Every response — before, during, and after the
// swap — must be bit-identical to a quiesced from-zero run over the
// trace generation named by its X-Trace-Day header. No locks on the read
// path, no torn panels, no response mixing days.
func TestServeConcurrentReadersDuringRefresh(t *testing.T) {
	baseRes, extRes := referenceResults(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "live.trace")
	copyFile(t, fxBase, tracePath)
	srv := newTestServer(t, tracePath, filepath.Join(dir, "ckpt"))
	h := srv.Handler()

	// The per-generation references, keyed the same way responses name
	// their generation. Encoding is done up front: the reader loop must
	// stay allocation-light so requests actually interleave with publish.
	want := map[string]map[string][]byte{
		strconv.Itoa(fxBaseDays - 1): {},
		strconv.Itoa(fxExtDays - 1):  {},
	}
	ids := baseRes.Figures()
	for _, id := range ids {
		want[strconv.Itoa(fxBaseDays-1)][id] = encodeFigure(t, baseRes, id, core.FormatTSV)
		want[strconv.Itoa(fxExtDays-1)][id] = encodeFigure(t, extRes, id, core.FormatTSV)
	}

	var (
		stop       atomic.Bool
		served     [2]atomic.Int64 // [0] base-day responses, [1] ext-day responses
		wg         sync.WaitGroup
		errMu      sync.Mutex
		firstErr   error
		reportOnce sync.Once
	)
	fail := func(err error) {
		reportOnce.Do(func() {
			errMu.Lock()
			firstErr = err
			errMu.Unlock()
			stop.Store(true)
		})
	}
	const readers = 4
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; !stop.Load(); i++ {
				id := ids[i%len(ids)]
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/figures/"+id, nil))
				if rec.Code != http.StatusOK {
					fail(fmt.Errorf("%s: status %d: %s", id, rec.Code, rec.Body.String()))
					return
				}
				day := rec.Header().Get("X-Trace-Day")
				ref, ok := want[day]
				if !ok {
					fail(fmt.Errorf("%s: response from unknown generation day %q", id, day))
					return
				}
				if !bytes.Equal(rec.Body.Bytes(), ref[id]) {
					fail(fmt.Errorf("%s at day %s: served bytes differ from the quiesced from-zero run", id, day))
					return
				}
				if day == strconv.Itoa(fxBaseDays-1) {
					served[0].Add(1)
				} else {
					served[1].Add(1)
				}
			}
		}(g)
	}

	// Let the readers serve the base generation, then grow the trace by
	// an atomic swap and advance the state mid-fire.
	for served[0].Load() < int64(2*len(ids)) && !stop.Load() {
		time.Sleep(time.Millisecond)
	}
	replaceFile(t, fxExt, tracePath)
	advanced, day, err := srv.Refresh(context.Background())
	if err != nil {
		fail(err)
	} else if !advanced || day != fxExtDays-1 {
		fail(fmt.Errorf("refresh: advanced=%v day=%d, want advance to %d", advanced, day, fxExtDays-1))
	}
	if snap := srv.Snapshot(); snap.ResumedFrom != fxBaseDays-1 {
		t.Errorf("refresh resumed from day %d, want %d (a real incremental advance, not a silent from-zero)", snap.ResumedFrom, fxBaseDays-1)
	}

	// Let the readers observe the new generation, then stop.
	for served[1].Load() < int64(2*len(ids)) && !stop.Load() {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if served[0].Load() == 0 || served[1].Load() == 0 {
		t.Fatalf("responses per generation = %d base / %d ext; want both observed", served[0].Load(), served[1].Load())
	}
	t.Logf("served %d responses at day %d and %d at day %d across the swap",
		served[0].Load(), fxBaseDays-1, served[1].Load(), fxExtDays-1)
}
